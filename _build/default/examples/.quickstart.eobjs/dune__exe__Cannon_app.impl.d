examples/cannon_app.ml: Array Float Printf Repro_core Repro_parrts Repro_trace Repro_workloads Sys
