examples/cannon_app.mli:
