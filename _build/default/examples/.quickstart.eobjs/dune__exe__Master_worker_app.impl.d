examples/master_worker_app.ml: Array List Printf Repro_core Repro_parrts Repro_util Sys
