examples/master_worker_app.mli:
