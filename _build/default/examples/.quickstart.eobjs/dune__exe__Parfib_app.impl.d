examples/parfib_app.ml: Array List Printf Repro_core Repro_parrts Repro_util Repro_workloads Sys
