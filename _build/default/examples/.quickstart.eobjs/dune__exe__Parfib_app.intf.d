examples/parfib_app.mli:
