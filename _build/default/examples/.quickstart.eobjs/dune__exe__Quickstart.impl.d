examples/quickstart.ml: Fun List Printf Repro_core Repro_parrts Repro_util
