examples/quickstart.mli:
