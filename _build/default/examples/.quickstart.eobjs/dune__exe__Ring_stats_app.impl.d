examples/ring_stats_app.ml: Float Fun List Printf Repro_core Repro_parrts Repro_util
