examples/ring_stats_app.mli:
