examples/shortest_paths_app.ml: Array Float Printf Repro_core Repro_parrts Repro_workloads Sys
