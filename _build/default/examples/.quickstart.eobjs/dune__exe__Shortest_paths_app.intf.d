examples/shortest_paths_app.mli:
