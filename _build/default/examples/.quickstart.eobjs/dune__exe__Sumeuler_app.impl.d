examples/sumeuler_app.ml: Array List Printf Repro_core Repro_parrts Repro_trace Repro_util Repro_workloads Sys
