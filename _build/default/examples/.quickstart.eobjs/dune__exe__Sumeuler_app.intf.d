examples/sumeuler_app.mli:
