(** Cannon's algorithm on a torus of Eden processes, verified against
    the sequential reference (Real payload), and compared with the GpH
    blockwise multiplication.

    {v dune exec examples/cannon_app.exe [n] [q] v} *)

module Rts = Repro_parrts.Rts
module Versions = Repro_core.Versions
module Report = Repro_parrts.Report
module W = Repro_workloads

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 120 in
  let q = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 3 in
  let n = n - (n mod q) in
  Printf.printf "matrix multiplication, %dx%d (real computation, verified)\n\n" n n;

  (* Eden Cannon on q*q workers + parent, all virtual PEs on 8 cores *)
  let v = Versions.eden ~npes:((q * q) + 1) () in
  let checksum, report =
    Rts.run v.config (fun () ->
        W.Matmul.eden_cannon ~payload:W.Matrix.Real ~n ~q ())
  in
  Printf.printf "Eden Cannon %dx%d blocks (%d virtual PEs): %.3f ms, %d messages\n"
    q q ((q * q) + 1)
    (Report.elapsed_ms report)
    report.messages.sent;
  Printf.printf "  checksum %.6f (verified against sequential reference)\n\n"
    checksum;

  (* GpH blockwise, work stealing *)
  let v = Versions.gph_steal ~ncaps:8 () in
  let checksum', report' =
    Rts.run v.config (fun () -> W.Matmul.gph ~payload:W.Matrix.Real ~n ())
  in
  Printf.printf "GpH blockwise (8 caps, work stealing): %.3f ms\n"
    (Report.elapsed_ms report');
  Printf.printf "  checksum %.6f\n" checksum';
  assert (Float.abs (checksum -. checksum') < 1e-6 *. Float.abs checksum);
  print_newline ();
  print_string
    (Repro_trace.Render.timeline ~width:100 ~title:"Eden Cannon timeline"
       report.trace)
