(** The masterWorker skeleton on an irregular, dynamically growing task
    pool: counting N-queens solutions by expanding board prefixes.

    Each task is a partial placement; a worker either expands it into
    child tasks (below the cutoff depth) or solves it exhaustively.
    This is the "backtracking" use of the skeleton the paper mentions
    (Sec. II-A): a dynamically changing set of irregularly-sized tasks
    under the control of a master process.

    {v dune exec examples/master_worker_app.exe [board-size] v} *)

module Rts = Repro_parrts.Rts
module Api = Repro_parrts.Rts.Api
module Cost = Repro_util.Cost
module Versions = Repro_core.Versions
module Eden = Repro_core.Eden
module Skeletons = Repro_core.Skeletons

(* A task: the queens already placed, one per row, as column indices. *)
type task = int list

let safe cols col =
  let rec go d = function
    | [] -> true
    | c :: rest -> c <> col && abs (c - col) <> d && go (d + 1) rest
  in
  go 1 cols

(* Exhaustively count completions of a prefix (and charge the search
   cost: ~35 cycles per node visited). *)
let count_completions ~n prefix =
  let visited = ref 0 in
  let rec go cols depth =
    if depth = n then 1
    else begin
      let total = ref 0 in
      for col = 0 to n - 1 do
        incr visited;
        if safe cols col then total := !total + go (col :: cols) (depth + 1)
      done;
      !total
    end
  in
  let solutions = go (List.rev prefix) (List.length prefix) in
  Api.charge (Cost.make (35 * !visited) ~alloc:(16 * !visited));
  solutions

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 10 in
  let cutoff = 3 in
  let v = Versions.eden ~npes:8 () in
  Printf.printf "%d-queens via masterWorker on 8 Eden PEs (cutoff depth %d)\n" n
    cutoff;
  let total, report =
    Rts.run v.config (fun () ->
        let f (prefix : task) : task list * int =
          if List.length prefix < cutoff then begin
            (* expand: children are new tasks, result contributes 0 *)
            let children = ref [] in
            for col = n - 1 downto 0 do
              if safe (List.rev prefix) col then
                children := (prefix @ [ col ]) :: !children
            done;
            Api.charge (Cost.make (50 * n) ~alloc:(32 * n));
            (!children, 0)
          end
          else ([], count_completions ~n prefix)
        in
        let tr_task : task Eden.trans =
          {
            bytes = (fun t -> 24 + (16 * List.length t));
            nf_cycles = (fun t -> 4 + List.length t);
          }
        in
        let results =
          Skeletons.master_worker ~prefetch:2 ~tr_task ~tr_res:Eden.t_int f [ [] ]
        in
        List.fold_left ( + ) 0 results)
  in
  Printf.printf "solutions: %d\n" total;
  Printf.printf "virtual time %.3f ms, utilisation %.1f%%, %d messages\n"
    (Repro_parrts.Report.elapsed_ms report)
    (100.0 *. report.utilisation)
    report.messages.sent;
  (* known values for quick sanity *)
  let known = [ (6, 4); (7, 40); (8, 92); (9, 352); (10, 724); (11, 2680) ] in
  match List.assoc_opt n known with
  | Some want ->
      assert (total = want);
      Printf.printf "verified: %d-queens has %d solutions\n" n want
  | None -> ()
