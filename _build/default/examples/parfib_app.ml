(** Spark granularity in one picture: parfib with a threshold sweep.

    The classic GpH lesson: too-coarse thresholds starve the machine,
    too-fine thresholds drown it in spark overhead (and overflow the
    spark pool).  This sweep shows the sweet spot, plus the effect of
    activating sparks with dedicated spark threads (Sec. IV-A.4)
    instead of one thread per spark.

    {v dune exec examples/parfib_app.exe [n] v} *)

module Rts = Repro_parrts.Rts
module Config = Repro_parrts.Config
module Versions = Repro_core.Versions
module Report = Repro_parrts.Report

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 30 in
  Printf.printf "parfib %d on 8 simulated cores (work stealing)\n\n" n;
  let table =
    Repro_util.Tablefmt.create
      ~aligns:[ Right; Right; Right; Right; Right; Right; Right ]
      [ "threshold"; "sparks"; "overflow"; "eager BH"; "lazy BH";
        "dup subtrees"; "thread-per-spark (eager)" ]
  in
  let eager = (Versions.with_eager (Versions.gph_steal ~ncaps:8 ())).config in
  let lazy_bh = (Versions.gph_steal ~ncaps:8 ()).config in
  List.iter
    (fun threshold ->
      let run cfg =
        Rts.run cfg (fun () ->
            ignore (Repro_workloads.Parfib.gph ~n ~threshold ()))
      in
      let _, re = run eager in
      let _, rl = run lazy_bh in
      let _, rtps = run { eager with spark_runner = Config.Thread_per_spark } in
      Repro_util.Tablefmt.add_row table
        [
          string_of_int threshold;
          string_of_int (re.Report.sparks.created + re.Report.sparks.overflowed);
          string_of_int re.Report.sparks.overflowed;
          Printf.sprintf "%.2f ms" (Report.elapsed_ms re);
          Printf.sprintf "%.2f ms" (Report.elapsed_ms rl);
          string_of_int rl.Report.dup_work_entries;
          Printf.sprintf "%.2f ms" (Report.elapsed_ms rtps);
        ])
    [ n - 2; n - 6; n - 10; n - 14; n - 18 ];
  Repro_util.Tablefmt.print table;
  print_newline ();
  Printf.printf
    "Reading guide: the coarsest threshold gives too few sparks to fill 8\n\
     cores; very fine thresholds pay activation overhead per spark and can\n\
     overflow the 4096-entry pool.  The lazy black-holing column shows the\n\
     paper's Sec. IV-A.3 effect at its worst: a thread forcing a sparked\n\
     subtree that is already being evaluated silently re-evaluates the\n\
     whole subtree, so adding sparks makes the program SLOWER; eager\n\
     black-holing turns those duplications into cheap blocking waits.\n"
