(** Quickstart: the smallest complete program.

    Runs a GpH-style parallel map on the simulated 8-core shared-heap
    runtime, then the same computation as Eden processes on distributed
    heaps, and prints what the runtime did.

    {v dune exec examples/quickstart.exe v} *)

module Rts = Repro_parrts.Rts
module Api = Repro_parrts.Rts.Api
module Cost = Repro_util.Cost
module Gph = Repro_core.Gph
module Eden = Repro_core.Eden
module Versions = Repro_core.Versions

(* A mock workload: "expensive" squaring.  Real OCaml computes the
   value; the [cost] is what the simulated runtime accounts. *)
let expensive_square x =
  Gph.thunk ~cost:(Cost.make 2_000_000 ~alloc:4096) (fun () -> x * x)

let () =
  (* --- GpH: spark one thunk per element, force them all ----------- *)
  let version = Versions.gph_steal ~ncaps:8 () in
  let result, report =
    Rts.run version.config (fun () ->
        let nodes = List.init 64 (fun i -> expensive_square i) in
        Gph.par_list Gph.rwhnf nodes;
        List.fold_left (fun acc n -> acc + Gph.force n) 0 nodes)
  in
  Printf.printf "GpH   (%s):\n  sum of squares 0..63 = %d\n" version.label result;
  Printf.printf "  virtual time %.3f ms, utilisation %.1f%%, sparks stolen %d\n\n"
    (Repro_parrts.Report.elapsed_ms report)
    (100.0 *. report.utilisation)
    report.sparks.stolen;

  (* --- Eden: same computation as communicating processes ---------- *)
  let version = Versions.eden ~npes:8 () in
  let result, report =
    Rts.run version.config (fun () ->
        let worker xs =
          Api.charge (Cost.cycles (2_000_000 * List.length xs));
          List.fold_left (fun a x -> a + (x * x)) 0 xs
        in
        let pieces = Repro_util.Listx.unshuffle 8 (List.init 64 Fun.id) in
        let partials =
          Eden.spawn ~tr_in:(Eden.t_list Eden.t_int) ~tr_out:Eden.t_int worker
            pieces
        in
        List.fold_left ( + ) 0 partials)
  in
  Printf.printf "Eden  (%s):\n  sum of squares 0..63 = %d\n" version.label result;
  Printf.printf "  virtual time %.3f ms, utilisation %.1f%%, %d messages (%d bytes)\n"
    (Repro_parrts.Report.elapsed_ms report)
    (100.0 *. report.utilisation)
    report.messages.sent report.messages.bytes
