(** Topology skeletons at work: a ring of processes computing global
    statistics by circulating partial aggregates, plus a pipeline.

    Demonstrates the [ring] and [pipeline] skeletons on a task that is
    not one of the paper's benchmarks: distributed mean/variance of
    per-PE data, where each process only ships constant-size aggregates
    around the ring (one full revolution).

    {v dune exec examples/ring_stats_app.exe v} *)

module Rts = Repro_parrts.Rts
module Api = Repro_parrts.Rts.Api
module Cost = Repro_util.Cost
module Versions = Repro_core.Versions
module Eden = Repro_core.Eden
module Skeletons = Repro_core.Skeletons

let () =
  let nprocs = 8 in
  let per_pe = 100_000 in
  let v = Versions.eden ~npes:nprocs () in
  Printf.printf "ring of %d PEs, %d samples each\n" nprocs per_pe;
  let (mean, variance), report =
    Rts.run v.config (fun () ->
        let tr_agg : (int * float * float) Eden.trans =
          { bytes = (fun _ -> 48); nf_cycles = (fun _ -> 8) }
        in
        let outs =
          Skeletons.ring ~n:nprocs ~tr_ring:tr_agg
            ~tr_out:(Eden.t_pair Eden.t_float Eden.t_float)
            ~distribute:(fun k -> k)
            ~worker:(fun k seed recv send close_right ->
              (* local data + local aggregate (count, sum, sumsq) *)
              let rng = Repro_util.Rng.create (1000 + seed) in
              Api.charge (Cost.make (12 * per_pe) ~alloc:(8 * per_pe));
              let sum = ref 0.0 and sumsq = ref 0.0 in
              for _ = 1 to per_pe do
                let x = Repro_util.Rng.float rng in
                sum := !sum +. x;
                sumsq := !sumsq +. (x *. x)
              done;
              (* process 0 injects the aggregate; everyone else adds
                 its own and forwards; after one revolution process 0
                 owns the global aggregate *)
              let mine = (per_pe, !sum, !sumsq) in
              if k = 0 then begin
                send mine;
                match recv () with
                | Some (c, s, s2) ->
                    close_right ();
                    let cf = float_of_int c in
                    (s /. cf, (s2 /. cf) -. ((s /. cf) ** 2.0))
                | None -> failwith "ring closed early"
              end
              else begin
                (match recv () with
                | Some (c, s, s2) ->
                    let mc, ms, ms2 = mine in
                    Api.charge (Cost.cycles 20);
                    send (c + mc, s +. ms, s2 +. ms2)
                | None -> failwith "ring closed early");
                close_right ();
                (0.0, 0.0)
              end)
        in
        List.hd outs)
  in
  Printf.printf "global mean = %.6f (expect ~0.5), variance = %.6f (expect ~0.0833)\n"
    mean variance;
  assert (Float.abs (mean -. 0.5) < 0.01);
  assert (Float.abs (variance -. (1.0 /. 12.0)) < 0.01);
  Printf.printf "virtual time %.3f ms, %d messages\n\n"
    (Repro_parrts.Report.elapsed_ms report)
    report.messages.sent;

  (* a 4-stage pipeline transforming a stream of numbers *)
  let v = Versions.eden ~npes:6 () in
  let out, preport =
    Rts.run v.config (fun () ->
        let stage f x =
          Api.charge (Cost.make 50_000 ~alloc:256);
          f x
        in
        Skeletons.pipeline ~tr:Eden.t_int
          [
            stage (fun x -> x + 1);
            stage (fun x -> x * 2);
            stage (fun x -> x - 3);
            stage (fun x -> x * x);
          ]
          (List.init 200 Fun.id))
  in
  let expect = List.init 200 (fun x -> let y = (((x + 1) * 2) - 3) in y * y) in
  assert (out = expect);
  Printf.printf "pipeline of 4 stages over 200 items: ok, %.3f ms, %d messages\n"
    (Repro_parrts.Report.elapsed_ms preport)
    preport.messages.sent
