(** All-pairs shortest paths: the black-holing story in one program.

    Runs the GpH version with lazy and with eager black-holing, and the
    Eden ring version, on the same random graph — showing the paper's
    Fig. 5 effect: lazy black-holing triggers massive duplicate
    evaluation of the shared pivot-row thunks.

    {v dune exec examples/shortest_paths_app.exe [n] v} *)

module Rts = Repro_parrts.Rts
module Versions = Repro_core.Versions
module Report = Repro_parrts.Report
module W = Repro_workloads

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 200 in
  Printf.printf "all-pairs shortest paths, %d nodes, 8 simulated cores\n\n" n;
  let reference = W.Apsp.checksum (W.Apsp.floyd_warshall (W.Apsp.graph n)) in
  let show label (result, (report : Report.t)) =
    assert (Float.abs (result -. reference) < 1e-9 *. Float.abs reference);
    Printf.printf
      "%-38s %8.3f ms   duplicate thunk entries: %5d   blocked forces: %5d\n"
      label
      (Report.elapsed_ms report)
      report.dup_work_entries report.blocked_forces
  in
  let steal = Versions.gph_steal ~ncaps:8 () in
  show "GpH + stealing, lazy black-holing"
    (Rts.run steal.config (fun () -> W.Apsp.gph ~n ()));
  let eager = Versions.with_eager steal in
  show "GpH + stealing, eager black-holing"
    (Rts.run eager.config (fun () -> W.Apsp.gph ~n ()));
  let eden = Versions.eden ~npes:8 () in
  show "Eden ring (PVM)"
    (Rts.run eden.config (fun () -> W.Apsp.eden_ring ~n ()));
  Printf.printf
    "\n(All three computed the same distances, checksum %.3f —\n\
     \ the lazy version just paid for evaluating shared pivot rows twice.)\n"
    reference
