(** sumEuler: the paper's first benchmark as a standalone application.

    Computes sum(phi(k), k <= n) under all five runtime versions of the
    paper's Fig. 1 and prints the comparison table plus the timeline
    trace of the best GpH version.

    {v dune exec examples/sumeuler_app.exe [n] v} *)

module Rts = Repro_parrts.Rts
module Versions = Repro_core.Versions
module Report = Repro_parrts.Report

let () =
  let n =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 8000
  in
  Printf.printf "sumEuler [1..%d] on the simulated Intel 8-core\n\n" n;
  let table =
    Repro_util.Tablefmt.create
      ~aligns:[ Left; Right; Right; Right ]
      [ "version"; "runtime"; "utilisation"; "GC pauses" ]
  in
  let traces = ref [] in
  List.iter
    (fun (v : Versions.version) ->
      let is_eden = Repro_parrts.Config.is_distributed v.config in
      let result, report =
        Rts.run v.config (fun () ->
            if is_eden then Repro_workloads.Sumeuler.eden ~n ()
            else Repro_workloads.Sumeuler.gph ~n ())
      in
      assert (result = Repro_workloads.Euler.sum_euler_ref n);
      traces := (v.label, report) :: !traces;
      Repro_util.Tablefmt.add_row table
        [
          v.label;
          Printf.sprintf "%.3f s" (Report.elapsed_s report);
          Printf.sprintf "%.1f%%" (100.0 *. report.utilisation);
          Printf.sprintf "%.1f ms" (float_of_int report.gc.pause_total_ns /. 1e6);
        ])
    (Versions.fig1_versions ());
  Repro_util.Tablefmt.print table;
  print_newline ();
  (* show the trace of the work-stealing version *)
  (match List.assoc_opt "GpH, above + work stealing for sparks"
           (List.map (fun (l, r) -> (l, r)) !traces)
   with
  | Some report ->
      print_string
        (Repro_trace.Render.timeline ~width:100
           ~title:"timeline: GpH + work stealing" report.Report.trace)
  | None -> ())
