lib/core/eden.ml: Array List Queue Repro_parrts Repro_util
