lib/core/eden.mli:
