lib/core/gph.ml: List Repro_heap Repro_parrts Repro_util
