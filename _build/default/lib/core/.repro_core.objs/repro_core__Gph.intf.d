lib/core/gph.mli: Repro_heap Repro_util
