lib/core/gum.ml: Array Fun Hashtbl List Option Queue Repro_parrts Repro_util
