lib/core/skeletons.ml: Array Eden List Queue Repro_parrts Repro_util
