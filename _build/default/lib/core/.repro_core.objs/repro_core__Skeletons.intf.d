lib/core/skeletons.mli: Eden
