lib/core/versions.ml: Printf Repro_heap Repro_machine Repro_mp Repro_parrts String
