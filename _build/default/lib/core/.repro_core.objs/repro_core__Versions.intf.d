lib/core/versions.mli: Repro_machine Repro_mp Repro_parrts
