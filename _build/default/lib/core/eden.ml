(** Eden: explicit processes with channel communication on the
    distributed-heap runtime.

    Eden (Loogen, Ortega-Mallén & Peña) extends Haskell with process
    abstractions instantiated on remote PEs.  Communication follows the
    [Trans] class semantics (paper Sec. II-A.1):

    - all values are reduced to {e normal form} before sending (we
      charge the normal-form evaluation to the sender);
    - top-level lists are streamed element by element;
    - tuple components are evaluated and sent by independent threads;
    - everything else travels in a single message.

    Channels are placeholders in the receiving PE's heap: a thread
    forcing an unfilled placeholder blocks, and the arriving message
    updates the placeholder and wakes it — exactly the implementation
    the paper describes in Sec. III-B.

    All functions must run inside a simulation ({!Repro_parrts.Rts.run})
    configured with [heap_mode = Distributed _]. *)

module Cost = Repro_util.Cost
module Rts = Repro_parrts.Rts
module Api = Repro_parrts.Rts.Api

(* ------------------------------------------------------------------ *)
(* Trans dictionaries: serialised size + normal-form cost              *)
(* ------------------------------------------------------------------ *)

(** The [Trans] "type class": how many bytes a value occupies on the
    wire, and how many cycles reducing it to normal form costs the
    sender.  (Values are strict OCaml data; the NF charge models the
    evaluation Haskell would perform at send time.) *)
type 'a trans = { bytes : 'a -> int; nf_cycles : 'a -> int }

let t_unit = { bytes = (fun () -> 8); nf_cycles = (fun () -> 1) }
let t_int = { bytes = (fun _ -> 16); nf_cycles = (fun _ -> 2) }
let t_float = { bytes = (fun _ -> 16); nf_cycles = (fun _ -> 2) }

let t_pair a b =
  {
    bytes = (fun (x, y) -> 16 + a.bytes x + b.bytes y);
    nf_cycles = (fun (x, y) -> 4 + a.nf_cycles x + b.nf_cycles y);
  }

let t_list e =
  {
    bytes = (fun xs -> 16 + List.fold_left (fun acc x -> acc + 24 + e.bytes x) 0 xs);
    nf_cycles =
      (fun xs -> 8 + List.fold_left (fun acc x -> acc + 4 + e.nf_cycles x) 0 xs);
  }

let t_int_array =
  {
    bytes = (fun a -> 24 + (8 * Array.length a));
    nf_cycles = (fun a -> 4 + Array.length a);
  }

let t_float_array =
  {
    bytes = (fun a -> 24 + (8 * Array.length a));
    nf_cycles = (fun a -> 4 + Array.length a);
  }

(* A float matrix as array of rows. *)
let t_float_matrix =
  {
    bytes =
      (fun m -> 24 + Array.fold_left (fun acc r -> acc + 24 + (8 * Array.length r)) 0 m);
    nf_cycles = (fun m -> Array.fold_left (fun acc r -> acc + Array.length r) 4 m);
  }

(* ------------------------------------------------------------------ *)
(* One-shot channels                                                   *)
(* ------------------------------------------------------------------ *)

(** A one-shot channel owned by the PE that created it.  [recv] may
    only be called on the owner PE; [send] from anywhere. *)
type 'a chan = {
  owner : int;
  mutable value : 'a option;
  mutable waiters : (unit -> unit) list;
}

let new_chan () = { owner = Api.my_cap (); value = None; waiters = [] }

(** Create a channel owned by another PE (Eden's dynamic channel
    creation: the receiving process normally creates the channel and
    ships the channel name; creating it on the receiver's behalf models
    the same wiring). *)
let new_chan_at ~pe = { owner = pe; value = None; waiters = [] }

let chan_deliver ch v =
  ch.value <- Some v;
  let ws = ch.waiters in
  ch.waiters <- [];
  List.iter (fun k -> k ()) ws

(** Send [v]: the sender pays normal-form reduction and packing; the
    message then travels through the middleware to the owner's heap. *)
let send (tr : 'a trans) (ch : 'a chan) (v : 'a) =
  Api.charge (Cost.cycles (tr.nf_cycles v));
  let bytes = tr.bytes v in
  if ch.owner = Api.my_cap () then
    (* local loop-back: no middleware, just the placeholder update *)
    chan_deliver ch v
  else Api.send ~dst:ch.owner ~bytes (fun () -> chan_deliver ch v)

(** Receive: blocks until the placeholder is filled. *)
let rec recv (ch : 'a chan) : 'a =
  if Api.my_cap () <> ch.owner then
    failwith "Eden.recv: channel received on a PE that does not own it";
  match ch.value with
  | Some v -> v
  | None ->
      Api.block (fun wake -> ch.waiters <- wake :: ch.waiters);
      recv ch

(* ------------------------------------------------------------------ *)
(* Stream channels (top-level list communication)                      *)
(* ------------------------------------------------------------------ *)

(** An ordered stream of elements plus an end-of-stream mark,
    element-by-element as Eden communicates top-level lists. *)
type 'a stream = {
  s_owner : int;
  q : 'a Queue.t;
  mutable closed : bool;
  mutable s_waiters : (unit -> unit) list;
}

let new_stream () =
  { s_owner = Api.my_cap (); q = Queue.create (); closed = false; s_waiters = [] }

(** Create a stream owned by another PE (see {!new_chan_at}). *)
let new_stream_at ~pe =
  { s_owner = pe; q = Queue.create (); closed = false; s_waiters = [] }

let stream_wake st =
  let ws = st.s_waiters in
  st.s_waiters <- [];
  List.iter (fun k -> k ()) ws

(** Send one element into the stream (one message). *)
let put (tr : 'a trans) (st : 'a stream) (v : 'a) =
  Api.charge (Cost.cycles (tr.nf_cycles v));
  let bytes = tr.bytes v in
  if st.s_owner = Api.my_cap () then begin
    Queue.push v st.q;
    stream_wake st
  end
  else
    Api.send ~dst:st.s_owner ~bytes (fun () ->
        Queue.push v st.q;
        stream_wake st)

(** Close the stream (a small control message). *)
let close (st : 'a stream) =
  if st.s_owner = Api.my_cap () then begin
    st.closed <- true;
    stream_wake st
  end
  else
    Api.send ~dst:st.s_owner ~bytes:16 (fun () ->
        st.closed <- true;
        stream_wake st)

(** Take the next element; [None] at end of stream.  Blocks while the
    stream is empty but not yet closed. *)
let rec next (st : 'a stream) : 'a option =
  if Api.my_cap () <> st.s_owner then
    failwith "Eden.next: stream read on a PE that does not own it";
  match Queue.take_opt st.q with
  | Some v -> Some v
  | None ->
      if st.closed then None
      else begin
        Api.block (fun wake -> st.s_waiters <- wake :: st.s_waiters);
        next st
      end

(** Send a whole list as a stream and close it. *)
let put_list tr st xs =
  List.iter (fun x -> put tr st x) xs;
  close st

(** Collect a stream to a list (blocking until closed). *)
let to_list st =
  let rec go acc = match next st with None -> List.rev acc | Some v -> go (v :: acc) in
  go []

(* ------------------------------------------------------------------ *)
(* Process instantiation                                               *)
(* ------------------------------------------------------------------ *)

(** Size of the serialised process closure (graph shipped at
    instantiation time). *)
let closure_bytes = 512

(** [instantiate_at ~pe body] ships a process closure to [pe] and runs
    it there as a fresh thread.  This is Eden's [instantiateAt]
    primitive; the paper's [spawn] builds on it. *)
let instantiate_at ~pe (body : unit -> unit) =
  let me = Api.my_cap () in
  if pe = me then ignore (Api.spawn ~cap:pe body)
  else
    Api.send ~dst:pe ~bytes:closure_bytes (fun () ->
        ignore (Rts.spawn_raw (Rts.instance ()) ~cap:pe body))

(** Round-robin placement of [n] processes over all PEs, as Eden's
    default placement does (skipping the parent PE first). *)
let placement ~n =
  let npes = Api.ncaps () in
  let me = Api.my_cap () in
  List.init n (fun i -> (me + 1 + i) mod npes)

(** [spawn ~tr_in ~tr_out f inputs]: instantiate one process per input
    (Eden's [spawn]): each child waits on an input channel, applies
    [f], and sends its result back on a one-shot output channel.  The
    parent pays normal-form reduction and packing for every input it
    ships, each child pays for its result.  Outputs are returned in
    input order. *)
let spawn ~(tr_in : 'a trans) ~(tr_out : 'b trans) (f : 'a -> 'b)
    (inputs : 'a list) : 'b list =
  let n = List.length inputs in
  let pes = placement ~n in
  let outs = List.map (fun _ -> (new_chan () : 'b chan)) inputs in
  let inchans =
    List.map
      (fun pe -> ({ owner = pe; value = None; waiters = [] } : 'a chan))
      pes
  in
  (* start children: each waits on its input channel *)
  List.iteri
    (fun i out ->
      let pe = List.nth pes i in
      let inch = List.nth inchans i in
      instantiate_at ~pe (fun () ->
          let x = recv inch in
          send tr_out out (f x)))
    outs;
  (* ship the inputs (sender pays NF + packing per Trans) *)
  List.iter2 (fun inch input -> send tr_in inch input) inchans inputs;
  List.map recv outs
