(** Eden: explicit processes with channel communication on the
    distributed-heap runtime (paper Sec. II-A).

    Communication follows [Trans]-class semantics: values are reduced
    to normal form before sending (charged to the sender), top-level
    lists are streamed element by element, and channels are
    placeholders in the receiving PE's heap — a thread forcing an
    unfilled placeholder blocks and the arriving message wakes it
    (Sec. III-B).  All functions must run inside a simulation
    configured with [heap_mode = Distributed _]. *)

(** The [Trans] "type class": wire size and normal-form reduction cost
    of a value. *)
type 'a trans = { bytes : 'a -> int; nf_cycles : 'a -> int }

val t_unit : unit trans
val t_int : int trans
val t_float : float trans
val t_pair : 'a trans -> 'b trans -> ('a * 'b) trans
val t_list : 'a trans -> 'a list trans
val t_int_array : int array trans
val t_float_array : float array trans
val t_float_matrix : float array array trans

(** {1 One-shot channels} *)

type 'a chan

(** A channel owned by the calling PE. *)
val new_chan : unit -> 'a chan

(** A channel owned by another PE (models Eden's dynamic channel
    hand-shake where the receiver creates the channel). *)
val new_chan_at : pe:int -> 'a chan

(** Send: the sender pays normal-form reduction and packing; the
    message travels through the middleware to the owner's heap
    (same-PE sends are local loop-backs). *)
val send : 'a trans -> 'a chan -> 'a -> unit

(** Receive: blocks until the placeholder is filled.
    @raise Failure when called on a PE that does not own the channel. *)
val recv : 'a chan -> 'a

(** {1 Stream channels} (top-level list communication) *)

type 'a stream

val new_stream : unit -> 'a stream
val new_stream_at : pe:int -> 'a stream

(** Send one element (one message). *)
val put : 'a trans -> 'a stream -> 'a -> unit

(** End-of-stream mark (a small control message). *)
val close : 'a stream -> unit

(** Next element, or [None] at end of stream; blocks while the stream
    is empty but open.  Single-reader discipline (the owning
    process).
    @raise Failure when called on a PE that does not own the stream. *)
val next : 'a stream -> 'a option

(** Send a whole list element-wise, then close. *)
val put_list : 'a trans -> 'a stream -> 'a list -> unit

(** Collect to a list (blocks until closed). *)
val to_list : 'a stream -> 'a list

(** {1 Process instantiation} *)

(** Serialized size of a shipped process closure. *)
val closure_bytes : int

(** [instantiate_at ~pe body]: ship a process closure to [pe] and run
    it there as a fresh thread (Eden's [instantiateAt]). *)
val instantiate_at : pe:int -> (unit -> unit) -> unit

(** Default round-robin placement of [n] processes (children start on
    the PE after the parent's). *)
val placement : n:int -> int list

(** [spawn ~tr_in ~tr_out f inputs]: one process per input; each child
    waits on an input channel, applies [f], sends its result back.
    The parent pays for shipping inputs, children for results.
    Outputs are returned in input order. *)
val spawn :
  tr_in:'a trans -> tr_out:'b trans -> ('a -> 'b) -> 'a list -> 'b list
