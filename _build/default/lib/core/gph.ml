(** Glasgow parallel Haskell (GpH): [par], [seq] and evaluation
    strategies, on the shared-heap runtime.

    GpH programs annotate ordinary (lazy) expressions with [par] to
    record {e sparks} — closures the runtime {e may} evaluate in
    parallel — and drive evaluation degree with strategies
    (Trinder et al., "Algorithm + Strategy = Parallelism").

    Lazy values are reified as {!Repro_heap.Node} thunks carrying an
    explicit cost; real OCaml values are computed, virtual time is
    charged.  [force] implements GHC's thunk-entry protocol, including
    the lazy/eager black-holing distinction of the paper's
    Sec. IV-A.3. *)

module Node = Repro_heap.Node
module Cost = Repro_util.Cost
module Rts = Repro_parrts.Rts
module Config = Repro_parrts.Config
module Api = Repro_parrts.Rts.Api

type 'a t = 'a Node.t
(** A lazy value in the simulated shared heap. *)

(** [thunk ~cost f] suspends [f]; forcing it charges [cost] and then
    runs [f] (which may itself force further thunks, charging more).
    Creating the thunk charges its own heap allocation. *)
let thunk ?(size = 24) ~cost f =
  Api.charge (Cost.alloc size);
  Node.thunk ~size (Api.registry ()) (fun () ->
      Api.charge cost;
      f ())

(** An already-evaluated value (no work to force). *)
let return ?(size = 24) v = Node.value ~size (Api.registry ()) v

(** Force a lazy value to weak head normal form, with full GHC entry
    semantics: value hit, evaluation (with update), duplicate lazy
    entry, or blocking on a black hole. *)
let rec force (n : 'a t) : 'a =
  let eager =
    match Api.blackholing () with
    | Config.Eager_bh -> true
    | Config.Lazy_bh -> false
  in
  match Node.enter ~eager n with
  | Node.Ready v -> v
  | Node.Evaluate f ->
      Api.push_update (Node.Boxed n);
      let v = f () in
      Api.pop_update ();
      ignore (Node.update n v);
      v
  | Node.Wait ->
      Api.block (fun wake -> Node.add_waiter n wake);
      force n

(** [par n] records a spark for [n] (Haskell: [n `par` ...]).  The
    spark fizzles if [n] is already evaluated when activated. *)
let par (n : 'a t) =
  Api.spark
    ~still_needed:(fun () -> not (Node.is_value n))
    (fun () -> ignore (force n))

(** [seq n] forces [n] now (Haskell's [seq] used for sequential
    ordering). *)
let seq (n : 'a t) = ignore (force n)

(* ------------------------------------------------------------------ *)
(* Evaluation strategies                                               *)
(* ------------------------------------------------------------------ *)

type 'a strategy = 'a -> unit
(** A strategy evaluates (part of) its argument for effect.  Strategies
    here act on lazy cells and containers of lazy cells. *)

(** No evaluation at all (Haskell's [r0]). *)
let r0 : 'a strategy = fun _ -> ()

(** Reduce to weak head normal form. *)
let rwhnf : 'a t strategy = fun n -> ignore (force n)

(** Reduce to normal form.  For a single cell WHNF = NF in this model
    (element payloads are strict OCaml values). *)
let rnf : 'a t strategy = rwhnf

(** Evaluate every element of a (strict-spine) list with [s], entirely
    sequentially. *)
let seq_list (s : 'a strategy) (xs : 'a list) : unit = List.iter s xs

(** Spark every element of the list for parallel evaluation with [s]
    (Haskell: [parList]). *)
let par_list (s : 'a t strategy) (xs : 'a t list) : unit =
  List.iter
    (fun n ->
      Api.spark
        ~still_needed:(fun () -> not (Node.is_value n))
        (fun () -> s n))
    xs

(** [using x s] applies strategy [s] to [x] and returns [x]
    (Haskell's [`using`]). *)
let using x (s : 'a strategy) =
  s x;
  x

(** Chunked data parallelism: split [xs] into [chunks] pieces, build a
    thunk computing [f] over each piece (costed by [cost]), spark them
    all, and combine with [combine] (forcing in order).  This is the
    [parListChunk]/[splitIntoN] pattern the paper's GpH sumEuler uses. *)
let par_chunks ~chunks ~(cost : 'a list -> Cost.t) ~(f : 'a list -> 'b)
    ~(combine : 'b list -> 'c) (xs : 'a list) : 'c =
  if chunks <= 0 then invalid_arg "Gph.par_chunks: chunks must be positive";
  let n = List.length xs in
  let size = max 1 ((n + chunks - 1) / chunks) in
  let rec split acc rest =
    match rest with
    | [] -> List.rev acc
    | _ ->
        let rec take k l acc2 =
          if k = 0 then (List.rev acc2, l)
          else
            match l with
            | [] -> (List.rev acc2, [])
            | x :: tl -> take (k - 1) tl (x :: acc2)
        in
        let chunk, rest' = take size rest [] in
        split (chunk :: acc) rest'
  in
  let pieces = split [] xs in
  let nodes = List.map (fun piece -> thunk ~cost:(cost piece) (fun () -> f piece)) pieces in
  par_list rwhnf nodes;
  combine (List.map force nodes)

(** Parallel map via one spark per element (Haskell's [parMap rnf f]). *)
let par_map ~(cost : 'a -> Cost.t) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let nodes = List.map (fun x -> thunk ~cost:(cost x) (fun () -> f x)) xs in
  par_list rwhnf nodes;
  List.map force nodes

(** Divide and conquer with sparked sub-trees: problems are divided
    down to [is_trivial], sparking all but the last sub-problem at
    every level while [depth] allows (the standard GpH [parDivConq]
    pattern, of which parfib is the special case). *)
let div_conquer ~depth ~(divide : 'p -> 'p list) ~(is_trivial : 'p -> bool)
    ~(solve_cost : 'p -> Cost.t) ~(solve : 'p -> 's)
    ~(combine : 'p -> 's list -> 's) (problem : 'p) : 's =
  let rec local p =
    if is_trivial p then solve p else combine p (List.map local (divide p))
  in
  let rec node depth p : 's t =
    if depth <= 0 || is_trivial p then thunk ~cost:(solve_cost p) (fun () -> local p)
    else
      thunk ~cost:(Cost.make 120 ~alloc:64) (fun () ->
          let children = List.map (node (depth - 1)) (divide p) in
          (* spark all but the last; evaluate the last in-line *)
          (match List.rev children with
          | _last :: sparked_rev -> List.iter par (List.rev sparked_rev)
          | [] -> ());
          combine p (List.map force children))
  in
  force (node depth problem)
