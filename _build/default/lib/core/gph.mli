(** Glasgow parallel Haskell (GpH): [par], [seq] and evaluation
    strategies on the shared-heap runtime (paper Sec. II-B).

    Lazy values are reified as cost-annotated thunks; {!force}
    implements GHC's thunk-entry protocol including the lazy/eager
    black-holing distinction of Sec. IV-A.3.  All functions must run
    inside a simulated thread ({!Repro_parrts.Rts.run}). *)

module Cost = Repro_util.Cost

type 'a t = 'a Repro_heap.Node.t
(** A lazy value in the simulated shared heap. *)

(** [thunk ~cost f] suspends [f]; forcing charges [cost] then runs [f]
    (which may force further thunks, charging more).  Creation charges
    the node's own allocation. *)
val thunk : ?size:int -> cost:Cost.t -> (unit -> 'a) -> 'a t

(** An already-evaluated value. *)
val return : ?size:int -> 'a -> 'a t

(** Force to weak head normal form: value hit, evaluation (with
    update), duplicate lazy entry, or blocking on a black hole. *)
val force : 'a t -> 'a

(** [par n] records a spark for [n] (Haskell: [n `par` e]); fizzles if
    [n] is evaluated before activation. *)
val par : 'a t -> unit

(** Force now (Haskell's [seq] for sequential ordering). *)
val seq : 'a t -> unit

(** {1 Evaluation strategies} (Trinder et al., JFP 1998) *)

type 'a strategy = 'a -> unit

(** No evaluation ([r0]). *)
val r0 : 'a strategy

(** Reduce to weak head normal form. *)
val rwhnf : 'a t strategy

(** Reduce to normal form (= WHNF in this model: payloads are strict
    OCaml values). *)
val rnf : 'a t strategy

(** Apply [s] to every element, sequentially ([seqList]). *)
val seq_list : 'a strategy -> 'a list -> unit

(** Spark every element for parallel evaluation ([parList]). *)
val par_list : 'a t strategy -> 'a t list -> unit

(** [using x s] applies [s] to [x] and returns [x]. *)
val using : 'a -> 'a strategy -> 'a

(** Chunked data parallelism ([parListChunk]/[splitIntoN]): split into
    [chunks] pieces, spark a thunk per piece, combine forced results. *)
val par_chunks :
  chunks:int ->
  cost:('a list -> Cost.t) ->
  f:('a list -> 'b) ->
  combine:('b list -> 'c) ->
  'a list ->
  'c

(** One spark per element ([parMap rnf f]). *)
val par_map : cost:('a -> Cost.t) -> ('a -> 'b) -> 'a list -> 'b list

(** Divide and conquer with sparked sub-trees (the [parDivConq]
    pattern): divide down to [is_trivial], sparking all but the last
    sub-problem while [depth] allows. *)
val div_conquer :
  depth:int ->
  divide:('p -> 'p list) ->
  is_trivial:('p -> bool) ->
  solve_cost:('p -> Cost.t) ->
  solve:('p -> 's) ->
  combine:('p -> 's list -> 's) ->
  'p ->
  's
