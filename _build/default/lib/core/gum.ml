(** GUM: the distributed-memory implementation of GpH (paper
    Sec. III-B; Trinder et al., PLDI'96).

    Where Eden gives the programmer explicit processes, GUM keeps GpH's
    implicit model on distributed heaps by adding, per the paper:

    - {b passive work distribution}: each PE keeps a local spark pool;
      an idle PE sends a [FISH] message to a random PE, which replies
      with a [SCHEDULE] carrying a spark (a serialised subgraph) or a
      [NOFISH] refusal — work moves only when requested;
    - {b virtual shared memory by global addressing}: graph shipped to
      another PE refers to remote data through {e global addresses};
      forcing such a reference sends a [FETCH] and blocks until the
      owner's [RESUME] arrives with the data, which is then cached
      locally;
    - {b weighted reference counting} for global garbage collection:
      every global address carries weight; shipping a reference splits
      the weight, returning it reunites; the owner drops its table
      entry when all weight has come home.

    This module implements all three on the distributed runtime and a
    [parList]-style API on top, so the same GpH-shaped program can run
    on shared memory (via {!Gph}) or on GUM — the comparison the
    paper's infrastructure historically supported. *)

module Cost = Repro_util.Cost
module Rng = Repro_util.Rng
module Rts = Repro_parrts.Rts
module Api = Repro_parrts.Rts.Api

(* ------------------------------------------------------------------ *)
(* Message-size constants (protocol overheads, bytes)                  *)
(* ------------------------------------------------------------------ *)

let fish_bytes = 48
let nofish_bytes = 32
let schedule_overhead_bytes = 96
let fetch_bytes = 64
let resume_overhead_bytes = 48

(* ------------------------------------------------------------------ *)
(* Context                                                             *)
(* ------------------------------------------------------------------ *)

(** A GUM spark: the work closure runs on whichever PE schedules it;
    [graph_bytes] is the size of the subgraph serialised into the
    SCHEDULE message. *)
type gum_spark = { run : unit -> unit; graph_bytes : int }

type pe_state = {
  pool : gum_spark Queue.t;
  mutable fishing : bool;  (** a FISH from this PE is in flight *)
  mutable fish_backoff_ns : int;
  rng : Rng.t;
}

type stats = {
  mutable fish_sent : int;
  mutable nofish : int;
  mutable schedules : int;
  mutable fetches : int;
}

type ctx = {
  pes : pe_state array;
  stats : stats;
  (* global-address table: one per owner PE, id -> outstanding weight *)
  git : (int * int, int) Hashtbl.t;  (** (owner, id) -> weight out *)
  mutable next_gaddr : int;
}

let current : ctx option ref = ref None

let ctx () =
  match !current with
  | Some c -> c
  | None -> failwith "Gum: not inside Gum.run"

let stats () = (ctx ()).stats

(* ------------------------------------------------------------------ *)
(* Weighted reference counting                                         *)
(* ------------------------------------------------------------------ *)

let max_weight = 1 lsl 16

(** A reference to data living on [owner]'s heap.  The [payload] is
    the real OCaml value (the simulated "graph"); non-owners must
    {!fetch} before using it, which charges the communication and
    caches it. *)
type 'a gref = {
  owner : int;
  gaddr : int;
  bytes : int;
  payload : 'a;
  mutable weight : int;  (** weight held by this handle *)
  cache : (int, unit) Hashtbl.t;  (** PEs that have fetched a copy *)
}

(** Publish a value into the global heap of the calling PE. *)
let global ~bytes payload =
  let c = ctx () in
  let owner = Api.my_cap () in
  c.next_gaddr <- c.next_gaddr + 1;
  let gaddr = c.next_gaddr in
  (* the owner's table records the weight given out to handles *)
  Hashtbl.replace c.git (owner, gaddr) max_weight;
  {
    owner;
    gaddr;
    bytes;
    payload;
    weight = max_weight;
    cache = Hashtbl.create 4;
  }

(* Split a handle's weight when it is shipped inside a spark. *)
let split_weight (r : 'a gref) =
  if r.weight <= 1 then r.weight (* degenerate: ship whole weight *)
  else begin
    let half = r.weight / 2 in
    r.weight <- r.weight - half;
    half
  end

(* Return [w] weight to the owner's table; drop the entry when all
   weight is home. *)
let return_weight c (r : 'a gref) w =
  let key = (r.owner, r.gaddr) in
  match Hashtbl.find_opt c.git key with
  | None -> ()
  | Some out ->
      let out = out - w in
      if out <= 0 then Hashtbl.remove c.git key
      else Hashtbl.replace c.git key out

(** Release the calling handle's weight (the holder no longer needs
    the global address). *)
let release (r : 'a gref) =
  let c = ctx () in
  return_weight c r r.weight;
  r.weight <- 0

(** Number of live global-address-table entries (for leak checks). *)
let live_gaddrs () = Hashtbl.length (ctx ()).git

(** Force a global reference on the calling PE.  Owner (or a PE that
    has already fetched): free.  Otherwise: FETCH to the owner, block
    until the RESUME delivers the payload, cache it. *)
let fetch (r : 'a gref) : 'a =
  let c = ctx () in
  let me = Api.my_cap () in
  if me = r.owner || Hashtbl.mem r.cache me then r.payload
  else begin
    c.stats.fetches <- c.stats.fetches + 1;
    let arrived = ref false in
    let waiter = ref None in
    Api.send ~dst:r.owner ~bytes:fetch_bytes (fun () ->
        (* owner side: reply with the data *)
        let rts = Rts.instance () in
        Rts.send_message rts ~dst:me ~bytes:(resume_overhead_bytes + r.bytes)
          (fun () ->
            arrived := true;
            Hashtbl.replace r.cache me ();
            Option.iter (fun k -> k ()) !waiter));
    if not !arrived then Api.block (fun wake -> waiter := Some wake);
    (* unpacking the arrived graph costs mutator work *)
    Api.charge (Cost.make (r.bytes / 4) ~alloc:r.bytes);
    r.payload
  end

(* ------------------------------------------------------------------ *)
(* Fishing                                                             *)
(* ------------------------------------------------------------------ *)

(** Record a spark in the local PE's pool (GpH [par] on GUM). *)
let spark ?(graph_bytes = 256) run =
  let c = ctx () in
  Queue.push { run; graph_bytes } c.pes.(Api.my_cap ()).pool;
  Api.charge (Cost.make 80 ~alloc:32)

(* The fisher daemon: run local sparks; when the pool dries up, fish
   from random victims with exponential back-off. *)
let fisher_body c pe () =
  let st = c.pes.(pe) in
  let rec loop () =
    match Queue.take_opt st.pool with
    | Some s ->
        st.fish_backoff_ns <- 20_000;
        s.run ();
        loop ()
    | None ->
        (* fish from a random victim *)
        let npes = Array.length c.pes in
        if npes <= 1 then ()
        else begin
          let victim =
            let v = Rng.int st.rng (npes - 1) in
            if v >= pe then v + 1 else v
          in
          c.stats.fish_sent <- c.stats.fish_sent + 1;
          let reply = ref None in
          let waiter = ref None in
          Api.send ~dst:victim ~bytes:fish_bytes (fun () ->
              (* victim side (scheduler context): pop a spark and
                 SCHEDULE it back, or refuse *)
              let rts = Rts.instance () in
              match Queue.take_opt c.pes.(victim).pool with
              | Some s ->
                  c.stats.schedules <- c.stats.schedules + 1;
                  Rts.send_message rts ~dst:pe
                    ~bytes:(schedule_overhead_bytes + s.graph_bytes)
                    (fun () ->
                      reply := Some (Some s);
                      Option.iter (fun k -> k ()) !waiter)
              | None ->
                  c.stats.nofish <- c.stats.nofish + 1;
                  Rts.send_message rts ~dst:pe ~bytes:nofish_bytes (fun () ->
                      reply := Some None;
                      Option.iter (fun k -> k ()) !waiter));
          if !reply = None then Api.block (fun wake -> waiter := Some wake);
          match !reply with
          | Some (Some s) ->
              st.fish_backoff_ns <- 20_000;
              (* unpack the scheduled subgraph *)
              Api.charge (Cost.make (s.graph_bytes / 4) ~alloc:s.graph_bytes);
              s.run ();
              loop ()
          | Some None | None ->
              (* refused: back off, then try again *)
              Api.charge_ns st.fish_backoff_ns;
              st.fish_backoff_ns <- min 2_000_000 (st.fish_backoff_ns * 2);
              loop ()
        end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Running GUM programs                                                *)
(* ------------------------------------------------------------------ *)

(** [main prog]: initialise the GUM layer inside a distributed-mode
    simulation — per-PE spark pools and one fisher daemon per non-main
    PE — then run [prog] as the main computation on PE 0.  The fishers
    keep draining work until the main thread finishes. *)
let main (prog : unit -> 'a) : 'a =
  (match !current with
  | Some _ -> failwith "Gum.main: already inside Gum.main"
  | None -> ());
  let cfg = Api.config () in
  if not (Repro_parrts.Config.is_distributed cfg) then
    failwith "Gum.main: requires a Distributed heap_mode configuration";
  let npes = Api.ncaps () in
  let seed_rng = Rng.create (cfg.seed + 77) in
  let c =
    {
      pes =
        Array.init npes (fun _ ->
            {
              pool = Queue.create ();
              fishing = false;
              fish_backoff_ns = 20_000;
              rng = Rng.split seed_rng;
            });
      stats = { fish_sent = 0; nofish = 0; schedules = 0; fetches = 0 };
      git = Hashtbl.create 64;
      next_gaddr = 0;
    }
  in
  current := Some c;
  Fun.protect
    ~finally:(fun () -> current := None)
    (fun () ->
      (* start one fisher per PE except the main PE (whose own thread
         evaluates the graph, as in GUM's main PE) *)
      for pe = 1 to npes - 1 do
        ignore (Api.spawn ~cap:pe (fisher_body c pe))
      done;
      prog ())

(** Parallel sum over chunks in GpH style on GUM: the main PE sparks
    one packet of work per chunk (payload published as global data),
    evaluates what is left locally, and collects partial results. *)
let par_chunk_sum ~(chunk_cost : 'a list -> Cost.t)
    ~(f : 'a list -> int) (pieces : 'a list list) : int =
  let n = List.length pieces in
  let results = Array.make n None in
  let remaining = ref n in
  let waiter = ref None in
  List.iteri
    (fun i piece ->
      let bytes = 32 + (24 * List.length piece) in
      spark ~graph_bytes:bytes (fun () ->
          Api.charge (chunk_cost piece);
          results.(i) <- Some (f piece);
          decr remaining;
          if !remaining = 0 then Option.iter (fun k -> k ()) !waiter))
    pieces;
  (* the main thread participates by draining its own pool, exactly
     like a fisher that never fishes *)
  let c = ctx () in
  let my_pool = c.pes.(Api.my_cap ()).pool in
  let rec drain () =
    match Queue.take_opt my_pool with
    | Some s ->
        s.run ();
        drain ()
    | None -> ()
  in
  drain ();
  if !remaining > 0 then Api.block (fun wake -> waiter := Some wake);
  Array.fold_left
    (fun acc r -> match r with Some v -> acc + v | None -> acc)
    0 results
