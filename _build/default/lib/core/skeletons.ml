(** Algorithmic and topology skeletons for Eden (paper Sec. II-A).

    These are the higher-order parallel building blocks the paper's
    Eden benchmarks use: [parMap], [parMapFarm], [parReduce],
    [parMapReduce] (Google-MapReduce style), [masterWorker], and the
    topology skeletons [ring], [torus] (used by Cannon's matrix
    multiplication) and [pipeline].

    Every skeleton is an ordinary higher-order function over the Eden
    process/channel primitives — and, as the paper stresses, thereby
    remains amenable to customisation. *)

module Listx = Repro_util.Listx
module Api = Repro_parrts.Rts.Api
open Eden

(** Number of PEs available ([noPE] in Eden). *)
let no_pe () = Api.ncaps ()

(* ------------------------------------------------------------------ *)
(* Map-like skeletons                                                  *)
(* ------------------------------------------------------------------ *)

(** [par_map]: one process per list element (only sensible for short
    lists of chunky tasks). *)
let par_map ~tr_in ~tr_out f xs = spawn ~tr_in ~tr_out f xs

(** [par_map_farm]: the usual Eden farm — [np] processes (default one
    per PE), inputs dealt round-robin ([unshuffle]), outputs
    re-interleaved ([shuffle]).  Semantically equal to [List.map f]. *)
let par_map_farm ?np ~tr_in ~tr_out f xs =
  let np = match np with Some n -> n | None -> no_pe () in
  let pieces = Listx.unshuffle np xs in
  let results =
    spawn ~tr_in:(t_list tr_in) ~tr_out:(t_list tr_out) (List.map f) pieces
  in
  Listx.shuffle results

(** [par_reduce f ntr xs]: parallel fold of an associative [f] —
    each process folds one contiguous chunk, the parent folds the
    per-process results (the paper's Sec. II-A.1 example). *)
let par_reduce ?np ~tr f ntr xs =
  let np = match np with Some n -> n | None -> no_pe () in
  let pieces = Listx.split_into_n np xs in
  let partials =
    spawn ~tr_in:(t_list tr) ~tr_out:tr (List.fold_left f ntr) pieces
  in
  List.fold_left f ntr partials

(** [par_map_reduce ~mapf ~reducef ~merge xs]: Google-MapReduce as in
    the paper: [mapf] turns each input into key-value pairs, [reducef]
    reduces the values of one key {e locally} on the mapping process,
    and [merge] combines the per-process partial reductions of the same
    key at the parent. *)
let par_map_reduce ?np ~tr_key ~tr_val ~(mapf : 'c -> ('d * 'a) list)
    ~(reducef : 'd -> 'a list -> 'b) ~(merge : 'd -> 'b list -> 'b)
    (xs : 'c list) : ('d * 'b) list =
  ignore tr_val;
  let np = match np with Some n -> n | None -> no_pe () in
  let pieces = Listx.unshuffle np xs in
  let worker piece =
    let pairs = List.concat_map mapf piece in
    List.map (fun (k, vs) -> (k, reducef k vs)) (Listx.group_by_key pairs)
  in
  let tr_piece =
    {
      bytes = (fun (xs : 'c list) -> 24 + (24 * List.length xs));
      nf_cycles = (fun xs -> 8 + List.length xs);
    }
  in
  let tr_out = t_list (t_pair tr_key { bytes = (fun _ -> 24); nf_cycles = (fun _ -> 4) }) in
  let partials = spawn ~tr_in:tr_piece ~tr_out worker pieces in
  let grouped = Listx.group_by_key (List.concat partials) in
  List.map (fun (k, bs) -> (k, merge k bs)) grouped

(* ------------------------------------------------------------------ *)
(* Master/worker                                                       *)
(* ------------------------------------------------------------------ *)

(** [master_worker ~np ~prefetch ~tr_task ~tr_res f tasks]: a master
    process farms a dynamically growing task pool out to [np] worker
    processes.  Each worker application [f t] yields new tasks plus a
    result ([a -> ([a], b)]), supporting backtracking/branch-and-bound
    style search (paper Sec. II-A).  Results are returned in completion
    order. *)
let master_worker ?np ?(prefetch = 2) ~tr_task ~tr_res
    (f : 'a -> 'a list * 'b) (initial : 'a list) : 'b list =
  let np = match np with Some n -> n | None -> max 1 (no_pe () - 1) in
  let me = Api.my_cap () in
  let npes = Api.ncaps () in
  let worker_pes = List.init np (fun i -> (me + 1 + i) mod npes) in
  (* task streams, one per worker, owned by that worker's PE;
     result stream owned by the master *)
  let task_streams = List.map (fun pe -> new_stream_at ~pe) worker_pes in
  let results :
      (int * 'a list * 'b) stream =
    new_stream ()
  in
  let tr_reply =
    {
      bytes =
        (fun ((_, ts, r) : int * 'a list * 'b) ->
          32 + List.fold_left (fun acc t -> acc + tr_task.bytes t) 0 ts
          + tr_res.bytes r);
      nf_cycles =
        (fun (_, ts, r) ->
          8 + List.fold_left (fun acc t -> acc + tr_task.nf_cycles t) 0 ts
          + tr_res.nf_cycles r);
    }
  in
  (* start workers *)
  List.iteri
    (fun wid (pe, ts) ->
      instantiate_at ~pe (fun () ->
          let rec loop () =
            match next ts with
            | None -> ()
            | Some task ->
                let new_tasks, result = f task in
                put tr_reply results (wid, new_tasks, result);
                loop ()
          in
          loop ()))
    (List.combine worker_pes task_streams);
  let task_arr = Array.of_list task_streams in
  (* master loop *)
  let pool = Queue.create () in
  List.iter (fun t -> Queue.push t pool) initial;
  let outstanding = ref 0 in
  let out = ref [] in
  let send_task wid =
    match Queue.take_opt pool with
    | None -> ()
    | Some t ->
        incr outstanding;
        put tr_task task_arr.(wid) t
  in
  (* initial prefetch: [prefetch] tasks per worker *)
  List.iteri
    (fun wid _ ->
      for _ = 1 to prefetch do
        send_task wid
      done)
    worker_pes;
  let rec master () =
    if !outstanding = 0 then ()
    else
      match next results with
      | None -> ()
      | Some (wid, new_tasks, result) ->
          decr outstanding;
          out := result :: !out;
          List.iter (fun t -> Queue.push t pool) new_tasks;
          (* keep the returning worker (and all others) fed *)
          send_task wid;
          while
            (not (Queue.is_empty pool))
            && !outstanding < np * prefetch
          do
            (* top up the least-loaded workers round-robin *)
            send_task (!outstanding mod np)
          done;
          master ()
  in
  master ();
  (* shut the workers down *)
  List.iter close task_streams;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Topology skeletons                                                  *)
(* ------------------------------------------------------------------ *)

(** [ring ~n ~tr_ring ~distribute ~worker]: [n] processes arranged in a
    unidirectional ring (paper Sec. II-A: topology skeletons).  Process
    [k] receives [distribute k] as its static input, reads ring traffic
    from its left neighbour, writes ring traffic to its right neighbour
    and finally produces an output; the parent collects all outputs in
    ring order.

    The worker receives [(recv, send, close_right)]: [recv] yields
    [None] once the left neighbour closed its stream. *)
let ring ~n ~tr_ring ~tr_out
    ~(distribute : int -> 'i)
    ~(worker :
       int ->
       'i ->
       (unit -> 'r option) ->
       ('r -> unit) ->
       (unit -> unit) ->
       'o) : 'o list =
  if n <= 0 then invalid_arg "Skeletons.ring: n must be positive";
  let npes = Api.ncaps () in
  let me = Api.my_cap () in
  let pe_of k = (me + 1 + k) mod npes in
  (* ring link k: stream from process (k-1+n) mod n into process k,
     owned by process k's PE *)
  let links = Array.init n (fun k -> new_stream_at ~pe:(pe_of k)) in
  let outs = List.init n (fun _ -> new_chan ()) in
  List.iteri
    (fun k out ->
      instantiate_at ~pe:(pe_of k) (fun () ->
          let left = links.(k) in
          let right = links.((k + 1) mod n) in
          let recv () = next left in
          let send_right r = put tr_ring right r in
          let close_right () = close right in
          let o = worker k (distribute k) recv send_right close_right in
          send tr_out out o))
    outs;
  List.map recv outs

(** [torus ~rows ~cols ~tr_a ~tr_b ~worker]: a 2-D toroid of processes;
    within each row, ['a]-values circulate leftwards and within each
    column ['b]-values circulate upwards — the communication structure
    of Cannon's algorithm.  Worker [(r,c)] gets receive/send closures
    for both rings plus its coordinates. *)
let torus ~rows ~cols ~tr_a ~tr_b ~tr_out
    ~(worker :
       row:int ->
       col:int ->
       recv_a:(unit -> 'a option) ->
       send_a:('a -> unit) ->
       recv_b:(unit -> 'b option) ->
       send_b:('b -> unit) ->
       'o) : 'o list =
  if rows <= 0 || cols <= 0 then invalid_arg "Skeletons.torus: bad dimensions";
  let n = rows * cols in
  let npes = Api.ncaps () in
  let me = Api.my_cap () in
  let pe_of r c = (me + 1 + (r * cols) + c) mod npes in
  (* a_in.(r).(c): horizontal stream into (r,c), i.e. from (r, c+1)
     [A-blocks shift left]; b_in.(r).(c): vertical stream into (r,c),
     i.e. from (r+1, c) [B-blocks shift up]. *)
  let a_in = Array.init rows (fun r -> Array.init cols (fun c -> new_stream_at ~pe:(pe_of r c))) in
  let b_in = Array.init rows (fun r -> Array.init cols (fun c -> new_stream_at ~pe:(pe_of r c))) in
  let outs = List.init n (fun _ -> new_chan ()) in
  List.iteri
    (fun idx out ->
      let r = idx / cols and c = idx mod cols in
      instantiate_at ~pe:(pe_of r c) (fun () ->
          let recv_a () = next a_in.(r).(c) in
          let recv_b () = next b_in.(r).(c) in
          (* sending A leftwards: our A goes to (r, c-1)'s a_in *)
          let send_a v = put tr_a a_in.(r).((c + cols - 1) mod cols) v in
          let send_b v = put tr_b b_in.((r + rows - 1) mod rows).(c) v in
          let o = worker ~row:r ~col:c ~recv_a ~send_a ~recv_b ~send_b in
          close a_in.(r).((c + cols - 1) mod cols);
          close b_in.((r + rows - 1) mod rows).(c);
          send tr_out out o))
    outs;
  List.map recv outs

(** [div_conquer]: Eden's depth-bounded divide-and-conquer skeleton
    (Berthold & Loogen, "skeletons for recursively unfolding process
    topologies").  The call tree is unfolded into {e processes} down to
    [depth]; below that, problems are solved by local sequential
    recursion.  [combine p sub_solutions] joins children's solutions. *)
let rec div_conquer ~(tr : 's trans) ~depth ~(divide : 'p -> 'p list)
    ~(is_trivial : 'p -> bool) ~(solve : 'p -> 's)
    ~(combine : 'p -> 's list -> 's) (problem : 'p) : 's =
  let rec local p =
    if is_trivial p then solve p else combine p (List.map local (divide p))
  in
  if depth <= 0 || is_trivial problem then local problem
  else begin
    let subs = divide problem in
    (* ship each sub-problem to a child process which recursively
       unfolds one level less *)
    let tr_problem : 'p trans =
      { bytes = (fun _ -> 256); nf_cycles = (fun _ -> 32) }
    in
    let solutions =
      spawn ~tr_in:tr_problem ~tr_out:tr
        (fun p ->
          div_conquer ~tr ~depth:(depth - 1) ~divide ~is_trivial ~solve
            ~combine p)
        subs
    in
    combine problem solutions
  end

(** [pipeline ~tr stages xs]: chain the [stages] as processes connected
    by element streams; the list [xs] flows through every stage. *)
let pipeline ~tr (stages : ('a -> 'a) list) (xs : 'a list) : 'a list =
  match stages with
  | [] -> xs
  | _ ->
      let nstages = List.length stages in
      let npes = Api.ncaps () in
      let me = Api.my_cap () in
      let pe_of k = (me + 1 + k) mod npes in
      (* stream into stage k (stage 0 fed by the parent); final stream
         back to the parent *)
      let streams =
        Array.init (nstages + 1) (fun k ->
            if k = nstages then new_stream_at ~pe:me
            else new_stream_at ~pe:(pe_of k))
      in
      List.iteri
        (fun k stage ->
          instantiate_at ~pe:(pe_of k) (fun () ->
              let rec loop () =
                match next streams.(k) with
                | None -> close streams.(k + 1)
                | Some v ->
                    put tr streams.(k + 1) (stage v);
                    loop ()
              in
              loop ()))
        stages;
      put_list tr streams.(0) xs;
      to_list streams.(nstages)
