(** Algorithmic and topology skeletons for Eden (paper Sec. II-A):
    higher-order parallel building blocks over the process/channel
    primitives — and, as the paper stresses, ordinary functions that
    remain amenable to customisation. *)

(** Number of PEs ([noPE]). *)
val no_pe : unit -> int

(** One process per element (short lists of chunky tasks). *)
val par_map :
  tr_in:'a Eden.trans -> tr_out:'b Eden.trans -> ('a -> 'b) -> 'a list -> 'b list

(** The Eden farm: [np] processes (default one per PE), inputs dealt
    round-robin ([unshuffle]), outputs re-interleaved ([shuffle]).
    Semantically [List.map f]. *)
val par_map_farm :
  ?np:int ->
  tr_in:'a Eden.trans ->
  tr_out:'b Eden.trans ->
  ('a -> 'b) ->
  'a list ->
  'b list

(** Parallel fold of an associative operator: each process folds one
    contiguous chunk, the parent folds the partial results. *)
val par_reduce :
  ?np:int -> tr:'a Eden.trans -> ('a -> 'a -> 'a) -> 'a -> 'a list -> 'a

(** Google-MapReduce as in the paper (Sec. II-A): [mapf] emits
    key-value pairs, [reducef] reduces one key's values locally on the
    mapping process, [merge] combines per-process partials at the
    parent. *)
val par_map_reduce :
  ?np:int ->
  tr_key:'d Eden.trans ->
  tr_val:'e ->
  mapf:('c -> ('d * 'a) list) ->
  reducef:('d -> 'a list -> 'b) ->
  merge:('d -> 'b list -> 'b) ->
  'c list ->
  ('d * 'b) list

(** A master process farms a dynamically growing task pool out to [np]
    workers; [f task] yields new tasks plus a result, supporting
    backtracking / branch-and-bound (Sec. II-A).  Results in
    completion order. *)
val master_worker :
  ?np:int ->
  ?prefetch:int ->
  tr_task:'a Eden.trans ->
  tr_res:'b Eden.trans ->
  ('a -> 'a list * 'b) ->
  'a list ->
  'b list

(** {1 Topology skeletons} *)

(** [n] processes in a unidirectional ring.  Process [k] receives
    [distribute k], reads ring traffic from its left neighbour
    ([recv () = None] once closed), writes to its right neighbour, and
    produces an output; outputs are collected in ring order. *)
val ring :
  n:int ->
  tr_ring:'r Eden.trans ->
  tr_out:'o Eden.trans ->
  distribute:(int -> 'i) ->
  worker:
    (int -> 'i -> (unit -> 'r option) -> ('r -> unit) -> (unit -> unit) -> 'o) ->
  'o list

(** A 2-D toroid: ['a]-values circulate leftwards within rows,
    ['b]-values upwards within columns — Cannon's communication
    structure.  Outputs in row-major order. *)
val torus :
  rows:int ->
  cols:int ->
  tr_a:'a Eden.trans ->
  tr_b:'b Eden.trans ->
  tr_out:'o Eden.trans ->
  worker:
    (row:int ->
    col:int ->
    recv_a:(unit -> 'a option) ->
    send_a:('a -> unit) ->
    recv_b:(unit -> 'b option) ->
    send_b:('b -> unit) ->
    'o) ->
  'o list

(** Depth-bounded divide-and-conquer process unfolding: the call tree
    becomes processes down to [depth], sequential recursion below. *)
val div_conquer :
  tr:'s Eden.trans ->
  depth:int ->
  divide:('p -> 'p list) ->
  is_trivial:('p -> bool) ->
  solve:('p -> 's) ->
  combine:('p -> 's list -> 's) ->
  'p ->
  's

(** Chain the stages as processes connected by element streams. *)
val pipeline : tr:'a Eden.trans -> ('a -> 'a) list -> 'a list -> 'a list
