(** The named runtime configurations measured in the paper.

    Fig. 1 compares five "program version and runtime system" rows for
    sumEuler; Figs. 3–5 reuse the same versions (plus the black-holing
    variants) on other machines and workloads.  Each function here
    produces the {!Repro_parrts.Config.t} for one row. *)

module Config = Repro_parrts.Config
module Gc_model = Repro_heap.Gc_model
module Machine = Repro_machine.Machine
module Transport = Repro_mp.Transport

type version = {
  label : string;  (** the paper's row/series label *)
  config : Config.t;
}

(* "GpH in plain GHC-6.9": shared heap, 0.5 MB allocation areas, legacy
   barrier, push-polling balancing, lazy black-holing, one thread per
   spark. *)
let gph_plain ?(machine = Machine.intel8) ?(ncaps = 8) () =
  {
    label = "GpH in plain GHC-6.9";
    config = Config.default ~machine ~ncaps ();
  }

(* "GpH in plain GHC-6.9, big allocation area". *)
let gph_bigalloc ?(machine = Machine.intel8) ?(ncaps = 8) () =
  let base = Config.default ~machine ~ncaps () in
  {
    label = "GpH in plain GHC-6.9, big allocation area";
    config = { base with gc = Gc_model.big_area base.gc };
  }

(* "GpH, above + improved GC synchronisation". *)
let gph_sync ?(machine = Machine.intel8) ?(ncaps = 8) () =
  let base = (gph_bigalloc ~machine ~ncaps ()).config in
  {
    label = "GpH, above + improved GC synchronisation";
    config = { base with gc = Gc_model.improved_sync base.gc };
  }

(* "GpH, above + work stealing for sparks": lock-free deques with
   stealing, plus the spark-thread activation of Sec. IV-A.4 that the
   new system uses. *)
let gph_steal ?(machine = Machine.intel8) ?(ncaps = 8) () =
  let base = (gph_sync ~machine ~ncaps ()).config in
  {
    label = "GpH, above + work stealing for sparks";
    config =
      {
        base with
        load_balance = Config.Work_stealing;
        spark_runner = Config.Spark_threads;
      };
  }

(* Eager black-holing variants (Sec. IV-A.3 / Fig. 5). *)
let with_eager v =
  {
    label = v.label ^ ", eager black-holing";
    config = { v.config with blackholing = Config.Eager_bh };
  }

(* "Eden-6.8.3, N PEs running under PVM": distributed heaps, one per
   (virtual) PE, PVM middleware mapped onto shared memory. *)
let eden ?(machine = Machine.intel8) ?(npes = 8)
    ?(transport = Transport.pvm) () =
  let base = Config.default ~machine ~ncaps:npes () in
  {
    label =
      Printf.sprintf "Eden-6.8.3, %d PEs running under %s" npes
        (String.uppercase_ascii transport.Transport.name);
    config =
      {
        base with
        heap_mode = Config.Distributed transport;
        (* the distributed RTEs are plain sequential GHC runtimes:
           balancing/stealing knobs are irrelevant, sparks unused *)
        load_balance = Config.Push_polling;
      };
  }

(* GUM: GpH on distributed heaps (Sec. III-B) — the same middleware
   mapping as Eden, with implicit work distribution by fishing. *)
let gum ?(machine = Machine.intel8) ?(npes = 8) ?(transport = Transport.pvm)
    () =
  let base = Config.default ~machine ~ncaps:npes () in
  {
    label =
      Printf.sprintf "GpH/GUM, %d PEs running under %s" npes
        (String.uppercase_ascii transport.Transport.name);
    config =
      {
        base with
        heap_mode = Config.Distributed transport;
        migrate_threads = false;
      };
  }

(* The semi-distributed local/global heap organisation sketched as
   future work in Sec. VI-A (Doligez–Leroy style), as an extension. *)
let gph_semi_distributed ?(machine = Machine.intel8) ?(ncaps = 8) () =
  let base = (gph_steal ~machine ~ncaps ()).config in
  {
    label = "GpH, work stealing + semi-distributed heap (future work)";
    config =
      {
        base with
        heap_mode =
          Config.Semi_distributed
            { global_area = 32 * 1024 * 1024; promote_ns_per_byte = 0.6 };
      };
  }

(* The five rows of Fig. 1, in table order. *)
let fig1_versions ?(machine = Machine.intel8) ?(ncaps = 8) () =
  [
    gph_plain ~machine ~ncaps ();
    gph_bigalloc ~machine ~ncaps ();
    gph_sync ~machine ~ncaps ();
    gph_steal ~machine ~ncaps ();
    eden ~machine ~npes:ncaps ();
  ]
