(** The named runtime configurations measured in the paper: the five
    rows of Fig. 1 plus the black-holing variants of Fig. 5 and the
    future-work semi-distributed heap. *)

type version = {
  label : string;  (** the paper's row/series label *)
  config : Repro_parrts.Config.t;
}

(** "GpH in plain GHC-6.9": 0.5 MB allocation areas, legacy barrier,
    push-polling, lazy black-holing, thread-per-spark. *)
val gph_plain :
  ?machine:Repro_machine.Machine.t -> ?ncaps:int -> unit -> version

(** + big allocation area (8 MB). *)
val gph_bigalloc :
  ?machine:Repro_machine.Machine.t -> ?ncaps:int -> unit -> version

(** + improved GC synchronisation. *)
val gph_sync :
  ?machine:Repro_machine.Machine.t -> ?ncaps:int -> unit -> version

(** + work stealing for sparks (with spark threads, Sec. IV-A.4). *)
val gph_steal :
  ?machine:Repro_machine.Machine.t -> ?ncaps:int -> unit -> version

(** Switch any version to eager black-holing (Sec. IV-A.3). *)
val with_eager : version -> version

(** "Eden-6.8.3, N PEs running under PVM": distributed per-PE heaps on
    the given middleware. *)
val eden :
  ?machine:Repro_machine.Machine.t ->
  ?npes:int ->
  ?transport:Repro_mp.Transport.t ->
  unit ->
  version

(** GUM: GpH on distributed heaps with passive (fishing) work
    distribution (Sec. III-B); pair with {!Repro_core.Gum}. *)
val gum :
  ?machine:Repro_machine.Machine.t ->
  ?npes:int ->
  ?transport:Repro_mp.Transport.t ->
  unit ->
  version

(** The semi-distributed local/global heap sketched as future work in
    Sec. VI-A (extension). *)
val gph_semi_distributed :
  ?machine:Repro_machine.Machine.t -> ?ncaps:int -> unit -> version

(** The five rows of Fig. 1, in table order. *)
val fig1_versions :
  ?machine:Repro_machine.Machine.t -> ?ncaps:int -> unit -> version list
