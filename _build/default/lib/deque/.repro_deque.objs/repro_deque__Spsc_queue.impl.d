lib/deque/spsc_queue.ml: List
