lib/deque/spsc_queue.mli:
