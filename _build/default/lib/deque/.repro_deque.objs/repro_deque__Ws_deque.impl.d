lib/deque/ws_deque.ml: Array Atomic List
