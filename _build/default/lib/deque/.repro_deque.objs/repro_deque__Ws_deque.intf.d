lib/deque/ws_deque.mli:
