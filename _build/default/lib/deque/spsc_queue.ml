(** Unbounded FIFO queue used for simulated message-passing mailboxes.

    The simulator is single-threaded, so this is a plain two-list
    functional queue wrapped in mutable state; the interface mirrors the
    mailbox semantics the Eden middleware layer needs (peek, ordered
    delivery, length accounting for backpressure statistics). *)

type 'a t = {
  mutable front : 'a list;
  mutable back : 'a list; (* reversed *)
  mutable length : int;
}

let create () = { front = []; back = []; length = 0 }
let length q = q.length
let is_empty q = q.length = 0

let enqueue q v =
  q.back <- v :: q.back;
  q.length <- q.length + 1

let normalize q =
  match q.front with
  | [] ->
      q.front <- List.rev q.back;
      q.back <- []
  | _ -> ()

let peek q =
  normalize q;
  match q.front with [] -> None | x :: _ -> Some x

let dequeue q =
  normalize q;
  match q.front with
  | [] -> None
  | x :: rest ->
      q.front <- rest;
      q.length <- q.length - 1;
      Some x

let to_list q = q.front @ List.rev q.back

let iter f q = List.iter f (to_list q)

let clear q =
  q.front <- [];
  q.back <- [];
  q.length <- 0
