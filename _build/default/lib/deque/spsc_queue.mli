(** Unbounded FIFO queue used for simulated message-passing mailboxes
    (plain two-list queue; the simulator is single-threaded). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val enqueue : 'a t -> 'a -> unit
val peek : 'a t -> 'a option
val dequeue : 'a t -> 'a option
val to_list : 'a t -> 'a list
val iter : ('a -> unit) -> 'a t -> unit
val clear : 'a t -> unit
