lib/experiments/exp.ml: Array Buffer Float Format List Printf Repro_core Repro_parrts Repro_util String
