lib/experiments/exp.mli: Format Repro_core Repro_parrts
