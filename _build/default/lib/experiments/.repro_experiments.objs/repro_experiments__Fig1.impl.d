lib/experiments/fig1.ml: Exp List Paper Printf Repro_core Repro_machine Repro_parrts Repro_util Repro_workloads
