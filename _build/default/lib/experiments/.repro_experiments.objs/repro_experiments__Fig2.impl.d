lib/experiments/fig2.ml: Buffer Char Exp Fig1 List Printf Repro_core Repro_machine Repro_parrts Repro_trace Repro_workloads
