lib/experiments/fig3.ml: Exp Format List Printf Repro_core Repro_machine Repro_parrts Repro_workloads
