lib/experiments/fig4.ml: Buffer Char Exp List Printf Repro_core Repro_machine Repro_trace Repro_workloads
