lib/experiments/fig5.ml: Exp Format List Printf Repro_core Repro_machine Repro_workloads
