lib/experiments/paper.ml:
