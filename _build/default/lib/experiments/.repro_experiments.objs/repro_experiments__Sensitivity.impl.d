lib/experiments/sensitivity.ml: Float List Printf Repro_core Repro_heap Repro_parrts Repro_workloads String
