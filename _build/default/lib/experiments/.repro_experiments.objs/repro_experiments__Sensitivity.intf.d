lib/experiments/sensitivity.mli: Repro_parrts
