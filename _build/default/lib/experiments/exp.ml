(** Experiment harness: run a workload under a named runtime version
    and collect the measurements the paper reports. *)

module Rts = Repro_parrts.Rts
module Config = Repro_parrts.Config
module Report = Repro_parrts.Report
module Versions = Repro_core.Versions
module Tablefmt = Repro_util.Tablefmt

type row = {
  label : string;
  config : Config.t;
  elapsed_s : float;
  report : Report.t;
}

(** Run [work] under [version]; the workload function receives no
    arguments and runs inside the simulated main thread. *)
let run (version : Versions.version) (work : unit -> 'a) : 'a * row =
  let value, report = Rts.run version.config work in
  ( value,
    {
      label = version.label;
      config = version.config;
      elapsed_s = Report.elapsed_s report;
      report;
    } )

let run_row version work = snd (run version work)

(** A speedup series: elapsed time per core count, normalised to the
    same version on one core (the paper's "relative speedup"). *)
type series = {
  s_label : string;
  core_counts : int list;
  times_s : float list;
  speedups : float list;
}

let series ~label ~core_counts ~(version_at : int -> Versions.version)
    ~(work : ncaps:int -> unit -> unit) : series =
  let times =
    List.map
      (fun ncaps ->
        let v = version_at ncaps in
        let _, report = Rts.run v.Versions.config (work ~ncaps) in
        Report.elapsed_s report)
      core_counts
  in
  let t1 =
    match (core_counts, times) with
    | 1 :: _, t1 :: _ -> t1
    | _ ->
        (* measure the 1-core baseline separately *)
        let v = version_at 1 in
        let _, report = Rts.run v.Versions.config (work ~ncaps:1) in
        Report.elapsed_s report
  in
  {
    s_label = label;
    core_counts;
    times_s = times;
    speedups = List.map (fun t -> t1 /. t) times;
  }

let pp_speedup_table ppf (series_list : series list) =
  match series_list with
  | [] -> ()
  | first :: _ ->
      let t =
        Tablefmt.create
          ~aligns:(Tablefmt.Left :: List.map (fun _ -> Tablefmt.Right) first.core_counts)
          ("version" :: List.map string_of_int first.core_counts)
      in
      List.iter
        (fun s ->
          Tablefmt.add_row t
            (s.s_label :: List.map (fun x -> Printf.sprintf "%.2f" x) s.speedups))
        series_list;
      Format.pp_print_string ppf (Tablefmt.to_string t)

(** An ASCII "plot" of speedup curves (x = cores, y = speedup), in the
    spirit of the paper's figures. *)
let render_speedup_plot ?(height = 16) (series_list : series list) =
  match series_list with
  | [] -> ""
  | first :: _ ->
      let max_speedup =
        List.fold_left
          (fun m s -> List.fold_left Float.max m s.speedups)
          1.0 series_list
      in
      let cols = List.length first.core_counts in
      let buf = Buffer.create 1024 in
      let marks = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |] in
      let grid = Array.make_matrix height (cols * 5) ' ' in
      List.iteri
        (fun si s ->
          List.iteri
            (fun ci sp ->
              let y =
                height - 1
                - int_of_float (Float.round (sp /. max_speedup *. float_of_int (height - 1)))
              in
              let x = ci * 5 in
              if y >= 0 && y < height then
                grid.(y).(x + (si mod 5)) <- marks.(si mod Array.length marks))
            s.speedups)
        series_list;
      Buffer.add_string buf
        (Printf.sprintf "speedup (max %.1f)\n" max_speedup);
      Array.iter
        (fun line ->
          Buffer.add_string buf "  |";
          Buffer.add_string buf (String.init (Array.length line) (Array.get line));
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf "  +";
      Buffer.add_string buf (String.make (cols * 5) '-');
      Buffer.add_char buf '\n';
      Buffer.add_string buf "   ";
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%-5d" c)) first.core_counts;
      Buffer.add_char buf '\n';
      List.iteri
        (fun si s ->
          Buffer.add_string buf
            (Printf.sprintf "   %c = %s\n" marks.(si mod Array.length marks) s.s_label))
        series_list;
      Buffer.contents buf
