(** Experiment harness: run workloads under named runtime versions and
    collect the measurements the paper reports. *)

type row = {
  label : string;
  config : Repro_parrts.Config.t;
  elapsed_s : float;
  report : Repro_parrts.Report.t;
}

(** Run [work] inside the simulated main thread of [version]. *)
val run : Repro_core.Versions.version -> (unit -> 'a) -> 'a * row

val run_row : Repro_core.Versions.version -> (unit -> 'a) -> row

(** A speedup series: elapsed time per core count, normalised to the
    same version on one core (the paper's "relative speedup"). *)
type series = {
  s_label : string;
  core_counts : int list;
  times_s : float list;
  speedups : float list;
}

(** Measure [work] under [version_at c] for every core count [c],
    normalising against the 1-core run (measured separately when 1 is
    not in [core_counts]). *)
val series :
  label:string ->
  core_counts:int list ->
  version_at:(int -> Repro_core.Versions.version) ->
  work:(ncaps:int -> unit -> unit) ->
  series

val pp_speedup_table : Format.formatter -> series list -> unit

(** ASCII speedup plot (x = cores, y = speedup), in the spirit of the
    paper's figures. *)
val render_speedup_plot : ?height:int -> series list -> string
