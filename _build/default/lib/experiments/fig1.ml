(** Fig. 1: parallel runtimes of sumEuler [1..15000] on the Intel
    8-core machine, five runtime versions. *)

module Versions = Repro_core.Versions
module Machine = Repro_machine.Machine
module Tablefmt = Repro_util.Tablefmt

let n_default = 15000

type result = { rows : Exp.row list; n : int }

let run ?(n = n_default) ?(machine = Machine.intel8) ?(ncaps = 8) () =
  let versions = Versions.fig1_versions ~machine ~ncaps () in
  let rows =
    List.map
      (fun (v : Versions.version) ->
        let is_eden = Repro_parrts.Config.is_distributed v.config in
        Exp.run_row v (fun () ->
            if is_eden then ignore (Repro_workloads.Sumeuler.eden ~n ())
            else ignore (Repro_workloads.Sumeuler.gph ~n ())))
      versions
  in
  { rows; n }

let to_table (r : result) =
  let t =
    Tablefmt.create
      ~aligns:[ Tablefmt.Left; Tablefmt.Right; Tablefmt.Right ]
      [ "Program version and runtime system"; "Runtime"; "Paper" ]
  in
  List.iter2
    (fun (row : Exp.row) (_, paper_s) ->
      Tablefmt.add_row t
        [
          row.label;
          Printf.sprintf "%.2f sec." row.elapsed_s;
          Printf.sprintf "%.2f sec." paper_s;
        ])
    r.rows Paper.fig1_runtimes_s;
  t

(* Shape check used by the integration tests: the paper's row ordering
   must hold (each optimisation improves on the previous; Eden is the
   fastest). *)
let ordering_holds (r : result) =
  let times = List.map (fun (row : Exp.row) -> row.elapsed_s) r.rows in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  decreasing times

let print (r : result) =
  Printf.printf "Fig. 1: parallel runtimes of the sumEuler program for [1..%d]\n" r.n;
  Tablefmt.print (to_table r)
