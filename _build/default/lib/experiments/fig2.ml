(** Fig. 2: runtime traces of sumEuler [1..15000] — the five versions
    of Fig. 1, rendered as EdenTV-style timelines. *)

module Versions = Repro_core.Versions
module Machine = Repro_machine.Machine
module Trace = Repro_trace.Trace
module Render = Repro_trace.Render

type result = { traces : (string * Trace.t) list; n : int }

let run ?(n = Fig1.n_default) ?(machine = Machine.intel8) ?(ncaps = 8) () =
  let versions = Versions.fig1_versions ~machine ~ncaps () in
  let traces =
    List.map
      (fun (v : Versions.version) ->
        let is_eden = Repro_parrts.Config.is_distributed v.config in
        let row =
          Exp.run_row v (fun () ->
              if is_eden then ignore (Repro_workloads.Sumeuler.eden ~n ())
              else ignore (Repro_workloads.Sumeuler.gph ~n ()))
        in
        (v.label, row.report.trace))
      versions
  in
  { traces; n }

let render ?(width = 100) (r : result) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "Fig. 2: runtime traces of sumEuler [1..%d]\n\n" r.n);
  List.iteri
    (fun i (label, trace) ->
      Buffer.add_string buf
        (Render.timeline ~width
           ~title:(Printf.sprintf "%c) %s" (Char.chr (Char.code 'a' + i)) label)
           trace);
      Buffer.add_char buf '\n')
    r.traces;
  Buffer.contents buf

let csv (r : result) =
  List.map (fun (label, trace) -> (label, Render.to_csv trace)) r.traces
