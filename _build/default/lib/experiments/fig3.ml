(** Fig. 3: relative speedups for the sumEuler and matrix programs on
    the AMD 16-core machine — four GpH runtime versions plus Eden, over
    1..16 cores. *)

module Versions = Repro_core.Versions
module Machine = Repro_machine.Machine
module Config = Repro_parrts.Config

let default_cores = [ 1; 2; 4; 6; 8; 10; 12; 14; 16 ]

type result = {
  sumeuler : Exp.series list;
  matmul : Exp.series list;
  cores : int list;
  n_euler : int;
  n_mat : int;
}

let gph_versions =
  [
    ("GpH plain", fun ~machine ~ncaps -> Versions.gph_plain ~machine ~ncaps ());
    ( "GpH big alloc area",
      fun ~machine ~ncaps -> Versions.gph_bigalloc ~machine ~ncaps () );
    ( "GpH + improved sync",
      fun ~machine ~ncaps -> Versions.gph_sync ~machine ~ncaps () );
    ( "GpH + work stealing",
      fun ~machine ~ncaps -> Versions.gph_steal ~machine ~ncaps () );
  ]

(* Eden's Cannon grid for [c] cores: q x q workers plus the parent as
   virtual PEs multiplexed onto the c physical cores.  The grid rounds
   up — running more virtual PEs than cores pays off (the paper's
   Fig. 4 d/e finding). *)
let cannon_grid c =
  let q = max 1 (int_of_float (ceil (sqrt (float_of_int c)))) in
  (q, (q * q) + 1)

let run ?(cores = default_cores) ?(machine = Machine.amd16)
    ?(n_euler = 15000) ?(n_mat = 2000) () =
  let machine_at c = Machine.with_cores machine c in
  let sumeuler =
    List.map
      (fun (label, make) ->
        Exp.series ~label ~core_counts:cores
          ~version_at:(fun c -> make ~machine:(machine_at c) ~ncaps:c)
          ~work:(fun ~ncaps:_ () ->
            ignore (Repro_workloads.Sumeuler.gph ~n:n_euler ())))
      gph_versions
    @ [
        Exp.series ~label:"Eden (PVM)" ~core_counts:cores
          ~version_at:(fun c -> Versions.eden ~machine:(machine_at c) ~npes:c ())
          ~work:(fun ~ncaps:_ () ->
            ignore (Repro_workloads.Sumeuler.eden ~n:n_euler ()));
      ]
  in
  let matmul =
    List.map
      (fun (label, make) ->
        Exp.series ~label ~core_counts:cores
          ~version_at:(fun c -> make ~machine:(machine_at c) ~ncaps:c)
          ~work:(fun ~ncaps:_ () -> ignore (Repro_workloads.Matmul.gph ~n:n_mat ())))
      gph_versions
    @ [
        Exp.series ~label:"Eden Cannon (PVM)" ~core_counts:cores
          ~version_at:(fun c ->
            let _, npes = cannon_grid c in
            Versions.eden ~machine:(machine_at c) ~npes ())
          ~work:(fun ~ncaps () ->
            (* ncaps here is the core count used for version_at *)
            let q, _ = cannon_grid ncaps in
            let n_mat = n_mat - (n_mat mod q) in
            ignore (Repro_workloads.Matmul.eden_cannon ~n:n_mat ~q ()));
      ]
  in
  { sumeuler; matmul; cores; n_euler; n_mat }

(* Shape checks for the integration tests. *)
let final_speedup (s : Exp.series) =
  match List.rev s.speedups with [] -> 0.0 | x :: _ -> x

let shapes_hold (r : result) =
  let by_label name l =
    List.find (fun (s : Exp.series) -> s.s_label = name) l
  in
  let plain = by_label "GpH plain" r.sumeuler
  and steal = by_label "GpH + work stealing" r.sumeuler
  and eden = by_label "Eden (PVM)" r.sumeuler in
  (* stealing dominates plain at scale; all versions actually scale;
     Eden is comparable to the best GpH (within 25%) *)
  final_speedup steal > final_speedup plain
  && final_speedup plain > 4.0
  && final_speedup eden > 0.75 *. final_speedup steal

let print (r : result) =
  Printf.printf "Fig. 3a: relative speedup, sumEuler [1..%d] (%s)\n" r.n_euler
    "AMD 16-core";
  Format.printf "%a\n" Exp.pp_speedup_table r.sumeuler;
  print_string (Exp.render_speedup_plot r.sumeuler);
  Printf.printf "\nFig. 3b: relative speedup, matmul %dx%d\n" r.n_mat r.n_mat;
  Format.printf "%a\n" Exp.pp_speedup_table r.matmul;
  print_string (Exp.render_speedup_plot r.matmul)
