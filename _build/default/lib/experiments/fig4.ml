(** Fig. 4: traces of matrix multiplication (1000x1000) on the Intel
    8-core machine: three GpH versions and Eden/Cannon with more
    virtual PEs than physical cores (3x3 blocks on 9 PEs, 4x4 blocks on
    17 PEs). *)

module Versions = Repro_core.Versions
module Machine = Repro_machine.Machine
module Trace = Repro_trace.Trace
module Render = Repro_trace.Render

type entry = { label : string; elapsed_s : float; trace : Trace.t }

type result = { entries : entry list; n : int }

let run ?(n = 1000) ?(machine = Machine.intel8) () =
  let ncaps = machine.Machine.cores in
  let gph (v : Versions.version) =
    let row = Exp.run_row v (fun () -> ignore (Repro_workloads.Matmul.gph ~n ())) in
    { label = v.label; elapsed_s = row.elapsed_s; trace = row.report.trace }
  in
  let eden ~q ~npes =
    let v = Versions.eden ~machine ~npes () in
    let n = n - (n mod q) in
    let row =
      Exp.run_row v (fun () ->
          ignore (Repro_workloads.Matmul.eden_cannon ~n ~q ()))
    in
    {
      label =
        Printf.sprintf "Eden Cannon %dx%d blocks, %d virtual PEs (PVM)" q q npes;
      elapsed_s = row.elapsed_s;
      trace = row.report.trace;
    }
  in
  {
    entries =
      [
        gph (Versions.gph_plain ~machine ~ncaps ());
        gph (Versions.gph_bigalloc ~machine ~ncaps ());
        gph (Versions.gph_steal ~machine ~ncaps ());
        eden ~q:3 ~npes:9;
        eden ~q:4 ~npes:17;
      ];
    n;
  }

(* Shape checks: stealing is the best GpH; Eden profits from more
   virtual PEs than cores (17 beats 9); the virtual-PE runs are
   competitive with the best GpH. *)
let shapes_hold (r : result) =
  match r.entries with
  | [ plain; bigalloc; steal; eden9; eden17 ] ->
      steal.elapsed_s < plain.elapsed_s
      && steal.elapsed_s < bigalloc.elapsed_s
      && eden17.elapsed_s < eden9.elapsed_s
      && eden17.elapsed_s < plain.elapsed_s
  | _ -> false

let render ?(width = 100) (r : result) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "Fig. 4: traces of matrix multiplication, %dx%d elements\n\n"
       r.n r.n);
  List.iteri
    (fun i e ->
      Buffer.add_string buf
        (Render.timeline ~width
           ~title:
             (Printf.sprintf "%c) %s — %.3f s" (Char.chr (Char.code 'a' + i))
                e.label e.elapsed_s)
           e.trace);
      Buffer.add_char buf '\n')
    r.entries;
  Buffer.contents buf
