(** Fig. 5: relative speedup of the all-pairs shortest-paths program
    (400 nodes) on the AMD 16-core machine.

    The paper's finding: the Eden ring version scales well; GpH
    versions flatten out (or even slow down, worst with work stealing)
    unless {e eager black-holing} is used. *)

module Versions = Repro_core.Versions
module Machine = Repro_machine.Machine

let default_cores = [ 1; 2; 4; 6; 8; 10; 12; 14; 16 ]

type result = { series : Exp.series list; cores : int list; n : int }

let run ?(cores = default_cores) ?(machine = Machine.amd16) ?(n = 400) () =
  let machine_at c = Machine.with_cores machine c in
  let gph_series label version_at =
    Exp.series ~label ~core_counts:cores ~version_at
      ~work:(fun ~ncaps:_ () -> ignore (Repro_workloads.Apsp.gph ~n ()))
  in
  let series =
    [
      gph_series "GpH, lazy black-holing" (fun c ->
          Versions.gph_sync ~machine:(machine_at c) ~ncaps:c ());
      gph_series "GpH + work stealing, lazy black-holing" (fun c ->
          Versions.gph_steal ~machine:(machine_at c) ~ncaps:c ());
      gph_series "GpH, eager black-holing" (fun c ->
          Versions.with_eager (Versions.gph_sync ~machine:(machine_at c) ~ncaps:c ()));
      gph_series "GpH + work stealing, eager black-holing" (fun c ->
          Versions.with_eager (Versions.gph_steal ~machine:(machine_at c) ~ncaps:c ()));
      Exp.series ~label:"Eden ring (PVM)" ~core_counts:cores
        ~version_at:(fun c -> Versions.eden ~machine:(machine_at c) ~npes:c ())
        ~work:(fun ~ncaps:_ () -> ignore (Repro_workloads.Apsp.eden_ring ~n ()));
    ]
  in
  { series; cores; n }

let by_label (r : result) name =
  List.find (fun (s : Exp.series) -> s.s_label = name) r.series

(* Shape checks: Eden scales well; eager-BH stealing beats lazy-BH
   stealing clearly; lazy versions flatten (Eden ends far above). *)
let shapes_hold (r : result) =
  let final (s : Exp.series) =
    match List.rev s.speedups with [] -> 0.0 | x :: _ -> x
  in
  let eden = final (by_label r "Eden ring (PVM)") in
  let lazy_steal = final (by_label r "GpH + work stealing, lazy black-holing") in
  let eager_steal = final (by_label r "GpH + work stealing, eager black-holing") in
  eden > 6.0 && eager_steal > 1.5 *. lazy_steal && eden > lazy_steal

let print (r : result) =
  Printf.printf "Fig. 5: relative speedup, shortest paths (%d nodes), AMD 16-core\n"
    r.n;
  Format.printf "%a\n" Exp.pp_speedup_table r.series;
  print_string (Exp.render_speedup_plot r.series)
