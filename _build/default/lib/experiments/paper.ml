(** The numbers and qualitative shapes the paper reports, for
    comparison against our measurements (EXPERIMENTS.md is generated
    from these plus fresh runs). *)

(* Fig. 1: parallel runtimes of sumEuler [1..15000] on the Intel
   8-core, seconds. *)
let fig1_runtimes_s =
  [
    ("GpH in plain GHC-6.9", 2.75);
    ("GpH in plain GHC-6.9, big allocation area", 2.58);
    ("GpH, above + improved GC synchronisation", 2.44);
    ("GpH, above + work stealing for sparks", 2.30);
    ("Eden-6.8.3, 8 PEs running under PVM", 2.24);
  ]

(* Fig. 2 (traces): qualitative expectations for the five sumEuler
   configurations. *)
let fig2_shapes =
  [
    "a) default: frequent global GC stops; visible yellow sync bands";
    "b) big allocation area: far fewer GC stops, better runtime";
    "c) improved synchronisation: slight further improvement";
    "d) work stealing: idle periods eliminated, best GpH runtime";
    "e) Eden/PVM: dense independent activity, best runtime overall";
    "all) a sequential check phase visible at the end of each trace";
  ]

(* Fig. 3: relative speedups on the AMD 16-core.  The paper plots
   curves rather than tabulating values; the shape criteria: *)
let fig3_shapes =
  [
    "sumEuler: all versions scale; work stealing best GpH, Eden \
     comparable; ordering plain < big-alloc < +sync < +stealing";
    "matmul 2000x2000: blockwise GpH and Eden/Cannon both give fair \
     speedup; Eden competitive with best GpH";
  ]

(* Fig. 4 (matmul traces, 1000x1000, Intel 8-core): qualitative. *)
let fig4_shapes =
  [
    "a/b) unmodified GHC cannot use all 8 cores evenly; frequent GC sync";
    "c) work stealing: best GpH runtime, good core usage";
    "d) Eden 3x3 blocks on 9 virtual PEs: good runtime despite > cores";
    "e) Eden 4x4 blocks on 17 virtual PEs: even better than d)";
  ]

(* Fig. 5 (shortest paths, 400 nodes, AMD 16-core): qualitative. *)
let fig5_shapes =
  [
    "Eden ring version shows good speedup";
    "GpH lazy black-holing versions flatten out very soon; the \
     work-stealing lazy version even slows down";
    "eager black-holing rescues the GpH versions (most apparent with \
     work stealing)";
  ]
