(** Calibration-sensitivity analysis.

    The simulator's cost constants (GC copying rate, barrier costs,
    steal latencies, poll intervals, …) were calibrated against the
    paper's Fig. 1.  A reproduction is only credible if its qualitative
    conclusions survive perturbation of those constants, so this module
    re-runs the Fig.-1 experiment with each key constant scaled up and
    down and checks which qualitative properties still hold:

    - {b weak shape}: plain GHC-6.9 is the slowest GpH version and
      Eden is fastest overall;
    - {b strong shape}: the full monotone row ordering of Fig. 1.

    The integration tests require the weak shape to hold for {e every}
    perturbation and the strong shape for a clear majority. *)

module Versions = Repro_core.Versions
module Config = Repro_parrts.Config
module Gc_model = Repro_heap.Gc_model

type perturbation = { p_label : string; apply : Config.t -> Config.t }

let scale_i f v = int_of_float (Float.round (f *. float_of_int v))

let perturbations : (string * float -> perturbation) list =
  [
    (fun (dir, f) ->
      {
        p_label = Printf.sprintf "gc copy rate %s" dir;
        apply =
          (fun c ->
            { c with gc = { c.gc with Gc_model.copy_ns_per_byte = c.gc.Gc_model.copy_ns_per_byte *. f } });
      });
    (fun (dir, f) ->
      {
        p_label = Printf.sprintf "legacy barrier cost %s" dir;
        apply =
          (fun c ->
            {
              c with
              gc =
                {
                  c.gc with
                  Gc_model.sync_legacy_ns = scale_i f c.gc.Gc_model.sync_legacy_ns;
                };
            });
      });
    (fun (dir, f) ->
      {
        p_label = Printf.sprintf "nursery survival %s" dir;
        apply =
          (fun c ->
            { c with gc = { c.gc with Gc_model.survival = c.gc.Gc_model.survival *. f } });
      });
    (fun (dir, f) ->
      {
        p_label = Printf.sprintf "push poll interval %s" dir;
        apply =
          (fun c ->
            { c with push_poll_interval_ns = scale_i f c.push_poll_interval_ns });
      });
    (fun (dir, f) ->
      {
        p_label = Printf.sprintf "steal latency %s" dir;
        apply =
          (fun c ->
            {
              c with
              steal_attempt_ns = scale_i f c.steal_attempt_ns;
              steal_wake_ns = scale_i f c.steal_wake_ns;
            });
      });
    (fun (dir, f) ->
      {
        p_label = Printf.sprintf "thread creation %s" dir;
        apply = (fun c -> { c with thread_create_ns = scale_i f c.thread_create_ns });
      });
  ]

let all_perturbations ?(down = 0.7) ?(up = 1.4) () =
  List.concat_map
    (fun mk -> [ mk ("-30%", down); mk ("+40%", up) ])
    perturbations

type outcome = {
  o_label : string;
  weak_shape : bool;  (** plain slowest GpH, Eden fastest *)
  strong_shape : bool;  (** full Fig.-1 ordering *)
  times : (string * float) list;
}

let run_one ~n (p : perturbation) : outcome =
  let versions =
    List.map
      (fun (v : Versions.version) -> { v with config = p.apply v.config })
      (Versions.fig1_versions ())
  in
  let rows =
    List.map
      (fun (v : Versions.version) ->
        let is_eden = Config.is_distributed v.config in
        let _, report =
          Repro_parrts.Rts.run v.config (fun () ->
              if is_eden then ignore (Repro_workloads.Sumeuler.eden ~n ())
              else ignore (Repro_workloads.Sumeuler.gph ~n ()))
        in
        (v.label, Repro_parrts.Report.elapsed_s report))
      versions
  in
  let times = List.map snd rows in
  let weak_shape =
    match times with
    | [ plain; big; sync; steal; eden ] ->
        plain > big && plain > sync && plain > steal && eden < steal
        && eden < plain
    | _ -> false
  in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  { o_label = p.p_label; weak_shape; strong_shape = decreasing times; times = rows }

type result = { outcomes : outcome list; n : int }

let run ?(n = 8000) () =
  { outcomes = List.map (run_one ~n) (all_perturbations ()); n }

let all_weak r = List.for_all (fun o -> o.weak_shape) r.outcomes

let strong_fraction r =
  let held = List.length (List.filter (fun o -> o.strong_shape) r.outcomes) in
  float_of_int held /. float_of_int (max 1 (List.length r.outcomes))

let print (r : result) =
  Printf.printf
    "Sensitivity of Fig.-1 shapes to calibration constants (sumEuler %d):\n" r.n;
  List.iter
    (fun o ->
      Printf.printf "  %-28s weak=%b strong=%b  (%s)\n" o.o_label o.weak_shape
        o.strong_shape
        (String.concat " "
           (List.map (fun (_, t) -> Printf.sprintf "%.2f" t) o.times)))
    r.outcomes;
  Printf.printf "weak shape holds for all: %b;  strong ordering holds for %.0f%%\n"
    (all_weak r)
    (100.0 *. strong_fraction r)
