(** Calibration-sensitivity analysis: re-run the Fig.-1 experiment with
    every key cost constant scaled down (x0.7) and up (x1.4), checking
    which qualitative properties survive — the {e weak shape} (plain
    slowest GpH, Eden fastest) and the {e strong shape} (the full
    monotone row ordering).  See EXPERIMENTS.md. *)

type perturbation = { p_label : string; apply : Repro_parrts.Config.t -> Repro_parrts.Config.t }

val all_perturbations : ?down:float -> ?up:float -> unit -> perturbation list

type outcome = {
  o_label : string;
  weak_shape : bool;
  strong_shape : bool;
  times : (string * float) list;
}

val run_one : n:int -> perturbation -> outcome

type result = { outcomes : outcome list; n : int }

val run : ?n:int -> unit -> result

(** Does the weak shape hold under every perturbation? *)
val all_weak : result -> bool

(** Fraction of perturbations under which the strict ordering holds. *)
val strong_fraction : result -> float

val print : result -> unit
