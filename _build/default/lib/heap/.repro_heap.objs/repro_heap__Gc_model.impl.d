lib/heap/gc_model.ml: Format
