lib/heap/gc_model.mli: Format
