lib/heap/node.ml: List
