lib/heap/node.mli:
