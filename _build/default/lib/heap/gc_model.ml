(** Garbage-collection cost models for the three heap organisations the
    paper discusses (Secs. III, IV-A.1 and VI-A):

    - {b Shared stop-the-world} (GHC 6.x threaded RTS): each capability
      owns a private {e allocation area} (nursery, default 0.5 MB); when
      any nursery fills, {e all} capabilities must rendezvous at a
      barrier before collection can start.  Threads only notice the GC
      request at a context-switch check, which happens once per 4 kB of
      allocation — so slowly-allocating threads delay the barrier (the
      paper's Sec. IV-A.1 bottleneck).

    - {b Distributed} (Eden): each PE collects its own private heap
      completely independently; no barrier, perfect GC scalability
      (Sec. VI-A).

    - {b Semi-distributed} (the paper's future work, after
      Doligez–Leroy): per-capability local heaps collected privately,
      plus a global heap collected rarely behind a barrier; sharing data
      requires promotion into the global heap.

    The model charges a pause for every collection, computed from the
    amount of data that survives (copying collector: cost proportional
    to live data), plus per-capability synchronisation overhead for the
    barrier-based organisations.  The "improved GC synchronisation" of
    the paper's Fig. 1 corresponds to [sync = Improved]. *)

type sync_mode =
  | Legacy  (** GHC 6.8/6.9 handshake: expensive per-capability entry *)
  | Improved  (** the paper's optimised barrier signalling *)

type t = {
  alloc_area : int;  (** nursery bytes per capability (0.5 MB default) *)
  check_interval : int;  (** allocation between context-switch checks (4 kB) *)
  survival : float;  (** fraction of nursery live at a minor collection *)
  copy_ns_per_byte : float;  (** copying cost for surviving data *)
  major_every : int;  (** one major collection every N minors *)
  major_ns_per_byte : float;  (** tracing cost over resident data *)
  sync : sync_mode;
  sync_legacy_ns : int;  (** per-capability barrier entry cost, legacy *)
  sync_improved_ns : int;  (** per-capability barrier entry cost, improved *)
  legacy_notice_ns : int;
      (** under [Legacy] sync, a busy capability only notices a pending
          GC request at a scheduler-entry point — up to this long after
          the request (the timer quantum); under [Improved] it reacts
          at the next allocation check *)
  gc_threads : int;  (** parallelism inside the collector (1 = sequential) *)
}

(* Defaults are calibrated against the paper's Fig. 1 (see
   lib/experiments/calibration.ml): GHC 6.9's sequential two-generation
   copying collector with 0.5 MB allocation areas. *)
let default =
  {
    alloc_area = 512 * 1024;
    check_interval = 4 * 1024;
    survival = 0.08;
    copy_ns_per_byte = 0.45;
    major_every = 40;
    major_ns_per_byte = 0.35;
    sync = Legacy;
    sync_legacy_ns = 130_000;
    sync_improved_ns = 45_000;
    legacy_notice_ns = 14_000_000;
    gc_threads = 1;
  }

(* The paper's "big allocation area" variant (Sec. IV-A.1: "simply
   increasing the size of the allocation areas had a massive effect"). *)
let big_area ?(bytes = 8 * 1024 * 1024) t = { t with alloc_area = bytes }

let improved_sync t = { t with sync = Improved }

let sync_entry_ns t =
  match t.sync with Legacy -> t.sync_legacy_ns | Improved -> t.sync_improved_ns

(* Pause for a minor (young-generation) collection once all capabilities
   have stopped.  [allocated] is the total nursery data across the
   stopped capabilities. *)
let minor_pause_ns t ~ncaps ~allocated =
  let live = t.survival *. float_of_int allocated in
  let copy = live *. t.copy_ns_per_byte /. float_of_int (max 1 t.gc_threads) in
  let sync = sync_entry_ns t * ncaps in
  max 1 (int_of_float copy + sync)

(* Pause for a major collection: trace the whole resident set. *)
let major_pause_ns t ~ncaps ~resident =
  let trace =
    float_of_int resident *. t.major_ns_per_byte
    /. float_of_int (max 1 t.gc_threads)
  in
  let sync = sync_entry_ns t * ncaps in
  max 1 (int_of_float trace + sync)

(* Independent per-PE collection (Eden / distributed heaps): no barrier,
   no per-capability sync term. *)
let independent_pause_ns t ~allocated ~resident ~is_major =
  if is_major then
    max 1 (int_of_float (float_of_int resident *. t.major_ns_per_byte))
  else
    max 1
      (int_of_float (t.survival *. float_of_int allocated *. t.copy_ns_per_byte))

let pp_sync ppf = function
  | Legacy -> Format.pp_print_string ppf "legacy"
  | Improved -> Format.pp_print_string ppf "improved"

let pp ppf t =
  Format.fprintf ppf "alloc-area=%dKiB sync=%a survival=%.2f" (t.alloc_area / 1024)
    pp_sync t.sync t.survival
