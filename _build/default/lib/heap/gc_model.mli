(** Garbage-collection cost models for the heap organisations the paper
    discusses (Secs. III, IV-A.1, VI-A): shared stop-the-world
    (GHC 6.x), independent per-PE (Eden), and the semi-distributed
    local/global scheme of the paper's future work.

    The model charges a pause per collection (copying cost proportional
    to surviving data) plus per-capability synchronisation for the
    barrier-based organisations.  "Improved GC synchronisation"
    (Fig. 1, row 3) is [sync = Improved].  Under [Legacy] sync, busy
    capabilities additionally only {e notice} a pending collection at a
    scheduler-entry point up to [legacy_notice_ns] after the request
    (the Sec. IV-A.1 barrier delay); under [Improved] they react at
    the next 4 kB allocation check. *)

type sync_mode = Legacy | Improved

type t = {
  alloc_area : int;  (** nursery bytes per capability (0.5 MB default) *)
  check_interval : int;  (** allocation between safepoint checks (4 kB) *)
  survival : float;  (** fraction of nursery live at a minor collection *)
  copy_ns_per_byte : float;
  major_every : int;  (** one major collection every N minors *)
  major_ns_per_byte : float;
  sync : sync_mode;
  sync_legacy_ns : int;  (** per-capability barrier entry cost, legacy *)
  sync_improved_ns : int;
  legacy_notice_ns : int;  (** legacy GC-request notice quantum *)
  gc_threads : int;  (** parallelism inside the collector (1 = GHC 6.9) *)
}

(** Calibrated against the paper's Fig. 1 (see EXPERIMENTS.md). *)
val default : t

(** The paper's "big allocation area" variant (default: 8 MB). *)
val big_area : ?bytes:int -> t -> t

val improved_sync : t -> t
val sync_entry_ns : t -> int

(** Stop-the-world minor pause once all capabilities stopped;
    [allocated] is total nursery data. *)
val minor_pause_ns : t -> ncaps:int -> allocated:int -> int

(** Stop-the-world major pause: traces the resident set. *)
val major_pause_ns : t -> ncaps:int -> resident:int -> int

(** Independent per-PE collection (no barrier, no sync term). *)
val independent_pause_ns :
  t -> allocated:int -> resident:int -> is_major:bool -> int

val pp_sync : Format.formatter -> sync_mode -> unit
val pp : Format.formatter -> t -> unit
