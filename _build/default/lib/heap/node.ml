(** Reified lazy heap nodes (thunks) with black-hole synchronisation.

    OCaml is strict, but the paper's central black-holing study
    (Sec. IV-A.3) is about *lazy* heap semantics: a thunk entered by one
    thread may concurrently be entered by another, duplicating work,
    unless it is marked as a "black hole".  We therefore reify the GHC
    heap-node life cycle as an explicit data structure:

    {v
      Unevaluated f --enter--> (optionally Blackhole) --update--> Value v
    v}

    - Under {b eager} black-holing, the runtime marks the node at entry,
      so a second thread finds [Blackhole] and blocks until the update.
    - Under {b lazy} black-holing, the node stays [Unevaluated] until the
      owning thread is descheduled (the runtime then retroactively marks
      the nodes on the thread's update stack).  In the window before
      that, other threads entering the node silently duplicate the
      evaluation — exactly GHC's behaviour, and exactly what makes the
      paper's shortest-path benchmark collapse without eager marking.

    Updates are idempotent (referential transparency): a duplicate
    evaluation writing second is counted as wasted work, never an error.

    A [registry] aggregates statistics per simulated heap. *)

type registry = {
  mutable created : int;
  mutable entered : int;
  mutable dup_entries : int;  (** entries into a node already being evaluated *)
  mutable dup_updates : int;  (** updates that found a value already present *)
  mutable blocked_forces : int;  (** forces that hit a black hole *)
  mutable updates : int;
  mutable blackholed : int;  (** nodes explicitly marked *)
  mutable next_id : int;
}

let registry () =
  {
    created = 0;
    entered = 0;
    dup_entries = 0;
    dup_updates = 0;
    blocked_forces = 0;
    updates = 0;
    blackholed = 0;
    next_id = 0;
  }

type 'a state =
  | Unevaluated of (unit -> 'a)
  | Blackhole of (unit -> 'a)
      (** marked under evaluation; the closure is retained so that a
          thread resuming a duplicate lazy-entry can still be modelled *)
  | Value of 'a

type 'a t = {
  id : int;
  reg : registry;
  mutable st : 'a state;
  mutable evaluators : int;  (** threads currently inside the closure *)
  mutable waiters : (unit -> unit) list;
  size : int;  (** bytes this node's value occupies in the heap *)
}

(** Existential wrapper so a thread can keep a heterogeneous update
    stack of the thunks it is currently evaluating (for retroactive
    lazy black-holing at context-switch time). *)
type boxed = Boxed : 'a t -> boxed

let thunk ?(size = 24) reg f =
  reg.created <- reg.created + 1;
  reg.next_id <- reg.next_id + 1;
  { id = reg.next_id; reg; st = Unevaluated f; evaluators = 0; waiters = []; size }

let value ?(size = 24) reg v =
  reg.next_id <- reg.next_id + 1;
  { id = reg.next_id; reg; st = Value v; evaluators = 0; waiters = []; size }

let id n = n.id
let size n = n.size

let is_value n = match n.st with Value _ -> true | _ -> false
let is_blackhole n = match n.st with Blackhole _ -> true | _ -> false

let peek n = match n.st with Value v -> Some v | _ -> None

exception Not_evaluated

let get_value n =
  match n.st with Value v -> v | _ -> raise Not_evaluated

(** What a force attempt should do next, as decided by the node state
    and the black-holing policy.  The runtime layer interprets this. *)
type 'a entry_decision =
  | Ready of 'a  (** already a value *)
  | Evaluate of (unit -> 'a)
      (** caller should run the closure then [update] *)
  | Wait  (** black hole: caller must block until updated *)

(* [enter ~eager n]: a thread is about to force [n].

   With [eager = true] the node is marked [Blackhole] atomically with
   the entry decision.  With [eager = false] the node stays
   [Unevaluated]; a concurrent second entry is permitted (and counted as
   a duplicate). *)
let enter ~eager n =
  match n.st with
  | Value v -> Ready v
  | Blackhole _ ->
      n.reg.blocked_forces <- n.reg.blocked_forces + 1;
      Wait
  | Unevaluated f ->
      n.reg.entered <- n.reg.entered + 1;
      if n.evaluators > 0 then n.reg.dup_entries <- n.reg.dup_entries + 1;
      n.evaluators <- n.evaluators + 1;
      if eager then begin
        n.reg.blackholed <- n.reg.blackholed + 1;
        n.st <- Blackhole f
      end;
      Evaluate f

(* Retroactive marking used by lazy black-holing at context switch:
   blackhole the node if it is still unevaluated. *)
let blackhole_if_unevaluated n =
  match n.st with
  | Unevaluated f ->
      n.reg.blackholed <- n.reg.blackholed + 1;
      n.st <- Blackhole f;
      true
  | _ -> false

let blackhole_boxed (Boxed n) = ignore (blackhole_if_unevaluated n)

(* Register a wake-up callback, fired exactly once when the node is
   updated.  If the node is already a value the callback fires
   immediately (avoiding lost wake-ups). *)
let add_waiter n k =
  match n.st with Value _ -> k () | _ -> n.waiters <- k :: n.waiters

(* [update n v]: evaluation finished.  Returns [true] if this update
   installed the value, [false] if it was a duplicate (value already
   there).  Wakes all waiters either way exactly once (the waiter list
   is cleared). *)
let update n v =
  n.evaluators <- max 0 (n.evaluators - 1);
  let installed =
    match n.st with
    | Value _ ->
        n.reg.dup_updates <- n.reg.dup_updates + 1;
        false
    | Unevaluated _ | Blackhole _ ->
        n.reg.updates <- n.reg.updates + 1;
        n.st <- Value v;
        true
  in
  let ws = n.waiters in
  n.waiters <- [];
  List.iter (fun k -> k ()) ws;
  installed

let waiters_count n = List.length n.waiters
