(** Reified lazy heap nodes (thunks) with black-hole synchronisation.

    OCaml is strict, but the paper's central black-holing study
    (Sec. IV-A.3) concerns {e lazy} heap semantics: a thunk entered by
    one thread may be concurrently entered by another — duplicating
    work — unless it has been marked as a "black hole".  This module
    reifies the GHC heap-node life cycle:

    {v Unevaluated --enter--> (Blackhole) --update--> Value v}

    Under {b eager} black-holing the node is marked at entry, so a
    second thread blocks.  Under {b lazy} black-holing the node stays
    unevaluated until the owning thread is descheduled (the runtime
    then retroactively marks its update stack); other threads entering
    in that window silently duplicate the evaluation — exactly GHC's
    behaviour.  Updates are idempotent (referential transparency): a
    duplicate writing second is counted as waste, never an error. *)

(** Per-heap statistics, aggregated across all nodes created from it. *)
type registry = {
  mutable created : int;
  mutable entered : int;
  mutable dup_entries : int;
      (** entries into a node that was already being evaluated *)
  mutable dup_updates : int;  (** updates that found a value present *)
  mutable blocked_forces : int;  (** forces that hit a black hole *)
  mutable updates : int;
  mutable blackholed : int;
  mutable next_id : int;
}

val registry : unit -> registry

type 'a t

(** Existential wrapper for heterogeneous update stacks (retroactive
    lazy black-holing at context-switch time). *)
type boxed = Boxed : 'a t -> boxed

(** [thunk ?size reg f]: a suspended computation whose value occupies
    [size] heap bytes. *)
val thunk : ?size:int -> registry -> (unit -> 'a) -> 'a t

(** An already-evaluated node. *)
val value : ?size:int -> registry -> 'a -> 'a t

val id : 'a t -> int
val size : 'a t -> int
val is_value : 'a t -> bool
val is_blackhole : 'a t -> bool
val peek : 'a t -> 'a option

exception Not_evaluated

(** @raise Not_evaluated unless the node holds a value. *)
val get_value : 'a t -> 'a

(** What a force attempt should do next; interpreted by the runtime
    layer ({!Repro_core.Gph.force}). *)
type 'a entry_decision =
  | Ready of 'a  (** already a value *)
  | Evaluate of (unit -> 'a)  (** run the closure, then {!update} *)
  | Wait  (** black hole: block until updated *)

(** [enter ~eager n]: a thread is about to force [n].  With [eager],
    the node is atomically marked [Blackhole]; without, a concurrent
    second entry is permitted (and counted as a duplicate). *)
val enter : eager:bool -> 'a t -> 'a entry_decision

(** Retroactive marking (lazy black-holing at deschedule): mark the
    node if it is still unevaluated; returns whether it marked. *)
val blackhole_if_unevaluated : 'a t -> bool

val blackhole_boxed : boxed -> unit

(** Register a wake-up callback, fired exactly once when the node is
    updated; fires immediately if the node already holds a value (no
    lost wake-ups). *)
val add_waiter : 'a t -> (unit -> unit) -> unit

(** [update n v]: evaluation finished.  Returns [true] if this call
    installed the value, [false] for a duplicate.  Wakes all waiters
    exactly once either way. *)
val update : 'a t -> 'a -> bool

val waiters_count : 'a t -> int
