lib/machine/machine.ml: Float Format Printf
