(** Models of the paper's two measurement platforms.

    The paper (Sec. V) measures on:
    - an Intel 8-core machine (2 x Xeon quad-core @ 1.86 GHz, 16 GB RAM,
      MS Research Cambridge), and
    - an AMD 16-core machine (4 x Opteron quad-core @ 2.3 GHz, 132 GB
      RAM, LMU Munich).

    A machine converts abstract work (cycles) into virtual nanoseconds
    and supplies the memory-system parameters used by the cache-pressure
    penalty model.  The penalty model is what lets the simulator
    reproduce the paper's Fig.-4 observation that Eden with *more virtual
    PEs than physical cores* wins: smaller per-PE heaps fit caches better
    and are collected faster. *)

type t = {
  name : string;
  cores : int;
  clock_hz : float;  (** per-core clock *)
  cache_bytes : int;  (** effective per-core cache (L2/L3 share) *)
  mem_penalty_max : float;
      (** multiplier on mutator work when the working set far exceeds
          cache *)
  os_quantum_ns : int;
      (** OS scheduling quantum used when multiplexing more virtual PEs
          than physical cores *)
  os_switch_ns : int;  (** OS context-switch cost when multiplexing *)
}

let make ~name ~cores ~clock_ghz ?(cache_mb = 4) ?(mem_penalty_max = 1.8)
    ?(os_quantum_ns = 10_000_000) ?(os_switch_ns = 8_000) () =
  if cores <= 0 then invalid_arg "Machine.make: cores must be positive";
  if clock_ghz <= 0.0 then invalid_arg "Machine.make: clock must be positive";
  {
    name;
    cores;
    clock_hz = clock_ghz *. 1e9;
    cache_bytes = cache_mb * 1024 * 1024;
    mem_penalty_max;
    os_quantum_ns;
    os_switch_ns;
  }

(* 2 x Intel Xeon quad-core @ 1.86 GHz (MS Research Cambridge);
   Clovertown-class parts share 8 MB of L2 among 4 cores. *)
let intel8 = make ~name:"intel8" ~cores:8 ~clock_ghz:1.86 ~cache_mb:2 ()

(* 4 x AMD Opteron quad-core @ 2.3 GHz (LMU Munich); Barcelona-class
   parts have 512 kB L2 per core plus 2 MB shared L3. *)
let amd16 = make ~name:"amd16" ~cores:16 ~clock_ghz:2.3 ~cache_mb:1 ()

let with_cores m cores = { m with cores; name = Printf.sprintf "%s/%d" m.name cores }

let ns_of_cycles m cycles =
  if cycles = 0 then 0
  else
    let ns = float_of_int cycles /. m.clock_hz *. 1e9 in
    max 1 (int_of_float (Float.round ns))

let cycles_of_ns m ns = int_of_float (Float.round (float_of_int ns /. 1e9 *. m.clock_hz))

(* Cache-pressure multiplier on mutator work.

   [working_set] is the live-data footprint the computation touches
   (bytes).  Below the per-core cache size the multiplier is 1.0; above
   it, it grows smoothly and saturates at [mem_penalty_max].  The curve
   is a saturating rational function: penalty = 1 + (max-1) * r/(r+1)
   where r = (ws - cache)/cache, capped. *)
let mem_penalty m ~working_set =
  if working_set <= m.cache_bytes then 1.0
  else
    let r =
      float_of_int (working_set - m.cache_bytes) /. float_of_int m.cache_bytes
    in
    1.0 +. ((m.mem_penalty_max -. 1.0) *. (r /. (r +. 1.0)))

let pp ppf m =
  Format.fprintf ppf "%s: %d cores @ %.2f GHz, %d KiB cache/core" m.name
    m.cores (m.clock_hz /. 1e9) (m.cache_bytes / 1024)
