(** Models of the paper's two measurement platforms (Sec. V): an Intel
    8-core (2x Xeon quad @ 1.86 GHz) and an AMD 16-core (4x Opteron
    quad @ 2.3 GHz).  A machine converts abstract work (cycles) into
    virtual nanoseconds and supplies the memory-system parameters used
    by the cache-pressure penalty model — the mechanism behind the
    paper's Fig.-4 observation that Eden with more virtual PEs than
    cores wins. *)

type t = {
  name : string;
  cores : int;
  clock_hz : float;
  cache_bytes : int;  (** effective per-core cache *)
  mem_penalty_max : float;
      (** multiplier on mutator work when the working set far exceeds
          cache *)
  os_quantum_ns : int;
      (** OS scheduling quantum when multiplexing virtual PEs *)
  os_switch_ns : int;
}

(** @raise Invalid_argument on non-positive cores or clock. *)
val make :
  name:string ->
  cores:int ->
  clock_ghz:float ->
  ?cache_mb:int ->
  ?mem_penalty_max:float ->
  ?os_quantum_ns:int ->
  ?os_switch_ns:int ->
  unit ->
  t

(** 2x Intel Xeon quad-core @ 1.86 GHz (MS Research Cambridge). *)
val intel8 : t

(** 4x AMD Opteron quad-core @ 2.3 GHz (LMU Munich). *)
val amd16 : t

(** Same machine with a different core count (for speedup sweeps). *)
val with_cores : t -> int -> t

val ns_of_cycles : t -> int -> int
val cycles_of_ns : t -> int -> int

(** Saturating cache-pressure multiplier: 1.0 below the per-core cache
    size, smoothly approaching [mem_penalty_max] above it. *)
val mem_penalty : t -> working_set:int -> float

val pp : Format.formatter -> t -> unit
