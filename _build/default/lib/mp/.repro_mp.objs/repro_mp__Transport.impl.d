lib/mp/transport.ml: Format List Printf
