lib/mp/transport.mli: Format
