lib/parrts/config.ml: Format Repro_heap Repro_machine Repro_mp Repro_util
