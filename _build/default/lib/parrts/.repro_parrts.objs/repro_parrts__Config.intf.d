lib/parrts/config.mli: Format Repro_heap Repro_machine Repro_mp Repro_util
