lib/parrts/report.ml: Format Repro_trace
