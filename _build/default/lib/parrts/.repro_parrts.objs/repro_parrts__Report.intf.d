lib/parrts/report.mli: Format Repro_trace
