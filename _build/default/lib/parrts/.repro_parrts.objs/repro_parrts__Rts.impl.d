lib/parrts/rts.ml: Array Config Effect Float Fun List Printf Queue Report Repro_deque Repro_heap Repro_machine Repro_mp Repro_sim Repro_trace Repro_util
