lib/parrts/rts.mli: Config Report Repro_heap Repro_util
