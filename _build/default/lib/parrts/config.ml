(** Runtime-system configuration: every knob the paper varies.

    Each record field corresponds to an implementation choice studied in
    the paper; the presets in {!Repro_core.Versions} compose them into
    the named configurations of Figs. 1–5. *)

type load_balance =
  | Push_polling
      (** GHC 6.8.x: the scheduler of a busy capability polls for idle
          capabilities and pushes surplus sparks/threads to them.
          Balancing happens only when a scheduler runs, hence the delay
          the paper criticises (Sec. IV-A.2). *)
  | Work_stealing
      (** the paper's optimisation: lock-free Chase–Lev spark deques;
          idle capabilities steal directly, no handshake. *)

type blackholing =
  | Lazy_bh
      (** thunks are marked as under-evaluation only when their thread
          is descheduled (GHC default; duplicate-evaluation window) *)
  | Eager_bh  (** thunks are marked immediately on entry *)

type spark_runner =
  | Thread_per_spark
      (** convert each spark into a fresh thread (creation/destruction
          overhead per spark) *)
  | Spark_threads
      (** one dedicated thread per capability drains sparks in a loop
          (Sec. IV-A.4) *)

type heap_mode =
  | Shared
      (** one global heap; nursery-full on any capability stops the
          world (GpH / threaded GHC) *)
  | Distributed of Repro_mp.Transport.t
      (** one private heap per PE, collected independently; PEs
          communicate through the given middleware (Eden) *)
  | Semi_distributed of { global_area : int; promote_ns_per_byte : float }
      (** paper future work: private local heaps + a rarely-collected
          global heap; sharing promotes data into the global heap *)

type t = {
  machine : Repro_machine.Machine.t;
  ncaps : int;  (** capabilities / (virtual) PEs *)
  gc : Repro_heap.Gc_model.t;
  load_balance : load_balance;
  blackholing : blackholing;
  spark_runner : spark_runner;
  heap_mode : heap_mode;
  timeslice_ns : int;  (** thread preemption quantum (GHC: 20 ms) *)
  thread_create_ns : int;  (** create + destroy a lightweight thread *)
  spark_cost : Repro_util.Cost.t;  (** cost of [par] itself *)
  spark_pool_capacity : int;
      (** spark pools are fixed-size ring buffers in GHC; a [par] into
          a full pool drops the spark (counted as overflow) *)
  steal_attempt_ns : int;  (** one steal attempt on a remote deque *)
  steal_wake_ns : int;  (** latency from spark creation to a stalled
                            capability noticing it *)
  push_handshake_ns : int;  (** per-spark hand-shake in pushing mode *)
  push_poll_interval_ns : int;
      (** how often a busy capability's scheduler polls for idle
          capabilities in push mode (models scheduler-entry frequency;
          the delay the paper criticises in Sec. IV-A.2) *)
  sched_poll_ns : int;  (** extra scheduler work per push-mode poll *)
  migrate_threads : bool;  (** push surplus threads to idle caps *)
  steal_threads : bool;  (** extension: also steal runnable threads *)
  coherency_base : float;
      (** per-extra-capability mutator slowdown from cache-coherency
          traffic in the shared heap (Sec. VI-A, fourth bullet) *)
  seed : int;
  trace_enabled : bool;
}

let default ?(machine = Repro_machine.Machine.intel8) ?(ncaps = 8) () =
  {
    machine;
    ncaps;
    gc = Repro_heap.Gc_model.default;
    load_balance = Push_polling;
    blackholing = Lazy_bh;
    spark_runner = Thread_per_spark;
    heap_mode = Shared;
    timeslice_ns = 20_000_000;
    thread_create_ns = 3_500;
    spark_cost = Repro_util.Cost.make 60 ~alloc:16;
    spark_pool_capacity = 4096;
    steal_attempt_ns = 900;
    steal_wake_ns = 1_200;
    push_handshake_ns = 2_500;
    (* GHC's context-switch timer (-C): the scheduler of a busy
       capability runs — and can push work — at most this often unless
       a GC intervenes. *)
    push_poll_interval_ns = 7_000_000;
    sched_poll_ns = 1_500;
    migrate_threads = true;
    steal_threads = false;
    coherency_base = 0.006;
    seed = 0xC0FFEE;
    trace_enabled = true;
  }

let is_distributed cfg =
  match cfg.heap_mode with Distributed _ -> true | _ -> false

let pp_load_balance ppf = function
  | Push_polling -> Format.pp_print_string ppf "push-polling"
  | Work_stealing -> Format.pp_print_string ppf "work-stealing"

let pp_blackholing ppf = function
  | Lazy_bh -> Format.pp_print_string ppf "lazy-bh"
  | Eager_bh -> Format.pp_print_string ppf "eager-bh"

let pp_heap_mode ppf = function
  | Shared -> Format.pp_print_string ppf "shared"
  | Distributed t ->
      Format.fprintf ppf "distributed/%a" Repro_mp.Transport.pp t
  | Semi_distributed _ -> Format.pp_print_string ppf "semi-distributed"

let pp ppf cfg =
  Format.fprintf ppf "@[<h>%s ncaps=%d heap=%a lb=%a bh=%a gc=[%a]@]"
    cfg.machine.Repro_machine.Machine.name cfg.ncaps pp_heap_mode cfg.heap_mode
    pp_load_balance cfg.load_balance pp_blackholing cfg.blackholing
    Repro_heap.Gc_model.pp cfg.gc
