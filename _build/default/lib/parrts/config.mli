(** Runtime-system configuration: every knob the paper varies.  The
    presets in {!Repro_core.Versions} compose these into the named
    configurations of Figs. 1–5. *)

type load_balance =
  | Push_polling
      (** GHC 6.8.x: a busy capability's scheduler polls for idle
          capabilities and pushes surplus sparks/threads to them;
          balancing happens only when a scheduler runs (Sec. IV-A.2) *)
  | Work_stealing
      (** lock-free Chase–Lev spark deques; idle capabilities steal
          directly, no handshake (the paper's optimisation) *)

type blackholing =
  | Lazy_bh
      (** thunks marked under-evaluation only at deschedule (GHC
          default; opens the duplicate-evaluation window) *)
  | Eager_bh  (** thunks marked immediately on entry *)

type spark_runner =
  | Thread_per_spark  (** one fresh thread per activated spark *)
  | Spark_threads
      (** one dedicated thread per capability drains sparks in a loop
          (Sec. IV-A.4) *)

type heap_mode =
  | Shared
      (** one global heap; a full nursery stops the world (GpH) *)
  | Distributed of Repro_mp.Transport.t
      (** one private heap per PE, collected independently; PEs
          communicate through the given middleware (Eden) *)
  | Semi_distributed of { global_area : int; promote_ns_per_byte : float }
      (** paper future work (Sec. VI-A): private local heaps plus a
          rarely-collected global heap; sharing promotes data *)

type t = {
  machine : Repro_machine.Machine.t;
  ncaps : int;  (** capabilities / (virtual) PEs *)
  gc : Repro_heap.Gc_model.t;
  load_balance : load_balance;
  blackholing : blackholing;
  spark_runner : spark_runner;
  heap_mode : heap_mode;
  timeslice_ns : int;  (** preemption quantum (GHC: 20 ms) *)
  thread_create_ns : int;  (** create + destroy a lightweight thread *)
  spark_cost : Repro_util.Cost.t;  (** cost of [par] itself *)
  spark_pool_capacity : int;  (** fixed ring size; overflow drops sparks *)
  steal_attempt_ns : int;  (** one steal attempt on a remote deque *)
  steal_wake_ns : int;  (** spark creation to stalled-cap wake-up *)
  push_handshake_ns : int;  (** per-spark hand-shake when pushing *)
  push_poll_interval_ns : int;
      (** how often a busy capability's scheduler polls for idle
          capabilities in push mode *)
  sched_poll_ns : int;  (** mutator cost of one push-mode poll *)
  migrate_threads : bool;  (** push surplus threads to idle caps *)
  steal_threads : bool;  (** extension: idle caps pull runnable threads *)
  coherency_base : float;
      (** per-extra-capability shared-heap slowdown from coherency
          traffic (Sec. VI-A) *)
  seed : int;
  trace_enabled : bool;
}

(** The GHC 6.9 defaults on the paper's Intel 8-core. *)
val default : ?machine:Repro_machine.Machine.t -> ?ncaps:int -> unit -> t

val is_distributed : t -> bool
val pp_load_balance : Format.formatter -> load_balance -> unit
val pp_blackholing : Format.formatter -> blackholing -> unit
val pp_heap_mode : Format.formatter -> heap_mode -> unit
val pp : Format.formatter -> t -> unit
