(** Result of one simulated run: elapsed virtual time plus the
    runtime-system statistics the paper's analysis relies on. *)

type gc = {
  minors : int;
  majors : int;
  pause_total_ns : int;  (** summed collection pauses *)
  barrier_wait_ns : int;
      (** capability-time spent waiting at the stop-the-world barrier
          before collection could start (the Sec. IV-A.1 bottleneck) *)
  max_pause_ns : int;
}

type sparks = {
  created : int;
  converted : int;  (** turned into threads / run by a spark thread *)
  stolen : int;
  pushed : int;  (** transferred by the push-polling balancer *)
  fizzled : int;  (** already evaluated when activated *)
  overflowed : int;  (** dropped because the spark pool was full *)
}

type messages = { sent : int; bytes : int }

type t = {
  elapsed_ns : int;  (** virtual time until the main thread finished *)
  gc : gc;
  sparks : sparks;
  messages : messages;
  threads_created : int;
  threads_stolen : int;  (** runnable threads pulled by idle caps *)
  dup_work_entries : int;  (** duplicate thunk entries (lazy-BH waste) *)
  blocked_forces : int;  (** forces that blocked on a black hole *)
  utilisation : float;  (** fraction of capability-time spent running *)
  trace : Repro_trace.Trace.t;
  eventlog : Repro_trace.Eventlog.t;
}

let elapsed_s r = float_of_int r.elapsed_ns /. 1e9
let elapsed_ms r = float_of_int r.elapsed_ns /. 1e6

let pp ppf r =
  Format.fprintf ppf
    "@[<v>elapsed %.3f ms, utilisation %.1f%%@,\
     gc: %d minor + %d major, pause %.2f ms, barrier wait %.2f ms@,\
     sparks: %d created, %d converted, %d stolen, %d pushed, %d fizzled, \
     %d overflowed@,\
     threads: %d created, %d stolen;  dup entries: %d;  blocked forces: %d;  \
     msgs: %d (%d bytes)@]"
    (elapsed_ms r) (100.0 *. r.utilisation) r.gc.minors r.gc.majors
    (float_of_int r.gc.pause_total_ns /. 1e6)
    (float_of_int r.gc.barrier_wait_ns /. 1e6)
    r.sparks.created r.sparks.converted r.sparks.stolen r.sparks.pushed
    r.sparks.fizzled r.sparks.overflowed r.threads_created r.threads_stolen
    r.dup_work_entries r.blocked_forces r.messages.sent r.messages.bytes
