(** Result of one simulated run: elapsed virtual time plus the
    runtime-system statistics the paper's analysis relies on. *)

type gc = {
  minors : int;
  majors : int;
  pause_total_ns : int;  (** summed collection pauses *)
  barrier_wait_ns : int;
      (** capability-time spent waiting at the stop-the-world barrier
          (the Sec. IV-A.1 bottleneck) *)
  max_pause_ns : int;
}

type sparks = {
  created : int;
  converted : int;  (** turned into threads / run by a spark thread *)
  stolen : int;
  pushed : int;  (** transferred by the push-polling balancer *)
  fizzled : int;  (** already evaluated when activated *)
  overflowed : int;  (** dropped: spark pool full *)
}

type messages = { sent : int; bytes : int }

type t = {
  elapsed_ns : int;  (** virtual time until the main thread finished *)
  gc : gc;
  sparks : sparks;
  messages : messages;
  threads_created : int;
  threads_stolen : int;
  dup_work_entries : int;  (** duplicate thunk entries (lazy-BH waste) *)
  blocked_forces : int;  (** forces that blocked on a black hole *)
  utilisation : float;  (** fraction of capability-time spent running *)
  trace : Repro_trace.Trace.t;
  eventlog : Repro_trace.Eventlog.t;  (** structured runtime events *)
}

val elapsed_s : t -> float
val elapsed_ms : t -> float
val pp : Format.formatter -> t -> unit
