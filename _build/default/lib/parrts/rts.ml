(** The runtime-system simulator.

    This module plays the role of GHC's threaded runtime (for the
    shared-heap GpH configurations) and of the Eden PE runtime (for the
    distributed-heap configurations), at the level of abstraction the
    paper analyses:

    - {b capabilities} (= PEs), one per simulated core, each with a run
      queue of lightweight threads and a Chase–Lev spark deque;
    - {b lightweight threads} implemented as OCaml 5 effect-handler
      fibers; thread code charges virtual {e work} and {e allocation}
      through {!Api} and the scheduler advances a discrete-event clock;
    - {b context-switch checks} once per [check_interval] (4 kB) of
      allocation — GC requests, timeslice expiry and (lazy) black-holing
      are only noticed at these safepoints, reproducing the barrier
      delay of the paper's Sec. IV-A.1;
    - {b stop-the-world GC} for the shared heap, {b independent per-PE
      GC} for the distributed heap, and the semi-distributed
      local/global scheme of Sec. VI-A as an extension;
    - {b load balancing} by push-polling (GHC 6.8.x) or lock-free work
      stealing (the paper's optimisation, Sec. IV-A.2);
    - {b spark activation} by thread-per-spark or by dedicated spark
      threads (Sec. IV-A.4);
    - {b message passing} with middleware cost profiles for the
      distributed mode (Sec. III-B).

    All fiber execution happens synchronously inside engine events, so
    runs are fully deterministic. *)

module Cost = Repro_util.Cost
module Rng = Repro_util.Rng
module Engine = Repro_sim.Engine
module Trace = Repro_trace.Trace
module Machine = Repro_machine.Machine
module Node = Repro_heap.Node
module Gc_model = Repro_heap.Gc_model
module Ws_deque = Repro_deque.Ws_deque
module Transport = Repro_mp.Transport
module Eventlog = Repro_trace.Eventlog

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

(** A spark: a deferred computation plus a cheap usefulness test (a
    spark whose thunk was meanwhile evaluated "fizzles"). *)
type spark = { run : unit -> unit; still_needed : unit -> bool }

type thread_state = Runnable | Running | Blocked | Finished

type resume =
  | Start of (unit -> unit)
  | Resume of (unit, unit) Effect.Deep.continuation
  | Consumed

type thread = {
  tid : int;
  mutable tstate : thread_state;
  mutable resume : resume;
  mutable pending : Cost.t;  (** unconsumed part of the current charge *)
  mutable in_flight : bool;  (** a charge-segment event is scheduled *)
  mutable update_stack : Node.boxed list;
      (** thunks this thread is currently evaluating (for retroactive
          lazy black-holing on deschedule) *)
  mutable cap : int;  (** owning capability *)
  mutable slice_start : int;
  is_spark_thread : bool;
}

type cap = {
  idx : int;
  runq : thread Queue.t;
  pool : spark Ws_deque.t;
  mutable current : thread option;
  mutable alloc_since_check : int;  (** progress towards the 4 kB check *)
  mutable alloc_in_area : int;  (** nursery fill *)
  mutable resident : int;  (** live data (distributed mode: per PE) *)
  mutable local_minors : int;
  mutable idle : bool;
  mutable in_barrier : bool;
  mutable barrier_join_ns : int;
  mutable in_local_gc : bool;
  mutable step_scheduled : bool;
  mutable spark_thread_live : bool;
  mutable blocked_threads : int;
  mutable last_push_poll : int;
  mutable barrier_notice_deadline : int;
      (** legacy sync: when this capability will notice a pending GC
          request from mutator code (-1 = not yet drawn) *)
  rng : Rng.t;
}

type gc_phase = No_gc | Requested | Collecting

type t = {
  cfg : Config.t;
  engine : Engine.t;
  trace : Trace.t;
  log : Eventlog.t;
  caps : cap array;
  reg : Node.registry;
  mutable gc_phase : gc_phase;
  mutable gc_request_ns : int;
  mutable barrier_joined : int;
  mutable shared_resident : int;  (** workload-declared live data *)
  mutable shared_survivors : int;  (** young data surviving since major *)
  mutable global_fill : int;  (** semi-distributed global heap fill *)
  mutable active_running : int;  (** caps currently in Running state *)
  mutable next_tid : int;
  mutable live_threads : int;
  mutable finished : bool;
  mutable finish_ns : int;
  mutable error : exn option;
  (* counters *)
  mutable minors : int;
  mutable majors : int;
  mutable pause_total : int;
  mutable barrier_wait : int;
  mutable max_pause : int;
  mutable sparks_created : int;
  mutable sparks_converted : int;
  mutable sparks_stolen : int;
  mutable sparks_pushed : int;
  mutable sparks_fizzled : int;
  mutable sparks_overflowed : int;
  mutable threads_created : int;
  mutable threads_stolen : int;
  mutable msgs_sent : int;
  mutable msg_bytes : int;
  rng : Rng.t;
}

exception Deadlock of string

(* ------------------------------------------------------------------ *)
(* Effects: the only ways thread code interacts with virtual time      *)
(* ------------------------------------------------------------------ *)

type _ Effect.t +=
  | Charge : Cost.t -> unit Effect.t
  | Block : ((unit -> unit) -> unit) -> unit Effect.t
        (** [Block register]: deschedule this thread; [register wake] is
            called once with the wake-up callback *)
  | Yield : unit Effect.t

(* The simulator is single-threaded and non-reentrant; the currently
   installed instance and the executing (cap, thread) live here so that
   the Api can reach them without explicit plumbing. *)
let installed : t option ref = ref None
let current_ctx : (cap * thread) option ref = ref None

let instance () =
  match !installed with
  | Some rts -> rts
  | None -> failwith "Rts: no simulation running"

let context () =
  match !current_ctx with
  | Some ctx -> ctx
  | None -> failwith "Rts: not inside a simulated thread"

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create (cfg : Config.t) =
  if cfg.ncaps <= 0 then invalid_arg "Rts.create: ncaps must be positive";
  let rng = Rng.create cfg.seed in
  let caps =
    Array.init cfg.ncaps (fun idx ->
        {
          idx;
          runq = Queue.create ();
          pool = Ws_deque.create ();
          current = None;
          alloc_since_check = 0;
          alloc_in_area = 0;
          resident = 0;
          local_minors = 0;
          idle = true;
          in_barrier = false;
          barrier_join_ns = 0;
          in_local_gc = false;
          step_scheduled = false;
          spark_thread_live = false;
          blocked_threads = 0;
          last_push_poll = 0;
          barrier_notice_deadline = -1;
          rng = Rng.split rng;
        })
  in
  let trace = Trace.create ~caps:cfg.ncaps in
  let log = Eventlog.create () in
  if not cfg.trace_enabled then begin
    Trace.disable trace;
    Eventlog.disable log
  end;
  {
    cfg;
    engine = Engine.create ();
    trace;
    log;
    caps;
    reg = Node.registry ();
    gc_phase = No_gc;
    gc_request_ns = 0;
    barrier_joined = 0;
    shared_resident = 0;
    shared_survivors = 0;
    global_fill = 0;
    active_running = 0;
    next_tid = 0;
    live_threads = 0;
    finished = false;
    finish_ns = 0;
    error = None;
    minors = 0;
    majors = 0;
    pause_total = 0;
    barrier_wait = 0;
    max_pause = 0;
    sparks_created = 0;
    sparks_converted = 0;
    sparks_stolen = 0;
    sparks_pushed = 0;
    sparks_fizzled = 0;
    sparks_overflowed = 0;
    threads_created = 0;
    threads_stolen = 0;
    msgs_sent = 0;
    msg_bytes = 0;
    rng;
  }

let now rts = Engine.now rts.engine
let registry rts = rts.reg
let config rts = rts.cfg

let cost_sub (a : Cost.t) (b : Cost.t) : Cost.t =
  { cycles = max 0 (a.cycles - b.cycles); alloc = max 0 (a.alloc - b.alloc) }

let emit rts ev = Eventlog.emit rts.log ~time:(Engine.now rts.engine) ev

(* ------------------------------------------------------------------ *)
(* Trace-state bookkeeping (also maintains the active-running count    *)
(* used by the core-oversubscription model)                            *)
(* ------------------------------------------------------------------ *)

let cap_state rts (c : cap) (st : Trace.state) =
  if not rts.finished then begin
    let old = Trace.state_of rts.trace c.idx in
    if old <> st then begin
      if old = Trace.Running then rts.active_running <- rts.active_running - 1;
      if st = Trace.Running then rts.active_running <- rts.active_running + 1;
      Trace.set_state rts.trace ~time:(now rts) ~cap:c.idx st
    end
  end

(* ------------------------------------------------------------------ *)
(* Cost model: cycles -> virtual ns on this capability, right now      *)
(* ------------------------------------------------------------------ *)

(* The nursery is streamed through rather than repeatedly revisited, so
   it contributes only fractionally to cache pressure; live (resident)
   data is what competes for cache. *)
let nursery_cache_fraction = 8

let working_set rts (c : cap) =
  let nursery = rts.cfg.gc.alloc_area / nursery_cache_fraction in
  match rts.cfg.heap_mode with
  | Config.Shared | Config.Semi_distributed _ ->
      ((rts.shared_resident + rts.shared_survivors) / rts.cfg.ncaps) + nursery
  | Config.Distributed _ -> c.resident + nursery

let mutator_factor rts (c : cap) =
  let m = rts.cfg.machine in
  let share =
    if rts.cfg.ncaps > m.Machine.cores then
      let active = max 1 rts.active_running in
      Float.max 1.0 (float_of_int active /. float_of_int m.Machine.cores)
    else 1.0
  in
  let penalty = Machine.mem_penalty m ~working_set:(working_set rts c) in
  let coherency =
    match rts.cfg.heap_mode with
    | Config.Shared ->
        1.0 +. (rts.cfg.coherency_base *. float_of_int (rts.cfg.ncaps - 1))
    | _ -> 1.0
  in
  share *. penalty *. coherency

let mutator_ns rts (c : cap) cycles =
  if cycles <= 0 then 0
  else
    let base = Machine.ns_of_cycles rts.cfg.machine cycles in
    max 1
      (int_of_float (Float.round (float_of_int base *. mutator_factor rts c)))

let cycles_of_ns rts ns = Machine.cycles_of_ns rts.cfg.machine ns

(* Mark every thunk the thread is in the middle of evaluating.  Under
   lazy black-holing this happens only here — at deschedule time — which
   is what opens the duplicate-evaluation window the paper studies. *)
let blackhole_update_stack rts th =
  match rts.cfg.blackholing with
  | Config.Eager_bh -> () (* already marked at entry *)
  | Config.Lazy_bh -> List.iter Node.blackhole_boxed th.update_stack

let make_thread rts ~cap ~spark_thread body =
  rts.next_tid <- rts.next_tid + 1;
  rts.threads_created <- rts.threads_created + 1;
  rts.live_threads <- rts.live_threads + 1;
  emit rts (Eventlog.Thread_created { tid = rts.next_tid; cap });
  {
    tid = rts.next_tid;
    tstate = Runnable;
    resume = Start body;
    pending = Cost.zero;
    in_flight = false;
    update_stack = [];
    cap;
    slice_start = 0;
    is_spark_thread = spark_thread;
  }

(* ------------------------------------------------------------------ *)
(* The scheduler: one mutually-recursive group                         *)
(* ------------------------------------------------------------------ *)

let rec schedule_step rts (c : cap) ~delay =
  if not c.step_scheduled && not rts.finished then begin
    c.step_scheduled <- true;
    Engine.after rts.engine delay (fun () ->
        c.step_scheduled <- false;
        if not rts.finished then cap_step rts c)
  end

(* Scheduler entry for capability [c]: runs at thread switches, wakes,
   GC completion — everywhere GHC's scheduler loop would run. *)
and cap_step rts c =
  if c.in_barrier || c.in_local_gc then ()
  else if rts.gc_phase = Collecting then ()
  else if rts.gc_phase = Requested && uses_barrier rts then join_barrier rts c
  else begin
    (* Distributed mode: message arrivals may have filled the nursery. *)
    if
      (not (uses_barrier rts))
      && c.alloc_in_area >= rts.cfg.gc.alloc_area
    then local_gc rts c
    else begin
      if rts.cfg.load_balance = Config.Push_polling then push_surplus rts c;
      (* Threads never migrate between PEs in the distributed model:
         each PE is a separate sequential runtime (Sec. III-B). *)
      if rts.cfg.migrate_threads && uses_barrier rts then
        migrate_surplus_threads rts c;
      match c.current with
      | Some th -> if not th.in_flight then dispatch_current rts c th
      | None -> pick_work rts c
    end
  end

and uses_barrier rts =
  match rts.cfg.heap_mode with
  | Config.Shared | Config.Semi_distributed _ -> true
  | Config.Distributed _ -> false

and pick_work rts c =
  if Queue.length c.runq > 0 then begin
    let th = Queue.pop c.runq in
    start_running rts c th
  end
  else begin
    match rts.cfg.spark_runner with
    | Config.Spark_threads ->
        if (not c.spark_thread_live) && sparks_reachable rts c then begin
          c.spark_thread_live <- true;
          let th =
            make_thread rts ~cap:c.idx ~spark_thread:true
              (spark_thread_body rts c.idx)
          in
          start_running rts c th
        end
        else if not (steal_runnable_thread rts c) then make_idle rts c
    | Config.Thread_per_spark ->
        if not (activate_one_spark rts c) then
          if not (steal_runnable_thread rts c) then make_idle rts c
  end

(* Extension (Sec. IV-A.2: "work pulling could also be applied to
   threads"): an idle capability with no sparks anywhere pulls a
   runnable thread from another capability's run queue.  Shared-heap
   mode only — threads cannot cross PE heaps. *)
and steal_runnable_thread rts c =
  if
    (not rts.cfg.steal_threads)
    || rts.cfg.load_balance <> Config.Work_stealing
    || not (uses_barrier rts)
  then false
  else begin
    let n = Array.length rts.caps in
    let victims = Array.init n (fun i -> i) in
    Rng.shuffle_in_place c.rng victims;
    let found = ref None in
    Array.iter
      (fun v ->
        if !found = None && v <> c.idx then begin
          let vc = rts.caps.(v) in
          (* only steal from queues with surplus (> 0 waiting while the
             victim is already running something) *)
          if Queue.length vc.runq > 0 && vc.current <> None then begin
            let th = Queue.pop vc.runq in
            rts.threads_stolen <- rts.threads_stolen + 1;
            emit rts
              (Eventlog.Thread_migrated
                 { tid = th.tid; from_cap = v; to_cap = c.idx });
            found := Some th
          end
        end)
      victims;
    match !found with
    | Some th ->
        th.cap <- c.idx;
        start_running rts c th;
        true
    | None -> false
  end

and sparks_reachable rts c =
  Ws_deque.size c.pool > 0
  || (rts.cfg.load_balance = Config.Work_stealing
     && Array.exists (fun c' -> Ws_deque.size c'.pool > 0) rts.caps)

(* Take a spark: own pool first, then (in stealing mode) other pools in
   random victim order.  Returns the spark and the virtual-time cost of
   acquiring it. *)
and take_spark rts c =
  match Ws_deque.pop c.pool with
  | Some s -> Some (s, 0)
  | None ->
      if rts.cfg.load_balance <> Config.Work_stealing then None
      else begin
        let n = Array.length rts.caps in
        let victims = Array.init n (fun i -> i) in
        Rng.shuffle_in_place c.rng victims;
        let found = ref None in
        let attempts = ref 0 in
        Array.iter
          (fun v ->
            if !found = None && v <> c.idx then begin
              incr attempts;
              match Ws_deque.steal rts.caps.(v).pool with
              | Some s ->
                  rts.sparks_stolen <- rts.sparks_stolen + 1;
                  emit rts (Eventlog.Spark_stolen { thief = c.idx });
                  found := Some s
              | None -> ()
            end)
          victims;
        match !found with
        | Some s -> Some (s, !attempts * rts.cfg.steal_attempt_ns)
        | None -> None
      end

(* Thread-per-spark activation: convert the next useful spark into a
   fresh thread (paying creation cost) and run it. *)
and activate_one_spark rts c =
  match take_spark rts c with
  | None -> false
  | Some (s, delay_ns) ->
      if s.still_needed () then begin
        rts.sparks_converted <- rts.sparks_converted + 1;
        emit rts (Eventlog.Spark_converted { cap = c.idx });
        let overhead = delay_ns + rts.cfg.thread_create_ns in
        let body () =
          Effect.perform (Charge (Cost.cycles (cycles_of_ns rts overhead)));
          s.run ()
        in
        let th = make_thread rts ~cap:c.idx ~spark_thread:false body in
        start_running rts c th;
        true
      end
      else begin
        rts.sparks_fizzled <- rts.sparks_fizzled + 1;
        emit rts (Eventlog.Spark_fizzled { cap = c.idx });
        activate_one_spark rts c
      end

(* Dedicated spark-thread body (Sec. IV-A.4): drain sparks — local pool
   first, stealing when allowed — until none are reachable or a real
   thread wants the capability; then exit. *)
and spark_thread_body rts cap_idx () =
  let c = rts.caps.(cap_idx) in
  let rec loop () =
    if Queue.length c.runq > 0 then () (* yield the capability *)
    else
      match take_spark rts c with
      | None -> ()
      | Some (s, delay_ns) ->
          if delay_ns > 0 then
            Effect.perform (Charge (Cost.cycles (cycles_of_ns rts delay_ns)));
          if s.still_needed () then begin
            rts.sparks_converted <- rts.sparks_converted + 1;
            emit rts (Eventlog.Spark_converted { cap = cap_idx });
            s.run ()
          end
          else begin
            rts.sparks_fizzled <- rts.sparks_fizzled + 1;
            emit rts (Eventlog.Spark_fizzled { cap = cap_idx })
          end;
          loop ()
  in
  loop ()

(* Push-polling load balancing (GHC 6.8.x): a busy capability's
   scheduler gives one surplus spark to each idle capability.  A
   capability with no other work keeps one spark for itself, otherwise
   freshly-pushed sparks would ping-pong between idle capabilities. *)
and push_surplus rts c =
  let keep =
    if c.current = None && Queue.is_empty c.runq then 1 else 0
  in
  if Ws_deque.size c.pool > keep then
    Array.iter
      (fun c' ->
        if
          c'.idx <> c.idx && c'.idle
          && (not c'.in_barrier)
          && Ws_deque.size c'.pool = 0
          && Ws_deque.size c.pool > keep
        then
          (* GHC's schedulePushWork hands out sparks from the steal end
             of its own pool (oldest first), same as remote thieves. *)
          match Ws_deque.steal c.pool with
          | Some s ->
              Ws_deque.push c'.pool s;
              rts.sparks_pushed <- rts.sparks_pushed + 1;
              schedule_step rts c' ~delay:rts.cfg.push_handshake_ns
          | None -> ())
      rts.caps

(* Surplus runnable threads are pushed to idle capabilities in both
   balancing modes (the paper: "surplus threads are still pushed
   actively to other capabilities"). *)
and migrate_surplus_threads rts c =
  let surplus () =
    Queue.length c.runq > if c.current = None then 1 else 0
  in
  Array.iter
    (fun c' ->
      if c'.idx <> c.idx && c'.idle && (not c'.in_barrier) && surplus ()
      then begin
        let th = Queue.pop c.runq in
        emit rts
          (Eventlog.Thread_migrated
             { tid = th.tid; from_cap = c.idx; to_cap = c'.idx });
        th.cap <- c'.idx;
        Queue.push th c'.runq;
        schedule_step rts c' ~delay:rts.cfg.push_handshake_ns
      end)
    rts.caps

and make_idle rts c =
  c.idle <- true;
  cap_state rts c (if c.blocked_threads > 0 then Trace.Blocked else Trace.Idle);
  (* If a GC is pending, an idle capability joins the barrier at once:
     it is trivially at a safepoint. *)
  if rts.gc_phase = Requested && uses_barrier rts then join_barrier rts c

and start_running rts c th =
  c.idle <- false;
  c.current <- Some th;
  th.cap <- c.idx;
  th.tstate <- Running;
  th.slice_start <- now rts;
  cap_state rts c Trace.Running;
  dispatch_current rts c th

(* Resume the capability's current thread: finish any outstanding
   charge first, then continue the fiber. *)
and dispatch_current rts c th =
  c.idle <- false;
  cap_state rts c Trace.Running;
  if not (Cost.is_zero th.pending) then begin_charge rts c th
  else continue_fiber rts c th

and continue_fiber rts c th =
  match th.resume with
  | Consumed ->
      (* Nothing to continue: only possible through scheduler bugs. *)
      assert false
  | Start f ->
      th.resume <- Consumed;
      let prev = !current_ctx in
      current_ctx := Some (c, th);
      Effect.Deep.match_with f () (handler rts th);
      current_ctx := prev
  | Resume k ->
      th.resume <- Consumed;
      let prev = !current_ctx in
      current_ctx := Some (c, th);
      Effect.Deep.continue k ();
      current_ctx := prev

and handler : 'a. t -> thread -> (unit, unit) Effect.Deep.handler =
 fun rts th ->
  {
    retc = (fun () -> finish_thread rts th);
    exnc =
      (fun e ->
        rts.error <- Some e;
        rts.finished <- true;
        Engine.stop rts.engine);
    effc =
      (fun (type b) (eff : b Effect.t) ->
        match eff with
        | Charge cost ->
            Some
              (fun (k : (b, unit) Effect.Deep.continuation) ->
                th.resume <- Resume k;
                th.pending <- cost;
                let c = rts.caps.(th.cap) in
                begin_charge rts c th)
        | Block register ->
            Some
              (fun (k : (b, unit) Effect.Deep.continuation) ->
                th.resume <- Resume k;
                th.tstate <- Blocked;
                emit rts (Eventlog.Thread_blocked { tid = th.tid; cap = th.cap });
                blackhole_update_stack rts th;
                let c = rts.caps.(th.cap) in
                c.blocked_threads <- c.blocked_threads + 1;
                c.current <- None;
                (* A blocked spark thread must not prevent the scheduler
                   from creating a fresh one (Sec. IV-A.4). *)
                if th.is_spark_thread then c.spark_thread_live <- false;
                schedule_step rts c ~delay:0;
                register (fun () -> wake_thread rts th))
        | Yield ->
            Some
              (fun (k : (b, unit) Effect.Deep.continuation) ->
                th.resume <- Resume k;
                th.tstate <- Runnable;
                blackhole_update_stack rts th;
                let c = rts.caps.(th.cap) in
                Queue.push th c.runq;
                c.current <- None;
                schedule_step rts c ~delay:0)
        | _ -> None);
  }

and finish_thread rts th =
  th.tstate <- Finished;
  emit rts (Eventlog.Thread_finished { tid = th.tid; cap = th.cap });
  rts.live_threads <- rts.live_threads - 1;
  let c = rts.caps.(th.cap) in
  if th.is_spark_thread then c.spark_thread_live <- false;
  c.current <- None;
  schedule_step rts c ~delay:0

and wake_thread rts th =
  match th.tstate with
  | Blocked ->
      th.tstate <- Runnable;
      emit rts (Eventlog.Thread_woken { tid = th.tid; cap = th.cap });
      let c = rts.caps.(th.cap) in
      c.blocked_threads <- max 0 (c.blocked_threads - 1);
      Queue.push th c.runq;
      if c.current = None then schedule_step rts c ~delay:0
  | Runnable | Running | Finished -> ()

(* --- charging ---------------------------------------------------- *)

and begin_charge rts c th =
  if Cost.is_zero th.pending then continue_fiber rts c th
  else begin
    let pend = th.pending in
    let interval = rts.cfg.gc.check_interval in
    let to_boundary = interval - c.alloc_since_check in
    let seg =
      if pend.Cost.alloc = 0 || pend.Cost.alloc <= to_boundary then pend
      else
        (* slice so that the segment ends exactly at the 4 kB check *)
        let cycles = pend.Cost.cycles * to_boundary / pend.Cost.alloc in
        { Cost.cycles; alloc = to_boundary }
    in
    let dur = max 1 (mutator_ns rts c seg.Cost.cycles) in
    th.in_flight <- true;
    Engine.after rts.engine dur (fun () ->
        th.in_flight <- false;
        if not rts.finished then charge_segment_done rts c th seg)
  end

and charge_segment_done rts c th seg =
  c.alloc_since_check <- c.alloc_since_check + seg.Cost.alloc;
  c.alloc_in_area <- c.alloc_in_area + seg.Cost.alloc;
  th.pending <- cost_sub th.pending seg;
  let interval = rts.cfg.gc.check_interval in
  let boundary = c.alloc_since_check >= interval in
  if boundary then c.alloc_since_check <- c.alloc_since_check mod interval;
  (* Safepoint checks happen only at the allocation boundary — the
     paper's Sec. IV-A.1 point about slow allocators delaying GC. *)
  let descheduled = ref false in
  if boundary then begin
    if uses_barrier rts then begin
      if c.alloc_in_area >= rts.cfg.gc.alloc_area && rts.gc_phase = No_gc
      then request_gc rts;
      if rts.gc_phase = Requested then begin
        (* Under legacy sync, mutator code only reacts to the request
           at a scheduler-entry point, up to a timer quantum away
           (Sec. IV-A.1: "the GC barrier will therefore be delayed").
           Improved sync reacts at this very allocation check.  A full
           nursery forces the stop in either mode. *)
        let join_now =
          match rts.cfg.gc.Gc_model.sync with
          | Gc_model.Improved -> true
          | Gc_model.Legacy ->
              if c.barrier_notice_deadline < 0 then begin
                c.barrier_notice_deadline <-
                  now rts + Rng.int c.rng rts.cfg.gc.Gc_model.legacy_notice_ns;
                c.alloc_in_area >= rts.cfg.gc.alloc_area
              end
              else
                now rts >= c.barrier_notice_deadline
                || c.alloc_in_area >= rts.cfg.gc.alloc_area
        in
        if join_now then begin
          blackhole_update_stack rts th;
          join_barrier rts c;
          descheduled := true
        end
      end
    end
    else if c.alloc_in_area >= rts.cfg.gc.alloc_area then begin
      local_gc rts c;
      descheduled := true
    end;
    if not !descheduled then begin
      if
        rts.cfg.load_balance = Config.Push_polling
        && now rts - c.last_push_poll >= rts.cfg.push_poll_interval_ns
      then begin
        c.last_push_poll <- now rts;
        push_surplus rts c;
        if rts.cfg.migrate_threads && uses_barrier rts then
          migrate_surplus_threads rts c;
        (* the polling scheduler entry itself costs mutator time *)
        th.pending <-
          Cost.add th.pending (Cost.cycles (cycles_of_ns rts rts.cfg.sched_poll_ns))
      end;
      if now rts - th.slice_start >= rts.cfg.timeslice_ns then begin
        (* Timer tick: the thread passes through the scheduler, its
           stack is scanned and in-progress thunks are black-holed
           (this bounds the lazy duplicate-evaluation window to one
           timeslice).  Rotate the run queue if anyone is waiting. *)
        blackhole_update_stack rts th;
        th.slice_start <- now rts;
        if Queue.length c.runq > 0 then begin
          th.tstate <- Runnable;
          Queue.push th c.runq;
          c.current <- None;
          descheduled := true;
          schedule_step rts c ~delay:0
        end
      end
    end
  end;
  if not !descheduled then
    if Cost.is_zero th.pending then continue_fiber rts c th
    else begin_charge rts c th

(* --- garbage collection ------------------------------------------ *)

and request_gc rts =
  rts.gc_phase <- Requested;
  rts.gc_request_ns <- now rts;
  emit rts (Eventlog.Gc_requested { cap = -1 });
  (* Idle capabilities are at a safepoint already and join at once. *)
  Array.iter
    (fun c -> if c.idle && not c.in_barrier then join_barrier rts c)
    rts.caps

and join_barrier rts c =
  if not c.in_barrier then begin
    (match c.current with
    | Some th -> blackhole_update_stack rts th
    | None -> ());
    c.in_barrier <- true;
    c.idle <- false;
    c.barrier_join_ns <- now rts;
    cap_state rts c Trace.Runnable;
    rts.barrier_joined <- rts.barrier_joined + 1;
    if rts.barrier_joined = rts.cfg.ncaps then start_gc rts
  end

and start_gc rts =
  rts.gc_phase <- Collecting;
  let allocated = Array.fold_left (fun a c -> a + c.alloc_in_area) 0 rts.caps in
  Array.iter
    (fun c ->
      rts.barrier_wait <- rts.barrier_wait + (now rts - c.barrier_join_ns);
      cap_state rts c Trace.Gc)
    rts.caps;
  rts.minors <- rts.minors + 1;
  let gc = rts.cfg.gc in
  let is_major = rts.minors mod gc.Gc_model.major_every = 0 in
  emit rts (Eventlog.Gc_started { minors = rts.minors; major = is_major });
  let pause =
    if is_major then begin
      rts.majors <- rts.majors + 1;
      let resident = rts.shared_resident + rts.shared_survivors in
      Gc_model.major_pause_ns gc ~ncaps:rts.cfg.ncaps ~resident
    end
    else Gc_model.minor_pause_ns gc ~ncaps:rts.cfg.ncaps ~allocated
  in
  (* Gen-1 occupancy: fresh survivors join, older survivors mostly die
     (exponential decay), a major collection empties it. *)
  if is_major then rts.shared_survivors <- 0
  else
    rts.shared_survivors <-
      (rts.shared_survivors / 2)
      + int_of_float (gc.Gc_model.survival *. float_of_int allocated *. 0.5);
  rts.global_fill <- 0;
  rts.pause_total <- rts.pause_total + pause;
  if pause > rts.max_pause then rts.max_pause <- pause;
  Engine.after rts.engine pause (fun () -> if not rts.finished then gc_done rts)

and gc_done rts =
  rts.gc_phase <- No_gc;
  rts.barrier_joined <- 0;
  emit rts Eventlog.Gc_finished;
  Array.iter
    (fun c ->
      c.in_barrier <- false;
      c.alloc_in_area <- 0;
      c.alloc_since_check <- 0;
      c.barrier_notice_deadline <- -1;
      (* joining the barrier cleared [idle]; a capability with nothing
         to run is a push target again as soon as the GC is over *)
      c.idle <- c.current = None && Queue.is_empty c.runq)
    rts.caps;
  (* Every capability's scheduler runs right after a collection; in
     push mode this is a prime work-distribution opportunity (and why
     frequent GC partially masks the push-polling delay). *)
  if rts.cfg.load_balance = Config.Push_polling then
    Array.iter
      (fun c ->
        c.last_push_poll <- now rts;
        push_surplus rts c)
      rts.caps;
  Array.iter
    (fun c ->
      match c.current with
      | Some th -> dispatch_current rts c th
      | None -> schedule_step rts c ~delay:0)
    rts.caps

(* Independent per-PE collection (distributed heaps): pause only this
   capability; no barrier, no cross-PE synchronisation. *)
and local_gc rts c =
  c.local_minors <- c.local_minors + 1;
  rts.minors <- rts.minors + 1;
  let gc = rts.cfg.gc in
  let is_major = c.local_minors mod gc.Gc_model.major_every = 0 in
  if is_major then rts.majors <- rts.majors + 1;
  let pause =
    Gc_model.independent_pause_ns gc ~allocated:c.alloc_in_area
      ~resident:c.resident ~is_major
  in
  rts.pause_total <- rts.pause_total + pause;
  if pause > rts.max_pause then rts.max_pause <- pause;
  c.in_local_gc <- true;
  emit rts (Eventlog.Gc_started { minors = rts.minors; major = is_major });
  cap_state rts c Trace.Gc;
  Engine.after rts.engine pause (fun () ->
      c.in_local_gc <- false;
      c.alloc_in_area <- 0;
      c.alloc_since_check <- 0;
      emit rts Eventlog.Gc_finished;
      if not rts.finished then begin
        match c.current with
        | Some th -> dispatch_current rts c th
        | None -> schedule_step rts c ~delay:0
      end)

(* --- sparks and spawning ------------------------------------------ *)

and push_spark rts c s =
  if Ws_deque.size c.pool >= rts.cfg.spark_pool_capacity then begin
    (* GHC's spark pool is a fixed ring buffer: overflowing sparks are
       silently dropped (potential parallelism lost, not an error) *)
    rts.sparks_overflowed <- rts.sparks_overflowed + 1;
    emit rts (Eventlog.Spark_overflowed { cap = c.idx })
  end
  else begin
    Ws_deque.push c.pool s;
    rts.sparks_created <- rts.sparks_created + 1;
    emit rts (Eventlog.Spark_created { cap = c.idx });
    if rts.cfg.load_balance = Config.Work_stealing then wake_stalled rts
  end

and wake_stalled rts =
  Array.iter
    (fun c' ->
      if c'.idle && not c'.in_barrier then
        schedule_step rts c' ~delay:rts.cfg.steal_wake_ns)
    rts.caps

and spawn_raw rts ~cap body =
  let c = rts.caps.(cap) in
  let th = make_thread rts ~cap ~spark_thread:false body in
  Queue.push th c.runq;
  if c.current = None then schedule_step rts c ~delay:0
  else if rts.cfg.steal_threads then
    (* surplus runnable work appeared: let stalled caps pull it *)
    wake_stalled rts;
  th.tid

(* --- messages (distributed mode) ---------------------------------- *)

and send_message rts ~dst ~bytes deliver =
  let tr =
    match rts.cfg.heap_mode with
    | Config.Distributed tr -> tr
    | _ -> invalid_arg "Rts.send_message: not in distributed mode"
  in
  rts.msgs_sent <- rts.msgs_sent + 1;
  rts.msg_bytes <- rts.msg_bytes + bytes;
  emit rts
    (Eventlog.Message_sent
       { src = (match !current_ctx with Some (c, _) -> c.idx | None -> -1);
         dst; bytes });
  let flight = Transport.flight_ns tr bytes + Transport.recv_side_ns tr bytes in
  Engine.after rts.engine flight (fun () ->
      if not rts.finished then begin
        let c = rts.caps.(dst) in
        (* the received graph is allocated in the receiver's heap *)
        c.alloc_in_area <- c.alloc_in_area + bytes;
        emit rts (Eventlog.Message_delivered { dst; bytes });
        deliver ()
      end)

(* ------------------------------------------------------------------ *)
(* Running a program                                                   *)
(* ------------------------------------------------------------------ *)

let diagnostics rts =
  let blocked = ref 0 and runnable = ref 0 in
  Array.iter
    (fun c ->
      runnable := !runnable + Queue.length c.runq;
      blocked := !blocked + c.blocked_threads)
    rts.caps;
  Printf.sprintf
    "deadlock at t=%dns: %d live threads (%d blocked, %d queued), gc=%s, \
     barrier=%d/%d"
    (now rts) rts.live_threads !blocked !runnable
    (match rts.gc_phase with
    | No_gc -> "none"
    | Requested -> "requested"
    | Collecting -> "collecting")
    rts.barrier_joined rts.cfg.ncaps

let report rts : Report.t =
  {
    elapsed_ns = rts.finish_ns;
    gc =
      {
        minors = rts.minors;
        majors = rts.majors;
        pause_total_ns = rts.pause_total;
        barrier_wait_ns = rts.barrier_wait;
        max_pause_ns = rts.max_pause;
      };
    sparks =
      {
        created = rts.sparks_created;
        converted = rts.sparks_converted;
        stolen = rts.sparks_stolen;
        pushed = rts.sparks_pushed;
        fizzled = rts.sparks_fizzled;
        overflowed = rts.sparks_overflowed;
      };
    messages = { sent = rts.msgs_sent; bytes = rts.msg_bytes };
    threads_created = rts.threads_created;
    threads_stolen = rts.threads_stolen;
    dup_work_entries = rts.reg.Node.dup_entries;
    blocked_forces = rts.reg.Node.blocked_forces;
    utilisation = Repro_trace.Trace.utilisation rts.trace;
    trace = rts.trace;
    eventlog = rts.log;
  }

let run (cfg : Config.t) (main : unit -> 'a) : 'a * Report.t =
  (match !installed with
  | Some _ -> failwith "Rts.run: nested simulations are not supported"
  | None -> ());
  let rts = create cfg in
  installed := Some rts;
  Fun.protect
    ~finally:(fun () ->
      installed := None;
      current_ctx := None)
    (fun () ->
      let result = ref None in
      let main_body () =
        let v = main () in
        result := Some v;
        rts.finish_ns <- now rts;
        Repro_trace.Trace.finish rts.trace ~time:rts.finish_ns;
        rts.finished <- true
      in
      ignore (spawn_raw rts ~cap:0 main_body);
      ignore (Engine.run rts.engine);
      (match rts.error with Some e -> raise e | None -> ());
      match !result with
      | None -> raise (Deadlock (diagnostics rts))
      | Some v -> (v, report rts))

(* ------------------------------------------------------------------ *)
(* Api: operations available to simulated thread code                  *)
(* ------------------------------------------------------------------ *)

module Api = struct
  let charge cost = Effect.perform (Charge cost)
  let charge_cycles ?(alloc = 0) cycles = charge (Cost.make cycles ~alloc)

  let charge_ns ns =
    if ns > 0 then charge (Cost.cycles (cycles_of_ns (instance ()) ns))

  let yield () = Effect.perform Yield
  let block register = Effect.perform (Block register)
  let my_cap () = (fst (context ())).idx
  let my_tid () = (snd (context ())).tid
  let now_ns () = now (instance ())
  let ncaps () = (instance ()).cfg.ncaps
  let config () = (instance ()).cfg
  let registry () = (instance ()).reg
  let rng () = (fst (context ())).rng
  let blackholing () = (instance ()).cfg.blackholing

  (* GpH [par]: record a spark in the current capability's pool. *)
  let spark ~still_needed run =
    let rts = instance () in
    charge rts.cfg.spark_cost;
    (match rts.cfg.heap_mode with
    | Config.Semi_distributed { promote_ns_per_byte; _ } ->
        (* Sharing work through the global heap promotes the sparked
           subgraph (Sec. VI-A): charge the promotion and fill the
           global heap. *)
        let bytes = 128 in
        charge_ns (int_of_float (promote_ns_per_byte *. float_of_int bytes));
        rts.global_fill <- rts.global_fill + bytes;
        (match rts.cfg.heap_mode with
        | Config.Semi_distributed { global_area; _ }
          when rts.global_fill >= global_area && rts.gc_phase = No_gc ->
            request_gc rts
        | _ -> ())
    | _ -> ());
    let c, _ = context () in
    push_spark rts c { run; still_needed }

  let spawn ?cap body =
    let rts = instance () in
    charge (Cost.cycles (cycles_of_ns rts rts.cfg.thread_create_ns));
    let cap = match cap with Some c -> c | None -> my_cap () in
    spawn_raw rts ~cap body

  (* Declare live data so the GC and cache models see it. *)
  let set_resident bytes =
    let rts = instance () in
    match rts.cfg.heap_mode with
    | Config.Distributed _ -> (fst (context ())).resident <- bytes
    | _ -> rts.shared_resident <- bytes

  let set_resident_global bytes =
    let rts = instance () in
    rts.shared_resident <- bytes

  let set_resident_of ~cap bytes =
    let rts = instance () in
    rts.caps.(cap).resident <- bytes

  (* Send [bytes] to PE [dst]; the sender pays packing costs, the
     receiver's heap receives the data, then [deliver] runs there. *)
  let send ~dst ~bytes deliver =
    let rts = instance () in
    let tr =
      match rts.cfg.heap_mode with
      | Config.Distributed tr -> tr
      | _ -> invalid_arg "Api.send: not in distributed mode"
    in
    charge_ns (Transport.send_side_ns tr bytes);
    send_message rts ~dst ~bytes deliver

  (* Update-stack manipulation used by the GpH force implementation. *)
  let push_update boxed =
    let _, th = context () in
    th.update_stack <- boxed :: th.update_stack

  let pop_update () =
    let _, th = context () in
    match th.update_stack with
    | [] -> failwith "Api.pop_update: empty update stack"
    | _ :: rest -> th.update_stack <- rest

  let in_context () = !current_ctx <> None
end
