(** The runtime-system simulator: GHC's threaded RTS (shared-heap GpH
    configurations) and the Eden PE runtime (distributed-heap
    configurations), at the level of abstraction the paper analyses.

    Capabilities (= PEs) schedule lightweight threads implemented as
    OCaml 5 effect-handler fibers.  Thread code charges virtual work
    and allocation through {!Api}; safepoint checks happen once per
    4 kB of allocation; GC is stop-the-world behind a barrier (shared
    heap) or per-PE (distributed); load balancing is push-polling or
    lock-free work stealing; sparks are activated by fresh threads or
    dedicated spark threads; messages cost what the configured
    middleware profile says.  All fiber execution happens inside engine
    events, so runs are fully deterministic.

    Typical use:
    {[
      let version = Repro_core.Versions.gph_steal ~ncaps:8 () in
      let value, report = Rts.run version.config (fun () -> my_workload ())
    ]} *)

type t
(** A running simulation instance (one per {!run}). *)

exception Deadlock of string
(** Raised by {!run} when the event queue drains before the main
    thread finishes; the payload is a diagnostic summary. *)

(** [run config main]: execute [main] as the main thread on capability
    0 of a fresh simulated runtime; returns [main]'s result and the run
    report.  Nested runs are rejected. *)
val run : Config.t -> (unit -> 'a) -> 'a * Report.t

(** The currently-running instance (for library code called from
    simulated threads, e.g. the Eden layer).
    @raise Failure outside a simulation. *)
val instance : unit -> t

(** Current virtual time of an instance, ns. *)
val now : t -> int

val config : t -> Config.t
val registry : t -> Repro_heap.Node.registry

(** [spawn_raw rts ~cap body]: create a thread on capability [cap]
    without charging anyone (used by message-delivery handlers that
    run in scheduler context, e.g. Eden process instantiation).
    Returns the thread id. *)
val spawn_raw : t -> cap:int -> (unit -> unit) -> int

(** [send_message rts ~dst ~bytes deliver]: ship a message from
    scheduler context (no sender-side charge — used by protocol
    handlers that react to message arrivals, e.g. GUM's FISH replies).
    @raise Invalid_argument outside distributed mode. *)
val send_message : t -> dst:int -> bytes:int -> (unit -> unit) -> unit

(** Operations available to simulated thread code.  All of these must
    be called from inside a thread of the current {!run}. *)
module Api : sig
  (** Consume virtual work/allocation.  Allocation drives safepoint
      checks (GC requests, timeslice, lazy black-holing). *)
  val charge : Repro_util.Cost.t -> unit

  val charge_cycles : ?alloc:int -> int -> unit

  (** Charge pure work expressed as nanoseconds at the machine's
      clock rate. *)
  val charge_ns : int -> unit

  (** Voluntarily yield the capability (round-robin). *)
  val yield : unit -> unit

  (** [block register]: deschedule this thread; [register wake] is
      called once with the callback that makes it runnable again. *)
  val block : ((unit -> unit) -> unit) -> unit

  val my_cap : unit -> int
  val my_tid : unit -> int
  val now_ns : unit -> int
  val ncaps : unit -> int
  val config : unit -> Config.t
  val registry : unit -> Repro_heap.Node.registry

  (** Per-capability deterministic RNG stream. *)
  val rng : unit -> Repro_util.Rng.t

  val blackholing : unit -> Config.blackholing

  (** GpH [par]: record a spark in the current capability's pool.
      [still_needed] lets the activation fizzle if the sparked value
      was meanwhile evaluated. *)
  val spark : still_needed:(unit -> bool) -> (unit -> unit) -> unit

  (** Create a lightweight thread (on the current capability by
      default), charging creation cost to the caller. *)
  val spawn : ?cap:int -> (unit -> unit) -> int

  (** Declare live data so the GC and cache models see it (per-PE in
      distributed mode, global otherwise). *)
  val set_resident : int -> unit

  val set_resident_global : int -> unit
  val set_resident_of : cap:int -> int -> unit

  (** Send [bytes] to PE [dst] (distributed mode): the caller pays
      packing, the receiver's heap receives the data, then [deliver]
      runs there.
      @raise Invalid_argument outside distributed mode. *)
  val send : dst:int -> bytes:int -> (unit -> unit) -> unit

  (** Update-stack bookkeeping used by {!Repro_core.Gph.force} for
      retroactive lazy black-holing. *)
  val push_update : Repro_heap.Node.boxed -> unit

  val pop_update : unit -> unit

  (** Is the caller inside a simulated thread? *)
  val in_context : unit -> bool
end
