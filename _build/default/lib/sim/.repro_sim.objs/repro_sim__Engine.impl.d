lib/sim/engine.ml: Printf Repro_util
