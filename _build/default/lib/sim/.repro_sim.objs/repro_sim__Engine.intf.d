lib/sim/engine.mli:
