(** Discrete-event simulation engine.

    A single global virtual clock (integer nanoseconds) and a priority
    queue of pending events.  Events scheduled for the same instant fire
    in scheduling order (the priority queue is stable), which makes every
    simulation deterministic.

    The runtime-system simulator ({!Repro_parrts}) drives everything
    through this engine: capability scheduling slices, GC barriers,
    message deliveries and timers are all events. *)

type t = {
  mutable now : int;  (** current virtual time, ns *)
  events : (unit -> unit) Repro_util.Prio_queue.t;
  mutable running : bool;
  mutable dispatched : int;
  mutable horizon : int;  (** safety stop, ns *)
}

exception Horizon_exceeded of int

let default_horizon = 3_600_000_000_000 (* one virtual hour *)

let create ?(horizon = default_horizon) () =
  {
    now = 0;
    events = Repro_util.Prio_queue.create ();
    running = false;
    dispatched = 0;
    horizon;
  }

let now t = t.now
let pending t = Repro_util.Prio_queue.length t.events
let dispatched t = t.dispatched

let at t time f =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.at: time %d is in the past (now=%d)" time t.now);
  Repro_util.Prio_queue.add t.events time f

let after t delay f =
  if delay < 0 then invalid_arg "Engine.after: negative delay";
  at t (t.now + delay) f

let stop t = t.running <- false

(* Run until the event queue drains (or [until] / the horizon is hit).
   Returns the final virtual time. *)
let run ?until t =
  t.running <- true;
  let limit = match until with None -> max_int | Some u -> u in
  let rec loop () =
    if not t.running then ()
    else
      match Repro_util.Prio_queue.pop_opt t.events with
      | None -> ()
      | Some (time, f) ->
          if time > limit then begin
            (* Put it back for a later [run] call and stop here. *)
            Repro_util.Prio_queue.add t.events time f;
            t.now <- limit
          end
          else begin
            if time > t.horizon then raise (Horizon_exceeded time);
            t.now <- max t.now time;
            t.dispatched <- t.dispatched + 1;
            f ();
            loop ()
          end
  in
  loop ();
  t.running <- false;
  t.now
