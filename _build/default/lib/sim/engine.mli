(** Discrete-event simulation engine: a single virtual clock (integer
    nanoseconds) and a stable priority queue of pending events.  Events
    scheduled for the same instant fire in scheduling order, so every
    simulation is deterministic. *)

type t

exception Horizon_exceeded of int

(** [create ?horizon ()]: a fresh engine at time 0.  [horizon] is a
    runaway-simulation safety stop (default: one virtual hour). *)
val create : ?horizon:int -> unit -> t

(** Current virtual time (ns). *)
val now : t -> int

(** Number of events still queued. *)
val pending : t -> int

(** Total events dispatched so far. *)
val dispatched : t -> int

(** [at t time f]: schedule [f] at the absolute virtual [time].
    @raise Invalid_argument if [time] is in the past. *)
val at : t -> int -> (unit -> unit) -> unit

(** [after t delay f]: schedule [f] [delay] ns from now.
    @raise Invalid_argument on negative delays. *)
val after : t -> int -> (unit -> unit) -> unit

(** Stop the current {!run} after the event in progress. *)
val stop : t -> unit

(** Run until the queue drains (or [until] / the horizon is reached);
    returns the final virtual time.  A run stopped by [until] can be
    resumed by calling [run] again.
    @raise Horizon_exceeded if an event lies beyond the horizon. *)
val run : ?until:int -> t -> int
