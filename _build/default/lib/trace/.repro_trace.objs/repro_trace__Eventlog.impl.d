lib/trace/eventlog.ml: Array Buffer Format Hashtbl List Option Repro_util
