lib/trace/eventlog.mli: Format Repro_util
