lib/trace/render.ml: Array Buffer Bytes Float Hashtbl List Printf Trace
