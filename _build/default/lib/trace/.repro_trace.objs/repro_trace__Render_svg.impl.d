lib/trace/render_svg.ml: Array Buffer List Printf String Trace
