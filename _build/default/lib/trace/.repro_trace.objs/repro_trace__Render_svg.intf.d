lib/trace/render_svg.mli: Trace
