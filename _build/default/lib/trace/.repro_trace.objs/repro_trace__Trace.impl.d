lib/trace/trace.ml: Array Hashtbl List
