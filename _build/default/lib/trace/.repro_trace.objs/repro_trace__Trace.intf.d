lib/trace/trace.mli: Hashtbl
