(** Structured runtime event log (GHC-eventlog style).

    The paper stresses the importance of adequate parallel-profiling
    tools and uses a custom instrumentation of the threaded RTS fed
    into EdenTV (Sec. I, footnote 1).  Beyond the state timelines of
    {!Trace}, this log records discrete runtime events — thread
    lifecycle, spark lifecycle, GC phases, messages — with timestamps,
    and derives the summary statistics used when analysing runs:
    spark-activation latency, thread lifetimes, GC gap distribution,
    per-PE message counts. *)

type event =
  | Thread_created of { tid : int; cap : int }
  | Thread_finished of { tid : int; cap : int }
  | Thread_blocked of { tid : int; cap : int }
  | Thread_woken of { tid : int; cap : int }
  | Thread_migrated of { tid : int; from_cap : int; to_cap : int }
  | Spark_created of { cap : int }
  | Spark_converted of { cap : int }
  | Spark_stolen of { thief : int }
  | Spark_fizzled of { cap : int }
  | Spark_overflowed of { cap : int }
  | Gc_requested of { cap : int }
  | Gc_started of { minors : int; major : bool }
  | Gc_finished
  | Message_sent of { src : int; dst : int; bytes : int }
  | Message_delivered of { dst : int; bytes : int }
  | Blackhole_entered of { cap : int }
  | Custom of string

let event_name = function
  | Thread_created _ -> "thread-created"
  | Thread_finished _ -> "thread-finished"
  | Thread_blocked _ -> "thread-blocked"
  | Thread_woken _ -> "thread-woken"
  | Thread_migrated _ -> "thread-migrated"
  | Spark_created _ -> "spark-created"
  | Spark_converted _ -> "spark-converted"
  | Spark_stolen _ -> "spark-stolen"
  | Spark_fizzled _ -> "spark-fizzled"
  | Spark_overflowed _ -> "spark-overflowed"
  | Gc_requested _ -> "gc-requested"
  | Gc_started _ -> "gc-started"
  | Gc_finished -> "gc-finished"
  | Message_sent _ -> "message-sent"
  | Message_delivered _ -> "message-delivered"
  | Blackhole_entered _ -> "blackhole-entered"
  | Custom _ -> "custom"

type t = {
  mutable events : (int * event) list;  (** reversed *)
  mutable enabled : bool;
  mutable count : int;
}

let create () = { events = []; enabled = true; count = 0 }
let disable t = t.enabled <- false

let emit t ~time ev =
  if t.enabled then begin
    t.events <- (time, ev) :: t.events;
    t.count <- t.count + 1
  end

let length t = t.count
let events t = List.rev t.events

let pp_event ppf = function
  | Thread_created { tid; cap } -> Format.fprintf ppf "thread %d created on cap %d" tid cap
  | Thread_finished { tid; cap } -> Format.fprintf ppf "thread %d finished on cap %d" tid cap
  | Thread_blocked { tid; cap } -> Format.fprintf ppf "thread %d blocked on cap %d" tid cap
  | Thread_woken { tid; cap } -> Format.fprintf ppf "thread %d woken (cap %d)" tid cap
  | Thread_migrated { tid; from_cap; to_cap } ->
      Format.fprintf ppf "thread %d migrated %d -> %d" tid from_cap to_cap
  | Spark_created { cap } -> Format.fprintf ppf "spark created on cap %d" cap
  | Spark_converted { cap } -> Format.fprintf ppf "spark converted on cap %d" cap
  | Spark_stolen { thief } -> Format.fprintf ppf "spark stolen by cap %d" thief
  | Spark_fizzled { cap } -> Format.fprintf ppf "spark fizzled on cap %d" cap
  | Spark_overflowed { cap } -> Format.fprintf ppf "spark overflowed on cap %d" cap
  | Gc_requested { cap } -> Format.fprintf ppf "gc requested by cap %d" cap
  | Gc_started { minors; major } ->
      Format.fprintf ppf "gc %d started (%s)" minors (if major then "major" else "minor")
  | Gc_finished -> Format.fprintf ppf "gc finished"
  | Message_sent { src; dst; bytes } ->
      Format.fprintf ppf "message %d -> %d (%d bytes)" src dst bytes
  | Message_delivered { dst; bytes } ->
      Format.fprintf ppf "message delivered at %d (%d bytes)" dst bytes
  | Blackhole_entered { cap } -> Format.fprintf ppf "black hole entered on cap %d" cap
  | Custom s -> Format.pp_print_string ppf s

(** Text dump, one event per line. *)
let dump t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (time, ev) ->
      Buffer.add_string buf
        (Format.asprintf "%12d ns  %a\n" time pp_event ev))
    (events t);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Derived statistics                                                  *)
(* ------------------------------------------------------------------ *)

type summary = {
  counts : (string * int) list;  (** events per kind *)
  gc_gaps_ns : Repro_util.Stats.t;  (** mutator time between GCs *)
  gc_pauses_ns : Repro_util.Stats.t;
  thread_lifetimes_ns : Repro_util.Stats.t;
  messages_per_pe : (int * int) array option;  (** (sent, received) *)
}

let summarise ?ncaps t =
  let counts = Hashtbl.create 16 in
  let bump k = Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)) in
  let gc_gaps = Repro_util.Stats.create () in
  let gc_pauses = Repro_util.Stats.create () in
  let lifetimes = Repro_util.Stats.create () in
  let born : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let last_gc_end = ref None and gc_start = ref None in
  let per_pe =
    match ncaps with Some n -> Some (Array.make n (0, 0)) | None -> None
  in
  List.iter
    (fun (time, ev) ->
      bump (event_name ev);
      match ev with
      | Thread_created { tid; _ } -> Hashtbl.replace born tid time
      | Thread_finished { tid; _ } -> (
          match Hashtbl.find_opt born tid with
          | Some t0 -> Repro_util.Stats.add lifetimes (float_of_int (time - t0))
          | None -> ())
      | Gc_started _ ->
          gc_start := Some time;
          (match !last_gc_end with
          | Some t0 -> Repro_util.Stats.add gc_gaps (float_of_int (time - t0))
          | None -> ())
      | Gc_finished ->
          last_gc_end := Some time;
          (match !gc_start with
          | Some t0 -> Repro_util.Stats.add gc_pauses (float_of_int (time - t0))
          | None -> ())
      | Message_sent { src; dst; _ } -> (
          (* [src] can be -1 for protocol replies sent from scheduler
             context (no thread attribution) *)
          match per_pe with
          | Some arr when src >= 0 && src < Array.length arr && dst >= 0
                          && dst < Array.length arr ->
              let s, r = arr.(src) in
              arr.(src) <- (s + 1, r)
          | _ -> ())
      | Message_delivered { dst; _ } -> (
          match per_pe with
          | Some arr when dst >= 0 && dst < Array.length arr ->
              let s, r = arr.(dst) in
              arr.(dst) <- (s, r + 1)
          | _ -> ())
      | _ -> ())
    (events t);
  {
    counts =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []);
    gc_gaps_ns = gc_gaps;
    gc_pauses_ns = gc_pauses;
    thread_lifetimes_ns = lifetimes;
    messages_per_pe = per_pe;
  }

let pp_summary ppf (s : summary) =
  Format.fprintf ppf "@[<v>event counts:@,";
  List.iter (fun (k, v) -> Format.fprintf ppf "  %-20s %d@," k v) s.counts;
  Format.fprintf ppf "gc gaps:    %a@," Repro_util.Stats.pp s.gc_gaps_ns;
  Format.fprintf ppf "gc pauses:  %a@," Repro_util.Stats.pp s.gc_pauses_ns;
  Format.fprintf ppf "thread lifetimes: %a@]" Repro_util.Stats.pp
    s.thread_lifetimes_ns
