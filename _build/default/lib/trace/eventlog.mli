(** Structured runtime event log (GHC-eventlog style) — the
    profiling-tool side of the paper's contribution: discrete runtime
    events with timestamps plus derived summary statistics. *)

type event =
  | Thread_created of { tid : int; cap : int }
  | Thread_finished of { tid : int; cap : int }
  | Thread_blocked of { tid : int; cap : int }
  | Thread_woken of { tid : int; cap : int }
  | Thread_migrated of { tid : int; from_cap : int; to_cap : int }
  | Spark_created of { cap : int }
  | Spark_converted of { cap : int }
  | Spark_stolen of { thief : int }
  | Spark_fizzled of { cap : int }
  | Spark_overflowed of { cap : int }
  | Gc_requested of { cap : int }
  | Gc_started of { minors : int; major : bool }
  | Gc_finished
  | Message_sent of { src : int; dst : int; bytes : int }
  | Message_delivered of { dst : int; bytes : int }
  | Blackhole_entered of { cap : int }
  | Custom of string

val event_name : event -> string

type t

val create : unit -> t

(** Stop recording (events are dropped). *)
val disable : t -> unit

val emit : t -> time:int -> event -> unit
val length : t -> int

(** Events in emission order, with timestamps. *)
val events : t -> (int * event) list

val pp_event : Format.formatter -> event -> unit

(** Text dump, one event per line. *)
val dump : t -> string

(** Derived statistics. *)
type summary = {
  counts : (string * int) list;  (** events per kind *)
  gc_gaps_ns : Repro_util.Stats.t;  (** mutator time between GCs *)
  gc_pauses_ns : Repro_util.Stats.t;
  thread_lifetimes_ns : Repro_util.Stats.t;
  messages_per_pe : (int * int) array option;
      (** per-PE (sent, received); present when [ncaps] was given *)
}

val summarise : ?ncaps:int -> t -> summary
val pp_summary : Format.formatter -> summary -> unit
