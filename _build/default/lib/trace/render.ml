(** Renderers for traces: ASCII timelines (EdenTV-style) and CSV.

    The ASCII timeline shows one row per capability; time flows left to
    right.  Each column covers [end_time / width] of virtual time and is
    drawn with the character of the state that dominated that bucket:
    ['#'] running, ['-'] runnable/waiting, ['!'] blocked, ['.'] idle,
    ['G'] in GC.  This is the textual analogue of the paper's Figs. 2
    and 4. *)

let legend =
  "legend: '#' running  '-' runnable/sync  '!' blocked  '.' idle  'G' gc"

(* For each capability row, pick per bucket the state with the largest
   time share inside that bucket. *)
let timeline_rows ?(width = 100) t =
  let end_time = max 1 (Trace.end_time t) in
  let segs = Trace.segments t in
  let bucket_ns = float_of_int end_time /. float_of_int width in
  Array.map
    (fun capsegs ->
      let buf = Bytes.make width '.' in
      for b = 0 to width - 1 do
        let b0 = float_of_int b *. bucket_ns in
        let b1 = b0 +. bucket_ns in
        (* accumulate time per state within [b0,b1) *)
        let acc = Hashtbl.create 8 in
        List.iter
          (fun (t0, t1, st) ->
            let lo = Float.max b0 (float_of_int t0)
            and hi = Float.min b1 (float_of_int t1) in
            if hi > lo then begin
              let cur = try Hashtbl.find acc st with Not_found -> 0.0 in
              Hashtbl.replace acc st (cur +. (hi -. lo))
            end)
          capsegs;
        let best = ref None in
        Hashtbl.iter
          (fun st time ->
            match !best with
            | None -> best := Some (st, time)
            | Some (_, best_t) -> if time > best_t then best := Some (st, time))
          acc;
        match !best with
        | Some (st, _) -> Bytes.set buf b (Trace.state_char st)
        | None -> ()
      done;
      Bytes.to_string buf)
    segs

let timeline ?(width = 100) ?title t =
  let rows = timeline_rows ~width t in
  let buf = Buffer.create 1024 in
  (match title with
  | Some s -> Buffer.add_string buf (s ^ "\n")
  | None -> ());
  let total_ms = float_of_int (Trace.end_time t) /. 1e6 in
  Buffer.add_string buf
    (Printf.sprintf "total: %.2f ms virtual, utilisation %.1f%%\n" total_ms
       (100.0 *. Trace.utilisation t));
  Array.iteri
    (fun cap row -> Buffer.add_string buf (Printf.sprintf "cap%2d |%s|\n" cap row))
    rows;
  Buffer.add_string buf (legend ^ "\n");
  Buffer.contents buf

(* Machine-readable transitions, one per line: time_ns,cap,state *)
let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "time_ns,cap,state\n";
  List.iter
    (function
      | Trace.Transition { time; cap; state } ->
          Buffer.add_string buf
            (Printf.sprintf "%d,%d,%s\n" time cap (Trace.state_name state))
      | Trace.Marker { time; cap; label } ->
          Buffer.add_string buf (Printf.sprintf "%d,%d,marker:%s\n" time cap label))
    (Trace.entries t);
  Buffer.contents buf

let summary t =
  let buf = Buffer.create 256 in
  let times = Trace.state_times t in
  let end_time = max 1 (Trace.end_time t) in
  Buffer.add_string buf
    (Printf.sprintf "end=%.3f ms  utilisation=%.1f%%\n"
       (float_of_int (Trace.end_time t) /. 1e6)
       (100.0 *. Trace.utilisation t));
  Array.iteri
    (fun cap h ->
      let pct st =
        100.0
        *. float_of_int (try Hashtbl.find h st with Not_found -> 0)
        /. float_of_int end_time
      in
      Buffer.add_string buf
        (Printf.sprintf
           "cap%2d: run %5.1f%%  runnable %5.1f%%  blocked %5.1f%%  idle %5.1f%%  gc %5.1f%%\n"
           cap (pct Trace.Running) (pct Trace.Runnable) (pct Trace.Blocked)
           (pct Trace.Idle) (pct Trace.Gc)))
    times;
  (match Trace.counters t with
  | [] -> ()
  | cs ->
      Buffer.add_string buf "counters:";
      List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %s=%d" k v)) cs;
      Buffer.add_char buf '\n');
  Buffer.contents buf
