(** Text renderers for traces: ASCII timelines (the textual analogue of
    the paper's Figs. 2 and 4) and CSV export. *)

val legend : string

(** One string per capability; each column is the dominant state of
    that time bucket, drawn with {!Trace.state_char}. *)
val timeline_rows : ?width:int -> Trace.t -> string array

(** Complete ASCII timeline with header, rows and legend. *)
val timeline : ?width:int -> ?title:string -> Trace.t -> string

(** Machine-readable transitions: [time_ns,cap,state] lines. *)
val to_csv : Trace.t -> string

(** Per-capability state-time percentages plus counters. *)
val summary : Trace.t -> string
