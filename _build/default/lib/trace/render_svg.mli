(** SVG renderer for traces: per-capability activity bars over time in
    the EdenTV colour scheme (green running, yellow runnable, red
    blocked, blue-grey idle, purple GC). *)

(** Fill colour for a state. *)
val colour : Trace.state -> string

(** Render a self-contained SVG document.  [width] is the time-axis
    width in pixels, [row_height] the bar height per capability. *)
val render : ?width:int -> ?row_height:int -> ?title:string -> Trace.t -> string

(** Render straight to a file. *)
val to_file :
  ?width:int -> ?row_height:int -> ?title:string -> Trace.t -> string -> unit
