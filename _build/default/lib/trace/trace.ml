(** EdenTV-style execution tracing.

    The paper (Sec. V, Figs. 2 and 4) analyses per-capability activity
    timelines produced by an instrumented GHC runtime and rendered with
    the EdenTV visualisation tool.  Each capability is, at any virtual
    instant, in one of the states below (the paper's colour legend):

    - {b Running} (green): executing Haskell computation;
    - {b Runnable} (yellow): has runnable work but is waiting for system
      work or synchronisation (e.g. waiting at the GC barrier);
    - {b Blocked} (red): all of the capability's threads are blocked;
    - {b Idle} (blue): no work at all;
    - {b Gc}: inside the collector (we separate this out of Runnable so
      that barrier time and collection time can be distinguished).

    A recorder collects state transitions, counters and point markers;
    renderers turn them into ASCII timelines and CSV. *)

type state = Running | Runnable | Blocked | Idle | Gc

let state_char = function
  | Running -> '#'
  | Runnable -> '-'
  | Blocked -> '!'
  | Idle -> '.'
  | Gc -> 'G'

let state_name = function
  | Running -> "running"
  | Runnable -> "runnable"
  | Blocked -> "blocked"
  | Idle -> "idle"
  | Gc -> "gc"

let all_states = [ Running; Runnable; Blocked; Idle; Gc ]

type entry =
  | Transition of { time : int; cap : int; state : state }
  | Marker of { time : int; cap : int; label : string }

type t = {
  caps : int;
  mutable entries : entry list; (* reversed *)
  counters : (string, int) Hashtbl.t;
  current : state array;
  mutable enabled : bool;
  mutable end_time : int;
}

let create ~caps =
  if caps <= 0 then invalid_arg "Trace.create: caps must be positive";
  {
    caps;
    entries = [];
    counters = Hashtbl.create 32;
    current = Array.make caps Idle;
    enabled = true;
    end_time = 0;
  }

let disable t = t.enabled <- false
let caps t = t.caps

let set_state t ~time ~cap state =
  if cap < 0 || cap >= t.caps then invalid_arg "Trace.set_state: bad cap";
  t.end_time <- max t.end_time time;
  if t.current.(cap) <> state then begin
    t.current.(cap) <- state;
    if t.enabled then
      t.entries <- Transition { time; cap; state } :: t.entries
  end

let marker t ~time ~cap label =
  t.end_time <- max t.end_time time;
  if t.enabled then t.entries <- Marker { time; cap; label } :: t.entries

let state_of t cap = t.current.(cap)

let incr ?(by = 1) t name =
  let v = try Hashtbl.find t.counters name with Not_found -> 0 in
  Hashtbl.replace t.counters name (v + by)

let counter t name = try Hashtbl.find t.counters name with Not_found -> 0

let counters t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counters []
  |> List.sort compare

let finish t ~time = t.end_time <- max t.end_time time
let end_time t = t.end_time
let entries t = List.rev t.entries

(** Per-capability segments [(t0, t1, state)], in time order. *)
let segments t =
  let segs = Array.make t.caps [] in
  let last_time = Array.make t.caps 0 in
  let last_state = Array.make t.caps Idle in
  List.iter
    (function
      | Transition { time; cap; state } ->
          if time > last_time.(cap) then
            segs.(cap) <- (last_time.(cap), time, last_state.(cap)) :: segs.(cap);
          last_time.(cap) <- time;
          last_state.(cap) <- state
      | Marker _ -> ())
    (entries t);
  Array.iteri
    (fun cap _ ->
      if t.end_time > last_time.(cap) then
        segs.(cap) <- (last_time.(cap), t.end_time, last_state.(cap)) :: segs.(cap))
    segs;
  Array.map List.rev segs

(** Total virtual time each capability spent in each state. *)
let state_times t =
  let totals = Array.init t.caps (fun _ -> Hashtbl.create 8) in
  Array.iteri
    (fun cap segs ->
      List.iter
        (fun (t0, t1, st) ->
          let h = totals.(cap) in
          let cur = try Hashtbl.find h st with Not_found -> 0 in
          Hashtbl.replace h st (cur + (t1 - t0)))
        segs)
    (segments t);
  totals

(** Fraction of total capability-time spent Running. *)
let utilisation t =
  if t.end_time = 0 then 0.0
  else begin
    let times = state_times t in
    let running =
      Array.fold_left
        (fun acc h -> acc + (try Hashtbl.find h Running with Not_found -> 0))
        0 times
    in
    float_of_int running /. float_of_int (t.end_time * t.caps)
  end

(** Fraction of time spent in [state] across all capabilities. *)
let state_fraction t state =
  if t.end_time = 0 then 0.0
  else begin
    let times = state_times t in
    let total =
      Array.fold_left
        (fun acc h -> acc + (try Hashtbl.find h state with Not_found -> 0))
        0 times
    in
    float_of_int total /. float_of_int (t.end_time * t.caps)
  end
