(** EdenTV-style execution tracing (the paper's Figs. 2 and 4).

    Each capability is, at any virtual instant, in one of the states of
    the paper's colour legend; a recorder collects state transitions,
    counters and point markers, and the {!Render}/{!Render_svg} modules
    turn them into timelines. *)

type state =
  | Running  (** executing computation (green) *)
  | Runnable  (** waiting for system work or synchronisation (yellow) *)
  | Blocked  (** all threads blocked (red) *)
  | Idle  (** nothing to do (blue) *)
  | Gc  (** inside the collector *)

val state_char : state -> char
val state_name : state -> string
val all_states : state list

type entry =
  | Transition of { time : int; cap : int; state : state }
  | Marker of { time : int; cap : int; label : string }

type t

(** @raise Invalid_argument if [caps <= 0]. *)
val create : caps:int -> t

(** Stop recording entries (state is still tracked; rendering will be
    empty).  Used for long parameter sweeps. *)
val disable : t -> unit

val caps : t -> int

(** Record a state transition (deduplicated if the state is
    unchanged). *)
val set_state : t -> time:int -> cap:int -> state -> unit

val marker : t -> time:int -> cap:int -> string -> unit
val state_of : t -> int -> state
val incr : ?by:int -> t -> string -> unit
val counter : t -> string -> int
val counters : t -> (string * int) list

(** Extend the recorded end time. *)
val finish : t -> time:int -> unit

val end_time : t -> int
val entries : t -> entry list

(** Per-capability segments [(t0, t1, state)], in time order, covering
    [0 .. end_time]. *)
val segments : t -> (int * int * state) list array

(** Total virtual time each capability spent in each state. *)
val state_times : t -> (state, int) Hashtbl.t array

(** Fraction of total capability-time spent [Running]. *)
val utilisation : t -> float

(** Fraction of total capability-time spent in [state]. *)
val state_fraction : t -> state -> float
