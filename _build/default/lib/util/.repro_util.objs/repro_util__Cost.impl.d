lib/util/cost.ml: Float Format
