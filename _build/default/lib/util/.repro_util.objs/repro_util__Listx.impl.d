lib/util/listx.ml: Array Hashtbl List
