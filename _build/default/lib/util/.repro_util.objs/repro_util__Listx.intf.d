lib/util/listx.mli:
