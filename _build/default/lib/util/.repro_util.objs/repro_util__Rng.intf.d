lib/util/rng.mli:
