lib/util/tablefmt.ml: Buffer List String
