lib/util/tablefmt.mli:
