(** Abstract work/allocation costs charged by simulated computations.

    A [t] describes how much a piece of (simulated) Haskell computation
    costs: how many processor cycles of mutator work it performs and how
    many bytes it allocates in the heap.  Costs are the currency in which
    workloads talk to the runtime-system simulator: real OCaml values are
    computed, but virtual time advances according to the attached cost.

    Cycles are converted to virtual nanoseconds by the machine model
    (see {!Repro_machine.Machine}). *)

type t = {
  cycles : int;  (** mutator work, in processor cycles *)
  alloc : int;  (** heap allocation, in bytes *)
}

let zero = { cycles = 0; alloc = 0 }

let make ?(alloc = 0) cycles =
  if cycles < 0 then invalid_arg "Cost.make: negative cycles";
  if alloc < 0 then invalid_arg "Cost.make: negative alloc";
  { cycles; alloc }

let cycles c = make c
let alloc a = make 0 ~alloc:a
let add a b = { cycles = a.cycles + b.cycles; alloc = a.alloc + b.alloc }
let ( + ) = add

let scale k c =
  if k < 0 then invalid_arg "Cost.scale: negative factor";
  { cycles = k * c.cycles; alloc = k * c.alloc }

(* Scale by a float factor, rounding to nearest.  Used by the memory
   penalty model. *)
let scale_f k c =
  if k < 0.0 then invalid_arg "Cost.scale_f: negative factor";
  {
    cycles = int_of_float (Float.round (k *. float_of_int c.cycles));
    alloc = c.alloc;
  }

let is_zero c = c.cycles = 0 && c.alloc = 0
let equal a b = a.cycles = b.cycles && a.alloc = b.alloc

let pp ppf c =
  Format.fprintf ppf "@[<h>%d cycles, %d bytes@]" c.cycles c.alloc

let to_string c = Format.asprintf "%a" pp c
