(** Abstract work/allocation costs charged by simulated computations.

    A {!t} describes how much a piece of (simulated) Haskell
    computation costs: processor cycles of mutator work plus bytes of
    heap allocation.  Costs are the currency in which workloads talk to
    the runtime-system simulator — real OCaml values are computed, but
    virtual time advances according to the attached cost.  Cycles are
    converted to virtual nanoseconds by the machine model. *)

type t = {
  cycles : int;  (** mutator work, in processor cycles *)
  alloc : int;  (** heap allocation, in bytes *)
}

val zero : t

(** [make ?alloc cycles] builds a cost.
    @raise Invalid_argument on negative components. *)
val make : ?alloc:int -> int -> t

(** [cycles c] is [make c]. *)
val cycles : int -> t

(** [alloc b] is allocation-only cost. *)
val alloc : int -> t

val add : t -> t -> t
val ( + ) : t -> t -> t

(** [scale k c] multiplies both components by the non-negative [k]. *)
val scale : int -> t -> t

(** [scale_f k c] scales the {e cycles} by the float factor [k]
    (allocation is left untouched); used by penalty models. *)
val scale_f : float -> t -> t

val is_zero : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
