(** List helpers shared by skeletons and workloads. *)

(** [chunk ~size xs]: contiguous pieces of at most [size] elements. *)
let chunk ~size xs =
  if size <= 0 then invalid_arg "Listx.chunk: size must be positive";
  let rec take k l acc =
    if k = 0 then (List.rev acc, l)
    else match l with [] -> (List.rev acc, []) | x :: tl -> take (k - 1) tl (x :: acc)
  in
  let rec go rest acc =
    match rest with
    | [] -> List.rev acc
    | _ ->
        let piece, rest' = take size rest [] in
        go rest' (piece :: acc)
  in
  go xs []

(** [split_into_n n xs]: [n] contiguous pieces of near-equal length
    (Eden's [splitIntoN]).  Produces exactly [n] pieces; trailing pieces
    may be empty when [length xs < n]. *)
let split_into_n n xs =
  if n <= 0 then invalid_arg "Listx.split_into_n: n must be positive";
  let len = List.length xs in
  let base = len / n and extra = len mod n in
  let rec take k l acc =
    if k = 0 then (List.rev acc, l)
    else match l with [] -> (List.rev acc, []) | x :: tl -> take (k - 1) tl (x :: acc)
  in
  let rec go i rest acc =
    if i = n then List.rev acc
    else
      let sz = base + if i < extra then 1 else 0 in
      let piece, rest' = take sz rest [] in
      go (i + 1) rest' (piece :: acc)
  in
  go 0 xs []

(** [unshuffle n xs]: [n] pieces by round-robin dealing (Eden's
    [unshuffle]); inverse of {!shuffle}. *)
let unshuffle n xs =
  if n <= 0 then invalid_arg "Listx.unshuffle: n must be positive";
  let buckets = Array.make n [] in
  List.iteri (fun i x -> buckets.(i mod n) <- x :: buckets.(i mod n)) xs;
  Array.to_list (Array.map List.rev buckets)

(** [shuffle pieces]: interleave round-robin-dealt pieces back into one
    list; inverse of {!unshuffle}. *)
let shuffle pieces =
  let arrs = List.map Array.of_list pieces in
  let maxlen = List.fold_left (fun m a -> max m (Array.length a)) 0 arrs in
  let out = ref [] in
  for i = maxlen - 1 downto 0 do
    List.iter (fun a -> if i < Array.length a then out := a.(i) :: !out) (List.rev arrs)
  done;
  !out

let transpose rows =
  let rec go rows =
    if List.for_all (( = ) []) rows then []
    else
      let heads = List.filter_map (function [] -> None | x :: _ -> Some x) rows in
      let tails = List.map (function [] -> [] | _ :: t -> t) rows in
      heads :: go tails
  in
  go rows

(** Group an association list by key, preserving first-seen key order
    and per-key value order. *)
let group_by_key pairs =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt tbl k with
      | None ->
          Hashtbl.add tbl k (ref [ v ]);
          order := k :: !order
      | Some r -> r := v :: !r)
    pairs;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order

let sum_int = List.fold_left ( + ) 0
let sum_float = List.fold_left ( +. ) 0.0
