(** List helpers shared by skeletons and workloads. *)

(** Contiguous pieces of at most [size] elements.
    @raise Invalid_argument if [size <= 0]. *)
val chunk : size:int -> 'a list -> 'a list list

(** [split_into_n n xs]: exactly [n] contiguous near-equal pieces
    (Eden's [splitIntoN]); trailing pieces may be empty. *)
val split_into_n : int -> 'a list -> 'a list list

(** [unshuffle n xs]: [n] pieces by round-robin dealing (Eden's
    [unshuffle]); inverse of {!shuffle}. *)
val unshuffle : int -> 'a list -> 'a list list

(** Interleave round-robin-dealt pieces back into one list. *)
val shuffle : 'a list list -> 'a list

val transpose : 'a list list -> 'a list list

(** Group an association list by key, preserving first-seen key order
    and per-key value order. *)
val group_by_key : ('k * 'v) list -> ('k * 'v list) list

val sum_int : int list -> int
val sum_float : float list -> float
