(** SplitMix64 deterministic pseudo-random number generator.

    Every source of randomness in the simulator (steal victim selection,
    workload generation, jitter) draws from an explicitly-seeded [t], so
    any experiment is exactly reproducible from its seed.  SplitMix64 is
    the standard splittable generator (Steele, Lea & Flood, OOPSLA'14);
    it passes BigCrush and supports cheap splitting for per-entity
    streams. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Derive an independent generator; the two streams do not overlap in
   practice (distinct gamma-advanced states). *)
let split t =
  let seed = next_int64 t in
  { state = Int64.mul seed 0xDA942042E4DD58B5L }

(* Non-negative 62-bit int. *)
let next_int t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = next_int t in
    let v = r mod bound in
    if r - v > (max_int - bound) + 1 then go () else v
  in
  go ()

(* Uniform float in [0, 1). *)
let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Uniform int in [lo, hi] inclusive. *)
let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range: empty range";
  lo + int t (hi - lo + 1)

(* Exponentially distributed with the given mean (for message jitter). *)
let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  -.mean *. log (1.0 -. float t)

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
