(** SplitMix64 deterministic pseudo-random number generator (Steele,
    Lea & Flood, OOPSLA'14).  Every source of randomness in the
    simulator draws from an explicitly-seeded [t], so experiments are
    exactly reproducible from their seeds. *)

type t

val create : int -> t
val copy : t -> t

(** Derive an independent generator (splittable stream). *)
val split : t -> t

val next_int64 : t -> int64

(** Non-negative 62-bit integer. *)
val next_int : t -> int

(** [int t bound]: uniform in [\[0, bound)], without modulo bias.
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

val bool : t -> bool

(** [int_range t lo hi]: uniform in [\[lo, hi\]] inclusive. *)
val int_range : t -> int -> int -> int

(** Exponentially distributed with the given positive mean. *)
val exponential : t -> mean:float -> float

(** Fisher–Yates shuffle. *)
val shuffle_in_place : t -> 'a array -> unit
