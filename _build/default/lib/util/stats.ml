(** Online summary statistics (Welford) and simple series helpers. *)

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n
let mean t = if t.n = 0 then nan else t.mean
let min_value t = if t.n = 0 then nan else t.min
let max_value t = if t.n = 0 then nan else t.max
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

(* Percentile by nearest-rank on a sorted copy. *)
let percentile xs p =
  match xs with
  | [] -> nan
  | _ ->
      if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile";
      let arr = Array.of_list xs in
      Array.sort compare arr;
      let n = Array.length arr in
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      arr.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

let pp ppf t =
  Format.fprintf ppf "@[<h>n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g@]" t.n
    (mean t) (stddev t) (min_value t) (max_value t)
