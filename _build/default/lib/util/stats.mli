(** Online summary statistics (Welford's algorithm) and simple series
    helpers. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int

(** [nan] when empty. *)
val mean : t -> float

val min_value : t -> float
val max_value : t -> float

(** Sample variance (0 with fewer than two observations). *)
val variance : t -> float

val stddev : t -> float
val of_list : float list -> t

(** Nearest-rank percentile of a list; [nan] on empty input.
    @raise Invalid_argument if [p] is outside [\[0, 100\]]. *)
val percentile : float list -> float -> float

val pp : Format.formatter -> t -> unit
