(** Minimal ASCII table rendering for experiment reports.

    Produces aligned, boxed tables in the style of the paper's Fig. 1 so
    that the benchmark harness can print rows that visually correspond to
    the published tables. *)

type align = Left | Right

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
}

let create ?(aligns = []) headers =
  let aligns =
    if aligns = [] then List.map (fun _ -> Left) headers else aligns
  in
  if List.length aligns <> List.length headers then
    invalid_arg "Tablefmt.create: aligns/headers length mismatch";
  { headers; aligns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Tablefmt.add_row: wrong number of columns";
  t.rows <- row :: t.rows

let rows t = List.rev t.rows

let widths t =
  let all = t.headers :: rows t in
  List.mapi
    (fun i _ ->
      List.fold_left
        (fun acc row -> max acc (String.length (List.nth row i)))
        0 all)
    t.headers

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render_row widths aligns row =
  let cells = List.map2 (fun (w, a) s -> pad a w s)
      (List.combine widths aligns) row in
  "| " ^ String.concat " | " cells ^ " |"

let separator widths =
  "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"

let to_string t =
  let widths = widths t in
  let sep = separator widths in
  let buf = Buffer.create 256 in
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row widths t.aligns t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row widths t.aligns row);
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let print t = print_string (to_string t)
