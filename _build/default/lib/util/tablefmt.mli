(** Minimal ASCII table rendering for experiment reports, in the style
    of the paper's Fig. 1. *)

type align = Left | Right

type t

(** [create ?aligns headers]: a new table.  [aligns] defaults to
    all-[Left] and must match the header count when given. *)
val create : ?aligns:align list -> string list -> t

(** @raise Invalid_argument if the row arity differs from the header
    arity. *)
val add_row : t -> string list -> unit

(** Rows in insertion order. *)
val rows : t -> string list list

val to_string : t -> string

(** Print to stdout (with trailing newline). *)
val print : t -> unit
