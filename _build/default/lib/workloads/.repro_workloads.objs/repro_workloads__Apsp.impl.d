lib/workloads/apsp.ml: Array List Repro_core Repro_heap Repro_parrts Repro_util
