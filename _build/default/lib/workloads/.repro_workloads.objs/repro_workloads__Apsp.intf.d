lib/workloads/apsp.mli: Repro_util
