lib/workloads/euler.ml: Float List Repro_util
