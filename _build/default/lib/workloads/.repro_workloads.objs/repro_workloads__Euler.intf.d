lib/workloads/euler.mli: Repro_util
