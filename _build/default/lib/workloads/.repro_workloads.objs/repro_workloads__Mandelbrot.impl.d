lib/workloads/mandelbrot.ml: Array Fun List Repro_core Repro_parrts Repro_util
