lib/workloads/mandelbrot.mli: Repro_util
