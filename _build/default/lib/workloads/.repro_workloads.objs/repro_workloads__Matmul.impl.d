lib/workloads/matmul.ml: Array Float List Matrix Repro_core Repro_parrts Repro_util
