lib/workloads/matmul.mli: Matrix
