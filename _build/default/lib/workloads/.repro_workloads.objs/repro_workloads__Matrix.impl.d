lib/workloads/matrix.ml: Array Repro_util
