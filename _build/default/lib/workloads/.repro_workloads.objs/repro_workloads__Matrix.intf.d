lib/workloads/matrix.mli: Repro_util
