lib/workloads/parfib.ml: Hashtbl List Printf Repro_core Repro_parrts Repro_util
