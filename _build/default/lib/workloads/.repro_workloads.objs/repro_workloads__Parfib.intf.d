lib/workloads/parfib.mli: Repro_util
