lib/workloads/sumeuler.ml: Euler List Printf Repro_core Repro_parrts Repro_util
