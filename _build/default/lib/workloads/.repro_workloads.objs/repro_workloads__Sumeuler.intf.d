lib/workloads/sumeuler.mli: Repro_util
