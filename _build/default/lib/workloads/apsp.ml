(** All-pairs shortest paths: the paper's "genuinely parallel
    algorithm" (Sec. V, Fig. 5), adapted from Plasmeijer & van Eekelen.

    The algorithm is Floyd–Warshall organised by pivot rows: the row of
    node [k] after [k] update steps is the {e pivot} for step [k], and
    every other row is updated against pivots in order.

    - {!eden_ring}: each ring process owns a contiguous block of rows;
      pivot rows circulate around the ring and are applied to the local
      block as they arrive.  "These row updates depend on each previous
      row, but nevertheless can be pipelined."
    - {!gph}: "sparks an evaluation for each row in advance and relies
      on the runtime system efficiently synchronising concurrent
      evaluations."  The pivot chain is a sequence of {e shared}
      thunks forced by every row thread — exactly the structure that
      triggers massive duplicate evaluation under lazy black-holing
      and works under eager black-holing (Sec. IV-A.3).

    Weights are floats; absent edges are [infinity].  Computation is
    always real (it is cheap: n^3 min-plus operations). *)

module Cost = Repro_util.Cost
module Node = Repro_heap.Node
module Gph = Repro_core.Gph
module Eden = Repro_core.Eden
module Skeletons = Repro_core.Skeletons
module Api = Repro_parrts.Rts.Api

(* Deterministic random digraph as an adjacency matrix of weights. *)
let graph ?(seed = 7) ?(density = 0.2) n : float array array =
  let rng = Repro_util.Rng.create seed in
  Array.init n (fun i ->
      Array.init n (fun j ->
          if i = j then 0.0
          else if Repro_util.Rng.float rng < density then
            float_of_int (1 + Repro_util.Rng.int rng 100)
          else infinity))

(* Sequential Floyd–Warshall reference. *)
let floyd_warshall (adj : float array array) =
  let n = Array.length adj in
  let d = Array.map Array.copy adj in
  for k = 0 to n - 1 do
    let dk = d.(k) in
    for i = 0 to n - 1 do
      let di = d.(i) in
      let dik = di.(k) in
      if dik < infinity then
        for j = 0 to n - 1 do
          let via = dik +. dk.(j) in
          if via < di.(j) then di.(j) <- via
        done
    done
  done;
  d

let checksum (d : float array array) =
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun a x -> if x < infinity then a +. x else a) acc row)
    0.0 d

(* Update [row] against pivot row [pk] of node [k]: returns a new row
   (the Haskell versions allocate fresh rows, which is what drives the
   GC behaviour). *)
let update_row (row : float array) ~k (pk : float array) =
  let n = Array.length row in
  let out = Array.make n 0.0 in
  let rk = row.(k) in
  if rk < infinity then
    for j = 0 to n - 1 do
      let via = rk +. pk.(j) in
      out.(j) <- (if via < row.(j) then via else row.(j))
    done
  else Array.blit row 0 out 0 n;
  out

(* Cost of updating one row of length [n] against one pivot. *)
let op_cycles = 6

let row_update_cost n = Cost.make (n * op_cycles) ~alloc:((8 * n) + 24)

let resident n = 2 * n * n * 8

(* ------------------------------------------------------------------ *)
(* GpH version: a shared pivot chain of thunks                         *)
(* ------------------------------------------------------------------ *)

(** The GpH program.  For each node [i] a thunk computes row [i]'s
    final value by folding over all pivots, forcing each shared pivot
    thunk on the way; the pivot thunks themselves fold over the earlier
    pivots.  Every final row is sparked in advance. *)
let gph ?(seed = 7) ~n () =
  Api.set_resident (resident n);
  let adj = graph ~seed n in
  Api.charge (Cost.make (4 * n * n) ~alloc:(16 * n * n));
  (* pivots.(k) = row k after being updated with pivots 0..k-1 *)
  let pivots : float array Gph.t option array = Array.make n None in
  let pivot_chain_cost k =
    (* folding row k over pivots 0..k-1 *)
    Cost.scale k (row_update_cost n)
  in
  let rec pivot k : float array Gph.t =
    match pivots.(k) with
    | Some node -> node
    | None ->
        let node =
          Gph.thunk ~size:((8 * n) + 24) ~cost:(pivot_chain_cost k) (fun () ->
              let row = ref (Array.copy adj.(k)) in
              for k' = 0 to k - 1 do
                let pk' = Gph.force (pivot k') in
                row := update_row !row ~k:k' pk'
              done;
              !row)
        in
        pivots.(k) <- Some node;
        node
  in
  (* create all pivot thunks up front (the lazy structure exists before
     any evaluation starts) *)
  for k = 0 to n - 1 do
    ignore (pivot k)
  done;
  let final_row i =
    Gph.thunk ~size:((8 * n) + 24) ~cost:(Cost.scale n (row_update_cost n))
      (fun () ->
        let row = ref (Array.copy adj.(i)) in
        for k = 0 to n - 1 do
          if k <> i then begin
            let pk = Gph.force (pivot k) in
            row := update_row !row ~k pk
          end
        done;
        !row)
  in
  let rows = List.init n final_row in
  Gph.par_list Gph.rwhnf rows;
  let result = Array.of_list (List.map Gph.force rows) in
  (* the i-th final row must equal the fully-updated pivot row for i
     except that pivot i skipped its own (identity) step *)
  checksum result

(* ------------------------------------------------------------------ *)
(* Eden version: ring of row-block processes                           *)
(* ------------------------------------------------------------------ *)

(** Ring APSP.  [nprocs] defaults to [noPE]; process [p] owns the
    contiguous row block [p*b .. p*b+b).  Pivot rows circulate; each
    process applies every arriving pivot to its whole block and
    forwards it, and emits its own rows when their turn comes. *)
let eden_ring ?(seed = 7) ?nprocs ~n () =
  let nprocs = match nprocs with Some p -> p | None -> Api.ncaps () in
  let adj = graph ~seed n in
  Api.charge (Cost.make (4 * n * n) ~alloc:(16 * n * n));
  let bounds p =
    (* contiguous blocks, remainder spread over the first blocks *)
    let base = n / nprocs and extra = n mod nprocs in
    let lo = (p * base) + min p extra in
    let hi = lo + base + (if p < extra then 1 else 0) in
    (lo, hi)
  in
  let owner k =
    let rec go p = let lo, hi = bounds p in if k >= lo && k < hi then p else go (p + 1) in
    go 0
  in
  let tr_row =
    {
      Eden.bytes = (fun (_ : int * float array) -> 32 + (8 * n));
      nf_cycles = (fun _ -> n);
    }
  in
  let per_pe = (n / max 1 nprocs) + 1 in
  for pe = 0 to Api.ncaps () - 1 do
    Api.set_resident_of ~cap:pe (2 * per_pe * n * 8)
  done;
  let blocks =
    Skeletons.ring ~n:nprocs ~tr_ring:tr_row
      ~tr_out:
        {
          Eden.bytes = (fun (rows : float array array) -> 24 + (Array.length rows * ((8 * n) + 24)));
          nf_cycles = (fun rows -> Array.length rows * n);
        }
      ~distribute:(fun p ->
        let lo, hi = bounds p in
        Array.init (hi - lo) (fun i -> Array.copy adj.(lo + i)))
      ~worker:(fun p block recv send_right close_right ->
        let lo, hi = bounds p in
        let nrows = hi - lo in
        let apply_pivot k pk =
          Api.charge (Cost.scale nrows (row_update_cost n));
          for i = 0 to nrows - 1 do
            if lo + i <> k then block.(i) <- update_row block.(i) ~k pk
          done
        in
        for k = 0 to n - 1 do
          if owner k = p then begin
            (* my row k is up to date: publish it around the ring
               first (pipelining), then update the rest of my block *)
            let row = block.(k - lo) in
            send_right (k, row);
            apply_pivot k row
          end
          else begin
            match recv () with
            | Some (k', pk) ->
                assert (k' = k);
                apply_pivot k pk;
                (* forward unless the next process is the owner *)
                let next = (p + 1) mod nprocs in
                if owner k <> next then send_right (k, pk)
            | None -> failwith "apsp ring closed early"
          end
        done;
        close_right ();
        block)
  in
  (* blocks come back in ring order = row order *)
  checksum (Array.concat blocks)

(** Sequential baseline with the same cost model. *)
let seq ?(seed = 7) ~n () =
  Api.set_resident (resident n);
  let adj = graph ~seed n in
  Api.charge (Cost.make (4 * n * n) ~alloc:(16 * n * n));
  Api.charge (Cost.scale (n * n) (row_update_cost n));
  checksum (floyd_warshall adj)
