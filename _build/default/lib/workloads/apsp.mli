(** All-pairs shortest paths (the paper's Fig. 5): Floyd–Warshall
    organised by pivot rows, parallelised as a ring pipeline (Eden) or
    as sparked rows over a chain of shared pivot thunks (GpH) — the
    structure that makes black-holing decisive (Sec. IV-A.3). *)

(** Deterministic random digraph: adjacency matrix of weights,
    [infinity] for absent edges. *)
val graph : ?seed:int -> ?density:float -> int -> float array array

(** Sequential reference. *)
val floyd_warshall : float array array -> float array array

(** Sum of all finite distances. *)
val checksum : float array array -> float

(** Fresh-row min-plus update of [row] against pivot [k]. *)
val update_row : float array -> k:int -> float array -> float array

val op_cycles : int
val row_update_cost : int -> Repro_util.Cost.t
val resident : int -> int

(** GpH: every final row sparked in advance; pivot rows are shared
    thunks forced by every row thread. *)
val gph : ?seed:int -> n:int -> unit -> float

(** Eden: ring of row-block processes; pivot rows circulate and are
    applied as they arrive ("row updates ... can be pipelined"). *)
val eden_ring : ?seed:int -> ?nprocs:int -> n:int -> unit -> float

(** Sequential baseline with identical cost accounting. *)
val seq : ?seed:int -> n:int -> unit -> float
