(** Euler's totient function: reference implementations and the cost
    model of the paper's naive Haskell kernel.

    The paper's sumEuler computes [phi] "naively":
    {v phi n = length (filter (relprime n) [1..(n-1)]) v}
    i.e. one [gcd] per candidate.  Running ~1.1e8 real gcds inside the
    simulator for every configuration would be prohibitively slow, so:

    - {!phi_naive} is the literal algorithm (used by tests and small
      runs to validate values and the cost model);
    - {!phi_fast} computes the same value via trial-division
      factorisation ({i O(sqrt k)});
    - {!phi_cost} charges the {e naive} algorithm's virtual cost, which
      is what the simulated runtime accounts regardless of how the
      value is obtained.

    Cost model of the naive kernel (GHC-compiled, per candidate [j]):
    an average Euclid gcd on a random pair (j, k) performs about
    [0.843 * ln k] division steps (Knuth, TAOCP vol. 2, 4.5.3); each
    step costs roughly [gcd_step_cycles] in compiled Haskell, plus
    [elem_overhead_cycles] for the list traversal/filter machinery and
    [elem_alloc_bytes] of cons-cell allocation. *)

let gcd_step_cycles = 30
let elem_overhead_cycles = 20

(* GHC's gcd on unboxed Int is allocation-free; only the residual list
   machinery of filter/length allocates. *)
let elem_alloc_bytes = 8

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let relprime a b = gcd a b = 1

(** The paper's literal kernel. *)
let phi_naive k =
  if k <= 0 then invalid_arg "Euler.phi_naive: k must be positive";
  if k = 1 then 1
  else begin
    let count = ref 0 in
    for j = 1 to k - 1 do
      if relprime j k then incr count
    done;
    !count
  end

(** Same value, via factorisation: phi(k) = k * prod (1 - 1/p). *)
let phi_fast k =
  if k <= 0 then invalid_arg "Euler.phi_fast: k must be positive";
  if k = 1 then 1
  else begin
    let n = ref k and result = ref k in
    let p = ref 2 in
    while !p * !p <= !n do
      if !n mod !p = 0 then begin
        while !n mod !p = 0 do
          n := !n / !p
        done;
        result := !result / !p * (!p - 1)
      end;
      incr p
    done;
    if !n > 1 then result := !result / !n * (!n - 1);
    !result
  end

(** Virtual cost of the naive [phi k]. *)
let phi_cost k : Repro_util.Cost.t =
  if k <= 1 then Repro_util.Cost.make 10 ~alloc:16
  else begin
    let candidates = k - 1 in
    let gcd_steps = 0.843 *. log (float_of_int k) in
    let cycles_per_elem =
      int_of_float (Float.round (gcd_steps *. float_of_int gcd_step_cycles))
      + elem_overhead_cycles
    in
    Repro_util.Cost.make (candidates * cycles_per_elem)
      ~alloc:(candidates * elem_alloc_bytes)
  end

(** Cost of naive phi summed over a chunk. *)
let chunk_cost ks =
  List.fold_left (fun acc k -> Repro_util.Cost.add acc (phi_cost k)) Repro_util.Cost.zero ks

(** Sequential reference: sum of [phi k] for [k] in [[1..n]]. *)
let sum_euler_ref n = List.fold_left (fun acc k -> acc + phi_fast k) 0 (List.init n (fun i -> i + 1))

(** Total naive-kernel cycles for problem size [n] (used by speedup
    normalisation and calibration). *)
let total_cycles n =
  let acc = ref 0 in
  for k = 1 to n do
    acc := !acc + (phi_cost k).Repro_util.Cost.cycles
  done;
  !acc
