(** Euler's totient: reference implementations and the cost model of
    the paper's naive Haskell kernel
    ([phi n = length (filter (relprime n) [1..n-1])]).
    {!phi_naive} is the literal algorithm (tests, small runs);
    {!phi_fast} computes the same value by factorisation; {!phi_cost}
    charges the naive kernel's virtual cost either way. *)

val gcd_step_cycles : int
val elem_overhead_cycles : int
val elem_alloc_bytes : int
val gcd : int -> int -> int
val relprime : int -> int -> bool

(** The paper's literal kernel.  @raise Invalid_argument if [k <= 0]. *)
val phi_naive : int -> int

(** Same value via trial-division factorisation, O(sqrt k). *)
val phi_fast : int -> int

(** Virtual cost of the naive [phi k]. *)
val phi_cost : int -> Repro_util.Cost.t

(** Naive cost summed over a chunk. *)
val chunk_cost : int list -> Repro_util.Cost.t

(** Sequential reference: sum of [phi k], k in [1..n]. *)
val sum_euler_ref : int -> int

(** Total naive-kernel cycles for size [n]. *)
val total_cycles : int -> int
