(** Mandelbrot set rendering: an irregular data-parallel farm.

    Rows of the image cost wildly different amounts (points inside the
    set run the full iteration budget), which makes this the standard
    irregular-parallelism workload: static splitting misbalances, and
    dynamic balancing (stealing / master-worker) wins.

    Points are computed for real; the charged cost is proportional to
    the actual iterations performed (about [iter_cycles] per iteration
    of the escape loop in compiled code). *)

module Cost = Repro_util.Cost
module Listx = Repro_util.Listx
module Gph = Repro_core.Gph
module Eden = Repro_core.Eden
module Skeletons = Repro_core.Skeletons
module Api = Repro_parrts.Rts.Api

let iter_cycles = 12

type view = { x0 : float; y0 : float; x1 : float; y1 : float; max_iter : int }

(* The classic seahorse-valley-ish framing: plenty of in-set points. *)
let default_view = { x0 = -2.0; y0 = -1.25; x1 = 0.5; y1 = 1.25; max_iter = 255 }

(* Escape iterations for one point. *)
let escape ~max_iter cr ci =
  let zr = ref 0.0 and zi = ref 0.0 and i = ref 0 in
  while (!zr *. !zr) +. (!zi *. !zi) <= 4.0 && !i < max_iter do
    let zr' = (!zr *. !zr) -. (!zi *. !zi) +. cr in
    zi := (2.0 *. !zr *. !zi) +. ci;
    zr := zr';
    incr i
  done;
  !i

(* Compute one row of the image; returns (iterations per pixel, total
   iterations) — the total drives the charged cost. *)
let compute_row ~(view : view) ~width ~height y =
  let row = Array.make width 0 in
  let total = ref 0 in
  let ci =
    view.y0 +. ((view.y1 -. view.y0) *. float_of_int y /. float_of_int (height - 1))
  in
  for x = 0 to width - 1 do
    let cr =
      view.x0 +. ((view.x1 -. view.x0) *. float_of_int x /. float_of_int (width - 1))
    in
    let it = escape ~max_iter:view.max_iter cr ci in
    row.(x) <- it;
    total := !total + it
  done;
  (row, !total)

let row_cost ~width total_iters =
  Cost.make (total_iters * iter_cycles) ~alloc:((8 * width) + 24)

(** Sequential reference: checksum = sum of all iteration counts. *)
let reference ?(view = default_view) ~width ~height () =
  let sum = ref 0 in
  for y = 0 to height - 1 do
    let _, t = compute_row ~view ~width ~height y in
    sum := !sum + t
  done;
  !sum

(** GpH version: one spark per row (costs are irregular, so dynamic
    balancing matters). *)
let gph ?(view = default_view) ~width ~height () =
  Api.set_resident (8 * width * height);
  let rows =
    List.init height (fun y ->
        (* the cost is data-dependent: compute the row inside the thunk
           and charge for the iterations actually performed *)
        Gph.thunk ~size:((8 * width) + 24)
          ~cost:(Cost.make 200 ~alloc:64)
          (fun () ->
            let _row, total = compute_row ~view ~width ~height y in
            Api.charge (row_cost ~width total);
            total))
  in
  Gph.par_list Gph.rwhnf (List.rev rows);
  let sum = List.fold_left (fun acc r -> acc + Gph.force r) 0 rows in
  let want = reference ~view ~width ~height () in
  if sum <> want then failwith "mandelbrot/gph: checksum mismatch";
  sum

(** Eden version: master-worker over rows — the dynamic balancing
    pattern the skeleton exists for. *)
let eden_mw ?(view = default_view) ?prefetch ~width ~height () =
  let f y =
    let _row, total = compute_row ~view ~width ~height y in
    Api.charge (row_cost ~width total);
    ([], total)
  in
  let totals =
    Skeletons.master_worker ?prefetch ~tr_task:Eden.t_int ~tr_res:Eden.t_int f
      (List.init height Fun.id)
  in
  let sum = List.fold_left ( + ) 0 totals in
  let want = reference ~view ~width ~height () in
  if sum <> want then failwith "mandelbrot/eden: checksum mismatch";
  sum

(** Eden farm with static round-robin splitting (for comparison with
    the dynamic master-worker). *)
let eden_farm ?(view = default_view) ~width ~height () =
  let worker ys =
    List.fold_left
      (fun acc y ->
        let _row, total = compute_row ~view ~width ~height y in
        Api.charge (row_cost ~width total);
        acc + total)
      0 ys
  in
  let pieces = Listx.unshuffle (Api.ncaps ()) (List.init height Fun.id) in
  let partials =
    Eden.spawn ~tr_in:(Eden.t_list Eden.t_int) ~tr_out:Eden.t_int worker pieces
  in
  let sum = List.fold_left ( + ) 0 partials in
  let want = reference ~view ~width ~height () in
  if sum <> want then failwith "mandelbrot/farm: checksum mismatch";
  sum

(** Sequential baseline with the same cost accounting. *)
let seq ?(view = default_view) ~width ~height () =
  let sum = ref 0 in
  for y = 0 to height - 1 do
    let _row, total = compute_row ~view ~width ~height y in
    Api.charge (row_cost ~width total);
    sum := !sum + total
  done;
  !sum
