(** Mandelbrot rendering: the standard irregular data-parallel farm —
    row costs vary wildly, so static splitting misbalances and dynamic
    balancing wins.  Points are computed for real; charged cost is
    proportional to the iterations actually performed. *)

val iter_cycles : int

type view = { x0 : float; y0 : float; x1 : float; y1 : float; max_iter : int }

val default_view : view

(** Escape iterations for the point [(cr, ci)]. *)
val escape : max_iter:int -> float -> float -> int

(** Compute one image row; returns (per-pixel iterations, total). *)
val compute_row : view:view -> width:int -> height:int -> int -> int array * int

val row_cost : width:int -> int -> Repro_util.Cost.t

(** Sequential reference checksum (sum of all iteration counts). *)
val reference : ?view:view -> width:int -> height:int -> unit -> int

(** GpH: one spark per row. *)
val gph : ?view:view -> width:int -> height:int -> unit -> int

(** Eden: master-worker over rows (dynamic balancing). *)
val eden_mw :
  ?view:view -> ?prefetch:int -> width:int -> height:int -> unit -> int

(** Eden: static round-robin farm (for comparison with the dynamic
    master-worker). *)
val eden_farm : ?view:view -> width:int -> height:int -> unit -> int

(** Sequential baseline with identical cost accounting. *)
val seq : ?view:view -> width:int -> height:int -> unit -> int
