(** Dense matrix multiplication: the paper's second benchmark (Sec. V,
    Figs. 3 and 4).

    - {!gph}: "regular blocks of the result are turned into sparks.
      The block size, i.e. the spark granularity, is tunable by a
      parameter."  Each result block only depends on a band of each
      input, which is the data-dependence advantage over row
      parallelism the paper describes.
    - {!eden_cannon}: Cannon's algorithm on a torus topology skeleton:
      q x q worker processes hold one block of each input, multiply-
      accumulate, and exchange blocks (A leftwards, B upwards) for q
      rounds.  "Communication is reduced to a minimum."

    Both support [Real] and [Synthetic] payloads (see {!Matrix}). *)

module Cost = Repro_util.Cost
module Gph = Repro_core.Gph
module Eden = Repro_core.Eden
module Skeletons = Repro_core.Skeletons
module Api = Repro_parrts.Rts.Api

let eps = 1e-6

(** GpH blocked multiply.  [block] is the spark granularity (block edge
    length); default picks roughly 2 blocks per capability per
    dimension. *)
let gph ?block ?(payload = Matrix.Synthetic) ?(seed = 42) ~n () =
  Api.set_resident (Matrix.resident ~n);
  let block =
    match block with
    | Some b -> b
    | None ->
        let per_side =
          max 1 (int_of_float (ceil (sqrt (float_of_int (2 * Api.ncaps ())))))
        in
        max 1 ((n + per_side - 1) / per_side)
  in
  let a, b, out =
    match payload with
    | Matrix.Real -> (Matrix.random ~seed n, Matrix.random ~seed:(seed + 1) n, Matrix.zero n)
    | Matrix.Synthetic -> ([||], [||], [||])
  in
  (* charge building the inputs *)
  Api.charge (Cost.make (4 * n * n) ~alloc:(16 * n * n));
  let blocks = ref [] in
  let r0 = ref 0 in
  while !r0 < n do
    let c0 = ref 0 in
    while !c0 < n do
      blocks := (!r0, !c0) :: !blocks;
      c0 := !c0 + block
    done;
    r0 := !r0 + block
  done;
  (* A block is a nested lazy structure, as in the Haskell program: one
     shared thunk per row segment, and a block thunk that forces its
     row segments.  Sharing at row grain keeps accidental duplicate
     evaluation (lazy black-holing) cheap: a thread re-entering a block
     finds most row segments already evaluated. *)
  let row_node ~c0 ~cols i =
    Gph.thunk ~size:(cols * 8)
      ~cost:(Matrix.block_cost ~n ~rows:1 ~cols)
      (fun () ->
        match payload with
        | Matrix.Real -> Matrix.mul_row_segment a b out ~i ~c0 ~cols
        | Matrix.Synthetic -> ())
  in
  let nodes =
    List.map
      (fun (r0, c0) ->
        let rows = min block (n - r0) and cols = min block (n - c0) in
        let row_nodes =
          List.init rows (fun k -> row_node ~c0 ~cols (r0 + k))
        in
        Gph.thunk ~size:(rows * 8)
          ~cost:(Repro_util.Cost.make (40 * rows) ~alloc:(8 * rows))
          (fun () -> List.iter (fun rn -> ignore (Gph.force rn)) row_nodes))
      (List.rev !blocks)
  in
  (* Spark in reverse order: thieves steal oldest-first, so they work
     from the far end of the block list while the main thread's
     consuming fold forces from the front — the two fronts meet once
     instead of chasing each other (a standard GpH tuning; the paper
     notes the program's granularity/behaviour is "tunable by a
     parameter"). *)
  Gph.par_list Gph.rwhnf (List.rev nodes);
  List.iter Gph.seq nodes;
  match payload with
  | Matrix.Real ->
      let reference = Matrix.mul_ref a b in
      let got = Matrix.checksum out and want = Matrix.checksum reference in
      if Float.abs (got -. want) > eps *. Float.abs want then
        failwith "matmul/gph: result mismatch";
      got
  | Matrix.Synthetic -> 0.0

(** Eden: Cannon's algorithm on a [q x q] torus of processes (paper:
    3x3 on 9 virtual PEs, 4x4 on 17 virtual PEs).  [n] must be
    divisible by [q]. *)
let eden_cannon ?(payload = Matrix.Synthetic) ?(seed = 42) ~n ~q () =
  if n mod q <> 0 then invalid_arg "Matmul.eden_cannon: q must divide n";
  let m = n / q in
  (* every PE holds a 3-block working set (A, B, C) *)
  let block_bytes = 8 * m * m in
  for pe = 0 to Api.ncaps () - 1 do
    Api.set_resident_of ~cap:pe (4 * block_bytes)
  done;
  let a, b =
    match payload with
    | Matrix.Real -> (Matrix.random ~seed n, Matrix.random ~seed:(seed + 1) n)
    | Matrix.Synthetic -> ([||], [||])
  in
  Api.charge (Cost.make (4 * n * n) ~alloc:(16 * n * n));
  let tr_block =
    {
      Eden.bytes = (fun (_ : Matrix.mat) -> 24 + block_bytes);
      nf_cycles = (fun _ -> m * m);
    }
  in
  (* initial skew: worker (r,c) starts with A(r, r+c) and B(r+c, c) *)
  let initial_a r c =
    match payload with
    | Matrix.Real -> Matrix.sub_block a ~r0:(r * m) ~c0:((r + c) mod q * m) ~bs:m
    | Matrix.Synthetic -> Array.make_matrix 1 1 0.0
  in
  let initial_b r c =
    match payload with
    | Matrix.Real -> Matrix.sub_block b ~r0:((r + c) mod q * m) ~c0:(c * m) ~bs:m
    | Matrix.Synthetic -> Array.make_matrix 1 1 0.0
  in
  (* The parent distributes the 2*q*q initial blocks; charge it the
     normal-form reduction + packing work for all of them (the torus
     workers charge the matching unpack on their side). *)
  Api.charge (Cost.make (4 * q * q * m * m));
  let checksums =
    Skeletons.torus ~rows:q ~cols:q ~tr_a:tr_block ~tr_b:tr_block
      ~tr_out:Eden.t_float
      ~worker:(fun ~row ~col ~recv_a ~send_a ~recv_b ~send_b ->
        (* the parent ships the two starting blocks; we model that
           hand-off as the first ring messages *)
        let a_blk = ref (initial_a row col) and b_blk = ref (initial_b row col) in
        (* receiving the initial blocks from the parent costs one
           block-unpack each; charge it directly *)
        Api.charge (Cost.make (2 * m * m) ~alloc:(2 * block_bytes));
        let c_blk =
          match payload with
          | Matrix.Real -> Matrix.zero m
          | Matrix.Synthetic -> [||]
        in
        for step = 0 to q - 1 do
          Api.charge (Matrix.mac_block_cost ~m);
          (match payload with
          | Matrix.Real -> Matrix.mac_block !a_blk !b_blk c_blk
          | Matrix.Synthetic -> ());
          if step < q - 1 then begin
            send_a !a_blk;
            send_b !b_blk;
            (match recv_a () with
            | Some blk -> a_blk := blk
            | None -> failwith "cannon: A ring closed early");
            match recv_b () with
            | Some blk -> b_blk := blk
            | None -> failwith "cannon: B ring closed early"
          end
        done;
        match payload with
        | Matrix.Real -> Matrix.checksum c_blk
        | Matrix.Synthetic -> 0.0)
  in
  let got = List.fold_left ( +. ) 0.0 checksums in
  match payload with
  | Matrix.Real ->
      let want = Matrix.checksum (Matrix.mul_ref a b) in
      if Float.abs (got -. want) > eps *. Float.abs want then
        failwith "matmul/cannon: result mismatch";
      got
  | Matrix.Synthetic -> 0.0

(** Sequential version for speedup baselines. *)
let seq ?(payload = Matrix.Synthetic) ?(seed = 42) ~n () =
  Api.set_resident (Matrix.resident ~n);
  Api.charge (Cost.make (4 * n * n) ~alloc:(16 * n * n));
  Api.charge
    (Cost.make (Matrix.total_cycles ~n) ~alloc:(n * n * Matrix.elem_alloc_bytes));
  match payload with
  | Matrix.Real ->
      let a = Matrix.random ~seed n and b = Matrix.random ~seed:(seed + 1) n in
      Matrix.checksum (Matrix.mul_ref a b)
  | Matrix.Synthetic -> 0.0
