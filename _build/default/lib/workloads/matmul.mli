(** Dense matrix multiplication: the paper's second benchmark (Figs. 3
    and 4).  Real-mode runs raise on any mismatch with the sequential
    reference. *)

(** GpH blockwise multiply: result blocks become sparks ("the block
    size, i.e. the spark granularity, is tunable by a parameter"),
    with row-segment-grain sharing inside each block. *)
val gph :
  ?block:int ->
  ?payload:Matrix.payload ->
  ?seed:int ->
  n:int ->
  unit ->
  float

(** Eden: Cannon's algorithm on a [q x q] torus of processes (the
    paper runs 3x3 on 9 and 4x4 on 17 virtual PEs).
    @raise Invalid_argument unless [q] divides [n]. *)
val eden_cannon :
  ?payload:Matrix.payload -> ?seed:int -> n:int -> q:int -> unit -> float

(** Sequential baseline with identical cost accounting. *)
val seq : ?payload:Matrix.payload -> ?seed:int -> n:int -> unit -> float
