(** Dense float matrices: representation, reference multiply, blocked
    kernels, and the virtual cost model of the paper's Haskell code.

    The simulator can run matrix workloads in two payload modes:

    - [Real]: block kernels actually compute (results are verified
      against {!mul_ref}); used by tests, examples and small runs.
    - [Synthetic]: kernels charge exactly the same virtual cost but skip
      the floating-point work, so large parameter sweeps (the paper's
      2000x2000 speedup curves) stay fast.  Virtual-time behaviour is
      identical by construction: the cost charged does not depend on
      the mode.  See DESIGN.md ("substitutions"). *)

type payload = Real | Synthetic

type mat = float array array

let make n f : mat = Array.init n (fun i -> Array.init n (fun j -> f i j))

let zero n : mat = Array.make_matrix n n 0.0

(* Deterministic pseudo-random matrix (values in [0,1)). *)
let random ~seed n : mat =
  let rng = Repro_util.Rng.create seed in
  make n (fun _ _ -> Repro_util.Rng.float rng)

let checksum (m : mat) =
  Array.fold_left (fun acc row -> Array.fold_left ( +. ) acc row) 0.0 m

(* Sequential reference multiply (ikj loop order). *)
let mul_ref (a : mat) (b : mat) : mat =
  let n = Array.length a in
  let c = zero n in
  for i = 0 to n - 1 do
    let ai = a.(i) and ci = c.(i) in
    for k = 0 to n - 1 do
      let aik = ai.(k) in
      if aik <> 0.0 then begin
        let bk = b.(k) in
        for j = 0 to n - 1 do
          ci.(j) <- ci.(j) +. (aik *. bk.(j))
        done
      end
    done
  done;
  c

(* Compute the [bs x bs] block of [a*b] whose top-left corner is
   [(r0, c0)], writing into [out] at the same position.

   Each element is written by pure assignment (dot product into a
   local accumulator), never read-modify-write: under lazy black-holing
   the simulated runtime may evaluate the same block thunk twice, so
   block kernels must be idempotent. *)
let mul_block (a : mat) (b : mat) (out : mat) ~r0 ~c0 ~bs =
  let n = Array.length a in
  let r1 = min n (r0 + bs) and c1 = min n (c0 + bs) in
  for i = r0 to r1 - 1 do
    let ai = a.(i) and oi = out.(i) in
    for j = c0 to c1 - 1 do
      let s = ref 0.0 in
      for k = 0 to n - 1 do
        s := !s +. (ai.(k) *. b.(k).(j))
      done;
      oi.(j) <- !s
    done
  done

(* Compute one row segment of [a*b]: row [i], columns [c0..c0+cols).
   Pure assignment (idempotent, see mul_block). *)
let mul_row_segment (a : mat) (b : mat) (out : mat) ~i ~c0 ~cols =
  let n = Array.length a in
  let c1 = min n (c0 + cols) in
  let ai = a.(i) and oi = out.(i) in
  for j = c0 to c1 - 1 do
    let s = ref 0.0 in
    for k = 0 to n - 1 do
      s := !s +. (ai.(k) *. b.(k).(j))
    done;
    oi.(j) <- !s
  done

(* Multiply-accumulate of two [m x m] blocks: [c += a * b]. *)
let mac_block (a : mat) (b : mat) (c : mat) =
  let m = Array.length a in
  for i = 0 to m - 1 do
    let ai = a.(i) and ci = c.(i) in
    for k = 0 to m - 1 do
      let aik = ai.(k) in
      let bk = b.(k) in
      for j = 0 to m - 1 do
        ci.(j) <- ci.(j) +. (aik *. bk.(j))
      done
    done
  done

let sub_block (m : mat) ~r0 ~c0 ~bs : mat =
  Array.init bs (fun i -> Array.sub m.(r0 + i) c0 bs)

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

(* Cycles per multiply-accumulate in GHC-compiled code over unboxed
   arrays (load, fused multiply-add, index arithmetic, bounds). *)
let mac_cycles = 7

(* Allocation per produced result element: the Haskell versions build
   fresh (unboxed) result structures plus transient boxing. *)
let elem_alloc_bytes = 10

(* Virtual cost of producing a [rows x cols] piece of the result of an
   [n]-dimension multiply. *)
let block_cost ~n ~rows ~cols : Repro_util.Cost.t =
  Repro_util.Cost.make
    (rows * cols * n * mac_cycles)
    ~alloc:(rows * cols * elem_alloc_bytes)

(* Virtual cost of one [m x m] block multiply-accumulate (Cannon
   round). *)
let mac_block_cost ~m : Repro_util.Cost.t =
  Repro_util.Cost.make (m * m * m * mac_cycles) ~alloc:(m * m * 4)

let total_cycles ~n = n * n * n * mac_cycles

(* Live data: the two input matrices plus the result. *)
let resident ~n = 3 * n * n * 8
