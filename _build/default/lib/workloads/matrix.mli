(** Dense float matrices: reference multiply, blocked kernels and the
    virtual cost model of the paper's Haskell code.

    [Real] payloads actually compute (verified against {!mul_ref});
    [Synthetic] payloads charge exactly the same virtual cost without
    the floating-point work, keeping the paper's 2000x2000 sweeps
    cheap.  Virtual-time behaviour is identical by construction. *)

type payload = Real | Synthetic

type mat = float array array

val make : int -> (int -> int -> float) -> mat
val zero : int -> mat

(** Deterministic pseudo-random matrix, entries in [0,1). *)
val random : seed:int -> int -> mat

val checksum : mat -> float

(** Sequential reference multiply. *)
val mul_ref : mat -> mat -> mat

(** Compute the [bs x bs] result block at [(r0, c0)] into [out].
    Idempotent (pure assignment): safe under duplicate evaluation. *)
val mul_block : mat -> mat -> mat -> r0:int -> c0:int -> bs:int -> unit

(** One row segment of the product (row [i], columns
    [c0..c0+cols)); idempotent. *)
val mul_row_segment : mat -> mat -> mat -> i:int -> c0:int -> cols:int -> unit

(** Multiply-accumulate of square blocks: [c += a*b] (Cannon round). *)
val mac_block : mat -> mat -> mat -> unit

val sub_block : mat -> r0:int -> c0:int -> bs:int -> mat

(** {1 Cost model} *)

val mac_cycles : int
val elem_alloc_bytes : int

(** Cost of producing a [rows x cols] piece of an [n]-dim multiply. *)
val block_cost : n:int -> rows:int -> cols:int -> Repro_util.Cost.t

(** Cost of one [m x m] block multiply-accumulate. *)
val mac_block_cost : m:int -> Repro_util.Cost.t

val total_cycles : n:int -> int
val resident : n:int -> int
