(** parfib: the classic GpH fine-granularity stress test.

    {v
      parfib n t | n < t     = nfib n
                 | otherwise = x `par` (y `seq` x + y + 1)
                     where x = parfib (n-1) t; y = parfib (n-2) t
    v}

    Every call above the threshold [t] sparks its left branch — so the
    spark count grows exponentially as the threshold drops, which is
    exactly what exercises spark-pool overflow, activation overhead
    (thread-per-spark vs spark threads) and steal traffic.  The value
    computed is nfib (the call count), the traditional measure.

    Values are computed really (cheaply, by memoised recurrence); the
    charged cost models compiled naive nfib: ~[call_cycles] per call of
    the call tree. *)

module Cost = Repro_util.Cost
module Gph = Repro_core.Gph
module Eden = Repro_core.Eden
module Skeletons = Repro_core.Skeletons
module Api = Repro_parrts.Rts.Api

let call_cycles = 35
let call_alloc = 16

(* nfib n = number of calls of naive fib n = 2*fib(n+1) - 1 *)
let nfib =
  let cache = Hashtbl.create 64 in
  let rec go n =
    if n < 2 then 1
    else
      match Hashtbl.find_opt cache n with
      | Some v -> v
      | None ->
          let v = 1 + go (n - 1) + go (n - 2) in
          Hashtbl.add cache n v;
          v
  in
  go

(* Cost of evaluating naive nfib [n] sequentially. *)
let seq_cost n =
  let calls = nfib n in
  Cost.make (calls * call_cycles) ~alloc:(calls * call_alloc)

(** Sequential reference (the value parfib must compute). *)
let reference n = nfib n

(** GpH parfib: sparks the left branch above the threshold. *)
let gph ~n ~threshold () =
  if threshold < 1 then invalid_arg "Parfib.gph: threshold must be >= 1";
  let rec node n : int Gph.t =
    (* the division identity nfib n = nfib(n-1) + nfib(n-2) + 1 only
       holds for n >= 2: tiny arguments always go sequential *)
    if n < threshold || n < 2 then
      Gph.thunk ~cost:(seq_cost n) (fun () -> nfib n)
    else
      (* the division node itself costs one call *)
      Gph.thunk ~cost:(Cost.make call_cycles ~alloc:call_alloc) (fun () ->
          let x = node (n - 1) in
          let y = node (n - 2) in
          Gph.par x;
          let yv = Gph.force y in
          let xv = Gph.force x in
          xv + yv + 1)
  in
  let result = Gph.force (node n) in
  if result <> reference n then
    failwith
      (Printf.sprintf "parfib: got %d, expected %d" result (reference n));
  result

(** Eden parfib: unfold the call tree to a fixed depth, farm the
    sub-trees out as processes, combine at the parent (the usual Eden
    divide-and-conquer translation). *)
let eden ~n ~depth () =
  if depth < 0 then invalid_arg "Parfib.eden: depth must be >= 0";
  if n - (2 * depth) < 2 then
    invalid_arg "Parfib.eden: depth too deep for n (division below nfib 2)";
  (* enumerate sub-problems at [depth]: the multiset of (n - a - 2b)
     leaves of the division tree, plus the division-node count *)
  let rec leaves n d acc = if d = 0 then n :: acc else leaves (n - 1) (d - 1) (leaves (n - 2) (d - 1) acc) in
  let subs = leaves n depth [] in
  let division_nodes = (1 lsl depth) - 1 in
  let worker k =
    Api.charge (seq_cost k);
    nfib k
  in
  let partials =
    Skeletons.par_map_farm ~tr_in:Eden.t_int ~tr_out:Eden.t_int worker subs
  in
  let result = List.fold_left ( + ) 0 partials + division_nodes in
  if result <> reference n then
    failwith
      (Printf.sprintf "parfib/eden: got %d, expected %d" result (reference n));
  result

(** Sequential baseline. *)
let seq ~n () =
  Api.charge (seq_cost n);
  nfib n
