(** parfib: the classic GpH fine-granularity stress test — every call
    above the threshold sparks its left branch, so spark counts grow
    exponentially as the threshold drops.  Computes nfib (the naive
    call count). *)

val call_cycles : int
val call_alloc : int

(** nfib n = 2*fib(n+1) - 1, memoised. *)
val nfib : int -> int

(** Virtual cost of sequential naive nfib [n]. *)
val seq_cost : int -> Repro_util.Cost.t

(** The value every variant must compute. *)
val reference : int -> int

(** GpH parfib.  @raise Invalid_argument if [threshold < 1]. *)
val gph : n:int -> threshold:int -> unit -> int

(** Eden: unfold the call tree to [depth], farm the sub-trees out.
    @raise Invalid_argument when the division would reach below
    nfib 2. *)
val eden : n:int -> depth:int -> unit -> int

(** Sequential baseline. *)
val seq : n:int -> unit -> int
