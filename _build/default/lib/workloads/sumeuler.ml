(** sumEuler: the paper's "simple map-reduce operation" (Sec. V,
    Figs. 1–3): sum of the Euler totient over [[1..n]].

    - {!gph} is the GpH program: split the input into sublists, build a
      thunk per sublist, [parList rnf] over the thunks, sum the forced
      results — then re-check the result with a sequential computation
      (the tail phase visible in the paper's traces).
    - {!eden} is the Eden program: a [parMapReduce]-style skeleton over
      [noPE] {e contiguous} sublists ([splitIntoN]) — contiguous
      splitting is what gives the "sub-optimal static load balance" the
      paper notes for trace e), since the cost of [phi k] grows with
      [k].

    Both compute the real value (via the fast totient) while charging
    the naive kernel's virtual cost. *)

module Cost = Repro_util.Cost
module Listx = Repro_util.Listx
module Gph = Repro_core.Gph
module Eden = Repro_core.Eden
module Skeletons = Repro_core.Skeletons
module Api = Repro_parrts.Rts.Api

(* The verification pass the paper's programs run at the end ("All
   versions of the program check the result using a second sequential
   computation, that is obvious at the end of each trace").  We model
   it as a sequential recomputation by a smarter algorithm costing a
   fixed fraction of the naive kernel — the visible tail phase of the
   paper's traces. *)
let check_fraction = 64

let check_cost n =
  Cost.make (Euler.total_cycles n / check_fraction) ~alloc:(8 * n)

let sequential_check n =
  Api.charge (check_cost n);
  Euler.sum_euler_ref n

(* Live data is tiny for this benchmark: input list + partial sums. *)
let resident n = (48 * n) + (1 lsl 20)

(** GpH version.  [chunks] controls the sublist count (default
    [4 * ncaps]); each sublist becomes one spark.  [split] selects the
    splitting variant (the paper: "the GpH program can apply several
    variants of splitting the input into sublists"); round-robin gives
    balanced sublists since the cost of [phi k] grows with [k]. *)
let gph ?chunks ?(split = `Round_robin) ~n () =
  Api.set_resident (resident n);
  (* default granularity: ~50 numbers per spark, at least 4 per cap *)
  let chunks =
    match chunks with
    | Some c -> c
    | None -> max (4 * Api.ncaps ()) (n / 50)
  in
  let input = List.init n (fun i -> i + 1) in
  let pieces =
    match split with
    | `Round_robin -> Listx.unshuffle chunks input
    | `Contiguous -> Listx.split_into_n chunks input
  in
  (* Lazy structure as in the Haskell program: [map phi] builds one
     thunk per element; the sparked chunk computations force (sum) a
     sublist of those shared element thunks.  Sharing at element grain
     is what keeps accidental duplicate evaluation cheap: a thread that
     re-enters a chunk under lazy black-holing re-traverses it but
     finds the elements already evaluated. *)
  let elems =
    List.map
      (fun piece ->
        List.map
          (fun k ->
            (k, Gph.thunk ~cost:(Euler.phi_cost k) (fun () -> Euler.phi_fast k)))
          piece)
      pieces
  in
  let fold_cycles piece = 50 * List.length piece in
  let nodes =
    List.map
      (fun piece ->
        Gph.thunk
          ~cost:(Cost.make (fold_cycles piece) ~alloc:(8 * List.length piece))
          (fun () ->
            List.fold_left (fun a (_, nd) -> a + Gph.force nd) 0 piece))
      elems
  in
  (* Spark in reverse order: the runtime distributes sparks oldest
     first, so workers traverse the chunk list from the far end while
     the main thread's consuming fold forces from the front — the two
     fronts meet once instead of lock-stepping over shared thunks (a
     standard GpH program tuning). *)
  Gph.par_list Gph.rwhnf (List.rev nodes);
  let result = List.fold_left (fun acc nd -> acc + Gph.force nd) 0 nodes in
  let check = sequential_check n in
  if result <> check then
    failwith
      (Printf.sprintf "sumEuler: parallel %d <> sequential %d" result check);
  result

(** Eden version: one process per PE computing its partial sum over a
    statically-dealt piece; the parent reduces.  [split] selects the
    static distribution: [`Round_robin] (Eden's [unshuffle], the farm
    default — near-balanced since the cost of [phi k] grows with [k])
    or [`Contiguous] ([splitIntoN] — the markedly "sub-optimal static
    load balance" variant). *)
let eden ?(split = `Round_robin) ~n () =
  let npes = Api.ncaps () in
  Api.set_resident_global (resident n);
  for pe = 0 to npes - 1 do
    Api.set_resident_of ~cap:pe (resident n / npes)
  done;
  let input = List.init n (fun i -> i + 1) in
  let pieces =
    match split with
    | `Round_robin -> Listx.unshuffle npes input
    | `Contiguous -> Listx.split_into_n npes input
  in
  let worker ks =
    Api.charge (Euler.chunk_cost ks);
    List.fold_left (fun a k -> a + Euler.phi_fast k) 0 ks
  in
  let partials =
    Eden.spawn ~tr_in:(Eden.t_list Eden.t_int) ~tr_out:Eden.t_int worker pieces
  in
  let result = List.fold_left ( + ) 0 partials in
  let check = sequential_check n in
  if result <> check then
    failwith
      (Printf.sprintf "sumEuler/eden: parallel %d <> sequential %d" result check);
  result

(** GUM version (paper Sec. III-B): the same GpH-shaped program on
    distributed heaps with FISH/SCHEDULE passive work distribution —
    the main PE sparks chunk packets, idle PEs fish for them. *)
let gum ?chunks ~n () =
  let module Gum = Repro_core.Gum in
  Gum.main (fun () ->
      let npes = Api.ncaps () in
      for pe = 0 to npes - 1 do
        Api.set_resident_of ~cap:pe (resident n / npes)
      done;
      let chunks = match chunks with Some c -> c | None -> max (4 * npes) (n / 50) in
      let input = List.init n (fun i -> i + 1) in
      let pieces = Listx.unshuffle chunks input in
      let result =
        Gum.par_chunk_sum ~chunk_cost:Euler.chunk_cost
          ~f:(fun ks -> List.fold_left (fun a k -> a + Euler.phi_fast k) 0 ks)
          pieces
      in
      let check = sequential_check n in
      if result <> check then
        failwith
          (Printf.sprintf "sumEuler/gum: parallel %d <> sequential %d" result
             check);
      result)

(** Purely sequential version (for speedup baselines): one thread, one
    chunk, same costs, same check. *)
let seq ~n () =
  Api.set_resident (resident n);
  let input = List.init n (fun i -> i + 1) in
  Api.charge (Euler.chunk_cost input);
  let result = List.fold_left (fun a k -> a + Euler.phi_fast k) 0 input in
  let check = sequential_check n in
  assert (result = check);
  result
