(** sumEuler: the paper's "simple map-reduce operation" (Figs. 1–3).
    All variants compute the real value (checked against
    {!Euler.sum_euler_ref}) and end with the sequential verification
    pass visible at the end of the paper's traces. *)

(** The check phase costs [Euler.total_cycles n / check_fraction]. *)
val check_fraction : int

val check_cost : int -> Repro_util.Cost.t
val resident : int -> int

(** GpH version: sublists sparked under [parList rnf]; [chunks]
    defaults to ~50 numbers per spark; [split] selects the splitting
    variant (round-robin balances since phi's cost grows with k). *)
val gph :
  ?chunks:int ->
  ?split:[ `Contiguous | `Round_robin ] ->
  n:int ->
  unit ->
  int

(** Eden version: one process per PE over statically-dealt pieces
    ([`Contiguous] reproduces the "sub-optimal static load balance"
    the paper notes for its trace e). *)
val eden : ?split:[ `Contiguous | `Round_robin ] -> n:int -> unit -> int

(** GUM version (paper Sec. III-B): the GpH-shaped program on
    distributed heaps with FISH/SCHEDULE passive work distribution.
    Must run inside {!Repro_core.Gum}-compatible (distributed)
    configurations. *)
val gum : ?chunks:int -> n:int -> unit -> int

(** Sequential baseline with identical cost accounting. *)
val seq : n:int -> unit -> int
