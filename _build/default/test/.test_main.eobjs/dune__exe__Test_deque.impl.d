test/test_deque.ml: Alcotest Array Atomic Domain List QCheck QCheck_alcotest Repro_deque Spsc_queue Ws_deque
