test/test_eden.ml: Alcotest Array List QCheck QCheck_alcotest Repro_core Repro_machine Repro_mp Repro_parrts Repro_util
