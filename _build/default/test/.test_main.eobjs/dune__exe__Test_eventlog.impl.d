test/test_eventlog.ml: Alcotest List Repro_core Repro_parrts Repro_trace Repro_util Repro_workloads String
