test/test_experiments.ml: Alcotest List Printf Repro_experiments Repro_trace Repro_util String
