test/test_extensions.ml: Alcotest List Option Printf QCheck QCheck_alcotest Repro_core Repro_machine Repro_mp Repro_parrts Repro_util Repro_workloads
