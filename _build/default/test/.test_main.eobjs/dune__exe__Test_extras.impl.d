test/test_extras.ml: Alcotest Filename List QCheck QCheck_alcotest Repro_core Repro_experiments Repro_machine Repro_mp Repro_parrts Repro_trace Repro_util Repro_workloads String Sys
