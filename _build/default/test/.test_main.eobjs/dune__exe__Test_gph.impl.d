test/test_gph.ml: Alcotest List QCheck QCheck_alcotest Repro_core Repro_heap Repro_machine Repro_parrts Repro_util
