test/test_gum.ml: Alcotest Array Fun List Option Repro_core Repro_parrts Repro_util Repro_workloads String
