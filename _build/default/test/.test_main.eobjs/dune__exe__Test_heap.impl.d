test/test_heap.ml: Alcotest QCheck QCheck_alcotest Repro_heap
