test/test_rts.ml: Alcotest Array Fun List Option Repro_heap Repro_machine Repro_mp Repro_parrts Repro_trace Repro_util Repro_workloads String
