test/test_sim.ml: Alcotest Array List Repro_machine Repro_sim Repro_trace String
