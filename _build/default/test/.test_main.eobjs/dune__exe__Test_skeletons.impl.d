test/test_skeletons.ml: Alcotest Fun List QCheck QCheck_alcotest Repro_core Repro_machine Repro_mp Repro_parrts Repro_util String
