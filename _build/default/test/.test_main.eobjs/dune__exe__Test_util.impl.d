test/test_util.ml: Alcotest Array Cost Float Fun Gen List Listx Prio_queue QCheck QCheck_alcotest Repro_util Rng Stats String Tablefmt
