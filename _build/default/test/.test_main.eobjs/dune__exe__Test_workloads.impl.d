test/test_workloads.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Repro_core Repro_parrts Repro_util Repro_workloads
