(** Tests for the Eden layer: Trans dictionaries, one-shot channels,
    streams, process instantiation, and the middleware transports. *)

module Rts = Repro_parrts.Rts
module Api = Repro_parrts.Rts.Api
module Config = Repro_parrts.Config
module Cost = Repro_util.Cost
module Eden = Repro_core.Eden
module Machine = Repro_machine.Machine
module Transport = Repro_mp.Transport

let test_case = Alcotest.test_case
let check = Alcotest.check

let cfg ?(npes = 4) ?(transport = Transport.pvm) () =
  let machine = Machine.make ~name:"t" ~cores:npes ~clock_ghz:1.0 () in
  let c = Config.default ~machine ~ncaps:npes () in
  { c with heap_mode = Config.Distributed transport; migrate_threads = false }

let run ?npes ?transport f = fst (Rts.run (cfg ?npes ?transport ()) f)

(* ---------------- Transport cost profiles ---------------- *)

let transport_profiles () =
  check Alcotest.bool "pvm slower than mpi" true
    (Transport.flight_ns Transport.pvm 1000 > Transport.flight_ns Transport.mpi 1000);
  check Alcotest.bool "mpi slower than shm" true
    (Transport.flight_ns Transport.mpi 1000 > Transport.flight_ns Transport.shm 1000);
  check Alcotest.int "packets" 3 (Transport.packets Transport.pvm (80 * 1024));
  check Alcotest.int "min one packet" 1 (Transport.packets Transport.pvm 1);
  check Alcotest.bool "send side grows with size" true
    (Transport.send_side_ns Transport.pvm 100_000
     > Transport.send_side_ns Transport.pvm 100);
  (match Transport.by_name "mpi" with
  | t -> check Alcotest.string "by_name" "mpi" t.Transport.name);
  Alcotest.check_raises "unknown transport"
    (Invalid_argument "Transport.by_name: unknown \"bogus\"") (fun () ->
      ignore (Transport.by_name "bogus"))

(* ---------------- Trans ---------------- *)

let trans_sizes () =
  check Alcotest.bool "list bigger than element" true
    ((Eden.t_list Eden.t_int).Eden.bytes [ 1; 2; 3 ] > Eden.t_int.Eden.bytes 1);
  check Alcotest.int "float array size" (24 + 80)
    (Eden.t_float_array.Eden.bytes (Array.make 10 0.0));
  let m = Array.make_matrix 3 4 0.0 in
  check Alcotest.int "matrix size" (24 + (3 * (24 + 32)))
    (Eden.t_float_matrix.Eden.bytes m);
  check Alcotest.bool "pair adds up" true
    ((Eden.t_pair Eden.t_int Eden.t_float).Eden.bytes (1, 2.0)
     >= Eden.t_int.Eden.bytes 1 + Eden.t_float.Eden.bytes 2.0)

(* ---------------- Channels ---------------- *)

let chan_roundtrip () =
  let v = run (fun () ->
      let ch = Eden.new_chan () in
      ignore
        (Api.spawn ~cap:1 (fun () ->
             Api.charge (Cost.cycles 1000);
             Eden.send Eden.t_int ch 99));
      Eden.recv ch)
  in
  check Alcotest.int "value through channel" 99 v

let chan_local_loopback () =
  let v = run (fun () ->
      let ch = Eden.new_chan () in
      Eden.send Eden.t_int ch 7;
      Eden.recv ch)
  in
  check Alcotest.int "same-PE send" 7 v

let chan_wrong_pe_rejected () =
  Alcotest.check_raises "recv on wrong PE"
    (Failure "Eden.recv: channel received on a PE that does not own it")
    (fun () ->
      ignore
        (run (fun () ->
             let ch = Eden.new_chan_at ~pe:2 in
             ignore (Eden.recv ch))))

(* ---------------- Streams ---------------- *)

let stream_order_preserved () =
  let v = run (fun () ->
      let st = Eden.new_stream () in
      ignore
        (Api.spawn ~cap:1 (fun () ->
             Eden.put_list Eden.t_int st [ 1; 2; 3; 4; 5 ]));
      Eden.to_list st)
  in
  check Alcotest.(list int) "ordered" [ 1; 2; 3; 4; 5 ] v

let stream_interleaved_blocking () =
  (* consumer starts before the producer has produced: must block and
     resume per element *)
  let v = run (fun () ->
      let st = Eden.new_stream () in
      ignore
        (Api.spawn ~cap:1 (fun () ->
             for i = 1 to 3 do
               Api.charge (Cost.cycles 100_000);
               Eden.put Eden.t_int st i
             done;
             Eden.close st));
      let a = Eden.next st in
      let b = Eden.next st in
      let c = Eden.next st in
      let d = Eden.next st in
      [ a; b; c; d ])
  in
  check
    Alcotest.(list (option int))
    "stream with end mark"
    [ Some 1; Some 2; Some 3; None ]
    v

let stream_empty_closed () =
  let v = run (fun () ->
      let st : int Eden.stream = Eden.new_stream () in
      ignore (Api.spawn ~cap:1 (fun () -> Eden.close st));
      Eden.next st)
  in
  check Alcotest.(option int) "closed empty stream" None v

(* ---------------- spawn ---------------- *)

let spawn_computes_in_order () =
  let v = run (fun () ->
      Eden.spawn ~tr_in:Eden.t_int ~tr_out:Eden.t_int
        (fun x -> x * 10)
        [ 1; 2; 3; 4; 5; 6 ])
  in
  check Alcotest.(list int) "outputs in input order" [ 10; 20; 30; 40; 50; 60 ] v

let spawn_charges_messages () =
  let _, report =
    Rts.run (cfg ()) (fun () ->
        ignore
          (Eden.spawn ~tr_in:(Eden.t_list Eden.t_int) ~tr_out:Eden.t_int
             (List.fold_left ( + ) 0)
             [ [ 1; 2 ]; [ 3; 4 ]; [ 5 ] ]))
  in
  (* 3 instantiations + 3 inputs + 3 results, minus same-PE loop-backs *)
  check Alcotest.bool "messages flowed" true (report.Repro_parrts.Report.messages.sent >= 6)

let placement_round_robin () =
  let v = run ~npes:3 (fun () ->
      Eden.spawn ~tr_in:Eden.t_int ~tr_out:Eden.t_int
        (fun _ -> Api.my_cap ())
        [ 0; 0; 0; 0 ])
  in
  (* parent on PE 0; children on 1, 2, 0, 1 *)
  check Alcotest.(list int) "round robin placement" [ 1; 2; 0; 1 ] v

let qcheck_spawn_equals_map =
  QCheck.Test.make ~name:"Eden.spawn == List.map" ~count:40
    QCheck.(pair (int_range 2 6) (small_list small_nat))
    (fun (npes, xs) ->
      let got =
        run ~npes (fun () ->
            Eden.spawn ~tr_in:Eden.t_int ~tr_out:Eden.t_int (fun x -> x + 100) xs)
      in
      got = List.map (fun x -> x + 100) xs)

let suite =
  ( "eden",
    [
      test_case "transport profiles" `Quick transport_profiles;
      test_case "trans sizes" `Quick trans_sizes;
      test_case "channel roundtrip" `Quick chan_roundtrip;
      test_case "channel local loopback" `Quick chan_local_loopback;
      test_case "channel wrong PE rejected" `Quick chan_wrong_pe_rejected;
      test_case "stream order preserved" `Quick stream_order_preserved;
      test_case "stream blocking consumer" `Quick stream_interleaved_blocking;
      test_case "stream closed-empty" `Quick stream_empty_closed;
      test_case "spawn computes in order" `Quick spawn_computes_in_order;
      test_case "spawn sends messages" `Quick spawn_charges_messages;
      test_case "placement round robin" `Quick placement_round_robin;
      QCheck_alcotest.to_alcotest qcheck_spawn_equals_map;
    ] )
