(** Tests for the structured runtime event log and its derived
    statistics. *)

module Rts = Repro_parrts.Rts
module V = Repro_core.Versions
module Eventlog = Repro_trace.Eventlog
module Stats = Repro_util.Stats

let test_case = Alcotest.test_case
let check = Alcotest.check

let count log name =
  List.length
    (List.filter (fun (_, ev) -> Eventlog.event_name ev = name)
       (Eventlog.events log))

let gph_run_logs_consistently () =
  let _, report =
    Rts.run (V.gph_steal ~ncaps:4 ()).config (fun () ->
        ignore (Repro_workloads.Sumeuler.gph ~n:1500 ()))
  in
  let log = report.Repro_parrts.Report.eventlog in
  (* the log's counters must agree with the report's *)
  check Alcotest.int "spark creations agree" report.sparks.created
    (count log "spark-created");
  check Alcotest.int "spark steals agree" report.sparks.stolen
    (count log "spark-stolen");
  check Alcotest.int "thread creations agree" report.threads_created
    (count log "thread-created");
  check Alcotest.int "gc starts agree" report.gc.minors (count log "gc-started");
  check Alcotest.int "gc starts = gc finishes" (count log "gc-started")
    (count log "gc-finished")

let eden_run_logs_messages () =
  let _, report =
    Rts.run (V.eden ~npes:4 ()).config (fun () ->
        ignore (Repro_workloads.Sumeuler.eden ~n:800 ()))
  in
  let log = report.Repro_parrts.Report.eventlog in
  check Alcotest.int "messages agree" report.messages.sent
    (count log "message-sent");
  check Alcotest.int "every message delivered" (count log "message-sent")
    (count log "message-delivered")

let timestamps_monotone () =
  let _, report =
    Rts.run (V.gph_plain ~ncaps:2 ()).config (fun () ->
        ignore (Repro_workloads.Sumeuler.gph ~n:800 ()))
  in
  let log = report.Repro_parrts.Report.eventlog in
  let last = ref (-1) in
  List.iter
    (fun (time, _) ->
      if time < !last then Alcotest.fail "timestamps must be non-decreasing";
      last := time)
    (Eventlog.events log)

let summary_statistics () =
  let _, report =
    Rts.run (V.gph_plain ~ncaps:4 ()).config (fun () ->
        ignore (Repro_workloads.Sumeuler.gph ~n:3000 ()))
  in
  let log = report.Repro_parrts.Report.eventlog in
  let s = Eventlog.summarise ~ncaps:4 log in
  check Alcotest.bool "counts present" true (List.length s.counts > 3);
  check Alcotest.bool "gc gaps recorded" true (Stats.count s.gc_gaps_ns >= 1);
  check Alcotest.bool "gc pauses positive" true
    (Stats.count s.gc_pauses_ns >= 2 && Stats.mean s.gc_pauses_ns > 0.0);
  check Alcotest.bool "thread lifetimes recorded" true
    (Stats.count s.thread_lifetimes_ns > 10);
  (* dump renders *)
  let dump = Eventlog.dump log in
  check Alcotest.bool "dump non-empty" true (String.length dump > 1000)

let disabled_log_is_empty () =
  let cfg = { (V.gph_plain ~ncaps:2 ()).config with trace_enabled = false } in
  let _, report =
    Rts.run cfg (fun () -> ignore (Repro_workloads.Sumeuler.gph ~n:500 ()))
  in
  check Alcotest.int "no events recorded" 0
    (Eventlog.length report.Repro_parrts.Report.eventlog)

let suite =
  ( "eventlog",
    [
      test_case "gph counters agree" `Quick gph_run_logs_consistently;
      test_case "eden message events" `Quick eden_run_logs_messages;
      test_case "timestamps monotone" `Quick timestamps_monotone;
      test_case "summary statistics" `Quick summary_statistics;
      test_case "disabled log empty" `Quick disabled_log_is_empty;
    ] )
