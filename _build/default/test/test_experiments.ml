(** Integration tests: every figure's experiment at reduced size, with
    the paper's qualitative shape assertions. *)

module E = Repro_experiments

let test_case = Alcotest.test_case
let check = Alcotest.check

(* Fig. 1 at a size where the ordering is stable (the full size is run
   by the benchmark harness). *)
let fig1_ordering () =
  let r = E.Fig1.run ~n:8000 () in
  check Alcotest.int "five rows" 5 (List.length r.rows);
  check Alcotest.bool "each optimisation improves; Eden fastest" true
    (E.Fig1.ordering_holds r)

let fig1_table_renders () =
  let r = E.Fig1.run ~n:2000 () in
  let s = Repro_util.Tablefmt.to_string (E.Fig1.to_table r) in
  check Alcotest.bool "mentions Eden row" true
    (let needle = "Eden" in
     let nl = String.length needle and hl = String.length s in
     let rec go i = i + nl <= hl && (String.sub s i nl = needle || go (i + 1)) in
     go 0)

let fig2_traces () =
  let r = E.Fig2.run ~n:4000 () in
  check Alcotest.int "five traces" 5 (List.length r.traces);
  List.iter
    (fun (label, trace) ->
      let u = Repro_trace.Trace.utilisation trace in
      if u < 0.3 || u > 1.0 then
        Alcotest.fail (Printf.sprintf "%s: implausible utilisation %f" label u))
    r.traces;
  (* the work-stealing trace must be the busiest GpH trace *)
  let util label =
    Repro_trace.Trace.utilisation (List.assoc label r.traces)
  in
  check Alcotest.bool "stealing busier than plain" true
    (util "GpH, above + work stealing for sparks" > util "GpH in plain GHC-6.9");
  (* rendering works and contains one row per capability *)
  let rendered = E.Fig2.render ~width:60 r in
  check Alcotest.bool "rendered" true (String.length rendered > 1000)

let fig3_shapes () =
  let r = E.Fig3.run ~cores:[ 1; 4; 8; 16 ] ~n_euler:6000 ~n_mat:600 () in
  check Alcotest.bool "paper shapes hold" true (E.Fig3.shapes_hold r);
  (* each series has one speedup per core count, all positive, and the
     1-core point is 1.0 *)
  List.iter
    (fun (s : E.Exp.series) ->
      check Alcotest.int (s.s_label ^ " points") 4 (List.length s.speedups);
      (match s.speedups with
      | one :: _ -> check (Alcotest.float 1e-6) (s.s_label ^ " base") 1.0 one
      | [] -> Alcotest.fail "empty series");
      List.iter (fun sp -> if sp <= 0.0 then Alcotest.fail "non-positive speedup") s.speedups)
    (r.sumeuler @ r.matmul)

let fig4_shapes () =
  let r = E.Fig4.run ~n:600 () in
  check Alcotest.int "five entries" 5 (List.length r.entries);
  check Alcotest.bool
    "stealing best GpH; Eden 17 virtual PEs beats 9; Eden beats plain" true
    (E.Fig4.shapes_hold r)

let fig5_shapes () =
  let r = E.Fig5.run ~cores:[ 1; 4; 8; 16 ] ~n:300 () in
  check Alcotest.bool
    "lazy flattens, eager rescues, Eden scales (paper Fig. 5)" true
    (E.Fig5.shapes_hold r);
  (* the lazy work-stealing version must do markedly worse than eager *)
  let final name =
    let s = E.Fig5.by_label r name in
    match List.rev s.speedups with x :: _ -> x | [] -> 0.0
  in
  check Alcotest.bool "lazy stealing stays low" true
    (final "GpH + work stealing, lazy black-holing" < 4.0);
  check Alcotest.bool "Eden above all GpH versions" true
    (final "Eden ring (PVM)" > final "GpH + work stealing, eager black-holing")

let speedup_plot_renders () =
  let r = E.Fig5.run ~cores:[ 1; 2 ] ~n:60 () in
  let plot = E.Exp.render_speedup_plot r.series in
  check Alcotest.bool "plot non-empty" true (String.length plot > 100)

let paper_data_consistent () =
  check Alcotest.int "five fig1 rows" 5 (List.length E.Paper.fig1_runtimes_s);
  let times = List.map snd E.Paper.fig1_runtimes_s in
  let rec decreasing = function
    | a :: (b :: _ as r) -> a > b && decreasing r
    | _ -> true
  in
  check Alcotest.bool "paper's own rows decrease" true (decreasing times)

let suite =
  ( "experiments",
    [
      test_case "fig1 ordering" `Slow fig1_ordering;
      test_case "fig1 table renders" `Quick fig1_table_renders;
      test_case "fig2 traces plausible" `Slow fig2_traces;
      test_case "fig3 shapes" `Slow fig3_shapes;
      test_case "fig4 shapes" `Slow fig4_shapes;
      test_case "fig5 shapes" `Slow fig5_shapes;
      test_case "speedup plot renders" `Quick speedup_plot_renders;
      test_case "paper data consistent" `Quick paper_data_consistent;
    ] )
