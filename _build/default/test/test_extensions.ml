(** Tests for the extension features (DESIGN.md Sec. 5): spark-pool
    overflow, thread stealing, spark-runner ablation, and the extra
    workloads (parfib, Mandelbrot). *)

module Rts = Repro_parrts.Rts
module Api = Repro_parrts.Rts.Api
module Config = Repro_parrts.Config
module Report = Repro_parrts.Report
module Cost = Repro_util.Cost
module V = Repro_core.Versions
module W = Repro_workloads
module Machine = Repro_machine.Machine

let test_case = Alcotest.test_case
let check = Alcotest.check

let cfg ?(ncaps = 4) () =
  let machine = Machine.make ~name:"t" ~cores:ncaps ~clock_ghz:1.0 () in
  Config.default ~machine ~ncaps ()

(* ---------------- spark pool overflow ---------------- *)

let spark_pool_overflows () =
  let c = { (cfg ~ncaps:1 ()) with spark_pool_capacity = 8 } in
  let _, report = Rts.run c (fun () ->
      for _ = 1 to 100 do
        Api.spark ~still_needed:(fun () -> true) (fun () -> ())
      done)
  in
  check Alcotest.int "8 kept" 8 report.Report.sparks.created;
  check Alcotest.int "92 overflowed" 92 report.Report.sparks.overflowed

let spark_pool_default_capacity () =
  let _, report = Rts.run (cfg ~ncaps:1 ()) (fun () ->
      for _ = 1 to 5000 do
        Api.spark ~still_needed:(fun () -> true) (fun () -> ())
      done)
  in
  (* GHC default: 4096-entry ring *)
  check Alcotest.int "4096 kept" 4096 report.Report.sparks.created;
  check Alcotest.int "rest overflowed" 904 report.Report.sparks.overflowed

(* ---------------- thread stealing ---------------- *)

let thread_work ~nthreads () =
  let remaining = ref nthreads and waiter = ref None in
  for _ = 1 to nthreads do
    ignore
      (Api.spawn (fun () ->
           Api.charge (Cost.make 2_000_000 ~alloc:16_384);
           decr remaining;
           if !remaining = 0 then Option.iter (fun k -> k ()) !waiter))
  done;
  if !remaining > 0 then Api.block (fun wake -> waiter := Some wake)

let thread_stealing_pulls_work () =
  let base =
    {
      (cfg ~ncaps:4 ()) with
      load_balance = Config.Work_stealing;
      migrate_threads = false;
    }
  in
  let with_steal = { base with steal_threads = true } in
  let _, r_off = Rts.run base (thread_work ~nthreads:16) in
  let _, r_on = Rts.run with_steal (thread_work ~nthreads:16) in
  check Alcotest.int "no stealing when disabled" 0 r_off.Report.threads_stolen;
  check Alcotest.bool "threads stolen when enabled" true
    (r_on.Report.threads_stolen > 0);
  check Alcotest.bool "stealing improves elapsed time" true
    (r_on.Report.elapsed_ns < r_off.Report.elapsed_ns)

let thread_stealing_never_in_distributed () =
  let c =
    {
      (cfg ~ncaps:4 ()) with
      load_balance = Config.Work_stealing;
      steal_threads = true;
      migrate_threads = false;
      heap_mode = Config.Distributed Repro_mp.Transport.shm;
    }
  in
  let _, report = Rts.run c (thread_work ~nthreads:8) in
  check Alcotest.int "PE heaps confine threads" 0 report.Report.threads_stolen

(* ---------------- spark runner ablation ---------------- *)

let spark_threads_create_fewer_threads () =
  let work () =
    let remaining = ref 64 and waiter = ref None in
    for _ = 1 to 64 do
      Api.spark ~still_needed:(fun () -> true) (fun () ->
          Api.charge (Cost.make 500_000 ~alloc:4096);
          decr remaining;
          if !remaining = 0 then Option.iter (fun k -> k ()) !waiter)
    done;
    if !remaining > 0 then Api.block (fun wake -> waiter := Some wake)
  in
  let steal = { (cfg ~ncaps:4 ()) with load_balance = Config.Work_stealing } in
  let tps = { steal with spark_runner = Config.Thread_per_spark } in
  let st = { steal with spark_runner = Config.Spark_threads } in
  let _, r_tps = Rts.run tps work in
  let _, r_st = Rts.run st work in
  check Alcotest.bool "thread-per-spark creates one thread per spark" true
    (r_tps.Report.threads_created >= 64);
  check Alcotest.bool "spark threads amortise creation" true
    (r_st.Report.threads_created < r_tps.Report.threads_created / 4)

(* ---------------- parfib ---------------- *)

let parfib_known_values () =
  List.iter
    (fun (n, v) -> check Alcotest.int (Printf.sprintf "nfib %d" n) v (W.Parfib.reference n))
    [ (0, 1); (1, 1); (2, 3); (3, 5); (10, 177); (20, 21891) ]

let parfib_gph_correct () =
  let v, report =
    Rts.run (V.gph_steal ~ncaps:4 ()).config (fun () ->
        W.Parfib.gph ~n:18 ~threshold:8 ())
  in
  check Alcotest.int "value" (W.Parfib.reference 18) v;
  check Alcotest.bool "sparked a lot" true (report.Report.sparks.created > 50)

let parfib_threshold_above_n_is_sequential () =
  let _, report =
    Rts.run (V.gph_steal ~ncaps:4 ()).config (fun () ->
        ignore (W.Parfib.gph ~n:12 ~threshold:13 ()))
  in
  check Alcotest.int "no sparks" 0 report.Report.sparks.created

let parfib_eden_correct () =
  List.iter
    (fun depth ->
      let v, _ =
        Rts.run (V.eden ~npes:4 ()).config (fun () ->
            W.Parfib.eden ~n:16 ~depth ())
      in
      check Alcotest.int (Printf.sprintf "depth %d" depth)
        (W.Parfib.reference 16) v)
    [ 0; 1; 2; 3 ]

let qcheck_parfib =
  QCheck.Test.make ~name:"parfib == nfib (any n, threshold)" ~count:25
    QCheck.(pair (int_range 3 16) (int_range 1 18))
    (fun (n, threshold) ->
      (* the shrinker can step outside the generator's range *)
      let n = max 3 n and threshold = max 1 threshold in
      let v, _ =
        Rts.run (V.gph_steal ~ncaps:3 ()).config (fun () ->
            W.Parfib.gph ~n ~threshold ())
      in
      v = W.Parfib.reference n)

let parfib_granularity_tradeoff () =
  (* very fine granularity must create many more sparks than coarse *)
  let sparks threshold =
    let _, r =
      Rts.run (V.gph_steal ~ncaps:4 ()).config (fun () ->
          ignore (W.Parfib.gph ~n:20 ~threshold ()))
    in
    r.Report.sparks.created + r.Report.sparks.overflowed
  in
  check Alcotest.bool "finer threshold = more sparks" true
    (sparks 5 > 10 * sparks 15)

(* ---------------- mandelbrot ---------------- *)

let mandelbrot_variants_agree () =
  let width = 48 and height = 24 in
  let want = W.Mandelbrot.reference ~width ~height () in
  let g, _ =
    Rts.run (V.gph_steal ~ncaps:4 ()).config (fun () ->
        W.Mandelbrot.gph ~width ~height ())
  in
  let mw, _ =
    Rts.run (V.eden ~npes:4 ()).config (fun () ->
        W.Mandelbrot.eden_mw ~width ~height ())
  in
  let farm, _ =
    Rts.run (V.eden ~npes:4 ()).config (fun () ->
        W.Mandelbrot.eden_farm ~width ~height ())
  in
  check Alcotest.int "gph" want g;
  check Alcotest.int "master-worker" want mw;
  check Alcotest.int "farm" want farm

let mandelbrot_escape_sanity () =
  (* the origin never escapes; a point far outside escapes immediately *)
  check Alcotest.int "origin maxes out" 255 (W.Mandelbrot.escape ~max_iter:255 0.0 0.0);
  check Alcotest.int "outside escapes fast" 1
    (W.Mandelbrot.escape ~max_iter:255 10.0 10.0)

let mandelbrot_rows_irregular () =
  (* row costs must differ substantially across the image *)
  let view = W.Mandelbrot.default_view in
  let _, t_edge = W.Mandelbrot.compute_row ~view ~width:64 ~height:64 0 in
  let _, t_mid = W.Mandelbrot.compute_row ~view ~width:64 ~height:64 32 in
  check Alcotest.bool "middle rows cost more" true (t_mid > 2 * t_edge)

let suite =
  ( "extensions",
    [
      test_case "spark pool overflows" `Quick spark_pool_overflows;
      test_case "spark pool default capacity" `Quick spark_pool_default_capacity;
      test_case "thread stealing pulls work" `Quick thread_stealing_pulls_work;
      test_case "thread stealing not in distributed mode" `Quick
        thread_stealing_never_in_distributed;
      test_case "spark threads amortise creation" `Quick
        spark_threads_create_fewer_threads;
      test_case "parfib known values" `Quick parfib_known_values;
      test_case "parfib gph correct" `Quick parfib_gph_correct;
      test_case "parfib threshold above n" `Quick parfib_threshold_above_n_is_sequential;
      test_case "parfib eden depths" `Quick parfib_eden_correct;
      QCheck_alcotest.to_alcotest qcheck_parfib;
      test_case "parfib granularity tradeoff" `Quick parfib_granularity_tradeoff;
      test_case "mandelbrot variants agree" `Quick mandelbrot_variants_agree;
      test_case "mandelbrot escape sanity" `Quick mandelbrot_escape_sanity;
      test_case "mandelbrot rows irregular" `Quick mandelbrot_rows_irregular;
    ] )
