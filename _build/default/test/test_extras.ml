(** Tests for the later additions: divide-and-conquer skeletons (Eden
    and GpH), the SVG trace renderer and the calibration-sensitivity
    harness. *)

module Rts = Repro_parrts.Rts
module Config = Repro_parrts.Config
module Cost = Repro_util.Cost
module Gph = Repro_core.Gph
module Eden = Repro_core.Eden
module Sk = Repro_core.Skeletons
module Machine = Repro_machine.Machine
module E = Repro_experiments

let test_case = Alcotest.test_case
let check = Alcotest.check

let eden_cfg ?(npes = 4) () =
  let machine = Machine.make ~name:"t" ~cores:npes ~clock_ghz:1.0 () in
  let c = Config.default ~machine ~ncaps:npes () in
  {
    c with
    heap_mode = Config.Distributed Repro_mp.Transport.shm;
    migrate_threads = false;
  }

let gph_cfg ?(ncaps = 4) () =
  let machine = Machine.make ~name:"t" ~cores:ncaps ~clock_ghz:1.0 () in
  { (Config.default ~machine ~ncaps ()) with load_balance = Config.Work_stealing }

(* d&c problem: sum an integer range by halving. *)
let range_sum_dc ~via (lo, hi) =
  let divide (lo, hi) =
    let mid = (lo + hi) / 2 in
    [ (lo, mid); (mid + 1, hi) ]
  in
  let is_trivial (lo, hi) = hi - lo < 8 in
  let solve (lo, hi) =
    let s = ref 0 in
    for i = lo to hi do
      s := !s + i
    done;
    !s
  in
  let combine _ = List.fold_left ( + ) 0 in
  match via with
  | `Eden ->
      Sk.div_conquer ~tr:Eden.t_int ~depth:2 ~divide ~is_trivial ~solve
        ~combine (lo, hi)
  | `Gph ->
      Gph.div_conquer ~depth:4 ~divide ~is_trivial
        ~solve_cost:(fun (lo, hi) -> Cost.make (50 * (hi - lo + 1)) ~alloc:64)
        ~solve ~combine (lo, hi)

let closed_form lo hi = ((hi * (hi + 1)) - (lo * (lo - 1))) / 2

let dc_eden () =
  let v = fst (Rts.run (eden_cfg ()) (fun () -> range_sum_dc ~via:`Eden (1, 1000))) in
  check Alcotest.int "eden d&c sum" (closed_form 1 1000) v

let dc_gph () =
  let v = fst (Rts.run (gph_cfg ()) (fun () -> range_sum_dc ~via:`Gph (1, 1000))) in
  check Alcotest.int "gph d&c sum" (closed_form 1 1000) v

let dc_gph_sparks () =
  let _, report =
    Rts.run (gph_cfg ()) (fun () -> ignore (range_sum_dc ~via:`Gph (1, 5000)))
  in
  check Alcotest.bool "d&c sparked sub-trees" true
    (report.Repro_parrts.Report.sparks.created > 4)

let qcheck_dc =
  QCheck.Test.make ~name:"d&c sum == closed form (both backends)" ~count:20
    QCheck.(pair (int_range 1 50) (int_range 51 2000))
    (fun (lo, hi) ->
      let lo = max 1 lo and hi = max 51 hi in
      let e = fst (Rts.run (eden_cfg ()) (fun () -> range_sum_dc ~via:`Eden (lo, hi))) in
      let g = fst (Rts.run (gph_cfg ()) (fun () -> range_sum_dc ~via:`Gph (lo, hi))) in
      e = closed_form lo hi && g = closed_form lo hi)

(* ---------------- SVG renderer ---------------- *)

let svg_renders () =
  let _, report =
    Rts.run (gph_cfg ~ncaps:2 ()) (fun () ->
        ignore (Repro_workloads.Sumeuler.gph ~n:400 ()))
  in
  let svg =
    Repro_trace.Render_svg.render ~title:"test <&> title" report.trace
  in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "is svg" true (contains svg "<svg");
  check Alcotest.bool "closes svg" true (contains svg "</svg>");
  check Alcotest.bool "escapes title" true (contains svg "&lt;&amp;&gt;");
  check Alcotest.bool "has rows for both caps" true
    (contains svg "cap 0" && contains svg "cap 1");
  check Alcotest.bool "uses running colour" true (contains svg "#2e8b57")

let svg_to_file () =
  let trace = Repro_trace.Trace.create ~caps:1 in
  Repro_trace.Trace.set_state trace ~time:0 ~cap:0 Repro_trace.Trace.Running;
  Repro_trace.Trace.finish trace ~time:100;
  let path = Filename.temp_file "repro_trace" ".svg" in
  Repro_trace.Render_svg.to_file trace path;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  check Alcotest.bool "file written" true (len > 200)

(* ---------------- sensitivity ---------------- *)

let sensitivity_shapes_robust () =
  let r = E.Sensitivity.run ~n:6000 () in
  check Alcotest.int "12 perturbations" 12 (List.length r.outcomes);
  check Alcotest.bool "weak shape robust to every perturbation" true
    (E.Sensitivity.all_weak r);
  check Alcotest.bool "strong ordering holds for >= 75%" true
    (E.Sensitivity.strong_fraction r >= 0.75)

let suite =
  ( "extras",
    [
      test_case "d&c eden" `Quick dc_eden;
      test_case "d&c gph" `Quick dc_gph;
      test_case "d&c gph sparks" `Quick dc_gph_sparks;
      QCheck_alcotest.to_alcotest qcheck_dc;
      test_case "svg renders" `Quick svg_renders;
      test_case "svg to file" `Quick svg_to_file;
      test_case "sensitivity: shapes robust" `Slow sensitivity_shapes_robust;
    ] )
