(** Tests for the GpH layer: par/seq, force semantics under both
    black-holing policies, evaluation strategies. *)

module Rts = Repro_parrts.Rts
module Api = Repro_parrts.Rts.Api
module Config = Repro_parrts.Config
module Cost = Repro_util.Cost
module Gph = Repro_core.Gph
module Machine = Repro_machine.Machine

let test_case = Alcotest.test_case
let check = Alcotest.check

let cfg ?(ncaps = 4) ?(blackholing = Config.Lazy_bh) () =
  let machine = Machine.make ~name:"t" ~cores:ncaps ~clock_ghz:1.0 () in
  let c = Config.default ~machine ~ncaps () in
  { c with blackholing; load_balance = Config.Work_stealing }

let run ?ncaps ?blackholing f = fst (Rts.run (cfg ?ncaps ?blackholing ()) f)

let force_memoises () =
  let v = run (fun () ->
      let count = ref 0 in
      let n = Gph.thunk ~cost:(Cost.cycles 100) (fun () -> incr count; 5) in
      let a = Gph.force n in
      let b = Gph.force n in
      (a, b, !count))
  in
  check Alcotest.(triple int int int) "evaluated once" (5, 5, 1) v

let return_is_value () =
  let v = run (fun () ->
      let n = Gph.return 9 in
      Gph.force n)
  in
  check Alcotest.int "return" 9 v

let par_evaluates_in_background () =
  let v = run (fun () ->
      let n = Gph.thunk ~cost:(Cost.make 100_000 ~alloc:4096) (fun () -> 11) in
      Gph.par n;
      (* give the spark time to be stolen and run *)
      Api.charge (Cost.make 10_000_000 ~alloc:65536);
      let was_done = Repro_heap.Node.is_value n in
      (was_done, Gph.force n))
  in
  check Alcotest.(pair bool int) "spark evaluated it" (true, 11) v

let seq_forces_now () =
  let v = run (fun () ->
      let n = Gph.thunk ~cost:(Cost.cycles 10) (fun () -> 3) in
      Gph.seq n;
      Repro_heap.Node.is_value n)
  in
  check Alcotest.bool "forced" true v

let strategies_equal_sequential () =
  let xs = List.init 30 (fun i -> i * i) in
  let v = run (fun () ->
      let nodes =
        List.map (fun x -> Gph.thunk ~cost:(Cost.cycles 1000) (fun () -> x + 1)) xs
      in
      Gph.par_list Gph.rwhnf nodes;
      List.map Gph.force nodes)
  in
  check Alcotest.(list int) "parList == map" (List.map (fun x -> x + 1) xs) v

let using_returns_argument () =
  let v = run (fun () ->
      let n = Gph.thunk ~cost:(Cost.cycles 5) (fun () -> 1) in
      let n' = Gph.using n Gph.rwhnf in
      Repro_heap.Node.is_value n' && Gph.force n' = 1)
  in
  check Alcotest.bool "using" true v

let r0_does_nothing () =
  let v = run (fun () ->
      let n = Gph.thunk ~cost:(Cost.cycles 5) (fun () -> 1) in
      Gph.r0 n;
      Repro_heap.Node.is_value n)
  in
  check Alcotest.bool "r0 leaves thunk" false v

let par_chunks_correct () =
  let xs = List.init 97 (fun i -> i + 1) in
  let v = run (fun () ->
      Gph.par_chunks ~chunks:8
        ~cost:(fun piece -> Cost.cycles (100 * List.length piece))
        ~f:(List.fold_left ( + ) 0)
        ~combine:(List.fold_left ( + ) 0)
        xs)
  in
  check Alcotest.int "sum" (97 * 98 / 2) v

let par_map_correct () =
  let v = run (fun () ->
      Gph.par_map ~cost:(fun _ -> Cost.cycles 500) (fun x -> x * 3)
        [ 1; 2; 3; 4; 5 ])
  in
  check Alcotest.(list int) "par_map" [ 3; 6; 9; 12; 15 ] v

(* Under eager black-holing, a shared thunk forced by many sparks must
   be evaluated exactly once; under lazy black-holing it may be
   duplicated but the result must still be correct. *)
let shared_thunk_eager_once () =
  let count, res = run ~blackholing:Config.Eager_bh (fun () ->
      let count = ref 0 in
      let shared =
        Gph.thunk ~cost:(Cost.make 500_000 ~alloc:8192) (fun () ->
            incr count;
            42)
      in
      let users =
        List.init 8 (fun _ ->
            Gph.thunk ~cost:(Cost.make 1_000 ~alloc:128) (fun () ->
                Gph.force shared + 1))
      in
      Gph.par_list Gph.rwhnf users;
      let sum = List.fold_left (fun a n -> a + Gph.force n) 0 users in
      (!count, sum))
  in
  check Alcotest.int "exactly one evaluation" 1 count;
  check Alcotest.int "all users correct" (8 * 43) res

let shared_thunk_lazy_correct () =
  let count, res = run ~blackholing:Config.Lazy_bh (fun () ->
      let count = ref 0 in
      let shared =
        Gph.thunk ~cost:(Cost.make 500_000 ~alloc:8192) (fun () ->
            incr count;
            42)
      in
      let users =
        List.init 8 (fun _ ->
            Gph.thunk ~cost:(Cost.make 1_000 ~alloc:128) (fun () ->
                Gph.force shared + 1))
      in
      Gph.par_list Gph.rwhnf users;
      let sum = List.fold_left (fun a n -> a + Gph.force n) 0 users in
      (!count, sum))
  in
  check Alcotest.bool "evaluated at least once" true (count >= 1);
  check Alcotest.int "result correct despite duplication" (8 * 43) res

let qcheck_par_chunks_equals_seq =
  QCheck.Test.make ~name:"par_chunks sum == sequential sum (any list, any chunking)"
    ~count:60
    QCheck.(pair (int_range 1 16) (small_list small_nat))
    (fun (chunks, xs) ->
      QCheck.assume (xs <> []);
      let expect = List.fold_left ( + ) 0 xs in
      let got =
        run (fun () ->
            Gph.par_chunks ~chunks
              ~cost:(fun piece -> Cost.cycles (10 * (1 + List.length piece)))
              ~f:(List.fold_left ( + ) 0)
              ~combine:(List.fold_left ( + ) 0)
              xs)
      in
      got = expect)

let qcheck_par_map_equals_map =
  QCheck.Test.make ~name:"par_map == List.map (any ncaps)" ~count:40
    QCheck.(pair (int_range 1 8) (small_list (int_range (-1000) 1000)))
    (fun (ncaps, xs) ->
      let got =
        run ~ncaps (fun () ->
            Gph.par_map ~cost:(fun _ -> Cost.cycles 200) (fun x -> (2 * x) - 7) xs)
      in
      got = List.map (fun x -> (2 * x) - 7) xs)

let suite =
  ( "gph",
    [
      test_case "force memoises" `Quick force_memoises;
      test_case "return is a value" `Quick return_is_value;
      test_case "par evaluates in background" `Quick par_evaluates_in_background;
      test_case "seq forces now" `Quick seq_forces_now;
      test_case "parList == map" `Quick strategies_equal_sequential;
      test_case "using returns its argument" `Quick using_returns_argument;
      test_case "r0 does nothing" `Quick r0_does_nothing;
      test_case "par_chunks correct" `Quick par_chunks_correct;
      test_case "par_map correct" `Quick par_map_correct;
      test_case "shared thunk: eager evaluates once" `Quick shared_thunk_eager_once;
      test_case "shared thunk: lazy stays correct" `Quick shared_thunk_lazy_correct;
      QCheck_alcotest.to_alcotest qcheck_par_chunks_equals_seq;
      QCheck_alcotest.to_alcotest qcheck_par_map_equals_map;
    ] )
