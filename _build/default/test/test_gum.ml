(** Tests for the GUM layer: fishing work distribution, global
    addresses with FETCH, weighted reference counting. *)

module Rts = Repro_parrts.Rts
module Api = Repro_parrts.Rts.Api
module Config = Repro_parrts.Config
module Cost = Repro_util.Cost
module V = Repro_core.Versions
module Gum = Repro_core.Gum
module W = Repro_workloads

let test_case = Alcotest.test_case
let check = Alcotest.check

let run ?(npes = 4) f = Rts.run (V.gum ~npes ()).config (fun () -> Gum.main f)

let sumeuler_correct () =
  let n = 1200 in
  let v, _ =
    Rts.run (V.gum ~npes:4 ()).config (fun () -> W.Sumeuler.gum ~n ())
  in
  check Alcotest.int "value" (W.Euler.sum_euler_ref n) v

let fishing_distributes_work () =
  let (value, st), report = run ~npes:4 (fun () ->
      let caps_used = Array.make 4 false in
      let pieces = Repro_util.Listx.unshuffle 16 (List.init 400 (fun i -> i + 1)) in
      let sum =
        Gum.par_chunk_sum
          ~chunk_cost:(fun ks -> Cost.make (50_000 * List.length ks) ~alloc:(256 * List.length ks))
          ~f:(fun ks ->
            caps_used.(Api.my_cap ()) <- true;
            List.fold_left ( + ) 0 ks)
          pieces
      in
      (sum + (if Array.for_all Fun.id caps_used then 0 else 0), Gum.stats ()))
  in
  check Alcotest.int "sum" (400 * 401 / 2) value;
  check Alcotest.bool "fish messages sent" true (st.Gum.fish_sent > 0);
  check Alcotest.bool "schedules granted" true (st.Gum.schedules > 0);
  check Alcotest.bool "protocol messages counted" true
    (report.Repro_parrts.Report.messages.sent > st.Gum.schedules)

let nofish_when_no_work () =
  let st, _ = run ~npes:3 (fun () ->
      (* no sparks at all: fishers fish, victims refuse, main finishes *)
      Api.charge (Cost.make 5_000_000 ~alloc:100_000);
      Gum.stats ())
  in
  check Alcotest.bool "refusals happened" true (st.Gum.nofish > 0);
  check Alcotest.int "nothing scheduled" 0 st.Gum.schedules

let fetch_returns_and_caches () =
  let (v1, v2, fetches), report = run ~npes:2 (fun () ->
      let g = Gum.global ~bytes:8192 [| 1; 2; 3 |] in
      let out = ref None in
      let waiter = ref None in
      ignore
        (Api.spawn ~cap:1 (fun () ->
             (* first fetch: remote, pays messages; second: cached *)
             let a = (Gum.fetch g).(0) in
             let b = (Gum.fetch g).(1) in
             out := Some (a, b);
             Option.iter (fun k -> k ()) !waiter));
      if !out = None then Api.block (fun wake -> waiter := Some wake);
      let a, b = Option.get !out in
      (a, b, (Gum.stats ()).Gum.fetches))
  in
  check Alcotest.int "first element" 1 v1;
  check Alcotest.int "second element" 2 v2;
  check Alcotest.int "only one FETCH (second hit the cache)" 1 fetches;
  (* FETCH + RESUME at least *)
  check Alcotest.bool "messages flowed" true
    (report.Repro_parrts.Report.messages.sent >= 2)

let owner_fetch_is_free () =
  let fetches, report = run ~npes:2 (fun () ->
      let g = Gum.global ~bytes:1024 42 in
      let v = Gum.fetch g in
      assert (v = 42);
      (Gum.stats ()).Gum.fetches)
  in
  check Alcotest.int "no FETCH for the owner" 0 fetches;
  check Alcotest.int "no messages" 0 report.Repro_parrts.Report.messages.sent

let weighted_rc_no_leaks () =
  let live, _ = run ~npes:2 (fun () ->
      let gs = List.init 10 (fun i -> Gum.global ~bytes:64 i) in
      check Alcotest.int "ten live entries" 10 (Gum.live_gaddrs ());
      List.iter Gum.release gs;
      Gum.live_gaddrs ())
  in
  check Alcotest.int "all entries reclaimed" 0 live

let weight_splitting () =
  let live, _ = run ~npes:2 (fun () ->
      let g = Gum.global ~bytes:64 7 in
      (* simulate shipping: split weight off, then return both parts *)
      let w1 = Gum.split_weight g in
      let w2 = Gum.split_weight g in
      check Alcotest.bool "weights positive" true (w1 > 0 && w2 > 0);
      (* returning only the split parts must NOT free the entry *)
      Gum.return_weight (Gum.ctx ()) g w1;
      Gum.return_weight (Gum.ctx ()) g w2;
      check Alcotest.int "entry still live" 1 (Gum.live_gaddrs ());
      Gum.release g;
      Gum.live_gaddrs ())
  in
  check Alcotest.int "freed after full return" 0 live

let requires_distributed_mode () =
  match
    Rts.run (V.gph_plain ~ncaps:2 ()).config (fun () -> Gum.main (fun () -> ()))
  with
  | exception Failure msg ->
      check Alcotest.bool "error mentions requirement" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "Gum.main must reject shared-heap configurations"

let gum_vs_eden_overhead () =
  (* GUM's passive distribution must cost (many) more messages than
     Eden's explicit processes on the same problem *)
  let n = 2000 in
  let _, gum_rep =
    Rts.run (V.gum ~npes:4 ()).config (fun () -> W.Sumeuler.gum ~n ())
  in
  let _, eden_rep =
    Rts.run (V.eden ~npes:4 ()).config (fun () -> W.Sumeuler.eden ~n ())
  in
  check Alcotest.bool "gum sends more messages" true
    (gum_rep.Repro_parrts.Report.messages.sent
     > 4 * eden_rep.Repro_parrts.Report.messages.sent)

let suite =
  ( "gum",
    [
      test_case "sumEuler on GUM correct" `Quick sumeuler_correct;
      test_case "fishing distributes work" `Quick fishing_distributes_work;
      test_case "NOFISH when no work" `Quick nofish_when_no_work;
      test_case "fetch returns and caches" `Quick fetch_returns_and_caches;
      test_case "owner fetch is free" `Quick owner_fetch_is_free;
      test_case "weighted RC: no leaks" `Quick weighted_rc_no_leaks;
      test_case "weighted RC: splitting" `Quick weight_splitting;
      test_case "requires distributed mode" `Quick requires_distributed_mode;
      test_case "gum vs eden message overhead" `Quick gum_vs_eden_overhead;
    ] )
