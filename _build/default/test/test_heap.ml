(** Tests for the reified lazy heap (thunks, black holes) and the GC
    cost model. *)

module Node = Repro_heap.Node
module Gc_model = Repro_heap.Gc_model

let test_case = Alcotest.test_case
let check = Alcotest.check

let thunk_lifecycle () =
  let reg = Node.registry () in
  let n = Node.thunk reg (fun () -> 41 + 1) in
  check Alcotest.bool "not value" false (Node.is_value n);
  check Alcotest.(option int) "peek none" None (Node.peek n);
  (match Node.enter ~eager:false n with
  | Node.Evaluate f ->
      let v = f () in
      check Alcotest.bool "update installs" true (Node.update n v)
  | _ -> Alcotest.fail "expected Evaluate");
  check Alcotest.bool "is value" true (Node.is_value n);
  check Alcotest.(option int) "peek" (Some 42) (Node.peek n);
  (match Node.enter ~eager:false n with
  | Node.Ready v -> check Alcotest.int "ready" 42 v
  | _ -> Alcotest.fail "expected Ready");
  check Alcotest.int "get_value" 42 (Node.get_value n)

let eager_marks_blackhole () =
  let reg = Node.registry () in
  let n = Node.thunk reg (fun () -> 1) in
  (match Node.enter ~eager:true n with
  | Node.Evaluate _ -> ()
  | _ -> Alcotest.fail "expected Evaluate");
  check Alcotest.bool "black-holed" true (Node.is_blackhole n);
  (* a second entry must wait *)
  (match Node.enter ~eager:true n with
  | Node.Wait -> ()
  | _ -> Alcotest.fail "expected Wait");
  check Alcotest.int "blocked force counted" 1 reg.Node.blocked_forces

let lazy_allows_duplicates () =
  let reg = Node.registry () in
  let n = Node.thunk reg (fun () -> 7) in
  (match Node.enter ~eager:false n with
  | Node.Evaluate _ -> ()
  | _ -> Alcotest.fail "first entry");
  (* second concurrent entry duplicates instead of waiting *)
  (match Node.enter ~eager:false n with
  | Node.Evaluate _ -> ()
  | _ -> Alcotest.fail "second entry should duplicate");
  check Alcotest.int "duplicate counted" 1 reg.Node.dup_entries;
  ignore (Node.update n 7);
  check Alcotest.bool "second update is duplicate" false (Node.update n 7);
  check Alcotest.int "dup update counted" 1 reg.Node.dup_updates

let retroactive_blackholing () =
  let reg = Node.registry () in
  let n = Node.thunk reg (fun () -> 7) in
  (match Node.enter ~eager:false n with
  | Node.Evaluate _ -> ()
  | _ -> Alcotest.fail "enter");
  check Alcotest.bool "marks unevaluated" true (Node.blackhole_if_unevaluated n);
  check Alcotest.bool "now a black hole" true (Node.is_blackhole n);
  check Alcotest.bool "idempotent" false (Node.blackhole_if_unevaluated n);
  (* a boxed value is never marked *)
  let v = Node.value reg 1 in
  Node.blackhole_boxed (Node.Boxed v);
  check Alcotest.bool "value untouched" true (Node.is_value v)

let waiters_fire_once () =
  let reg = Node.registry () in
  let n = Node.thunk reg (fun () -> 3) in
  ignore (Node.enter ~eager:true n);
  let fired = ref 0 in
  Node.add_waiter n (fun () -> incr fired);
  Node.add_waiter n (fun () -> incr fired);
  check Alcotest.int "registered" 2 (Node.waiters_count n);
  ignore (Node.update n 3);
  check Alcotest.int "both woken" 2 !fired;
  check Alcotest.int "list cleared" 0 (Node.waiters_count n);
  (* waiter added after the value fires immediately (no lost wakeup) *)
  Node.add_waiter n (fun () -> incr fired);
  check Alcotest.int "immediate wake" 3 !fired

let registry_counts () =
  let reg = Node.registry () in
  let a = Node.thunk reg (fun () -> 1) in
  let _b = Node.thunk reg (fun () -> 2) in
  check Alcotest.int "created" 2 reg.Node.created;
  ignore (Node.enter ~eager:false a);
  check Alcotest.int "entered" 1 reg.Node.entered;
  ignore (Node.update a 1);
  check Alcotest.int "updates" 1 reg.Node.updates

(* ---------------- GC cost model ---------------- *)

let gc_minor_scaling () =
  let g = Gc_model.default in
  let p1 = Gc_model.minor_pause_ns g ~ncaps:8 ~allocated:(1 lsl 20) in
  let p2 = Gc_model.minor_pause_ns g ~ncaps:8 ~allocated:(1 lsl 24) in
  check Alcotest.bool "pause grows with allocation" true (p2 > p1);
  let p_few_caps = Gc_model.minor_pause_ns g ~ncaps:1 ~allocated:(1 lsl 20) in
  check Alcotest.bool "barrier term grows with caps" true (p1 > p_few_caps)

let gc_sync_modes () =
  let g = Gc_model.default in
  let gi = Gc_model.improved_sync g in
  check Alcotest.bool "improved is cheaper" true
    (Gc_model.sync_entry_ns gi < Gc_model.sync_entry_ns g);
  let pl = Gc_model.minor_pause_ns g ~ncaps:8 ~allocated:(1 lsl 22) in
  let pi = Gc_model.minor_pause_ns gi ~ncaps:8 ~allocated:(1 lsl 22) in
  check Alcotest.bool "improved pause smaller" true (pi < pl)

let gc_big_area () =
  let g = Gc_model.big_area Gc_model.default in
  check Alcotest.int "8 MB" (8 * 1024 * 1024) g.Gc_model.alloc_area;
  let g2 = Gc_model.big_area ~bytes:(2 * 1024 * 1024) Gc_model.default in
  check Alcotest.int "custom" (2 * 1024 * 1024) g2.Gc_model.alloc_area

let gc_independent () =
  let g = Gc_model.default in
  let minor =
    Gc_model.independent_pause_ns g ~allocated:(1 lsl 20) ~resident:(1 lsl 24)
      ~is_major:false
  in
  let major =
    Gc_model.independent_pause_ns g ~allocated:(1 lsl 20) ~resident:(1 lsl 24)
      ~is_major:true
  in
  check Alcotest.bool "major traces resident set" true (major > minor);
  (* independent minor has no per-capability barrier term *)
  let barrier = Gc_model.minor_pause_ns g ~ncaps:16 ~allocated:(1 lsl 20) in
  check Alcotest.bool "no barrier term" true (minor < barrier)

let gc_qcheck_monotone =
  QCheck.Test.make ~name:"minor pause monotone in allocated bytes" ~count:100
    QCheck.(pair (int_range 0 1_000_000) (int_range 0 1_000_000))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      Gc_model.minor_pause_ns Gc_model.default ~ncaps:4 ~allocated:lo
      <= Gc_model.minor_pause_ns Gc_model.default ~ncaps:4 ~allocated:hi)

let suite =
  ( "heap",
    [
      test_case "thunk lifecycle" `Quick thunk_lifecycle;
      test_case "eager marks black hole" `Quick eager_marks_blackhole;
      test_case "lazy allows duplicates" `Quick lazy_allows_duplicates;
      test_case "retroactive black-holing" `Quick retroactive_blackholing;
      test_case "waiters fire exactly once" `Quick waiters_fire_once;
      test_case "registry counts" `Quick registry_counts;
      test_case "gc minor scaling" `Quick gc_minor_scaling;
      test_case "gc sync modes" `Quick gc_sync_modes;
      test_case "gc big area" `Quick gc_big_area;
      test_case "gc independent collections" `Quick gc_independent;
      QCheck_alcotest.to_alcotest gc_qcheck_monotone;
    ] )
