(** Tests for the runtime-system simulator: charging, scheduling,
    blocking, sparks, GC barriers, distributed mode, messaging,
    determinism. *)

module Rts = Repro_parrts.Rts
module Api = Repro_parrts.Rts.Api
module Config = Repro_parrts.Config
module Report = Repro_parrts.Report
module Cost = Repro_util.Cost
module Machine = Repro_machine.Machine
module Gc_model = Repro_heap.Gc_model
module Transport = Repro_mp.Transport

let test_case = Alcotest.test_case
let check = Alcotest.check

(* A 1 GHz single-socket machine makes cycle/ns arithmetic exact. *)
let m1ghz cores = Machine.make ~name:"test1ghz" ~cores ~clock_ghz:1.0 ()

let cfg ?(ncaps = 4) ?(cores = ncaps) () =
  let c = Config.default ~machine:(m1ghz cores) ~ncaps () in
  { c with trace_enabled = true }

let charge_advances_time () =
  let v, report = Rts.run (cfg ~ncaps:1 ()) (fun () ->
      Api.charge (Cost.cycles 1_000_000);
      Api.now_ns ())
  in
  (* 1e6 cycles at 1 GHz = 1e6 ns *)
  check Alcotest.int "1M cycles -> 1ms" 1_000_000 v;
  check Alcotest.int "elapsed equals" 1_000_000 report.Report.elapsed_ns

let charge_zero_is_free () =
  let v, _ = Rts.run (cfg ~ncaps:1 ()) (fun () ->
      Api.charge Cost.zero;
      Api.now_ns ())
  in
  check Alcotest.int "no time" 0 v

let spawn_and_join () =
  let v, report = Rts.run (cfg ~ncaps:2 ()) (fun () ->
      let done_flag = ref false in
      let waiters = ref [] in
      ignore
        (Api.spawn (fun () ->
             Api.charge (Cost.cycles 1000);
             done_flag := true;
             List.iter (fun k -> k ()) !waiters;
             waiters := []));
      if not !done_flag then
        Api.block (fun wake -> waiters := wake :: !waiters);
      !done_flag)
  in
  check Alcotest.bool "child ran" true v;
  check Alcotest.int "two threads" 2 report.Report.threads_created

let block_and_wake_ordering () =
  (* The blocked thread must resume only after the waker fires. *)
  let v, _ = Rts.run (cfg ~ncaps:2 ()) (fun () ->
      let cell = ref None in
      let waiter = ref None in
      ignore
        (Api.spawn (fun () ->
             Api.charge (Cost.cycles 50_000);
             cell := Some (Api.now_ns ());
             match !waiter with Some k -> k () | None -> ()));
      Api.block (fun wake -> waiter := Some wake);
      (Option.get !cell, Api.now_ns ()))
  in
  let set_at, woke_at = v in
  check Alcotest.bool "woke after set" true (woke_at >= set_at);
  check Alcotest.bool "value was set" true (set_at >= 50_000)

let sparks_fizzle_when_done () =
  (* still_needed = false: when the idle capability activates the
     pushed spark it must fizzle, not run *)
  let _, report = Rts.run (cfg ~ncaps:2 ()) (fun () ->
      let ran = ref false in
      Api.spark ~still_needed:(fun () -> false) (fun () -> ran := true);
      (* keep the main thread busy long enough for distribution *)
      Api.charge (Cost.make 30_000_000 ~alloc:3_000_000);
      if !ran then failwith "fizzled spark must not run")
  in
  check Alcotest.int "fizzled" 1 report.Report.sparks.fizzled;
  check Alcotest.int "not converted" 0 report.Report.sparks.converted

let stealing_distributes () =
  let c = { (cfg ~ncaps:4 ()) with load_balance = Config.Work_stealing } in
  let caps_used, report = Rts.run c (fun () ->
      let used = Array.make 4 false in
      let remaining = ref 16 in
      let waiter = ref None in
      for _ = 1 to 16 do
        Api.spark ~still_needed:(fun () -> true) (fun () ->
            used.(Api.my_cap ()) <- true;
            Api.charge (Cost.make 2_000_000 ~alloc:8192);
            decr remaining;
            if !remaining = 0 then Option.iter (fun k -> k ()) !waiter)
      done;
      if !remaining > 0 then Api.block (fun wake -> waiter := Some wake);
      Array.to_list used)
  in
  check Alcotest.int "all sparks ran" 16
    (report.Report.sparks.converted + report.Report.sparks.fizzled);
  check Alcotest.bool "stealing happened" true (report.Report.sparks.stolen > 0);
  check Alcotest.bool "several caps used" true
    (List.length (List.filter Fun.id caps_used) >= 3)

let pushing_distributes () =
  let c = { (cfg ~ncaps:4 ()) with load_balance = Config.Push_polling } in
  let _, report = Rts.run c (fun () ->
      let remaining = ref 12 in
      let waiter = ref None in
      for _ = 1 to 12 do
        Api.spark ~still_needed:(fun () -> true) (fun () ->
            Api.charge (Cost.make 2_000_000 ~alloc:8192);
            decr remaining;
            if !remaining = 0 then Option.iter (fun k -> k ()) !waiter)
      done;
      (* keep the main thread busy so pushes come from the poll path *)
      Api.charge (Cost.make 30_000_000 ~alloc:3_000_000);
      if !remaining > 0 then Api.block (fun wake -> waiter := Some wake))
  in
  check Alcotest.bool "pushes happened" true (report.Report.sparks.pushed > 0);
  check Alcotest.int "no steals in push mode" 0 report.Report.sparks.stolen

let gc_barrier_stops_world () =
  (* allocate 3x the nursery: at least 2 collections must happen, and
     they must be visible as Gc time on every capability *)
  let c = cfg ~ncaps:2 () in
  let _, report = Rts.run c (fun () ->
      Api.charge (Cost.make 10_000_000 ~alloc:(3 * c.gc.Gc_model.alloc_area)))
  in
  check Alcotest.bool "minor GCs happened" true (report.Report.gc.minors >= 2);
  check Alcotest.bool "pauses accounted" true (report.Report.gc.pause_total_ns > 0);
  let gc_frac = Repro_trace.Trace.state_fraction report.trace Repro_trace.Trace.Gc in
  check Alcotest.bool "GC visible on the timeline" true (gc_frac > 0.0)

let distributed_gc_is_local () =
  (* In distributed mode a PE collecting its heap must not stop the
     other PE: total elapsed stays close to the busy PE's work. *)
  let c =
    { (cfg ~ncaps:2 ()) with heap_mode = Config.Distributed Transport.shm }
  in
  let _, report = Rts.run c (fun () ->
      let done_ref = ref false and waiter = ref None in
      ignore
        (Api.spawn ~cap:1 (fun () ->
             (* PE 1 allocates heavily: many local GCs *)
             Api.charge (Cost.make 5_000_000 ~alloc:(4 * c.gc.Gc_model.alloc_area));
             done_ref := true;
             Option.iter (fun k -> k ()) !waiter));
      if not !done_ref then Api.block (fun wake -> waiter := Some wake))
  in
  check Alcotest.bool "local GCs happened" true (report.Report.gc.minors >= 3);
  check Alcotest.int "no barrier waits in distributed mode" 0
    report.Report.gc.barrier_wait_ns

let messages_have_latency () =
  let tr = Transport.pvm in
  let c = { (cfg ~ncaps:2 ()) with heap_mode = Config.Distributed tr } in
  let (sent_at, recv_at), report = Rts.run c (fun () ->
      let got = ref None and waiter = ref None in
      let bytes = 10_000 in
      let t0 = Api.now_ns () in
      Api.send ~dst:1 ~bytes (fun () ->
          got := Some ();
          Option.iter (fun k -> k ()) !waiter);
      let sent_done = Api.now_ns () in
      if !got = None then Api.block (fun wake -> waiter := Some wake);
      (* we observe the wake on cap 0; delivery happened on PE 1 at or
         before our wake *)
      ignore t0;
      (sent_done, Api.now_ns ()))
  in
  check Alcotest.int "one message" 1 report.Report.messages.sent;
  check Alcotest.int "bytes counted" 10_000 report.Report.messages.bytes;
  (* sender paid pack cost *)
  check Alcotest.bool "send-side time" true (sent_at > 0);
  check Alcotest.bool "flight latency" true
    (recv_at - sent_at >= Transport.flight_ns tr 10_000)

let oversubscription_slows () =
  (* 4 virtual PEs on 1 core must take ~4x the 1-PE time *)
  let work () =
    let remaining = ref 4 and waiter = ref None in
    for pe = 0 to 3 do
      ignore
        (Api.spawn ~cap:pe (fun () ->
             Api.charge (Cost.cycles 1_000_000);
             decr remaining;
             if !remaining = 0 then Option.iter (fun k -> k ()) !waiter))
    done;
    if !remaining > 0 then Api.block (fun wake -> waiter := Some wake)
  in
  let c4on1 =
    { (cfg ~ncaps:4 ~cores:1 ()) with heap_mode = Config.Distributed Transport.shm }
  in
  let _, r_over = Rts.run c4on1 work in
  let c4on4 =
    { (cfg ~ncaps:4 ~cores:4 ()) with heap_mode = Config.Distributed Transport.shm }
  in
  let _, r_par = Rts.run c4on4 work in
  let ratio =
    float_of_int r_over.Report.elapsed_ns /. float_of_int r_par.Report.elapsed_ns
  in
  check Alcotest.bool "multiplexing costs ~4x" true (ratio > 3.0 && ratio < 5.0)

let determinism () =
  let run () =
    Rts.run { (cfg ~ncaps:4 ()) with load_balance = Config.Work_stealing }
      (fun () -> Repro_workloads.Sumeuler.gph ~n:500 ())
  in
  let v1, r1 = run () in
  let v2, r2 = run () in
  check Alcotest.int "same result" v1 v2;
  check Alcotest.int "same virtual time" r1.Report.elapsed_ns r2.Report.elapsed_ns;
  check Alcotest.int "same GC count" r1.Report.gc.minors r2.Report.gc.minors;
  check Alcotest.int "same steals" r1.Report.sparks.stolen r2.Report.sparks.stolen

let deadlock_detected () =
  match
    Rts.run (cfg ~ncaps:1 ()) (fun () -> Api.block (fun _wake -> ()))
  with
  | exception Rts.Deadlock msg ->
      check Alcotest.bool "diagnostic mentions blocked threads" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected Deadlock"

let timeslice_rotates () =
  (* two threads on one cap must interleave at timeslice granularity *)
  let c = { (cfg ~ncaps:1 ()) with timeslice_ns = 1_000_000 } in
  let v, _ = Rts.run c (fun () ->
      let log = ref [] in
      let remaining = ref 2 and waiter = ref None in
      for id = 1 to 2 do
        ignore
          (Api.spawn (fun () ->
               for _ = 1 to 8 do
                 Api.charge (Cost.make 500_000 ~alloc:8192);
                 log := id :: !log
               done;
               decr remaining;
               if !remaining = 0 then Option.iter (fun k -> k ()) !waiter))
      done;
      if !remaining > 0 then Api.block (fun wake -> waiter := Some wake);
      List.rev !log)
  in
  (* both ids appear before either finishes all 8 slots *)
  let first_12 = List.filteri (fun i _ -> i < 12) v in
  check Alcotest.bool "interleaved" true
    (List.mem 1 first_12 && List.mem 2 first_12)

let semi_distributed_runs () =
  let c =
    {
      (cfg ~ncaps:2 ()) with
      heap_mode =
        Config.Semi_distributed { global_area = 4096; promote_ns_per_byte = 0.5 };
      load_balance = Config.Work_stealing;
    }
  in
  let _, report = Rts.run c (fun () ->
      let remaining = ref 64 and waiter = ref None in
      for _ = 1 to 64 do
        Api.spark ~still_needed:(fun () -> true) (fun () ->
            Api.charge (Cost.make 100_000 ~alloc:4096);
            decr remaining;
            if !remaining = 0 then Option.iter (fun k -> k ()) !waiter)
      done;
      if !remaining > 0 then Api.block (fun wake -> waiter := Some wake))
  in
  (* sparking promoted data into the tiny global heap: a global
     collection must have happened *)
  check Alcotest.bool "global GC triggered by promotion" true
    (report.Report.gc.minors >= 1)

let nested_run_rejected () =
  ignore
    (Rts.run (cfg ~ncaps:1 ()) (fun () ->
         (try
            ignore (Rts.run (cfg ~ncaps:1 ()) (fun () -> ()));
            failwith "nested run must fail"
          with Failure msg ->
            check Alcotest.bool "error mentions nesting" true
              (String.length msg > 0));
         ()))

let workload_exception_propagates () =
  Alcotest.check_raises "exception escapes" (Failure "boom") (fun () ->
      ignore (Rts.run (cfg ~ncaps:1 ()) (fun () -> failwith "boom")))

let suite =
  ( "rts",
    [
      test_case "charge advances virtual time" `Quick charge_advances_time;
      test_case "zero charge is free" `Quick charge_zero_is_free;
      test_case "spawn and join" `Quick spawn_and_join;
      test_case "block/wake ordering" `Quick block_and_wake_ordering;
      test_case "sparks fizzle" `Quick sparks_fizzle_when_done;
      test_case "work stealing distributes" `Quick stealing_distributes;
      test_case "push polling distributes" `Quick pushing_distributes;
      test_case "gc barrier stops the world" `Quick gc_barrier_stops_world;
      test_case "distributed gc is local" `Quick distributed_gc_is_local;
      test_case "messages have latency" `Quick messages_have_latency;
      test_case "oversubscription slows PEs" `Quick oversubscription_slows;
      test_case "determinism" `Quick determinism;
      test_case "deadlock detected" `Quick deadlock_detected;
      test_case "timeslice rotates run queue" `Quick timeslice_rotates;
      test_case "semi-distributed heap runs" `Quick semi_distributed_runs;
      test_case "nested run rejected" `Quick nested_run_rejected;
      test_case "workload exception propagates" `Quick workload_exception_propagates;
    ] )
