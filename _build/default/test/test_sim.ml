(** Tests for the discrete-event engine, the trace recorder/renderers
    and the machine model. *)

module Engine = Repro_sim.Engine
module Trace = Repro_trace.Trace
module Render = Repro_trace.Render
module Machine = Repro_machine.Machine

let test_case = Alcotest.test_case
let check = Alcotest.check

(* ---------------- Engine ---------------- *)

let engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.at e 30 (fun () -> log := 30 :: !log);
  Engine.at e 10 (fun () -> log := 10 :: !log);
  Engine.at e 20 (fun () -> log := 20 :: !log);
  let final = Engine.run e in
  check Alcotest.(list int) "time order" [ 10; 20; 30 ] (List.rev !log);
  check Alcotest.int "final time" 30 final;
  check Alcotest.int "dispatched" 3 (Engine.dispatched e)

let engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  List.iter (fun i -> Engine.at e 5 (fun () -> log := i :: !log)) [ 1; 2; 3 ];
  ignore (Engine.run e);
  check Alcotest.(list int) "stable at same instant" [ 1; 2; 3 ] (List.rev !log)

let engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.at e 10 (fun () ->
      log := "a" :: !log;
      Engine.after e 5 (fun () -> log := "b" :: !log);
      Engine.after e 0 (fun () -> log := "a2" :: !log));
  ignore (Engine.run e);
  check Alcotest.(list string) "nested events" [ "a"; "a2"; "b" ] (List.rev !log)

let engine_rejects_past () =
  let e = Engine.create () in
  Engine.at e 10 (fun () -> ());
  ignore (Engine.run e);
  Alcotest.check_raises "past event"
    (Invalid_argument "Engine.at: time 5 is in the past (now=10)") (fun () ->
      Engine.at e 5 (fun () -> ()))

let engine_until () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.at e 10 (fun () -> log := 10 :: !log);
  Engine.at e 50 (fun () -> log := 50 :: !log);
  let t = Engine.run ~until:20 e in
  check Alcotest.int "paused at limit" 20 t;
  check Alcotest.(list int) "only first fired" [ 10 ] (List.rev !log);
  ignore (Engine.run e);
  check Alcotest.(list int) "resumed" [ 10; 50 ] (List.rev !log)

let engine_stop () =
  let e = Engine.create () in
  let count = ref 0 in
  Engine.at e 1 (fun () ->
      incr count;
      Engine.stop e);
  Engine.at e 2 (fun () -> incr count);
  ignore (Engine.run e);
  check Alcotest.int "stopped early" 1 !count

let engine_horizon () =
  let e = Engine.create ~horizon:100 () in
  Engine.at e 101 (fun () -> ());
  Alcotest.check_raises "horizon" (Engine.Horizon_exceeded 101) (fun () ->
      ignore (Engine.run e))

(* ---------------- Trace ---------------- *)

let trace_segments () =
  let t = Trace.create ~caps:2 in
  Trace.set_state t ~time:0 ~cap:0 Trace.Running;
  Trace.set_state t ~time:50 ~cap:0 Trace.Idle;
  Trace.set_state t ~time:80 ~cap:0 Trace.Running;
  Trace.finish t ~time:100;
  let segs = Trace.segments t in
  check Alcotest.int "cap0 segments" 3 (List.length segs.(0));
  (match segs.(0) with
  | [ (0, 50, Trace.Running); (50, 80, Trace.Idle); (80, 100, Trace.Running) ] ->
      ()
  | _ -> Alcotest.fail "unexpected segment structure");
  (* cap1 stayed idle the whole time *)
  match segs.(1) with
  | [ (0, 100, Trace.Idle) ] -> ()
  | _ -> Alcotest.fail "cap1 should be one idle segment"

let trace_utilisation () =
  let t = Trace.create ~caps:2 in
  Trace.set_state t ~time:0 ~cap:0 Trace.Running;
  Trace.set_state t ~time:0 ~cap:1 Trace.Running;
  Trace.set_state t ~time:50 ~cap:1 Trace.Idle;
  Trace.finish t ~time:100;
  check (Alcotest.float 1e-9) "utilisation 75%" 0.75 (Trace.utilisation t);
  check (Alcotest.float 1e-9) "idle fraction 25%" 0.25
    (Trace.state_fraction t Trace.Idle)

let trace_counters () =
  let t = Trace.create ~caps:1 in
  Trace.incr t "sparks";
  Trace.incr ~by:4 t "sparks";
  check Alcotest.int "counter" 5 (Trace.counter t "sparks");
  check Alcotest.int "missing counter" 0 (Trace.counter t "nope")

let trace_redundant_transition () =
  let t = Trace.create ~caps:1 in
  Trace.set_state t ~time:0 ~cap:0 Trace.Running;
  Trace.set_state t ~time:10 ~cap:0 Trace.Running;
  check Alcotest.int "no duplicate entries" 1 (List.length (Trace.entries t))

let render_timeline () =
  let t = Trace.create ~caps:1 in
  Trace.set_state t ~time:0 ~cap:0 Trace.Running;
  Trace.set_state t ~time:50 ~cap:0 Trace.Idle;
  Trace.finish t ~time:100;
  let rows = Render.timeline_rows ~width:10 t in
  check Alcotest.string "half running, half idle" "#####....." rows.(0);
  let csv = Render.to_csv t in
  check Alcotest.bool "csv has header" true
    (String.length csv > 0 && String.sub csv 0 7 = "time_ns")

(* ---------------- Machine ---------------- *)

let machine_conversion () =
  let m = Machine.intel8 in
  check Alcotest.int "1 cycle at 1.86GHz rounds to 1ns" 1 (Machine.ns_of_cycles m 1);
  check Alcotest.int "1.86e9 cycles = 1s" 1_000_000_000
    (Machine.ns_of_cycles m 1_860_000_000);
  let ns = Machine.ns_of_cycles m 1234567 in
  let back = Machine.cycles_of_ns m ns in
  check Alcotest.bool "roundtrip within rounding" true (abs (back - 1234567) < 5)

let machine_penalty () =
  let m = Machine.intel8 in
  check (Alcotest.float 1e-9) "under cache: no penalty" 1.0
    (Machine.mem_penalty m ~working_set:(1024 * 1024));
  let p1 = Machine.mem_penalty m ~working_set:(8 * 1024 * 1024) in
  let p2 = Machine.mem_penalty m ~working_set:(64 * 1024 * 1024) in
  check Alcotest.bool "monotone" true (p1 > 1.0 && p2 > p1);
  check Alcotest.bool "bounded" true (p2 < m.Machine.mem_penalty_max)

let machine_with_cores () =
  let m = Machine.with_cores Machine.amd16 4 in
  check Alcotest.int "cores" 4 m.Machine.cores;
  Alcotest.check_raises "bad cores"
    (Invalid_argument "Machine.make: cores must be positive") (fun () ->
      ignore (Machine.make ~name:"x" ~cores:0 ~clock_ghz:1.0 ()))

let suite =
  ( "sim",
    [
      test_case "engine time order" `Quick engine_order;
      test_case "engine stable ties" `Quick engine_same_time_fifo;
      test_case "engine nested scheduling" `Quick engine_nested_scheduling;
      test_case "engine rejects past" `Quick engine_rejects_past;
      test_case "engine run until / resume" `Quick engine_until;
      test_case "engine stop" `Quick engine_stop;
      test_case "engine horizon" `Quick engine_horizon;
      test_case "trace segments" `Quick trace_segments;
      test_case "trace utilisation" `Quick trace_utilisation;
      test_case "trace counters" `Quick trace_counters;
      test_case "trace dedup transitions" `Quick trace_redundant_transition;
      test_case "render timeline + csv" `Quick render_timeline;
      test_case "machine cycle conversion" `Quick machine_conversion;
      test_case "machine memory penalty" `Quick machine_penalty;
      test_case "machine with_cores" `Quick machine_with_cores;
    ] )
