(** Tests for the Eden skeletons: farm, reduce, map-reduce,
    master/worker, ring, torus, pipeline. *)

module Rts = Repro_parrts.Rts
module Api = Repro_parrts.Rts.Api
module Config = Repro_parrts.Config
module Cost = Repro_util.Cost
module Eden = Repro_core.Eden
module Sk = Repro_core.Skeletons
module Machine = Repro_machine.Machine
module Transport = Repro_mp.Transport

let test_case = Alcotest.test_case
let check = Alcotest.check

let cfg ?(npes = 4) () =
  let machine = Machine.make ~name:"t" ~cores:npes ~clock_ghz:1.0 () in
  let c = Config.default ~machine ~ncaps:npes () in
  { c with heap_mode = Config.Distributed Transport.shm; migrate_threads = false }

let run ?npes f = fst (Rts.run (cfg ?npes ()) f)

let farm_equals_map () =
  let xs = List.init 37 (fun i -> i - 5) in
  let v = run (fun () ->
      Sk.par_map_farm ~tr_in:Eden.t_int ~tr_out:Eden.t_int (fun x -> x * x) xs)
  in
  check Alcotest.(list int) "farm == map" (List.map (fun x -> x * x) xs) v

let farm_custom_np () =
  let xs = List.init 10 Fun.id in
  let v = run (fun () ->
      Sk.par_map_farm ~np:2 ~tr_in:Eden.t_int ~tr_out:Eden.t_int (fun x -> -x) xs)
  in
  check Alcotest.(list int) "np=2" (List.map (fun x -> -x) xs) v

let reduce_equals_fold () =
  let xs = List.init 100 (fun i -> i + 1) in
  let v = run (fun () -> Sk.par_reduce ~tr:Eden.t_int ( + ) 0 xs) in
  check Alcotest.int "sum 1..100" 5050 v

let map_reduce_word_count () =
  (* the classic word-count shape: map emits (word, 1), reduce sums *)
  let docs = [ "a b a"; "b c"; "a c c c" ] in
  let v = run (fun () ->
      Sk.par_map_reduce
        ~tr_key:{ Eden.bytes = (fun s -> 16 + String.length s); nf_cycles = (fun _ -> 2) }
        ~tr_val:Eden.t_int
        ~mapf:(fun doc ->
          String.split_on_char ' ' doc |> List.map (fun w -> (w, 1)))
        ~reducef:(fun _ vs -> List.fold_left ( + ) 0 vs)
        ~merge:(fun _ partials -> List.fold_left ( + ) 0 partials)
        docs)
  in
  let sorted = List.sort compare v in
  check
    Alcotest.(list (pair string int))
    "word counts"
    [ ("a", 3); ("b", 2); ("c", 4) ]
    sorted

let master_worker_flat_tasks () =
  let v = run (fun () ->
      Sk.master_worker ~tr_task:Eden.t_int ~tr_res:Eden.t_int
        (fun t ->
          Api.charge (Cost.cycles 10_000);
          ([], t * 2))
        (List.init 20 (fun i -> i + 1)))
  in
  check Alcotest.int "count" 20 (List.length v);
  check Alcotest.int "sum of doubles" (2 * 210) (List.fold_left ( + ) 0 v)

let master_worker_dynamic_tasks () =
  (* tasks expand: task n > 0 spawns n-1 and n-2... count leaves of a
     Fibonacci-call tree (task n yields result 1 at n <= 1) *)
  let v = run (fun () ->
      Sk.master_worker ~prefetch:3 ~tr_task:Eden.t_int ~tr_res:Eden.t_int
        (fun n ->
          Api.charge (Cost.cycles 5_000);
          if n <= 1 then ([], 1) else ([ n - 1; n - 2 ], 0))
        [ 8 ])
  in
  (* leaves of the fib call tree for n=8: fib(9) = 34 *)
  check Alcotest.int "fib leaves" 34 (List.fold_left ( + ) 0 v)

let master_worker_irregular () =
  let v = run ~npes:5 (fun () ->
      Sk.master_worker ~tr_task:Eden.t_int ~tr_res:Eden.t_int
        (fun t ->
          (* irregular cost *)
          Api.charge (Cost.cycles (1000 * (1 + (t mod 7))));
          ([], t))
        (List.init 50 Fun.id))
  in
  check Alcotest.int "all results back" 50 (List.length v);
  check Alcotest.int "content preserved"
    (50 * 49 / 2)
    (List.fold_left ( + ) 0 v)

let ring_token_pass () =
  (* each ring process adds its input to a circulating token *)
  let v = run (fun () ->
      Sk.ring ~n:4 ~tr_ring:Eden.t_int ~tr_out:Eden.t_int
        ~distribute:(fun k -> k + 1)
        ~worker:(fun k input recv send close_right ->
          if k = 0 then begin
            send input;
            let total = match recv () with Some t -> t | None -> -1 in
            close_right ();
            total
          end
          else begin
            let t = match recv () with Some t -> t | None -> -1 in
            send (t + input);
            close_right ();
            0
          end))
  in
  (* token = 1 + 2 + 3 + 4 after one revolution *)
  check Alcotest.(list int) "ring sum" [ 10; 0; 0; 0 ] v

let torus_coordinates () =
  (* each torus process sends its coordinates around both rings once
     and checks what it receives: row ring neighbours share the row *)
  let v = run ~npes:5 (fun () ->
      Sk.torus ~rows:2 ~cols:2 ~tr_a:Eden.t_int ~tr_b:Eden.t_int
        ~tr_out:Eden.t_int
        ~worker:(fun ~row ~col ~recv_a ~send_a ~recv_b ~send_b ->
          send_a col;
          send_b row;
          let from_right = match recv_a () with Some c -> c | None -> -1 in
          let from_below = match recv_b () with Some r -> r | None -> -1 in
          (* in a 2-column ring, my right neighbour's col is 1-col *)
          assert (from_right = 1 - col);
          assert (from_below = 1 - row);
          (row * 10) + col))
  in
  check Alcotest.(list int) "all workers ran" [ 0; 1; 10; 11 ] v

let pipeline_composes () =
  let v = run ~npes:4 (fun () ->
      Sk.pipeline ~tr:Eden.t_int
        [ (fun x -> x + 1); (fun x -> x * 2) ]
        [ 1; 2; 3 ])
  in
  check Alcotest.(list int) "pipeline" [ 4; 6; 8 ] v

let pipeline_empty_stages () =
  let v = run (fun () -> Sk.pipeline ~tr:Eden.t_int [] [ 1; 2 ]) in
  check Alcotest.(list int) "no stages = id" [ 1; 2 ] v

let qcheck_farm =
  QCheck.Test.make ~name:"par_map_farm == List.map (any npes, any list)"
    ~count:30
    QCheck.(pair (int_range 2 6) (small_list small_nat))
    (fun (npes, xs) ->
      run ~npes (fun () ->
          Sk.par_map_farm ~tr_in:Eden.t_int ~tr_out:Eden.t_int
            (fun x -> (3 * x) + 1)
            xs)
      = List.map (fun x -> (3 * x) + 1) xs)

let qcheck_reduce =
  QCheck.Test.make ~name:"par_reduce == fold (associative op)" ~count:30
    QCheck.(pair (int_range 2 6) (small_list small_nat))
    (fun (npes, xs) ->
      run ~npes (fun () -> Sk.par_reduce ~tr:Eden.t_int ( + ) 0 xs)
      = List.fold_left ( + ) 0 xs)

let qcheck_master_worker =
  QCheck.Test.make ~name:"master_worker returns one result per task" ~count:25
    QCheck.(pair (int_range 2 6) (small_list small_nat))
    (fun (npes, xs) ->
      let res =
        run ~npes (fun () ->
            Sk.master_worker ~tr_task:Eden.t_int ~tr_res:Eden.t_int
              (fun t -> ([], t))
              xs)
      in
      List.sort compare res = List.sort compare xs)

let suite =
  ( "skeletons",
    [
      test_case "farm == map" `Quick farm_equals_map;
      test_case "farm custom np" `Quick farm_custom_np;
      test_case "reduce == fold" `Quick reduce_equals_fold;
      test_case "map-reduce word count" `Quick map_reduce_word_count;
      test_case "master/worker flat" `Quick master_worker_flat_tasks;
      test_case "master/worker dynamic tasks" `Quick master_worker_dynamic_tasks;
      test_case "master/worker irregular" `Quick master_worker_irregular;
      test_case "ring token pass" `Quick ring_token_pass;
      test_case "torus coordinates" `Quick torus_coordinates;
      test_case "pipeline composes" `Quick pipeline_composes;
      test_case "pipeline no stages" `Quick pipeline_empty_stages;
      QCheck_alcotest.to_alcotest qcheck_farm;
      QCheck_alcotest.to_alcotest qcheck_reduce;
      QCheck_alcotest.to_alcotest qcheck_master_worker;
    ] )
