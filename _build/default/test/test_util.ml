(** Tests for Repro_util: priority queue, RNG, stats, cost, tables,
    list helpers. *)

open Repro_util

let test_case = Alcotest.test_case
let check = Alcotest.check

(* ---------------- Prio_queue ---------------- *)

let pq_basic () =
  let q = Prio_queue.create () in
  check Alcotest.bool "empty" true (Prio_queue.is_empty q);
  Prio_queue.add q 5 "five";
  Prio_queue.add q 1 "one";
  Prio_queue.add q 3 "three";
  check Alcotest.int "length" 3 (Prio_queue.length q);
  check Alcotest.(option int) "min key" (Some 1) (Prio_queue.min_key q);
  check Alcotest.(pair int string) "pop 1" (1, "one") (Prio_queue.pop q);
  check Alcotest.(pair int string) "pop 3" (3, "three") (Prio_queue.pop q);
  check Alcotest.(pair int string) "pop 5" (5, "five") (Prio_queue.pop q);
  check Alcotest.bool "empty again" true (Prio_queue.is_empty q)

let pq_stable_ties () =
  let q = Prio_queue.create () in
  List.iteri (fun i v -> Prio_queue.add q 7 (i, v)) [ "a"; "b"; "c"; "d" ];
  let order = List.map snd (List.map snd (Prio_queue.drain q)) in
  check Alcotest.(list string) "FIFO among equal keys" [ "a"; "b"; "c"; "d" ] order

let pq_empty_pop () =
  let q : int Prio_queue.t = Prio_queue.create () in
  check Alcotest.bool "pop_opt none" true (Prio_queue.pop_opt q = None);
  Alcotest.check_raises "pop raises" Prio_queue.Empty (fun () ->
      ignore (Prio_queue.pop q))

let pq_qcheck_sorted =
  QCheck.Test.make ~name:"prio_queue drains in sorted stable order" ~count:300
    QCheck.(list (pair small_nat small_nat))
    (fun pairs ->
      let q = Prio_queue.create () in
      List.iter (fun (k, v) -> Prio_queue.add q k v) pairs;
      let drained = List.map fst (Prio_queue.drain q) in
      drained = List.sort compare drained
      && List.length drained = List.length pairs)

(* Interleaved adds and pops: every pop must return the minimum of the
   keys currently in the queue (tracked by a reference multiset). *)
let pq_qcheck_interleaved =
  QCheck.Test.make ~name:"prio_queue pop always returns the current minimum"
    ~count:200
    QCheck.(list (option small_nat))
    (fun ops ->
      let q = Prio_queue.create () in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Some k ->
              Prio_queue.add q k k;
              model := k :: !model
          | None -> (
              match (Prio_queue.pop_opt q, !model) with
              | None, [] -> ()
              | None, _ :: _ | Some _, [] -> ok := false
              | Some (k, _), keys ->
                  let min_key = List.fold_left min max_int keys in
                  if k <> min_key then ok := false;
                  (* remove one occurrence of min_key *)
                  let removed = ref false in
                  model :=
                    List.filter
                      (fun x ->
                        if x = min_key && not !removed then begin
                          removed := true;
                          false
                        end
                        else true)
                      keys))
        ops;
      !ok && Prio_queue.length q = List.length !model)

(* ---------------- Rng ---------------- *)

let rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.next_int a) (Rng.next_int b)
  done

let rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 13 in
    if v < 0 || v >= 13 then Alcotest.fail "Rng.int out of bounds"
  done;
  for _ = 1 to 10_000 do
    let f = Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "Rng.float out of bounds"
  done

let rng_uniformish () =
  let r = Rng.create 99 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Rng.int r 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 5 then
        Alcotest.fail "bucket count deviates by more than 20%")
    buckets

let rng_split_independent () =
  let r = Rng.create 1 in
  let a = Rng.split r and b = Rng.split r in
  let xs = List.init 50 (fun _ -> Rng.next_int a) in
  let ys = List.init 50 (fun _ -> Rng.next_int b) in
  check Alcotest.bool "split streams differ" true (xs <> ys)

let rng_int_range () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int_range r (-5) 5 in
    if v < -5 || v > 5 then Alcotest.fail "int_range out of bounds"
  done;
  check Alcotest.int "singleton range" 4 (Rng.int_range r 4 4)

let rng_shuffle_permutes () =
  let r = Rng.create 5 in
  let arr = Array.init 100 Fun.id in
  Rng.shuffle_in_place r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 100 Fun.id) sorted

(* ---------------- Stats ---------------- *)

let stats_basic () =
  let s = Stats.of_list [ 1.0; 2.0; 3.0; 4.0 ] in
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean s);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.min_value s);
  check (Alcotest.float 1e-9) "max" 4.0 (Stats.max_value s);
  check (Alcotest.float 1e-6) "variance" (5.0 /. 3.0) (Stats.variance s)

let stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  check (Alcotest.float 1e-9) "p50" 50.0 (Stats.percentile xs 50.0);
  check (Alcotest.float 1e-9) "p100" 100.0 (Stats.percentile xs 100.0)

let stats_qcheck_mean =
  QCheck.Test.make ~name:"stats mean matches direct computation" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 1000.0))
    (fun xs ->
      let s = Stats.of_list xs in
      let direct = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Stats.mean s -. direct) < 1e-6 *. (1.0 +. Float.abs direct))

(* ---------------- Cost ---------------- *)

let cost_arith () =
  let a = Cost.make 100 ~alloc:10 and b = Cost.make 50 ~alloc:5 in
  let s = Cost.add a b in
  check Alcotest.int "cycles" 150 s.Cost.cycles;
  check Alcotest.int "alloc" 15 s.Cost.alloc;
  check Alcotest.bool "zero" true (Cost.is_zero Cost.zero);
  let d = Cost.scale 3 b in
  check Alcotest.int "scaled" 150 d.Cost.cycles;
  Alcotest.check_raises "negative cycles" (Invalid_argument "Cost.make: negative cycles")
    (fun () -> ignore (Cost.make (-1)))

(* ---------------- Tablefmt ---------------- *)

let table_render () =
  let t = Tablefmt.create ~aligns:[ Tablefmt.Left; Tablefmt.Right ] [ "name"; "v" ] in
  Tablefmt.add_row t [ "x"; "1" ];
  Tablefmt.add_row t [ "longer"; "22" ];
  let s = Tablefmt.to_string t in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "contains header" true (contains s "name");
  check Alcotest.bool "right-aligned value" true (contains s "|  1 |");
  Alcotest.check_raises "bad row arity"
    (Invalid_argument "Tablefmt.add_row: wrong number of columns") (fun () ->
      Tablefmt.add_row t [ "only-one" ])

(* ---------------- Listx ---------------- *)

let listx_split () =
  check Alcotest.(list (list int)) "split_into_n"
    [ [ 1; 2 ]; [ 3; 4 ]; [ 5 ] ]
    (Listx.split_into_n 3 [ 1; 2; 3; 4; 5 ]);
  check Alcotest.(list (list int)) "unshuffle"
    [ [ 1; 4 ]; [ 2; 5 ]; [ 3 ] ]
    (Listx.unshuffle 3 [ 1; 2; 3; 4; 5 ]);
  check Alcotest.(list int) "shuffle . unshuffle = id" [ 1; 2; 3; 4; 5 ]
    (Listx.shuffle (Listx.unshuffle 3 [ 1; 2; 3; 4; 5 ]))

let listx_qcheck_roundtrip =
  QCheck.Test.make ~name:"shuffle . unshuffle = id" ~count:300
    QCheck.(pair (int_range 1 10) (small_list small_nat))
    (fun (n, xs) -> Listx.shuffle (Listx.unshuffle n xs) = xs)

let listx_qcheck_split_preserves =
  QCheck.Test.make ~name:"split_into_n preserves content and count" ~count:300
    QCheck.(pair (int_range 1 10) (small_list small_nat))
    (fun (n, xs) ->
      let pieces = Listx.split_into_n n xs in
      List.length pieces = n && List.concat pieces = xs)

let listx_group () =
  check
    Alcotest.(list (pair string (list int)))
    "group_by_key"
    [ ("a", [ 1; 3 ]); ("b", [ 2 ]) ]
    (Listx.group_by_key [ ("a", 1); ("b", 2); ("a", 3) ])

let listx_transpose () =
  check Alcotest.(list (list int)) "transpose"
    [ [ 1; 4 ]; [ 2; 5 ]; [ 3; 6 ] ]
    (Listx.transpose [ [ 1; 2; 3 ]; [ 4; 5; 6 ] ])

let suite =
  ( "util",
    [
      test_case "prio_queue basic" `Quick pq_basic;
      test_case "prio_queue stable ties" `Quick pq_stable_ties;
      test_case "prio_queue empty pop" `Quick pq_empty_pop;
      QCheck_alcotest.to_alcotest pq_qcheck_sorted;
      QCheck_alcotest.to_alcotest pq_qcheck_interleaved;
      test_case "rng deterministic" `Quick rng_deterministic;
      test_case "rng bounds" `Quick rng_bounds;
      test_case "rng uniform-ish" `Quick rng_uniformish;
      test_case "rng split independent" `Quick rng_split_independent;
      test_case "rng int_range" `Quick rng_int_range;
      test_case "rng shuffle permutes" `Quick rng_shuffle_permutes;
      test_case "stats basic" `Quick stats_basic;
      test_case "stats percentile" `Quick stats_percentile;
      QCheck_alcotest.to_alcotest stats_qcheck_mean;
      test_case "cost arithmetic" `Quick cost_arith;
      test_case "table render" `Quick table_render;
      test_case "listx split/unshuffle" `Quick listx_split;
      QCheck_alcotest.to_alcotest listx_qcheck_roundtrip;
      QCheck_alcotest.to_alcotest listx_qcheck_split_preserves;
      test_case "listx group_by_key" `Quick listx_group;
      test_case "listx transpose" `Quick listx_transpose;
    ] )
