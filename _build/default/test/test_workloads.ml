(** Tests for the benchmark workloads: every parallel variant must
    compute the same values as its sequential reference, under every
    runtime configuration. *)

module Rts = Repro_parrts.Rts
module V = Repro_core.Versions
module W = Repro_workloads

let test_case = Alcotest.test_case
let check = Alcotest.check

(* ---------------- Euler / sumEuler ---------------- *)

let phi_agree () =
  for k = 1 to 300 do
    check Alcotest.int
      (Printf.sprintf "phi %d" k)
      (W.Euler.phi_naive k) (W.Euler.phi_fast k)
  done

let phi_known_values () =
  List.iter
    (fun (k, v) -> check Alcotest.int (Printf.sprintf "phi %d" k) v (W.Euler.phi_fast k))
    [ (1, 1); (2, 1); (9, 6); (10, 4); (97, 96); (100, 40); (360, 96) ]

let qcheck_phi_agree =
  QCheck.Test.make ~name:"phi_fast == phi_naive" ~count:150
    QCheck.(int_range 1 2000)
    (fun k -> W.Euler.phi_fast k = W.Euler.phi_naive k)

let phi_cost_grows () =
  let c100 = W.Euler.phi_cost 100 and c1000 = W.Euler.phi_cost 1000 in
  check Alcotest.bool "cost grows" true
    (c1000.Repro_util.Cost.cycles > c100.Repro_util.Cost.cycles)

let sumeuler_all_versions_agree () =
  let n = 400 in
  let expect = W.Euler.sum_euler_ref n in
  List.iter
    (fun (v : V.version) ->
      let is_eden = Repro_parrts.Config.is_distributed v.config in
      let got, _ =
        Rts.run v.config (fun () ->
            if is_eden then W.Sumeuler.eden ~n ()
            else W.Sumeuler.gph ~n ())
      in
      check Alcotest.int v.label expect got)
    (V.fig1_versions ~ncaps:4 ())

let sumeuler_splits_agree () =
  let n = 300 in
  let expect = W.Euler.sum_euler_ref n in
  let got_rr, _ =
    Rts.run (V.gph_steal ~ncaps:4 ()).config (fun () ->
        W.Sumeuler.gph ~split:`Round_robin ~n ())
  in
  let got_c, _ =
    Rts.run (V.gph_steal ~ncaps:4 ()).config (fun () ->
        W.Sumeuler.gph ~split:`Contiguous ~n ())
  in
  check Alcotest.int "round robin" expect got_rr;
  check Alcotest.int "contiguous" expect got_c;
  let got_e, _ =
    Rts.run (V.eden ~npes:4 ()).config (fun () ->
        W.Sumeuler.eden ~split:`Contiguous ~n ())
  in
  check Alcotest.int "eden contiguous" expect got_e

(* ---------------- Matrix / matmul ---------------- *)

let matrix_ref_identity () =
  let n = 8 in
  let id = W.Matrix.make n (fun i j -> if i = j then 1.0 else 0.0) in
  let a = W.Matrix.random ~seed:3 n in
  let prod = W.Matrix.mul_ref a id in
  check (Alcotest.float 1e-9) "A * I = A" (W.Matrix.checksum a)
    (W.Matrix.checksum prod)

let matrix_block_equals_ref () =
  let n = 20 in
  let a = W.Matrix.random ~seed:1 n and b = W.Matrix.random ~seed:2 n in
  let out = W.Matrix.zero n in
  let bs = 7 in
  let r0 = ref 0 in
  while !r0 < n do
    let c0 = ref 0 in
    while !c0 < n do
      W.Matrix.mul_block a b out ~r0:!r0 ~c0:!c0 ~bs;
      c0 := !c0 + bs
    done;
    r0 := !r0 + bs
  done;
  let want = W.Matrix.checksum (W.Matrix.mul_ref a b) in
  check Alcotest.bool "blocked == reference" true
    (Float.abs (W.Matrix.checksum out -. want) < 1e-9 *. Float.abs want)

let matrix_row_segment_equals_ref () =
  let n = 12 in
  let a = W.Matrix.random ~seed:5 n and b = W.Matrix.random ~seed:6 n in
  let out = W.Matrix.zero n in
  for i = 0 to n - 1 do
    W.Matrix.mul_row_segment a b out ~i ~c0:0 ~cols:n
  done;
  let want = W.Matrix.checksum (W.Matrix.mul_ref a b) in
  check Alcotest.bool "row segments == reference" true
    (Float.abs (W.Matrix.checksum out -. want) < 1e-9 *. Float.abs want)

(* matmul gph/cannon raise internally on mismatch in Real mode, so just
   running them IS the check; we also compare the two against each
   other. *)
let matmul_variants_agree () =
  let n = 48 in
  let g, _ =
    Rts.run (V.gph_steal ~ncaps:4 ()).config (fun () ->
        W.Matmul.gph ~payload:W.Matrix.Real ~n ~block:13 ())
  in
  let e, _ =
    Rts.run (V.eden ~npes:5 ()).config (fun () ->
        W.Matmul.eden_cannon ~payload:W.Matrix.Real ~n ~q:2 ())
  in
  check Alcotest.bool "gph == cannon" true (Float.abs (g -. e) < 1e-9 *. Float.abs g)

let matmul_lazy_bh_still_correct () =
  (* duplicate evaluation must never corrupt results *)
  let n = 40 in
  let v = V.gph_plain ~ncaps:4 () in
  let g, _ =
    Rts.run v.config (fun () -> W.Matmul.gph ~payload:W.Matrix.Real ~n ~block:9 ())
  in
  check Alcotest.bool "finite checksum" true (Float.is_finite g)

let matmul_synthetic_runs () =
  let _, report =
    Rts.run (V.gph_steal ~ncaps:4 ()).config (fun () ->
        ignore (W.Matmul.gph ~payload:W.Matrix.Synthetic ~n:200 ()))
  in
  check Alcotest.bool "virtual time advanced" true
    (report.Repro_parrts.Report.elapsed_ns > 0)

let cannon_rejects_bad_grid () =
  Alcotest.check_raises "q must divide n"
    (Invalid_argument "Matmul.eden_cannon: q must divide n") (fun () ->
      ignore
        (Rts.run (V.eden ~npes:5 ()).config (fun () ->
             W.Matmul.eden_cannon ~n:50 ~q:3 ())))

(* ---------------- APSP ---------------- *)

let apsp_reference_sanity () =
  (* tiny graph with known shortest paths *)
  let inf = infinity in
  let adj =
    [|
      [| 0.; 1.; 4.; inf |];
      [| inf; 0.; 2.; 5. |];
      [| inf; inf; 0.; 1. |];
      [| inf; inf; inf; 0. |];
    |]
  in
  let d = W.Apsp.floyd_warshall adj in
  check (Alcotest.float 1e-9) "0->2 via 1" 3.0 d.(0).(2);
  check (Alcotest.float 1e-9) "0->3 via 1,2" 4.0 d.(0).(3);
  check (Alcotest.float 1e-9) "unreachable" inf d.(3).(0)

let apsp_variants_agree () =
  let n = 60 in
  let expect = W.Apsp.checksum (W.Apsp.floyd_warshall (W.Apsp.graph n)) in
  let lazy_g, _ =
    Rts.run (V.gph_steal ~ncaps:4 ()).config (fun () -> W.Apsp.gph ~n ())
  in
  let eager_g, _ =
    Rts.run (V.with_eager (V.gph_steal ~ncaps:4 ())).config (fun () ->
        W.Apsp.gph ~n ())
  in
  let eden_g, _ =
    Rts.run (V.eden ~npes:4 ()).config (fun () -> W.Apsp.eden_ring ~n ())
  in
  check (Alcotest.float 1e-6) "lazy gph" expect lazy_g;
  check (Alcotest.float 1e-6) "eager gph" expect eager_g;
  check (Alcotest.float 1e-6) "eden ring" expect eden_g

let apsp_ring_nprocs_variants () =
  let n = 30 in
  let expect = W.Apsp.checksum (W.Apsp.floyd_warshall (W.Apsp.graph n)) in
  List.iter
    (fun nprocs ->
      let got, _ =
        Rts.run (V.eden ~npes:6 ()).config (fun () ->
            W.Apsp.eden_ring ~nprocs ~n ())
      in
      check (Alcotest.float 1e-6) (Printf.sprintf "ring of %d" nprocs) expect got)
    [ 1; 2; 3; 5; 6 ]

let qcheck_apsp_sizes =
  QCheck.Test.make ~name:"apsp gph == floyd_warshall (random sizes/seeds)"
    ~count:10
    QCheck.(pair (int_range 4 40) (int_range 0 1000))
    (fun (n, seed) ->
      let expect = W.Apsp.checksum (W.Apsp.floyd_warshall (W.Apsp.graph ~seed n)) in
      let got, _ =
        Rts.run (V.with_eager (V.gph_steal ~ncaps:3 ())).config (fun () ->
            W.Apsp.gph ~seed ~n ())
      in
      Float.abs (got -. expect) <= 1e-6 *. (1.0 +. Float.abs expect))

let apsp_lazy_duplicates_eager_not () =
  let n = 80 in
  let _, lazy_rep =
    Rts.run (V.gph_steal ~ncaps:8 ()).config (fun () -> ignore (W.Apsp.gph ~n ()))
  in
  let _, eager_rep =
    Rts.run (V.with_eager (V.gph_steal ~ncaps:8 ())).config (fun () ->
        ignore (W.Apsp.gph ~n ()))
  in
  check Alcotest.bool "lazy duplicates pivot work" true
    (lazy_rep.Repro_parrts.Report.dup_work_entries > 0);
  check Alcotest.int "eager never duplicates" 0
    eager_rep.Repro_parrts.Report.dup_work_entries;
  check Alcotest.bool "eager blocks instead" true
    (eager_rep.Repro_parrts.Report.blocked_forces > 0)

let suite =
  ( "workloads",
    [
      test_case "phi fast == naive (1..300)" `Quick phi_agree;
      test_case "phi known values" `Quick phi_known_values;
      QCheck_alcotest.to_alcotest qcheck_phi_agree;
      test_case "phi cost grows" `Quick phi_cost_grows;
      test_case "sumEuler: all versions agree" `Quick sumeuler_all_versions_agree;
      test_case "sumEuler: splits agree" `Quick sumeuler_splits_agree;
      test_case "matrix: A*I = A" `Quick matrix_ref_identity;
      test_case "matrix: blocked == ref" `Quick matrix_block_equals_ref;
      test_case "matrix: row segments == ref" `Quick matrix_row_segment_equals_ref;
      test_case "matmul: gph == cannon" `Quick matmul_variants_agree;
      test_case "matmul: lazy BH correct" `Quick matmul_lazy_bh_still_correct;
      test_case "matmul: synthetic payload" `Quick matmul_synthetic_runs;
      test_case "cannon: rejects bad grid" `Quick cannon_rejects_bad_grid;
      test_case "apsp: reference sanity" `Quick apsp_reference_sanity;
      test_case "apsp: variants agree" `Quick apsp_variants_agree;
      test_case "apsp: ring process counts" `Quick apsp_ring_nprocs_variants;
      QCheck_alcotest.to_alcotest qcheck_apsp_sizes;
      test_case "apsp: lazy duplicates, eager blocks" `Quick
        apsp_lazy_duplicates_eager_not;
    ] )
