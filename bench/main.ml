(** Benchmark harness.

    Two parts:

    1. {b Reproduction}: regenerates every table and figure of the
       paper at full scale and prints the rows/series next to the
       paper's reported values (Fig. 1) or shape expectations
       (Figs. 2–5).  This is the output EXPERIMENTS.md is based on.

    2. {b Bechamel micro/meso benchmarks}: one [Test.make] per
       table/figure (at reduced problem size so the sampler can iterate)
       plus micro-benchmarks of the substrate data structures
       (Chase–Lev deque, event queue, RNG, thunk machinery) and the
       ablation benches called out in DESIGN.md.

    Set [REPRO_BENCH_QUICK=1] to shrink the reproduction sizes. *)

module E = Repro_experiments
module Versions = Repro_core.Versions
module Rts = Repro_parrts.Rts

let quick =
  match Sys.getenv_opt "REPRO_BENCH_QUICK" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* [--dist-transport sock|shm] selects the wire for the eden-vs-gph
   section (socketpair framing vs shared-memory rings). *)
let dist_transport =
  let rec find = function
    | "--dist-transport" :: v :: _ -> Some v
    | _ :: rest -> find rest
    | [] -> None
  in
  match find (Array.to_list Sys.argv) with
  | None | Some "sock" -> Repro_dist.Farm.Sock
  | Some "shm" -> Repro_dist.Farm.Shm
  | Some other ->
      Printf.eprintf "bench: unknown --dist-transport %s (want sock|shm)\n"
        other;
      exit 2

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Part 1: full-scale reproduction                                     *)
(* ------------------------------------------------------------------ *)

let reproduce_fig1 () =
  hr "Fig. 1 — sumEuler [1..15000], Intel 8-core: runtimes";
  let n = if quick then 6000 else 15000 in
  let r = E.Fig1.run ~n () in
  Repro_util.Tablefmt.print (E.Fig1.to_table r);
  Printf.printf "row ordering as in the paper: %b\n" (E.Fig1.ordering_holds r);
  r

let reproduce_fig2 () =
  hr "Fig. 2 — sumEuler traces (EdenTV-style timelines)";
  let n = if quick then 6000 else 15000 in
  let r = E.Fig2.run ~n () in
  print_string (E.Fig2.render ~width:100 r)

let reproduce_fig3 () =
  hr "Fig. 3 — relative speedups, AMD 16-core";
  let r =
    if quick then E.Fig3.run ~cores:[ 1; 2; 4; 8; 16 ] ~n_euler:6000 ~n_mat:1000 ()
    else E.Fig3.run ()
  in
  Printf.printf "\nFig. 3a: sumEuler [1..%d]\n" r.n_euler;
  Format.printf "%a" E.Exp.pp_speedup_table r.sumeuler;
  print_string (E.Exp.render_speedup_plot r.sumeuler);
  Printf.printf "\nFig. 3b: matmul %dx%d\n" r.n_mat r.n_mat;
  Format.printf "%a" E.Exp.pp_speedup_table r.matmul;
  print_string (E.Exp.render_speedup_plot r.matmul);
  Printf.printf "shapes as in the paper: %b\n" (E.Fig3.shapes_hold r);
  List.iter (fun s -> Printf.printf "  paper: %s\n" s) E.Paper.fig3_shapes

let reproduce_fig4 () =
  hr "Fig. 4 — matmul traces, Intel 8-core, virtual PEs";
  let n = if quick then 500 else 1000 in
  let r = E.Fig4.run ~n () in
  print_string (E.Fig4.render ~width:100 r);
  Printf.printf "shapes as in the paper: %b\n" (E.Fig4.shapes_hold r);
  List.iter (fun s -> Printf.printf "  paper: %s\n" s) E.Paper.fig4_shapes

let reproduce_fig5 () =
  hr "Fig. 5 — shortest paths (400 nodes), AMD 16-core";
  let r =
    if quick then E.Fig5.run ~cores:[ 1; 2; 4; 8; 16 ] ~n:200 ()
    else E.Fig5.run ()
  in
  Format.printf "%a" E.Exp.pp_speedup_table r.series;
  print_string (E.Exp.render_speedup_plot r.series);
  Printf.printf "shapes as in the paper: %b\n" (E.Fig5.shapes_hold r);
  List.iter (fun s -> Printf.printf "  paper: %s\n" s) E.Paper.fig5_shapes

(* ------------------------------------------------------------------ *)
(* Part 1b: real execution vs. simulation                              *)
(* ------------------------------------------------------------------ *)

module Exec_workload = Repro_exec.Workload
module Exec_harness = Repro_exec.Harness
module Machine = Repro_machine.Machine

(* Simulator prediction for the same workload shape: the paper's best
   shared-heap configuration (work stealing + eager black-holing +
   spark threads) swept over the same core ladder on the AMD 16-core
   model.  Problem sizes are the paper's, not the real runs' — the
   comparison is of curve {e shapes} (where each workload saturates),
   not absolute times. *)
let sim_series name ladder =
  let version_at c =
    Versions.with_eager
      (Versions.gph_steal ~machine:(Machine.with_cores Machine.amd16 c) ~ncaps:c ())
  in
  let work ~ncaps:_ () =
    match name with
    | "sumeuler" ->
        ignore (Repro_workloads.Sumeuler.gph ~n:(if quick then 3000 else 15000) ())
    | "parfib" ->
        ignore
          (Repro_workloads.Parfib.gph
             ~n:(if quick then 24 else 30)
             ~threshold:(if quick then 14 else 20)
             ())
    | "matmul" ->
        ignore (Repro_workloads.Matmul.gph ~n:(if quick then 240 else 500) ())
    | "mandelbrot" ->
        let d = if quick then 120 else 300 in
        ignore (Repro_workloads.Mandelbrot.gph ~width:d ~height:d ())
    | "apsp" -> ignore (Repro_workloads.Apsp.gph ~n:(if quick then 100 else 200) ())
    | _ -> ()
  in
  E.Exp.series ~label:("sim " ^ name) ~core_counts:ladder ~version_at ~work

let sim_vs_real () =
  hr "Real execution (OCaml 5 domains, work-stealing executor) vs. simulation";
  let hw = Domain.recommended_domain_count () in
  let ladder = Exec_harness.core_counts_up_to (min hw 16) in
  Printf.printf
    "%d hardware core(s); measuring each workload at %s domain(s)\n" hw
    (String.concat ", " (List.map string_of_int ladder));
  let repeats = if quick then 2 else 3 in
  let all_measurements =
    List.concat_map
      (fun (module W : Exec_workload.S) ->
        let size = if quick then W.quick_size else W.default_size in
        let ms = Exec_harness.sweep ~repeats ~cores_list:ladder ~size (module W) in
        Printf.printf "\n-- %s, size %d (%s): measured wall clock --\n" W.name
          size W.size_doc;
        Repro_util.Tablefmt.print (Exec_harness.to_table ms);
        let sim = sim_series W.name ladder in
        let t =
          Repro_util.Tablefmt.create
            ~aligns:(Repro_util.Tablefmt.Left :: List.map (fun _ -> Repro_util.Tablefmt.Right) ladder)
            ("speedup" :: List.map string_of_int ladder)
        in
        Repro_util.Tablefmt.add_row t
          ("real (measured)"
          :: List.map (fun (m : Exec_harness.measurement) -> Printf.sprintf "%.2f" m.speedup) ms);
        Repro_util.Tablefmt.add_row t
          ("sim (predicted)"
          :: List.map (fun s -> Printf.sprintf "%.2f" s) sim.E.Exp.speedups);
        Repro_util.Tablefmt.print t;
        ms)
      Exec_workload.all
  in
  Repro_util.Json_out.to_file "BENCH_exec.json"
    (Exec_harness.json_document all_measurements);
  Printf.printf "\nwrote BENCH_exec.json (%d measurements)\n"
    (List.length all_measurements)

(* ------------------------------------------------------------------ *)
(* Part 1b': Eden-style processes vs GpH-style domains                 *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Part 1b'': transport calibration                                    *)
(* ------------------------------------------------------------------ *)

module Wire = Repro_dist.Wire
module Shm_ring = Repro_dist.Shm_ring

let now_ns () = Repro_dist.Clock.now_ns ()

(* Echo servers for the calibration: bounce every message back until
   the parent closes the link. *)
let transport_echo_child () =
  let conn = Wire.create ~read_fd:Unix.stdin ~write_fd:Unix.stdout () in
  (try
     while true do
       Wire.send conn (Wire.recv conn)
     done
   with End_of_file -> ());
  exit 0

(* The shm variant: the segment path arrives as the argument after the
   marker, stdin is the doorbell (exactly the dist-worker convention). *)
let shm_echo_child path =
  let conn = Shm_ring.attach ~path ~side:`B ~doorbell:Unix.stdin () in
  (try
     while true do
       Shm_ring.send conn (Shm_ring.recv conn)
     done
   with End_of_file -> ());
  exit 0

let with_echo_child f =
  let parent_fd, child_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec parent_fd;
  let pid =
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; "--transport-echo" |]
      child_fd child_fd Unix.stderr
  in
  Unix.close child_fd;
  let conn = Wire.create ~read_fd:parent_fd ~write_fd:parent_fd () in
  let r = f conn in
  Wire.close conn;
  ignore (Unix.waitpid [] pid);
  r

let with_shm_echo_child f =
  let path = Shm_ring.create_segment () in
  let parent_fd, child_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec parent_fd;
  let pid =
    Unix.create_process Sys.executable_name
      [| Sys.executable_name; "--transport-echo-shm"; path |]
      child_fd Unix.stdout Unix.stderr
  in
  Unix.close child_fd;
  let conn = Shm_ring.attach ~path ~side:`A ~doorbell:parent_fd () in
  let r = f conn in
  Shm_ring.close conn;
  (* closing the doorbell is the child's EOF *)
  ignore (Unix.waitpid [] pid);
  Shm_ring.unlink_segment path;
  r

(* Round-trip measurements over either transport, from which the
   measured profile constants fall out. *)
type rtt = {
  small_rt_ns : int;
  big_rt_ns : int;
  per_message_ns : int;
  big_bytes : int;
}

let measure_rtt ~send ~recv =
  let round_trip payload n =
    let t0 = now_ns () in
    for _ = 1 to n do
      send payload;
      ignore (recv ())
    done;
    (now_ns () - t0) / n
  in
  (* warm-up: page in both processes' paths *)
  ignore (round_trip "x" 200);
  let small_rt_ns = round_trip "x" (if quick then 500 else 3000) in
  let big_bytes = 1 lsl 20 in
  let big_rt_ns =
    round_trip (String.make big_bytes 'y') (if quick then 10 else 50)
  in
  (* send-side fixed overhead: back-to-back sends.  The burst must
     stay well under the backpressure limit on both directions at
     once, since the echoes are only drained afterwards: under the
     socket buffer in kernel skb accounting terms (~1 KiB per tiny
     send) for the socketpair, under half the ring capacity for the
     shm rings — 100 is safely inside both. *)
  let burst = 100 in
  let t0 = now_ns () in
  for _ = 1 to burst do
    send "x"
  done;
  let per_message_ns = (now_ns () - t0) / burst in
  for _ = 1 to burst do
    ignore (recv ())
  done;
  { small_rt_ns; big_rt_ns; per_message_ns; big_bytes }

let profile_of_rtt ~name ~pack_ns_per_byte ~unpack_ns_per_byte ~packet_bytes
    (r : rtt) =
  let latency_ns = max 0 ((r.small_rt_ns / 2) - r.per_message_ns) in
  let wire_ns_per_byte =
    max 0.0
      (float_of_int (r.big_rt_ns - r.small_rt_ns)
      /. 2.0
      /. float_of_int r.big_bytes)
  in
  Repro_mp.Transport.measured ~name ~latency_ns
    ~per_message_ns:r.per_message_ns ~wire_ns_per_byte ~pack_ns_per_byte
    ~unpack_ns_per_byte ~packet_bytes ()

(* Marshal throughput on a representative flat payload — the pack and
   unpack costs of the socketpair control plane. *)
let marshal_costs () =
  let arr = Array.init (128 * 1024) float_of_int in
  let s = Marshal.to_string arr [] in
  let bytes = String.length s in
  let reps = if quick then 20 else 100 in
  let t0 = now_ns () in
  for _ = 1 to reps do
    ignore (Marshal.to_string arr [])
  done;
  let pack =
    float_of_int (now_ns () - t0) /. float_of_int reps /. float_of_int bytes
  in
  let t0 = now_ns () in
  for _ = 1 to reps do
    ignore (Marshal.from_string s 0 : float array)
  done;
  let unpack =
    float_of_int (now_ns () - t0) /. float_of_int reps /. float_of_int bytes
  in
  (pack, unpack)

type calibration = {
  cal_sock : Repro_mp.Transport.t;
  cal_shm : Repro_mp.Transport.t;
  sock_small_rt_ns : int;  (** cross-process ping-pong round trip *)
  shm_small_rt_ns : int;
  sock_small_one_way_ns : int;  (** one message across the transport *)
  shm_small_one_way_ns : int;
}

(* One-way small-message cost, both endpoints in this process so no
   scheduler is involved: what one message costs in software.  For the
   socketpair that is a write plus a read system call; for the ring it
   is a few cache-line transfers and no kernel at all — the hot-path
   difference the ping-pong numbers above bury in context-switch time
   on a loaded (or single-core) machine. *)
let small_one_way ~send ~recv =
  let n = if quick then 2_000 else 20_000 in
  for _ = 1 to 100 do
    send "x";
    ignore (recv ())
  done;
  let t0 = now_ns () in
  for _ = 1 to n do
    send "x";
    ignore (recv ())
  done;
  (now_ns () - t0) / n

let sock_one_way () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let ca = Wire.create ~read_fd:a ~write_fd:a ()
  and cb = Wire.create ~read_fd:b ~write_fd:b () in
  let r =
    small_one_way ~send:(Wire.send ca) ~recv:(fun () -> Wire.recv cb)
  in
  Unix.close a;
  Unix.close b;
  r

(* In-process shm costs: the one-way small-message figure plus a
   bulk-bandwidth figure (64 KiB messages, well inside the ring), from
   which the measured-shm profile constants come — the cross-process
   ping-pong would bake context-switch time into them. *)
let shm_inproc_costs () =
  let path = Shm_ring.create_segment () in
  let a = Shm_ring.attach ~path ~side:`A () in
  let b = Shm_ring.attach ~path ~side:`B () in
  let small =
    small_one_way ~send:(Shm_ring.send a) ~recv:(fun () -> Shm_ring.recv b)
  in
  (* bulk bandwidth on the float plane — the plane matmul blocks and
     mandelbrot rows actually ride — where frames are written into and
     read out of the mapping in place *)
  let elems = 8192 in
  let big_bytes = 8 * elems in
  let payload = Array.make elems 1.5 in
  let n = if quick then 200 else 2000 in
  let t0 = now_ns () in
  for _ = 1 to n do
    Shm_ring.send_floats a payload;
    ignore (Shm_ring.recv_floats b ~len:elems)
  done;
  let big = (now_ns () - t0) / n in
  Shm_ring.unlink_segment path;
  (small, max 0.0 (float_of_int (big - small) /. float_of_int big_bytes))

(* Both measured profiles, computed once: socketpair + Marshal (the
   control plane) and shm rings, whose float plane needs no
   marshalling at all — frames are written into and read out of the
   mapping in place, so the measured pack/unpack costs are zero by
   construction. *)
let measured_calibration =
  lazy
    (let pack, unpack = marshal_costs () in
     let sock_rtt =
       with_echo_child (fun conn ->
           measure_rtt ~send:(Wire.send conn) ~recv:(fun () -> Wire.recv conn))
     in
     let shm_rtt =
       with_shm_echo_child (fun conn ->
           measure_rtt
             ~send:(Shm_ring.send conn)
             ~recv:(fun () -> Shm_ring.recv conn))
     in
     let shm_small_ns, shm_wire_ns_per_byte = shm_inproc_costs () in
     {
       cal_sock =
         profile_of_rtt ~name:"measured-sock" ~pack_ns_per_byte:pack
           ~unpack_ns_per_byte:unpack ~packet_bytes:Wire.default_packet_bytes
           sock_rtt;
       cal_shm =
         Repro_mp.Transport.measured ~name:"measured-shm" ~latency_ns:0
           ~per_message_ns:shm_small_ns
           ~wire_ns_per_byte:shm_wire_ns_per_byte ~pack_ns_per_byte:0.0
           ~unpack_ns_per_byte:0.0 ~packet_bytes:32768 ();
       sock_small_rt_ns = sock_rtt.small_rt_ns;
       shm_small_rt_ns = shm_rtt.small_rt_ns;
       sock_small_one_way_ns = sock_one_way ();
       shm_small_one_way_ns = shm_small_ns;
     })

let json_of_profile (p : Repro_mp.Transport.t) =
  Repro_util.Json_out.Obj
    [
      ("name", Repro_util.Json_out.Str p.name);
      ("latency_ns", Repro_util.Json_out.Int p.latency_ns);
      ("per_message_ns", Repro_util.Json_out.Int p.per_message_ns);
      ("wire_ns_per_byte", Repro_util.Json_out.Float p.wire_ns_per_byte);
      ("pack_ns_per_byte", Repro_util.Json_out.Float p.pack_ns_per_byte);
      ("unpack_ns_per_byte", Repro_util.Json_out.Float p.unpack_ns_per_byte);
      ("packet_bytes", Repro_util.Json_out.Int p.packet_bytes);
    ]

let calibration_json () =
  let c = Lazy.force measured_calibration in
  Repro_util.Json_out.Obj
    [
      ("profiles", Repro_util.Json_out.List
         [ json_of_profile c.cal_sock; json_of_profile c.cal_shm ]);
      ("sock_small_rt_ns", Repro_util.Json_out.Int c.sock_small_rt_ns);
      ("shm_small_rt_ns", Repro_util.Json_out.Int c.shm_small_rt_ns);
      ( "sock_small_one_way_ns",
        Repro_util.Json_out.Int c.sock_small_one_way_ns );
      ("shm_small_one_way_ns", Repro_util.Json_out.Int c.shm_small_one_way_ns);
    ]

(* ---------------- metrics record overhead ---------------- *)

(* Interleaved A/B: rounds alternate enabled/disabled on the very same
   instruments, so drift (thermal, GC phase, frequency scaling) lands
   on both arms equally and the difference isolates the record cost.
   Micro level: counter incr (per-domain shard, fetch_and_add) and
   histogram observe; macro level: a full instrumented pool workload
   with the default registry toggled. *)
let metrics_overhead () =
  hr "Metrics record overhead (interleaved A/B, enabled vs disabled)";
  let module M = Repro_metrics.Metrics in
  let median l =
    let a = Array.of_list l in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let time_ns f =
    let t0 = now_ns () in
    f ();
    now_ns () - t0
  in
  let rounds = if quick then 5 else 9 in
  let reg = M.create () in
  let c = M.counter ~registry:reg ~labels:[ ("worker", "0") ] "bench_counter_total" in
  let h = M.histogram ~registry:reg "bench_hist_ns" in
  let ops = if quick then 200_000 else 1_000_000 in
  let run_ab name round =
    let ena = ref [] and dis = ref [] in
    for r = 1 to 2 * rounds do
      let on = r land 1 = 1 in
      M.set_enabled reg on;
      let per_op = float_of_int (time_ns round) /. float_of_int ops in
      let cell = if on then ena else dis in
      cell := per_op :: !cell
    done;
    M.set_enabled reg true;
    let e = median !ena and d = median !dis in
    Printf.printf "  %-32s enabled %6.2f ns/op   disabled %6.2f ns/op   delta %+.2f ns\n%!"
      name e d (e -. d);
    (name, e, d)
  in
  let micro =
    [
      run_ab "counter incr (sharded XADD)" (fun () ->
          for i = 1 to ops do
            ignore i;
            M.incr c
          done);
      (* mask the value so min/max stabilise after the first rounds:
         steady-state observe, not the pathological every-op-new-max
         case a monotone argument would produce *)
      run_ab "histogram observe" (fun () ->
          for i = 1 to ops do
            M.observe h (i land 0xffff)
          done);
    ]
  in
  (* macro: same pool, same workload, default registry toggled between
     repeats — the instrumented paths are run_task's busy-ns clocking
     and the harness duration histogram *)
  let module W = (val Option.get (Repro_exec.Workload.find "sumeuler")) in
  let cores = min 4 (Domain.recommended_domain_count ()) in
  let size = W.quick_size in
  let e_ns, d_ns =
    Repro_exec.Pool.with_pool ~cores (fun () ->
        ignore (W.run ~size ());
        let ena = ref [] and dis = ref [] in
        for r = 1 to 2 * rounds do
          let on = r land 1 = 1 in
          M.set_enabled M.default on;
          let dt = float_of_int (time_ns (fun () -> ignore (W.run ~size ()))) in
          let cell = if on then ena else dis in
          cell := dt :: !cell
        done;
        M.set_enabled M.default true;
        (median !ena, median !dis))
  in
  Printf.printf
    "  %-32s enabled %6.2f ms     disabled %6.2f ms     delta %+.1f%%\n%!"
    (Printf.sprintf "sumeuler size %d, %d cores" size cores)
    (e_ns /. 1e6) (d_ns /. 1e6)
    (100. *. (e_ns -. d_ns) /. d_ns);
  Repro_util.Json_out.to_file "BENCH_metrics.json"
    (Repro_util.Json_out.Obj
       (("schema", Repro_util.Json_out.Str "repro/bench-metrics/v1")
        :: Exec_harness.env_header ()
       @ [
           ( "micro_ns_per_op",
             Repro_util.Json_out.List
               (List.map
                  (fun (name, e, d) ->
                    Repro_util.Json_out.Obj
                      [
                        ("name", Repro_util.Json_out.Str name);
                        ("enabled_ns", Repro_util.Json_out.Float e);
                        ("disabled_ns", Repro_util.Json_out.Float d);
                      ])
                  micro) );
           ( "workload_e2e",
             Repro_util.Json_out.Obj
               [
                 ("workload", Repro_util.Json_out.Str W.name);
                 ("cores", Repro_util.Json_out.Int cores);
                 ("size", Repro_util.Json_out.Int size);
                 ("enabled_ns", Repro_util.Json_out.Float e_ns);
                 ("disabled_ns", Repro_util.Json_out.Float d_ns);
               ] );
         ]));
  Printf.printf "\nwrote BENCH_metrics.json\n%!"

(* ---------------- fiber runtime overhead ---------------- *)

(* The fiber primitives against the raw spark machinery they ride on:
   spawn+join of a no-op fiber vs spark+force of a no-op future, the
   await/park/resume round trip (two fibers ping-ponging through fresh
   promises), the yield reschedule, and the designed operating point —
   100k fibers parked on one gate promise over 2 domains. *)
let fiber_overhead () =
  hr "Fiber runtime overhead (spawn/await/yield vs raw sparks)";
  let module Fiber = Repro_fiber.Fiber in
  let module Promise = Repro_fiber.Promise in
  let time_ns f =
    let t0 = now_ns () in
    f ();
    now_ns () - t0
  in
  let per_op name ops dt_ns =
    let ns = float_of_int dt_ns /. float_of_int ops in
    Printf.printf "  %-36s %8.0f ns/op  (%d ops)\n%!" name ns ops;
    (name, ns, ops)
  in
  let ops = if quick then 20_000 else 100_000 in
  (* one full lifecycle at a time: the sequential spawn+join cost, not
     the queueing throughput *)
  let spawn_join =
    Fiber.run ~cores:1 (fun () ->
        time_ns (fun () ->
            for _ = 1 to ops do
              Fiber.join (Fiber.spawn (fun () -> ()))
            done))
    |> per_op "fiber spawn+join" ops
  in
  let spark_force =
    Repro_exec.Pool.with_pool ~cores:1 (fun () ->
        time_ns (fun () ->
            for _ = 1 to ops do
              Repro_exec.Future.force (Repro_exec.Future.spark (fun () -> ()))
            done))
    |> per_op "raw spark+force (baseline)" ops
  in
  (* fast path: the promise is already fulfilled, await never parks *)
  let await_resolved =
    Fiber.run ~cores:1 (fun () ->
        let p = Promise.of_value () in
        time_ns (fun () ->
            for _ = 1 to ops do
              Fiber.await p
            done))
    |> per_op "await (already fulfilled)" ops
  in
  (* slow path: two fibers ping-pong through fresh promises — each leg
     is one park and one cross-fiber resume (racing the fast path,
     as production awaits do) *)
  let park_resume =
    Fiber.run ~cores:2 (fun () ->
        let ping = Array.init ops (fun _ -> Promise.create ()) in
        let pong = Array.init ops (fun _ -> Promise.create ()) in
        time_ns (fun () ->
            let a =
              Fiber.spawn (fun () ->
                  for i = 0 to ops - 1 do
                    Promise.fulfil ping.(i) ();
                    Fiber.await pong.(i)
                  done)
            in
            let b =
              Fiber.spawn (fun () ->
                  for i = 0 to ops - 1 do
                    Fiber.await ping.(i);
                    Promise.fulfil pong.(i) ()
                  done)
            in
            Fiber.join a;
            Fiber.join b))
    |> per_op "await leg (park+resume)" (2 * ops)
  in
  let yield_ns =
    Fiber.run ~cores:1 (fun () ->
        time_ns (fun () ->
            for _ = 1 to ops do
              Fiber.yield ()
            done))
    |> per_op "yield (FIFO reschedule)" ops
  in
  (* the operating point from the issue: mass-park on one gate, mass
     release, all on 2 domains *)
  let nmass = if quick then 20_000 else 100_000 in
  let mass_dt_ns, peak =
    Fiber.run ~cores:2 (fun () ->
        let gate : unit Promise.t = Promise.create () in
        let t0 = now_ns () in
        let hs =
          List.init nmass (fun _ -> Fiber.spawn (fun () -> Fiber.await gate))
        in
        Promise.fulfil gate ();
        List.iter Fiber.join hs;
        let st = Fiber.stats () in
        (now_ns () - t0, st.Fiber.s_high_water))
  in
  Printf.printf "  %-36s %8.2f ms  (%d fibers, 2 domains, peak live %d)\n%!"
    "gate release end-to-end" (float_of_int mass_dt_ns /. 1e6) nmass peak;
  Repro_util.Json_out.to_file "BENCH_fiber.json"
    (Repro_util.Json_out.Obj
       (("schema", Repro_util.Json_out.Str "repro/bench-fiber/v1")
        :: Exec_harness.env_header ()
       @ [
           ( "micro_ns_per_op",
             Repro_util.Json_out.List
               (List.map
                  (fun (name, ns, ops) ->
                    Repro_util.Json_out.Obj
                      [
                        ("name", Repro_util.Json_out.Str name);
                        ("ns_per_op", Repro_util.Json_out.Float ns);
                        ("ops", Repro_util.Json_out.Int ops);
                      ])
                  [
                    spawn_join; spark_force; await_resolved; park_resume;
                    yield_ns;
                  ]) );
           ( "mass_park_release",
             Repro_util.Json_out.Obj
               [
                 ("fibers", Repro_util.Json_out.Int nmass);
                 ("cores", Repro_util.Json_out.Int 2);
                 ("total_ns", Repro_util.Json_out.Int mass_dt_ns);
                 ("peak_live", Repro_util.Json_out.Int peak);
                 ( "fibers_per_s",
                   Repro_util.Json_out.Float
                     (float_of_int nmass *. 1e9
                     /. float_of_int (max 1 mass_dt_ns)) );
               ] );
         ]));
  Printf.printf "\nwrote BENCH_fiber.json\n%!"

(* Calibrate [Transport.measured] profiles from this machine: round
   trips over a real socketpair and a real shm ring pair give latency
   / per-message / per-byte wire costs, a Marshal micro-benchmark
   gives the control plane's pack/unpack throughput.  These are the
   measured analogues of the modelled pvm/mpi/shm profiles. *)
let transport_calibration () =
  hr "Transport calibration: measured socketpair and shm rings, vs modelled \
      profiles";
  let c = Lazy.force measured_calibration in
  let t =
    Repro_util.Tablefmt.create
      ~aligns:
        Repro_util.Tablefmt.[ Left; Right; Right; Right; Right; Right; Right ]
      [
        "profile"; "latency ns"; "per-msg ns"; "wire ns/B"; "pack ns/B";
        "unpack ns/B"; "packet B";
      ]
  in
  List.iter
    (fun (p : Repro_mp.Transport.t) ->
      Repro_util.Tablefmt.add_row t
        [
          p.name;
          string_of_int p.latency_ns;
          string_of_int p.per_message_ns;
          Printf.sprintf "%.3f" p.wire_ns_per_byte;
          Printf.sprintf "%.3f" p.pack_ns_per_byte;
          Printf.sprintf "%.3f" p.unpack_ns_per_byte;
          string_of_int p.packet_bytes;
        ])
    (Repro_mp.Transport.all @ [ c.cal_sock; c.cal_shm ]);
  Repro_util.Tablefmt.print t;
  Printf.printf
    "small-packet cross-process ping-pong: socketpair %d ns vs shm ring %d \
     ns (%.1fx; scheduler-bound when PEs outnumber cores)\n"
    c.sock_small_rt_ns c.shm_small_rt_ns
    (float_of_int c.sock_small_rt_ns /. float_of_int (max 1 c.shm_small_rt_ns));
  Printf.printf
    "small-packet one-way software cost: socketpair %d ns (two syscalls) vs \
     shm ring %d ns (no kernel) — %.1fx\n"
    c.sock_small_one_way_ns c.shm_small_one_way_ns
    (float_of_int c.sock_small_one_way_ns
    /. float_of_int (max 1 c.shm_small_one_way_ns));
  Printf.printf
    "(measured = this machine; modelled rows are the paper-era middleware \
     profiles)\n"

module Dist_workload = Repro_dist.Workload
module Dist_measure = Repro_dist.Measure

(* The paper's central comparison, measured rather than simulated: the
   same five kernels on the distributed-heap backend (one process per
   PE, private heaps and GCs, framed socketpair messages) and on the
   shared-heap backend (domains + work stealing).  Both run at the
   same sizes and the same PE ladder and both must reproduce the
   sequential checksum bit-for-bit. *)
let eden_vs_gph () =
  let transport_name = Repro_dist.Farm.transport_name dist_transport in
  hr
    (Printf.sprintf
       "Eden-style processes (%s transport) vs GpH-style domains (measured, \
        this machine)"
       transport_name);
  let hw = Domain.recommended_domain_count () in
  let ladder = Exec_harness.core_counts_up_to (max 4 (min hw 8)) in
  if List.exists (fun c -> c > hw) ladder then
    Printf.printf
      "note: %d hardware core(s) — points beyond %d are oversubscribed\n" hw hw;
  let repeats = if quick then 2 else 3 in
  let dist_ms, exec_ms =
    List.fold_left
      (fun (dacc, eacc) (module D : Dist_workload.S) ->
        let (module W) =
          List.find
            (fun (module W : Exec_workload.S) -> W.name = D.name)
            Exec_workload.all
        in
        let size = if quick then D.quick_size else D.default_size in
        let reference = D.reference ~size in
        let dms =
          Dist_measure.sweep ~repeats ~transport:dist_transport
            ~procs_list:ladder ~size (module D)
        in
        let ems =
          Exec_harness.sweep ~repeats ~cores_list:ladder ~size (module W)
        in
        List.iter
          (fun (m : Dist_measure.measurement) ->
            if m.result <> reference then
              failwith
                (Printf.sprintf "%s procs=%d: checksum mismatch" D.name m.procs))
          dms;
        List.iter
          (fun (m : Exec_harness.measurement) ->
            if m.result <> reference then
              failwith
                (Printf.sprintf "%s cores=%d: checksum mismatch" W.name m.cores))
          ems;
        Printf.printf "\n-- %s, size %d (%s): both backends, checksum %d --\n"
          D.name size D.size_doc reference;
        let t =
          Repro_util.Tablefmt.create
            ~aligns:
              (Repro_util.Tablefmt.Left
              :: List.map (fun _ -> Repro_util.Tablefmt.Right) ladder)
            ("speedup" :: List.map string_of_int ladder)
        in
        Repro_util.Tablefmt.add_row t
          ("processes (Eden/GUM)"
          :: List.map
               (fun (m : Dist_measure.measurement) ->
                 Printf.sprintf "%.2f" m.speedup)
               dms);
        Repro_util.Tablefmt.add_row t
          ("domains (GpH)"
          :: List.map
               (fun (m : Exec_harness.measurement) ->
                 Printf.sprintf "%.2f" m.speedup)
               ems);
        Repro_util.Tablefmt.print t;
        Printf.printf "per-process-count detail (Eden side):\n";
        Repro_util.Tablefmt.print (Dist_measure.to_table dms);
        (dacc @ dms, eacc @ ems))
      ([], []) Dist_workload.all
  in
  Repro_util.Json_out.to_file "BENCH_dist.json"
    (Repro_util.Json_out.Obj
       [
         ("schema", Repro_util.Json_out.Str "repro/bench-dist/v1");
         ( "env",
           Repro_util.Json_out.Obj
             (Exec_harness.env_header ~backend:"processes"
                ~transport:transport_name ()) );
         ("transport_calibration", calibration_json ());
         ( "measurements",
           Repro_util.Json_out.List
             (List.map Dist_measure.json_of_measurement dist_ms) );
         ( "domains_baseline",
           Repro_util.Json_out.Obj
             [
               ( "env",
                 Repro_util.Json_out.Obj
                   (Exec_harness.env_header ~backend:"domains" ()) );
               ( "measurements",
                 Repro_util.Json_out.List
                   (List.map Exec_harness.json_of_measurement exec_ms) );
             ] );
       ]);
  Printf.printf
    "\nwrote BENCH_dist.json (%d process measurements + %d domain baselines)\n"
    (List.length dist_ms) (List.length exec_ms)

(* Machine-readable dump of the existing Fig. 1 reproduction numbers,
   next to the paper's reported seconds. *)
let dump_fig1_json (r : E.Fig1.result) =
  let rows =
    List.map2
      (fun (row : E.Exp.row) (paper_label, paper_s) ->
        Repro_util.Json_out.Obj
          [
            ("version", Repro_util.Json_out.Str row.E.Exp.label);
            ("paper_version", Repro_util.Json_out.Str paper_label);
            ("simulated_s", Repro_util.Json_out.Float row.E.Exp.elapsed_s);
            ("paper_s", Repro_util.Json_out.Float paper_s);
          ])
      r.rows E.Paper.fig1_runtimes_s
  in
  Repro_util.Json_out.to_file "BENCH_repro.json"
    (Repro_util.Json_out.Obj
       (("schema", Repro_util.Json_out.Str "repro/bench-repro/v1")
        :: Exec_harness.env_header ~backend:"simulator" ()
       @ [
           ("figure", Repro_util.Json_out.Str "fig1");
           ("n", Repro_util.Json_out.Int r.n);
           ("rows", Repro_util.Json_out.List rows);
         ]));
  Printf.printf "wrote BENCH_repro.json (%d rows)\n" (List.length rows)

(* ------------------------------------------------------------------ *)
(* Part 1c: minor-heap sweep                                           *)
(* ------------------------------------------------------------------ *)

(* The paper's big-allocation-area optimisation (Sec. IV-B) tunes the
   per-CPU allocation area to trade minor-GC frequency against cache
   locality.  The OCaml 5 analogue is the per-domain minor heap,
   sized by [OCAMLRUNPARAM s=<words>] — which is only read at startup,
   so each setting re-executes this binary with the environment
   variable set and a [--minor-heap-child] marker. *)

let minor_heap_settings = [ 65_536; 262_144; 1_048_576; 4_194_304 ]

let minor_heap_workload () =
  List.find
    (fun (module W : Exec_workload.S) -> W.name = "sumeuler")
    Exec_workload.all

let minor_heap_child () =
  let (module W) = minor_heap_workload () in
  let size = if quick then W.quick_size else W.default_size in
  let cores = min 2 (Domain.recommended_domain_count ()) in
  let m = Exec_harness.measure ~repeats:2 ~cores ~size (module W) in
  print_string (Repro_util.Json_out.to_string (Exec_harness.json_of_measurement m))

let minor_heap_sweep () =
  hr "Minor-heap sweep: OCAMLRUNPARAM s=<words> vs GC counters";
  let (module W) = minor_heap_workload () in
  Printf.printf
    "workload %s at %d domain(s); each setting runs in a fresh process\n"
    W.name
    (min 2 (Domain.recommended_domain_count ()));
  let header = Exec_harness.env_header () in
  let rows =
    List.filter_map
      (fun words ->
        Unix.putenv "OCAMLRUNPARAM" (Printf.sprintf "s=%d" words);
        let ic =
          Unix.open_process_in
            (Filename.quote Sys.executable_name ^ " --minor-heap-child")
        in
        let buf = Buffer.create 256 in
        (try
           while true do
             Buffer.add_channel buf ic 1
           done
         with End_of_file -> ());
        match (Unix.close_process_in ic, Buffer.contents buf) with
        | Unix.WEXITED 0, s -> (
            match Repro_util.Json_in.parse s with
            | j -> Some (words, j)
            | exception Repro_util.Json_in.Parse_error _ ->
                Printf.printf "  s=%d: unparseable child output\n" words;
                None)
        | _ ->
            Printf.printf "  s=%d: child run failed\n" words;
            None)
      minor_heap_settings
  in
  let t =
    Repro_util.Tablefmt.create
      ~aligns:
        Repro_util.Tablefmt.[ Right; Right; Right; Right; Right; Right ]
      [
        "minor heap (words)"; "mean"; "minor GCs"; "major GCs"; "minor words";
        "promoted";
      ]
  in
  let get j key f = Option.value ~default:0.0 (Option.bind (Repro_util.Json_in.member key j) f) in
  List.iter
    (fun (words, j) ->
      let num key = get j key Repro_util.Json_in.to_float in
      Repro_util.Tablefmt.add_row t
        [
          string_of_int words;
          Printf.sprintf "%.2f ms" (num "mean_ns" /. 1e6);
          Printf.sprintf "%.0f" (num "gc_minor_collections");
          Printf.sprintf "%.0f" (num "gc_major_collections");
          Printf.sprintf "%.3e" (num "gc_minor_words");
          Printf.sprintf "%.3e" (num "gc_promoted_words");
        ])
    rows;
  Repro_util.Tablefmt.print t;
  Repro_util.Json_out.to_file "BENCH_minorheap.json"
    (Repro_util.Json_out.Obj
       (("schema", Repro_util.Json_out.Str "repro/bench-minorheap/v1")
        :: header
       @ [
           ( "settings",
             Repro_util.Json_out.List
               (List.map
                  (fun (words, j) ->
                    Repro_util.Json_out.Obj
                      [
                        ("minor_heap_words", Repro_util.Json_out.Int words);
                        ("measurement", j);
                      ])
                  rows) );
         ]));
  Printf.printf "wrote BENCH_minorheap.json (%d settings)\n" (List.length rows)

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel                                                    *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

(* One Test.make per table/figure: each staged run executes the whole
   experiment at a reduced size, so Bechamel measures end-to-end
   simulation cost. *)

let bench_fig1 =
  Test.make ~name:"fig1/sumEuler-runtimes-8cores"
    (Staged.stage (fun () -> ignore (E.Fig1.run ~n:1500 ())))

let bench_fig2 =
  Test.make ~name:"fig2/sumEuler-traces"
    (Staged.stage (fun () -> ignore (E.Fig2.run ~n:1500 ())))

let bench_fig3 =
  Test.make ~name:"fig3/speedup-sweeps"
    (Staged.stage (fun () ->
         ignore (E.Fig3.run ~cores:[ 1; 4; 8 ] ~n_euler:1500 ~n_mat:300 ())))

let bench_fig4 =
  Test.make ~name:"fig4/matmul-traces-virtual-PEs"
    (Staged.stage (fun () -> ignore (E.Fig4.run ~n:240 ())))

let bench_fig5 =
  Test.make ~name:"fig5/apsp-blackholing"
    (Staged.stage (fun () ->
         ignore (E.Fig5.run ~cores:[ 1; 4; 8 ] ~n:80 ())))

(* Substrate micro-benchmarks. *)

let bench_deque =
  Test.make ~name:"substrate/ws-deque-push-pop-steal"
    (Staged.stage (fun () ->
         let q = Repro_deque.Ws_deque.create () in
         for i = 1 to 1000 do
           Repro_deque.Ws_deque.push q i
         done;
         for _ = 1 to 500 do
           ignore (Repro_deque.Ws_deque.pop q);
           ignore (Repro_deque.Ws_deque.steal q)
         done))

let bench_prio_queue =
  Test.make ~name:"substrate/prio-queue-1k"
    (Staged.stage (fun () ->
         let q = Repro_util.Prio_queue.create () in
         let rng = Repro_util.Rng.create 1 in
         for _ = 1 to 1000 do
           Repro_util.Prio_queue.add q (Repro_util.Rng.int rng 100000) ()
         done;
         while not (Repro_util.Prio_queue.is_empty q) do
           ignore (Repro_util.Prio_queue.pop q)
         done))

(* Regression guard for the schedule/dispatch hot path: the event
   queue is created once and reused via [clear], so this is fast only
   while [clear] keeps the backing array allocated. *)
let bench_prio_queue_reuse =
  let q = Repro_util.Prio_queue.create () in
  let rng = Repro_util.Rng.create 3 in
  Test.make ~name:"substrate/prio-queue-clear-reuse-1k"
    (Staged.stage (fun () ->
         Repro_util.Prio_queue.clear q;
         for _ = 1 to 1000 do
           Repro_util.Prio_queue.add q (Repro_util.Rng.int rng 100000) ()
         done;
         for _ = 1 to 500 do
           ignore (Repro_util.Prio_queue.pop q)
         done))

let bench_engine =
  Test.make ~name:"substrate/engine-10k-events"
    (Staged.stage (fun () ->
         let e = Repro_sim.Engine.create () in
         for i = 1 to 10_000 do
           Repro_sim.Engine.at e i (fun () -> ())
         done;
         ignore (Repro_sim.Engine.run e)))

let bench_rng =
  Test.make ~name:"substrate/splitmix64-10k"
    (Staged.stage (fun () ->
         let r = Repro_util.Rng.create 7 in
         for _ = 1 to 10_000 do
           ignore (Repro_util.Rng.next_int r)
         done))

let bench_rts_threads =
  Test.make ~name:"substrate/rts-1k-threads"
    (Staged.stage (fun () ->
         let cfg = Repro_parrts.Config.default ~ncaps:4 () in
         ignore
           (Rts.run cfg (fun () ->
                let module Api = Rts.Api in
                let remaining = ref 1000 and waiter = ref None in
                for _ = 1 to 1000 do
                  ignore
                    (Api.spawn (fun () ->
                         Api.charge (Repro_util.Cost.make 1000 ~alloc:256);
                         decr remaining;
                         if !remaining = 0 then
                           Option.iter (fun k -> k ()) !waiter))
                done;
                if !remaining > 0 then Api.block (fun wake -> waiter := Some wake)))))

(* Ablation benches (DESIGN.md section 5): one per design choice. *)

let run_sumeuler (v : Versions.version) n =
  ignore
    (Rts.run v.config (fun () ->
         if Repro_parrts.Config.is_distributed v.config then
           ignore (Repro_workloads.Sumeuler.eden ~n ())
         else ignore (Repro_workloads.Sumeuler.gph ~n ())))

let bench_ablation_spark_runner =
  Test.make ~name:"ablation/thread-per-spark-vs-spark-threads"
    (Staged.stage (fun () ->
         let base = Versions.gph_steal ~ncaps:8 () in
         let tps =
           {
             base with
             config =
               { base.config with spark_runner = Repro_parrts.Config.Thread_per_spark };
           }
         in
         run_sumeuler base 1500;
         run_sumeuler tps 1500))

let bench_ablation_heap =
  Test.make ~name:"ablation/shared-vs-semi-distributed-heap"
    (Staged.stage (fun () ->
         run_sumeuler (Versions.gph_steal ~ncaps:8 ()) 1500;
         run_sumeuler (Versions.gph_semi_distributed ~ncaps:8 ()) 1500))

let bench_ablation_gum =
  Test.make ~name:"ablation/gum-vs-eden-vs-shared-gph"
    (Staged.stage (fun () ->
         ignore
           (Rts.run (Versions.gum ~npes:8 ()).config (fun () ->
                Repro_workloads.Sumeuler.gum ~n:1500 ()));
         ignore
           (Rts.run (Versions.eden ~npes:8 ()).config (fun () ->
                Repro_workloads.Sumeuler.eden ~n:1500 ()));
         run_sumeuler (Versions.gph_steal ~ncaps:8 ()) 1500))

let bench_ablation_transport =
  Test.make ~name:"ablation/pvm-vs-mpi-vs-shm"
    (Staged.stage (fun () ->
         List.iter
           (fun tr -> run_sumeuler (Versions.eden ~npes:8 ~transport:tr ()) 1500)
           Repro_mp.Transport.all))

let benchmark () =
  let tests =
    [
      bench_fig1;
      bench_fig2;
      bench_fig3;
      bench_fig4;
      bench_fig5;
      bench_deque;
      bench_prio_queue;
      bench_prio_queue_reuse;
      bench_engine;
      bench_rng;
      bench_rts_threads;
      bench_ablation_spark_runner;
      bench_ablation_heap;
      bench_ablation_gum;
      bench_ablation_transport;
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:(Some 100) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  hr "Bechamel: per-figure and substrate benchmarks (real time)";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name m ->
          match Analyze.OLS.estimates m with
          | Some [ est ] -> Printf.printf "  %-50s %12.1f ns/run\n%!" name est
          | _ -> Printf.printf "  %-50s (no estimate)\n%!" name)
        results)
    tests

let () =
  (* dist-worker hook first: when the eden-vs-gph section re-executes
     this binary as a PE, it must not run the harness *)
  Repro_dist.Worker.maybe_run Sys.argv;
  let argv = Array.to_list Sys.argv in
  if List.mem "--transport-echo" argv then transport_echo_child ()
  else if List.mem "--transport-echo-shm" argv then shm_echo_child Sys.argv.(2)
  else if List.mem "--minor-heap-child" argv then minor_heap_child ()
  else if List.mem "--minor-heap" argv then minor_heap_sweep ()
  else if List.mem "--transport" argv then transport_calibration ()
  else if List.mem "--metrics-overhead" argv then metrics_overhead ()
  else if List.mem "--fiber-overhead" argv then fiber_overhead ()
  else if List.mem "--eden-vs-gph" argv then eden_vs_gph ()
  else begin
    Printf.printf
      "Reproduction harness: 'Comparing and Optimising Parallel Haskell \
       Implementations for Multicore Machines' (ICPP 2009)\n";
    if quick then Printf.printf "(quick mode: reduced sizes)\n";
    let fig1 = reproduce_fig1 () in
    dump_fig1_json fig1;
    reproduce_fig2 ();
    reproduce_fig3 ();
    reproduce_fig4 ();
    reproduce_fig5 ();
    sim_vs_real ();
    eden_vs_gph ();
    transport_calibration ();
    metrics_overhead ();
    fiber_overhead ();
    benchmark ()
  end
