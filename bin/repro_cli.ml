(** Command-line driver: run any of the paper's experiments, dump
    traces, or run a single workload under a chosen runtime version. *)

open Cmdliner
module E = Repro_experiments
module Versions = Repro_core.Versions
module Machine = Repro_machine.Machine
module Rts = Repro_parrts.Rts
module Report = Repro_parrts.Report

let out_file =
  let doc = "Also write the output to $(docv)." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc ~docv:"FILE")

let emit out s =
  print_string s;
  match out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc s);
      Printf.eprintf "wrote %s\n%!" path

let quick =
  let doc = "Run at reduced problem sizes (fast smoke run)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

(* ---------------- fig1 ---------------- *)

let fig1_cmd =
  let run quick out =
    let n = if quick then 3000 else E.Fig1.n_default in
    let r = E.Fig1.run ~n () in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf
         "Fig. 1: parallel runtimes of the sumEuler program for [1..%d]\n" n);
    Buffer.add_string buf (Repro_util.Tablefmt.to_string (E.Fig1.to_table r));
    Buffer.add_string buf
      (Printf.sprintf "ordering as in the paper: %b\n" (E.Fig1.ordering_holds r));
    emit out (Buffer.contents buf)
  in
  Cmd.v
    (Cmd.info "fig1" ~doc:"Reproduce Fig. 1 (sumEuler runtimes, Intel 8-core)")
    Term.(const run $ quick $ out_file)

(* ---------------- fig2 ---------------- *)

let fig2_cmd =
  let run quick out width =
    let n = if quick then 3000 else E.Fig1.n_default in
    let r = E.Fig2.run ~n () in
    emit out (E.Fig2.render ~width r)
  in
  let width =
    Arg.(value & opt int 100 & info [ "width" ] ~doc:"Timeline width in columns.")
  in
  Cmd.v
    (Cmd.info "fig2" ~doc:"Reproduce Fig. 2 (sumEuler traces as ASCII timelines)")
    Term.(const run $ quick $ out_file $ width)

(* ---------------- fig3 ---------------- *)

let fig3_cmd =
  let run quick out =
    let r =
      if quick then E.Fig3.run ~cores:[ 1; 2; 4; 8; 16 ] ~n_euler:6000 ~n_mat:1000 ()
      else E.Fig3.run ()
    in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf
      (Printf.sprintf "Fig. 3a: relative speedup, sumEuler [1..%d], AMD 16-core\n"
         r.n_euler);
    Buffer.add_string buf (Format.asprintf "%a" E.Exp.pp_speedup_table r.sumeuler);
    Buffer.add_string buf (E.Exp.render_speedup_plot r.sumeuler);
    Buffer.add_string buf
      (Printf.sprintf "\nFig. 3b: relative speedup, matmul %dx%d, AMD 16-core\n"
         r.n_mat r.n_mat);
    Buffer.add_string buf (Format.asprintf "%a" E.Exp.pp_speedup_table r.matmul);
    Buffer.add_string buf (E.Exp.render_speedup_plot r.matmul);
    Buffer.add_string buf
      (Printf.sprintf "shapes as in the paper: %b\n" (E.Fig3.shapes_hold r));
    emit out (Buffer.contents buf)
  in
  Cmd.v
    (Cmd.info "fig3" ~doc:"Reproduce Fig. 3 (speedups, AMD 16-core)")
    Term.(const run $ quick $ out_file)

(* ---------------- fig4 ---------------- *)

let fig4_cmd =
  let run quick out width =
    let n = if quick then 400 else 1000 in
    let r = E.Fig4.run ~n () in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf (E.Fig4.render ~width r);
    Buffer.add_string buf
      (Printf.sprintf "shapes as in the paper: %b\n" (E.Fig4.shapes_hold r));
    emit out (Buffer.contents buf)
  in
  let width =
    Arg.(value & opt int 100 & info [ "width" ] ~doc:"Timeline width in columns.")
  in
  Cmd.v
    (Cmd.info "fig4" ~doc:"Reproduce Fig. 4 (matmul traces, virtual PEs)")
    Term.(const run $ quick $ out_file $ width)

(* ---------------- fig5 ---------------- *)

let fig5_cmd =
  let run quick out =
    let r =
      if quick then E.Fig5.run ~cores:[ 1; 2; 4; 8; 16 ] ~n:200 ()
      else E.Fig5.run ()
    in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf
      (Printf.sprintf
         "Fig. 5: relative speedup, shortest paths (%d nodes), AMD 16-core\n" r.n);
    Buffer.add_string buf (Format.asprintf "%a" E.Exp.pp_speedup_table r.series);
    Buffer.add_string buf (E.Exp.render_speedup_plot r.series);
    Buffer.add_string buf
      (Printf.sprintf "shapes as in the paper: %b\n" (E.Fig5.shapes_hold r));
    emit out (Buffer.contents buf)
  in
  Cmd.v
    (Cmd.info "fig5" ~doc:"Reproduce Fig. 5 (shortest-paths speedups)")
    Term.(const run $ quick $ out_file)

(* ---------------- run: single workload ---------------- *)

let version_conv =
  let versions ncaps machine =
    [
      ("plain", Versions.gph_plain ~machine ~ncaps ());
      ("bigalloc", Versions.gph_bigalloc ~machine ~ncaps ());
      ("sync", Versions.gph_sync ~machine ~ncaps ());
      ("steal", Versions.gph_steal ~machine ~ncaps ());
      ("steal-eager", Versions.with_eager (Versions.gph_steal ~machine ~ncaps ()));
      ("semi", Versions.gph_semi_distributed ~machine ~ncaps ());
      ("eden", Versions.eden ~machine ~npes:ncaps ());
      ("gum", Versions.gum ~machine ~npes:ncaps ());
    ]
  in
  ( versions,
    [ "plain"; "bigalloc"; "sync"; "steal"; "steal-eager"; "semi"; "eden"; "gum" ] )

let run_cmd =
  let make_versions, version_names = version_conv in
  let workload =
    let doc = "Workload: sumeuler, matmul or apsp." in
    Arg.(
      required
      & pos 0 (some (enum [ ("sumeuler", `Sumeuler); ("matmul", `Matmul); ("apsp", `Apsp) ])) None
      & info [] ~doc ~docv:"WORKLOAD")
  in
  let version =
    let doc =
      Printf.sprintf "Runtime version: %s." (String.concat ", " version_names)
    in
    Arg.(value & opt string "steal" & info [ "variant"; "v" ] ~doc)
  in
  let ncaps = Arg.(value & opt int 8 & info [ "ncaps"; "p" ] ~doc:"Capabilities/PEs.") in
  let size = Arg.(value & opt (some int) None & info [ "size"; "n" ] ~doc:"Problem size.") in
  let machine_arg =
    Arg.(
      value
      & opt (enum [ ("intel8", Machine.intel8); ("amd16", Machine.amd16) ]) Machine.intel8
      & info [ "machine" ] ~doc:"Machine model: intel8 or amd16.")
  in
  let trace_flag = Arg.(value & flag & info [ "trace" ] ~doc:"Print the timeline.") in
  let svg_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "svg" ] ~doc:"Write the timeline as SVG to $(docv)." ~docv:"FILE")
  in
  let events_flag =
    Arg.(value & flag & info [ "events" ] ~doc:"Print the event-log summary.")
  in
  let run wl version ncaps size machine trace_flag svg_file events_flag out =
    let versions = make_versions ncaps machine in
    let v =
      match List.assoc_opt version versions with
      | Some v -> v
      | None -> failwith ("unknown version " ^ version)
    in
    let is_eden = Repro_parrts.Config.is_distributed v.Versions.config in
    let is_gum = version = "gum" in
    let work () =
      match wl with
      | `Sumeuler ->
          let n = Option.value size ~default:15000 in
          if is_gum then ignore (Repro_workloads.Sumeuler.gum ~n ())
          else if is_eden then ignore (Repro_workloads.Sumeuler.eden ~n ())
          else ignore (Repro_workloads.Sumeuler.gph ~n ())
      | `Matmul ->
          let n = Option.value size ~default:1000 in
          if is_eden then begin
            let q = max 1 (int_of_float (ceil (sqrt (float_of_int (ncaps - 1))))) in
            let n = n - (n mod q) in
            ignore (Repro_workloads.Matmul.eden_cannon ~n ~q ())
          end
          else ignore (Repro_workloads.Matmul.gph ~n ())
      | `Apsp ->
          let n = Option.value size ~default:400 in
          if is_eden then ignore (Repro_workloads.Apsp.eden_ring ~n ())
          else ignore (Repro_workloads.Apsp.gph ~n ())
    in
    let _, report = Rts.run v.Versions.config work in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (Printf.sprintf "%s\n" v.Versions.label);
    Buffer.add_string buf (Format.asprintf "%a\n" Report.pp report);
    if trace_flag then
      Buffer.add_string buf (Repro_trace.Render.timeline ~width:100 report.trace);
    if events_flag then
      Buffer.add_string buf
        (Format.asprintf "%a\n" Repro_trace.Eventlog.pp_summary
           (Repro_trace.Eventlog.summarise ~ncaps report.eventlog));
    (match svg_file with
    | Some path ->
        Repro_trace.Render_svg.to_file ~title:v.Versions.label report.trace path;
        Buffer.add_string buf (Printf.sprintf "wrote %s\n" path)
    | None -> ());
    emit out (Buffer.contents buf)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload under one runtime version")
    Term.(
      const run $ workload $ version $ ncaps $ size $ machine_arg $ trace_flag
      $ svg_file $ events_flag $ out_file)

(* ---------------- live metrics plumbing (exec & dist) ---------------- *)

module Metrics = Repro_metrics.Metrics
module MExport = Repro_metrics.Export
module MHealth = Repro_metrics.Health
module MSampler = Repro_metrics.Sampler

let metrics_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ]
        ~doc:
          "Sample the live metrics registry every $(b,--metrics-interval) \
           milliseconds and write the time series as JSON to $(docv), \
           rewritten atomically after every tick so $(b,repro-cli top) can \
           follow the run live."
        ~docv:"FILE.json")

let metrics_interval_arg =
  Arg.(
    value & opt int 200
    & info [ "metrics-interval" ]
        ~doc:"Sampling period for $(b,--metrics), in milliseconds." ~docv:"MS")

let metrics_om_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-om" ]
        ~doc:
          "Write the final metrics snapshot in OpenMetrics text format to \
           $(docv) (validate with $(b,repro-cli metrics-check))."
        ~docv:"FILE.om")

let strict_health_arg =
  Arg.(
    value & flag
    & info [ "strict-health" ]
        ~doc:
          "Exit 3 when any shutdown health detector triggers (steal-failure \
           storm, spark fizzle ratio, ring backpressure stall, GC pause \
           budget, leaked fibers).")

let write_text_file path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc s)

(* ---------------- exec: real multicore execution ---------------- *)

(* --fibers: the fiber-runtime stress mode — n fibers over the pool,
   every one parked on a single gate promise, then all released at
   once.  Exercises spawn, await/park, mass resume and the drain path
   at the designed 100k-fibers-on-2-domains operating point, with the
   same metrics/health plumbing as a workload run (the fiber-leak
   detector sees the retired live gauge). *)
let exec_fibers ~hw ~cores ~nfibers ~mfile ~mint ~mom ~strict ~out =
  let module Fiber = Repro_fiber.Fiber in
  let module Promise = Repro_fiber.Promise in
  let module A = Repro_shim.Tatomic.Real in
  if nfibers < 1 then begin
    Printf.eprintf "repro-cli: exec: --fibers must be >= 1 (got %d)\n" nfibers;
    exit 2
  end;
  let meta =
    Repro_util.Json_out.
      [
        ("command", Str "exec");
        ("mode", Str "fibers");
        ("fibers", Int nfibers);
        ("cores", Int cores);
      ]
  in
  let sampler =
    Option.map
      (fun path ->
        ( path,
          MSampler.start ~interval_ms:(max 10 mint)
            ~on_sample:(fun series -> MExport.write_series ~meta path series)
            () ))
      mfile
  in
  let t0 = Unix.gettimeofday () in
  let spawned_in = ref 0. in
  let stats =
    Fiber.run ~cores (fun () ->
        let gate : unit Promise.t = Promise.create () in
        let ran = A.make 0 in
        let hs =
          List.init nfibers (fun i ->
              Fiber.spawn (fun () ->
                  Fiber.yield ();
                  Fiber.await gate;
                  A.incr ran;
                  i))
        in
        spawned_in := Unix.gettimeofday () -. t0;
        Promise.fulfil gate ();
        List.iter (fun h -> ignore (Fiber.join h)) hs;
        let st = Fiber.stats () in
        if A.get ran <> nfibers then
          failwith "fiber stress: not every fiber ran its body";
        st)
  in
  let dt = Unix.gettimeofday () -. t0 in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "fiber stress: %d fibers over %d domain(s) (%d hardware core(s))\n"
       nfibers cores hw);
  Buffer.add_string buf
    (Printf.sprintf "spawned in %.3f s, all joined in %.3f s (%.0f fibers/s)\n"
       !spawned_in dt
       (float_of_int nfibers /. Float.max 1e-9 dt));
  Buffer.add_string buf
    (Printf.sprintf "spawned %d  completed %d  cancelled %d  failed %d\n"
       stats.Fiber.s_spawned stats.Fiber.s_completed stats.Fiber.s_cancelled
       stats.Fiber.s_failed);
  Buffer.add_string buf
    (Printf.sprintf "suspends %d  resumes %d  yields %d  peak live %d\n"
       stats.Fiber.s_suspends stats.Fiber.s_resumes stats.Fiber.s_yields
       stats.Fiber.s_high_water);
  let series =
    match sampler with
    | None -> []
    | Some (spath, s) ->
        let series = MSampler.stop s in
        MExport.write_series ~meta spath series;
        Buffer.add_string buf
          (Printf.sprintf "wrote %s (%d snapshots)\n" spath
             (List.length series));
        series
  in
  let final_snap =
    match List.rev series with s :: _ -> s | [] -> Metrics.snapshot ()
  in
  (match mom with
  | Some path ->
      write_text_file path (MExport.openmetrics final_snap);
      Buffer.add_string buf (Printf.sprintf "wrote %s\n" path)
  | None -> ());
  let health_code =
    if mfile <> None || mom <> None || strict then begin
      let verdicts = MHealth.evaluate final_snap in
      Buffer.add_string buf (Format.asprintf "%a" MHealth.pp verdicts);
      if strict then MHealth.exit_code verdicts else 0
    end
    else 0
  in
  emit out (Buffer.contents buf);
  if health_code <> 0 then exit health_code

let exec_cmd =
  let module Workload = Repro_exec.Workload in
  let module Harness = Repro_exec.Harness in
  let workload =
    let doc =
      Printf.sprintf "Workload: %s." (String.concat ", " Workload.names)
    in
    let workload_conv =
      Arg.enum (List.map (fun (module W : Workload.S) -> (W.name, (module W : Workload.S))) Workload.all)
    in
    Arg.(
      value
      & opt workload_conv (List.hd Workload.all)
      & info [ "workload"; "w" ] ~doc ~docv:"WORKLOAD")
  in
  let cores =
    let doc = "Number of domains (default: all hardware cores)." in
    Arg.(value & opt (some int) None & info [ "cores"; "c" ] ~doc ~docv:"N")
  in
  let size =
    Arg.(
      value
      & opt (some int) None
      & info [ "size"; "n" ] ~doc:"Problem size (workload-specific)." ~docv:"S")
  in
  let repeat =
    Arg.(
      value & opt int 3
      & info [ "repeat"; "r" ] ~doc:"Timed runs per core count." ~docv:"R")
  in
  let sweep_flag =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:"Measure at 1, 2, 4, ... up to $(b,--cores) domains (instead \
                of just 1 and $(b,--cores)).")
  in
  let json_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~doc:"Write measurements as JSON to $(docv)."
          ~docv:"FILE")
  in
  let exec_events =
    Arg.(
      value & flag
      & info [ "events" ]
          ~doc:
            "Also run once at $(b,--cores) domains and print the scheduler's \
             event counters (sparks created/run/fizzled, steals, parking), \
             with a per-worker breakdown.")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ]
          ~doc:
            "Also run once at $(b,--cores) domains with the hardware tracer \
             on and write the merged timeline (scheduler events + GC spans) \
             as Chrome trace-event JSON to $(docv) (load in Perfetto or \
             chrome://tracing); prints the utilization profile."
          ~docv:"FILE.json")
  in
  let trace_svg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-svg" ]
          ~doc:
            "With $(b,--trace): also render the traced run's per-worker \
             timeline as SVG to $(docv)."
          ~docv:"FILE.svg")
  in
  let fibers_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fibers" ]
          ~doc:
            "Fiber-runtime stress mode: spawn $(docv) fibers over \
             $(b,--cores) domains, park them all on one gate promise, \
             release and join them (the workload is not run).  Composes \
             with $(b,--metrics)/$(b,--metrics-om)/$(b,--strict-health)."
          ~docv:"N")
  in
  let run (module W : Workload.S) cores size repeat sweep_flag json_file
      exec_events trace_file trace_svg fibers mfile mint mom strict quick out =
    let hw = Domain.recommended_domain_count () in
    let cores = match cores with Some c -> max 1 c | None -> hw in
    match fibers with
    | Some nfibers -> exec_fibers ~hw ~cores ~nfibers ~mfile ~mint ~mom ~strict ~out
    | None ->
    let size =
      match size with
      | Some s ->
          if s < 0 then begin
            Printf.eprintf "repro-cli: exec: --size must be >= 0 (got %d)\n" s;
            exit 2
          end;
          s
      | None -> if quick then W.quick_size else W.default_size
    in
    let cores_list =
      if sweep_flag then Harness.core_counts_up_to cores
      else if cores = 1 then [ 1 ]
      else [ 1; cores ]
    in
    let meta =
      Repro_util.Json_out.
        [
          ("command", Str "exec");
          ("workload", Str W.name);
          ("cores", Int cores);
          ("size", Int size);
        ]
    in
    let sampler =
      Option.map
        (fun path ->
          ( path,
            MSampler.start ~interval_ms:(max 10 mint)
              ~on_sample:(fun series -> MExport.write_series ~meta path series)
              () ))
        mfile
    in
    let reference = W.reference ~size in
    let ms = Harness.sweep ~repeats:repeat ~cores_list ~size (module W) in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf
         "real execution: %s, size %d (%s)\n%d hardware core(s), %d timed \
          run(s) per point\n"
         W.name size W.size_doc hw repeat);
    Buffer.add_string buf (Repro_util.Tablefmt.to_string (Harness.to_table ms));
    List.iter
      (fun (m : Harness.measurement) ->
        if m.result <> reference then
          failwith
            (Printf.sprintf
               "%s at %d cores: result %d differs from sequential reference %d"
               W.name m.cores m.result reference))
      ms;
    Buffer.add_string buf
      (Printf.sprintf "result checksum %d matches the sequential reference\n"
         reference);
    (match List.rev ms with
    | (last : Harness.measurement) :: _ :: _ ->
        Buffer.add_string buf
          (Printf.sprintf "speedup at %d cores vs 1 core: %.2fx\n" last.cores
             last.speedup)
    | _ -> ());
    (match json_file with
    | Some path ->
        Repro_util.Json_out.to_file path (Harness.json_document ms);
        Buffer.add_string buf (Printf.sprintf "wrote %s\n" path)
    | None -> ());
    if exec_events then begin
      let module Pool = Repro_exec.Pool in
      let p = Pool.create ~cores () in
      let v = Pool.run p (fun () -> W.run ~size ()) in
      Pool.shutdown p;
      if v <> reference then
        failwith "events run: result differs from sequential reference";
      Buffer.add_string buf
        (Format.asprintf "scheduler events at %d domain(s):@\n%a@\n" cores
           Pool.pp_events (Pool.events p));
      let per_worker = Pool.worker_events p in
      let t =
        Repro_util.Tablefmt.create
          ~aligns:
            Repro_util.Tablefmt.[ Right; Right; Right; Right; Right; Right ]
          [ "worker"; "created"; "run"; "steals"; "attempts"; "parks" ]
      in
      Array.iteri
        (fun i (e : Pool.events) ->
          Repro_util.Tablefmt.add_row t
            [
              string_of_int i;
              string_of_int e.Pool.sparks_created;
              string_of_int e.Pool.sparks_run;
              string_of_int e.Pool.steals;
              string_of_int e.Pool.steal_attempts;
              string_of_int e.Pool.parks;
            ])
        per_worker;
      Buffer.add_string buf "per-worker breakdown:\n";
      Buffer.add_string buf (Repro_util.Tablefmt.to_string t)
    end;
    (* the traced run happens now, but the Chrome file is written after
       the sampler (if any) stops, so its snapshots can be pinned onto
       the timeline as instants *)
    let trace_run =
      match trace_file with
      | None ->
          if trace_svg <> None then
            Buffer.add_string buf "--trace-svg has no effect without --trace\n";
          None
      | Some path ->
          let module Pool = Repro_exec.Pool in
          let module Tracer = Repro_exec.Tracer in
          let tr = Tracer.create ~ncaps:cores () in
          Tracer.enable tr;
          (* ring-drop counters flow into live snapshots while the
             traced pool runs *)
          let tok =
            Metrics.add_collector ~name:"tracer" (fun () ->
                Tracer.metrics_samples tr)
          in
          let p = Pool.create ~cores ~tracer:tr () in
          let v = Pool.run p (fun () -> W.run ~size ()) in
          Pool.shutdown p;
          Tracer.disable tr;
          Metrics.remove_collector tok;
          if v <> reference then
            failwith "traced run: result differs from sequential reference";
          Some (path, tr)
    in
    let series =
      match sampler with
      | None -> []
      | Some (spath, s) ->
          let series = MSampler.stop s in
          MExport.write_series ~meta spath series;
          Buffer.add_string buf
            (Printf.sprintf "wrote %s (%d snapshots)\n" spath
               (List.length series));
          series
    in
    let final_snap =
      match List.rev series with s :: _ -> s | [] -> Metrics.snapshot ()
    in
    (match mom with
    | Some path ->
        write_text_file path (MExport.openmetrics final_snap);
        Buffer.add_string buf (Printf.sprintf "wrote %s\n" path)
    | None -> ());
    (match trace_run with
    | None -> ()
    | Some (path, tr) ->
        let module Tracer = Repro_exec.Tracer in
        let log = Tracer.to_eventlog tr in
        let t0 = Tracer.t0_ns tr in
        let instants =
          List.filter_map
            (fun (s : Metrics.snapshot) ->
              if s.Metrics.taken_ns < t0 then None
              else
                Some
                  ( s.Metrics.taken_ns - t0,
                    "metrics",
                    [
                      ( "sparks_run",
                        Metrics.total s "repro_pool_sparks_run_total" );
                      ("steals", Metrics.total s "repro_steals_total");
                      ( "gc_minor",
                        Metrics.total s "repro_gc_minor_collections" );
                    ] ))
            series
        in
        let doc = Repro_trace.Chrome.of_eventlog ~instants ~ncaps:cores log in
        Repro_util.Json_out.to_file path doc;
        Buffer.add_string buf
          (Printf.sprintf
             "wrote %s (%d events recorded, %d metric instant(s), Chrome \
              trace-event format)\n"
             path (Tracer.recorded tr) (List.length instants));
        (match trace_svg with
        | Some svg_path ->
            let trace = Repro_trace.Eventlog.to_trace ~ncaps:cores log in
            Repro_trace.Render_svg.to_file
              ~title:(Printf.sprintf "%s, %d domain(s)" W.name cores)
              trace svg_path;
            Buffer.add_string buf (Printf.sprintf "wrote %s\n" svg_path)
        | None -> ());
        let report =
          Repro_exec.Profile.analyze (Repro_exec.Profile.of_chrome_json doc)
        in
        Buffer.add_string buf (Repro_exec.Profile.to_string report));
    let health_code =
      if mfile <> None || mom <> None || strict then begin
        let verdicts = MHealth.evaluate final_snap in
        Buffer.add_string buf (Format.asprintf "%a" MHealth.pp verdicts);
        if strict then MHealth.exit_code verdicts else 0
      end
      else 0
    in
    emit out (Buffer.contents buf);
    if health_code <> 0 then exit health_code
  in
  Cmd.v
    (Cmd.info "exec"
       ~doc:
         "Run a workload for real on OCaml 5 domains (work-stealing \
          executor) and report measured wall-clock speedups")
    Term.(
      const run $ workload $ cores $ size $ repeat $ sweep_flag $ json_file
      $ exec_events $ trace_file $ trace_svg $ fibers_arg $ metrics_file_arg
      $ metrics_interval_arg $ metrics_om_arg $ strict_health_arg $ quick
      $ out_file)

(* ---------------- dist: multi-process (Eden/GUM) execution ---------------- *)

let dist_cmd =
  let module Workload = Repro_dist.Workload in
  let module Measure = Repro_dist.Measure in
  let workload =
    let doc =
      Printf.sprintf "Workload: %s." (String.concat ", " Workload.names)
    in
    let workload_conv =
      Arg.enum
        (List.map
           (fun (module W : Workload.S) -> (W.name, (module W : Workload.S)))
           Workload.all)
    in
    Arg.(
      value
      & opt workload_conv (List.hd Workload.all)
      & info [ "workload"; "w" ] ~doc ~docv:"WORKLOAD")
  in
  let procs =
    let doc = "Number of worker processes (default: all hardware cores)." in
    Arg.(value & opt (some int) None & info [ "procs"; "p" ] ~doc ~docv:"N")
  in
  let size =
    Arg.(
      value
      & opt (some int) None
      & info [ "size"; "n" ] ~doc:"Problem size (workload-specific)." ~docv:"S")
  in
  let repeat =
    Arg.(
      value & opt int 3
      & info [ "repeat"; "r" ] ~doc:"Timed runs per process count." ~docv:"R")
  in
  let sweep_flag =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:
            "Measure at 1, 2, 4, ... up to $(b,--procs) processes (instead \
             of just 1 and $(b,--procs)).")
  in
  let json_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~doc:"Write measurements as JSON to $(docv)."
          ~docv:"FILE")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ]
          ~doc:
            "Also run once at $(b,--procs) processes with per-task tracing \
             and write a Chrome trace-event timeline to $(docv): one track \
             per PE plus the coordinator, with pack/unpack/exec and \
             cross-process wire spans (load in Perfetto or \
             chrome://tracing)."
          ~docv:"FILE.json")
  in
  let transport =
    let doc =
      "Transport between coordinator and PEs: $(b,sock) frames messages \
       over a socketpair per worker (star topology, FISH via the \
       coordinator); $(b,shm) maps a pair of shared-memory rings per link \
       plus a peer-to-peer mesh (zero-copy float payloads, FISH directly \
       between workers)."
    in
    Arg.(
      value
      & opt
          (enum [ ("sock", Repro_dist.Farm.Sock); ("shm", Repro_dist.Farm.Shm) ])
          Repro_dist.Farm.Sock
      & info [ "transport" ] ~doc ~docv:"sock|shm")
  in
  let run (module W : Workload.S) procs size repeat sweep_flag json_file
      trace_file transport mfile mint mom strict quick out =
    let hw = Domain.recommended_domain_count () in
    let procs = match procs with Some p -> max 1 p | None -> hw in
    let size =
      match size with
      | Some s ->
          if s < 0 then begin
            Printf.eprintf "repro-cli: dist: --size must be >= 0 (got %d)\n" s;
            exit 2
          end;
          s
      | None -> if quick then W.quick_size else W.default_size
    in
    let procs_list =
      if sweep_flag then Repro_exec.Harness.core_counts_up_to procs
      else if procs = 1 then [ 1 ]
      else [ 1; procs ]
    in
    let transport_name = Repro_dist.Farm.transport_name transport in
    let meta =
      Repro_util.Json_out.
        [
          ("command", Str "dist");
          ("workload", Str W.name);
          ("procs", Int procs);
          ("size", Int size);
          ("transport", Str transport_name);
        ]
    in
    (* the sampler sees the coordinator side live (its link counters,
       wire errors, GC); the farm-wide merged snapshot is appended to
       the series at the end *)
    let sampler =
      Option.map
        (fun path ->
          ( path,
            MSampler.start ~interval_ms:(max 10 mint)
              ~on_sample:(fun series -> MExport.write_series ~meta path series)
              () ))
        mfile
    in
    let reference = W.reference ~size in
    let ms =
      Measure.sweep ~repeats:repeat ~transport ~procs_list ~size (module W)
    in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf
         "distributed execution (one process per PE, %s transport): %s, size \
          %d (%s)\n\
          %d hardware core(s), %d timed run(s) per point\n"
         transport_name W.name size W.size_doc hw repeat);
    Buffer.add_string buf (Repro_util.Tablefmt.to_string (Measure.to_table ms));
    List.iter
      (fun (m : Measure.measurement) ->
        if m.result <> reference then
          failwith
            (Printf.sprintf
               "%s at %d procs: result %d differs from sequential reference %d"
               W.name m.procs m.result reference))
      ms;
    Buffer.add_string buf
      (Printf.sprintf "result checksum %d matches the sequential reference\n"
         reference);
    (match List.rev ms with
    | (last : Measure.measurement) :: _ :: _ ->
        Buffer.add_string buf
          (Printf.sprintf "speedup at %d procs vs 1 proc: %.2fx\n" last.procs
             last.speedup)
    | _ -> ());
    (match json_file with
    | Some path ->
        let header =
          Repro_exec.Harness.env_header ~backend:"processes"
            ~transport:transport_name ()
        in
        Repro_util.Json_out.to_file path (Measure.json_document ~header ms);
        Buffer.add_string buf (Printf.sprintf "wrote %s\n" path)
    | None -> ());
    (match trace_file with
    | None -> ()
    | Some path ->
        let o =
          Repro_dist.Farm.run ~trace:true ~transport ~procs ~size (module W)
        in
        if o.Repro_dist.Farm.result <> reference then
          failwith "traced run: result differs from sequential reference";
        Repro_dist.Timeline.write_chrome ~procs ~path o;
        let nspans = List.length (Repro_dist.Timeline.of_outcome o) in
        Buffer.add_string buf
          (Printf.sprintf
             "wrote %s (%d spans across %d PE tracks + coordinator)\n" path
             nspans procs));
    let series = match sampler with None -> [] | Some (_, s) -> MSampler.stop s in
    let health_code =
      if mfile = None && mom = None && not strict then 0
      else begin
        (* one more farm run to collect the merged farm-wide snapshot:
           each PE piggybacks its whole registry on the Stats reply and
           the coordinator relabels ([pe=N]) and merges them *)
        let o = Repro_dist.Farm.run ~transport ~procs ~size (module W) in
        if o.Repro_dist.Farm.result <> reference then
          failwith "metrics run: result differs from sequential reference";
        let merged = o.Repro_dist.Farm.merged_metrics in
        (match mfile with
        | Some path ->
            MExport.write_series ~meta path (series @ [ merged ]);
            Buffer.add_string buf
              (Printf.sprintf
                 "wrote %s (%d coordinator snapshot(s) + merged farm view, \
                  %d PEs)\n"
                 path (List.length series) procs)
        | None -> ());
        (match mom with
        | Some path ->
            write_text_file path (MExport.openmetrics merged);
            Buffer.add_string buf (Printf.sprintf "wrote %s\n" path)
        | None -> ());
        let verdicts = MHealth.evaluate merged in
        Buffer.add_string buf (Format.asprintf "%a" MHealth.pp verdicts);
        if strict then MHealth.exit_code verdicts else 0
      end
    in
    emit out (Buffer.contents buf);
    if health_code <> 0 then exit health_code
  in
  Cmd.v
    (Cmd.info "dist"
       ~doc:
         "Run a workload on the multi-process Eden/GUM-style backend (one \
          worker process per PE, private heaps, FISH/SCHEDULE demand \
          scheduling over framed socketpair messages or shared-memory rings \
          -- $(b,--transport)) and report wall-clock speedups plus \
          message/byte/GC counters")
    Term.(
      const run $ workload $ procs $ size $ repeat $ sweep_flag $ json_file
      $ trace_file $ transport $ metrics_file_arg $ metrics_interval_arg
      $ metrics_om_arg $ strict_health_arg $ quick $ out_file)

(* ---------------- profile: post-hoc trace analysis ---------------- *)

let profile_cmd =
  let module Profile = Repro_exec.Profile in
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE.json"
          ~doc:"Chrome trace-event JSON written by $(b,exec --trace).")
  in
  let run file out =
    let doc =
      try Repro_util.Json_in.of_file file
      with Repro_util.Json_in.Parse_error { pos; msg } ->
        Printf.eprintf "repro-cli: profile: %s: parse error at byte %d: %s\n"
          file pos msg;
        exit 2
    in
    let report =
      try Profile.analyze (Profile.of_chrome_json doc)
      with Failure msg ->
        Printf.eprintf "repro-cli: profile: %s: %s\n" file msg;
        exit 2
    in
    emit out (Printf.sprintf "profile of %s\n%s" file (Profile.to_string report))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Analyze a hardware trace (Chrome trace-event JSON from $(b,exec \
          --trace)): per-worker utilization, idle-gap histogram, spark \
          granularity and steal latency")
    Term.(const run $ file $ out_file)

(* ---------------- analyze: static analysis ---------------- *)

let analyze_cmd =
  let module Rules = Repro_analysis.Rules in
  let module Baseline = Repro_analysis.Baseline in
  let module Engine = Repro_analysis.Engine in
  let module Json = Repro_util.Json_out in
  let roots =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:"Directories or .ml files to scan (default: lib bin).")
  in
  let rule_ids =
    Arg.(
      value
      & opt_all string []
      & info [ "rule" ]
          ~doc:
            (Printf.sprintf
               "Run only rule(s) $(docv) (repeatable, comma-separable). \
                Known: %s."
               (String.concat ", " Repro_analysis.Rules.ids))
          ~docv:"ID[,ID...]")
  in
  let cache_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ]
          ~doc:
            "Summary-cache file keyed by file digest (created if absent): \
             warm runs skip parsing unchanged files."
          ~docv:"FILE")
  in
  let baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ]
          ~doc:
            "Suppression baseline file (default: tools/lint_baseline.txt when \
             it exists; pass an empty string to disable)."
          ~docv:"FILE")
  in
  let sarif_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "sarif" ] ~doc:"Write a SARIF 2.1.0 report to $(docv)."
          ~docv:"FILE")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the report as JSON instead of text.")
  in
  let list_rules_flag =
    Arg.(
      value & flag
      & info [ "list-rules" ] ~doc:"List the registered rules and exit.")
  in
  let since_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "since" ]
          ~doc:
            "Report only on files changed since git $(docv) plus their              reverse call-graph dependents; the whole tree is still              summarised and linked so cross-module rules keep their global              view."
          ~docv:"REF")
  in
  let run roots rule_ids cache_arg baseline_arg sarif_arg since_arg json_flag
      list_rules_flag out =
    if list_rules_flag then begin
      let buf = Buffer.create 256 in
      List.iter
        (fun (r : Rules.t) ->
          Buffer.add_string buf
            (Printf.sprintf "%-20s %-7s %s\n" r.Rules.id
               (Repro_analysis.Finding.severity_to_string r.Rules.severity)
               r.Rules.doc))
        Rules.all;
      emit out (Buffer.contents buf)
    end
    else begin
      let rules =
        match
          List.concat_map
            (fun s ->
              String.split_on_char ',' s |> List.map String.trim
              |> List.filter (fun x -> x <> ""))
            rule_ids
        with
        | [] -> Rules.all
        | ids ->
            List.map
              (fun id ->
                match Rules.find id with
                | Some r -> r
                | None ->
                    Printf.eprintf
                      "repro-cli: analyze: unknown rule %S (known: %s)\n" id
                      (String.concat ", " Rules.ids);
                    exit 3)
              ids
      in
      let baseline =
        let path =
          match baseline_arg with
          | Some "" -> None
          | Some p -> Some p
          | None ->
              if Sys.file_exists "tools/lint_baseline.txt" then
                Some "tools/lint_baseline.txt"
              else None
        in
        match path with
        | None -> []
        | Some p -> (
            try Baseline.load p
            with Sys_error msg | Failure msg ->
              Printf.eprintf "repro-cli: analyze: %s\n" msg;
              exit 3)
      in
      let roots = match roots with [] -> [ "lib"; "bin" ] | rs -> rs in
      let since_files =
        match since_arg with
        | None -> None
        | Some ref_ -> (
            try Some (Engine.changed_since ref_)
            with Failure msg ->
              Printf.eprintf "repro-cli: analyze: --since %s: %s\n" ref_ msg;
              exit 3)
      in
      let report =
        Engine.run ~baseline ?cache_file:cache_arg ?since_files ~rules roots
      in
      (match sarif_arg with
      | Some path ->
          Json.to_file path (Engine.sarif_report ~rules report);
          Printf.eprintf "wrote %s\n%!" path
      | None -> ());
      if json_flag then
        emit out (Json.to_string (Engine.json_report ~rules report) ^ "\n")
      else emit out (Engine.text_report report);
      if report.Engine.fresh <> [] then exit 1
      else if
        report.Engine.stale <> [] || report.Engine.duplicate_entries <> []
      then exit 2
    end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Statically analyze the tree with the two-phase whole-program \
          engine: per-file summaries (spark-purity, atomics-discipline, \
          discarded-future, unjoined-domain) linked into a cross-module \
          graph (blocking-in-worker, marshal-safety, ring-discipline, \
          protocol-exhaustiveness) and flow-sensitive CFG/typestate rules \
          (frame-lifetime, fd-leak, lost-wakeup). Exits 1 on any \
          non-baselined finding, 2 when only stale or duplicate baseline \
          entries remain, 3 on usage errors")
    Term.(
      const run $ roots $ rule_ids $ cache_arg $ baseline_arg $ sarif_arg
      $ since_arg $ json_flag $ list_rules_flag $ out_file)

(* ---------------- check ---------------- *)

let check_cmd =
  let module P = Repro_check.Protocols in
  let module Sched = Repro_check.Sched in
  let trace_flag =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Print the violating schedule of every caught mutant.")
  in
  let config_name =
    Arg.(
      value
      & opt (some string) None
      & info [ "config" ]
          ~doc:"Run a single configuration by name (see the listing)."
          ~docv:"NAME")
  in
  let run trace_flag config_name out =
    let configs =
      match config_name with
      | None -> P.all
      | Some n -> (
          try [ P.find n ]
          with Invalid_argument msg ->
            Printf.eprintf
              "repro-cli: %s\navailable: %s\n" msg
              (String.concat ", " (List.map (fun c -> c.P.cname) P.all));
            exit 2)
    in
    let buf = Buffer.create 4096 in
    let ok = ref true in
    Buffer.add_string buf
      "DPOR model checking of the executor's lock-free protocols\n\
       (every interleaving of each configuration, modulo commuting \
       independent operations)\n\n";
    List.iter
      (fun c ->
        let r = P.run c in
        let verdict = P.verdict c r in
        if not verdict then ok := false;
        (match r with
        | Sched.Pass s ->
            Buffer.add_string buf
              (Printf.sprintf "%-26s PASS    %6d interleavings %8d ops  depth %2d  %s%s\n"
                 c.P.cname s.Sched.interleavings s.Sched.events
                 s.Sched.max_depth c.P.descr
                 (if verdict then "" else "  ** EXPECTED A VIOLATION **"))
        | Sched.Fail v ->
            Buffer.add_string buf
              (Printf.sprintf "%-26s CAUGHT  after %d interleaving(s): %s%s\n"
                 c.P.cname v.Sched.after_interleavings v.Sched.reason
                 (if verdict then "" else "  ** EXPECTED PASS **"));
            if trace_flag || not verdict then begin
              Buffer.add_string buf "  offending schedule:\n";
              List.iter
                (fun e ->
                  Buffer.add_string buf
                    ("    " ^ Format.asprintf "%a" Repro_check.Event.pp e ^ "\n"))
                v.Sched.trace
            end))
      configs;
    Buffer.add_string buf
      (if !ok then
         "\nall configurations behaved as expected (protocols pass, mutants \
          are caught)\n"
       else "\nUNEXPECTED verdicts present\n");
    emit out (Buffer.contents buf);
    if not !ok then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Exhaustively model-check the executor's lock-free protocols \
          (Chase-Lev deque, future claim CAS, pool parking) and confirm the \
          seeded mutants are caught")
    Term.(const run $ trace_flag $ config_name $ out_file)

(* ---------------- top: live metrics view ---------------- *)

let top_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE.json"
          ~doc:
            "Time-series JSON written by $(b,exec)/$(b,dist) $(b,--metrics) \
             (readable while the run is still going: the writer replaces the \
             file atomically).")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Render the latest snapshot once and exit (CI-friendly).")
  in
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~doc:"Refresh period in seconds." ~docv:"S")
  in
  let sample_value = function
    | Metrics.Counter v | Metrics.Gauge v -> v
    | Metrics.Hist _ -> 0.
  in
  let render (series : Metrics.snapshot list) =
    let buf = Buffer.create 2048 in
    (match List.rev series with
    | [] -> Buffer.add_string buf "no snapshots yet\n"
    | last :: older ->
        let prev = match older with p :: _ -> Some p | [] -> None in
        (* rates come from the last sampling interval when there is
           one, else from the whole run *)
        let dt_ns =
          float_of_int
            (match prev with
            | Some p -> max 1 (last.Metrics.taken_ns - p.Metrics.taken_ns)
            | None -> max 1 last.Metrics.elapsed_ns)
        in
        let get snap name labels =
          match Metrics.find ~labels snap name with
          | Some s -> sample_value s.Metrics.s_value
          | None -> 0.
        in
        let dget name labels =
          let cur = get last name labels in
          match prev with Some p -> cur -. get p name labels | None -> cur
        in
        let tot name = Metrics.total last name in
        let dtot name =
          match prev with
          | Some p -> tot name -. Metrics.total p name
          | None -> tot name
        in
        Buffer.add_string buf
          (Printf.sprintf "%d snapshot(s), %.1f s elapsed\n"
             (List.length series)
             (float_of_int last.Metrics.elapsed_ns /. 1e9));
        (* one row per worker, keyed by the busy-time counter's exact
           label set (carries a pe label too in a merged dist view) *)
        let workers =
          List.filter
            (fun (s : Metrics.sample) ->
              s.Metrics.s_name = "repro_pool_busy_ns_total")
            last.Metrics.samples
        in
        if workers <> [] then begin
          let t =
            Repro_util.Tablefmt.create
              ~aligns:
                Repro_util.Tablefmt.
                  [ Left; Right; Right; Right; Right; Right; Right ]
              [
                "worker"; "busy"; "sparks run"; "steals"; "attempts"; "parks";
                "queue";
              ]
          in
          List.iter
            (fun (w : Metrics.sample) ->
              let labels = w.Metrics.s_labels in
              let name =
                let part k =
                  Option.map (fun v -> k ^ v) (List.assoc_opt k labels)
                in
                String.concat "/"
                  (List.filter_map part [ "pe"; "worker" ]
                  |> function [] -> [ "?" ] | l -> l)
              in
              Repro_util.Tablefmt.add_row t
                [
                  name;
                  Printf.sprintf "%.0f%%"
                    (100. *. dget "repro_pool_busy_ns_total" labels /. dt_ns);
                  Printf.sprintf "%.0f"
                    (get last "repro_pool_sparks_run_total" labels);
                  Printf.sprintf "%.0f" (get last "repro_steals_total" labels);
                  Printf.sprintf "%.0f"
                    (get last "repro_steal_attempts_total" labels);
                  Printf.sprintf "%.0f"
                    (get last "repro_pool_parks_total" labels);
                  Printf.sprintf "%.0f"
                    (get last "repro_pool_queue_depth" labels);
                ])
            workers;
          Buffer.add_string buf (Repro_util.Tablefmt.to_string t)
        end
        else Buffer.add_string buf "(no pool workers in this snapshot)\n";
        Buffer.add_string buf
          (Printf.sprintf
             "steals: %.0f/s  gc: %.0f minor/s %.0f major/s  heap %.1f MW\n"
             (dtot "repro_steals_total" *. 1e9 /. dt_ns)
             (dtot "repro_gc_minor_collections" *. 1e9 /. dt_ns)
             (dtot "repro_gc_major_collections" *. 1e9 /. dt_ns)
             (tot "repro_gc_heap_words" /. 1e6));
        Buffer.add_string buf
          (Printf.sprintf
             "wire: %.0f msgs %.0f KiB  ring: %.0f backpressure waits %.0f \
              doorbells  errors: %.0f  tracer drops: %.0f\n"
             (tot "repro_wire_msgs_sent_total")
             (tot "repro_wire_bytes_sent_total" /. 1024.)
             (tot "repro_ring_backpressure_waits_total")
             (tot "repro_ring_doorbell_rings_total")
             (tot "repro_wire_errors_total")
             (tot "repro_tracer_dropped_events_total"
             +. tot "repro_tracer_lost_runtime_events_total"));
        let fiber_spawned = tot "repro_fiber_spawned_total" in
        if fiber_spawned > 0. then
          Buffer.add_string buf
            (Printf.sprintf
               "fibers: %.0f live (peak %.0f)  %.0f spawned %.0f done  \
                %.0f resumes/s  %.0f yields/s\n"
               (tot "repro_fiber_live")
               (tot "repro_fiber_live_max")
               fiber_spawned
               (tot "repro_fiber_completed_total")
               (dtot "repro_fiber_resumes_total" *. 1e9 /. dt_ns)
               (dtot "repro_fiber_yields_total" *. 1e9 /. dt_ns)));
    Buffer.contents buf
  in
  let run file once interval out =
    let read () =
      match Repro_util.Json_in.of_file file with
      | j -> ( try Some (MExport.series_of_json j) with _ -> None)
      | exception _ -> None
    in
    if once then
      match read () with
      | Some series -> emit out (render series)
      | None ->
          Printf.eprintf "repro-cli: top: cannot read a metrics series from %s\n"
            file;
          exit 2
    else
      (* follow mode: redraw until interrupted *)
      while true do
        (match read () with
        | Some series ->
            print_string "\027[2J\027[H";
            print_string (render series);
            flush stdout
        | None -> ());
        Unix.sleepf (Float.max 0.1 interval)
      done
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live view of a running (or finished) $(b,--metrics) series: \
          per-worker utilization, steal rate, queue depth, GC pressure and \
          ring backpressure, refreshed in place ($(b,--once) for a single \
          CI-friendly render)")
    Term.(const run $ file $ once $ interval $ out_file)

(* ---------------- metrics-check ---------------- *)

let metrics_check_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE.om"
          ~doc:"OpenMetrics text file written by $(b,--metrics-om).")
  in
  let run file out =
    let ic = open_in_bin file in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match MExport.validate_openmetrics s with
    | Ok () ->
        emit out
          (Printf.sprintf "%s: valid OpenMetrics text (%d lines)\n" file
             (List.length (String.split_on_char '\n' s) - 1))
    | Error msg ->
        Printf.eprintf "repro-cli: metrics-check: %s: %s\n" file msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "metrics-check"
       ~doc:
         "Structurally validate an OpenMetrics text file (families declared \
          before samples, correct suffixes, parseable numbers, final # EOF); \
          exits 1 on the first violation")
    Term.(const run $ file $ out_file)

(* ---------------- all ---------------- *)

let all_cmd =
  let run quick =
    let argv_of name = Array.of_list ([ "repro_cli"; name ] @ if quick then [ "--quick" ] else []) in
    List.iter
      (fun (name, cmd) ->
        Printf.printf "==== %s ====\n%!" name;
        ignore (Cmd.eval ~argv:(argv_of name) cmd))
      [
        ("fig1", fig1_cmd);
        ("fig2", fig2_cmd);
        ("fig3", fig3_cmd);
        ("fig4", fig4_cmd);
        ("fig5", fig5_cmd);
      ]
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Reproduce every figure and table")
    Term.(const run $ quick)

let main =
  let doc =
    "Reproduction of 'Comparing and Optimising Parallel Haskell \
     Implementations for Multicore Machines' (ICPP 2009)"
  in
  Cmd.group
    (Cmd.info "repro-cli" ~version:"1.0.0" ~doc)
    [
      fig1_cmd;
      fig2_cmd;
      fig3_cmd;
      fig4_cmd;
      fig5_cmd;
      run_cmd;
      exec_cmd;
      dist_cmd;
      profile_cmd;
      analyze_cmd;
      check_cmd;
      top_cmd;
      metrics_check_cmd;
      all_cmd;
    ]

(* Worker-mode hook: when re-executed by the dist coordinator this
   process must become a PE, not parse a command line.  Must run
   before Cmd.eval. *)
let () = Repro_dist.Worker.maybe_run Sys.argv
let () = exit (Cmd.eval main)
