(** Shared parsetree plumbing for the analyzer.

    Both the file-local rules ({!Rules}) and the per-file summary
    extraction ({!Summary}) walk compiler-libs parsetrees with the same
    small vocabulary: longident flattening, one-level descent, binding
    and expression iterators, the purity classifier, and the tables of
    blocking / I/O / in-place-writing primitives.  Factoring them here
    keeps the two phases answering "what counts as blocking?" with one
    table. *)

open Parsetree

module SSet = Set.Make (String)

let path_has sub path =
  let n = String.length path and m = String.length sub in
  let rec go i = i + m <= n && (String.sub path i m = sub || go (i + 1)) in
  go 0

let lid_parts (lid : Longident.t) =
  match Longident.flatten lid with parts -> parts | exception _ -> []

(* [Stdlib.Atomic.get] and [Atomic.get] are the same thing. *)
let strip_stdlib = function "Stdlib" :: rest -> rest | parts -> parts

let last_part parts =
  match List.rev parts with [] -> None | x :: _ -> Some x

let dotted parts = String.concat "." parts

(* [parts] ends with [suffix] — how we match [Bigarray.Array1.create]
   whether it is spelled in full or through an [A1]-style alias. *)
let ends_with ~suffix parts =
  let np = List.length parts and ns = List.length suffix in
  np >= ns
  &&
  let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
  drop (np - ns) parts = suffix

let expr_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (lid_parts txt)
  | _ -> None

(* Visit [e]'s immediate children with [f] (generic one-level descent:
   lets each walk intercept the constructs it cares about and delegate
   the rest of the traversal, scoped state included, back to itself). *)
let descend_children f e =
  let it =
    { Ast_iterator.default_iterator with expr = (fun _ c -> f c) }
  in
  Ast_iterator.default_iterator.expr it e

(* Iterate every expression in a structure (any depth). *)
let iter_exprs str f =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          f e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str

(* Every value binding in the file, any nesting depth. *)
let iter_value_bindings str f =
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          f vb;
          Ast_iterator.default_iterator.value_binding self vb);
    }
  in
  it.structure it str

let rec simple_var pat =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> simple_var p
  | _ -> None

let rec is_wildcard pat =
  match pat.ppat_desc with
  | Ppat_any -> true
  | Ppat_constraint (p, _) -> is_wildcard p
  | _ -> false

(* Every variable a pattern binds ([fun (a, b) -> ...], match cases). *)
let pattern_vars pat =
  let acc = ref SSet.empty in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
              acc := SSet.add txt !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
    }
  in
  it.pat it pat;
  !acc

(* Strip the parameter prefix of a syntactic function, returning the
   body (or bodies, for [function]-style case lists). *)
let rec fun_bodies e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> fun_bodies body
  | Pexp_function cases -> List.map (fun c -> c.pc_rhs) cases
  | _ -> [ e ]

(* The parameters the function prefix binds. *)
let rec fun_params e =
  match e.pexp_desc with
  | Pexp_fun (_, _, pat, body) -> SSet.union (pattern_vars pat) (fun_params body)
  | Pexp_function cases ->
      List.fold_left
        (fun acc c -> SSet.union acc (pattern_vars c.pc_lhs))
        SSet.empty cases
  | _ -> SSet.empty

let is_syntactic_fun e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | _ -> false

(* ---------------- primitive tables ---------------- *)

let inplace_writers =
  List.map
    (fun p -> (dotted p, ()))
    [
      [ "Array"; "set" ]; [ "Array"; "unsafe_set" ]; [ "Array"; "fill" ];
      [ "Array"; "blit" ]; [ "Bytes"; "set" ]; [ "Bytes"; "unsafe_set" ];
      [ "Bytes"; "fill" ]; [ "Bytes"; "blit" ]; [ "Hashtbl"; "add" ];
      [ "Hashtbl"; "replace" ]; [ "Hashtbl"; "remove" ]; [ "Hashtbl"; "reset" ];
      [ "Hashtbl"; "clear" ]; [ "Buffer"; "add_string" ]; [ "Buffer"; "add_char" ];
      [ "Buffer"; "clear" ]; [ "Buffer"; "reset" ]; [ "Queue"; "push" ];
      [ "Queue"; "add" ]; [ "Queue"; "pop" ]; [ "Queue"; "take" ];
      [ "Stack"; "push" ]; [ "Stack"; "pop" ];
    ]

let is_inplace_writer parts = List.mem_assoc (dotted parts) inplace_writers

let is_atomic_write parts =
  match (parts, last_part parts) with
  | _, None | [], _ | [ _ ], _ -> false
  | head :: _, Some l ->
      let anywhere = [ "compare_and_set"; "fetch_and_add"; "exchange" ] in
      let atomic_mods = [ "Atomic"; "Tatomic" ] in
      List.mem l anywhere
      || (List.mem head atomic_mods && List.mem l [ "set"; "incr"; "decr" ])

let io_unqualified =
  SSet.of_list
    [
      "print_string"; "print_endline"; "print_int"; "print_char";
      "print_float"; "print_newline"; "prerr_string"; "prerr_endline";
      "prerr_newline"; "read_line"; "read_int"; "exit";
    ]

let io_modules = SSet.of_list [ "Printf"; "Format"; "Unix"; "Out_channel"; "In_channel" ]

let io_pure_fns =
  SSet.of_list
    [ "sprintf"; "asprintf"; "ksprintf"; "kasprintf"; "gettimeofday"; "time" ]

let is_io parts =
  match parts with
  | [ x ] -> SSet.mem x io_unqualified
  | head :: _ -> (
      SSet.mem head io_modules
      && match last_part parts with
         | Some l -> not (SSet.mem l io_pure_fns)
         | None -> false)
  | [] -> false

let is_raise parts =
  match parts with
  | [ x ] -> List.mem x [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]
  | _ -> false

let blocking_prims =
  SSet.of_list
    [
      "Unix.sleep"; "Unix.sleepf"; "Unix.select"; "Mutex.lock";
      "Condition.wait"; "Event.sync"; "Domain.join"; "Thread.delay";
      "Thread.join"; "input_line"; "input_char"; "really_input";
      "really_input_string"; "read_line"; "In_channel.input_line";
      "In_channel.input_all"; "In_channel.really_input_string";
    ]

(* The conventional pool worker entry points: reachability roots for
   blocking-in-worker, alongside lambdas passed to Domain.spawn. *)
let worker_roots = SSet.of_list [ "worker_loop"; "idle_wait" ]

(* ---------------- fresh-allocation / purity ---------------- *)

(* RHS shapes that allocate state owned by the binder: [ref e],
   [Array.make ...], [Buffer.create ...], a literal [| ... |], ... *)
let rec is_fresh_alloc e =
  match e.pexp_desc with
  | Pexp_array _ -> true
  | Pexp_constraint (e, _) -> is_fresh_alloc e
  | Pexp_apply (fn, _) -> (
      match expr_ident fn with
      | Some parts -> (
          match strip_stdlib parts with
          | [ "ref" ] -> true
          | _ :: _ :: _ as p -> (
              match last_part p with
              | Some l ->
                  List.mem l
                    [ "make"; "create"; "init"; "copy"; "make_matrix"; "create_float" ]
              | None -> false)
          | _ -> false)
      | None -> false)
  | _ -> false

type purity_env = { fresh : SSet.t; in_try : bool }

let is_fresh_ident env e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } -> SSet.mem x env.fresh
  | _ -> false
