(** Checked-in suppression baseline.

    One entry per line:

    {v
    <rule-id> <path>:<line>#<line-hash> -- <justification>
    v}

    Blank lines and lines starting with ['#'] are comments.  Paths are
    normalised like {!Finding.normalize_path}, so entries match no
    matter where the analyzer was launched from.

    The stable part of the key is the {e line hash} — a 12-hex-char
    digest of the trimmed source line ({!Finding.hash_line_text}) —
    so a suppression survives the code above it growing or shrinking:
    the line {e number} is an advisory hint for humans reading the
    baseline, never consulted when a hash is present.  Entries written
    before PR 7 carry no [#hash]; they fall back to exact
    rule+file+line matching and are migrated by re-running
    [--suggest]-style output (the [baseline:] line under each finding).

    A finding is suppressed by the first unconsumed matching entry;
    entries that match no finding are reported as {e stale} so the
    baseline shrinks as code gets fixed.  The justification is
    mandatory — a suppression nobody can explain is a bug with a paper
    trail. *)

type entry = {
  rule : string;
  file : string;
  line : int;  (** advisory when [hash] is present *)
  hash : string;  (** [""] = legacy entry, match on exact line *)
  justification : string;
  source_line : int;  (** line in the baseline file, for stale reports *)
}

type t = entry list

let parse_error file lineno msg =
  failwith (Printf.sprintf "%s:%d: baseline syntax error: %s" file lineno msg)

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')

(** Parse baseline text.  [name] is used in error messages only. *)
let of_string ?(name = "<baseline>") text : t =
  let entries = ref [] in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim raw in
      if line <> "" && line.[0] <> '#' then begin
        let entry =
          match String.index_opt line ' ' with
          | None ->
              parse_error name lineno
                "expected '<rule> <path>:<line>[#hash] -- <why>'"
          | Some sp -> (
              let rule = String.sub line 0 sp in
              let rest = String.trim (String.sub line (sp + 1) (String.length line - sp - 1)) in
              let loc_part, justification =
                let marker = " -- " in
                let rec find i =
                  if i + String.length marker > String.length rest then None
                  else if String.sub rest i (String.length marker) = marker then Some i
                  else find (i + 1)
                in
                match find 0 with
                | None -> parse_error name lineno "missing ' -- <justification>'"
                | Some i ->
                    ( String.sub rest 0 i,
                      String.trim
                        (String.sub rest
                           (i + String.length marker)
                           (String.length rest - i - String.length marker)) )
              in
              if justification = "" then
                parse_error name lineno "empty justification";
              let loc_part, hash =
                match String.rindex_opt loc_part '#' with
                | Some h ->
                    let hash =
                      String.sub loc_part (h + 1) (String.length loc_part - h - 1)
                    in
                    if hash = "" || not (String.for_all is_hex hash) then
                      parse_error name lineno
                        ("bad line hash '" ^ hash ^ "' (lowercase hex expected)");
                    (String.sub loc_part 0 h, hash)
                | None -> (loc_part, "")
              in
              match String.rindex_opt loc_part ':' with
              | None -> parse_error name lineno "expected '<path>:<line>'"
              | Some c -> (
                  let path = String.sub loc_part 0 c in
                  let ln = String.sub loc_part (c + 1) (String.length loc_part - c - 1) in
                  match int_of_string_opt ln with
                  | None -> parse_error name lineno ("bad line number " ^ ln)
                  | Some line ->
                      {
                        rule;
                        file = Finding.normalize_path path;
                        line;
                        hash;
                        justification;
                        source_line = lineno;
                      }))
        in
        entries := entry :: !entries
      end)
    (String.split_on_char '\n' text);
  List.rev !entries

let load path : t =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string ~name:path text

(** Render a finding as a ready-to-paste baseline line (justification
    left as a placeholder the committer must fill in).  Content-hash
    keyed whenever the engine filled the finding's [line_hash] in. *)
let suggest (f : Finding.t) =
  if f.line_hash = "" then
    Printf.sprintf "%s %s:%d -- TODO justify" f.rule f.file f.line
  else
    Printf.sprintf "%s %s:%d#%s -- TODO justify" f.rule f.file f.line
      f.line_hash

(** Entries whose suppression key — rule, file, and line hash (line
    number for legacy hashless entries) — repeats: the second and later
    occurrences.  {!apply} consumes one entry per finding, so a
    duplicate either hides a stale entry or silently double-suppresses
    a line that regressed; either way the baseline should carry it
    once. *)
let duplicates (t : t) : entry list =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (e : entry) ->
      let key =
        (e.rule, e.file, if e.hash <> "" then "#" ^ e.hash else string_of_int e.line)
      in
      if Hashtbl.mem seen key then true
      else begin
        Hashtbl.add seen key ();
        false
      end)
    t

let matches (e : entry) (f : Finding.t) =
  e.rule = f.rule && e.file = f.file
  &&
  if e.hash <> "" && f.line_hash <> "" then e.hash = f.line_hash
  else e.line = f.line

(** Split findings into (fresh, suppressed-with-justification), and
    return the stale entries that matched nothing.  Each entry
    suppresses at most one finding (two findings on one line need two
    entries). *)
let apply (t : t) (findings : Finding.t list) :
    Finding.t list * (Finding.t * string) list * entry list =
  let remaining = ref t in
  let fresh = ref [] and suppressed = ref [] in
  List.iter
    (fun (f : Finding.t) ->
      let rec take acc = function
        | [] -> None
        | e :: rest ->
            if matches e f then begin
              remaining := List.rev_append acc rest;
              Some e
            end
            else take (e :: acc) rest
      in
      match take [] !remaining with
      | Some e -> suppressed := (f, e.justification) :: !suppressed
      | None -> fresh := f :: !fresh)
    findings;
  (List.rev !fresh, List.rev !suppressed, !remaining)
