(** Digest-keyed summary cache: the reason warm [dune build @lint]
    runs never re-parse an unchanged file.

    The cache is a single [Marshal]led file mapping
    [path ^ "\x00" ^ content-digest] to the file's {!Summary}.  Because
    summaries embed their file-local findings, a hit skips parsing
    {e and} every file rule.  The format version is baked into the
    payload and bumped whenever summary extraction or a file rule
    changes, so a stale-format cache is simply ignored (worst case: one
    cold run).  Loading never fails — any read/unmarshal error degrades
    to an empty cache. *)

(* Bump when Summary.t's shape, extraction, or any file-local rule's
   output changes: cached summaries bake all three in. *)
let format_version = 3

type t = (string, Summary.t) Hashtbl.t

let key ~path ~digest = Finding.normalize_path path ^ "\x00" ^ digest

let empty () : t = Hashtbl.create 64

let load path : t =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> (Marshal.from_channel ic : int * (string * Summary.t) list))
  with
  | version, entries when version = format_version ->
      let t = empty () in
      List.iter (fun (k, s) -> Hashtbl.replace t k s) entries;
      t
  | _ -> empty ()
  | exception _ -> empty ()

(** Persist [t], keeping only [live] keys (the files this run saw):
    deleted and renamed files age out instead of accreting. *)
let save path (t : t) ~live =
  let entries =
    List.filter_map
      (fun k ->
        match Hashtbl.find_opt t k with Some s -> Some (k, s) | None -> None)
      (List.sort_uniq String.compare live)
  in
  try
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Marshal.to_channel oc
          ((format_version, entries) : int * (string * Summary.t) list)
          [])
  with _ -> ()

let find (t : t) ~path ~digest = Hashtbl.find_opt t (key ~path ~digest)

let add (t : t) ~path ~digest summary =
  Hashtbl.replace t (key ~path ~digest) summary
