(** Serializable per-definition control-flow graphs over the untyped
    parsetree — the substrate of the flow-sensitive rules.

    A {!t} is built once per value binding at summarise time and stored
    inside the binding's {!Summary.def}, so it must not reference the
    parsetree: nodes carry a small, marshal-able {!event} vocabulary
    (binds, calls, cursor/plane touches, sleep-word arms, blocking
    primitives, raises) and integer successor lists.  Every
    call-carrying node gets an {e exception edge} to the innermost
    handler (or the definition's exceptional exit): "leaked on the
    exception path" and "committed on every path out, including
    exceptional ones" are path questions this graph answers.

    Structure handled: sequencing, [let] (including [and] chains),
    [if]/[match] branches (with [exception] cases), [try], [while]/
    [for] loops (back edges via a patched join node), [||]/[&&]
    short-circuits, [@@]/[|>] application rewrites, and [Fun.protect]
    — desugared into two copies of the [~finally] body, one on the
    normal edge and one on the exceptional edge, which is exactly the
    shape the fd-leak rule certifies.

    Lambdas are {e not} inlined: a nested [fun] contributes only a
    {!Mention} of its free identifiers (captures escape), and its body
    is analysed through its own def's graph when it is bound, or not at
    all when anonymous — which is what keeps [Shm_ring.send]'s
    plane-writing callbacks out of the caller's frame obligations. *)

open Parsetree
open Astutil

type loc = { line : int; col : int }

let no_loc = { line = 0; col = 0 }

let loc_of (l : Location.t) =
  { line = l.loc_start.pos_lnum; col = l.loc_start.pos_cnum - l.loc_start.pos_bol }

(** Where a [let]-bound value came from — what the taint and resource
    analyses key acquisition on. *)
type bind_src =
  | Src_call of string list  (** RHS is an application of this ident *)
  | Src_ident of string list  (** RHS is a bare (possibly qualified) ident *)
  | Src_other

type event =
  | Bind of { vars : string list; src : bind_src }
      (** pattern binding: kills prior facts about [vars], then seeds
          new ones from [src] *)
  | Call of { parts : string list; args : string list; tail : bool }
      (** application; [args] holds the bare-ident arguments by
          position ([""] for structured ones), [tail] marks result
          position *)
  | Mention of string list
      (** idents escaping into structures, stores or closures *)
  | Return of string list list  (** ident paths in result position *)
  | Cursor_load of string  (** read of a ring cursor word / cache *)
  | Cursor_store of string  (** publishing store to [tail_w]/[head_w] *)
  | Plane of { field : string; write : bool }  (** frame plane access *)
  | Guard_load of string  (** atomic-style load usable as a re-check *)
  | Sleep_arm of string  (** arming store/incr on a sleep word *)
  | Sleep_clear of string  (** disarming store/decr on a sleep word *)
  | Block of string  (** primitive that blocks the OS thread *)
  | Raise of string

type node = {
  n_loc : loc;
  n_event : event option;  (** [None] — pure join/branch point *)
  mutable n_succ : int list;  (** mutable only to patch loop back edges *)
  n_exn : int list;
}

type t = {
  nodes : node array;
  entry : int;
  exit_normal : int;
  exit_exn : int;
}

(* ---------------- vocabulary tables ---------------- *)

(* Kept textually in sync with Summary.ring_cursor_fields /
   ring_data_fields (Summary depends on this module, not the reverse).
   [sleeping_w] is deliberately absent: the doorbell word is the sleep
   protocol's state, not a frame cursor. *)
let frame_cursor_words =
  SSet.of_list
    [ "tail_w"; "head_w"; "tail_local"; "head_local"; "peer_head"; "peer_tail" ]

let plane_fields = SSet.of_list [ "data_chars"; "data_words"; "data_floats" ]

let sleepish label =
  path_has "sleep" label

(* Module heads whose [get]/[load] is container indexing, not an
   atomic-style load a Dekker re-check could ride on. *)
let non_guard_heads =
  SSet.of_list
    [
      "Array"; "Bytes"; "String"; "Bigarray"; "Array1"; "Array2"; "A1"; "A2";
      "Genarray"; "Buffer"; "Hashtbl"; "List"; "Queue"; "Stack"; "Option";
      "Result"; "Map"; "Filename"; "Sys"; "Char"; "Seq"; "Either";
    ]

(* Close-style cleanup calls, modelled as non-raising (see
   [build_generic_apply]). *)
let non_raising =
  SSet.of_list
    [
      "Unix.close"; "close_in"; "close_out"; "close_in_noerr";
      "close_out_noerr"; "ignore";
    ]

(* Blocking primitives for the lost-wakeup rule: the shared table plus
   the fd-level waits the doorbell handshake actually parks on. *)
let wakeup_blocking =
  SSet.union blocking_prims
    (SSet.of_list
       [ "Unix.read"; "Unix.recv"; "Unix.recvfrom"; "Unix.accept";
         "Unix.wait"; "Unix.waitpid" ])

(* ---------------- builder ---------------- *)

type builder = { mutable cells : node list; mutable count : int }

let new_node b ?(succ = []) ?(exn = []) ~loc ev =
  let n = { n_loc = loc; n_event = ev; n_succ = succ; n_exn = exn } in
  b.cells <- n :: b.cells;
  b.count <- b.count + 1;
  b.count - 1

type env = { b : builder; handler : int }

let pattern_var_list pat = SSet.elements (pattern_vars pat)

(* Ordered positional parameter names of a syntactic function
   ([case]-style [function] suffixes contribute one anonymous slot). *)
let rec fun_params_list e =
  match e.pexp_desc with
  | Pexp_fun (_, _, pat, body) ->
      (match simple_var pat with Some x -> x | None -> "<pat>")
      :: fun_params_list body
  | _ -> []

let children_of e =
  let acc = ref [] in
  descend_children (fun c -> acc := c :: !acc) e;
  List.rev !acc

(* All ident paths inside [e], stripped, deepest-first order irrelevant. *)
let deep_idents e =
  let acc = ref [] in
  let rec go e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } ->
        let p = strip_stdlib (lid_parts txt) in
        if p <> [] then acc := p :: !acc
    | _ -> ());
    descend_children go e
  in
  go e;
  List.rev !acc

let bare_names parts_list =
  List.filter_map (function [ x ] -> Some x | _ -> None) parts_list
  |> List.sort_uniq String.compare

let rec unconstrain e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> unconstrain e
  | _ -> e

let bind_src_of rhs =
  match (unconstrain rhs).pexp_desc with
  | Pexp_ident { txt; _ } -> Src_ident (strip_stdlib (lid_parts txt))
  | Pexp_apply (fn, _) -> (
      match expr_ident fn with
      | Some parts -> Src_call (strip_stdlib parts)
      | None -> Src_other)
  | _ -> Src_other

let field_label_of e =
  match (unconstrain e).pexp_desc with
  | Pexp_field (_, lid) -> (
      match last_part (lid_parts lid.txt) with Some l -> Some l | None -> None)
  | _ -> None

let bare_ident e =
  match (unconstrain e).pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } -> Some x
  | _ -> None

let is_const_zero e =
  match (unconstrain e).pexp_desc with
  | Pexp_constant (Pconst_integer ("0", _)) -> true
  | Pexp_construct ({ txt = Longident.Lident "false"; _ }, None) -> true
  | _ -> false

let is_exception_case c =
  match c.pc_lhs.ppat_desc with Ppat_exception _ -> true | _ -> false

let case_pattern_vars c =
  match c.pc_lhs.ppat_desc with
  | Ppat_exception p -> pattern_var_list p
  | _ -> pattern_var_list c.pc_lhs

(* [with e ->] / [with _ ->] catches every exception, so the handler
   has no fall-through to the enclosing one. *)
let is_catchall_case c =
  let rec catchall p =
    match p.ppat_desc with
    | Ppat_var _ | Ppat_any -> true
    | Ppat_exception p | Ppat_alias (p, _) -> catchall p
    | _ -> false
  in
  c.pc_guard = None && catchall c.pc_lhs

(* Classify one application (fn already resolved to [parts], stripped)
   into the single event its node carries. *)
let classify_apply parts args tail =
  let arg_exprs = List.map snd args in
  let arg1 = match arg_exprs with a :: _ -> Some a | [] -> None in
  let arg2 = match arg_exprs with _ :: a :: _ -> Some a | _ -> None in
  let lbl1 = Option.bind arg1 field_label_of in
  let qualified = List.length parts >= 2 in
  let head = match parts with h :: _ -> h | [] -> "" in
  let last = match last_part parts with Some l -> l | None -> "" in
  let generic () =
    Call
      {
        parts;
        args =
          List.map
            (fun a -> match bare_ident a with Some x -> x | None -> "")
            arg_exprs;
        tail;
      }
  in
  match lbl1 with
  | Some l when sleepish l && qualified -> (
      match last with
      | "incr" | "fetch_and_add" -> Sleep_arm l
      | "decr" -> Sleep_clear l
      | "set" | "store" ->
          if (match arg2 with Some v -> is_const_zero v | None -> false) then
            Sleep_clear l
          else Sleep_arm l
      | "get" | "load" -> Guard_load (dotted parts)
      | _ -> generic ())
  | Some l
    when qualified
         && SSet.mem l frame_cursor_words
         && (last = "store" || last = "set")
         && (l = "tail_w" || l = "head_w") ->
      Cursor_store l
  | Some l
    when qualified && SSet.mem l frame_cursor_words
         && (last = "load" || last = "get") ->
      Cursor_load l
  | Some l when SSet.mem l plane_fields && qualified -> (
      match last with
      | "set" | "unsafe_set" | "fill" | "blit" -> Plane { field = l; write = true }
      | "get" | "unsafe_get" -> Plane { field = l; write = false }
      | _ -> generic ())
  | _ ->
      if SSet.mem (dotted parts) wakeup_blocking then Block (dotted parts)
      else if
        qualified
        && (last = "get" || last = "load")
        && not (SSet.mem head non_guard_heads)
      then Guard_load (dotted parts)
      else generic ()

(* [build env e ~next ~tail] appends nodes for [e] and returns the
   entry id; control continues to [next] on fall-through and to
   [env.handler] on an escaping exception. *)
let rec build env e ~next ~tail : int =
  let loc = loc_of e.pexp_loc in
  match e.pexp_desc with
  | Pexp_constant _ -> next
  | Pexp_ident { txt; _ } ->
      let parts = strip_stdlib (lid_parts txt) in
      if tail then new_node env.b ~loc ~succ:[ next ] (Some (Return [ parts ]))
      else (
        match parts with
        | [ x ] -> new_node env.b ~loc ~succ:[ next ] (Some (Mention [ x ]))
        | _ -> next)
  | Pexp_constraint (inner, _) | Pexp_coerce (inner, _, _) ->
      build env inner ~next ~tail
  | Pexp_open (_, inner) | Pexp_newtype (_, inner) ->
      build env inner ~next ~tail
  | Pexp_letmodule (_, _, body) | Pexp_letexception (_, body) ->
      build env body ~next ~tail
  | Pexp_sequence (a, rest) ->
      let rest' = build env rest ~next ~tail in
      build env a ~next:rest' ~tail:false
  | Pexp_let (_, vbs, body) ->
      let body' = build env body ~next ~tail in
      List.fold_right
        (fun vb cont ->
          let vars = pattern_var_list vb.pvb_pat in
          let bloc = loc_of vb.pvb_loc in
          let bind =
            new_node env.b ~loc:bloc ~succ:[ cont ]
              (Some (Bind { vars; src = bind_src_of vb.pvb_expr }))
          in
          if is_syntactic_fun (unconstrain vb.pvb_expr) then
            new_node env.b ~loc:bloc ~succ:[ bind ]
              (Some (Mention (bare_names (deep_idents vb.pvb_expr))))
          else build env vb.pvb_expr ~next:bind ~tail:false)
        vbs body'
  | Pexp_ifthenelse (c, t, f) ->
      let t' = build env t ~next ~tail in
      let f' =
        match f with Some f -> build env f ~next ~tail | None -> next
      in
      let branch = new_node env.b ~loc ~succ:[ t'; f' ] None in
      build env c ~next:branch ~tail:false
  | Pexp_match (scrut, cases) ->
      let normal, exc = List.partition (fun c -> not (is_exception_case c)) cases in
      let case_entry c =
        let body = build env c.pc_rhs ~next ~tail in
        let body =
          match c.pc_guard with
          | Some g -> build env g ~next:body ~tail:false
          | None -> body
        in
        new_node env.b ~loc:(loc_of c.pc_lhs.ppat_loc) ~succ:[ body ]
          (Some (Bind { vars = case_pattern_vars c; src = Src_other }))
      in
      let nentries = List.map case_entry normal in
      let dispatch =
        new_node env.b ~loc
          ~succ:(if nentries = [] then [ next ] else nentries)
          None
      in
      let handler' =
        match exc with
        | [] -> env.handler
        | _ ->
            let fallthrough =
              if List.exists is_catchall_case exc then [] else [ env.handler ]
            in
            new_node env.b ~loc
              ~succ:(List.map case_entry exc @ fallthrough)
              None
      in
      build { env with handler = handler' } scrut ~next:dispatch ~tail:false
  | Pexp_try (body, cases) ->
      let case_entry c =
        let rhs = build env c.pc_rhs ~next ~tail in
        new_node env.b ~loc:(loc_of c.pc_lhs.ppat_loc) ~succ:[ rhs ]
          (Some (Bind { vars = case_pattern_vars c; src = Src_other }))
      in
      let catch =
        let fallthrough =
          if List.exists is_catchall_case cases then [] else [ env.handler ]
        in
        new_node env.b ~loc
          ~succ:(List.map case_entry cases @ fallthrough)
          None
      in
      build { env with handler = catch } body ~next ~tail
  | Pexp_while (c, body) ->
      let loop_join = new_node env.b ~loc None in
      let branch = new_node env.b ~loc ~succ:[ next ] None in
      let body' = build env body ~next:loop_join ~tail:false in
      let c' = build env c ~next:branch ~tail:false in
      (* patch: cond decides body-or-exit; body loops back to cond *)
      set_succ env.b branch [ body'; next ];
      set_succ env.b loop_join [ c' ];
      c'
  | Pexp_for (pat, lo, hi, _, body) ->
      let loop_join = new_node env.b ~loc None in
      let branch = new_node env.b ~loc ~succ:[ next ] None in
      let body' = build env body ~next:loop_join ~tail:false in
      set_succ env.b branch [ body'; next ];
      set_succ env.b loop_join [ branch ];
      let bind =
        new_node env.b ~loc ~succ:[ branch ]
          (Some (Bind { vars = pattern_var_list pat; src = Src_other }))
      in
      let hi' = build env hi ~next:bind ~tail:false in
      build env lo ~next:hi' ~tail:false
  | Pexp_fun _ | Pexp_function _ ->
      new_node env.b ~loc ~succ:[ next ]
        (Some (Mention (bare_names (deep_idents e))))
  | Pexp_lazy inner ->
      new_node env.b ~loc ~succ:[ next ]
        (Some (Mention (bare_names (deep_idents inner))))
  | Pexp_setfield (r, _, v) ->
      (* the value escapes into the record; cursor-cache bumps carry no
         event of their own (the rule cares about word publishes) *)
      let r' = build env r ~next ~tail:false in
      build env v ~next:r' ~tail:false
  | Pexp_field (inner, lid) -> (
      let l = match last_part (lid_parts lid.txt) with Some l -> l | None -> "" in
      let ev =
        if SSet.mem l frame_cursor_words then Some (Cursor_load l)
        else if SSet.mem l plane_fields then
          Some (Plane { field = l; write = false })
        else None
      in
      match ev with
      | Some ev ->
          let n = new_node env.b ~loc ~succ:[ next ] (Some ev) in
          build env inner ~next:n ~tail:false
      | None ->
          if tail then
            new_node env.b ~loc ~succ:[ next ]
              (Some (Return (deep_idents inner)))
          else build env inner ~next ~tail:false)
  | Pexp_assert inner -> (
      match inner.pexp_desc with
      | Pexp_construct ({ txt = Longident.Lident "false"; _ }, None) ->
          new_node env.b ~loc ~exn:[ env.handler ] (Some (Raise "assert false"))
      | _ ->
          let n =
            new_node env.b ~loc ~succ:[ next ] ~exn:[ env.handler ] None
          in
          build env inner ~next:n ~tail:false)
  | Pexp_apply (fn, args) -> build_apply env e fn args ~next ~tail
  | _ ->
      let next =
        if tail then
          new_node env.b ~loc ~succ:[ next ] (Some (Return (deep_idents e)))
        else next
      in
      List.fold_right
        (fun kid cont -> build env kid ~next:cont ~tail:false)
        (children_of e) next

and set_succ b id succ =
  (* nodes are stored newest-first in [cells] *)
  let n = List.nth b.cells (b.count - 1 - id) in
  n.n_succ <- succ

and build_apply env e fn args ~next ~tail =
  let loc = loc_of e.pexp_loc in
  match (expr_ident fn, args) with
  (* operator rewrites: [f @@ x] and [x |> f] are applications *)
  | Some [ "@@" ], [ (_, f); (_, x) ] | Some [ "|>" ], [ (_, x); (_, f) ] -> (
      match (unconstrain f).pexp_desc with
      | Pexp_ident _ | Pexp_apply _ ->
          let app =
            {
              e with
              pexp_desc =
                (match (unconstrain f).pexp_desc with
                | Pexp_apply (g, gargs) ->
                    Pexp_apply (g, gargs @ [ (Asttypes.Nolabel, x) ])
                | _ -> Pexp_apply (f, [ (Asttypes.Nolabel, x) ]));
            }
          in
          build env app ~next ~tail
      | _ ->
          let n = new_node env.b ~loc ~succ:[ next ] ~exn:[ env.handler ] None in
          build env x ~next:n ~tail:false)
  (* short-circuit booleans are control flow *)
  | Some ([ "||" ] | [ "&&" ]), [ (_, a); (_, b) ] ->
      let b' = build env b ~next ~tail:false in
      let branch = new_node env.b ~loc ~succ:[ b'; next ] None in
      build env a ~next:branch ~tail:false
  | Some parts, _ when strip_stdlib parts = [ "Fun"; "protect" ] -> (
      let finally =
        List.find_map
          (fun (lbl, a) ->
            match lbl with
            | Asttypes.Labelled "finally" when is_syntactic_fun (unconstrain a) ->
                Some (unconstrain a)
            | _ -> None)
          args
      in
      let body =
        List.find_map
          (fun (lbl, a) ->
            match lbl with
            | Asttypes.Nolabel when is_syntactic_fun (unconstrain a) ->
                Some (unconstrain a)
            | _ -> None)
          args
      in
      match (finally, body) with
      | Some fin, Some bodyfn ->
          let build_bodies env bodies ~next ~tail =
            match bodies with
            | [ one ] -> build env one ~next ~tail
            | many ->
                let entries =
                  List.map (fun b -> build env b ~next ~tail) many
                in
                new_node env.b ~loc ~succ:entries None
          in
          let fin_norm = build_bodies env (fun_bodies fin) ~next ~tail:false in
          let fin_exn =
            build_bodies env (fun_bodies fin) ~next:env.handler ~tail:false
          in
          build_bodies
            { env with handler = fin_exn }
            (fun_bodies bodyfn) ~next:fin_norm ~tail
      | _ -> build_generic_apply env e (Some [ "Fun"; "protect" ]) args ~next ~tail)
  | Some parts, _ when is_raise (strip_stdlib parts) ->
      let n =
        new_node env.b ~loc ~exn:[ env.handler ]
          (Some (Raise (dotted (strip_stdlib parts))))
      in
      List.fold_right
        (fun (_, a) cont ->
          if bare_ident a = None then build env a ~next:cont ~tail:false
          else cont)
        args n
  | ident, _ -> build_generic_apply env e ident args ~next ~tail

and build_generic_apply env e ident args ~next ~tail =
  let loc = loc_of e.pexp_loc in
  let parts =
    match ident with Some p -> strip_stdlib p | None -> []
  in
  let ev = classify_apply parts args tail in
  (* Cleanup primitives are modelled as non-raising: an exception edge
     out of [Unix.close a] would make every other live descriptor
     "leak" along it, which is noise no caller can act on. *)
  let exn = if SSet.mem (dotted parts) non_raising then [] else [ env.handler ] in
  let call = new_node env.b ~loc ~succ:[ next ] ~exn (Some ev) in
  (* When the event already encodes its target field ([Mapped_word.store
     r.tail_w 1] -> Cursor_store), rebuilding the field argument would
     fabricate a separate read of the same word — turning every commit
     into acquire-then-commit and hiding double publishes. *)
  let built_args =
    match ev with
    | Cursor_store _ | Cursor_load _ | Plane _ | Sleep_arm _ | Sleep_clear _
    | Guard_load _ -> (
        match args with
        | (_, a) :: rest when field_label_of a <> None -> rest
        | _ -> args)
    | _ -> args
  in
  let after_args =
    List.fold_right
      (fun (_, a) cont ->
        if bare_ident a = None then build env a ~next:cont ~tail:false
        else cont)
      built_args call
  in
  match ident with
  | Some _ -> after_args
  | None -> (
      match e.pexp_desc with
      | Pexp_apply (fn, _) -> build env fn ~next:after_args ~tail:false
      | _ -> after_args)

(** Build the graph of one value binding: a function's bodies with its
    parameters pre-bound, or a plain RHS in result position. *)
let of_binding (rhs : expression) : t =
  let b = { cells = []; count = 0 } in
  let exit_normal = new_node b ~loc:no_loc None in
  let exit_exn = new_node b ~loc:no_loc None in
  let env = { b; handler = exit_exn } in
  let rhs = unconstrain rhs in
  let entry =
    if is_syntactic_fun rhs then begin
      let entries =
        List.map
          (fun body -> build env body ~next:exit_normal ~tail:true)
          (fun_bodies rhs)
      in
      new_node b ~loc:(loc_of rhs.pexp_loc)
        ~succ:entries
        (Some (Bind { vars = SSet.elements (fun_params rhs); src = Src_other }))
    end
    else build env rhs ~next:exit_normal ~tail:true
  in
  { nodes = Array.of_list (List.rev b.cells); entry; exit_normal; exit_exn }

(* ---------------- small queries the analyses share ---------------- *)

let has_event (g : t) pred =
  Array.exists (fun n -> match n.n_event with Some e -> pred e | None -> false)
    g.nodes

let has_commit g =
  has_event g (function Cursor_store _ -> true | _ -> false)

let has_plane_write g =
  has_event g (function Plane { write = true; _ } -> true | _ -> false)

let has_ring_event g =
  has_event g (function
    | Cursor_load _ | Cursor_store _ | Plane _ -> true
    | _ -> false)

let has_sleep_event g =
  has_event g (function Sleep_arm _ | Sleep_clear _ -> true | _ -> false)
