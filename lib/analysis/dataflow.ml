(** Generic forward worklist solver over {!Cfg.t}.

    A client supplies a join-semilattice of abstract states and a
    transfer function from events; the solver iterates to fixpoint and
    hands back the state {e entering} every node.  Exceptional control
    flow is first-class: the transfer function is told which kind of
    edge ([`Normal] or [`Exn]) the fact is about to flow along, so an
    analysis can model "the call completed" differently from "the call
    raised mid-way" — which is precisely the distinction the fd-leak
    and frame-lifetime rules exist to check. *)

module type LATTICE = sig
  type state

  val bottom : state
  (** identity of [join]; the "unreached" state *)

  val entry : state
  (** state on entry to the definition *)

  val equal : state -> state -> bool
  val join : state -> state -> state

  val transfer : Cfg.node -> edge:[ `Normal | `Exn ] -> state -> state
  (** abstract effect of executing the node's event, as observed on an
      outgoing edge of the given kind *)
end

module Make (L : LATTICE) = struct
  type result = {
    before : L.state array;  (** state entering each node *)
    at_exit : L.state;  (** state reaching the normal exit *)
    at_exit_exn : L.state;  (** state reaching the exceptional exit *)
  }

  let solve ?init (g : Cfg.t) : result =
    let n = Array.length g.nodes in
    let before = Array.make n L.bottom in
    before.(g.entry) <- (match init with Some s -> s | None -> L.entry);
    let on_queue = Array.make n false in
    (* Reachability is tracked separately from the state: lattices where
       [entry = bottom] (the map-valued ones) would otherwise never
       propagate past the entry node, because flowing bottom into a
       bottom successor changes nothing. *)
    let reached = Array.make n false in
    let queue = Queue.create () in
    let push i =
      if not on_queue.(i) then begin
        on_queue.(i) <- true;
        Queue.push i queue
      end
    in
    reached.(g.entry) <- true;
    push g.entry;
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      on_queue.(i) <- false;
      let node = g.nodes.(i) in
      let flow edge targets =
        let out = L.transfer node ~edge before.(i) in
        List.iter
          (fun j ->
            let first = not reached.(j) in
            reached.(j) <- true;
            let joined = L.join before.(j) out in
            if first || not (L.equal joined before.(j)) then begin
              before.(j) <- joined;
              push j
            end)
          targets
      in
      flow `Normal node.n_succ;
      flow `Exn node.n_exn
    done;
    {
      before;
      at_exit = before.(g.exit_normal);
      at_exit_exn = before.(g.exit_exn);
    }
end
