(** The analysis driver, in two phases.

    {b Phase 1 (summarise)}: walk the source roots, digest every [.ml]
    file, and obtain its {!Summary} — from the {!Cache} when the digest
    matches, else by parsing with compiler-libs and extracting facts.
    Every {e file-local} rule runs here and its findings are stored in
    the summary, so a cached file costs one [Digest.file] and nothing
    else.

    {b Phase 2 (link)}: {!Linker.link} the summaries into a
    whole-program view and run the {e linked} rules (marshal-safety,
    ring-discipline, protocol-exhaustiveness, interprocedural
    blocking-in-worker) over it.  Linked rules always run — they are
    cheap (no parsing) and their findings depend on the whole file set,
    which the cache cannot key.

    Files only have to {e parse} — the engine never typechecks — so it
    runs on fixture files that reference modules that do not exist.
    [.mli] files are skipped: they declare, they do not execute. *)

module J = Repro_util.Json_out

type report = {
  findings : Finding.t list;  (** everything the rules produced, sorted *)
  fresh : Finding.t list;  (** not covered by the baseline — these gate *)
  suppressed : (Finding.t * string) list;  (** finding, justification *)
  stale : Baseline.entry list;  (** baseline entries that matched nothing *)
  duplicate_entries : Baseline.entry list;
      (** baseline entries whose suppression key repeats an earlier one *)
  files_scanned : int;
  files_parsed : int;  (** summarised this run (cache miss or no cache) *)
  files_cached : int;  (** summary reused from the digest cache *)
  per_rule : (string * int * int) list;
      (** rule id, fresh count, suppressed count — selected rules only *)
  summarize_ms : float;  (** phase 1 wall-clock *)
  link_ms : float;  (** phase 2 wall-clock *)
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_error_finding ~norm exn : Finding.t =
  let line, col =
    match exn with
    | Syntaxerr.Error err ->
        let loc = Syntaxerr.location_of_error err in
        (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
    | _ -> (1, 0)
  in
  {
    Finding.rule = "parse-error";
    severity = Finding.Error;
    file = norm;
    line;
    col;
    line_hash = "";
    message =
      (match exn with
      | Syntaxerr.Error _ -> "syntax error"
      | e -> "cannot parse: " ^ Printexc.to_string e);
    hint = "fix the syntax error (the build would reject it too)";
  }

(* Summarise one file from source text.  File-local findings for the
   FULL registry are computed here (unconditionally): the summary is
   cached by content digest, and a cache entry must not depend on which
   [--rule] subset this particular run selected. *)
let summarize_source ~path ~source ~digest : Summary.t =
  let norm = Finding.normalize_path path in
  match
    let lexbuf = Lexing.from_string source in
    Lexing.set_filename lexbuf norm;
    Parse.implementation lexbuf
  with
  | ast ->
      let local_findings =
        List.map
          (fun ((r : Rules.t), check) -> (r.Rules.id, check ~file:path ast))
          (Rules.file_rules Rules.all)
      in
      Summary.of_ast ~file:path ~source ~digest ~local_findings ast
  | exception exn ->
      Summary.of_parse_error ~file:path ~source ~digest
        ~finding:(parse_error_finding ~norm exn)

(* Pull the selected local findings out of a summary; exemptions and
   rule selection are applied here, not at summarise time. *)
let local_findings_of ~selected (s : Summary.t) : Finding.t list =
  List.concat_map
    (fun (rule_id, findings) ->
      if rule_id = "parse-error" then findings
      else
        match List.find_opt (fun (r : Rules.t) -> r.Rules.id = rule_id) selected with
        | Some r when not (r.Rules.exempt s.Summary.s_file) -> findings
        | _ -> [])
    s.Summary.s_local_findings

let run_linked ~selected (program : Linker.program) : Finding.t list =
  List.concat_map
    (fun ((r : Rules.t), check) ->
      List.filter
        (fun (f : Finding.t) -> not (r.Rules.exempt f.Finding.file))
        (check program))
    (Rules.linked_rules selected)

(* Fill each finding's [line_hash] from its file's summary — this is
   what content-hash baseline entries key on. *)
let attach_hashes (program : Linker.program) findings =
  List.map
    (fun (f : Finding.t) ->
      match Hashtbl.find_opt program.Linker.by_file f.Finding.file with
      | Some s -> { f with Finding.line_hash = Summary.line_hash s ~line:f.Finding.line }
      | None -> f)
    findings

(** Parse one file and run [rules] over it — the single-file view used
    by fixture tests and editor integrations.  Linked rules run over a
    one-file program, so cross-module facts are absent but same-file
    interprocedural facts (a worker loop calling a blocking helper
    below it) still land. *)
let scan_file ~(rules : Rules.t list) path : Finding.t list =
  let source = read_file path in
  let digest = Digest.to_hex (Digest.string source) in
  let s = summarize_source ~path ~source ~digest in
  let program = Linker.link [ s ] in
  local_findings_of ~selected:rules s @ run_linked ~selected:rules program
  |> attach_hashes program
  |> List.sort_uniq Finding.compare

(** The [.ml] files git reports as different from [ref_]: the committed
    diff plus untracked files.  Raises [Failure] when git is absent or
    [ref_] does not resolve — the drivers turn that into a usage
    error. *)
let changed_since ref_ : string list =
  let lines_of cmd =
    let ic = Unix.open_process_in cmd in
    let rec go acc =
      match input_line ic with
      | l -> go (l :: acc)
      | exception End_of_file -> List.rev acc
    in
    let lines = go [] in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 -> lines
    | _ -> failwith (Printf.sprintf "git command failed: %s" cmd)
  in
  lines_of (Printf.sprintf "git diff --name-only %s 2>/dev/null" (Filename.quote ref_))
  @ lines_of "git ls-files --others --exclude-standard 2>/dev/null"
  |> List.filter (fun f -> Filename.check_suffix f ".ml")
  |> List.sort_uniq String.compare

(* Directory walk: skip dotdirs and _build, collect .ml files, sorted
   for deterministic output. *)
let collect_files roots =
  let files = ref [] in
  let rec walk path =
    if Sys.is_directory path then begin
      let base = Filename.basename path in
      if String.length base > 0 && base.[0] <> '.' && base <> "_build" then
        Array.iter (fun entry -> walk (Filename.concat path entry)) (Sys.readdir path)
    end
    else if Filename.check_suffix path ".ml" then files := path :: !files
  in
  List.iter walk roots;
  List.sort String.compare !files

(** Run [rules] over every [.ml] under [roots] and fold the [baseline]
    in.  [cache] names the summary-cache file: digests are checked
    against it and it is rewritten (pruned to live files) after the
    run.  Findings are sorted and exact duplicates removed (two rules
    walking the same subtree may agree).

   [since_files], when given, focuses the {e report} on those changed
    files plus their reverse call-graph closure ({!Linker.dependents}):
    every file is still summarised (the cache makes that cheap) and the
    link still sees the whole program — cross-module facts need it —
    but findings and stale-entry reports outside the focus set are
    dropped.  This is what [--since REF] rides on. *)
let run ?(baseline : Baseline.t = []) ?cache_file ?since_files
    ~(rules : Rules.t list) roots : report =
  let files = collect_files roots in
  let cache =
    match cache_file with
    | Some p -> Cache.load p
    | None -> Cache.empty ()
  in
  let t0 = Unix.gettimeofday () in
  let parsed = ref 0 and cached = ref 0 in
  let live = ref [] in
  let summaries =
    List.map
      (fun path ->
        let digest = Digest.to_hex (Digest.file path) in
        live := Cache.key ~path ~digest :: !live;
        match Cache.find cache ~path ~digest with
        | Some s ->
            incr cached;
            s
        | None ->
            incr parsed;
            let s = summarize_source ~path ~source:(read_file path) ~digest in
            Cache.add cache ~path ~digest s;
            s)
      files
  in
  let t1 = Unix.gettimeofday () in
  let program = Linker.link summaries in
  let in_focus =
    match since_files with
    | None -> fun _ -> true
    | Some changed ->
        let focus =
          Linker.dependents program
            ~changed:(List.map Finding.normalize_path changed)
        in
        fun file -> List.mem file focus
  in
  let findings =
    List.concat_map (local_findings_of ~selected:rules) summaries
    @ run_linked ~selected:rules program
    |> attach_hashes program
    |> List.filter (fun (f : Finding.t) -> in_focus f.Finding.file)
    |> List.sort_uniq Finding.compare
  in
  let t2 = Unix.gettimeofday () in
  (match cache_file with
  | Some p -> Cache.save p cache ~live:!live
  | None -> ());
  let fresh, suppressed, stale = Baseline.apply baseline findings in
  let stale =
    List.filter (fun (e : Baseline.entry) -> in_focus e.Baseline.file) stale
  in
  let per_rule =
    List.map
      (fun (r : Rules.t) ->
        ( r.Rules.id,
          List.length
            (List.filter (fun (f : Finding.t) -> f.Finding.rule = r.Rules.id) fresh),
          List.length
            (List.filter
               (fun ((f : Finding.t), _) -> f.Finding.rule = r.Rules.id)
               suppressed) ))
      rules
  in
  {
    findings;
    fresh;
    suppressed;
    stale;
    duplicate_entries = Baseline.duplicates baseline;
    files_scanned = List.length files;
    files_parsed = !parsed;
    files_cached = !cached;
    per_rule;
    summarize_ms = (t1 -. t0) *. 1000.;
    link_ms = (t2 -. t1) *. 1000.;
  }

(* ---------------- rendering ---------------- *)

let text_report ?(verbose = true) (r : report) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (f : Finding.t) ->
      Buffer.add_string buf (Finding.to_string f);
      Buffer.add_char buf '\n';
      if verbose then begin
        Buffer.add_string buf ("  hint: " ^ f.hint ^ "\n");
        Buffer.add_string buf ("  baseline: " ^ Baseline.suggest f ^ "\n")
      end)
    r.fresh;
  List.iter
    (fun (e : Baseline.entry) ->
      Buffer.add_string buf
        (Printf.sprintf
           "stale baseline entry (matched no finding): %s %s:%d -- %s\n" e.rule
           e.file e.line e.justification))
    r.stale;
  List.iter
    (fun (e : Baseline.entry) ->
      Buffer.add_string buf
        (Printf.sprintf
           "duplicate baseline entry (line %d repeats an earlier key): %s \
            %s:%d -- %s\n"
           e.source_line e.rule e.file e.line e.justification))
    r.duplicate_entries;
  Buffer.add_string buf
    (Printf.sprintf
       "%d file(s) scanned (%d parsed, %d from cache; summarise %.1f ms, link \
        %.1f ms): %d finding(s), %d suppressed by baseline, %d stale baseline \
        entr%s\n"
       r.files_scanned r.files_parsed r.files_cached r.summarize_ms r.link_ms
       (List.length r.fresh)
       (List.length r.suppressed)
       (List.length r.stale)
       (if List.length r.stale = 1 then "y" else "ies"));
  if r.duplicate_entries <> [] then
    Buffer.add_string buf
      (Printf.sprintf "%d duplicate baseline entr%s\n"
         (List.length r.duplicate_entries)
         (if List.length r.duplicate_entries = 1 then "y" else "ies"));
  Buffer.contents buf

(** Machine-readable report; rule ids are stable, findings sorted, so
    diffs of this output are meaningful for baselining. *)
let json_report ~(rules : Rules.t list) (r : report) : J.t =
  J.Obj
    [
      ("schema", J.Str "repro/analysis/v2");
      ("rules", J.List (List.map (fun (ru : Rules.t) -> J.Str ru.id) rules));
      ("files_scanned", J.Int r.files_scanned);
      ("files_parsed", J.Int r.files_parsed);
      ("files_cached", J.Int r.files_cached);
      ("summarize_ms", J.Float r.summarize_ms);
      ("link_ms", J.Float r.link_ms);
      ( "per_rule",
        J.Obj
          (List.map
             (fun (id, fresh, supp) ->
               (id, J.Obj [ ("fresh", J.Int fresh); ("suppressed", J.Int supp) ]))
             r.per_rule) );
      ("findings", J.List (List.map Finding.to_json r.fresh));
      ( "suppressed",
        J.List
          (List.map
             (fun ((f : Finding.t), just) ->
               match Finding.to_json f with
               | J.Obj fields -> J.Obj (fields @ [ ("justification", J.Str just) ])
               | other -> other)
             r.suppressed) );
      ( "stale_baseline",
        J.List
          (List.map
             (fun (e : Baseline.entry) ->
               J.Obj
                 [
                   ("rule", J.Str e.rule);
                   ("file", J.Str e.file);
                   ("line", J.Int e.line);
                   ("hash", J.Str e.hash);
                 ])
             r.stale) );
      ( "duplicate_baseline",
        J.List
          (List.map
             (fun (e : Baseline.entry) ->
               J.Obj
                 [
                   ("rule", J.Str e.rule);
                   ("file", J.Str e.file);
                   ("line", J.Int e.line);
                   ("source_line", J.Int e.source_line);
                 ])
             r.duplicate_entries) );
    ]

let sarif_report ~(rules : Rules.t list) (r : report) : J.t =
  Sarif.document ~rules ~fresh:r.fresh ~suppressed:r.suppressed
