(** The analysis driver: walk source roots, parse each [.ml] with
    compiler-libs, run the selected {!Rules}, apply the {!Baseline},
    and render the result (text / JSON / SARIF).

    Files only have to {e parse} — the engine never typechecks — so it
    runs on fixture files that reference modules that do not exist, and
    costs milliseconds on the whole tree.  [.mli] files are skipped:
    they declare, they do not execute. *)

module J = Repro_util.Json_out

type report = {
  findings : Finding.t list;  (** everything the rules produced, sorted *)
  fresh : Finding.t list;  (** not covered by the baseline — these gate *)
  suppressed : (Finding.t * string) list;  (** finding, justification *)
  stale : Baseline.entry list;  (** baseline entries that matched nothing *)
  files_scanned : int;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Parse one file and run [rules] over it (path exemptions applied).
    A file that fails to parse yields a single [parse-error] finding —
    the build would reject it anyway, but the analyzer should say
    where rather than die. *)
let scan_file ~(rules : Rules.t list) path : Finding.t list =
  let norm = Finding.normalize_path path in
  match
    let source = read_file path in
    let lexbuf = Lexing.from_string source in
    Lexing.set_filename lexbuf norm;
    Parse.implementation lexbuf
  with
  | ast ->
      List.concat_map
        (fun (r : Rules.t) -> if r.exempt norm then [] else r.check ~file:path ast)
        rules
  | exception exn ->
      let line, col =
        match exn with
        | Syntaxerr.Error err ->
            let loc = Syntaxerr.location_of_error err in
            (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
        | _ -> (1, 0)
      in
      [
        {
          Finding.rule = "parse-error";
          severity = Finding.Error;
          file = norm;
          line;
          col;
          message =
            (match exn with
            | Syntaxerr.Error _ -> "syntax error"
            | e -> "cannot parse: " ^ Printexc.to_string e);
          hint = "fix the syntax error (the build would reject it too)";
        };
      ]

(* Directory walk: skip dotdirs and _build, collect .ml files, sorted
   for deterministic output. *)
let collect_files roots =
  let files = ref [] in
  let rec walk path =
    if Sys.is_directory path then begin
      let base = Filename.basename path in
      if String.length base > 0 && base.[0] <> '.' && base <> "_build" then
        Array.iter (fun entry -> walk (Filename.concat path entry)) (Sys.readdir path)
    end
    else if Filename.check_suffix path ".ml" then files := path :: !files
  in
  List.iter walk roots;
  List.sort String.compare !files

(** Run [rules] over every [.ml] under [roots] and fold the [baseline]
    in.  Findings are sorted and exact duplicates removed (two rules
    walking the same subtree may agree). *)
let run ?(baseline : Baseline.t = []) ~(rules : Rules.t list) roots : report =
  let files = collect_files roots in
  let findings =
    List.concat_map (fun f -> scan_file ~rules f) files
    |> List.sort_uniq Finding.compare
  in
  let fresh, suppressed, stale = Baseline.apply baseline findings in
  { findings; fresh; suppressed; stale; files_scanned = List.length files }

(* ---------------- rendering ---------------- *)

let text_report ?(verbose = true) (r : report) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (f : Finding.t) ->
      Buffer.add_string buf (Finding.to_string f);
      Buffer.add_char buf '\n';
      if verbose then begin
        Buffer.add_string buf ("  hint: " ^ f.hint ^ "\n");
        Buffer.add_string buf ("  baseline: " ^ Baseline.suggest f ^ "\n")
      end)
    r.fresh;
  List.iter
    (fun (e : Baseline.entry) ->
      Buffer.add_string buf
        (Printf.sprintf
           "stale baseline entry (matched no finding): %s %s:%d -- %s\n" e.rule
           e.file e.line e.justification))
    r.stale;
  Buffer.add_string buf
    (Printf.sprintf
       "%d file(s) scanned: %d finding(s), %d suppressed by baseline, %d \
        stale baseline entr%s\n"
       r.files_scanned (List.length r.fresh)
       (List.length r.suppressed)
       (List.length r.stale)
       (if List.length r.stale = 1 then "y" else "ies"));
  Buffer.contents buf

(** Machine-readable report; rule ids are stable, findings sorted, so
    diffs of this output are meaningful for baselining. *)
let json_report ~(rules : Rules.t list) (r : report) : J.t =
  J.Obj
    [
      ("schema", J.Str "repro/analysis/v1");
      ("rules", J.List (List.map (fun (ru : Rules.t) -> J.Str ru.id) rules));
      ("files_scanned", J.Int r.files_scanned);
      ("findings", J.List (List.map Finding.to_json r.fresh));
      ( "suppressed",
        J.List
          (List.map
             (fun ((f : Finding.t), just) ->
               match Finding.to_json f with
               | J.Obj fields -> J.Obj (fields @ [ ("justification", J.Str just) ])
               | other -> other)
             r.suppressed) );
      ( "stale_baseline",
        J.List
          (List.map
             (fun (e : Baseline.entry) ->
               J.Obj
                 [
                   ("rule", J.Str e.rule);
                   ("file", J.Str e.file);
                   ("line", J.Int e.line);
                 ])
             r.stale) );
    ]

let sarif_report ~(rules : Rules.t list) (r : report) : J.t =
  Sarif.document ~rules ~fresh:r.fresh ~suppressed:r.suppressed
