(** A single static-analysis diagnostic.

    Findings are what {!Rules} produce and what {!Engine} aggregates,
    baselines, and renders (text, JSON, SARIF).  Paths are stored in
    normalised form ([lib/exec/pool.ml], no [./] or [../] prefix) so a
    finding reported by the dune [@lint] rule (which runs from
    [_build/default/tools] against [../lib]) and one reported by
    [repro_cli analyze] (run from the project root against [lib])
    compare equal — the suppression baseline depends on this. *)

type severity = Error | Warning

let severity_to_string = function Error -> "error" | Warning -> "warning"

type t = {
  rule : string;  (** stable rule id, e.g. ["spark-purity"] *)
  severity : severity;
  file : string;  (** normalised, '/'-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler convention *)
  line_hash : string;
      (** content hash of the (trimmed) source line the finding sits
          on — the stable part of the baseline key, so an entry
          survives the line shifting up or down the file.  [""] until
          {!Engine} fills it in. *)
  message : string;
  hint : string;  (** how to fix or silence the finding *)
}

(** The digest baselines key on: the trimmed text of the source line.
    Leading/trailing whitespace is stripped so re-indentation does not
    churn the baseline; 12 hex chars keep collisions far below the
    per-(rule,file) namespace they live in. *)
let hash_line_text text = String.sub (Digest.to_hex (Digest.string (String.trim text))) 0 12

(** Drop leading [./] and [../] segments and collapse backslashes so
    the same file yields the same path no matter which directory the
    analyzer was launched from. *)
let normalize_path path =
  let path = String.map (fun c -> if c = '\\' then '/' else c) path in
  let segs = String.split_on_char '/' path in
  let rec strip = function
    | ("." | ".." | "") :: rest -> strip rest
    | rest -> rest
  in
  String.concat "/" (strip segs)

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

(** [file:line:col: severity [rule] message] — the grep-able shape
    editors and CI logs know how to hyperlink. *)
let to_string t =
  Printf.sprintf "%s:%d:%d: %s [%s] %s" t.file t.line t.col
    (severity_to_string t.severity)
    t.rule t.message

let to_json t : Repro_util.Json_out.t =
  let module J = Repro_util.Json_out in
  J.Obj
    [
      ("rule", J.Str t.rule);
      ("severity", J.Str (severity_to_string t.severity));
      ("file", J.Str t.file);
      ("line", J.Int t.line);
      ("col", J.Int t.col);
      ("line_hash", J.Str t.line_hash);
      ("message", J.Str t.message);
      ("hint", J.Str t.hint);
    ]
