(** Phase 2 of the two-phase engine: link per-file {!Summary} values
    into a whole-program view.

    Linking is name resolution over the summaries — no typed tree, no
    cmt files.  An identifier [[x]] resolves to defs named [x] in the
    same file; [[...; M; f]] resolves to defs named [f] in any summary
    whose module name is [M].  That is deliberately over-approximate
    (two modules with the same basename alias each other) and
    under-approximate (functor applications, first-class modules), the
    right trade-off for a lint: the linked rules only report what they
    can show a concrete witness chain for. *)

type resolved = { target_file : string; target : Summary.def }

type program = {
  files : Summary.t list;  (** sorted by [s_file] *)
  by_module : (string, Summary.t list) Hashtbl.t;
  by_file : (string, Summary.t) Hashtbl.t;
  fd_taint : (string * string, string * string) Hashtbl.t;
      (** (file, def-name) -> (resource name, witness chain), for defs
          that {e hold} a marshal-unsafe resource.  Function defs that
          merely construct a resource when called are keyed separately
          in {!fn_taint}. *)
  fn_taint : (string * string, string * string) Hashtbl.t;
      (** (file, fn-name) -> (resource name, witness): calling this
          function returns/creates the resource *)
}

let defs_of s = s.Summary.s_defs

(** All defs [parts] can refer to, seen from [from] (a summary).
    Resolution never crosses into a different module for a bare
    identifier, and for a qualified one only matches the final module
    segment — aliases ([module M = Message]) thus still resolve as
    long as the alias matches nothing else. *)
let resolve program ~(from : Summary.t) parts : resolved list =
  match parts with
  | [] -> []
  | [ x ] ->
      List.filter_map
        (fun d ->
          if d.Summary.d_name = x then
            Some { target_file = from.Summary.s_file; target = d }
          else None)
        (defs_of from)
  | _ -> (
      match List.rev parts with
      | f :: rev_mods -> (
          let modname =
            match rev_mods with m :: _ -> Some m | [] -> None
          in
          match modname with
          | None -> []
          | Some m -> (
              match Hashtbl.find_opt program.by_module m with
              | None -> []
              | Some summaries ->
                  List.concat_map
                    (fun s ->
                      List.filter_map
                        (fun d ->
                          if d.Summary.d_name = f && d.Summary.d_top then
                            Some { target_file = s.Summary.s_file; target = d }
                          else None)
                        (defs_of s))
                    summaries))
      | [] -> [])

(* ---------------- resource taint fixpoint ---------------- *)

module SMap = Map.Make (String)

(* Two tables, computed together to a fixpoint:
   - fn_taint: a *function* def whose body constructs a resource and
     lets it reach the result — calling it yields a live resource.
   - fd_taint: a *value* def that holds a resource right now: its RHS
     constructs one, calls an fn-tainted function, or references an
     fd-tainted value.  Only these make marshalling the capture wrong;
     capturing a maker function is harmless until it is called.

   Since PR 8 the intra-def propagation is {e flow-sensitive} over the
   def's {!Cfg}: taint lives per program point keyed by local variable,
   a rebinding kills the old fact, and only taint reaching the def's
   result slot escapes into the tables.  [let fd = openfile ... in
   Unix.close fd; compute ()] taints nothing; the old summary-level
   fixpoint poisoned the whole function. *)

let ret_slot = "<ret>"

(* What calling [parts] yields, under the current tables: a direct
   resource construction, or a call/reference to an fn-tainted def.
   [dname] prefixes propagated witnesses (the chain reads caller ->
   callee -> constructor). *)
let call_taint program ~(from : Summary.t) ~dname parts =
  match Summary.resource_of_parts parts with
  | Some r ->
      Some
        ( Summary.resource_name r,
          Printf.sprintf "%s (via %s in %s)" (Summary.resource_name r)
            (Astutil.dotted parts) from.Summary.s_file )
  | None ->
      List.find_map
        (fun { target_file; target } ->
          match
            Hashtbl.find_opt program.fn_taint (target_file, target.Summary.d_name)
          with
          | Some (res, w) -> Some (res, Printf.sprintf "%s -> %s" dname w)
          | None -> None)
        (resolve program ~from parts)

(* What referencing [parts] as a value yields: a local tainted at this
   program point, an fd-tainted value def, or (conservatively, matching
   the summary-level engine) an aliased maker function. *)
let ident_taint program ~(from : Summary.t) ~dname ~state parts =
  match parts with
  | [ x ] when SMap.mem x state -> Some (SMap.find x state)
  | _ -> (
      match Summary.resource_of_parts parts with
      | Some r ->
          Some
            ( Summary.resource_name r,
              Printf.sprintf "%s (via %s in %s)" (Summary.resource_name r)
                (Astutil.dotted parts) from.Summary.s_file )
      | None ->
          List.find_map
            (fun { target_file; target } ->
              (* Only module-level value defs taint by name here: a
                 bare local is governed by the flow state above, and
                 falling back to a same-named nested def would
                 resurrect taint a rebinding just killed. *)
              if not target.Summary.d_top then None
              else
              let key = (target_file, target.Summary.d_name) in
              match Hashtbl.find_opt program.fd_taint key with
              | Some (res, w) ->
                  Some (res, Printf.sprintf "%s -> %s" dname w)
              | None -> (
                  match Hashtbl.find_opt program.fn_taint key with
                  | Some (res, w) ->
                      Some (res, Printf.sprintf "%s -> %s" dname w)
                  | None -> None))
            (resolve program ~from parts))

(* The flow-sensitive intra-def solver needs the program tables in its
   transfer function; the functor interface is context-free, so the
   context rides in a ref set around each [solve] call. *)
type taint_ctx = { tc_program : program; tc_from : Summary.t; tc_dname : string }

let taint_context : taint_ctx option ref = ref None

module Taint_lattice = struct
  type state = (string * string) SMap.t

  let bottom = SMap.empty
  let entry = SMap.empty

  let equal =
    SMap.equal (fun (r1, w1) (r2, w2) -> String.equal r1 r2 && String.equal w1 w2)

  (* may-hold union; the first witness found wins, like the tables *)
  let join a b = SMap.union (fun _ x _ -> Some x) a b

  let transfer (node : Cfg.node) ~edge:_ state =
    let ctx =
      match !taint_context with Some c -> c | None -> assert false
    in
    let program = ctx.tc_program and from = ctx.tc_from and dname = ctx.tc_dname in
    match node.Cfg.n_event with
    | Some (Cfg.Bind { vars; src }) -> (
        let state = List.fold_left (fun st v -> SMap.remove v st) state vars in
        let taint =
          match src with
          | Cfg.Src_call parts -> call_taint program ~from ~dname parts
          | Cfg.Src_ident parts -> ident_taint program ~from ~dname ~state parts
          | Cfg.Src_other -> None
        in
        match taint with
        | Some t -> List.fold_left (fun st v -> SMap.add v t st) state vars
        | None -> state)
    | Some (Cfg.Call { parts; tail = true; _ }) -> (
        match call_taint program ~from ~dname parts with
        | Some t -> SMap.add ret_slot t state
        | None -> state)
    | Some (Cfg.Return paths) -> (
        let hit =
          List.find_map
            (fun parts -> ident_taint program ~from ~dname ~state parts)
            paths
        in
        match hit with Some t -> SMap.add ret_slot t state | None -> state)
    | _ -> state
end

module Taint_solver = Dataflow.Make (Taint_lattice)

(* The (resource, witness) the def's result holds, if any. *)
let def_result_taint program (s : Summary.t) (d : Summary.def) =
  match d.Summary.d_cfg with
  | Some g ->
      taint_context :=
        Some { tc_program = program; tc_from = s; tc_dname = d.Summary.d_name };
      let r = Taint_solver.solve g in
      taint_context := None;
      SMap.find_opt ret_slot r.Taint_solver.at_exit
  | None -> (
      (* no CFG (parse fallback): seed from the summary-level facts *)
      match d.Summary.d_resources with
      | (r, spelled, _) :: _ ->
          Some
            ( Summary.resource_name r,
              Printf.sprintf "%s (via %s in %s)" (Summary.resource_name r)
                spelled s.Summary.s_file )
      | [] -> None)

let compute_taint program =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun s ->
        let file = s.Summary.s_file in
        List.iter
          (fun d ->
            let key = (file, d.Summary.d_name) in
            let table =
              if d.Summary.d_is_fun then program.fn_taint else program.fd_taint
            in
            if not (Hashtbl.mem table key) then
              match def_result_taint program s d with
              | Some t ->
                  Hashtbl.replace table key t;
                  changed := true
              | None -> ())
          (defs_of s))
      program.files
  done

let link (summaries : Summary.t list) : program =
  let files =
    List.sort (fun a b -> String.compare a.Summary.s_file b.Summary.s_file) summaries
  in
  let by_module = Hashtbl.create 64 and by_file = Hashtbl.create 64 in
  List.iter
    (fun s ->
      Hashtbl.replace by_file s.Summary.s_file s;
      let prev =
        match Hashtbl.find_opt by_module s.Summary.s_module with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace by_module s.Summary.s_module (s :: prev))
    files;
  let program =
    { files; by_module; by_file; fd_taint = Hashtbl.create 32; fn_taint = Hashtbl.create 32 }
  in
  compute_taint program;
  program

(** The witness chain for a captured identifier that resolves to a
    resource-holding {e value} def, if any. *)
let capture_taint program ~(from : Summary.t) parts =
  List.find_map
    (fun { target_file; target } ->
      if target.Summary.d_is_fun then None
      else
        Option.map snd
          (Hashtbl.find_opt program.fd_taint (target_file, target.Summary.d_name)))
    (resolve program ~from parts)

(** Does a capture's target resolve to a top-level (module-state) def?
    Used by the lost-write check: assigning a worker-side copy of a
    coordinator global is silently discarded. *)
let capture_is_global program ~(from : Summary.t) parts =
  List.exists
    (fun { target; _ } -> target.Summary.d_top && not target.Summary.d_is_fun)
    (resolve program ~from parts)

(* ---------------- blocking reachability ---------------- *)

type blocking_witness = {
  b_file : string;  (** file of the blocking primitive *)
  b_prim : string;
  b_loc : Summary.loc;
  b_root : string;  (** the worker-loop root the chain starts from *)
  b_chain : string list;  (** def names from root to the blocking def *)
}

(** BFS from every worker-loop root ([worker_loop] / [idle_wait] defs
    and [Domain.spawn] lambdas) in [roots_from] files, over resolved
    calls through the whole program; [skip_file] drops edges into
    exempt files (lib/check drives workers deterministically and may
    block by design), and [sanctioned] cuts the walk at defs marked as
    sanctioned blocking points (fiber-style primitives that park the
    task, not the domain — see {!Rules.sanctioned_blocking}).  Returns
    every blocking primitive reachable, located at the primitive
    itself. *)
let blocking_from_workers program ~roots_from ~skip_file ~sanctioned :
    blocking_witness list =
  let out = ref [] in
  let visited = Hashtbl.create 64 in
  let rec visit ~root ~chain (file : string) (d : Summary.def) =
    let key = (file, d.Summary.d_name, d.Summary.d_loc) in
    if (not (Hashtbl.mem visited key)) && not (sanctioned file d) then begin
      Hashtbl.replace visited key ();
      let chain = chain @ [ d.Summary.d_name ] in
      List.iter
        (fun (prim, loc) ->
          out :=
            { b_file = file; b_prim = prim; b_loc = loc; b_root = root; b_chain = chain }
            :: !out)
        d.Summary.d_blocking;
      match Hashtbl.find_opt program.by_file file with
      | None -> ()
      | Some s ->
          List.iter
            (fun (parts, _) ->
              List.iter
                (fun { target_file; target } ->
                  if not (skip_file target_file) then
                    visit ~root ~chain target_file target)
                (resolve program ~from:s parts))
            d.Summary.d_calls
    end
  in
  List.iter
    (fun (s : Summary.t) ->
      if not (skip_file s.Summary.s_file) then begin
        List.iter
          (fun d ->
            if Astutil.SSet.mem d.Summary.d_name Astutil.worker_roots then
              visit ~root:d.Summary.d_name ~chain:[] s.Summary.s_file d)
          (defs_of s);
        List.iter
          (fun d -> visit ~root:"Domain.spawn" ~chain:[] s.Summary.s_file d)
          s.Summary.s_spawn_bodies
      end)
    roots_from;
  (* stable order: by file, then location *)
  List.sort
    (fun a b ->
      let c = String.compare a.b_file b.b_file in
      if c <> 0 then c else compare a.b_loc b.b_loc)
    !out

(* ---------------- incremental focus ---------------- *)

(** The reverse call-graph closure of [changed]: every file whose
    linked findings can differ because one of [changed] differs — the
    changed files themselves plus all transitive callers of any def
    they contain.  This is the focus set of [--since REF]: linked rules
    still run over the whole program (resolution needs every summary),
    but only findings in these files are reported. *)
let dependents program ~changed =
  let norm = List.map Finding.normalize_path changed in
  let rev : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (s : Summary.t) ->
      List.iter
        (fun (d : Summary.def) ->
          List.iter
            (fun (parts, _) ->
              List.iter
                (fun { target_file; _ } ->
                  if target_file <> s.Summary.s_file then
                    let prev =
                      Option.value ~default:[] (Hashtbl.find_opt rev target_file)
                    in
                    Hashtbl.replace rev target_file (s.Summary.s_file :: prev))
                (resolve program ~from:s parts))
            d.Summary.d_calls)
        (defs_of s @ s.Summary.s_spawn_bodies))
    program.files;
  let seen = Hashtbl.create 64 in
  let rec visit f =
    if not (Hashtbl.mem seen f) then begin
      Hashtbl.replace seen f ();
      List.iter visit (Option.value ~default:[] (Hashtbl.find_opt rev f))
    end
  in
  List.iter visit norm;
  List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])
