(** Phase 2 of the two-phase engine: link per-file {!Summary} values
    into a whole-program view.

    Linking is name resolution over the summaries — no typed tree, no
    cmt files.  An identifier [[x]] resolves to defs named [x] in the
    same file; [[...; M; f]] resolves to defs named [f] in any summary
    whose module name is [M].  That is deliberately over-approximate
    (two modules with the same basename alias each other) and
    under-approximate (functor applications, first-class modules), the
    right trade-off for a lint: the linked rules only report what they
    can show a concrete witness chain for. *)

type resolved = { target_file : string; target : Summary.def }

type program = {
  files : Summary.t list;  (** sorted by [s_file] *)
  by_module : (string, Summary.t list) Hashtbl.t;
  by_file : (string, Summary.t) Hashtbl.t;
  fd_taint : (string * string, string) Hashtbl.t;
      (** (file, def-name) -> witness chain, for defs that {e hold} a
          marshal-unsafe resource (the resource name is embedded in the
          witness).  Function defs that merely construct a resource
          when called are keyed separately in {!fn_taint}. *)
  fn_taint : (string * string, string * string) Hashtbl.t;
      (** (file, fn-name) -> (resource name, witness): calling this
          function returns/creates the resource *)
}

let defs_of s = s.Summary.s_defs

(** All defs [parts] can refer to, seen from [from] (a summary).
    Resolution never crosses into a different module for a bare
    identifier, and for a qualified one only matches the final module
    segment — aliases ([module M = Message]) thus still resolve as
    long as the alias matches nothing else. *)
let resolve program ~(from : Summary.t) parts : resolved list =
  match parts with
  | [] -> []
  | [ x ] ->
      List.filter_map
        (fun d ->
          if d.Summary.d_name = x then
            Some { target_file = from.Summary.s_file; target = d }
          else None)
        (defs_of from)
  | _ -> (
      match List.rev parts with
      | f :: rev_mods -> (
          let modname =
            match rev_mods with m :: _ -> Some m | [] -> None
          in
          match modname with
          | None -> []
          | Some m -> (
              match Hashtbl.find_opt program.by_module m with
              | None -> []
              | Some summaries ->
                  List.concat_map
                    (fun s ->
                      List.filter_map
                        (fun d ->
                          if d.Summary.d_name = f && d.Summary.d_top then
                            Some { target_file = s.Summary.s_file; target = d }
                          else None)
                        (defs_of s))
                    summaries))
      | [] -> [])

(* ---------------- resource taint fixpoint ---------------- *)

(* Two lattices, computed together to a fixpoint:
   - fn_taint: a *function* def whose body constructs a resource, or
     calls a fn-tainted function — calling it yields a live resource.
   - fd_taint: a *value* def that holds a resource right now: its RHS
     constructs one, calls an fn-tainted function, or references an
     fd-tainted value.  Only these make marshalling the capture wrong;
     capturing a maker function is harmless until it is called. *)
let compute_taint program =
  let changed = ref true in
  let add_fn file def resource witness =
    let key = (file, def.Summary.d_name) in
    if not (Hashtbl.mem program.fn_taint key) then begin
      Hashtbl.replace program.fn_taint key (resource, witness);
      changed := true
    end
  in
  let add_val file def witness =
    let key = (file, def.Summary.d_name) in
    if not (Hashtbl.mem program.fd_taint key) then begin
      Hashtbl.replace program.fd_taint key witness;
      changed := true
    end
  in
  (* seed: direct constructors *)
  List.iter
    (fun s ->
      let file = s.Summary.s_file in
      List.iter
        (fun d ->
          match d.Summary.d_resources with
          | (r, spelled, _) :: _ ->
              let w =
                Printf.sprintf "%s (via %s in %s)" (Summary.resource_name r)
                  spelled file
              in
              if d.Summary.d_is_fun then add_fn file d (Summary.resource_name r) w
              else add_val file d w
          | [] -> ())
        (defs_of s))
    program.files;
  (* propagate through calls/references *)
  while !changed do
    changed := false;
    List.iter
      (fun s ->
        let file = s.Summary.s_file in
        List.iter
          (fun d ->
            if
              not
                (Hashtbl.mem program.fd_taint (file, d.Summary.d_name)
                && Hashtbl.mem program.fn_taint (file, d.Summary.d_name))
            then
              List.iter
                (fun (parts, _) ->
                  List.iter
                    (fun { target_file; target } ->
                      (* referencing / calling an fn-tainted function *)
                      (match
                         Hashtbl.find_opt program.fn_taint
                           (target_file, target.Summary.d_name)
                       with
                      | Some (res, w) ->
                          let w' =
                            Printf.sprintf "%s -> %s" d.Summary.d_name w
                          in
                          if d.Summary.d_is_fun then add_fn file d res w'
                          else add_val file d w'
                      | None -> ());
                      (* referencing an fd-tainted value *)
                      if not d.Summary.d_is_fun then
                        match
                          Hashtbl.find_opt program.fd_taint
                            (target_file, target.Summary.d_name)
                        with
                        | Some w ->
                            add_val file d
                              (Printf.sprintf "%s -> %s" d.Summary.d_name w)
                        | None -> ())
                    (resolve program ~from:s parts))
                d.Summary.d_calls)
          (defs_of s))
      program.files
  done

let link (summaries : Summary.t list) : program =
  let files =
    List.sort (fun a b -> String.compare a.Summary.s_file b.Summary.s_file) summaries
  in
  let by_module = Hashtbl.create 64 and by_file = Hashtbl.create 64 in
  List.iter
    (fun s ->
      Hashtbl.replace by_file s.Summary.s_file s;
      let prev =
        match Hashtbl.find_opt by_module s.Summary.s_module with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace by_module s.Summary.s_module (s :: prev))
    files;
  let program =
    { files; by_module; by_file; fd_taint = Hashtbl.create 32; fn_taint = Hashtbl.create 32 }
  in
  compute_taint program;
  program

(** The witness chain for a captured identifier that resolves to a
    resource-holding {e value} def, if any. *)
let capture_taint program ~(from : Summary.t) parts =
  List.find_map
    (fun { target_file; target } ->
      if target.Summary.d_is_fun then None
      else Hashtbl.find_opt program.fd_taint (target_file, target.Summary.d_name))
    (resolve program ~from parts)

(** Does a capture's target resolve to a top-level (module-state) def?
    Used by the lost-write check: assigning a worker-side copy of a
    coordinator global is silently discarded. *)
let capture_is_global program ~(from : Summary.t) parts =
  List.exists
    (fun { target; _ } -> target.Summary.d_top && not target.Summary.d_is_fun)
    (resolve program ~from parts)

(* ---------------- blocking reachability ---------------- *)

type blocking_witness = {
  b_file : string;  (** file of the blocking primitive *)
  b_prim : string;
  b_loc : Summary.loc;
  b_root : string;  (** the worker-loop root the chain starts from *)
  b_chain : string list;  (** def names from root to the blocking def *)
}

(** BFS from every worker-loop root ([worker_loop] / [idle_wait] defs
    and [Domain.spawn] lambdas) in [roots_from] files, over resolved
    calls through the whole program; [skip_file] drops edges into
    exempt files (lib/check drives workers deterministically and may
    block by design).  Returns every blocking primitive reachable,
    located at the primitive itself. *)
let blocking_from_workers program ~roots_from ~skip_file : blocking_witness list =
  let out = ref [] in
  let visited = Hashtbl.create 64 in
  let rec visit ~root ~chain (file : string) (d : Summary.def) =
    let key = (file, d.Summary.d_name, d.Summary.d_loc) in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.replace visited key ();
      let chain = chain @ [ d.Summary.d_name ] in
      List.iter
        (fun (prim, loc) ->
          out :=
            { b_file = file; b_prim = prim; b_loc = loc; b_root = root; b_chain = chain }
            :: !out)
        d.Summary.d_blocking;
      match Hashtbl.find_opt program.by_file file with
      | None -> ()
      | Some s ->
          List.iter
            (fun (parts, _) ->
              List.iter
                (fun { target_file; target } ->
                  if not (skip_file target_file) then
                    visit ~root ~chain target_file target)
                (resolve program ~from:s parts))
            d.Summary.d_calls
    end
  in
  List.iter
    (fun (s : Summary.t) ->
      if not (skip_file s.Summary.s_file) then begin
        List.iter
          (fun d ->
            if Astutil.SSet.mem d.Summary.d_name Astutil.worker_roots then
              visit ~root:d.Summary.d_name ~chain:[] s.Summary.s_file d)
          (defs_of s);
        List.iter
          (fun d -> visit ~root:"Domain.spawn" ~chain:[] s.Summary.s_file d)
          s.Summary.s_spawn_bodies
      end)
    roots_from;
  (* stable order: by file, then location *)
  List.sort
    (fun a b ->
      let c = String.compare a.b_file b.b_file in
      if c <> 0 then c else compare a.b_loc b.b_loc)
    !out
