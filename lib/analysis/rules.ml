(** The rule registry.

    Two rule shapes:

    - {b File} rules check one parsetree at a time (spark purity,
      atomics discipline, discarded results).  They run during phase 1
      and their findings are stored inside the file's {!Summary}, so a
      digest-cached file never re-runs them.
    - {b Linked} rules run during phase 2 over the {!Linker.program}
      built from every summary (marshal safety, ring discipline,
      protocol exhaustiveness, interprocedural blocking-in-worker).
      They are the rules that see across module boundaries.

    Every rule works on the {e untyped} parsetree (via its summary),
    which is what makes the engine dependency-free: scanned sources
    only have to parse, not typecheck.  The flip side is that rules are
    name-based — [module A = Atomic] is resolved by an explicit alias
    pass, but an alias smuggled through a functor argument is
    invisible.  Each rule documents its blind spots; the suppression
    baseline ({!Baseline}) is the escape hatch for intentional
    violations. *)

open Parsetree
open Astutil

type kind =
  | File of (file:string -> Parsetree.structure -> Finding.t list)
  | Linked of (Linker.program -> Finding.t list)

type t = {
  id : string;  (** stable id used in output, baselines and [--rule] *)
  severity : Finding.severity;
  doc : string;  (** one-line description for [--list-rules] and SARIF *)
  hint : string;  (** generic fix hint attached to every finding *)
  exempt : string -> bool;  (** normalised-path-based exemption *)
  kind : kind;
}

let no_exempt _ = false

let mk ~rule ~severity ~hint ~file (loc : Location.t) message : Finding.t =
  let p = loc.loc_start in
  {
    rule;
    severity;
    file = Finding.normalize_path file;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    line_hash = "";
    message;
    hint;
  }

(* Same, from a summary location (linked rules never hold a parsetree). *)
let mkl ~rule ~severity ~hint ~file (loc : Summary.loc) message : Finding.t =
  {
    rule;
    severity;
    file;
    line = loc.Summary.l_line;
    col = loc.Summary.l_col;
    line_hash = "";
    message;
    hint;
  }

(* ================ rule 1: spark-purity ================ *)

(* Closures handed to the spark machinery may be evaluated by any
   worker — and, under lazy black-holing or fizzle-and-force races,
   conceptually twice — so they must not perform observable effects.
   We flag, inside any syntactic [fun] argument of a spark entry point:
   mutation of state the closure does not own (a [let x = ref ...] or
   array/buffer allocated *inside* the closure is fine: every
   evaluation gets its own copy), shim/raw atomic stores, I/O, raises
   with no enclosing handler, and calls to file-local helpers whose own
   bodies mutate state they do not own (one level of indirection: this
   is what surfaces [rows_kernel]-style in-place kernels). *)

(* [submit] and [farm] cover the distributed executor's entry points
   ([Dist.submit]-style task submission, [Farm.farm] closures): their
   payloads cross a process boundary, so the purity obligations are
   strictly stronger than for shared-heap sparks. *)
let spark_entry_names =
  SSet.of_list
    [
      "par"; "spark"; "submit"; "farm"; "par_list"; "par_map"; "par_chunked";
      "par_range";
    ]

let is_spark_entry fn =
  match expr_ident fn with
  | Some parts -> (
      match last_part (strip_stdlib parts) with
      | Some l -> SSet.mem l spark_entry_names
      | None -> false)
  | None -> false

(* Walk a spark-closure body (or a helper body when [check_raise] is
   false), calling [emit loc msg] on every impure construct. *)
let rec purity_walk ~check_raise ~impure_helpers ~emit env e =
  let walk = purity_walk ~check_raise ~impure_helpers ~emit in
  match e.pexp_desc with
  | Pexp_let (_, vbs, body) ->
      List.iter (fun vb -> walk env vb.pvb_expr) vbs;
      let env' =
        List.fold_left
          (fun acc vb ->
            match simple_var vb.pvb_pat with
            | Some x when is_fresh_alloc vb.pvb_expr ->
                { acc with fresh = SSet.add x acc.fresh }
            | Some x -> { acc with fresh = SSet.remove x acc.fresh }
            | None -> acc)
          env vbs
      in
      walk env' body
  | Pexp_try (body, cases) ->
      walk { env with in_try = true } body;
      List.iter
        (fun c ->
          Option.iter (walk env) c.pc_guard;
          walk env c.pc_rhs)
        cases
  | Pexp_setfield (target, _, v) ->
      if not (is_fresh_ident env target) then
        emit e.pexp_loc
          "record field assignment on state captured from outside the sparked \
           closure";
      walk env target;
      walk env v
  | Pexp_setinstvar (_, v) ->
      emit e.pexp_loc "instance-variable assignment inside a sparked closure";
      walk env v
  | Pexp_lazy inner ->
      (* Eden rule: only whole normal forms cross the heap boundary.
         A lazy value inside a sparked/farmed closure is a thunk that
         would be forced on the evaluating PE (or marshalled not at
         all), so the payload is not fully forced before send. *)
      emit e.pexp_loc
        "lazy value constructed inside a sparked closure: payloads must be \
         fully forced before they are sent";
      walk env inner
  | Pexp_apply (fn, args) ->
      let arg_exprs = List.map snd args in
      (match expr_ident fn with
      | Some parts -> (
          let p = strip_stdlib parts in
          let loc = e.pexp_loc in
          if p = [ ":=" ] then (
            match arg_exprs with
            | target :: _ when is_fresh_ident env target -> ()
            | _ ->
                emit loc
                  "reference assignment (:=) to state captured from outside \
                   the sparked closure")
          else if is_inplace_writer p then (
            match arg_exprs with
            | target :: _ when is_fresh_ident env target -> ()
            | _ ->
                emit loc
                  (Printf.sprintf
                     "in-place write (%s) on state captured from outside the \
                      sparked closure"
                     (dotted p)))
          else if is_atomic_write p then
            emit loc
              (Printf.sprintf "atomic store (%s) inside a sparked closure"
                 (dotted p))
          else if is_io p then
            emit loc
              (Printf.sprintf "I/O (%s) inside a sparked closure" (dotted p))
          else if is_raise p then (
            if check_raise && not env.in_try then
              emit loc
                (Printf.sprintf
                   "%s with no enclosing handler inside a sparked closure"
                   (dotted p)))
          else
            match p with
            | [ x ] when SSet.mem x impure_helpers ->
                emit loc
                  (Printf.sprintf
                     "calls %s, which mutates state it does not own" x)
            | _ -> ())
      | None -> ());
      (* Nested spark entries get their own dedicated walk from the
         top-level iterator (with the correct ownership view), so skip
         their closure arguments here. *)
      let skip_funs = is_spark_entry fn in
      walk env fn;
      List.iter
        (fun a -> if not (skip_funs && is_syntactic_fun a) then walk env a)
        arg_exprs
  | _ -> descend_children (walk env) e

(* File-local helpers whose bodies mutate state they do not own (their
   parameters included): calling one from a sparked closure is as
   impure as inlining it. *)
let collect_impure_helpers str =
  let impure = ref SSet.empty in
  iter_value_bindings str (fun vb ->
      match simple_var vb.pvb_pat with
      | Some name when is_syntactic_fun vb.pvb_expr ->
          let found = ref false in
          let emit _ _ = found := true in
          List.iter
            (fun body ->
              purity_walk ~check_raise:false ~impure_helpers:SSet.empty ~emit
                { fresh = SSet.empty; in_try = false }
                body)
            (fun_bodies vb.pvb_expr);
          if !found then impure := SSet.add name !impure
      | _ -> ());
  !impure

let spark_purity =
  let id = "spark-purity" in
  let severity = Finding.Error in
  let hint =
    "make the closure pure (move mutation inside it, onto state it \
     allocates), or baseline the site with a justification that duplicate \
     evaluation is idempotent"
  in
  let check ~file str =
    let impure_helpers = collect_impure_helpers str in
    let acc = ref [] in
    let emit loc msg =
      acc := mk ~rule:id ~severity ~hint ~file loc msg :: !acc
    in
    iter_exprs str (fun e ->
        match e.pexp_desc with
        | Pexp_apply (fn, args) when is_spark_entry fn ->
            List.iter
              (fun (_, a) ->
                if is_syntactic_fun a then
                  List.iter
                    (purity_walk ~check_raise:true ~impure_helpers ~emit
                       { fresh = SSet.empty; in_try = false })
                    (fun_bodies a))
              args
        | _ -> ());
    !acc
  in
  {
    id;
    severity;
    doc =
      "closures passed to par/spark/submit must not mutate shared state, \
       perform I/O, or raise unhandled: they may be evaluated by any worker \
       and must be safe under duplicate evaluation";
    hint;
    (* lib/check deliberately sparks raising/violating closures — that
       is what a model-checking protocol is. *)
    exempt = (fun p -> path_has "lib/check/" p);
    kind = File check;
  }

(* ================ rule 2: atomics-discipline ================ *)

(* The model checker (lib/check) can only see atomic operations routed
   through the Repro_shim.Tatomic shim.  Raw [Atomic.*] (however
   spelled: [Stdlib.Atomic], a [module A = Atomic] alias, or an [open])
   is invisible to DPOR and the race detector; [Obj.magic] defeats the
   type system outright.  The shim itself and the checker's tracing
   cells are exempt by path.

   lib/dist is deliberately NOT exempt: the shared-memory ring
   transport (lib/dist/shm_ring.ml) keeps its mmap'd head/tail/sleeping
   control words behind the shim's [Tatomic.WORD] and [Fence]
   interfaces, which is the sanctioned pattern -- lib/check instantiates
   the same ring functor over traced cells to model-check the SPSC
   handshake.  A raw [Atomic] cursor there would silently fall out of
   the model (see the dist_ring_* fixtures). *)

let atomics_discipline =
  let id = "atomics-discipline" in
  let severity = Finding.Error in
  let hint =
    "route the operation through Repro_shim.Tatomic (functorise over \
     Tatomic.S) so lib/check can trace it"
  in
  let check ~file str =
    let acc = ref [] in
    let emit loc msg =
      acc := mk ~rule:id ~severity ~hint ~file loc msg :: !acc
    in
    let aliases = ref SSet.empty in
    let is_atomic_module_expr me =
      match me.pmod_desc with
      | Pmod_ident { txt; _ } -> strip_stdlib (lid_parts txt) = [ "Atomic" ]
      | _ -> false
    in
    (* pass 1: aliases and opens (any depth) *)
    let it =
      {
        Ast_iterator.default_iterator with
        module_binding =
          (fun self mb ->
            (if is_atomic_module_expr mb.pmb_expr then begin
               (match mb.pmb_name.txt with
               | Some n -> aliases := SSet.add n !aliases
               | None -> ());
               emit mb.pmb_loc
                 "module alias of Atomic: the aliased operations bypass the \
                  Repro_shim.Tatomic shim"
             end);
            Ast_iterator.default_iterator.module_binding self mb);
        open_declaration =
          (fun self od ->
            if is_atomic_module_expr od.popen_expr then
              emit od.popen_loc
                "open of Atomic puts raw atomic operations in scope, \
                 bypassing the Repro_shim.Tatomic shim";
            Ast_iterator.default_iterator.open_declaration self od);
        expr =
          (fun self e ->
            (match e.pexp_desc with
            | Pexp_letmodule ({ txt = Some n; _ }, me, _)
              when is_atomic_module_expr me ->
                aliases := SSet.add n !aliases;
                emit e.pexp_loc
                  "local module alias of Atomic bypasses the \
                   Repro_shim.Tatomic shim"
            | _ -> ());
            Ast_iterator.default_iterator.expr self e);
      }
    in
    it.structure it str;
    (* pass 2: uses, in expressions and in types *)
    let flag_lid loc lid =
      let parts = strip_stdlib (lid_parts lid) in
      match parts with
      | "Atomic" :: _ :: _ ->
          emit loc
            (Printf.sprintf
               "raw %s: go through the Repro_shim.Tatomic shim so lib/check \
                can trace it"
               (dotted parts))
      | [ "Obj"; "magic" ] -> emit loc "Obj.magic defeats the type system"
      | head :: _ :: _ when SSet.mem head !aliases ->
          emit loc
            (Printf.sprintf
               "%s goes through a local alias of Atomic, bypassing the \
                Repro_shim.Tatomic shim"
               (dotted parts))
      | _ -> ()
    in
    let it2 =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self e ->
            (match e.pexp_desc with
            | Pexp_ident { txt; loc } -> flag_lid loc txt
            | _ -> ());
            Ast_iterator.default_iterator.expr self e);
        typ =
          (fun self t ->
            (match t.ptyp_desc with
            | Ptyp_constr ({ txt; loc }, _) -> flag_lid loc txt
            | _ -> ());
            Ast_iterator.default_iterator.typ self t);
      }
    in
    it2.structure it2 str;
    !acc
  in
  {
    id;
    severity;
    doc =
      "raw Atomic operations (including Stdlib.Atomic, module aliases and \
       opens) and Obj.magic are forbidden outside lib/shim and lib/check";
    hint;
    exempt = (fun p -> path_has "lib/shim/" p || path_has "lib/check/" p);
    kind = File check;
  }

(* ================ rule: metrics-discipline ================ *)

(* A module-level [let hits = ref 0] or [let hits = A.make 0] is an
   ad-hoc tally: invisible to [Repro_metrics] snapshots, exporters,
   the merged dist view and the health detectors, and (for the plain
   ref) racy the moment two domains touch it.  Instance-local counters
   are fine — only {e top-level} bindings initialised from an integer
   literal are flagged, because those are process-lifetime tallies by
   construction.  lib/metrics itself implements the registry; lib/shim
   and lib/check sit below it. *)

let metrics_discipline =
  let id = "metrics-discipline" in
  let severity = Finding.Warning in
  let hint =
    "register the tally in the Repro_metrics registry (counter/gauge) so it \
     shows up in snapshots, exporters and health detectors"
  in
  let check ~file str =
    let acc = ref [] in
    let emit loc msg =
      acc := mk ~rule:id ~severity ~hint ~file loc msg :: !acc
    in
    (* alias pass: any [module A = ...Tatomic...] (the sanctioned shim
       spelling) or [module A = Atomic] makes [A.make 0] a tally too *)
    let aliases = ref (SSet.singleton "Atomic") in
    let it =
      {
        Ast_iterator.default_iterator with
        module_binding =
          (fun self mb ->
            (match (mb.pmb_expr.pmod_desc, mb.pmb_name.txt) with
            | Pmod_ident { txt; _ }, Some n ->
                let parts = strip_stdlib (lid_parts txt) in
                if List.mem "Tatomic" parts || parts = [ "Atomic" ] then
                  aliases := SSet.add n !aliases
            | _ -> ());
            Ast_iterator.default_iterator.module_binding self mb);
      }
    in
    it.structure it str;
    let is_int_literal e =
      match e.pexp_desc with
      | Pexp_constant (Pconst_integer _) -> true
      | _ -> false
    in
    let check_binding vb =
      match vb.pvb_expr.pexp_desc with
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, [ (_, arg) ])
        when is_int_literal arg -> (
          match strip_stdlib (lid_parts txt) with
          | [ "ref" ] ->
              emit vb.pvb_loc
                "module-level int ref tally: unshared with the metrics \
                 registry and racy across domains"
          | head :: _ :: _ as parts
            when List.rev parts |> List.hd = "make"
                 && (SSet.mem head !aliases || List.mem "Tatomic" parts) ->
              emit vb.pvb_loc
                (Printf.sprintf
                   "module-level atomic tally (%s): counted nowhere the \
                    metrics registry can see"
                   (dotted parts))
          | _ -> ())
      | _ -> ()
    in
    (* only module-level items (including nested top-level modules):
       bindings inside functions are per-instance state, not tallies *)
    let rec check_items items =
      List.iter
        (fun si ->
          match si.pstr_desc with
          | Pstr_value (_, vbs) -> List.iter check_binding vbs
          | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ }
            ->
              check_items s
          | Pstr_recmodule mbs ->
              List.iter
                (fun mb ->
                  match mb.pmb_expr.pmod_desc with
                  | Pmod_structure s -> check_items s
                  | _ -> ())
                mbs
          | _ -> ())
        items
    in
    check_items str;
    !acc
  in
  {
    id;
    severity;
    doc =
      "module-level int ref / Atomic tallies outside lib/metrics bypass the \
       metrics registry (snapshots, exporters, health detectors)";
    hint;
    exempt =
      (fun p ->
        path_has "lib/metrics/" p || path_has "lib/shim/" p
        || path_has "lib/check/" p);
    kind = File check;
  }

(* ================ rule 3: blocking-in-worker (linked) ================ *)

(* A pool worker that blocks the OS thread starves every spark behind
   it — and, if the blocked operation waits on another spark, can
   deadlock the pool.  Roots are the conventional worker entry points
   ([worker_loop], [idle_wait]) plus any lambda passed to
   [Domain.spawn]; reachability follows the {e linked} call graph, so a
   blocking primitive two modules away from the loop is found, located
   at the primitive itself.  Edges into exempt files are dropped:
   lib/check deliberately models blocking inside its simulated
   workers. *)

let blocking_exempt p = path_has "lib/check/" p

(* Sanctioned blocking points: defs the worker-reachability walk stops
   at, because they park the *task*, not the domain.  Two ways in, per
   the ROADMAP fiber item:
   - mark the binding [let await p [@sanctioned_blocking] = ...] — the
     attribute is summarised into [d_sanctioned];
   - list the def name here, for primitives the analyzer cannot be
     taught in-source (vendored code, generated bindings).
   Either way the def's own blocking facts are not reported and the
   walk does not descend into its callees: a fiber-blocking primitive
   is a scheduling point, so nothing "behind" it runs on a wedged
   domain. *)
let sanctioned_blocking_names =
  SSet.of_list [ "fiber_await"; "fiber_yield"; "fiber_suspend" ]

(* The fiber runtime's suspension points, sanctioned by (file, name):
   [Fiber.await]/[Fiber.yield]/[Fiber.sleep]/[Fiber.join] park the
   calling *fiber* — the continuation is captured by the effect handler
   and the domain moves on to its next task — and [timer_loop] runs on
   the dedicated timer service domain, never a pool worker.  The
   blocking primitives behind them (the timer's [Condition.wait], its
   chunked [Unix.sleepf]) are scheduling machinery, not worker
   stalls. *)
let fiber_primitive_names =
  SSet.of_list [ "await"; "yield"; "sleep"; "join"; "suspend"; "timer_loop" ]

let sanctioned_blocking file (d : Summary.def) =
  d.Summary.d_sanctioned
  || SSet.mem d.Summary.d_name sanctioned_blocking_names
  || Filename.basename file = "fiber.ml"
     && SSet.mem d.Summary.d_name fiber_primitive_names

let blocking_in_worker =
  let id = "blocking-in-worker" in
  let severity = Finding.Warning in
  let hint =
    "replace the blocking call with helping (run pending sparks), bounded \
     backoff, or the pool's parking handshake; baseline designed blocking \
     points with a justification"
  in
  let check (program : Linker.program) =
    Linker.blocking_from_workers program ~roots_from:program.Linker.files
      ~skip_file:blocking_exempt ~sanctioned:sanctioned_blocking
    |> List.map (fun (w : Linker.blocking_witness) ->
           mkl ~rule:id ~severity ~hint ~file:w.Linker.b_file w.Linker.b_loc
             (Printf.sprintf
                "%s is reachable from a pool worker loop and blocks the OS \
                 thread (starving every spark behind it)"
                w.Linker.b_prim))
  in
  {
    id;
    severity;
    doc =
      "blocking primitives (Unix.sleep, Mutex.lock, Condition.wait, channel \
       reads, ...) reachable from worker-loop bodies — across module \
       boundaries — stall the executor";
    hint;
    exempt = blocking_exempt;
    kind = Linked check;
  }

(* ================ rules 4 & 5: discarded results ================ *)

(* Shared detector for "this application's result is discarded":
   [ignore e], [ignore @@ e], [e |> ignore], [let _ = e], and
   sequence position [e; ...]. *)

let is_ignore_fn e =
  match expr_ident e with Some [ "ignore" ] | Some [ "Stdlib"; "ignore" ] -> true | _ -> false

let discard_findings ~is_target str f =
  let target e =
    match e.pexp_desc with
    | Pexp_apply (fn, _) -> (
        match expr_ident fn with
        | Some parts -> is_target (strip_stdlib parts)
        | None -> false)
    | _ -> false
  in
  iter_exprs str (fun e ->
      match e.pexp_desc with
      | Pexp_apply (fn, [ (_, arg) ]) when is_ignore_fn fn && target arg ->
          f arg.pexp_loc "ignored"
      | Pexp_apply (op, [ (_, a); (_, b) ]) -> (
          match expr_ident op with
          | Some [ "@@" ] when is_ignore_fn a && target b ->
              f b.pexp_loc "ignored"
          | Some [ "|>" ] when is_ignore_fn b && target a ->
              f a.pexp_loc "ignored"
          | _ -> ())
      | Pexp_sequence (e1, _) when target e1 ->
          f e1.pexp_loc "discarded in sequence position"
      | _ -> ());
  iter_value_bindings str (fun vb ->
      if is_wildcard vb.pvb_pat && target vb.pvb_expr then
        f vb.pvb_expr.pexp_loc "bound to a wildcard")

let discarded_future =
  let id = "discarded-future" in
  let severity = Finding.Warning in
  let hint =
    "bind the future and force it (Future.force) on some path, so its \
     exceptions and result can be observed"
  in
  let check ~file str =
    let acc = ref [] in
    discard_findings
      ~is_target:(fun parts ->
        match last_part parts with Some "spark" -> true | _ -> false)
      str
      (fun loc how ->
        acc :=
          mk ~rule:id ~severity ~hint ~file loc
            (Printf.sprintf
               "Future value %s: if its closure raises, the exception is \
                silently lost (Failed futures only re-raise on force)"
               how)
          :: !acc);
    !acc
  in
  {
    id;
    severity;
    doc =
      "a Future.spark result that is ignored or unbound can never be \
       forced, so exceptions raised by its closure are silently dropped";
    hint;
    exempt = no_exempt;
    kind = File check;
  }

let unjoined_domain =
  let id = "unjoined-domain" in
  let severity = Finding.Error in
  let hint =
    "bind the Domain.spawn result and Domain.join it before shutdown so \
     termination invariants stay enforceable"
  in
  let check ~file str =
    let acc = ref [] in
    discard_findings
      ~is_target:(fun parts -> parts = [ "Domain"; "spawn" ])
      str
      (fun loc how ->
        acc :=
          mk ~rule:id ~severity ~hint ~file loc
            (Printf.sprintf
               "Domain.spawn handle %s: the domain can never be joined, so \
                shutdown invariants (spark ledger, quiescence) are \
                unenforceable"
               how)
          :: !acc);
    !acc
  in
  {
    id;
    severity;
    doc =
      "a Domain.spawn whose handle is ignored, wildcard-bound or discarded \
       in sequence position can never be joined";
    hint;
    exempt = no_exempt;
    kind = File check;
  }

(* ================ rule 6: marshal-safety (linked) ================ *)

(* A closure handed to [Farm.farm] (or marshalled with
   [Marshal.Closures]) is byte-copied into a worker with a private
   heap.  Three things silently go wrong:

   - a captured [Unix.file_descr] is an integer naming a kernel object
     the worker does not have — the copy is dead;
   - a captured [Mutex.t]/[Condition.t]/[Atomic.t] is a fresh private
     copy — the worker "synchronises" against nothing; Bigarrays are
     custom blocks [Marshal] refuses outright;
   - a write to captured module-level state lands on the worker's
     snapshot and never reaches the coordinator.

   The capture's resolution runs through the linked taint fixpoint, so
   an fd threaded through a helper module ([let fd = Helper.log_fd])
   is still caught.  Blind spots: resources inside containers (a
   [fd list]) and captures of function {e results} computed at call
   time. *)

let marshal_safety =
  let id = "marshal-safety" in
  let severity = Finding.Error in
  let hint =
    "pass the resource's *name* (a path, a key) and re-open it worker-side, \
     or return results through the protocol instead of writing captured state"
  in
  let check (program : Linker.program) =
    List.concat_map
      (fun (s : Summary.t) ->
        List.concat_map
          (fun (m : Summary.marshal_site) ->
            let cap_findings =
              List.filter_map
                (fun (c : Summary.capture) ->
                  match
                    Linker.capture_taint program ~from:s c.Summary.c_parts
                  with
                  | Some witness ->
                      Some
                        (mkl ~rule:id ~severity ~hint ~file:s.Summary.s_file
                           c.Summary.c_loc
                           (Printf.sprintf
                              "closure passed to %s captures %s, which holds \
                               %s: the marshalled copy is dead or private on \
                               the worker"
                              m.Summary.m_entry c.Summary.c_name witness))
                  | None -> None)
                m.Summary.m_captures
            in
            let write_findings =
              List.filter_map
                (fun (w : Summary.capture) ->
                  if Linker.capture_is_global program ~from:s w.Summary.c_parts
                  then
                    Some
                      (mkl ~rule:id ~severity ~hint ~file:s.Summary.s_file
                         w.Summary.c_loc
                         (Printf.sprintf
                            "closure passed to %s writes captured module \
                             state %s: on a private-heap worker the write \
                             lands on a marshalled snapshot and is silently \
                             lost"
                            m.Summary.m_entry w.Summary.c_name))
                  else None)
                m.Summary.m_writes
            in
            cap_findings @ write_findings)
          s.Summary.s_marshal_sites)
      program.Linker.files
  in
  {
    id;
    severity;
    doc =
      "closures crossing a process boundary (Farm.farm, Marshal.Closures) \
       must not capture fds, locks, atomics or Bigarrays, nor write captured \
       module state";
    hint;
    (* lib/check farms deliberately-hostile closures at the model
       checker; fixture-style violation corpora live under test/. *)
    exempt = (fun p -> path_has "lib/check/" p);
    kind = Linked check;
  }

(* ================ rule 7: ring-discipline (linked) ================ *)

(* The SPSC ring's correctness argument (model-checked in lib/check)
   covers exactly the code inside [Shm_ring]: cursor reads/writes with
   their documented fence pattern, frame Bigarray slicing against a
   published tail.  Cursor arithmetic or frame-plane access anywhere
   else is outside the proof.  Inside the ring module, every publishing
   store (tail/head bump, doorbell arm) must have a [Tatomic.Fence.full]
   in an enclosing binding — the StoreLoad edges of the Dekker
   handshake. *)

let ring_module_file p = Filename.basename p = "shm_ring.ml"

let ring_discipline =
  let id = "ring-discipline" in
  let severity = Finding.Error in
  let hint =
    "go through Shm_ring's API (write_frame/consume/frame slices); if the \
     ring itself changed, pair the store with the documented \
     Tatomic.Fence.full"
  in
  let check (program : Linker.program) =
    List.concat_map
      (fun (s : Summary.t) ->
        if ring_module_file s.Summary.s_file then
          List.map
            (fun (label, loc) ->
              mkl ~rule:id ~severity ~hint ~file:s.Summary.s_file loc
                (Printf.sprintf
                   "store to ring word %s has no Tatomic.Fence.full in its \
                    enclosing binding: the StoreLoad edge of the SPSC/doorbell \
                    handshake is unordered"
                   label))
            s.Summary.s_unfenced_stores
        else
          List.map
            (fun (t : Summary.ring_touch) ->
              mkl ~rule:id ~severity ~hint ~file:s.Summary.s_file
                t.Summary.r_loc
                (Printf.sprintf
                   "%s outside Shm_ring: cursor arithmetic and frame access \
                    are only model-checked inside the ring module"
                   t.Summary.r_desc))
            s.Summary.s_ring_touches)
      program.Linker.files
  in
  {
    id;
    severity;
    doc =
      "ring cursor words and frame Bigarray planes are touched only inside \
       Shm_ring, where every publishing store pairs with the documented fence";
    hint;
    (* the shim defines the word/fence ops themselves; lib/check
       instantiates the ring functor over traced cells. *)
    exempt = (fun p -> path_has "lib/shim/" p || path_has "lib/check/" p);
    kind = Linked check;
  }

(* ================ rule 8: protocol-exhaustiveness (linked) ================ *)

(* A protocol type is a variant [t] declared in a module [M] that also
   defines [recv_t] — the wire decoder.  Every constructor of such a
   type must be handled {e explicitly} by at least one dispatch match
   over a [recv_t] call somewhere in the program: a constructor only
   ever swallowed by wildcards is a send the receiving side will bounce
   as a runtime [Protocol_error].  (Per-site wildcards stay legal —
   the handshake phase of the coordinator deliberately accepts only
   [Ready] — the rule asks that each message be handled *somewhere* on
   the receiving side.) *)

let protocol_exhaustiveness =
  let id = "protocol-exhaustiveness" in
  let severity = Finding.Error in
  let hint =
    "add an explicit match arm for the constructor in the receiving \
     dispatch (or delete the constructor if the message is dead)"
  in
  let check (program : Linker.program) =
    List.concat_map
      (fun (s : Summary.t) ->
        List.concat_map
          (fun (v : Summary.variant_decl) ->
            let recv_name = "recv_" ^ v.Summary.v_type in
            if not (List.mem recv_name s.Summary.s_recv_fns) then []
            else
              let sites =
                List.concat_map
                  (fun (site : Summary.t) ->
                    List.filter
                      (fun (d : Summary.dispatch) ->
                        d.Summary.p_recv = recv_name
                        &&
                        match d.Summary.p_recv_mod with
                        | Some m -> m = s.Summary.s_module
                        | None -> site.Summary.s_module = s.Summary.s_module)
                      site.Summary.s_dispatches)
                  program.Linker.files
              in
              if sites = [] then []
              else
                let handled =
                  List.fold_left
                    (fun acc (d : Summary.dispatch) ->
                      List.fold_left
                        (fun acc c -> SSet.add c acc)
                        acc d.Summary.p_handled)
                    SSet.empty sites
                in
                List.filter_map
                  (fun (cname, cloc) ->
                    if SSet.mem cname handled then None
                    else
                      Some
                        (mkl ~rule:id ~severity ~hint ~file:s.Summary.s_file
                           cloc
                           (Printf.sprintf
                              "constructor %s of %s.%s is never handled \
                               explicitly by any dispatch over %s (%d site%s \
                               checked): receivers bounce it as a runtime \
                               protocol error"
                              cname s.Summary.s_module v.Summary.v_type
                              recv_name (List.length sites)
                              (if List.length sites = 1 then "" else "s"))))
                  v.Summary.v_constrs)
          s.Summary.s_variants)
      program.Linker.files
  in
  {
    id;
    severity;
    doc =
      "every constructor of a wire protocol variant (a type t with a recv_t \
       decoder) is matched explicitly by some receiving dispatch";
    hint;
    exempt = no_exempt;
    kind = Linked check;
  }

(* ======== rules 9-11: flow-sensitive typestate (linked) ======== *)

(* All three run over the per-def CFGs built at summarise time
   (Summary.d_cfg), solved by the Dataflow worklist engine with
   interprocedural effect summaries — see Typestate for the lattices.
   They are Linked rules because the effects flow through the resolved
   cross-module call graph: a helper that publishes the cursor, closes
   the fd, or arms the sleep word transfers that fact into every
   caller's CFG. *)

let typestate_findings ~rule ~severity ~hint vs =
  List.map
    (fun (v : Typestate.violation) ->
      mkl ~rule ~severity ~hint ~file:v.Typestate.v_file v.Typestate.v_loc
        v.Typestate.v_msg)
    vs

let frame_lifetime =
  let id = "frame-lifetime" in
  let severity = Finding.Error in
  let hint =
    "follow acquire -> write -> commit: load the cursor, fill the planes, \
     publish exactly once, and never touch the frame after the publish"
  in
  {
    id;
    severity;
    doc =
      "ring frames follow acquire -> write -> commit: no plane access or \
       second publish after the cursor store, and every written frame is \
       committed on every path out";
    hint;
    (* lib/check instantiates the ring protocols over traced cells and
       deliberately explores violating interleavings *)
    exempt = (fun p -> path_has "lib/check/" p);
    kind = Linked (fun program ->
        typestate_findings ~rule:id ~severity ~hint
          (Typestate.frame_violations program));
  }

let fd_leak =
  let id = "fd-leak" in
  let severity = Finding.Warning in
  let hint =
    "close the descriptor on every path: wrap the body in Fun.protect \
     ~finally:(fun () -> Unix.close fd), or hand ownership to a helper that \
     does"
  in
  {
    id;
    severity;
    doc =
      "file descriptors and channels opened in a function must reach close \
       on every path out, including the exception path";
    hint;
    exempt = (fun p -> path_has "lib/check/" p);
    kind = Linked (fun program ->
        typestate_findings ~rule:id ~severity ~hint
          (Typestate.fd_violations program));
  }

let lost_wakeup =
  let id = "lost-wakeup" in
  let severity = Finding.Error in
  let hint =
    "re-read the guard (atomic load / shared cursor word) after arming the \
     sleep word and before blocking — the Dekker re-check — or clear the \
     sleep word first"
  in
  {
    id;
    severity;
    doc =
      "no OS-level block is reachable after arming a sleep word without \
       re-reading the guard in between: blocking while armed loses wakeups";
    hint;
    (* lib/check deliberately drives lost-wakeup mutants through DPOR *)
    exempt = (fun p -> path_has "lib/check/" p);
    kind = Linked (fun program ->
        typestate_findings ~rule:id ~severity ~hint
          (Typestate.wakeup_violations program));
  }

(* ---------------- registry ---------------- *)

let all =
  [
    spark_purity;
    atomics_discipline;
    metrics_discipline;
    blocking_in_worker;
    discarded_future;
    unjoined_domain;
    marshal_safety;
    ring_discipline;
    protocol_exhaustiveness;
    frame_lifetime;
    fd_leak;
    lost_wakeup;
  ]

let ids = List.map (fun r -> r.id) all

let find id = List.find_opt (fun r -> r.id = id) all

let file_rules rules =
  List.filter_map
    (fun r -> match r.kind with File f -> Some (r, f) | Linked _ -> None)
    rules

let linked_rules rules =
  List.filter_map
    (fun r -> match r.kind with Linked f -> Some (r, f) | File _ -> None)
    rules
