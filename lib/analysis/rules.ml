(** The rule registry: AST-level checks over compiler-libs parsetrees.

    Every rule works on the {e untyped} parsetree ([Parse.implementation]
    output), which is what makes the engine dependency-free: fixture
    files and scanned sources only have to parse, not typecheck.  The
    flip side is that rules are name-based — [module A = Atomic] is
    resolved by an explicit alias pass, but an alias smuggled through a
    functor argument is invisible.  Each rule documents its blind spots;
    the suppression baseline ({!Baseline}) is the escape hatch for
    intentional violations.

    Rules replace the PR 2 line-regex scanner ([tools/lint_atomics.ml]):
    operating on the AST means comments, string literals, local module
    aliases and [open Stdlib.Atomic] are all handled for free, and every
    finding carries an exact [file:line:col]. *)

open Parsetree

type t = {
  id : string;  (** stable id used in output, baselines and [--rule] *)
  severity : Finding.severity;
  doc : string;  (** one-line description for [--list-rules] and SARIF *)
  hint : string;  (** generic fix hint attached to every finding *)
  exempt : string -> bool;  (** normalised-path-based exemption *)
  check : file:string -> Parsetree.structure -> Finding.t list;
}

(* ---------------- shared helpers ---------------- *)

module SSet = Set.Make (String)

let no_exempt _ = false

let path_has sub path =
  let n = String.length path and m = String.length sub in
  let rec go i = i + m <= n && (String.sub path i m = sub || go (i + 1)) in
  go 0

let lid_parts (lid : Longident.t) =
  match Longident.flatten lid with parts -> parts | exception _ -> []

(* [Stdlib.Atomic.get] and [Atomic.get] are the same thing. *)
let strip_stdlib = function "Stdlib" :: rest -> rest | parts -> parts

let last_part parts =
  match List.rev parts with [] -> None | x :: _ -> Some x

let dotted parts = String.concat "." parts

let expr_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (lid_parts txt)
  | _ -> None

let mk ~rule ~severity ~hint ~file (loc : Location.t) message : Finding.t =
  let p = loc.loc_start in
  {
    rule;
    severity;
    file = Finding.normalize_path file;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    message;
    hint;
  }

(* Visit [e]'s immediate children with [f] (generic one-level descent:
   lets each rule intercept the constructs it cares about and delegate
   the rest of the traversal, scoped state included, back to itself). *)
let descend_children f e =
  let it =
    { Ast_iterator.default_iterator with expr = (fun _ c -> f c) }
  in
  Ast_iterator.default_iterator.expr it e

(* Iterate every expression in a structure (any depth). *)
let iter_exprs str f =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          f e;
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str

(* Every value binding in the file, any nesting depth. *)
let iter_value_bindings str f =
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          f vb;
          Ast_iterator.default_iterator.value_binding self vb);
    }
  in
  it.structure it str

let rec simple_var pat =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> simple_var p
  | _ -> None

let rec is_wildcard pat =
  match pat.ppat_desc with
  | Ppat_any -> true
  | Ppat_constraint (p, _) -> is_wildcard p
  | _ -> false

(* Strip the parameter prefix of a syntactic function, returning the
   body (or bodies, for [function]-style case lists). *)
let rec fun_bodies e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> fun_bodies body
  | Pexp_function cases -> List.map (fun c -> c.pc_rhs) cases
  | _ -> [ e ]

let is_syntactic_fun e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | _ -> false

(* ================ rule 1: spark-purity ================ *)

(* Closures handed to the spark machinery may be evaluated by any
   worker — and, under lazy black-holing or fizzle-and-force races,
   conceptually twice — so they must not perform observable effects.
   We flag, inside any syntactic [fun] argument of a spark entry point:
   mutation of state the closure does not own (a [let x = ref ...] or
   array/buffer allocated *inside* the closure is fine: every
   evaluation gets its own copy), shim/raw atomic stores, I/O, raises
   with no enclosing handler, and calls to file-local helpers whose own
   bodies mutate state they do not own (one level of indirection: this
   is what surfaces [rows_kernel]-style in-place kernels). *)

(* [submit] and [farm] cover the distributed executor's entry points
   ([Dist.submit]-style task submission, [Farm.farm] closures): their
   payloads cross a process boundary, so the purity obligations are
   strictly stronger than for shared-heap sparks. *)
let spark_entry_names =
  SSet.of_list
    [
      "par"; "spark"; "submit"; "farm"; "par_list"; "par_map"; "par_chunked";
      "par_range";
    ]

let is_spark_entry fn =
  match expr_ident fn with
  | Some parts -> (
      match last_part (strip_stdlib parts) with
      | Some l -> SSet.mem l spark_entry_names
      | None -> false)
  | None -> false

let inplace_writers =
  List.map
    (fun p -> (dotted p, ()))
    [
      [ "Array"; "set" ]; [ "Array"; "unsafe_set" ]; [ "Array"; "fill" ];
      [ "Array"; "blit" ]; [ "Bytes"; "set" ]; [ "Bytes"; "unsafe_set" ];
      [ "Bytes"; "fill" ]; [ "Bytes"; "blit" ]; [ "Hashtbl"; "add" ];
      [ "Hashtbl"; "replace" ]; [ "Hashtbl"; "remove" ]; [ "Hashtbl"; "reset" ];
      [ "Hashtbl"; "clear" ]; [ "Buffer"; "add_string" ]; [ "Buffer"; "add_char" ];
      [ "Buffer"; "clear" ]; [ "Buffer"; "reset" ]; [ "Queue"; "push" ];
      [ "Queue"; "add" ]; [ "Queue"; "pop" ]; [ "Queue"; "take" ];
      [ "Stack"; "push" ]; [ "Stack"; "pop" ];
    ]

let is_inplace_writer parts = List.mem_assoc (dotted parts) inplace_writers

let is_atomic_write parts =
  match (parts, last_part parts) with
  | _, None | [], _ | [ _ ], _ -> false
  | head :: _, Some l ->
      let anywhere = [ "compare_and_set"; "fetch_and_add"; "exchange" ] in
      let atomic_mods = [ "Atomic"; "Tatomic" ] in
      List.mem l anywhere
      || (List.mem head atomic_mods && List.mem l [ "set"; "incr"; "decr" ])

let io_unqualified =
  SSet.of_list
    [
      "print_string"; "print_endline"; "print_int"; "print_char";
      "print_float"; "print_newline"; "prerr_string"; "prerr_endline";
      "prerr_newline"; "read_line"; "read_int"; "exit";
    ]

let io_modules = SSet.of_list [ "Printf"; "Format"; "Unix"; "Out_channel"; "In_channel" ]

let io_pure_fns =
  SSet.of_list
    [ "sprintf"; "asprintf"; "ksprintf"; "kasprintf"; "gettimeofday"; "time" ]

let is_io parts =
  match parts with
  | [ x ] -> SSet.mem x io_unqualified
  | head :: _ -> (
      SSet.mem head io_modules
      && match last_part parts with
         | Some l -> not (SSet.mem l io_pure_fns)
         | None -> false)
  | [] -> false

let is_raise parts =
  match parts with
  | [ x ] -> List.mem x [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]
  | _ -> false

(* RHS shapes that allocate state owned by the binder: [ref e],
   [Array.make ...], [Buffer.create ...], a literal [| ... |], ... *)
let rec is_fresh_alloc e =
  match e.pexp_desc with
  | Pexp_array _ -> true
  | Pexp_constraint (e, _) -> is_fresh_alloc e
  | Pexp_apply (fn, _) -> (
      match expr_ident fn with
      | Some parts -> (
          match strip_stdlib parts with
          | [ "ref" ] -> true
          | _ :: _ :: _ as p -> (
              match last_part p with
              | Some l ->
                  List.mem l
                    [ "make"; "create"; "init"; "copy"; "make_matrix"; "create_float" ]
              | None -> false)
          | _ -> false)
      | None -> false)
  | _ -> false

type purity_env = { fresh : SSet.t; in_try : bool }

let is_fresh_ident env e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } -> SSet.mem x env.fresh
  | _ -> false

(* Walk a spark-closure body (or a helper body when [check_raise] is
   false), calling [emit loc msg] on every impure construct. *)
let rec purity_walk ~check_raise ~impure_helpers ~emit env e =
  let walk = purity_walk ~check_raise ~impure_helpers ~emit in
  match e.pexp_desc with
  | Pexp_let (_, vbs, body) ->
      List.iter (fun vb -> walk env vb.pvb_expr) vbs;
      let env' =
        List.fold_left
          (fun acc vb ->
            match simple_var vb.pvb_pat with
            | Some x when is_fresh_alloc vb.pvb_expr ->
                { acc with fresh = SSet.add x acc.fresh }
            | Some x -> { acc with fresh = SSet.remove x acc.fresh }
            | None -> acc)
          env vbs
      in
      walk env' body
  | Pexp_try (body, cases) ->
      walk { env with in_try = true } body;
      List.iter
        (fun c ->
          Option.iter (walk env) c.pc_guard;
          walk env c.pc_rhs)
        cases
  | Pexp_setfield (target, _, v) ->
      if not (is_fresh_ident env target) then
        emit e.pexp_loc
          "record field assignment on state captured from outside the sparked \
           closure";
      walk env target;
      walk env v
  | Pexp_setinstvar (_, v) ->
      emit e.pexp_loc "instance-variable assignment inside a sparked closure";
      walk env v
  | Pexp_lazy inner ->
      (* Eden rule: only whole normal forms cross the heap boundary.
         A lazy value inside a sparked/farmed closure is a thunk that
         would be forced on the evaluating PE (or marshalled not at
         all), so the payload is not fully forced before send. *)
      emit e.pexp_loc
        "lazy value constructed inside a sparked closure: payloads must be \
         fully forced before they are sent";
      walk env inner
  | Pexp_apply (fn, args) ->
      let arg_exprs = List.map snd args in
      (match expr_ident fn with
      | Some parts -> (
          let p = strip_stdlib parts in
          let loc = e.pexp_loc in
          if p = [ ":=" ] then (
            match arg_exprs with
            | target :: _ when is_fresh_ident env target -> ()
            | _ ->
                emit loc
                  "reference assignment (:=) to state captured from outside \
                   the sparked closure")
          else if is_inplace_writer p then (
            match arg_exprs with
            | target :: _ when is_fresh_ident env target -> ()
            | _ ->
                emit loc
                  (Printf.sprintf
                     "in-place write (%s) on state captured from outside the \
                      sparked closure"
                     (dotted p)))
          else if is_atomic_write p then
            emit loc
              (Printf.sprintf "atomic store (%s) inside a sparked closure"
                 (dotted p))
          else if is_io p then
            emit loc
              (Printf.sprintf "I/O (%s) inside a sparked closure" (dotted p))
          else if is_raise p then (
            if check_raise && not env.in_try then
              emit loc
                (Printf.sprintf
                   "%s with no enclosing handler inside a sparked closure"
                   (dotted p)))
          else
            match p with
            | [ x ] when SSet.mem x impure_helpers ->
                emit loc
                  (Printf.sprintf
                     "calls %s, which mutates state it does not own" x)
            | _ -> ())
      | None -> ());
      (* Nested spark entries get their own dedicated walk from the
         top-level iterator (with the correct ownership view), so skip
         their closure arguments here. *)
      let skip_funs = is_spark_entry fn in
      walk env fn;
      List.iter
        (fun a -> if not (skip_funs && is_syntactic_fun a) then walk env a)
        arg_exprs
  | _ -> descend_children (walk env) e

(* File-local helpers whose bodies mutate state they do not own (their
   parameters included): calling one from a sparked closure is as
   impure as inlining it. *)
let collect_impure_helpers str =
  let impure = ref SSet.empty in
  iter_value_bindings str (fun vb ->
      match simple_var vb.pvb_pat with
      | Some name when is_syntactic_fun vb.pvb_expr ->
          let found = ref false in
          let emit _ _ = found := true in
          List.iter
            (fun body ->
              purity_walk ~check_raise:false ~impure_helpers:SSet.empty ~emit
                { fresh = SSet.empty; in_try = false }
                body)
            (fun_bodies vb.pvb_expr);
          if !found then impure := SSet.add name !impure
      | _ -> ());
  !impure

let spark_purity =
  let id = "spark-purity" in
  let severity = Finding.Error in
  let hint =
    "make the closure pure (move mutation inside it, onto state it \
     allocates), or baseline the site with a justification that duplicate \
     evaluation is idempotent"
  in
  let check ~file str =
    let impure_helpers = collect_impure_helpers str in
    let acc = ref [] in
    let emit loc msg =
      acc := mk ~rule:id ~severity ~hint ~file loc msg :: !acc
    in
    iter_exprs str (fun e ->
        match e.pexp_desc with
        | Pexp_apply (fn, args) when is_spark_entry fn ->
            List.iter
              (fun (_, a) ->
                if is_syntactic_fun a then
                  List.iter
                    (purity_walk ~check_raise:true ~impure_helpers ~emit
                       { fresh = SSet.empty; in_try = false })
                    (fun_bodies a))
              args
        | _ -> ());
    !acc
  in
  {
    id;
    severity;
    doc =
      "closures passed to par/spark/submit must not mutate shared state, \
       perform I/O, or raise unhandled: they may be evaluated by any worker \
       and must be safe under duplicate evaluation";
    hint;
    (* lib/check deliberately sparks raising/violating closures — that
       is what a model-checking protocol is. *)
    exempt = (fun p -> path_has "lib/check/" p);
    check;
  }

(* ================ rule 2: atomics-discipline ================ *)

(* The model checker (lib/check) can only see atomic operations routed
   through the Repro_shim.Tatomic shim.  Raw [Atomic.*] (however
   spelled: [Stdlib.Atomic], a [module A = Atomic] alias, or an [open])
   is invisible to DPOR and the race detector; [Obj.magic] defeats the
   type system outright.  The shim itself and the checker's tracing
   cells are exempt by path.

   lib/dist is deliberately NOT exempt: the shared-memory ring
   transport (lib/dist/shm_ring.ml) keeps its mmap'd head/tail/sleeping
   control words behind the shim's [Tatomic.WORD] and [Fence]
   interfaces, which is the sanctioned pattern -- lib/check instantiates
   the same ring functor over traced cells to model-check the SPSC
   handshake.  A raw [Atomic] cursor there would silently fall out of
   the model (see the dist_ring_* fixtures). *)

let atomics_discipline =
  let id = "atomics-discipline" in
  let severity = Finding.Error in
  let hint =
    "route the operation through Repro_shim.Tatomic (functorise over \
     Tatomic.S) so lib/check can trace it"
  in
  let check ~file str =
    let acc = ref [] in
    let emit loc msg =
      acc := mk ~rule:id ~severity ~hint ~file loc msg :: !acc
    in
    let aliases = ref SSet.empty in
    let is_atomic_module_expr me =
      match me.pmod_desc with
      | Pmod_ident { txt; _ } -> strip_stdlib (lid_parts txt) = [ "Atomic" ]
      | _ -> false
    in
    (* pass 1: aliases and opens (any depth) *)
    let it =
      {
        Ast_iterator.default_iterator with
        module_binding =
          (fun self mb ->
            (if is_atomic_module_expr mb.pmb_expr then begin
               (match mb.pmb_name.txt with
               | Some n -> aliases := SSet.add n !aliases
               | None -> ());
               emit mb.pmb_loc
                 "module alias of Atomic: the aliased operations bypass the \
                  Repro_shim.Tatomic shim"
             end);
            Ast_iterator.default_iterator.module_binding self mb);
        open_declaration =
          (fun self od ->
            if is_atomic_module_expr od.popen_expr then
              emit od.popen_loc
                "open of Atomic puts raw atomic operations in scope, \
                 bypassing the Repro_shim.Tatomic shim";
            Ast_iterator.default_iterator.open_declaration self od);
        expr =
          (fun self e ->
            (match e.pexp_desc with
            | Pexp_letmodule ({ txt = Some n; _ }, me, _)
              when is_atomic_module_expr me ->
                aliases := SSet.add n !aliases;
                emit e.pexp_loc
                  "local module alias of Atomic bypasses the \
                   Repro_shim.Tatomic shim"
            | _ -> ());
            Ast_iterator.default_iterator.expr self e);
      }
    in
    it.structure it str;
    (* pass 2: uses, in expressions and in types *)
    let flag_lid loc lid =
      let parts = strip_stdlib (lid_parts lid) in
      match parts with
      | "Atomic" :: _ :: _ ->
          emit loc
            (Printf.sprintf
               "raw %s: go through the Repro_shim.Tatomic shim so lib/check \
                can trace it"
               (dotted parts))
      | [ "Obj"; "magic" ] -> emit loc "Obj.magic defeats the type system"
      | head :: _ :: _ when SSet.mem head !aliases ->
          emit loc
            (Printf.sprintf
               "%s goes through a local alias of Atomic, bypassing the \
                Repro_shim.Tatomic shim"
               (dotted parts))
      | _ -> ()
    in
    let it2 =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self e ->
            (match e.pexp_desc with
            | Pexp_ident { txt; loc } -> flag_lid loc txt
            | _ -> ());
            Ast_iterator.default_iterator.expr self e);
        typ =
          (fun self t ->
            (match t.ptyp_desc with
            | Ptyp_constr ({ txt; loc }, _) -> flag_lid loc txt
            | _ -> ());
            Ast_iterator.default_iterator.typ self t);
      }
    in
    it2.structure it2 str;
    !acc
  in
  {
    id;
    severity;
    doc =
      "raw Atomic operations (including Stdlib.Atomic, module aliases and \
       opens) and Obj.magic are forbidden outside lib/shim and lib/check";
    hint;
    exempt = (fun p -> path_has "lib/shim/" p || path_has "lib/check/" p);
    check;
  }

(* ================ rule 3: blocking-in-worker ================ *)

(* A pool worker that blocks the OS thread starves every spark behind
   it — and, if the blocked operation waits on another spark, can
   deadlock the pool.  Roots are the conventional worker entry points
   ([worker_loop], [idle_wait]) plus any lambda passed to
   [Domain.spawn]; reachability is a file-local call graph over
   unqualified names (cross-module calls are invisible — each module's
   own loops must be scanned in its own file). *)

let blocking_prims =
  SSet.of_list
    [
      "Unix.sleep"; "Unix.sleepf"; "Unix.select"; "Mutex.lock";
      "Condition.wait"; "Event.sync"; "Domain.join"; "Thread.delay";
      "Thread.join"; "input_line"; "input_char"; "really_input";
      "really_input_string"; "read_line"; "In_channel.input_line";
      "In_channel.input_all"; "In_channel.really_input_string";
    ]

let worker_roots = SSet.of_list [ "worker_loop"; "idle_wait" ]

let blocking_in_worker =
  let id = "blocking-in-worker" in
  let severity = Finding.Warning in
  let hint =
    "replace the blocking call with helping (run pending sparks), bounded \
     backoff, or the pool's parking handshake; baseline designed blocking \
     points with a justification"
  in
  let check ~file str =
    (* name -> bodies, for every binding in the file *)
    let bindings = Hashtbl.create 64 in
    iter_value_bindings str (fun vb ->
        match simple_var vb.pvb_pat with
        | Some name ->
            Hashtbl.add bindings name
              (List.concat_map fun_bodies [ vb.pvb_expr ])
        | None -> ());
    (* seed bodies: named roots + lambdas passed to Domain.spawn *)
    let seed_names =
      SSet.filter (fun n -> Hashtbl.mem bindings n) worker_roots
    in
    let spawn_lambdas = ref [] in
    iter_exprs str (fun e ->
        match e.pexp_desc with
        | Pexp_apply (fn, args) -> (
            match expr_ident fn with
            | Some parts when strip_stdlib parts = [ "Domain"; "spawn" ] ->
                List.iter
                  (fun (_, a) ->
                    if is_syntactic_fun a then
                      spawn_lambdas := fun_bodies a @ !spawn_lambdas)
                  args
            | _ -> ())
        | _ -> ());
    (* reachability over unqualified name references *)
    let referenced_names body =
      let acc = ref SSet.empty in
      let rec go e =
        (match e.pexp_desc with
        | Pexp_ident { txt = Longident.Lident x; _ } ->
            if Hashtbl.mem bindings x then acc := SSet.add x !acc
        | _ -> ());
        descend_children go e
      in
      go body;
      !acc
    in
    let visited = ref SSet.empty in
    let reachable_bodies = ref [] in
    let rec visit name =
      if not (SSet.mem name !visited) then begin
        visited := SSet.add name !visited;
        List.iter
          (fun bodies ->
            List.iter
              (fun b ->
                reachable_bodies := b :: !reachable_bodies;
                SSet.iter visit (referenced_names b))
              bodies)
          (Hashtbl.find_all bindings name)
      end
    in
    SSet.iter visit seed_names;
    List.iter
      (fun b ->
        reachable_bodies := b :: !reachable_bodies;
        SSet.iter visit (referenced_names b))
      !spawn_lambdas;
    (* scan reachable bodies for blocking primitives *)
    let acc = ref [] in
    let emit loc msg =
      acc := mk ~rule:id ~severity ~hint ~file loc msg :: !acc
    in
    let rec scan e =
      (match e.pexp_desc with
      | Pexp_ident { txt; loc } ->
          let name = dotted (strip_stdlib (lid_parts txt)) in
          if SSet.mem name blocking_prims then
            emit loc
              (Printf.sprintf
                 "%s is reachable from a pool worker loop and blocks the OS \
                  thread (starving every spark behind it)"
                 name)
      | _ -> ());
      descend_children scan e
    in
    List.iter scan !reachable_bodies;
    !acc
  in
  {
    id;
    severity;
    doc =
      "blocking primitives (Unix.sleep, Mutex.lock, Condition.wait, channel \
       reads, ...) reachable from worker-loop bodies stall the executor";
    hint;
    (* lib/check deliberately models blocking inside its simulated
       workers; the real-executor discipline does not apply there. *)
    exempt = (fun p -> path_has "lib/check/" p);
    check;
  }

(* ================ rules 4 & 5: discarded results ================ *)

(* Shared detector for "this application's result is discarded":
   [ignore e], [ignore @@ e], [e |> ignore], [let _ = e], and
   sequence position [e; ...]. *)

let is_ignore_fn e =
  match expr_ident e with Some [ "ignore" ] | Some [ "Stdlib"; "ignore" ] -> true | _ -> false

let discard_findings ~is_target str f =
  let target e =
    match e.pexp_desc with
    | Pexp_apply (fn, _) -> (
        match expr_ident fn with
        | Some parts -> is_target (strip_stdlib parts)
        | None -> false)
    | _ -> false
  in
  iter_exprs str (fun e ->
      match e.pexp_desc with
      | Pexp_apply (fn, [ (_, arg) ]) when is_ignore_fn fn && target arg ->
          f arg.pexp_loc "ignored"
      | Pexp_apply (op, [ (_, a); (_, b) ]) -> (
          match expr_ident op with
          | Some [ "@@" ] when is_ignore_fn a && target b ->
              f b.pexp_loc "ignored"
          | Some [ "|>" ] when is_ignore_fn b && target a ->
              f a.pexp_loc "ignored"
          | _ -> ())
      | Pexp_sequence (e1, _) when target e1 ->
          f e1.pexp_loc "discarded in sequence position"
      | _ -> ());
  iter_value_bindings str (fun vb ->
      if is_wildcard vb.pvb_pat && target vb.pvb_expr then
        f vb.pvb_expr.pexp_loc "bound to a wildcard")

let discarded_future =
  let id = "discarded-future" in
  let severity = Finding.Warning in
  let hint =
    "bind the future and force it (Future.force) on some path, so its \
     exceptions and result can be observed"
  in
  let check ~file str =
    let acc = ref [] in
    discard_findings
      ~is_target:(fun parts ->
        match last_part parts with Some "spark" -> true | _ -> false)
      str
      (fun loc how ->
        acc :=
          mk ~rule:id ~severity ~hint ~file loc
            (Printf.sprintf
               "Future value %s: if its closure raises, the exception is \
                silently lost (Failed futures only re-raise on force)"
               how)
          :: !acc);
    !acc
  in
  {
    id;
    severity;
    doc =
      "a Future.spark result that is ignored or unbound can never be \
       forced, so exceptions raised by its closure are silently dropped";
    hint;
    exempt = no_exempt;
    check;
  }

let unjoined_domain =
  let id = "unjoined-domain" in
  let severity = Finding.Error in
  let hint =
    "bind the Domain.spawn result and Domain.join it before shutdown so \
     termination invariants stay enforceable"
  in
  let check ~file str =
    let acc = ref [] in
    discard_findings
      ~is_target:(fun parts -> parts = [ "Domain"; "spawn" ])
      str
      (fun loc how ->
        acc :=
          mk ~rule:id ~severity ~hint ~file loc
            (Printf.sprintf
               "Domain.spawn handle %s: the domain can never be joined, so \
                shutdown invariants (spark ledger, quiescence) are \
                unenforceable"
               how)
          :: !acc);
    !acc
  in
  {
    id;
    severity;
    doc =
      "a Domain.spawn whose handle is ignored, wildcard-bound or discarded \
       in sequence position can never be joined";
    hint;
    exempt = no_exempt;
    check;
  }

(* ---------------- registry ---------------- *)

let all =
  [
    spark_purity;
    atomics_discipline;
    blocking_in_worker;
    discarded_future;
    unjoined_domain;
  ]

let ids = List.map (fun r -> r.id) all

let find id = List.find_opt (fun r -> r.id = id) all
