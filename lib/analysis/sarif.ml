(** SARIF 2.1.0 output (Static Analysis Results Interchange Format).

    Minimal but valid: one [run] with a [tool.driver] listing every
    registered rule, one [result] per finding.  Baselined findings are
    included with a [suppressions] entry carrying the justification, so
    SARIF viewers (and GitHub code scanning) show them as suppressed
    rather than silently dropping them. *)

module J = Repro_util.Json_out

let schema_uri = "https://json.schemastore.org/sarif-2.1.0.json"
let tool_name = "repro-lint"
let tool_version = "1.1.0"

let level_of = function
  | Finding.Error -> "error"
  | Finding.Warning -> "warning"

let rule_descriptor ~id ~doc ~hint : J.t =
  J.Obj
    [
      ("id", J.Str id);
      ("shortDescription", J.Obj [ ("text", J.Str doc) ]);
      ("help", J.Obj [ ("text", J.Str hint) ]);
    ]

let result ?suppression (f : Finding.t) : J.t =
  let base =
    [
      ("ruleId", J.Str f.rule);
      ("level", J.Str (level_of f.severity));
      ("message", J.Obj [ ("text", J.Str (f.message ^ ". Hint: " ^ f.hint)) ]);
      ( "locations",
        J.List
          [
            J.Obj
              [
                ( "physicalLocation",
                  J.Obj
                    [
                      ( "artifactLocation",
                        J.Obj
                          [
                            ("uri", J.Str f.file);
                            ("uriBaseId", J.Str "SRCROOT");
                          ] );
                      ( "region",
                        J.Obj
                          [
                            ("startLine", J.Int f.line);
                            (* SARIF columns are 1-based *)
                            ("startColumn", J.Int (f.col + 1));
                          ] );
                    ] );
              ];
          ] );
    ]
  in
  let base =
    (* Content-addressed identity: lets SARIF consumers (GitHub code
       scanning) track a result across runs even as line numbers
       shift — the same digest the baseline keys on. *)
    if f.line_hash = "" then base
    else
      base
      @ [
          ( "partialFingerprints",
            J.Obj [ ("lineHash/v1", J.Str f.line_hash) ] );
        ]
  in
  match suppression with
  | None -> J.Obj base
  | Some justification ->
      J.Obj
        (base
        @ [
            ( "suppressions",
              J.List
                [
                  J.Obj
                    [
                      ("kind", J.Str "external");
                      ("justification", J.Str justification);
                    ];
                ] );
          ])

(** The full SARIF document.  [fresh] findings gate CI; [suppressed]
    ones are carried along with their baseline justification. *)
let document ~(rules : Rules.t list) ~(fresh : Finding.t list)
    ~(suppressed : (Finding.t * string) list) : J.t =
  let rule_descriptors =
    List.map (fun (r : Rules.t) -> rule_descriptor ~id:r.id ~doc:r.doc ~hint:r.hint) rules
    @ [
        rule_descriptor ~id:"parse-error"
          ~doc:"the file could not be parsed by compiler-libs"
          ~hint:"fix the syntax error (the build would reject it too)";
      ]
  in
  J.Obj
    [
      ("$schema", J.Str schema_uri);
      ("version", J.Str "2.1.0");
      ( "runs",
        J.List
          [
            J.Obj
              [
                ( "tool",
                  J.Obj
                    [
                      ( "driver",
                        J.Obj
                          [
                            ("name", J.Str tool_name);
                            ("version", J.Str tool_version);
                            ("rules", J.List rule_descriptors);
                          ] );
                    ] );
                ( "results",
                  J.List
                    (List.map (fun f -> result f) fresh
                    @ List.map
                        (fun (f, j) -> result ~suppression:j f)
                        suppressed) );
              ];
          ] );
    ]
