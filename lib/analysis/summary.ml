(** Phase 1 of the two-phase engine: one self-contained, marshal-able
    summary per [.ml] file.

    A summary carries everything phase 2 ({!Linker} + the linked rules
    in {!Rules}) needs — defined values with their call/blocking/
    resource facts, marshal-boundary closure sites with their captured
    identifiers, protocol variant declarations and dispatch matches,
    ring-word touches — plus the findings of every {e file-local} rule
    and a per-line content-hash table.  Because nothing here references
    the parsetree, summaries serialise into the {!Cache} and a warm run
    never parses an unchanged file at all. *)

open Parsetree
open Astutil

(** Resources that must not be captured into a closure that crosses a
    process boundary: a marshalled copy is dead ([Unix.file_descr]), a
    lie ([Mutex.t]/[Condition.t]/[Atomic.t] — the worker synchronises
    against a private copy), or refused outright (Bigarrays are
    abstract custom blocks [Marshal] rejects). *)
type resource = Fd | Mutex | Condition | Atomic | Bigarray

let resource_name = function
  | Fd -> "Unix.file_descr"
  | Mutex -> "Mutex.t"
  | Condition -> "Condition.t"
  | Atomic -> "Atomic.t"
  | Bigarray -> "a Bigarray"

(* Suffix-matched so [A1.create] and [Bigarray.Array1.create] both
   hit.  Functions listed here *return* the resource; value bindings
   whose RHS calls one *hold* it. *)
let resource_makers =
  [
    ([ "Unix"; "openfile" ], Fd); ([ "Unix"; "socket" ], Fd);
    ([ "Unix"; "socketpair" ], Fd); ([ "Unix"; "accept" ], Fd);
    ([ "Unix"; "pipe" ], Fd); ([ "Unix"; "dup" ], Fd);
    ([ "Unix"; "descr_of_in_channel" ], Fd);
    ([ "Unix"; "descr_of_out_channel" ], Fd);
    ([ "Unix"; "stdin" ], Fd); ([ "Unix"; "stdout" ], Fd);
    ([ "Unix"; "stderr" ], Fd);
    ([ "open_in" ], Fd); ([ "open_in_bin" ], Fd);
    ([ "open_out" ], Fd); ([ "open_out_bin" ], Fd);
    ([ "Mutex"; "create" ], Mutex);
    ([ "Condition"; "create" ], Condition);
    ([ "Atomic"; "make" ], Atomic); ([ "Tatomic"; "make" ], Atomic);
    ([ "Unix"; "map_file" ], Bigarray);
    ([ "Array1"; "create" ], Bigarray); ([ "Array2"; "create" ], Bigarray);
    ([ "Array3"; "create" ], Bigarray); ([ "Genarray"; "create" ], Bigarray);
    ([ "Bigarray"; "array1_of_genarray" ], Bigarray);
    ([ "array1_of_genarray" ], Bigarray);
  ]

let resource_of_parts parts =
  let parts = strip_stdlib parts in
  List.find_map
    (fun (suffix, r) -> if ends_with ~suffix parts then Some r else None)
    resource_makers

(** Source location inside the summarised file. *)
type loc = { l_line : int; l_col : int }

let loc_of (l : Location.t) =
  { l_line = l.loc_start.pos_lnum; l_col = l.loc_start.pos_cnum - l.loc_start.pos_bol }

(** One value binding (any nesting depth; [d_top] marks structure-level
    ones).  Facts are about the binding's whole RHS. *)
type def = {
  d_name : string;
  d_loc : loc;
  d_top : bool;
  d_is_fun : bool;
  d_params : string list;
      (** positional parameter names, in order (functions only) *)
  d_sanctioned : bool;
      (** carries [[@sanctioned_blocking]] — fiber-style primitive *)
  d_calls : (string list * loc) list;
      (** every identifier the RHS references, [Stdlib]-stripped *)
  d_blocking : (string * loc) list;  (** blocking primitives, by name *)
  d_resources : (resource * string * loc) list;
      (** direct resource construction: kind, constructor spelling *)
  d_cfg : Cfg.t option;
      (** control-flow graph of the RHS, for the flow-sensitive rules *)
}

(** A free identifier of a marshal-boundary closure. *)
type capture = { c_name : string; c_parts : string list; c_loc : loc }

(** A closure handed to a process-crossing entry point
    ([Farm.farm]-style, or [Marshal.to_*] with [Closures]). *)
type marshal_site = {
  m_entry : string;
  m_loc : loc;
  m_captures : capture list;
  m_writes : capture list;
      (** writes ([:=], [<-], in-place) whose target is captured from
          outside the closure — lost on the worker's private copy *)
}

(** One [match] over the result of a [recv_*] call. *)
type dispatch = {
  p_recv : string;  (** the recv function's name, e.g. ["recv_to_worker"] *)
  p_recv_mod : string option;  (** [Some "Message"] when called qualified *)
  p_loc : loc;
  p_handled : string list;  (** constructor names matched explicitly *)
  p_wildcard : bool;
}

type variant_decl = {
  v_type : string;
  v_loc : loc;
  v_constrs : (string * loc) list;
}

(** A reference to ring internals: cursor/control words, shim word
    ops on mapped words, or frame Bigarray planes. *)
type ring_touch = { r_desc : string; r_loc : loc }

type t = {
  s_file : string;  (** normalised path *)
  s_module : string;  (** ["Farm"] for [lib/dist/farm.ml] *)
  s_digest : string;  (** MD5 of the file contents *)
  s_line_hashes : string array;  (** {!Finding.hash_line_text} per line *)
  s_defs : def list;
  s_spawn_bodies : def list;
      (** lambdas passed to [Domain.spawn], as anonymous defs *)
  s_marshal_sites : marshal_site list;
  s_dispatches : dispatch list;
  s_variants : variant_decl list;
  s_recv_fns : string list;  (** top-level defs named [recv_*] *)
  s_ring_touches : ring_touch list;
  s_unfenced_stores : (string * loc) list;
      (** ring-word publishes with no fence in any enclosing binding *)
  s_local_findings : (string * Finding.t list) list;
      (** per file-local rule id, computed at summary time *)
}

let module_name_of_path path =
  let base = Filename.remove_extension (Filename.basename path) in
  String.capitalize_ascii base

(* ---------------- def extraction ---------------- *)

let facts_of_expr e =
  let calls = ref [] and blocking = ref [] and resources = ref [] in
  let seen_apply_fns = Hashtbl.create 16 in
  let note_ident parts loc =
    let parts = strip_stdlib parts in
    if parts <> [] then begin
      calls := (parts, loc_of loc) :: !calls;
      let name = dotted parts in
      if SSet.mem name blocking_prims then
        blocking := (name, loc_of loc) :: !blocking;
      match resource_of_parts parts with
      | Some r when not (Hashtbl.mem seen_apply_fns loc.Location.loc_start) ->
          resources := (r, name, loc_of loc) :: !resources
      | _ -> ()
    end
  in
  let rec go e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> note_ident (lid_parts txt) loc
    | _ -> ());
    descend_children go e
  in
  go e;
  (List.rev !calls, List.rev !blocking, List.rev !resources)

(* ---------------- capture extraction ---------------- *)

(* Free identifiers and captured-state writes of a syntactic function.
   [bound] starts as the parameter set; lets and match cases extend it
   scope-correctly; freshly allocated locals are additionally tracked
   so writes to them are not reported. *)
let captures_of_fun fn_expr =
  let caps = ref [] and writes = ref [] in
  let add_cap bucket name parts loc =
    bucket := { c_name = name; c_parts = parts; c_loc = loc_of loc } :: !bucket
  in
  let note_free bound parts loc =
    match parts with
    | [ x ] -> if not (SSet.mem x bound) then add_cap caps x parts loc
    | _ :: _ -> add_cap caps (dotted parts) parts loc
    | [] -> ()
  in
  let write_target bound fresh target loc verb =
    match expr_ident target with
    | Some [ x ] when SSet.mem x fresh -> ()
    | Some ([ x ] as parts) ->
        add_cap writes
          (Printf.sprintf "%s (%s)" x verb)
          parts loc;
        ignore bound
    | Some parts -> add_cap writes (Printf.sprintf "%s (%s)" (dotted parts) verb) parts loc
    | None -> ()
  in
  let rec walk bound fresh e =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } -> note_free bound (strip_stdlib (lid_parts txt)) loc
    | Pexp_let (_, vbs, body) ->
        List.iter (fun vb -> walk bound fresh vb.pvb_expr) vbs;
        let bound', fresh' =
          List.fold_left
            (fun (b, fr) vb ->
              let vars = pattern_vars vb.pvb_pat in
              let b = SSet.union vars b in
              match simple_var vb.pvb_pat with
              | Some x when is_fresh_alloc vb.pvb_expr -> (b, SSet.add x fr)
              | Some x -> (b, SSet.remove x fr)
              | None -> (b, fr))
            (bound, fresh) vbs
        in
        walk bound' fresh' body
    | Pexp_fun (_, _, pat, body) ->
        walk (SSet.union (pattern_vars pat) bound) fresh body
    | Pexp_function cases | Pexp_match (_, cases) | Pexp_try (_, cases) ->
        (match e.pexp_desc with
        | Pexp_match (scrut, _) | Pexp_try (scrut, _) -> walk bound fresh scrut
        | _ -> ());
        List.iter
          (fun c ->
            let b = SSet.union (pattern_vars c.pc_lhs) bound in
            Option.iter (walk b fresh) c.pc_guard;
            walk b fresh c.pc_rhs)
          cases
    | Pexp_setfield (target, _, v) ->
        write_target bound fresh target e.pexp_loc "field assignment";
        walk bound fresh target;
        walk bound fresh v
    | Pexp_apply (fn, args) ->
        (match expr_ident fn with
        | Some parts -> (
            let p = strip_stdlib parts in
            match (p, args) with
            | [ ":=" ], (_, target) :: _ ->
                write_target bound fresh target e.pexp_loc ":="
            | _ when is_inplace_writer p -> (
                match args with
                | (_, target) :: _ ->
                    write_target bound fresh target e.pexp_loc (dotted p)
                | [] -> ())
            | _ -> ())
        | None -> ());
        walk bound fresh fn;
        List.iter (fun (_, a) -> walk bound fresh a) args
    | _ -> descend_children (walk bound fresh) e
  in
  List.iter (walk (fun_params fn_expr) SSet.empty) (fun_bodies fn_expr);
  (List.rev !caps, List.rev !writes)

(* Entry points whose closure argument is marshalled across a process
   boundary.  [farm] is the Eden-style closure farm; a [Marshal.to_*]
   with [Marshal.Closures] in its flag list is the raw form. *)
let is_marshal_entry fn =
  match expr_ident fn with
  | Some parts -> (
      match last_part (strip_stdlib parts) with
      | Some "farm" -> Some "farm"
      | _ -> None)
  | None -> None

let marshal_flags_have_closures args =
  List.exists
    (fun (_, a) ->
      match a.pexp_desc with
      | Pexp_construct ({ txt = Longident.Lident "::"; _ }, _) | Pexp_construct ({ txt = Longident.Lident "[]"; _ }, _) ->
          let found = ref false in
          let rec scan e =
            (match e.pexp_desc with
            | Pexp_construct ({ txt; _ }, _)
              when last_part (lid_parts txt) = Some "Closures" ->
                found := true
            | _ -> ());
            descend_children scan e
          in
          scan a;
          !found
      | _ -> false)
    args

let is_marshal_to fn =
  match expr_ident fn with
  | Some parts -> (
      match strip_stdlib parts with
      | [ "Marshal"; ("to_string" | "to_bytes" | "to_channel") ] -> true
      | _ -> false)
  | None -> false

(* ---------------- protocol extraction ---------------- *)

let rec constructors_of_pattern wildcard acc p =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, _) -> (
      match last_part (lid_parts txt) with
      | Some c -> c :: acc
      | None -> acc)
  | Ppat_or (a, b) ->
      constructors_of_pattern wildcard (constructors_of_pattern wildcard acc a) b
  | Ppat_alias (p, _) | Ppat_constraint (p, _) ->
      constructors_of_pattern wildcard acc p
  | Ppat_any | Ppat_var _ ->
      wildcard := true;
      acc
  | _ -> acc

let recv_call_target e =
  match e.pexp_desc with
  | Pexp_apply (fn, _) -> (
      match expr_ident fn with
      | Some parts -> (
          let parts = strip_stdlib parts in
          match last_part parts with
          | Some name
            when String.length name > 5 && String.sub name 0 5 = "recv_" ->
              let m =
                match parts with
                | [ _ ] -> None
                | _ -> (
                    match List.rev parts with
                    | _ :: m :: _ -> Some m
                    | _ -> None)
              in
              Some (name, m)
          | _ -> None)
      | None -> None)
  | _ -> None

let dispatch_of_match ~recv_bindings scrut cases loc =
  let target =
    match recv_call_target scrut with
    | Some t -> Some t
    | None -> (
        (* [let m = recv_x conn in match m with ...] *)
        match scrut.pexp_desc with
        | Pexp_ident { txt = Longident.Lident x; _ } ->
            Hashtbl.find_opt recv_bindings x
        | _ -> None)
  in
  match target with
  | None -> None
  | Some (name, m) ->
      let wildcard = ref false in
      let handled =
        List.fold_left
          (fun acc c -> constructors_of_pattern wildcard acc c.pc_lhs)
          [] cases
      in
      Some
        {
          p_recv = name;
          p_recv_mod = m;
          p_loc = loc_of loc;
          p_handled = List.sort_uniq String.compare handled;
          p_wildcard = !wildcard;
        }

(* ---------------- ring-discipline extraction ---------------- *)

let ring_cursor_fields =
  SSet.of_list
    [ "tail_w"; "head_w"; "sleeping_w"; "tail_local"; "head_local";
      "peer_head"; "peer_tail" ]

let ring_data_fields = SSet.of_list [ "data_chars"; "data_words"; "data_floats" ]

let field_label (lid : Longident.t Location.loc) =
  match last_part (lid_parts lid.txt) with Some l -> l | None -> ""

(* [Mapped_word.store r.tail_w v] — the shim word op on a mapped ring
   word.  [W.store] inside the Spsc functor is not this: the functor is
   the sanctioned abstraction lib/check instantiates. *)
let is_mapped_word_op parts =
  match strip_stdlib parts with
  | [ "Mapped_word"; ("load" | "store") ]
  | [ "Shm_ring"; "Mapped_word"; ("load" | "store") ] ->
      true
  | _ -> false

let ring_facts str =
  let touches = ref [] in
  let touch desc loc = touches := { r_desc = desc; r_loc = loc_of loc } :: !touches in
  iter_exprs str (fun e ->
      match e.pexp_desc with
      | Pexp_field (_, lid) when SSet.mem (field_label lid) ring_cursor_fields ->
          touch
            (Printf.sprintf "reads ring cursor word %s" (field_label lid))
            e.pexp_loc
      | Pexp_setfield (_, lid, _) when SSet.mem (field_label lid) ring_cursor_fields ->
          touch
            (Printf.sprintf "performs cursor arithmetic on ring word %s"
               (field_label lid))
            e.pexp_loc
      | Pexp_field (_, lid) when SSet.mem (field_label lid) ring_data_fields ->
          touch
            (Printf.sprintf "accesses the ring frame plane %s" (field_label lid))
            e.pexp_loc
      | Pexp_ident { txt; loc } when is_mapped_word_op (lid_parts txt) ->
          touch "shim WORD operation on a mapped ring word" loc
      | _ -> ());
  List.rev !touches

(* Publishing stores need a fence in some enclosing binding: the
   producer's tail publish and the consumer's sleeping-arm are both
   StoreLoad edges (documented in shm_ring.ml).  [sleeping := 0]
   (cancel) publishes nothing and is exempt. *)
let unfenced_stores str =
  (* store loc -> fenced-in-some-enclosing-binding *)
  let stores : (string * loc, bool) Hashtbl.t = Hashtbl.create 8 in
  iter_value_bindings str (fun vb ->
      let body_stores = ref [] in
      let has_fence = ref false in
      let rec go e =
        (match e.pexp_desc with
        | Pexp_apply (fn, args) -> (
            match expr_ident fn with
            | Some parts when is_mapped_word_op parts -> (
                match args with
                | (_, target) :: rest -> (
                    let label =
                      match target.pexp_desc with
                      | Pexp_field (_, lid) -> field_label lid
                      | Pexp_ident { txt = Longident.Lident x; _ } -> x
                      | _ -> ""
                    in
                    let is_store =
                      last_part (strip_stdlib parts) = Some "store"
                    in
                    let arming =
                      match rest with
                      | [ (_, { pexp_desc = Pexp_constant (Pconst_integer ("0", _)); _ }) ] ->
                          false
                      | _ -> true
                    in
                    if
                      is_store
                      && (SSet.mem label (SSet.of_list [ "tail_w"; "head_w" ])
                         || (label = "sleeping_w" && arming))
                    then
                      body_stores := (label, loc_of e.pexp_loc) :: !body_stores)
                | [] -> ())
            | Some parts
              when ends_with ~suffix:[ "Fence"; "full" ] (strip_stdlib parts) ->
                has_fence := true
            | _ -> ());
        | _ -> ());
        descend_children go e
      in
      go vb.pvb_expr;
      List.iter
        (fun key ->
          let prev = try Hashtbl.find stores key with Not_found -> false in
          Hashtbl.replace stores key (prev || !has_fence))
        !body_stores);
  Hashtbl.fold (fun k fenced acc -> if fenced then acc else k :: acc) stores []
  |> List.sort compare

(* ---------------- whole-file extraction ---------------- *)

let line_hashes_of_source source =
  let lines = String.split_on_char '\n' source in
  Array.of_list (List.map Finding.hash_line_text lines)

(** Summarise a parsed file.  [local_findings] is supplied by the
    engine (it owns the rule registry; computing them here would be a
    dependency cycle). *)
let of_ast ~file ~source ~digest ~(local_findings : (string * Finding.t list) list)
    (str : structure) : t =
  let norm = Finding.normalize_path file in
  (* defs: every value binding, any depth; top-levels flagged *)
  let top_names = Hashtbl.create 32 in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match simple_var vb.pvb_pat with
              | Some n -> Hashtbl.replace top_names (n, vb.pvb_loc.Location.loc_start.pos_lnum) ()
              | None -> ())
            vbs
      | _ -> ())
    str;
  let defs = ref [] in
  iter_value_bindings str (fun vb ->
      match simple_var vb.pvb_pat with
      | Some name ->
          let calls, blocking, resources = facts_of_expr vb.pvb_expr in
          let sanctioned =
            List.exists
              (fun a ->
                a.attr_name.Location.txt = "sanctioned_blocking")
              vb.pvb_attributes
          in
          defs :=
            {
              d_name = name;
              d_loc = loc_of vb.pvb_loc;
              d_top =
                Hashtbl.mem top_names (name, vb.pvb_loc.Location.loc_start.pos_lnum);
              d_is_fun = is_syntactic_fun vb.pvb_expr;
              d_params = Cfg.fun_params_list vb.pvb_expr;
              d_sanctioned = sanctioned;
              d_calls = calls;
              d_blocking = blocking;
              d_resources = resources;
              d_cfg = Some (Cfg.of_binding vb.pvb_expr);
            }
            :: !defs
      | None -> ());
  (* Domain.spawn lambdas as anonymous roots *)
  let spawn_bodies = ref [] in
  iter_exprs str (fun e ->
      match e.pexp_desc with
      | Pexp_apply (fn, args) -> (
          match expr_ident fn with
          | Some parts when strip_stdlib parts = [ "Domain"; "spawn" ] ->
              List.iter
                (fun (_, a) ->
                  if is_syntactic_fun a then begin
                    let calls, blocking, resources = facts_of_expr a in
                    spawn_bodies :=
                      {
                        d_name = "<Domain.spawn lambda>";
                        d_loc = loc_of a.pexp_loc;
                        d_top = false;
                        d_is_fun = true;
                        d_params = Cfg.fun_params_list a;
                        d_sanctioned = false;
                        d_calls = calls;
                        d_blocking = blocking;
                        d_resources = resources;
                        d_cfg = Some (Cfg.of_binding a);
                      }
                      :: !spawn_bodies
                  end)
                args
          | _ -> ())
      | _ -> ());
  (* marshal-boundary closure sites.  The closure argument is either a
     syntactic [fun] or a bare identifier naming a function bound
     earlier in this file ([let g () = ... in Marshal.to_string g
     [Closures]]) — resolve the latter to its binding so its captures
     are still seen. *)
  let fun_defs : (string, expression) Hashtbl.t = Hashtbl.create 32 in
  iter_value_bindings str (fun vb ->
      match simple_var vb.pvb_pat with
      | Some name when is_syntactic_fun vb.pvb_expr ->
          Hashtbl.replace fun_defs name vb.pvb_expr
      | _ -> ());
  let marshal_sites = ref [] in
  iter_exprs str (fun e ->
      match e.pexp_desc with
      | Pexp_apply (fn, args) -> (
          let record entry =
            List.iter
              (fun (_, a) ->
                let closure =
                  if is_syntactic_fun a then Some a
                  else
                    match expr_ident a with
                    | Some [ x ] -> Hashtbl.find_opt fun_defs x
                    | _ -> None
                in
                match closure with
                | Some c ->
                    let captures, writes = captures_of_fun c in
                    marshal_sites :=
                      {
                        m_entry = entry;
                        m_loc = loc_of a.pexp_loc;
                        m_captures = captures;
                        m_writes = writes;
                      }
                      :: !marshal_sites
                | None -> ())
              args
          in
          match is_marshal_entry fn with
          | Some entry -> record entry
          | None ->
              if is_marshal_to fn && marshal_flags_have_closures args then
                record "Marshal (Closures)")
      | _ -> ());
  (* dispatch matches over recv_* results *)
  let dispatches = ref [] in
  let recv_bindings = Hashtbl.create 8 in
  iter_exprs str (fun e ->
      match e.pexp_desc with
      | Pexp_let (_, vbs, _) ->
          List.iter
            (fun vb ->
              match (simple_var vb.pvb_pat, recv_call_target vb.pvb_expr) with
              | Some x, Some t -> Hashtbl.replace recv_bindings x t
              | _ -> ())
            vbs
      | Pexp_match (scrut, cases) -> (
          match dispatch_of_match ~recv_bindings scrut cases e.pexp_loc with
          | Some d -> dispatches := d :: !dispatches
          | None -> ())
      | _ -> ());
  (* variant declarations and recv_* definitions *)
  let variants = ref [] in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_type (_, decls) ->
          List.iter
            (fun d ->
              match d.ptype_kind with
              | Ptype_variant constrs when constrs <> [] ->
                  variants :=
                    {
                      v_type = d.ptype_name.txt;
                      v_loc = loc_of d.ptype_loc;
                      v_constrs =
                        List.map
                          (fun c -> (c.pcd_name.txt, loc_of c.pcd_loc))
                          constrs;
                    }
                    :: !variants
              | _ -> ())
            decls
      | _ -> ())
    str;
  let recv_fns =
    List.filter_map
      (fun d ->
        if
          d.d_top
          && String.length d.d_name > 5
          && String.sub d.d_name 0 5 = "recv_"
        then Some d.d_name
        else None)
      !defs
  in
  {
    s_file = norm;
    s_module = module_name_of_path norm;
    s_digest = digest;
    s_line_hashes = line_hashes_of_source source;
    s_defs = List.rev !defs;
    s_spawn_bodies = List.rev !spawn_bodies;
    s_marshal_sites = List.rev !marshal_sites;
    s_dispatches = List.rev !dispatches;
    s_variants = List.rev !variants;
    s_recv_fns = recv_fns;
    s_ring_touches = ring_facts str;
    s_unfenced_stores = unfenced_stores str;
    s_local_findings = local_findings;
  }

(** The summary of a file that failed to parse: empty facts, just the
    parse-error finding and the line hashes. *)
let of_parse_error ~file ~source ~digest ~(finding : Finding.t) : t =
  let norm = Finding.normalize_path file in
  {
    s_file = norm;
    s_module = module_name_of_path norm;
    s_digest = digest;
    s_line_hashes = line_hashes_of_source source;
    s_defs = [];
    s_spawn_bodies = [];
    s_marshal_sites = [];
    s_dispatches = [];
    s_variants = [];
    s_recv_fns = [];
    s_ring_touches = [];
    s_unfenced_stores = [];
    s_local_findings = [ ("parse-error", [ finding ]) ];
  }

(** The line hash for a 1-based line of this file ([""] out of range). *)
let line_hash t ~line =
  if line >= 1 && line <= Array.length t.s_line_hashes then
    t.s_line_hashes.(line - 1)
  else ""
