(** Flow-sensitive typestate analyses over the per-def {!Cfg}s, linked
    through the cross-module call graph.

    Three clients of {!Dataflow}, each in two passes:

    + an {e effect} fixpoint: every function def gets a small summary
      transfer function (what ring state it exits in, whether it closes
      its fd parameters, how it maps the sleep-word state), computed
      optimistically — bottom contributes nothing, so recursive defs
      ([next_header]'s retry loop) converge instead of poisoning their
      callers;
    + a {e reporting} pass: each def is solved once more against the
      final effect tables and violations are read off the node
      in-states.

    Because effects are keyed by (file, def) and applied at {!Cfg.Call}
    nodes through {!Linker.resolve}, a fact two modules away — a helper
    that publishes the cursor, a cleanup function that closes the fd,
    [prepare_sleep] arming the doorbell — transfers into the caller's
    CFG exactly like a local statement.  That is the property the
    fixtures seed mutants against. *)

open Astutil

module SMap = Map.Make (String)

type violation = { v_file : string; v_loc : Summary.loc; v_msg : string }

let sloc (l : Cfg.loc) = { Summary.l_line = l.Cfg.line; Summary.l_col = l.Cfg.col }

(* (summary, def, cfg) triples, defs and Domain.spawn lambdas alike *)
let cfg_defs (program : Linker.program) =
  List.concat_map
    (fun (s : Summary.t) ->
      List.filter_map
        (fun (d : Summary.def) ->
          match d.Summary.d_cfg with Some g -> Some (s, d, g) | None -> None)
        (s.Summary.s_defs @ s.Summary.s_spawn_bodies))
    program.Linker.files

(* Effect tables are keyed by (file, def name, def line): nested defs
   routinely share a name ([loop], [go]) inside one file, and a
   name-only key would make two defs fight over one slot — the effect
   fixpoints would never converge. *)
let def_key file (d : Summary.def) =
  (file, d.Summary.d_name, d.Summary.d_loc.Summary.l_line)

let resolve_effect program (table : (string * string * int, 'a) Hashtbl.t)
    ~(from : Summary.t) parts : 'a option =
  List.find_map
    (fun (r : Linker.resolved) ->
      Hashtbl.find_opt table (def_key r.Linker.target_file r.Linker.target))
    (Linker.resolve program ~from parts)

let dedup_violations vs =
  List.sort_uniq compare vs

(* ==================== frame lifetime ==================== *)

(* Abstract frame states, as a may-set bitmask per program point.  The
   protocol: a cursor load {e acquires} a frame view (Open), plane
   writes fill it (Written), the cursor publish {e commits} it
   (Committed) — after which the peer owns the bytes, so further plane
   access or a second publish on the same acquisition is a violation,
   and a path that exits Written never published at all. *)

let st_start = 1
let st_open = 2
let st_written = 4
let st_committed = 8

type frame_effect = {
  f_ring : bool;  (** touches frame state, directly or transitively *)
  f_exits : int;  (** exit state bits, from a Start entry *)
  f_commits : bool;  (** may publish a cursor *)
  f_acquires : bool;  (** every path's first frame action is a load *)
}

(* Per-bit transition, unioned: the may-set transfer.  [emit] is a
   no-op while solving; the reporting pass passes a real sink. *)
let frame_apply lookup ~edge ~emit (ev : Cfg.event) state =
  if state = 0 then 0
  else
    match ev with
    | Cfg.Cursor_load _ -> st_open
    | Cfg.Plane { write = true; _ } ->
        if state land st_committed <> 0 then
          emit
            "frame plane written after the cursor publish: the consumer may \
             already own these bytes";
        (if state land st_committed <> 0 then st_committed else 0)
        lor
        if state land (st_start lor st_open lor st_written) <> 0 then st_written
        else 0
    | Cfg.Plane { write = false; _ } ->
        if state land st_committed <> 0 then
          emit
            "frame plane read after the cursor publish: the producer may \
             already be overwriting these bytes";
        state
    | Cfg.Cursor_store _ ->
        if state land st_committed <> 0 then
          emit "cursor published twice for the same frame acquisition";
        st_committed
    | Cfg.Call { parts; _ } when edge = `Normal -> (
        match lookup parts with
        | Some e when e.f_ring ->
            if e.f_commits && state land st_committed <> 0 && not e.f_acquires
            then
              emit
                "callee publishes the ring cursor again without re-acquiring: \
                 double commit across the call";
            if e.f_exits = 0 then state else e.f_exits
        | _ -> state)
    | _ -> state

let frame_lookup :
    (string list -> frame_effect option) ref =
  ref (fun _ -> None)

module Frame_lattice = struct
  type state = int

  let bottom = 0
  let entry = st_start
  let equal = Int.equal
  let join = ( lor )

  let transfer (node : Cfg.node) ~edge state =
    match node.Cfg.n_event with
    | Some ev -> frame_apply !frame_lookup ~edge ~emit:(fun _ -> ()) ev state
    | None -> state
end

module Frame_solver = Dataflow.Make (Frame_lattice)

(* Is every path's first frame action a cursor load?  Callers use this
   to decide whether a callee's commit rides on a fresh acquisition
   (write_frame reads [tail_local] before touching planes) or re-uses
   the caller's ([publish] just stores). *)
let frame_acquires_first lookup (g : Cfg.t) =
  let seen = Array.make (Array.length g.nodes) false in
  let ok = ref true in
  let rec go i =
    if not seen.(i) then begin
      seen.(i) <- true;
      let node = g.nodes.(i) in
      let stop =
        match node.Cfg.n_event with
        | Some (Cfg.Cursor_load _) -> true
        | Some (Cfg.Plane _ | Cfg.Cursor_store _) ->
            ok := false;
            true
        | Some (Cfg.Call { parts; _ }) -> (
            match lookup parts with
            | Some e when e.f_ring ->
                if not e.f_acquires then ok := false;
                true
            | _ -> false)
        | _ -> false
      in
      if not stop then begin
        List.iter go node.Cfg.n_succ;
        List.iter go node.Cfg.n_exn
      end
    end
  in
  go g.entry;
  !ok

let frame_effects program : (string * string * int, frame_effect) Hashtbl.t =
  let table = Hashtbl.create 64 in
  let defs = cfg_defs program in
  let changed = ref true in
  (* replace-semantics effects are not strictly monotone; cap the
     rounds so a pathological cycle degrades to approximate effects
     instead of hanging the lint *)
  let rounds = ref 0 in
  while !changed && !rounds < 16 do
    incr rounds;
    changed := false;
    List.iter
      (fun ((s : Summary.t), (d : Summary.def), (g : Cfg.t)) ->
        let lookup = resolve_effect program table ~from:s in
        frame_lookup := lookup;
        let r = Frame_solver.solve g in
        let own_ring = Cfg.has_ring_event g in
        let call_effects =
          Array.to_list g.Cfg.nodes
          |> List.filter_map (fun (n : Cfg.node) ->
                 match n.Cfg.n_event with
                 | Some (Cfg.Call { parts; _ }) -> lookup parts
                 | _ -> None)
        in
        let e =
          {
            f_ring = own_ring || List.exists (fun e -> e.f_ring) call_effects;
            f_exits = r.Frame_solver.at_exit;
            f_commits =
              Cfg.has_commit g || List.exists (fun e -> e.f_commits) call_effects;
            f_acquires = frame_acquires_first lookup g;
          }
        in
        let key = def_key s.Summary.s_file d in
        if Hashtbl.find_opt table key <> Some e then begin
          Hashtbl.replace table key e;
          changed := true
        end)
      defs
  done;
  table

let frame_violations program : violation list =
  let table = frame_effects program in
  let out = ref [] in
  List.iter
    (fun ((s : Summary.t), (d : Summary.def), (g : Cfg.t)) ->
      let lookup = resolve_effect program table ~from:s in
      let relevant =
        Cfg.has_ring_event g
        || Array.exists
             (fun (n : Cfg.node) ->
               match n.Cfg.n_event with
               | Some (Cfg.Call { parts; _ }) -> (
                   match lookup parts with Some e -> e.f_ring | None -> false)
               | _ -> false)
             g.Cfg.nodes
      in
      if relevant then begin
        frame_lookup := lookup;
        let r = Frame_solver.solve g in
        let add loc msg =
          out := { v_file = s.Summary.s_file; v_loc = sloc loc; v_msg = msg } :: !out
        in
        Array.iteri
          (fun i (n : Cfg.node) ->
            let st = r.Frame_solver.before.(i) in
            if st <> 0 then
              match n.Cfg.n_event with
              | Some (Cfg.Raise _)
                when st land st_written <> 0
                     && Cfg.has_commit g && Cfg.has_plane_write g ->
                  add n.Cfg.n_loc
                    "raise escapes with the frame written but the cursor never \
                     published: the bytes are silently dropped"
              | Some ev ->
                  ignore
                    (frame_apply lookup ~edge:`Normal
                       ~emit:(fun msg -> add n.Cfg.n_loc msg)
                       ev st)
              | None -> ())
          g.Cfg.nodes;
        (* every path out of a producer must publish: acquire -> write
           -> commit, with no Written exit *)
        if
          Cfg.has_commit g && Cfg.has_plane_write g
          && r.Frame_solver.at_exit land st_written <> 0
        then
          add
            { Cfg.line = d.Summary.d_loc.Summary.l_line;
              Cfg.col = d.Summary.d_loc.Summary.l_col }
            (Printf.sprintf
               "%s can return with the frame written but the cursor never \
                published: commit exactly once on every path" d.Summary.d_name)
      end)
    (cfg_defs program);
  dedup_violations !out

(* ==================== fd leaks ==================== *)

(* May-leak analysis: a binding whose RHS is a direct fd/channel maker
   is tracked until it is closed, escapes (stored, returned, captured,
   handed to an unknown callee), or is released by a {e resolved}
   callee whose own CFG closes/escapes that parameter.  Whatever is
   still tracked at an exit leaks there — and the exceptional exit is
   the interesting one: [openfile; ftruncate; close] leaks exactly when
   [ftruncate] raises, which is what [Fun.protect]'s duplicated
   [~finally] edge in the CFG certifies against. *)

let fd_makers =
  SSet.of_list
    [
      "Unix.openfile"; "Unix.socket"; "Unix.accept"; "Unix.pipe";
      "Unix.socketpair"; "Unix.dup"; "open_in"; "open_in_bin"; "open_out";
      "open_out_bin";
    ]

let fd_closers =
  SSet.of_list
    [ "Unix.close"; "close_in"; "close_out"; "close_in_noerr"; "close_out_noerr" ]

(* Calls that use an fd/channel without taking ownership.  Everything
   not listed here (and not resolved in-program) is assumed to take
   ownership — the quiet default. *)
let fd_transparent =
  SSet.of_list
    [
      "Unix.read"; "Unix.write"; "Unix.single_write"; "Unix.write_substring";
      "Unix.select"; "Unix.fstat"; "Unix.lseek"; "Unix.ftruncate";
      "Unix.set_nonblock"; "Unix.clear_nonblock"; "Unix.setsockopt";
      "Unix.getsockopt"; "Unix.map_file"; "Unix.listen"; "Unix.bind";
      "Unix.connect"; "Unix.getsockname"; "Unix.getpeername"; "Unix.send";
      "Unix.recv"; "Unix.sendto"; "Unix.recvfrom"; "Unix.set_close_on_exec";
      "Unix.fchmod"; "Unix.fsync"; "output_string"; "output_bytes";
      "output_char"; "output"; "output_value"; "output_binary_int"; "flush";
      "input"; "input_line"; "input_char"; "really_input";
      "really_input_string"; "input_binary_int"; "seek_in"; "seek_out";
      "pos_in"; "pos_out"; "in_channel_length"; "out_channel_length";
      "set_binary_mode_in"; "set_binary_mode_out"; "Printf.fprintf";
      "Format.fprintf"; "Marshal.to_channel"; "Marshal.from_channel";
      "Unix.in_channel_of_descr"; "Unix.out_channel_of_descr";
      (* plain value uses: comparisons etc. never take ownership *)
      "="; "<>"; "<"; ">"; "<="; ">="; "=="; "!="; "compare"; "ignore";
      "fst"; "snd"; "Some"; "min"; "max";
    ]

(* releases.(i) = calling this def relinquishes the caller's ownership
   of argument i (it is closed, or escapes, inside).  Computed to a
   fixpoint so a close two calls deep still counts. *)
let fd_release_effects program : (string * string * int, bool array) Hashtbl.t =
  let table = Hashtbl.create 64 in
  let defs = cfg_defs program in
  let changed = ref true in
  (* replace-semantics effects are not strictly monotone; cap the
     rounds so a pathological cycle degrades to approximate effects
     instead of hanging the lint *)
  let rounds = ref 0 in
  while !changed && !rounds < 16 do
    incr rounds;
    changed := false;
    List.iter
      (fun ((s : Summary.t), (d : Summary.def), (g : Cfg.t)) ->
        if d.Summary.d_params <> [] then begin
          let lookup = resolve_effect program table ~from:s in
          let released p =
            Array.exists
              (fun (n : Cfg.node) ->
                match n.Cfg.n_event with
                | Some (Cfg.Call { parts; args; _ }) ->
                    let name = dotted parts in
                    if SSet.mem name fd_closers then List.mem p args
                    else if SSet.mem name fd_transparent then false
                    else (
                      match lookup parts with
                      | Some callee_rel ->
                          List.exists
                            (fun (i, a) ->
                              a = p
                              && (i >= Array.length callee_rel || callee_rel.(i)))
                            (List.mapi (fun i a -> (i, a)) args)
                      | None -> List.mem p args)
                | Some (Cfg.Mention xs) -> List.mem p xs
                | _ -> false)
              g.Cfg.nodes
          in
          let e =
            Array.of_list (List.map released d.Summary.d_params)
          in
          let key = def_key s.Summary.s_file d in
          if Hashtbl.find_opt table key <> Some e then begin
            Hashtbl.replace table key e;
            changed := true
          end
        end)
      defs
  done;
  table

module Fd_lattice = struct
  type state = (string * Cfg.loc) SMap.t

  let bottom = SMap.empty
  let entry = SMap.empty

  let equal =
    SMap.equal (fun (m1, l1) (m2, l2) -> String.equal m1 m2 && l1 = l2)

  let join a b = SMap.union (fun _ x _ -> Some x) a b

  (* set per solve *)
  let lookup : (string list -> bool array option) ref = ref (fun _ -> None)

  let transfer (node : Cfg.node) ~edge state =
    match node.Cfg.n_event with
    | Some (Cfg.Bind { vars; src }) -> (
        let state = List.fold_left (fun m v -> SMap.remove v m) state vars in
        match (edge, src) with
        | `Normal, Cfg.Src_call parts when SSet.mem (dotted parts) fd_makers ->
            List.fold_left
              (fun m v -> SMap.add v (dotted parts, node.Cfg.n_loc) m)
              state vars
        | _ -> state)
    | Some (Cfg.Call { parts; args; _ }) ->
        let name = dotted parts in
        if SSet.mem name fd_closers then
          List.fold_left
            (fun m a -> if a = "" then m else SMap.remove a m)
            state args
        else if SSet.mem name fd_transparent then state
        else (
          match !lookup parts with
          | Some releases ->
              (* Ownership transfers at the call on both edges, like an
                 unknown call: the caller cannot fix a leak inside the
                 callee's own exception path. *)
              List.fold_left
                (fun (i, m) a ->
                  let m =
                    if a <> "" && (i >= Array.length releases || releases.(i))
                    then SMap.remove a m
                    else m
                  in
                  (i + 1, m))
                (0, state) args
              |> snd
          | None ->
              (* unknown call: assume ownership transfers *)
              List.fold_left
                (fun m a -> if a = "" then m else SMap.remove a m)
                state args)
    | Some (Cfg.Mention xs) ->
        List.fold_left (fun m x -> SMap.remove x m) state xs
    | Some (Cfg.Return paths) ->
        List.fold_left
          (fun m parts ->
            match parts with [ x ] -> SMap.remove x m | _ -> m)
          state paths
    | _ -> state
end

module Fd_solver = Dataflow.Make (Fd_lattice)

let fd_violations program : violation list =
  let releases = fd_release_effects program in
  let out = ref [] in
  List.iter
    (fun ((s : Summary.t), (d : Summary.def), (g : Cfg.t)) ->
      if d.Summary.d_is_fun then begin
        Fd_lattice.lookup := resolve_effect program releases ~from:s;
        let r = Fd_solver.solve g in
        let leak_normal = r.Fd_solver.at_exit in
        let leak_exn = r.Fd_solver.at_exit_exn in
        let add loc msg =
          out := { v_file = s.Summary.s_file; v_loc = sloc loc; v_msg = msg } :: !out
        in
        SMap.iter
          (fun var (maker, loc) ->
            add loc
              (Printf.sprintf
                 "%s opened by %s is not closed on some normal return path of \
                  %s" var maker d.Summary.d_name))
          leak_normal;
        SMap.iter
          (fun var (maker, loc) ->
            if not (SMap.mem var leak_normal) then
              add loc
                (Printf.sprintf
                   "%s opened by %s leaks when a later call in %s raises: \
                    close it under Fun.protect ~finally (the exception path \
                    skips the close)" var maker d.Summary.d_name))
          leak_exn
      end)
    (cfg_defs program);
  dedup_violations !out

(* ==================== lost wakeups ==================== *)

(* Two abstract states: Armed (the sleep word is published, so the
   peer may skip its wakeup) and Safe.  After arming, the guard must be
   re-read — the Dekker re-check — before any OS-level block; blocking
   while Armed is exactly the lost-wakeup race PR 2 fixed.  Re-reads
   are atomic-style guard loads and shared ring-cursor loads; clearing
   the sleep word also disarms. *)

let wk_safe = 1
let wk_armed = 2

type wakeup_effect = {
  w_from_safe : int;  (** exit bits when entered Safe *)
  w_from_armed : int;  (** exit bits when entered Armed *)
  w_blocks_armed : bool;  (** entered Armed, reaches a block still Armed *)
}

(* only loads of the shared mapped words re-check anything; the local
   cursor caches ([tail_local], [peer_head], ...) are private *)
let shared_cursor_word l = l = "tail_w" || l = "head_w"

let wakeup_apply lookup ~edge ~emit (ev : Cfg.event) state =
  if state = 0 then 0
  else
    match ev with
    | Cfg.Sleep_arm _ -> wk_armed
    | Cfg.Sleep_clear _ -> wk_safe
    | Cfg.Guard_load _ -> wk_safe
    | Cfg.Cursor_load l when shared_cursor_word l -> wk_safe
    | Cfg.Block prim ->
        if state land wk_armed <> 0 then
          emit
            (Printf.sprintf
               "%s blocks with the sleep word armed and no guard re-read in \
                between: a concurrent producer can observe the pre-arm guard \
                and skip the wakeup (lost-wakeup race)" prim);
        state
    | Cfg.Call { parts; _ } when edge = `Normal -> (
        match lookup parts with
        | Some e ->
            if e.w_blocks_armed && state land wk_armed <> 0 then
              emit
                (Printf.sprintf
                   "%s blocks with the sleep word armed and no guard re-read \
                    since arming: a concurrent producer can skip the wakeup \
                    (lost-wakeup race)" (dotted parts));
            (* Mapping Armed through a call: a callee that re-reads the
               shared guard on {e any} path counts as the Dekker
               re-check.  [available c]-style predicates read the
               cached cursor first and the shared word only on the
               short-circuit slow path; the block only ever happens on
               the not-available branch, which is the one that did the
               read.  Correlating returns with paths is out of scope,
               so take the optimistic bit. *)
            let from_armed =
              if e.w_from_armed land wk_safe <> 0 then wk_safe
              else e.w_from_armed
            in
            let next =
              (if state land wk_safe <> 0 then e.w_from_safe else 0)
              lor if state land wk_armed <> 0 then from_armed else 0
            in
            if next = 0 then state else next
        | None -> state)
    | _ -> state

let wakeup_lookup : (string list -> wakeup_effect option) ref =
  ref (fun _ -> None)

module Wakeup_lattice = struct
  type state = int

  let bottom = 0
  let entry = wk_safe
  let equal = Int.equal
  let join = ( lor )

  let transfer (node : Cfg.node) ~edge state =
    match node.Cfg.n_event with
    | Some ev -> wakeup_apply !wakeup_lookup ~edge ~emit:(fun _ -> ()) ev state
    | None -> state
end

module Wakeup_solver = Dataflow.Make (Wakeup_lattice)

let wakeup_effects program : (string * string * int, wakeup_effect) Hashtbl.t =
  let table = Hashtbl.create 64 in
  let defs = cfg_defs program in
  let changed = ref true in
  (* replace-semantics effects are not strictly monotone; cap the
     rounds so a pathological cycle degrades to approximate effects
     instead of hanging the lint *)
  let rounds = ref 0 in
  while !changed && !rounds < 16 do
    incr rounds;
    changed := false;
    List.iter
      (fun ((s : Summary.t), (d : Summary.def), (g : Cfg.t)) ->
        let lookup = resolve_effect program table ~from:s in
        wakeup_lookup := lookup;
        let safe = Wakeup_solver.solve ~init:wk_safe g in
        let armed = Wakeup_solver.solve ~init:wk_armed g in
        let blocks = ref false in
        Array.iteri
          (fun i (n : Cfg.node) ->
            let st = armed.Wakeup_solver.before.(i) in
            if st <> 0 then
              match n.Cfg.n_event with
              | Some ev ->
                  ignore
                    (wakeup_apply lookup ~edge:`Normal
                       ~emit:(fun _ -> blocks := true)
                       ev st)
              | None -> ())
          g.Cfg.nodes;
        let e =
          {
            w_from_safe = safe.Wakeup_solver.at_exit;
            w_from_armed = armed.Wakeup_solver.at_exit;
            w_blocks_armed = !blocks;
          }
        in
        let key = def_key s.Summary.s_file d in
        if Hashtbl.find_opt table key <> Some e then begin
          Hashtbl.replace table key e;
          changed := true
        end)
      defs
  done;
  table

let wakeup_violations program : violation list =
  let table = wakeup_effects program in
  let out = ref [] in
  List.iter
    (fun ((s : Summary.t), (_d : Summary.def), (g : Cfg.t)) ->
      let lookup = resolve_effect program table ~from:s in
      wakeup_lookup := lookup;
      let r = Wakeup_solver.solve ~init:wk_safe g in
      Array.iteri
        (fun i (n : Cfg.node) ->
          let st = r.Wakeup_solver.before.(i) in
          if st <> 0 then
            match n.Cfg.n_event with
            | Some ev ->
                ignore
                  (wakeup_apply lookup ~edge:`Normal
                     ~emit:(fun msg ->
                       out :=
                         {
                           v_file = s.Summary.s_file;
                           v_loc = sloc n.Cfg.n_loc;
                           v_msg = msg;
                         }
                         :: !out)
                     ev st)
            | None -> ())
        g.Cfg.nodes)
    (cfg_defs program);
  dedup_violations !out
