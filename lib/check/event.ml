(** Recorded atomic-operation events.

    The tracing shim ({!Sched.Atomic}) appends one event per
    load/store/CAS/fetch-and-add it executes, tagged with the simulated
    thread that performed it and the location (cell) it touched.  The
    DPOR scheduler uses the (location, access-class) pair to decide
    which operations are dependent; the {!Race} detector replays the
    whole list through vector clocks. *)

type kind =
  | Make  (** cell creation (an initialising write) *)
  | Get
  | Set
  | Exchange
  | Cas of bool  (** compare-and-set; [true] = it took effect *)
  | Fetch_add
  | Wake  (** a blocked thread resumed; touches no location *)

(** How a [kind] acts on memory, for dependency and happens-before
    purposes.  A failed CAS only observed the cell: it is a read. *)
type access = Read | Write | Rmw

let access_of_kind = function
  | Make | Set -> Write
  | Get | Cas false -> Read
  | Exchange | Cas true | Fetch_add -> Rmw
  | Wake -> Read

let kind_label = function
  | Make -> "make"
  | Get -> "get"
  | Set -> "set"
  | Exchange -> "exchange"
  | Cas true -> "cas(ok)"
  | Cas false -> "cas(fail)"
  | Fetch_add -> "fetch&add"
  | Wake -> "wake"

type t = {
  step : int;  (** scheduler step at which the op executed *)
  thread : int;  (** simulated thread id; -1 = scenario setup, -2 = final check *)
  thread_name : string;
  loc : int;  (** unique cell id; -1 for {!Wake} *)
  loc_name : string;
  kind : kind;
  repr : string;  (** human-readable op summary, values included when known *)
}

(** Two events are dependent iff they touch the same location and at
    least one writes it — the commutativity criterion DPOR reduces by. *)
let dependent a b =
  a.loc >= 0 && a.loc = b.loc
  && not (access_of_kind a.kind = Read && access_of_kind b.kind = Read)

let pp ppf e =
  if e.loc >= 0 then
    Format.fprintf ppf "[%3d] %-10s %-10s %s" e.step e.thread_name e.loc_name
      e.repr
  else Format.fprintf ppf "[%3d] %-10s %s" e.step e.thread_name e.repr

let pp_trace ppf (events : t list) =
  List.iter (fun e -> Format.fprintf ppf "%a@\n" pp e) events

let to_string_trace events = Format.asprintf "%a" pp_trace events
