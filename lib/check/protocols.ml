(** The executor's lock-free protocols as model-checking scenarios,
    plus deliberately broken mutants the checker must catch.

    Three protocol families, matching the paper's executor design:

    - {b Chase–Lev deque} (Sec. IV-A.2): push/pop/steal consume every
      element exactly once even when the owner's pop races a steal for
      the last element.  The real {!Repro_deque.Ws_deque} code is
      instantiated with the tracing shim — the checker explores the
      production algorithm, not a model of it.
    - {b Future claim} (eager black-holing, Sec. IV-A.3): the
      Todo→Running CAS makes claiming atomic with starting evaluation,
      so two forcers plus a stealing worker evaluate the body exactly
      once; forcers help run queued sparks while waiting.  Again the
      real {!Repro_exec.Future} functor, paired with a deterministic
      model pool.
    - {b Pool park/unpark handshake}: a distilled model of
      [Pool.park]/[Pool.signal_work] — announce sleeper, snapshot the
      wake generation, re-check, wait on [tasks or generation change].
      The mutant that re-checks {e before} announcing loses the wakeup
      and deadlocks, which the checker reports with the interleaving.
    - {b Fiber suspend/resume handshake}: the real
      {!Repro_fiber.Promise} functor over traced atomics — a fiber
      parking on a promise races the fulfiller through [add_waiter]'s
      CAS waiter list (either the cons lands before the resolve, or the
      retry observes the resolved state and self-runs), and the
      once-wrapped resume survives racing wakers (fulfil vs cancel).
      The resume-before-park mutant publishes the parked resume after
      its emptiness check, exactly the window the CAS list closes, and
      sleeps forever on a promise that is already resolved.
    - {b SPSC ring} (the shm transport's frame handshake): the real
      {!Repro_dist.Shm_ring.Spsc} functor over traced control words —
      write the slot {e then} publish the tail; observe, read, {e then}
      release.  Explored at capacity 1 (every push wraps and waits on
      backpressure) and capacity 2 (producer and consumer overlap).
      The mutant that publishes the tail before the slot holds the
      value hands the consumer a stale slot — the exact reordering the
      production ring's fences forbid.

    The mutants are distilled (small named cells) so their violation
    traces read as a story. *)

module D = Repro_deque.Ws_deque.Make (Sched.Atomic)

exception Boom

type expectation = Must_pass | Must_fail

type config = {
  cname : string;
  descr : string;
  expect : expectation;
  scenario : unit -> (string * (unit -> unit)) list * (unit -> unit);
}

let run ?on_trace (c : config) =
  Sched.check ?on_trace ~name:c.cname c.scenario

let verdict (c : config) (r : Sched.result) =
  match (c.expect, r) with
  | Must_pass, Sched.Pass _ | Must_fail, Sched.Fail _ -> true
  | Must_pass, Sched.Fail _ | Must_fail, Sched.Pass _ -> false

(* ------------------------------------------------------------------ *)
(* Chase–Lev deque                                                     *)
(* ------------------------------------------------------------------ *)

let pp_consumed got =
  Printf.sprintf "[%s]" (String.concat "; " (List.map string_of_int got))

(* Owner pops toward empty while a thief steals: the last element is
   decided by the CAS race on [top]; nothing may be lost or duplicated. *)
let deque_owner_vs_thief () =
  let q = D.create () in
  D.push q 1;
  D.push q 2;
  let popped = ref [] in
  let stolen = ref None in
  ( [
      ( "owner",
        fun () ->
          (match D.pop q with Some v -> popped := v :: !popped | None -> ());
          match D.pop q with Some v -> popped := v :: !popped | None -> () );
      ("thief", fun () -> stolen := D.steal q);
    ],
    fun () ->
      let got =
        List.sort compare
          (!popped @ Option.to_list !stolen @ D.drain q)
      in
      if got <> [ 1; 2 ] then
        failwith
          (Printf.sprintf "elements consumed %s, want each of 1,2 exactly once"
             (pp_consumed got)) )

(* Two thieves racing each other and the owner (who also pushes mid-run,
   exercising the bottom/top protocol from both ends). *)
let deque_two_thieves () =
  let q = D.create () in
  D.push q 1;
  D.push q 2;
  let po = ref None and s1 = ref None and s2 = ref None in
  ( [
      ( "owner",
        fun () ->
          D.push q 3;
          po := D.pop q );
      ("thief1", fun () -> s1 := D.steal q);
      ("thief2", fun () -> s2 := D.steal q);
    ],
    fun () ->
      let got =
        List.sort compare
          (List.concat_map Option.to_list [ !po; !s1; !s2 ] @ D.drain q)
      in
      if got <> [ 1; 2; 3 ] then
        failwith
          (Printf.sprintf
             "elements consumed %s, want each of 1,2,3 exactly once"
             (pp_consumed got)) )

(* Mutant: a distilled deque whose owner takes the LAST element without
   racing the CAS on [top] — the exact window Chase–Lev's pop closes.
   A thief that read [top] before the owner's decrement of [bottom]
   consumes the same element again. *)
let deque_missing_cas_mutant () =
  let top = Sched.Atomic.make 0 in
  let bottom = Sched.Atomic.make 1 in
  let taken = Sched.Atomic.make 0 in
  Sched.set_name top "top";
  Sched.set_name bottom "bottom";
  Sched.set_name taken "taken";
  List.iter
    (fun c -> Sched.set_printer c string_of_int)
    [ top; bottom; taken ];
  let pop () =
    let b = Sched.Atomic.get bottom - 1 in
    Sched.Atomic.set bottom b;
    let t = Sched.Atomic.get top in
    if b - t >= 0 then
      (* BUG: last element taken with no compare_and_set on top *)
      Sched.Atomic.incr taken
    else Sched.Atomic.set bottom t
  in
  let steal () =
    let t = Sched.Atomic.get top in
    let b = Sched.Atomic.get bottom in
    if b - t > 0 then
      if Sched.Atomic.compare_and_set top t (t + 1) then
        Sched.Atomic.incr taken
  in
  ( [ ("owner", pop); ("thief", steal) ],
    fun () ->
      let n = Sched.Atomic.get taken in
      if n <> 1 then
        failwith
          (Printf.sprintf "single element consumed %d times (want 1)" n) )

(* ------------------------------------------------------------------ *)
(* Future claim protocol (eager black-holing)                          *)
(* ------------------------------------------------------------------ *)

(* Deterministic model pool for the Future functor: a traced atomic
   holding the runner queue, help = CAS-pop + run, and idle_wait blocks
   the simulated thread on the future's completion predicate. *)
module type MODEL_POOL = sig
  include Repro_exec.Future.POOL_BACKEND with type ctx = unit

  val help_all : unit -> unit
end

let model_pool () : (module MODEL_POOL) =
  let queue : (unit -> unit) list Sched.Atomic.t = Sched.Atomic.make [] in
  Sched.set_name queue "runq";
  Sched.set_printer queue (fun q ->
      Printf.sprintf "<%d runner(s)>" (List.length q));
  (module struct
    type ctx = unit

    let current () = Some ()

    let push () task =
      let rec go () =
        let q = Sched.Atomic.get queue in
        if not (Sched.Atomic.compare_and_set queue q (task :: q)) then go ()
      in
      go ()

    let help () =
      let rec go () =
        match Sched.Atomic.get queue with
        | [] -> false
        | task :: rest as q ->
            if Sched.Atomic.compare_and_set queue q rest then begin
              task ();
              true
            end
            else go ()
      in
      go ()

    let help_all () = while help () do () done
    let note_run () = ()
    let note_fizzle () = ()

    (* trace hooks: the model pool records nothing *)
    let note_eval_begin () = ()
    let note_eval_end () = ()
    let note_force () = ()

    let idle_wait done_ idle =
      Sched.wait_until done_;
      idle
  end)

(* Two forcers race a stealing worker for one sparked future: the
   Todo→Running CAS must admit exactly one evaluation, and both forcers
   must observe the value. *)
let future_exactly_once () =
  let module P = (val model_pool ()) in
  let module F = Repro_exec.Future.Make (Sched.Atomic) (P) in
  let evals = Sched.Atomic.make 0 in
  Sched.set_name evals "evals";
  Sched.set_printer evals string_of_int;
  let fut =
    F.spark (fun () ->
        Sched.Atomic.incr evals;
        42)
  in
  let r1 = ref 0 and r2 = ref 0 in
  ( [
      ("forcer1", fun () -> r1 := F.force fut);
      ("forcer2", fun () -> r2 := F.force fut);
      ("worker", fun () -> ignore (P.help ()));
    ],
    fun () ->
      let e = Sched.Atomic.get evals in
      if e <> 1 then
        failwith (Printf.sprintf "body evaluated %d times (want exactly 1)" e);
      if !r1 <> 42 || !r2 <> 42 then
        failwith
          (Printf.sprintf "forcers observed %d and %d (want 42)" !r1 !r2) )

(* A forcer needing two sparked futures helps run queued sparks while
   the worker holds one of them Running. *)
let future_help_while_waiting () =
  let module P = (val model_pool ()) in
  let module F = Repro_exec.Future.Make (Sched.Atomic) (P) in
  let e1 = Sched.Atomic.make 0 and e2 = Sched.Atomic.make 0 in
  Sched.set_name e1 "evals1";
  Sched.set_name e2 "evals2";
  let f1 =
    F.spark (fun () ->
        Sched.Atomic.incr e1;
        1)
  in
  let f2 =
    F.spark (fun () ->
        Sched.Atomic.incr e2;
        2)
  in
  let r = ref 0 in
  ( [
      ("forcer", fun () -> r := F.force f1 + F.force f2);
      ("worker", fun () -> P.help_all ());
    ],
    fun () ->
      if !r <> 3 then failwith (Printf.sprintf "forcer computed %d, want 3" !r);
      let a = Sched.Atomic.get e1 and b = Sched.Atomic.get e2 in
      if a <> 1 || b <> 1 then
        failwith
          (Printf.sprintf "bodies evaluated %d and %d times (want 1 and 1)" a b)
  )

(* An exception raised by the sparked body must surface wherever the
   future is forced, even when a stealing worker ran the body. *)
let future_exception () =
  let module P = (val model_pool ()) in
  let module F = Repro_exec.Future.Make (Sched.Atomic) (P) in
  let fut = F.spark (fun () : int -> raise Boom) in
  let ok = ref false in
  ( [
      ( "forcer",
        fun () ->
          match F.force fut with
          | _ -> ()
          | exception Boom -> ok := true );
      ("worker", fun () -> ignore (P.help ()));
    ],
    fun () ->
      if not !ok then failwith "Boom did not propagate to the forcer" )

(* Mutant: lazy black-holing — claim by plain read-then-write instead
   of CAS (the simulator's unsynchronised window; the paper's Sec.
   IV-A.3 discussion of duplicate evaluation).  Two forcers can both
   read Todo before either writes Running and evaluate twice; the race
   detector additionally flags the unordered writes to [state]. *)
let future_lazy_blackhole_mutant () =
  let state = Sched.Atomic.make `Todo in
  let evals = Sched.Atomic.make 0 in
  Sched.set_name state "state";
  Sched.set_printer state (function
    | `Todo -> "Todo"
    | `Running -> "Running"
    | `Done -> "Done");
  Sched.set_name evals "evals";
  Sched.set_printer evals string_of_int;
  let claim () =
    match Sched.Atomic.get state with
    | `Todo ->
        (* BUG: the read above and this write are not one atomic step *)
        Sched.Atomic.set state `Running;
        Sched.Atomic.incr evals;
        Sched.Atomic.set state `Done
    | `Running | `Done -> ()
  in
  ( [ ("forcer1", claim); ("forcer2", claim) ],
    fun () ->
      let e = Sched.Atomic.get evals in
      if e <> 1 then
        failwith (Printf.sprintf "body evaluated %d times (want exactly 1)" e)
  )

(* ------------------------------------------------------------------ *)
(* Pool park/unpark handshake                                          *)
(* ------------------------------------------------------------------ *)

(* Distilled [Pool.park] / [Pool.signal_work]: the worker announces
   itself a sleeper, snapshots the wake generation, re-checks for work,
   and waits on [work present or generation changed]; the pusher makes
   work visible first, then wakes if it sees a sleeper.  Every
   interleaving must end with the task consumed. *)
let pool_handshake () =
  let tasks = Sched.Atomic.make 0 in
  let sleepers = Sched.Atomic.make 0 in
  let wake_gen = Sched.Atomic.make 0 in
  let taken = Sched.Atomic.make 0 in
  Sched.set_name tasks "tasks";
  Sched.set_name sleepers "sleepers";
  Sched.set_name wake_gen "wake_gen";
  Sched.set_name taken "taken";
  List.iter
    (fun c -> Sched.set_printer c string_of_int)
    [ tasks; sleepers; wake_gen; taken ];
  let rec take () =
    let n = Sched.Atomic.get tasks in
    if n > 0 then begin
      if Sched.Atomic.compare_and_set tasks n (n - 1) then
        Sched.Atomic.incr taken
      else take ()
    end
    else begin
      Sched.Atomic.incr sleepers;
      let g = Sched.Atomic.get wake_gen in
      (* Final re-check *after* announcing the sleeper, as Pool.park *)
      if Sched.Atomic.get tasks = 0 then
        Sched.wait_until (fun () ->
            Sched.Atomic.get tasks > 0 || Sched.Atomic.get wake_gen <> g);
      Sched.Atomic.decr sleepers;
      take ()
    end
  in
  let pusher () =
    Sched.Atomic.incr tasks;
    if Sched.Atomic.get sleepers > 0 then Sched.Atomic.incr wake_gen
  in
  ( [ ("worker", take); ("pusher", pusher) ],
    fun () ->
      let k = Sched.Atomic.get taken in
      if k <> 1 then failwith (Printf.sprintf "task taken %d times (want 1)" k)
  )

(* Mutant: check-then-park — the worker re-checks for work *before*
   announcing itself as a sleeper and waits on a wake flag only.  The
   pusher can read [sleepers = 0] in the window between the worker's
   check and its announcement, skip the wake, and the worker sleeps
   forever on a task that is already there: the classic lost wakeup,
   reported as a deadlock. *)
let pool_lost_wakeup_mutant () =
  let tasks = Sched.Atomic.make 0 in
  let sleepers = Sched.Atomic.make 0 in
  let woken = Sched.Atomic.make 0 in
  let taken = Sched.Atomic.make 0 in
  Sched.set_name tasks "tasks";
  Sched.set_name sleepers "sleepers";
  Sched.set_name woken "woken";
  Sched.set_name taken "taken";
  List.iter
    (fun c -> Sched.set_printer c string_of_int)
    [ tasks; sleepers; woken; taken ];
  let worker () =
    if Sched.Atomic.get tasks = 0 then begin
      (* BUG: sleeper announced after the emptiness check; wait ignores
         the task count *)
      Sched.Atomic.incr sleepers;
      Sched.wait_until (fun () -> Sched.Atomic.get woken > 0);
      Sched.Atomic.decr sleepers
    end;
    let n = Sched.Atomic.get tasks in
    if n > 0 then
      if Sched.Atomic.compare_and_set tasks n (n - 1) then
        Sched.Atomic.incr taken
  in
  let pusher () =
    Sched.Atomic.incr tasks;
    if Sched.Atomic.get sleepers > 0 then Sched.Atomic.incr woken
  in
  ( [ ("worker", worker); ("pusher", pusher) ],
    fun () ->
      let k = Sched.Atomic.get taken in
      if k <> 1 then failwith (Printf.sprintf "task taken %d times (want 1)" k)
  )

(* ------------------------------------------------------------------ *)
(* Fiber suspend/resume handshake (promise park vs fulfil)             *)
(* ------------------------------------------------------------------ *)

(* The production promise code under the DPOR scheduler.  [Pr.t]'s
   single CAS state word is what the fiber runtime parks on. *)
module Pr = Repro_fiber.Promise.Make (Sched.Atomic)

(* A fiber parks on a pending promise while the fulfiller races it:
   the distilled [Fiber.await] path — peek, register the resume via
   add_waiter, wait for the wakeup.  add_waiter's CAS either lands the
   cons before the resolver's transition (the resolver runs it) or its
   retry observes the resolved state and runs the callback itself, so
   the wakeup must arrive in every interleaving. *)
let promise_park_vs_fulfil () =
  let p : int Pr.t = Pr.create () in
  let woken = Sched.Atomic.make 0 in
  let got = Sched.Atomic.make 0 in
  Sched.set_name woken "woken";
  Sched.set_name got "got";
  List.iter (fun c -> Sched.set_printer c string_of_int) [ woken; got ];
  ( [
      ( "fiber",
        fun () ->
          (match Pr.peek p with
          | Some _ -> Sched.Atomic.incr woken
          | None -> Pr.add_waiter p (fun () -> Sched.Atomic.incr woken));
          Sched.wait_until (fun () -> Sched.Atomic.get woken > 0);
          match Pr.peek p with
          | Some (Ok v) -> Sched.Atomic.set got v
          | _ -> () );
      ("fulfiller", fun () -> ignore (Pr.try_fulfil p 42));
    ],
    fun () ->
      let w = Sched.Atomic.get woken in
      if w <> 1 then
        failwith (Printf.sprintf "wakeup delivered %d times (want 1)" w);
      let v = Sched.Atomic.get got in
      if v <> 42 then
        failwith (Printf.sprintf "fiber observed %d after wakeup (want 42)" v)
  )

(* Two fibers park on the same promise; both must be woken with the
   value no matter how their registrations interleave with the
   resolution. *)
let promise_multi_waiter () =
  let p : int Pr.t = Pr.create () in
  let w1 = Sched.Atomic.make 0 and w2 = Sched.Atomic.make 0 in
  Sched.set_name w1 "woken1";
  Sched.set_name w2 "woken2";
  List.iter (fun c -> Sched.set_printer c string_of_int) [ w1; w2 ];
  let waiter cell () =
    (match Pr.peek p with
    | Some _ -> Sched.Atomic.incr cell
    | None -> Pr.add_waiter p (fun () -> Sched.Atomic.incr cell));
    Sched.wait_until (fun () -> Sched.Atomic.get cell > 0)
  in
  ( [
      ("fiber1", waiter w1);
      ("fiber2", waiter w2);
      ("fulfiller", fun () -> ignore (Pr.try_fulfil p 7));
    ],
    fun () ->
      let a = Sched.Atomic.get w1 and b = Sched.Atomic.get w2 in
      if a <> 1 || b <> 1 then
        failwith
          (Printf.sprintf "waiters woken %d and %d times (want 1 and 1)" a b)
  )

(* Racing resolvers: exactly one try_fulfil wins, and a pre-registered
   waiter runs exactly once (the winner runs the captured list; the
   loser must not re-run it). *)
let promise_double_fulfil () =
  let p : int Pr.t = Pr.create () in
  let wins = Sched.Atomic.make 0 in
  let fired = Sched.Atomic.make 0 in
  Sched.set_name wins "wins";
  Sched.set_name fired "fired";
  List.iter (fun c -> Sched.set_printer c string_of_int) [ wins; fired ];
  Pr.add_waiter p (fun () -> Sched.Atomic.incr fired);
  let resolver v () =
    if Pr.try_fulfil p v then Sched.Atomic.incr wins
  in
  ( [ ("fulfiller1", resolver 1); ("fulfiller2", resolver 2) ],
    fun () ->
      let w = Sched.Atomic.get wins and f = Sched.Atomic.get fired in
      if w <> 1 then
        failwith (Printf.sprintf "%d resolvers won the CAS (want 1)" w);
      if f <> 1 then
        failwith (Printf.sprintf "waiter callback ran %d times (want 1)" f) )

(* The cancel-vs-fulfil race on one parked fiber: both wakers fire the
   same once-wrapped resume; the continuation must be resumed exactly
   once (one-shot continuations make a double resume a crash in
   production). *)
let promise_once_resume () =
  let resumed = Sched.Atomic.make 0 in
  Sched.set_name resumed "resumed";
  Sched.set_printer resumed string_of_int;
  let resume = Pr.once (fun () -> Sched.Atomic.incr resumed) in
  ( [ ("fulfiller", fun () -> resume ()); ("canceller", fun () -> resume ()) ],
    fun () ->
      let r = Sched.Atomic.get resumed in
      if r <> 1 then
        failwith (Printf.sprintf "continuation resumed %d times (want 1)" r) )

(* Mutant: resume-before-park.  The suspending fiber publishes its
   parked resume *after* checking the promise, and the fulfiller looks
   for a parked fiber instead of going through the waiter-list CAS.  A
   resolution landing in the window between the fiber's check and its
   park sees no parked resume, skips the wake, and the fiber sleeps
   forever on a promise that is already resolved — the lost wakeup the
   production order (publish, register via CAS list, then re-check)
   makes impossible. *)
let promise_resume_before_park_mutant () =
  let resolved = Sched.Atomic.make 0 in
  let parked = Sched.Atomic.make 0 in
  let woken = Sched.Atomic.make 0 in
  Sched.set_name resolved "resolved";
  Sched.set_name parked "parked";
  Sched.set_name woken "woken";
  List.iter
    (fun c -> Sched.set_printer c string_of_int)
    [ resolved; parked; woken ];
  let fiber () =
    if Sched.Atomic.get resolved = 0 then begin
      (* BUG: the park is published after the emptiness check; a
         fulfiller scheduled into this window has already been and
         gone *)
      Sched.Atomic.incr parked;
      Sched.wait_until (fun () -> Sched.Atomic.get woken > 0)
    end
  in
  let fulfiller () =
    Sched.Atomic.incr resolved;
    if Sched.Atomic.get parked > 0 then Sched.Atomic.incr woken
  in
  ( [ ("fiber", fiber); ("fulfiller", fulfiller) ],
    fun () ->
      if Sched.Atomic.get resolved <> 1 then failwith "promise not resolved" )

(* ------------------------------------------------------------------ *)
(* SPSC ring (shm transport frame handshake)                           *)
(* ------------------------------------------------------------------ *)

(* The production handshake itself: [Shm_ring]'s [Spsc] functor
   instantiated with traced cells as the control words and a plain
   array as the (unfenced) slot storage — exactly the production
   shape, where the data frames are plain mapped memory and only
   head/tail are control words. *)
module Spsc_word = struct
  type t = int Sched.Atomic.t

  let load = Sched.Atomic.get
  let store = Sched.Atomic.set
end

module Ring = Repro_dist.Shm_ring.Spsc (Spsc_word)

let make_ring cap =
  let tail = Sched.Atomic.make 0 and head = Sched.Atomic.make 0 in
  Sched.set_name tail "tail";
  Sched.set_name head "head";
  List.iter (fun c -> Sched.set_printer c string_of_int) [ tail; head ];
  let slots = Array.make cap 0 in
  Ring.create ~cap ~tail ~head ~get:(Array.get slots) ~set:(Array.set slots)

(* Blocking in SPSC terms: each side waits (read-only predicate, as
   [wait_until] requires) until its operation cannot fail — sound
   because it is the only pusher resp. popper. *)
let push_block r v =
  Sched.wait_until (fun () -> Ring.length r < r.Ring.cap);
  if not (Ring.try_push r v) then failwith "push failed below capacity"

let pop_block r =
  Sched.wait_until (fun () -> Ring.length r > 0);
  match Ring.try_pop r with
  | Some v -> v
  | None -> failwith "pop failed on non-empty ring"

let spsc_scenario ~cap ~values () =
  let r = make_ring cap in
  let got = ref [] and ngot = ref 0 in
  let record v =
    got := v :: !got;
    incr ngot
  in
  ( [
      ("producer", fun () -> List.iter (fun v -> push_block r v) values);
      ( "consumer",
        fun () ->
          (* eager probe that may catch the ring still empty: keeps
             the schedule genuinely branching even at capacity 1,
             where the blocking waits otherwise force one alternation *)
          (match Ring.try_pop r with Some v -> record v | None -> ());
          while !ngot < List.length values do
            record (pop_block r)
          done );
    ],
    fun () ->
      let got = List.rev !got in
      if got <> values then
        failwith
          (Printf.sprintf "consumed %s, want %s in order" (pp_consumed got)
             (pp_consumed values));
      if Ring.length r <> 0 then failwith "ring not empty at the end" )

(* cap 1: the cursors lap the ring on every element, so each push
   waits out backpressure and each slot index is reused. *)
let spsc_wrap () = spsc_scenario ~cap:1 ~values:[ 1; 2; 3 ] ()

(* cap 2: producer and consumer genuinely overlap inside the ring. *)
let spsc_overlap () = spsc_scenario ~cap:2 ~values:[ 1; 2; 3 ] ()

(* Mutant: the push publishes the new tail *before* the slot holds the
   value.  A consumer scheduled into that window observes the bumped
   tail, reads the stale slot, and hands out a value that was never
   pushed — the reordering [Shm_ring.write_frame]'s
   publish-after-write discipline (and its fence) forbids. *)
let spsc_publish_before_write_mutant () =
  let cap = 2 in
  let tail = Sched.Atomic.make 0 and head = Sched.Atomic.make 0 in
  let slots = Array.init cap (fun _ -> Sched.Atomic.make 0) in
  Sched.set_name tail "tail";
  Sched.set_name head "head";
  Array.iteri (fun i c -> Sched.set_name c (Printf.sprintf "slot%d" i)) slots;
  List.iter
    (fun c -> Sched.set_printer c string_of_int)
    (tail :: head :: Array.to_list slots);
  let push v =
    let t = Sched.Atomic.get tail in
    (* BUG: tail published first; the slot write races the consumer *)
    Sched.Atomic.set tail (t + 1);
    Sched.Atomic.set slots.(t mod cap) v
  in
  let pop_block () =
    Sched.wait_until
      (fun () -> Sched.Atomic.get tail - Sched.Atomic.get head > 0);
    let h = Sched.Atomic.get head in
    let v = Sched.Atomic.get slots.(h mod cap) in
    Sched.Atomic.set head (h + 1);
    v
  in
  let got = ref [] in
  ( [
      ( "producer",
        fun () ->
          push 1;
          push 2 );
      ( "consumer",
        fun () ->
          got := pop_block () :: !got;
          got := pop_block () :: !got );
    ],
    fun () ->
      let got = List.rev !got in
      if got <> [ 1; 2 ] then
        failwith
          (Printf.sprintf "consumed %s, want [1; 2] in order" (pp_consumed got))
  )

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let protocols =
  [
    {
      cname = "deque-owner-vs-thief";
      descr = "Chase-Lev: owner pops to empty racing one thief (real code)";
      expect = Must_pass;
      scenario = deque_owner_vs_thief;
    };
    {
      cname = "deque-two-thieves";
      descr = "Chase-Lev: owner push+pop racing two thieves (real code)";
      expect = Must_pass;
      scenario = deque_two_thieves;
    };
    {
      cname = "future-exactly-once";
      descr = "eager black-hole CAS: 2 forcers + stealing worker, 1 eval";
      expect = Must_pass;
      scenario = future_exactly_once;
    };
    {
      cname = "future-help-while-waiting";
      descr = "forcer helps run queued sparks while its future is Running";
      expect = Must_pass;
      scenario = future_help_while_waiting;
    };
    {
      cname = "future-exception";
      descr = "sparked body's exception surfaces at force";
      expect = Must_pass;
      scenario = future_exception;
    };
    {
      cname = "pool-park-handshake";
      descr = "sleeper/wake_gen park protocol: task always consumed";
      expect = Must_pass;
      scenario = pool_handshake;
    };
    {
      cname = "promise-park-vs-fulfil";
      descr = "fiber parks on promise racing the fulfiller (real code)";
      expect = Must_pass;
      scenario = promise_park_vs_fulfil;
    };
    {
      cname = "promise-multi-waiter";
      descr = "two fibers park on one promise: both woken with the value";
      expect = Must_pass;
      scenario = promise_multi_waiter;
    };
    {
      cname = "promise-double-fulfil";
      descr = "racing resolvers: one CAS winner, waiter runs exactly once";
      expect = Must_pass;
      scenario = promise_double_fulfil;
    };
    {
      cname = "promise-once-resume";
      descr = "fulfil vs cancel race one once-wrapped resume: fires once";
      expect = Must_pass;
      scenario = promise_once_resume;
    };
    {
      cname = "spsc-ring-wrap";
      descr = "shm SPSC ring at cap 1: FIFO through full wrap-around (real code)";
      expect = Must_pass;
      scenario = spsc_wrap;
    };
    {
      cname = "spsc-ring-overlap";
      descr = "shm SPSC ring at cap 2: producer/consumer overlap (real code)";
      expect = Must_pass;
      scenario = spsc_overlap;
    };
  ]

let mutants =
  [
    {
      cname = "mutant-deque-missing-cas";
      descr = "pop takes last element without CAS: duplicate consumption";
      expect = Must_fail;
      scenario = deque_missing_cas_mutant;
    };
    {
      cname = "mutant-lazy-blackhole";
      descr = "claim by read-then-write: double evaluation";
      expect = Must_fail;
      scenario = future_lazy_blackhole_mutant;
    };
    {
      cname = "mutant-lost-wakeup";
      descr = "check-then-park: pusher misses sleeper, worker deadlocks";
      expect = Must_fail;
      scenario = pool_lost_wakeup_mutant;
    };
    {
      cname = "mutant-promise-resume-before-park";
      descr = "fiber parks after its check: fulfiller misses it, lost wakeup";
      expect = Must_fail;
      scenario = promise_resume_before_park_mutant;
    };
    {
      cname = "mutant-spsc-publish-before-write";
      descr = "ring push publishes tail before the slot: stale read";
      expect = Must_fail;
      scenario = spsc_publish_before_write_mutant;
    };
  ]

let all = protocols @ mutants

let find name =
  match List.find_opt (fun c -> c.cname = name) all with
  | Some c -> c
  | None -> invalid_arg ("Protocols.find: unknown config " ^ name)
