(** Model-checking scenarios for the executor's lock-free protocols
    (Chase–Lev deque, Future eager-black-hole claim, Pool park/unpark
    handshake) and deliberately broken mutants the checker must catch.
    See [protocols.ml] for the scenario descriptions. *)

exception Boom
(** Raised by the body in the future-exception scenario. *)

type expectation =
  | Must_pass  (** a real protocol: every interleaving satisfies the check *)
  | Must_fail  (** a seeded bug: the checker must find a violating schedule *)

type config = {
  cname : string;
  descr : string;
  expect : expectation;
  scenario : unit -> (string * (unit -> unit)) list * (unit -> unit);
}

val run : ?on_trace:(Event.t list -> unit) -> config -> Sched.result
(** Explore the config exhaustively with {!Sched.check}. *)

val verdict : config -> Sched.result -> bool
(** Did the result match the config's expectation? *)

val protocols : config list  (** the real protocols ([Must_pass]) *)

val mutants : config list  (** the seeded bugs ([Must_fail]) *)

val all : config list

val find : string -> config
(** Look a config up by [cname]; raises [Invalid_argument] if absent. *)
