(** FastTrack-style vector-clock happens-before analysis over recorded
    traces (Flanagan & Freund, PLDI 2009, adapted to a pure-atomics
    setting).

    Every cell in these protocols is an atomic, so classical "data
    race = undefined behaviour" does not apply; what the detector flags
    is the *protocol* smell that atomics make easy to write: two plain
    writes to the same cell that are not ordered by happens-before.  In
    a correct lock-free protocol, conflicting writes are mediated by a
    read-modify-write (CAS / fetch-and-add) — an unordered plain-write
    pair means a blind [set] can clobber a concurrent update, exactly
    the bug in the lazy (non-CAS) black-holing variant the paper rejects
    in Sec. IV-A.3.

    Happens-before edges:
    - program order within each thread;
    - release/acquire through each cell: every write or RMW releases the
      writer's clock into the cell's sync clock; every read or RMW
      acquires it.  (Atomics are SC in OCaml, so this is sound for the
      traces the checker produces; it is deliberately coarse — we care
      about ordering, not about SC totality.)
    - setup (thread -1) happens-before every thread's first step. *)

module IM = Map.Make (Int)

type vc = int IM.t (* thread id -> clock component; absent = 0 *)

let vc_get (c : vc) t = match IM.find_opt t c with None -> 0 | Some n -> n
let vc_join a b = IM.union (fun _ x y -> Some (max x y)) a b
let vc_tick t c = IM.add t (vc_get c t + 1) c

(* a ≤ b pointwise *)
let vc_leq a b = IM.for_all (fun t n -> n <= vc_get b t) a

type race = {
  loc : int;
  loc_name : string;
  first : Event.t;  (** the earlier conflicting write *)
  second : Event.t;  (** the unordered later write *)
}

type report = {
  races : race list;
  locations : int;  (** distinct cells seen in the trace *)
  events_analysed : int;
}

type cell_state = {
  mutable sync : vc;  (** join of clocks released into this cell *)
  mutable last_write : (Event.t * vc) option;
      (** last plain write and the writer's clock at that write *)
  mutable history : Event.t list;  (** newest first, for reports *)
}

let analyse (trace : Event.t list) : report =
  let threads : (int, vc) Hashtbl.t = Hashtbl.create 8 in
  let cells : (int, cell_state) Hashtbl.t = Hashtbl.create 16 in
  let races = ref [] in
  let nevents = ref 0 in
  let clock_of tid =
    match Hashtbl.find_opt threads tid with
    | Some c -> c
    | None ->
        (* First step of a fresh thread: it was spawned after setup, so
           it inherits the setup clock (spawn edge). *)
        let c =
          if tid >= 0 then
            match Hashtbl.find_opt threads (-1) with
            | Some setup -> setup
            | None -> IM.empty
          else IM.empty
        in
        Hashtbl.replace threads tid c;
        c
  in
  let cell_of loc =
    match Hashtbl.find_opt cells loc with
    | Some s -> s
    | None ->
        let s = { sync = IM.empty; last_write = None; history = [] } in
        Hashtbl.replace cells loc s;
        s
  in
  List.iter
    (fun (ev : Event.t) ->
      if ev.loc >= 0 && ev.thread <> -2 then begin
        incr nevents;
        let tid = ev.thread in
        let c = clock_of tid in
        let s = cell_of ev.loc in
        s.history <- ev :: s.history;
        let acc = Event.access_of_kind ev.kind in
        (* Acquire: reads and RMWs synchronise with prior releases. *)
        let c =
          match acc with
          | Event.Read | Event.Rmw -> vc_join c s.sync
          | Event.Write -> c
        in
        (* Write-write check: a plain write racing the previous plain
           write.  RMWs are atomic updates — they serialise with
           everything through the acquire above, so they never race. *)
        (match acc with
        | Event.Write ->
            (match s.last_write with
            | Some (prev, prev_vc)
              when prev.Event.thread <> tid && not (vc_leq prev_vc c) ->
                races :=
                  { loc = ev.loc; loc_name = ev.loc_name; first = prev; second = ev }
                  :: !races
            | _ -> ())
        | Event.Read | Event.Rmw -> ());
        (* Release: writes and RMWs publish the writer's clock. *)
        (match acc with
        | Event.Write | Event.Rmw ->
            let released = vc_tick tid c in
            s.sync <- vc_join s.sync released;
            (* Store the *ticked* clock (the FastTrack epoch): ordering
               with a later write requires having acquired this release,
               i.e. seen the writer's own component. *)
            if acc = Event.Write then s.last_write <- Some (ev, released)
            else s.last_write <- None
        | Event.Read -> ());
        Hashtbl.replace threads tid (vc_tick tid c)
      end)
    trace;
  {
    races = List.rev !races;
    locations = Hashtbl.length cells;
    events_analysed = !nevents;
  }

let history_of (trace : Event.t list) loc =
  List.filter (fun (e : Event.t) -> e.loc = loc) trace

let pp_race ppf (r : race) =
  Format.fprintf ppf
    "unordered writes to %s:@\n  %a@\n  %a" r.loc_name Event.pp r.first
    Event.pp r.second

let pp_report ?trace ppf (rep : report) =
  if rep.races = [] then
    Format.fprintf ppf "no unordered conflicting writes (%d events, %d cells)"
      rep.events_analysed rep.locations
  else begin
    Format.fprintf ppf "%d race(s) over %d events, %d cells:"
      (List.length rep.races) rep.events_analysed rep.locations;
    List.iter
      (fun r ->
        Format.fprintf ppf "@\n%a" pp_race r;
        match trace with
        | Some t ->
            Format.fprintf ppf "@\n  access history of %s:" r.loc_name;
            List.iter
              (fun e -> Format.fprintf ppf "@\n    %a" Event.pp e)
              (history_of t r.loc)
        | None -> ())
      rep.races
  end
