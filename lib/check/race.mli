(** Vector-clock happens-before analysis of recorded traces.

    Flags pairs of plain writes to the same cell that are unordered by
    happens-before (program order + release/acquire through cells +
    the setup→thread spawn edge).  In a sound lock-free protocol,
    conflicting updates go through CAS / fetch-and-add; an unordered
    plain-write pair means a blind store can clobber a concurrent
    update — the classic lazy-black-holing bug. *)

type race = {
  loc : int;
  loc_name : string;
  first : Event.t;  (** the earlier conflicting write *)
  second : Event.t;  (** the unordered later write *)
}

type report = {
  races : race list;
  locations : int;  (** distinct cells seen in the trace *)
  events_analysed : int;
}

val analyse : Event.t list -> report
(** Replay a trace (oldest first, as produced by {!Sched.check}'s
    [on_trace] or a violation's [trace]) through vector clocks.  Events
    of the final check (thread -2) are ignored; setup events (thread
    -1) seed every thread's initial clock. *)

val history_of : Event.t list -> int -> Event.t list
(** All accesses to one location, in trace order. *)

val pp_race : Format.formatter -> race -> unit

val pp_report : ?trace:Event.t list -> Format.formatter -> report -> unit
(** With [?trace], each race is followed by the full access history of
    the racing location. *)
