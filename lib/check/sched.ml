(** DPOR model-checking scheduler for the executor's lock-free
    protocols (dscheck-style; cf. Abdulla et al., "Optimal dynamic
    partial order reduction", and the systematic-testing harnesses used
    for the OCaml multicore runtime).

    A {e scenario} is a handful of simulated threads sharing state built
    from {!Atomic} — the tracing implementation of the
    {!Repro_shim.Tatomic.S} shim that [Ws_deque], [Future] and [Pool]
    are functorised over.  Every atomic operation a thread performs is
    an OCaml 5 effect: the thread suspends, the scheduler executes the
    operation, records it, and chooses which thread runs next.  The
    whole scenario is replayed once per schedule; schedules are
    enumerated depth-first with persistent-set style partial-order
    reduction — after each complete run, for every pair of dependent
    operations by different threads, a backtrack point is added that
    reverses their order, and exploration continues until no backtrack
    point is left.  Two operations are dependent iff they touch the
    same cell and at least one writes it, so commuting interleavings
    are explored once.

    Blocking is modelled by {!wait_until}: the thread is descheduled
    until its predicate holds.  If every live thread is blocked on a
    false predicate, the run is reported as a deadlock — which is
    exactly how a lost wakeup manifests.

    Violations (a thread or the final check raising, a deadlock, or an
    op-budget blow-up) abort exploration and return the full event
    trace of the offending interleaving. *)

module IntSet = Set.Make (Int)

exception Abandoned

(* ------------------------------------------------------------------ *)
(* Global scheduler state.  One exploration at a time (the test suite
   and CLI drive checks sequentially); not domain-safe by design.      *)
(* ------------------------------------------------------------------ *)

type mode =
  | Idle  (** outside any check: operations behave like plain atomics *)
  | Setup  (** scenario construction: executed directly, recorded as thread -1 *)
  | Running of int  (** thread [tid] executing: operations suspend via effects *)
  | Predicate  (** scheduler polling a wait predicate: silent direct execution *)
  | Final  (** final check: executed directly, recorded as thread -2 *)

let mode = ref Idle
let next_cell_id = ref 0
let trace_buf : Event.t list ref = ref [] (* newest first *)
let step_no = ref 0
let thread_names : (int, string) Hashtbl.t = Hashtbl.create 16

let name_of_tid tid =
  if tid = -1 then "<setup>"
  else if tid = -2 then "<final>"
  else match Hashtbl.find_opt thread_names tid with
    | Some n -> n
    | None -> Printf.sprintf "t%d" tid

let record ~tid ~loc ~loc_name ~kind ~repr =
  trace_buf :=
    {
      Event.step = !step_no;
      thread = tid;
      thread_name = name_of_tid tid;
      loc;
      loc_name;
      kind;
      repr;
    }
    :: !trace_buf

(* ------------------------------------------------------------------ *)
(* The tracing atomic cell and its effect                              *)
(* ------------------------------------------------------------------ *)

type 'a cell = {
  cid : int;
  mutable v : 'a;
  mutable cname : string;
  mutable printer : ('a -> string) option;
}

type op_info = { loc : int; loc_name : string }

type _ Effect.t +=
  | Op : op_info * (unit -> 'r * Event.kind * string) -> 'r Effect.t
  | Wait : (unit -> bool) -> unit Effect.t

(* Execute one primitive: suspend to the scheduler when a simulated
   thread performs it, run directly (recording or silently, by mode)
   otherwise. *)
let traced (c : _ cell) (do_op : unit -> 'r * Event.kind * string) : 'r =
  match !mode with
  | Running _ ->
      Effect.perform (Op ({ loc = c.cid; loc_name = c.cname }, do_op))
  | Setup ->
      let r, k, s = do_op () in
      record ~tid:(-1) ~loc:c.cid ~loc_name:c.cname ~kind:k ~repr:s;
      r
  | Final ->
      let r, k, s = do_op () in
      record ~tid:(-2) ~loc:c.cid ~loc_name:c.cname ~kind:k ~repr:s;
      r
  | Predicate | Idle ->
      let r, _, _ = do_op () in
      r

let pr c v = match c.printer with None -> None | Some p -> Some (p v)

let with_val c v base =
  match pr c v with None -> base | Some s -> base ^ " " ^ s

module Atomic = struct
  type 'a t = 'a cell

  let make v =
    let id = !next_cell_id in
    incr next_cell_id;
    let c = { cid = id; v; cname = Printf.sprintf "a%d" id; printer = None } in
    (* Creation is an initialising write for the race detector, but not
       a scheduling point: the cell is not shared until published. *)
    (match !mode with
    | Running tid ->
        record ~tid ~loc:c.cid ~loc_name:c.cname ~kind:Event.Make ~repr:"make"
    | Setup ->
        record ~tid:(-1) ~loc:c.cid ~loc_name:c.cname ~kind:Event.Make
          ~repr:"make"
    | _ -> ());
    c

  let get c =
    traced c (fun () -> (c.v, Event.Get, with_val c c.v "get ->"))

  let set c x =
    traced c (fun () ->
        c.v <- x;
        ((), Event.Set, with_val c x "set <-"))

  let exchange c x =
    traced c (fun () ->
        let old = c.v in
        c.v <- x;
        (old, Event.Exchange, with_val c x "exchange <-"))

  let compare_and_set c old nu =
    traced c (fun () ->
        if c.v == old then begin
          c.v <- nu;
          (true, Event.Cas true, with_val c nu "cas ok <-")
        end
        else (false, Event.Cas false, "cas fail"))

  let fetch_and_add c n =
    traced c (fun () ->
        let old = c.v in
        c.v <- old + n;
        (old, Event.Fetch_add, Printf.sprintf "fetch&add %+d -> %d" n c.v))

  let incr c = ignore (fetch_and_add c 1)
  let decr c = ignore (fetch_and_add c (-1))
end

module _ : Repro_shim.Tatomic.S = Atomic

let set_name (c : 'a Atomic.t) n =
  c.cname <- n;
  (* Rename the already-recorded creation event (setup names cells
     right after [make]), so traces are readable end to end. *)
  trace_buf :=
    List.map
      (fun (e : Event.t) ->
        if e.loc = c.cid then { e with loc_name = n } else e)
      !trace_buf
let set_printer (c : 'a Atomic.t) p = c.printer <- Some p

let wait_until pred =
  match !mode with
  | Running _ -> Effect.perform (Wait pred)
  | _ ->
      if not (pred ()) then
        failwith "Sched.wait_until outside a simulated thread: predicate false"

(* ------------------------------------------------------------------ *)
(* Threads                                                             *)
(* ------------------------------------------------------------------ *)

type pending = {
  exec : unit -> unit;  (** run the op, record it, continue to next suspension *)
  abort : unit -> unit;
}

type tstate =
  | Pending of pending
  | Blocked of { pred : unit -> bool; resume : unit -> unit; abort : unit -> unit }
  | Finished
  | Raised of exn

type thread = { tid : int; tname : string; mutable st : tstate }

let handler (t : thread) : (unit, unit) Effect.Deep.handler =
  {
    retc = (fun () -> t.st <- Finished);
    exnc = (fun e -> t.st <- Raised e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Op (info, do_op) ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                t.st <-
                  Pending
                    {
                      exec =
                        (fun () ->
                          let r, kind, repr = do_op () in
                          record ~tid:t.tid ~loc:info.loc
                            ~loc_name:info.loc_name ~kind ~repr;
                          Effect.Deep.continue k r);
                      abort =
                        (fun () ->
                          try Effect.Deep.discontinue k Abandoned
                          with _ -> ());
                    })
        | Wait pred ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                t.st <-
                  Blocked
                    {
                      pred;
                      resume = (fun () -> Effect.Deep.continue k ());
                      abort =
                        (fun () ->
                          try Effect.Deep.discontinue k Abandoned
                          with _ -> ());
                    })
        | _ -> None);
  }

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)
(* ------------------------------------------------------------------ *)

(* One exploration-tree node per scheduler step of the current run:
   the choice taken, what was runnable, the dependency footprint of the
   executed op, and the DPOR backtrack/done sets that drive the DFS. *)
type node = {
  mutable chosen : int;
  mutable enabled : int list;
  mutable loc : int;  (* -1: no shared-memory footprint (wake step) *)
  mutable acc : Event.access;
  mutable backtrack : IntSet.t;
  mutable done_ : IntSet.t;
}

module Vec = struct
  type 'a t = { mutable a : 'a array; mutable len : int }

  let create () = { a = [||]; len = 0 }
  let length v = v.len
  let get v i = v.a.(i)

  let push v x =
    if v.len = Array.length v.a then begin
      let cap = max 16 (2 * Array.length v.a) in
      let a = Array.make cap x in
      Array.blit v.a 0 a 0 v.len;
      v.a <- a
    end;
    v.a.(v.len) <- x;
    v.len <- v.len + 1

  let truncate v n = v.len <- n
end

type stats = {
  name : string;
  interleavings : int;  (** complete executions explored *)
  events : int;  (** total operations executed across all of them *)
  max_depth : int;  (** longest execution, in scheduler steps *)
}

type violation = {
  vname : string;
  reason : string;
  trace : Event.t list;  (** the offending interleaving, oldest first *)
  after_interleavings : int;
}

type result = Pass of stats | Fail of violation

type run_status = Completed | Violated of string

let run_once ~max_steps ~(nodes : node Vec.t) scenario =
  trace_buf := [];
  step_no := 0;
  next_cell_id := 0;
  Hashtbl.reset thread_names;
  mode := Setup;
  let spec, final_check =
    match scenario () with
    | s -> mode := Idle; s
    | exception e ->
        mode := Idle;
        raise e
  in
  let threads =
    Array.of_list
      (List.mapi
         (fun i (tname, _) ->
           Hashtbl.replace thread_names i tname;
           { tid = i; tname; st = Finished })
         spec)
  in
  (* Launch every thread up to its first suspension point. *)
  List.iteri
    (fun i (_, body) ->
      let t = threads.(i) in
      mode := Running i;
      Effect.Deep.match_with body () (handler t);
      mode := Idle)
    spec;
  let enabled_tids () =
    Array.to_list threads
    |> List.filter_map (fun t ->
           match t.st with
           | Pending _ -> Some t.tid
           | Blocked b ->
               mode := Predicate;
               let ok = b.pred () in
               mode := Idle;
               if ok then Some t.tid else None
           | Finished | Raised _ -> None)
  in
  let raised_thread () =
    Array.to_list threads
    |> List.find_map (fun t ->
           match t.st with
           | Raised e when e != Abandoned -> Some (t.tname, e)
           | _ -> None)
  in
  let blocked_names () =
    Array.to_list threads
    |> List.filter_map (fun t ->
           match t.st with Blocked _ -> Some t.tname | _ -> None)
  in
  let rec loop depth =
    match raised_thread () with
    | Some (tname, e) ->
        Violated
          (Printf.sprintf "thread %s raised: %s" tname (Printexc.to_string e))
    | None ->
        if
          Array.for_all
            (fun t -> match t.st with Finished -> true | _ -> false)
            threads
        then begin
          mode := Final;
          match final_check () with
          | () ->
              mode := Idle;
              Completed
          | exception e ->
              mode := Idle;
              Violated
                (Printf.sprintf "final check failed: %s" (Printexc.to_string e))
        end
        else begin
          let enabled = enabled_tids () in
          if enabled = [] then
            Violated
              (Printf.sprintf
                 "deadlock: all live threads blocked waiting (%s) — lost \
                  wakeup"
                 (String.concat ", " (blocked_names ())))
          else if depth >= max_steps then
            Violated
              (Printf.sprintf
                 "op budget (%d steps) exceeded — livelock or unbounded loop"
                 max_steps)
          else begin
            let p =
              if depth < Vec.length nodes then begin
                let nd = Vec.get nodes depth in
                if not (List.mem nd.chosen enabled) then
                  failwith
                    "Sched: scenario is not deterministic (replay diverged)";
                nd.enabled <- enabled;
                nd.chosen
              end
              else begin
                let p = List.fold_left min (List.hd enabled) enabled in
                Vec.push nodes
                  {
                    chosen = p;
                    enabled;
                    loc = -1;
                    acc = Event.Read;
                    backtrack = IntSet.singleton p;
                    done_ = IntSet.singleton p;
                  };
                p
              end
            in
            let nd = Vec.get nodes depth in
            let th = threads.(p) in
            incr step_no;
            (match th.st with
            | Pending pd ->
                mode := Running p;
                pd.exec ();
                mode := Idle;
                (match !trace_buf with
                | ev :: _ when ev.Event.thread = p && ev.Event.step = !step_no
                  ->
                    nd.loc <- ev.Event.loc;
                    nd.acc <- Event.access_of_kind ev.Event.kind
                | _ ->
                    nd.loc <- -1;
                    nd.acc <- Event.Read)
            | Blocked b ->
                record ~tid:p ~loc:(-1) ~loc_name:"" ~kind:Event.Wake
                  ~repr:"woke from wait";
                mode := Running p;
                b.resume ();
                mode := Idle;
                nd.loc <- -1;
                nd.acc <- Event.Read
            | Finished | Raised _ -> assert false);
            loop (depth + 1)
          end
        end
  in
  let status = loop 0 in
  Array.iter
    (fun t ->
      match t.st with
      | Pending pd -> pd.abort ()
      | Blocked b -> b.abort ()
      | Finished | Raised _ -> ())
    threads;
  (status, List.rev !trace_buf)

let default_max_steps = 4000
let default_max_interleavings = 500_000

let check ?(max_steps = default_max_steps)
    ?(max_interleavings = default_max_interleavings) ?on_trace ~name scenario =
  let nodes = Vec.create () in
  let runs = ref 0 in
  let events = ref 0 in
  let maxd = ref 0 in
  let rec go () =
    if !runs >= max_interleavings then
      failwith
        (Printf.sprintf
           "Sched.check %s: state space larger than %d interleavings — shrink \
            the scenario"
           name max_interleavings);
    incr runs;
    let status, trace = run_once ~max_steps ~nodes scenario in
    events := !events + List.length trace;
    maxd := max !maxd (Vec.length nodes);
    match status with
    | Violated reason ->
        Fail { vname = name; reason; trace; after_interleavings = !runs }
    | Completed -> (
        (match on_trace with Some f -> f trace | None -> ());
        (* Add a backtrack point for every pair of dependent operations
           by different threads: re-run the schedule that reverses
           them.  (Persistent-set DPOR, conservative variant: every
           dependent predecessor gets a point, not only the latest.) *)
        let n = Vec.length nodes in
        for i = 1 to n - 1 do
          let ni = Vec.get nodes i in
          if ni.loc >= 0 then
            for j = 0 to i - 1 do
              let nj = Vec.get nodes j in
              if
                nj.loc = ni.loc
                && nj.chosen <> ni.chosen
                && not (nj.acc = Event.Read && ni.acc = Event.Read)
              then
                if List.mem ni.chosen nj.enabled then
                  nj.backtrack <- IntSet.add ni.chosen nj.backtrack
                else
                  nj.backtrack <-
                    List.fold_left
                      (fun s q -> IntSet.add q s)
                      nj.backtrack nj.enabled
            done
        done;
        let rec deepest k =
          if k < 0 then None
          else
            let nd = Vec.get nodes k in
            let pend = IntSet.diff nd.backtrack nd.done_ in
            if IntSet.is_empty pend then deepest (k - 1)
            else Some (k, IntSet.min_elt pend)
        in
        match deepest (Vec.length nodes - 1) with
        | None ->
            Pass
              {
                name;
                interleavings = !runs;
                events = !events;
                max_depth = !maxd;
              }
        | Some (k, p) ->
            let nd = Vec.get nodes k in
            nd.chosen <- p;
            nd.done_ <- IntSet.add p nd.done_;
            Vec.truncate nodes (k + 1);
            go ())
  in
  go ()

let pp_result ppf = function
  | Pass s ->
      Format.fprintf ppf
        "%s: PASS — %d interleaving(s) explored exhaustively, %d ops, max \
         depth %d"
        s.name s.interleavings s.events s.max_depth
  | Fail v ->
      Format.fprintf ppf
        "%s: VIOLATION after %d interleaving(s): %s@\noffending schedule:@\n%a"
        v.vname v.after_interleavings v.reason Event.pp_trace v.trace
