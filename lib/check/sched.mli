(** DPOR model-checking scheduler (see [sched.ml] for the algorithm).

    Typical use:

    {[
      let scenario () =
        let x = Sched.Atomic.make 0 in
        Sched.set_name x "x";
        ( [ ("incr1", fun () -> Sched.Atomic.incr x);
            ("incr2", fun () -> Sched.Atomic.incr x) ],
          fun () -> assert (Sched.Atomic.get x = 2) )
      in
      match Sched.check ~name:"counter" scenario with
      | Pass s -> Format.printf "%a@." Sched.pp_result (Pass s)
      | Fail v -> print_string (Event.to_string_trace v.trace)
    ]} *)

exception Abandoned
(** Raised into suspended threads when a run is cut short (after a
    violation); scenario code should let it propagate. *)

(** Tracing implementation of the atomics shim.  Inside a simulated
    thread every operation is a scheduling point; during scenario setup
    and the final check operations run directly but are still recorded
    (as threads -1 / -2) for the race detector; outside any check the
    cells behave like plain atomics. *)
module Atomic : sig
  include Repro_shim.Tatomic.S
end

val set_name : 'a Atomic.t -> string -> unit
(** Name the cell in traces (default ["a<id>"]). *)

val set_printer : 'a Atomic.t -> ('a -> string) -> unit
(** Render the cell's values in traces. *)

val wait_until : (unit -> bool) -> unit
(** Block the current simulated thread until [pred ()] holds.  The
    predicate is polled by the scheduler to decide enabledness; it must
    be side-effect-free on traced cells (its reads are not recorded).
    If every live thread is blocked on a false predicate the run is a
    deadlock — this is how lost wakeups are detected. *)

type stats = {
  name : string;
  interleavings : int;  (** complete executions explored *)
  events : int;  (** total operations executed across all of them *)
  max_depth : int;  (** longest execution, in scheduler steps *)
}

type violation = {
  vname : string;
  reason : string;
  trace : Event.t list;  (** the offending interleaving, oldest first *)
  after_interleavings : int;
}

type result = Pass of stats | Fail of violation

val check :
  ?max_steps:int ->
  ?max_interleavings:int ->
  ?on_trace:(Event.t list -> unit) ->
  name:string ->
  (unit -> (string * (unit -> unit)) list * (unit -> unit)) ->
  result
(** [check ~name scenario] exhaustively explores the interleavings of
    [scenario]'s threads (modulo commuting independent operations).

    [scenario ()] builds fresh shared state and returns the list of
    named thread bodies plus a final check run after all threads
    finish; it is re-invoked once per explored interleaving and must be
    deterministic apart from scheduling.

    [max_steps] (default 4000) bounds a single run — exceeding it is
    reported as a livelock.  [max_interleavings] (default 500k) bounds
    the exploration; exceeding it raises [Failure] (shrink the
    scenario).  [on_trace] observes the event trace of every completed
    (non-violating) run, e.g. to feed {!Race.analyse}. *)

val pp_result : Format.formatter -> result -> unit
