(** Chase–Lev lock-free work-stealing deque (SPAA 2005).

    This is the data structure the paper adopts for GpH spark pools
    (Sec. IV-A.2, citation [31]): the owner capability pushes and pops
    sparks at the bottom without synchronisation in the common case,
    while idle capabilities steal from the top with a single CAS.

    The implementation follows the dynamic circular-array formulation:

    - [push] (owner only): write at [bottom], increment [bottom];
    - [pop] (owner only): decrement [bottom]; if the deque might now be
      empty, race a CAS on [top] against concurrent stealers;
    - [steal] (any thread): read [top], read the element, CAS [top]
      forward; a failed CAS means another stealer (or the owner's pop)
      won the race.

    The circular array grows geometrically when full; old arrays are
    left for the GC (safe in OCaml — no manual reclamation problem).

    The structure is a functor over the {!Repro_shim.Tatomic.S} atomics
    shim: the default instance below uses the zero-cost [Real] alias of
    [Stdlib.Atomic] and is safe for genuine multi-domain use (the test
    suite stresses it from multiple domains); [Repro_check] instantiates
    it with a tracing shim and exhaustively model-checks the push/pop/
    steal protocol with a DPOR scheduler. *)

module type S = sig
  type 'a t

  val create : unit -> 'a t
  val size : 'a t -> int
  val is_empty : 'a t -> bool
  val push : 'a t -> 'a -> unit
  val pop : 'a t -> 'a option
  val steal : 'a t -> 'a option
  val drain : 'a t -> 'a list
end

module Make (A : Repro_shim.Tatomic.S) = struct
  type 'a circular_array = {
    log_size : int;
    segment : 'a option A.t array;
  }

  let ca_create log_size =
    { log_size; segment = Array.init (1 lsl log_size) (fun _ -> A.make None) }

  let ca_size a = 1 lsl a.log_size
  let ca_get a i = A.get a.segment.(i land (ca_size a - 1))
  let ca_put a i v = A.set a.segment.(i land (ca_size a - 1)) v

  let ca_grow a ~bottom ~top =
    let b = ca_create (a.log_size + 1) in
    for i = top to bottom - 1 do
      ca_put b i (ca_get a i)
    done;
    b

  type 'a t = {
    top : int A.t;
    bottom : int A.t;
    active : 'a circular_array A.t;
  }

  let create () =
    {
      top = A.make 0;
      bottom = A.make 0;
      active = A.make (ca_create 4);
    }

  (* Owner-side size estimate; exact when no concurrent operations. *)
  let size q =
    let b = A.get q.bottom and t = A.get q.top in
    max 0 (b - t)

  let is_empty q = size q = 0

  (* Owner only. *)
  let push q v =
    let b = A.get q.bottom and t = A.get q.top in
    let a = A.get q.active in
    let a =
      if b - t >= ca_size a - 1 then begin
        let a' = ca_grow a ~bottom:b ~top:t in
        A.set q.active a';
        a'
      end
      else a
    in
    ca_put a b (Some v);
    A.set q.bottom (b + 1)

  (* Owner only: LIFO pop from the bottom. *)
  let pop q =
    let b = A.get q.bottom - 1 in
    let a = A.get q.active in
    A.set q.bottom b;
    let t = A.get q.top in
    let sz = b - t in
    if sz < 0 then begin
      (* Deque was empty: restore bottom. *)
      A.set q.bottom t;
      None
    end
    else
      let v = ca_get a b in
      if sz > 0 then begin
        ca_put a b None;
        v
      end
      else begin
        (* Last element: race against stealers for it. *)
        let won = A.compare_and_set q.top t (t + 1) in
        A.set q.bottom (t + 1);
        if won then begin
          ca_put a b None;
          v
        end
        else None
      end

  (* Any thread: FIFO steal from the top. *)
  let steal q =
    let t = A.get q.top in
    let b = A.get q.bottom in
    if b - t <= 0 then None
    else
      let a = A.get q.active in
      let v = ca_get a t in
      if A.compare_and_set q.top t (t + 1) then v else None

  (* Owner only: drain everything (used when shutting a capability down). *)
  let drain q =
    let rec go acc = match pop q with None -> List.rev acc | Some v -> go (v :: acc) in
    go []
end

include Make (Repro_shim.Tatomic.Real)
