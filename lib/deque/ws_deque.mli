(** Chase–Lev lock-free work-stealing deque (SPAA 2005) — the data
    structure the paper adopts for GpH spark pools (Sec. IV-A.2,
    citation [31]).

    The owner pushes and pops at the bottom (LIFO); thieves steal from
    the top (FIFO) with a single CAS.  Implemented over a growable
    circular array of atomic cells, functorised over the
    {!Repro_shim.Tatomic.S} shim.  The toplevel instance is
    [Make (Tatomic.Real)] — plain [Stdlib.Atomic], safe for genuine
    multi-domain use (and stress-tested from multiple domains).
    [Repro_check] instantiates {!Make} with a tracing shim to
    model-check the protocol exhaustively. *)

module type S = sig
  type 'a t

  val create : unit -> 'a t

  (** Owner-side size estimate; exact when quiescent. *)
  val size : 'a t -> int

  val is_empty : 'a t -> bool

  (** Owner only. *)
  val push : 'a t -> 'a -> unit

  (** Owner only: LIFO pop from the bottom. *)
  val pop : 'a t -> 'a option

  (** Any thread: FIFO steal from the top.  [None] when empty or when a
      concurrent operation won the race. *)
  val steal : 'a t -> 'a option

  (** Owner only: remove everything (pop order). *)
  val drain : 'a t -> 'a list
end

module Make (A : Repro_shim.Tatomic.S) : S

include S
