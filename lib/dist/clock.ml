(** Shared timebase for every PE: CLOCK_MONOTONIC via bechamel's
    noalloc stub.  The clock is system-wide on Linux, so timestamps
    recorded in worker processes are directly comparable with the
    coordinator's — which is what lets {!Timeline} compute wire spans
    (coordinator send-done to worker receive-done) across the process
    boundary. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())
