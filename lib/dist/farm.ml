(** Coordinator of the distributed executor: spawns one worker process
    per PE, connects each over the selected transport, and drives
    barrier rounds of tasks with GUM-style demand scheduling.

    Two transports, two topologies (the paper's PVM-on-sockets vs
    PVM-on-shared-memory comparison):

    - {e sock} (star): placement is round-robin for the initial
      dispatch (each PE primed with {!prefetch} tasks, Eden's
      master-worker prefetch); afterwards work moves on demand — an
      idle PE sends [Fish] {e to the coordinator} and is answered with
      a [Schedule] or [No_work] (paper Sec. III-B).
    - {e shm} (mesh): the whole round is pushed round-robin up front
      (rings are cheap to fill), workers queue tasks locally, and
      demand balancing happens {e peer-to-peer} — an idle PE fishes a
      victim worker directly and surplus tasks flow straight back over
      the p2p ring; the coordinator sees only results and teardown.

    Pinned rounds (APSP) bypass demand scheduling on both transports:
    task [i] always goes to PE [i mod procs], because the PE holds the
    matching resident state.

    The coordinator keeps an exactly-once ledger per round: a result
    for an unknown task, the wrong round, or an already-filled slot is
    a hard failure, not a silent overwrite. *)

type transport = Sock | Shm

let transport_name = function Sock -> "socketpair" | Shm -> "shm"

type link = {
  pe : int;
  pid : int;
  conn : Link.t;
  mutable outstanding : int;  (** scheduled but not yet returned *)
}

type counts = {
  mutable rounds : int;
  mutable tasks : int;
  mutable schedules : int;
  mutable fishes : int;
  mutable no_works : int;
}

(** Coordinator-side timing of one [Schedule] send; with the worker's
    receive timestamp (same monotonic timebase) this bounds the wire
    span. *)
type sched_span = {
  sp_task_id : int;
  sp_pe : int;
  sp_round : int;
  sp_bytes : int;  (** marshalled task payload size *)
  send_start_ns : int;
  send_done_ns : int;
}

type pe_report = {
  rep_pe : int;
  rep_pid : int;
  stats : Message.worker_stats;  (** the PE's own view *)
  co : Wire.counters;  (** the coordinator's view of the same link *)
}

type outcome = {
  result : int;
  procs : int;
  rounds : int;
  tasks : int;
  schedules : int;
  fishes : int;  (** work requests: coordinator-seen (sock) or peer-to-peer (shm) *)
  no_works : int;
  stolen : int;  (** tasks that moved worker-to-worker (shm only) *)
  reports : pe_report array;
  sched_spans : sched_span list;  (** newest first; [] unless traced *)
  coord_pack_ns : int;  (** task payload marshalling on the coordinator *)
  coord_unpack_ns : int;  (** result payload unmarshalling *)
  work_ns : int;  (** first dispatch to final [step]; excludes spawn *)
  spawn_ns : int;  (** process creation + handshakes *)
  merged_metrics : Repro_metrics.Metrics.snapshot;
      (** every PE's piggybacked registry snapshot (relabeled [pe=N])
          merged into the coordinator's own (relabeled [pe=coord]) —
          the farm-wide live view *)
}

(** How many tasks each PE is primed with before demand scheduling
    takes over (sock transport; shm pushes whole rounds). *)
let prefetch = 2

(** Peer-to-peer rings carry only FISH/grant traffic — small control
    messages — so they are far smaller than the coordinator rings. *)
let p2p_ring_bytes = 64 * 1024

(* ---------------- spawning ---------------- *)

let spawn_process ~worker_argv ~extra_tokens =
  let parent_fd, child_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    (* Later children must not inherit this link, or a dead worker's
       EOF would never reach us. *)
    Unix.set_close_on_exec parent_fd;
    let argv = Array.append worker_argv (Array.of_list extra_tokens) in
    Unix.create_process argv.(0) argv child_fd Unix.stdout Unix.stderr
  with
  | pid ->
      Unix.close child_fd;
      (parent_fd, pid)
  | exception e ->
      (* a failed exec must not leak the pair *)
      Unix.close child_fd;
      Unix.close parent_fd;
      raise e

let spawn_sock ?(packet_bytes = Wire.default_packet_bytes) ~worker_argv ~procs
    ~mode ~trace pe =
  let parent_fd, pid = spawn_process ~worker_argv ~extra_tokens:[] in
  let conn =
    Link.Sock (Wire.create ~packet_bytes ~read_fd:parent_fd ~write_fd:parent_fd ())
  in
  Message.send_hello conn { Message.pe; procs; mode; trace };
  { pe; pid; conn; outstanding = 0 }

(* Spawn the full shm mesh: one segment per coordinator link, one per
   worker pair.  Segment paths travel in argv; the socketpair becomes
   the doorbell.  Every file is unlinked as soon as all workers have
   [Ready]-acknowledged mapping them — a crash before that leaves
   temp files, which [cleanup] sweeps on the error path. *)
let spawn_shm ~ring_bytes ~worker_argv ~procs ~mode ~trace =
  let coord_paths =
    Array.init procs (fun _ -> Shm_ring.create_segment ~ring_bytes ())
  in
  (* mesh segments, key (i, j) with i < j; side `A is the lower pe *)
  let p2p =
    if procs < 2 then []
    else
      List.concat_map
        (fun i ->
          List.filter_map
            (fun j ->
              if i < j then
                Some ((i, j), Shm_ring.create_segment ~ring_bytes:p2p_ring_bytes ())
              else None)
            (List.init procs Fun.id))
        (List.init procs Fun.id)
  in
  let all_paths = Array.to_list coord_paths @ List.map snd p2p in
  let unlink_all () = List.iter Shm_ring.unlink_segment all_paths in
  try
    let links =
      Array.init procs (fun pe ->
          let tokens =
            ("shm=" ^ coord_paths.(pe))
            :: List.filter_map
                 (fun ((i, j), path) ->
                   if i = pe then Some (Printf.sprintf "p2p=%d:a:%s" j path)
                   else if j = pe then Some (Printf.sprintf "p2p=%d:b:%s" i path)
                   else None)
                 p2p
          in
          let parent_fd, pid = spawn_process ~worker_argv ~extra_tokens:tokens in
          let conn =
            Link.Shm
              (Shm_ring.attach ~path:coord_paths.(pe) ~side:`A
                 ~doorbell:parent_fd ())
          in
          Message.send_hello conn { Message.pe; procs; mode; trace };
          { pe; pid; conn; outstanding = 0 })
    in
    (* each worker acknowledges once every segment is mapped; then the
       names can go *)
    Array.iter
      (fun l ->
        match Message.recv_to_coordinator l.conn with
        | Message.Ready -> ()
        | _ -> failwith "dist: worker spoke before Ready")
      links;
    unlink_all ();
    links
  with e ->
    unlink_all ();
    raise e

let kill_all links =
  Array.iter
    (fun l ->
      (try Unix.kill l.pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try Link.close l.conn with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] l.pid) with Unix.Unix_error _ -> ())
    links

(* ---------------- one barrier round ---------------- *)

(* Drive [payloads] (pre-marshalled tasks) to completion, returning
   the result payloads in task order.  [id0] makes task ids globally
   unique across rounds. *)
let exec_round ~(counts : counts) ~trace ~sched_spans ~(links : link array)
    ~round ~id0 ~pinned (payloads : string array) : Message.payload array =
  let n = Array.length payloads in
  let results : Message.payload option array = Array.make n None in
  let got = ref 0 in
  let next = ref 0 in
  let is_shm =
    Array.length links > 0
    && match links.(0).conn with Link.Shm _ -> true | Link.Sock _ -> false
  in
  let send_task (l : link) idx =
    let task_id = id0 + idx in
    let t0 = Clock.now_ns () in
    Message.send_to_worker l.conn
      (Schedule
         { task_id; round; stealable = not pinned; payload = payloads.(idx) });
    if trace then
      sched_spans :=
        {
          sp_task_id = task_id;
          sp_pe = l.pe;
          sp_round = round;
          sp_bytes = String.length payloads.(idx);
          send_start_ns = t0;
          send_done_ns = Clock.now_ns ();
        }
        :: !sched_spans;
    l.outstanding <- l.outstanding + 1;
    counts.schedules <- counts.schedules + 1
  in
  let handle_message (l : link) =
    match Message.recv_to_coordinator l.conn with
    | Fish ->
        counts.fishes <- counts.fishes + 1;
        if (not pinned) && !next < n then begin
          send_task l !next;
          incr next
        end
        else begin
          Message.send_to_worker l.conn Message.No_work;
          counts.no_works <- counts.no_works + 1
        end
    | Result { task_id; round = r; payload; blob } ->
        (* the blob (if any) is queued right behind the control
           message on the same link: complete it before anything else *)
        let p = Message.recv_result_payload l.conn ~blob ~payload in
        if r <> round then
          failwith
            (Printf.sprintf "dist: PE %d returned a round-%d result in round %d"
               l.pe r round);
        let idx = task_id - id0 in
        if idx < 0 || idx >= n then
          failwith
            (Printf.sprintf "dist: PE %d returned unknown task %d" l.pe task_id);
        (match results.(idx) with
        | Some _ ->
            failwith
              (Printf.sprintf "dist: duplicate result for task %d (PE %d)"
                 task_id l.pe)
        | None -> results.(idx) <- Some p);
        incr got;
        l.outstanding <- l.outstanding - 1
    | Ready -> failwith "dist: stray Ready after spawn"
    | Stats _ -> failwith "dist: unsolicited Stats before Harvest"
  in
  (* Drain whatever is ready on any link, without blocking. *)
  let pump () =
    Array.iter
      (fun l ->
        while !got < n && Link.input_ready l.conn do
          handle_message l
        done)
      links
  in
  (* While a push blocks on a full ring, drain results — the escape
     from the duplex deadlock (we block pushing a task at a worker
     that blocks pushing a result at us). *)
  if is_shm then Array.iter (fun l -> Link.set_on_wait l.conn (Some pump)) links;
  (* Initial placement: pinned tasks to their owner; shm pushes the
     whole round round-robin (peer-to-peer fishing balances the rest);
     sock primes up to [prefetch] per PE and schedules on demand. *)
  if pinned then
    for idx = 0 to n - 1 do
      send_task links.(idx mod Array.length links) idx
    done
  else if is_shm then begin
    for idx = 0 to n - 1 do
      send_task links.(idx mod Array.length links) idx
    done;
    next := n
  end
  else begin
    let continue = ref true in
    while !continue do
      continue := false;
      Array.iter
        (fun l ->
          if l.outstanding < prefetch && !next < n then begin
            send_task l !next;
            incr next;
            continue := true
          end)
        links
    done
  end;
  if is_shm then Array.iter (fun l -> Link.set_on_wait l.conn None) links;
  let conns = Array.map (fun l -> l.conn) links in
  while !got < n do
    pump ();
    if !got < n then Link.wait_any conns
  done;
  counts.tasks <- counts.tasks + n;
  counts.rounds <- counts.rounds + 1;
  Array.map
    (function
      | Some s -> s
      | None -> failwith "dist: round ended with a missing result")
    results

(* ---------------- teardown ---------------- *)

let harvest (links : link array) : pe_report array =
  Array.map
    (fun l ->
      Message.send_to_worker l.conn Message.Harvest;
      let rec await () =
        match Message.recv_to_coordinator l.conn with
        | Fish ->
            (* a stray end-of-round fish racing the harvest *)
            Message.send_to_worker l.conn Message.No_work;
            await ()
        | Ready -> failwith "dist: stray Ready at harvest"
        | Result _ -> failwith "dist: result arrived after the last round"
        | Stats s -> s
      in
      let stats = await () in
      { rep_pe = l.pe; rep_pid = l.pid; stats; co = Link.counters l.conn })
    links

let shutdown (links : link array) =
  Array.iter (fun l -> Message.send_to_worker l.conn Message.Shutdown) links;
  Array.iter
    (fun l ->
      Link.close l.conn;
      match Unix.waitpid [] l.pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED c ->
          failwith (Printf.sprintf "dist: PE %d exited with code %d" l.pe c)
      | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
          failwith (Printf.sprintf "dist: PE %d killed by signal %d" l.pe s))
    links

(* ---------------- typed entry points ---------------- *)

let with_links ?packet_bytes ?(transport = Sock)
    ?(ring_bytes = Shm_ring.default_ring_bytes) ~worker_argv ~procs ~mode
    ~trace f =
  let t0 = Clock.now_ns () in
  let links =
    match transport with
    | Sock ->
        Array.init procs (spawn_sock ?packet_bytes ~worker_argv ~procs ~mode ~trace)
    | Shm -> spawn_shm ~ring_bytes ~worker_argv ~procs ~mode ~trace
  in
  let spawn_ns = Clock.now_ns () - t0 in
  match f links with
  | v -> (v, links, spawn_ns)
  | exception e ->
      kill_all links;
      raise e

let run ?worker_argv ?packet_bytes ?transport ?ring_bytes ?(trace = false)
    ~procs ~size (module W : Workload.S) : outcome =
  if procs < 1 then invalid_arg "Farm.run: procs must be >= 1";
  let worker_argv =
    match worker_argv with Some a -> a | None -> Worker.default_argv ()
  in
  let counts =
    { rounds = 0; tasks = 0; schedules = 0; fishes = 0; no_works = 0 }
  in
  let sched_spans = ref [] in
  let coord_pack_ns = ref 0 and coord_unpack_ns = ref 0 in
  let mode = Message.Workload { name = W.name; size } in
  let decode_result : Message.payload -> W.result = function
    | Message.Bytes_p s -> (Marshal.from_string s 0 : W.result)
    | Message.Floats_p f -> (
        match W.result_blob with
        | Some (_, dec) -> dec f
        | None -> failwith "dist: float blob for a workload without a codec")
  in
  let (result, work_ns, reports), links, spawn_ns =
    with_links ?packet_bytes ?transport ?ring_bytes ~worker_argv ~procs ~mode
      ~trace (fun links ->
        let t0 = Clock.now_ns () in
        let rec rounds st tasks pinned =
          let tp0 = Clock.now_ns () in
          let payloads =
            Array.map (fun t -> Marshal.to_string (t : W.task) []) tasks
          in
          coord_pack_ns := !coord_pack_ns + (Clock.now_ns () - tp0);
          let raw =
            exec_round ~counts ~trace ~sched_spans ~links ~round:counts.rounds
              ~id0:counts.tasks ~pinned payloads
          in
          let tu0 = Clock.now_ns () in
          let results = Array.map decode_result raw in
          coord_unpack_ns := !coord_unpack_ns + (Clock.now_ns () - tu0);
          match W.step st results with
          | `Done v -> v
          | `Round (st, tasks, pinned) -> rounds st tasks pinned
        in
        let st, tasks, pinned = W.start ~size ~procs in
        let result = rounds st tasks pinned in
        let work_ns = Clock.now_ns () - t0 in
        let reports = harvest links in
        (result, work_ns, reports))
  in
  shutdown links;
  (* Over shm the coordinator never sees a FISH — demand requests are
     peer-to-peer and show up in the workers' own counters. *)
  let p2p_fishes =
    Array.fold_left (fun a r -> a + r.stats.Message.fishes_sent) 0 reports
  in
  let stolen =
    Array.fold_left (fun a r -> a + r.stats.Message.tasks_stolen) 0 reports
  in
  let merged_metrics =
    let module M = Repro_metrics.Metrics in
    Array.fold_left
      (fun acc r ->
        M.merge acc
          (M.relabel ("pe", string_of_int r.rep_pe) r.stats.Message.metrics))
      (M.relabel ("pe", "coord") (M.snapshot ()))
      reports
  in
  {
    result;
    procs;
    rounds = counts.rounds;
    tasks = counts.tasks;
    schedules = counts.schedules;
    fishes = (if counts.fishes = 0 && p2p_fishes > 0 then p2p_fishes else counts.fishes);
    no_works = counts.no_works;
    stolen;
    reports;
    sched_spans = !sched_spans;
    coord_pack_ns = !coord_pack_ns;
    coord_unpack_ns = !coord_unpack_ns;
    work_ns;
    spawn_ns;
    merged_metrics;
  }

let farm ?worker_argv ?packet_bytes ?transport ~procs (fs : (unit -> 'a) list) :
    'a list =
  if procs < 1 then invalid_arg "Farm.farm: procs must be >= 1";
  let worker_argv =
    match worker_argv with Some a -> a | None -> Worker.default_argv ()
  in
  let counts =
    { rounds = 0; tasks = 0; schedules = 0; fishes = 0; no_works = 0 }
  in
  let sched_spans = ref [] in
  (* The closure is marshalled with [Marshal.Closures]; that works
     because every PE runs the very same binary (same code-fragment
     digests).  Its captured environment travels by copy — the
     process-boundary analogue of Eden's whole-normal-form rule. *)
  let payloads =
    Array.of_list
      (List.map
         (fun f ->
           let g () = Marshal.to_string (f ()) [] in
           Marshal.to_string g [ Marshal.Closures ])
         fs)
  in
  let raw, links, _spawn_ns =
    with_links ?packet_bytes ?transport ~worker_argv ~procs
      ~mode:Message.Closures ~trace:false (fun links ->
        let raw =
          exec_round ~counts ~trace:false ~sched_spans ~links ~round:0 ~id0:0
            ~pinned:false payloads
        in
        (* The Harvest/Stats exchange also synchronises teardown: a
           worker's trailing [Fish] could otherwise race our [close]
           and die on EPIPE. *)
        let (_ : pe_report array) = harvest links in
        raw)
  in
  shutdown links;
  Array.to_list
    (Array.map
       (function
         | Message.Bytes_p s -> (Marshal.from_string s 0 : 'a)
         | Message.Floats_p _ -> failwith "dist: float blob in closure mode")
       raw)
