(** Coordinator of the distributed executor: spawns one worker process
    per PE, connects each over a socketpair, and drives barrier rounds
    of tasks with GUM-style demand scheduling.

    Placement is round-robin for the initial dispatch (each PE is
    primed with {!prefetch} tasks, Eden's master-worker prefetch);
    afterwards work moves on demand — an idle PE sends [Fish] and the
    coordinator answers with a [Schedule] or [No_work] (paper
    Sec. III-B).  Pinned rounds (APSP) bypass demand scheduling: task
    [i] always goes to PE [i mod procs], because the PE holds the
    matching resident state.

    The coordinator keeps an exactly-once ledger per round: a result
    for an unknown task, the wrong round, or an already-filled slot is
    a hard failure, not a silent overwrite. *)

type link = {
  pe : int;
  pid : int;
  conn : Wire.conn;
  mutable outstanding : int;  (** scheduled but not yet returned *)
}

type counts = {
  mutable rounds : int;
  mutable tasks : int;
  mutable schedules : int;
  mutable fishes : int;
  mutable no_works : int;
}

(** Coordinator-side timing of one [Schedule] send; with the worker's
    receive timestamp (same monotonic timebase) this bounds the wire
    span. *)
type sched_span = {
  sp_task_id : int;
  sp_pe : int;
  sp_round : int;
  send_start_ns : int;
  send_done_ns : int;
}

type pe_report = {
  rep_pe : int;
  rep_pid : int;
  stats : Message.worker_stats;  (** the PE's own view *)
  co : Wire.counters;  (** the coordinator's view of the same link *)
}

type outcome = {
  result : int;
  procs : int;
  rounds : int;
  tasks : int;
  schedules : int;
  fishes : int;
  no_works : int;
  reports : pe_report array;
  sched_spans : sched_span list;  (** newest first; [] unless traced *)
  coord_pack_ns : int;  (** task payload marshalling on the coordinator *)
  coord_unpack_ns : int;  (** result payload unmarshalling *)
  work_ns : int;  (** first dispatch to final [step]; excludes spawn *)
  spawn_ns : int;  (** process creation + handshakes *)
}

(** How many tasks each PE is primed with before demand scheduling
    takes over: one executing, one in flight. *)
let prefetch = 2

let spawn ?(packet_bytes = Wire.default_packet_bytes) ~worker_argv ~procs ~mode
    ~trace pe =
  let parent_fd, child_fd =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  (* Later children must not inherit this link, or a dead worker's
     EOF would never reach us. *)
  Unix.set_close_on_exec parent_fd;
  let pid =
    Unix.create_process worker_argv.(0) worker_argv child_fd Unix.stdout
      Unix.stderr
  in
  Unix.close child_fd;
  let conn = Wire.create ~packet_bytes ~read_fd:parent_fd ~write_fd:parent_fd () in
  Message.send_hello conn { Message.pe; procs; mode; trace };
  { pe; pid; conn; outstanding = 0 }

let kill_all links =
  Array.iter
    (fun l ->
      (try Unix.kill l.pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try Wire.close l.conn with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] l.pid) with Unix.Unix_error _ -> ())
    links

(* ---------------- one barrier round ---------------- *)

(* Drive [payloads] (pre-marshalled tasks) to completion, returning
   the marshalled results in task order.  [id0] makes task ids
   globally unique across rounds. *)
let exec_round ~(counts : counts) ~trace ~sched_spans ~(links : link array)
    ~round ~id0 ~pinned (payloads : string array) : string array =
  let n = Array.length payloads in
  let results : string option array = Array.make n None in
  let got = ref 0 in
  let next = ref 0 in
  let send_task (l : link) idx =
    let task_id = id0 + idx in
    let t0 = Clock.now_ns () in
    Message.send_to_worker l.conn
      (Schedule { task_id; round; payload = payloads.(idx) });
    if trace then
      sched_spans :=
        {
          sp_task_id = task_id;
          sp_pe = l.pe;
          sp_round = round;
          send_start_ns = t0;
          send_done_ns = Clock.now_ns ();
        }
        :: !sched_spans;
    l.outstanding <- l.outstanding + 1;
    counts.schedules <- counts.schedules + 1
  in
  (* Initial placement: pinned tasks to their owner, otherwise
     round-robin priming up to [prefetch] per PE. *)
  if pinned then
    for idx = 0 to n - 1 do
      send_task links.(idx mod Array.length links) idx
    done
  else begin
    let continue = ref true in
    while !continue do
      continue := false;
      Array.iter
        (fun l ->
          if l.outstanding < prefetch && !next < n then begin
            send_task l !next;
            incr next;
            continue := true
          end)
        links
    done
  end;
  let by_fd = Hashtbl.create (Array.length links) in
  Array.iter (fun l -> Hashtbl.replace by_fd (Wire.read_fd l.conn) l) links;
  let all_fds = Array.to_list (Array.map (fun l -> Wire.read_fd l.conn) links) in
  let rec select_ready () =
    match Unix.select all_fds [] [] (-1.0) with
    | ready, _, _ -> ready
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> select_ready ()
  in
  while !got < n do
    let ready = select_ready () in
    List.iter
      (fun fd ->
        let l = Hashtbl.find by_fd fd in
        (* recv never reads past one message, so readiness stays
           meaningful for the next select. *)
        match Message.recv_to_coordinator l.conn with
        | Fish ->
            counts.fishes <- counts.fishes + 1;
            if (not pinned) && !next < n then begin
              send_task l !next;
              incr next
            end
            else begin
              Message.send_to_worker l.conn Message.No_work;
              counts.no_works <- counts.no_works + 1
            end
        | Result { task_id; round = r; payload } ->
            if r <> round then
              failwith
                (Printf.sprintf "dist: PE %d returned a round-%d result in round %d"
                   l.pe r round);
            let idx = task_id - id0 in
            if idx < 0 || idx >= n then
              failwith
                (Printf.sprintf "dist: PE %d returned unknown task %d" l.pe
                   task_id);
            (match results.(idx) with
            | Some _ ->
                failwith
                  (Printf.sprintf "dist: duplicate result for task %d (PE %d)"
                     task_id l.pe)
            | None -> results.(idx) <- Some payload);
            incr got;
            l.outstanding <- l.outstanding - 1
        | Stats _ -> failwith "dist: unsolicited Stats before Harvest")
      ready
  done;
  counts.tasks <- counts.tasks + n;
  counts.rounds <- counts.rounds + 1;
  Array.map
    (function
      | Some s -> s
      | None -> failwith "dist: round ended with a missing result")
    results

(* ---------------- teardown ---------------- *)

let harvest (links : link array) : pe_report array =
  Array.map
    (fun l ->
      Message.send_to_worker l.conn Message.Harvest;
      let rec await () =
        match Message.recv_to_coordinator l.conn with
        | Fish ->
            (* a stray end-of-round fish racing the harvest *)
            Message.send_to_worker l.conn Message.No_work;
            await ()
        | Result _ -> failwith "dist: result arrived after the last round"
        | Stats s -> s
      in
      let stats = await () in
      { rep_pe = l.pe; rep_pid = l.pid; stats; co = Wire.counters l.conn })
    links

let shutdown (links : link array) =
  Array.iter (fun l -> Message.send_to_worker l.conn Message.Shutdown) links;
  Array.iter
    (fun l ->
      Wire.close l.conn;
      match Unix.waitpid [] l.pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED c ->
          failwith (Printf.sprintf "dist: PE %d exited with code %d" l.pe c)
      | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
          failwith (Printf.sprintf "dist: PE %d killed by signal %d" l.pe s))
    links

(* ---------------- typed entry points ---------------- *)

let with_links ?packet_bytes ~worker_argv ~procs ~mode ~trace f =
  let t0 = Clock.now_ns () in
  let links =
    Array.init procs (spawn ?packet_bytes ~worker_argv ~procs ~mode ~trace)
  in
  let spawn_ns = Clock.now_ns () - t0 in
  match f links with
  | v -> (v, links, spawn_ns)
  | exception e ->
      kill_all links;
      raise e

let run ?worker_argv ?packet_bytes ?(trace = false) ~procs ~size
    (module W : Workload.S) : outcome =
  if procs < 1 then invalid_arg "Farm.run: procs must be >= 1";
  let worker_argv =
    match worker_argv with Some a -> a | None -> Worker.default_argv ()
  in
  let counts = { rounds = 0; tasks = 0; schedules = 0; fishes = 0; no_works = 0 } in
  let sched_spans = ref [] in
  let coord_pack_ns = ref 0 and coord_unpack_ns = ref 0 in
  let mode = Message.Workload { name = W.name; size } in
  let (result, work_ns, reports), links, spawn_ns =
    with_links ?packet_bytes ~worker_argv ~procs ~mode ~trace (fun links ->
        let t0 = Clock.now_ns () in
        let rec rounds st tasks pinned =
          let tp0 = Clock.now_ns () in
          let payloads =
            Array.map (fun t -> Marshal.to_string (t : W.task) []) tasks
          in
          coord_pack_ns := !coord_pack_ns + (Clock.now_ns () - tp0);
          let raw =
            exec_round ~counts ~trace ~sched_spans ~links ~round:counts.rounds
              ~id0:counts.tasks ~pinned payloads
          in
          let tu0 = Clock.now_ns () in
          let results =
            Array.map (fun s -> (Marshal.from_string s 0 : W.result)) raw
          in
          coord_unpack_ns := !coord_unpack_ns + (Clock.now_ns () - tu0);
          match W.step st results with
          | `Done v -> v
          | `Round (st, tasks, pinned) -> rounds st tasks pinned
        in
        let st, tasks, pinned = W.start ~size ~procs in
        let result = rounds st tasks pinned in
        let work_ns = Clock.now_ns () - t0 in
        let reports = harvest links in
        (result, work_ns, reports))
  in
  shutdown links;
  {
    result;
    procs;
    rounds = counts.rounds;
    tasks = counts.tasks;
    schedules = counts.schedules;
    fishes = counts.fishes;
    no_works = counts.no_works;
    reports;
    sched_spans = !sched_spans;
    coord_pack_ns = !coord_pack_ns;
    coord_unpack_ns = !coord_unpack_ns;
    work_ns;
    spawn_ns;
  }

let farm ?worker_argv ?packet_bytes ~procs (fs : (unit -> 'a) list) : 'a list =
  if procs < 1 then invalid_arg "Farm.farm: procs must be >= 1";
  let worker_argv =
    match worker_argv with Some a -> a | None -> Worker.default_argv ()
  in
  let counts = { rounds = 0; tasks = 0; schedules = 0; fishes = 0; no_works = 0 } in
  let sched_spans = ref [] in
  (* The closure is marshalled with [Marshal.Closures]; that works
     because every PE runs the very same binary (same code-fragment
     digests).  Its captured environment travels by copy — the
     process-boundary analogue of Eden's whole-normal-form rule. *)
  let payloads =
    Array.of_list
      (List.map
         (fun f ->
           let g () = Marshal.to_string (f ()) [] in
           Marshal.to_string g [ Marshal.Closures ])
         fs)
  in
  let raw, links, _spawn_ns =
    with_links ?packet_bytes ~worker_argv ~procs ~mode:Message.Closures
      ~trace:false (fun links ->
        let raw =
          exec_round ~counts ~trace:false ~sched_spans ~links ~round:0 ~id0:0
            ~pinned:false payloads
        in
        (* The Harvest/Stats exchange also synchronises teardown: a
           worker's trailing [Fish] could otherwise race our [close]
           and die on EPIPE. *)
        let (_ : pe_report array) = harvest links in
        raw)
  in
  shutdown links;
  Array.to_list (Array.map (fun s : 'a -> Marshal.from_string s 0) raw)
