(** Coordinator of the distributed (multi-process) executor: task-farm
    scheduling with GUM-style passive work requests (FISH/SCHEDULE),
    one worker process per PE, over a choice of transport. *)

(** The paper's PVM-on-sockets vs PVM-on-shared-memory axis:
    {!Sock} is a socketpair per worker in a star (demand requests go
    through the coordinator); {!Shm} is a pair of mapped single-
    producer rings per link plus a peer-to-peer mesh (demand requests
    go worker-to-worker, the coordinator sees only results). *)
type transport = Sock | Shm

(** ["socketpair"] / ["shm"] — the name used in reports and JSON. *)
val transport_name : transport -> string

(** Coordinator-side timing of one [Schedule] send (same monotonic
    timebase as the worker's spans, so {!Timeline} can draw the wire
    segment between them). *)
type sched_span = {
  sp_task_id : int;
  sp_pe : int;
  sp_round : int;
  sp_bytes : int;  (** marshalled task payload size *)
  send_start_ns : int;
  send_done_ns : int;
}

type pe_report = {
  rep_pe : int;
  rep_pid : int;
  stats : Message.worker_stats;  (** the PE's own view of the session *)
  co : Wire.counters;  (** the coordinator's view of the same link *)
}

type outcome = {
  result : int;
  procs : int;
  rounds : int;
  tasks : int;
  schedules : int;  (** [Schedule] messages sent (either endpoint) *)
  fishes : int;
      (** work requests: coordinator-received over sock, summed
          peer-to-peer over shm *)
  no_works : int;  (** fishes that found nothing runnable *)
  stolen : int;  (** tasks that moved worker-to-worker (shm only) *)
  reports : pe_report array;
  sched_spans : sched_span list;  (** newest first; [] unless traced *)
  coord_pack_ns : int;  (** task payload marshalling on the coordinator *)
  coord_unpack_ns : int;  (** result payload unmarshalling *)
  work_ns : int;  (** first dispatch to final [step]; excludes spawn *)
  spawn_ns : int;  (** process creation + handshakes *)
  merged_metrics : Repro_metrics.Metrics.snapshot;
      (** every PE's piggybacked registry snapshot (relabeled [pe=N])
          merged into the coordinator's own (relabeled [pe=coord]) —
          the farm-wide live view, one registry across all processes *)
}

(** Tasks each PE is primed with before demand scheduling takes over
    (sock transport; shm pushes whole rounds up front). *)
val prefetch : int

(** [run ~procs ~size (module W)] executes the workload on [procs]
    worker processes and returns the checksum plus per-PE traffic, GC
    and timing counters.  [worker_argv] defaults to re-executing this
    binary with [Worker.marker] (the host binary must call
    [Worker.maybe_run]).  [transport] defaults to {!Sock};
    [ring_bytes] sizes each shm ring (data area per direction).
    [trace] records per-task spans on every PE and schedule spans on
    the coordinator.

    @raise Invalid_argument if [procs < 1].
    @raise Failure on protocol violations (duplicate or unknown
    results, a worker dying, a worker exiting non-zero). *)
val run :
  ?worker_argv:string array ->
  ?packet_bytes:int ->
  ?transport:transport ->
  ?ring_bytes:int ->
  ?trace:bool ->
  procs:int ->
  size:int ->
  (module Workload.S) ->
  outcome

(** [farm fs] evaluates each closure on some PE and returns the
    results in order — Eden's process-abstraction farm.  Closures are
    marshalled with [Marshal.Closures], which is only sound because
    every worker runs the same binary; captured state travels by copy,
    and results must be marshallable (no functions baked in). *)
val farm :
  ?worker_argv:string array ->
  ?packet_bytes:int ->
  ?transport:transport ->
  procs:int ->
  (unit -> 'a) list ->
  'a list
