(** A point-to-point link over either transport.

    {!Message}, {!Farm} and {!Worker} speak through this sum so the
    whole executor is transport-agnostic — selecting [--transport shm]
    swaps the byte-moving machinery under an unchanged protocol, which
    is the experiment the paper runs when it maps PVM onto shared
    memory.  A first-class-module [TRANSPORT] value would do the same
    job; the sum keeps dispatch monomorphic (two direct calls) on a
    path hot enough to care. *)

type t = Sock of Wire.conn | Shm of Shm_ring.conn

let send = function Sock c -> Wire.send c | Shm c -> Shm_ring.send c
let recv = function Sock c -> Wire.recv c | Shm c -> Shm_ring.recv c

let send_floats = function
  | Sock c -> Wire.send_floats c
  | Shm c -> Shm_ring.send_floats c

let recv_floats l ~len =
  match l with
  | Sock c -> Wire.recv_floats c ~len
  | Shm c -> Shm_ring.recv_floats c ~len

let counters = function Sock c -> Wire.counters c | Shm c -> Shm_ring.counters c

let input_ready = function
  | Sock c -> Wire.input_ready c
  | Shm c -> Shm_ring.input_ready c

let close = function Sock c -> Wire.close c | Shm c -> Shm_ring.close c

let set_on_wait l f =
  match l with Sock _ -> () | Shm c -> Shm_ring.set_on_wait c f

(* Links a waiter can block on: socks always, shm only with a
   doorbell.  Doorbell-less (peer-to-peer) links are covered by the
   caller's timeout. *)
let selectable_fd = function
  | Sock c -> Some (Wire.read_fd c)
  | Shm c -> if Shm_ring.has_doorbell c then Some (Shm_ring.wait_fd c) else None

(** Block until some link {e may} have input (spurious wake-ups
    allowed, missed messages not), or [timeout] (seconds, negative =
    forever) elapses.  Over socks this is plain [select]; over shm it
    is the arm-recheck-block doorbell handshake on every link at once.
    @raise End_of_file if a peer closed its doorbell with nothing in
    flight. *)
let wait_any ?(timeout = -1.0) (links : t array) =
  let any_ready () = Array.exists input_ready links in
  if not (any_ready ()) then begin
    (* spin a little first: the common case is a peer already mid-send *)
    let spins = ref 0 in
    while (not (any_ready ())) && !spins < 256 do
      incr spins
    done;
    if not (any_ready ()) then begin
      Array.iter
        (function Shm c when Shm_ring.has_doorbell c -> Shm_ring.prepare_sleep c
          | _ -> ())
        links;
      let disarm () =
        Array.iter
          (function
            | Shm c when Shm_ring.has_doorbell c ->
                Shm_ring.drain_doorbell c;
                Shm_ring.cancel_sleep c
            | _ -> ())
          links
      in
      Fun.protect ~finally:disarm (fun () ->
          if not (any_ready ()) then begin
            let fds = Array.to_list links |> List.filter_map selectable_fd in
            (* doorbell-less links exist: never block forever on the
               descriptors alone *)
            let timeout =
              if Array.for_all (fun l -> selectable_fd l <> None) links then
                timeout
              else if timeout < 0.0 then 0.002
              else min timeout 0.002
            in
            let rec sel () =
              match Unix.select fds [] [] timeout with
              | ready, _, _ -> ready
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> sel ()
            in
            ignore (sel ())
          end);
      (* [disarm] drained tokens; a drained EOF with nothing in any
         ring means a peer died — surface it the way Wire's recv
         does, or the caller would spin on the closed descriptor. *)
      if
        (not (any_ready ()))
        && Array.exists
             (function Shm c -> Shm_ring.peer_gone c | Sock _ -> false)
             links
      then raise End_of_file
    end
  end
