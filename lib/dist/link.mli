(** A point-to-point link over either transport ({!Wire} socketpair or
    {!Shm_ring}), so the protocol layers above are transport-agnostic. *)

type t = Sock of Wire.conn | Shm of Shm_ring.conn

val send : t -> string -> unit
val recv : t -> string
val send_floats : t -> float array -> unit
val recv_floats : t -> len:int -> float array
val counters : t -> Wire.counters
val input_ready : t -> bool
val close : t -> unit

(** No-op on sock links (they never block with data queued behind
    them); see {!Shm_ring.set_on_wait}. *)
val set_on_wait : t -> (unit -> unit) option -> unit

(** Block until some link {e may} have input (spurious wake-ups
    allowed, missed messages never), or [timeout] seconds (negative =
    forever) pass.  Capped at a short poll interval while any
    doorbell-less link is in the set.
    @raise End_of_file if a peer died with every ring drained. *)
val wait_any : ?timeout:float -> t array -> unit
