(** Wall-clock measurement of distributed runs: per-process-count
    timings, speedup sweeps, message/byte/GC counters, ASCII tables
    and the [BENCH_dist.json] rows — the Eden-side counterpart of
    [Repro_exec.Harness].

    Timings use the outcome's [work_ns] (first dispatch to final
    combine), so process spawning is reported separately and the
    speedup curves compare scheduling + communication + compute, not
    [create_process] overhead. *)

module Stats = Repro_util.Stats
module Tablefmt = Repro_util.Tablefmt
module Json = Repro_util.Json_out

type per_pe = {
  pe : int;
  pe_tasks : int;
  pe_fishes : int;
  pe_stolen : int;
  pe_grants : int;
  msgs_sent : int;
  msgs_recv : int;
  bytes_sent : int;
  bytes_recv : int;
  packets_sent : int;
  packets_recv : int;
  payload_bytes_sent : int;
  payload_bytes_recv : int;
  zero_copy_bytes_sent : int;
  zero_copy_bytes_recv : int;
  pack_ns : int;
  unpack_ns : int;
  exec_ns : int;
  gc_minor_collections : int;
  gc_major_collections : int;
  gc_minor_words : float;
  gc_promoted_words : float;
}

type measurement = {
  workload : string;
  transport : string;
  size : int;
  procs : int;
  repeats : int;
  mean_ns : float;
  stddev_ns : float;
  min_ns : float;
  speedup : float;  (** vs the first entry of the same sweep; 1.0 alone *)
  result : int;
  spawn_mean_ns : float;
  rounds : int;
  tasks : int;
  schedules : int;
  fishes : int;
  no_works : int;
  stolen : int;  (** tasks that moved worker-to-worker (shm) *)
  msgs : int;  (** worker-side messages, sent + received, all PEs *)
  bytes : int;  (** on-wire bytes incl. packet headers, both directions *)
  packets : int;
  payload_bytes : int;  (** application payload, headers excluded *)
  zero_copy_bytes : int;  (** float frames read/written in place (shm) *)
  pack_ns : int;  (** marshalling time summed over PEs *)
  unpack_ns : int;
  minor_collections : int;  (** private-heap GC deltas summed over PEs *)
  major_collections : int;
  minor_words : float;
  promoted_words : float;
  per_pe : per_pe array;  (** from the last timed repeat *)
}

let per_pe_of_report (r : Farm.pe_report) : per_pe =
  let s = r.Farm.stats in
  {
    pe = s.Message.stats_pe;
    pe_tasks = s.tasks_executed;
    pe_fishes = s.fishes_sent;
    pe_stolen = s.tasks_stolen;
    pe_grants = s.grants_given;
    msgs_sent = s.msgs_sent;
    msgs_recv = s.msgs_recv;
    bytes_sent = s.bytes_sent;
    bytes_recv = s.bytes_recv;
    packets_sent = s.packets_sent;
    packets_recv = s.packets_recv;
    payload_bytes_sent = s.payload_bytes_sent;
    payload_bytes_recv = s.payload_bytes_recv;
    zero_copy_bytes_sent = s.zero_copy_bytes_sent;
    zero_copy_bytes_recv = s.zero_copy_bytes_recv;
    pack_ns = s.pack_ns;
    unpack_ns = s.unpack_ns;
    exec_ns = s.exec_ns;
    gc_minor_collections = s.gc_minor_collections;
    gc_major_collections = s.gc_major_collections;
    gc_minor_words = s.gc_minor_words;
    gc_promoted_words = s.gc_promoted_words;
  }

let measure ?(repeats = 3) ?worker_argv ?transport ~procs ~size
    (module W : Workload.S) : measurement =
  if repeats < 1 then invalid_arg "Measure.measure: repeats must be >= 1";
  let runs =
    (* one warm-up + [repeats] timed runs; every run spawns fresh
       worker processes, so the warm-up only warms the coordinator's
       code paths and the page cache *)
    Array.init (repeats + 1) (fun _ ->
        Farm.run ?worker_argv ?transport ~procs ~size (module W))
  in
  let timed = Array.sub runs 1 repeats in
  let first = timed.(0) in
  Array.iter
    (fun (o : Farm.outcome) ->
      if o.Farm.result <> first.Farm.result then
        failwith
          (Printf.sprintf "dist %s: nondeterministic result (%d vs %d)" W.name
             o.Farm.result first.Farm.result))
    runs;
  let times = Stats.create () and spawns = Stats.create () in
  Array.iter
    (fun (o : Farm.outcome) ->
      Stats.add times (float_of_int o.Farm.work_ns);
      Stats.add spawns (float_of_int o.Farm.spawn_ns))
    timed;
  let last = timed.(repeats - 1) in
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 last.Farm.reports in
  let sumf f = Array.fold_left (fun acc r -> acc +. f r) 0.0 last.Farm.reports in
  {
    workload = W.name;
    transport =
      Farm.transport_name (Option.value transport ~default:Farm.Sock);
    size;
    procs;
    repeats;
    mean_ns = Stats.mean times;
    stddev_ns = Stats.stddev times;
    min_ns = Stats.min_value times;
    speedup = 1.0;
    result = first.Farm.result;
    spawn_mean_ns = Stats.mean spawns;
    rounds = last.Farm.rounds;
    tasks = last.Farm.tasks;
    schedules = last.Farm.schedules;
    fishes = last.Farm.fishes;
    no_works = last.Farm.no_works;
    stolen = last.Farm.stolen;
    msgs = sum (fun r -> r.Farm.stats.Message.msgs_sent + r.Farm.stats.Message.msgs_recv);
    bytes = sum (fun r -> r.Farm.stats.Message.bytes_sent + r.Farm.stats.Message.bytes_recv);
    packets =
      sum (fun r -> r.Farm.stats.Message.packets_sent + r.Farm.stats.Message.packets_recv);
    payload_bytes =
      sum (fun r ->
          r.Farm.stats.Message.payload_bytes_sent
          + r.Farm.stats.Message.payload_bytes_recv);
    zero_copy_bytes =
      sum (fun r ->
          r.Farm.stats.Message.zero_copy_bytes_sent
          + r.Farm.stats.Message.zero_copy_bytes_recv);
    pack_ns = sum (fun r -> r.Farm.stats.Message.pack_ns);
    unpack_ns = sum (fun r -> r.Farm.stats.Message.unpack_ns);
    minor_collections = sum (fun r -> r.Farm.stats.Message.gc_minor_collections);
    major_collections = sum (fun r -> r.Farm.stats.Message.gc_major_collections);
    minor_words = sumf (fun r -> r.Farm.stats.Message.gc_minor_words);
    promoted_words = sumf (fun r -> r.Farm.stats.Message.gc_promoted_words);
    per_pe = Array.map per_pe_of_report last.Farm.reports;
  }

let sweep ?repeats ?worker_argv ?transport ~procs_list ~size
    (module W : Workload.S) : measurement list =
  match procs_list with
  | [] -> []
  | _ ->
      let ms =
        List.map
          (fun procs ->
            measure ?repeats ?worker_argv ?transport ~procs ~size (module W))
          procs_list
      in
      let base = (List.hd ms).mean_ns in
      List.map (fun m -> { m with speedup = base /. m.mean_ns }) ms

let ms ns = ns /. 1e6

let to_table (ms_list : measurement list) : Tablefmt.t
    =
  let t =
    Tablefmt.create
      ~aligns:
        [
          Tablefmt.Left;
          Tablefmt.Left;
          Tablefmt.Right;
          Tablefmt.Right;
          Tablefmt.Right;
          Tablefmt.Right;
          Tablefmt.Right;
          Tablefmt.Right;
          Tablefmt.Right;
          Tablefmt.Right;
          Tablefmt.Right;
          Tablefmt.Right;
        ]
      [
        "workload";
        "wire";
        "size";
        "procs";
        "mean ms";
        "stddev";
        "speedup";
        "msgs";
        "kbytes";
        "0copy kb";
        "fishes";
        "gc minor";
      ]
  in
  List.iter
    (fun m ->
      Tablefmt.add_row t
        [
          m.workload;
          m.transport;
          string_of_int m.size;
          string_of_int m.procs;
          Printf.sprintf "%.2f" (ms m.mean_ns);
          Printf.sprintf "%.2f" (ms m.stddev_ns);
          Printf.sprintf "%.2f" m.speedup;
          string_of_int m.msgs;
          Printf.sprintf "%.1f" (float_of_int m.bytes /. 1024.0);
          Printf.sprintf "%.1f" (float_of_int m.zero_copy_bytes /. 1024.0);
          string_of_int m.fishes;
          string_of_int m.minor_collections;
        ])
    ms_list;
  t

let json_of_per_pe (p : per_pe) : Json.t =
  Json.Obj
    [
      ("pe", Json.Int p.pe);
      ("tasks", Json.Int p.pe_tasks);
      ("fishes", Json.Int p.pe_fishes);
      ("stolen", Json.Int p.pe_stolen);
      ("grants", Json.Int p.pe_grants);
      ("msgs_sent", Json.Int p.msgs_sent);
      ("msgs_recv", Json.Int p.msgs_recv);
      ("bytes_sent", Json.Int p.bytes_sent);
      ("bytes_recv", Json.Int p.bytes_recv);
      ("packets_sent", Json.Int p.packets_sent);
      ("packets_recv", Json.Int p.packets_recv);
      ("payload_bytes_sent", Json.Int p.payload_bytes_sent);
      ("payload_bytes_recv", Json.Int p.payload_bytes_recv);
      ("zero_copy_bytes_sent", Json.Int p.zero_copy_bytes_sent);
      ("zero_copy_bytes_recv", Json.Int p.zero_copy_bytes_recv);
      ("pack_ns", Json.Int p.pack_ns);
      ("unpack_ns", Json.Int p.unpack_ns);
      ("exec_ns", Json.Int p.exec_ns);
      ("gc_minor_collections", Json.Int p.gc_minor_collections);
      ("gc_major_collections", Json.Int p.gc_major_collections);
      ("gc_minor_words", Json.Float p.gc_minor_words);
      ("gc_promoted_words", Json.Float p.gc_promoted_words);
    ]

let json_of_measurement (m : measurement) : Json.t =
  Json.Obj
    [
      ("workload", Json.Str m.workload);
      ("transport", Json.Str m.transport);
      ("size", Json.Int m.size);
      ("procs", Json.Int m.procs);
      ("repeats", Json.Int m.repeats);
      ("mean_ns", Json.Float m.mean_ns);
      ("stddev_ns", Json.Float m.stddev_ns);
      ("min_ns", Json.Float m.min_ns);
      ("speedup", Json.Float m.speedup);
      ("result", Json.Int m.result);
      ("spawn_mean_ns", Json.Float m.spawn_mean_ns);
      ("rounds", Json.Int m.rounds);
      ("tasks", Json.Int m.tasks);
      ("schedules", Json.Int m.schedules);
      ("fishes", Json.Int m.fishes);
      ("no_works", Json.Int m.no_works);
      ("stolen", Json.Int m.stolen);
      ("msgs", Json.Int m.msgs);
      ("bytes", Json.Int m.bytes);
      ("packets", Json.Int m.packets);
      ("payload_bytes", Json.Int m.payload_bytes);
      ("zero_copy_bytes", Json.Int m.zero_copy_bytes);
      ("pack_ns", Json.Int m.pack_ns);
      ("unpack_ns", Json.Int m.unpack_ns);
      ("minor_collections", Json.Int m.minor_collections);
      ("major_collections", Json.Int m.major_collections);
      ("minor_words", Json.Float m.minor_words);
      ("promoted_words", Json.Float m.promoted_words);
      ("per_pe", Json.List (Array.to_list (Array.map json_of_per_pe m.per_pe)));
    ]

(** [header] should come from [Harness.env_header
    ~backend:"processes" ~transport:"socketpair" ()] (not referenced
    here to keep [repro.dist] independent of [repro.exec]). *)
let json_document ~header (ms_list : measurement list) : Json.t =
  Json.Obj
    [
      ("schema", Json.Str "repro/bench-dist/v1");
      ("env", Json.Obj header);
      ( "measurements",
        Json.List (List.map json_of_measurement ms_list) );
    ]
