(** Wall-clock measurement of distributed runs — the Eden-side
    counterpart of [Repro_exec.Harness]: per-process-count timings and
    speedups plus the message/byte/packet and private-heap GC counters
    no shared-memory run has. *)

type per_pe = {
  pe : int;
  pe_tasks : int;
  pe_fishes : int;
  pe_stolen : int;  (** tasks this PE executed after stealing them *)
  pe_grants : int;  (** tasks this PE handed to fishing peers *)
  msgs_sent : int;
  msgs_recv : int;
  bytes_sent : int;  (** on-wire bytes, packet headers included *)
  bytes_recv : int;
  packets_sent : int;
  packets_recv : int;
  payload_bytes_sent : int;  (** application payload, headers excluded *)
  payload_bytes_recv : int;
  zero_copy_bytes_sent : int;  (** float frames written in place (shm) *)
  zero_copy_bytes_recv : int;
  pack_ns : int;
  unpack_ns : int;
  exec_ns : int;
  gc_minor_collections : int;  (** deltas of the PE's private heap *)
  gc_major_collections : int;
  gc_minor_words : float;
  gc_promoted_words : float;
}

type measurement = {
  workload : string;
  transport : string;  (** ["socketpair"] or ["shm"] *)
  size : int;
  procs : int;
  repeats : int;
  mean_ns : float;  (** [work_ns]: dispatch to final combine *)
  stddev_ns : float;
  min_ns : float;
  speedup : float;  (** vs the first entry of the same sweep; 1.0 alone *)
  result : int;
  spawn_mean_ns : float;  (** process creation + handshakes, reported apart *)
  rounds : int;
  tasks : int;
  schedules : int;
  fishes : int;
  no_works : int;
  stolen : int;  (** tasks that moved worker-to-worker (shm) *)
  msgs : int;  (** worker-side messages, sent + received, all PEs *)
  bytes : int;
  packets : int;
  payload_bytes : int;  (** application payload, headers excluded *)
  zero_copy_bytes : int;  (** float frames read/written in place (shm) *)
  pack_ns : int;
  unpack_ns : int;
  minor_collections : int;  (** summed over the PEs' private heaps *)
  major_collections : int;
  minor_words : float;
  promoted_words : float;
  per_pe : per_pe array;  (** from the last timed repeat *)
}

(** One warm-up plus [repeats] (default 3) timed runs, each on fresh
    worker processes.
    @raise Failure if two repeats disagree on the result checksum. *)
val measure :
  ?repeats:int ->
  ?worker_argv:string array ->
  ?transport:Farm.transport ->
  procs:int ->
  size:int ->
  (module Workload.S) ->
  measurement

(** Measure at each process count; speedups relative to the first
    entry. *)
val sweep :
  ?repeats:int ->
  ?worker_argv:string array ->
  ?transport:Farm.transport ->
  procs_list:int list ->
  size:int ->
  (module Workload.S) ->
  measurement list

val to_table : measurement list -> Repro_util.Tablefmt.t
val json_of_measurement : measurement -> Repro_util.Json_out.t

(** [BENCH_dist.json]-style document; pass
    [Repro_exec.Harness.env_header ~backend:"processes"
    ~transport:(Farm.transport_name t) ()] as [header]. *)
val json_document :
  header:(string * Repro_util.Json_out.t) list ->
  measurement list ->
  Repro_util.Json_out.t
