(** The coordinator/PE message vocabulary, GUM-style (paper
    Sec. III-B): the coordinator pushes work with [Schedule] (GUM's
    SCHEDULE message), idle PEs ask for more with [Fish] (GUM's FISH),
    and a PE that fished when nothing was runnable gets [No_work] and
    is remembered as hungry.  [Harvest]/[Stats] drain the per-PE
    counters at shutdown.

    Over the shm transport FISH goes {e peer-to-peer}: workers hold
    direct links to each other, an idle PE fishes a victim directly
    and the victim's surplus tasks flow straight back ({!to_peer}) —
    the coordinator sees only results and teardown traffic, exactly
    GUM's topology instead of the socketpair star.

    Control payloads are [Marshal]-serialised {e fully-evaluated}
    values — Eden's rule that only whole normal forms cross the heap
    boundary.  Task and result payloads are pre-marshalled by the
    typed layer ({!Farm}) and travel here as opaque strings, so this
    module is monomorphic and every byte on the wire is accounted to
    the link's counters, marshalling time included.  Bulk float
    results bypass [Marshal] entirely: a [Result] with [blob >= 0]
    announces a float message of that many elements following on the
    same link (see {!send_result}/{!recv_result_payload}). *)

type mode =
  | Workload of { name : string; size : int }
      (** run tasks of the registered workload [name] *)
  | Closures  (** task payloads are marshalled [unit -> string] closures *)

(** First message on a fresh connection, coordinator to PE. *)
type hello = {
  pe : int;
  procs : int;
  mode : mode;
  trace : bool;  (** record per-task spans and ship them in [Stats] *)
}

type to_worker =
  | Schedule of {
      task_id : int;
      round : int;
      stealable : bool;
          (** peers may take this task ([false] for pinned rounds —
              the PE holds matching resident state) *)
      payload : string;
    }
  | No_work
  | Harvest
  | Shutdown

(** Worker-to-worker traffic on the peer-to-peer links (shm transport
    only). *)
type to_peer =
  | Peer_fish of { thief_pe : int; round : int }
  | Peer_grant of { round : int; tasks : (int * string) array }
      (** surplus (task_id, payload) pairs from the victim's local
          queue — the SCHEDULE reply flowing directly to the requester *)
  | Peer_no_work of { round : int }

(** One task's life on a PE, monotonic-clock nanoseconds (comparable
    with coordinator timestamps — see {!Clock}). *)
type task_span = {
  span_task_id : int;
  recv_done_ns : int;
  span_unpack_ns : int;
  exec_start_ns : int;
  exec_end_ns : int;
  span_pack_ns : int;
}

type worker_stats = {
  stats_pe : int;
  tasks_executed : int;
  fishes_sent : int;  (** demand requests: to the coordinator (sock) or to peers (shm) *)
  tasks_stolen : int;  (** executed tasks that arrived via a peer grant *)
  grants_given : int;  (** tasks handed to fishing peers *)
  msgs_sent : int;  (** summed over every link the PE holds *)
  msgs_recv : int;
  bytes_sent : int;
  bytes_recv : int;
  packets_sent : int;
  packets_recv : int;
  payload_bytes_sent : int;
  payload_bytes_recv : int;
  zero_copy_bytes_sent : int;
  zero_copy_bytes_recv : int;
  pack_ns : int;
  unpack_ns : int;
  exec_ns : int;  (** time inside [W.execute], summed *)
  gc_minor_collections : int;  (** deltas over the PE's own private heap *)
  gc_major_collections : int;
  gc_minor_words : float;
  gc_promoted_words : float;
  spans : task_span list;
  spans_dropped : int;
  metrics : Repro_metrics.Metrics.snapshot;
      (** the PE's full registry snapshot, piggybacked on the Stats
          reply so the coordinator can hold a merged live view of the
          whole farm (snapshots are plain data, Marshal-safe) *)
}

type to_coordinator =
  | Ready  (** shm only: every segment is mapped, safe to unlink *)
  | Fish
  | Result of {
      task_id : int;
      round : int;
      payload : string;
      blob : int;
          (** [-1]: [payload] is the marshalled result.  [>= 0]: the
              result is the float message of this many elements
              following on this link, and [payload] is empty. *)
    }
  | Stats of worker_stats

(* ---------------- wire glue ---------------- *)

(* Marshal + send, with the serialisation time accounted to the link
   (the real-world analogue of the simulator's [pack_ns_per_byte]
   charge on the sending thread). *)
let send_value link v =
  let t0 = Clock.now_ns () in
  let s = Marshal.to_string v [] in
  let c = Link.counters link in
  c.Wire.pack_ns <- c.Wire.pack_ns + (Clock.now_ns () - t0);
  Link.send link s

let recv_value : type a. Link.t -> a =
 fun link ->
  let s = Link.recv link in
  let t0 = Clock.now_ns () in
  let v : a = Marshal.from_string s 0 in
  let c = Link.counters link in
  c.Wire.unpack_ns <- c.Wire.unpack_ns + (Clock.now_ns () - t0);
  v

let send_hello link (h : hello) = send_value link h
let recv_hello link : hello = recv_value link
let send_to_worker link (m : to_worker) = send_value link m
let recv_to_worker link : to_worker = recv_value link
let send_to_coordinator link (m : to_coordinator) = send_value link m
let recv_to_coordinator link : to_coordinator = recv_value link
let send_to_peer link (m : to_peer) = send_value link m
let recv_to_peer link : to_peer = recv_value link

(** A result payload in transit: marshalled bytes, or a float blob
    that travelled (and on shm, crossed the rings) without [Marshal]. *)
type payload = Bytes_p of string | Floats_p of float array

let send_result link ~task_id ~round (p : payload) =
  match p with
  | Bytes_p s ->
      send_value link (Result { task_id; round; payload = s; blob = -1 })
  | Floats_p arr ->
      send_value link
        (Result { task_id; round; payload = ""; blob = Array.length arr });
      Link.send_floats link arr

(** Complete a received [Result]: pull the announced float blob off
    the same link, if any.  Must be called before the link is read
    again — the blob frames are queued right behind the control
    message. *)
let recv_result_payload link ~blob ~payload : payload =
  if blob < 0 then Bytes_p payload else Floats_p (Link.recv_floats link ~len:blob)
