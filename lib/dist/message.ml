(** The coordinator/PE message vocabulary, GUM-style (paper
    Sec. III-B): the coordinator pushes work with [Schedule] (GUM's
    SCHEDULE message), idle PEs ask for more with [Fish] (GUM's FISH),
    and a PE that fished when nothing was runnable gets [No_work] and
    is remembered as hungry.  [Harvest]/[Stats] drain the per-PE
    counters at shutdown.

    All payloads are [Marshal]-serialised {e fully-evaluated} values —
    Eden's rule that only whole normal forms cross the heap boundary.
    Task and result payloads are pre-marshalled by the typed layer
    ({!Farm}) and travel here as opaque strings, so this module is
    monomorphic and every byte on the wire is accounted to the
    connection's counters, marshalling time included. *)

type mode =
  | Workload of { name : string; size : int }
      (** run tasks of the registered workload [name] *)
  | Closures  (** task payloads are marshalled [unit -> string] closures *)

(** First message on a fresh connection, coordinator to PE. *)
type hello = {
  pe : int;
  procs : int;
  mode : mode;
  trace : bool;  (** record per-task spans and ship them in [Stats] *)
}

type to_worker =
  | Schedule of { task_id : int; round : int; payload : string }
  | No_work
  | Harvest
  | Shutdown

(** One task's life on a PE, monotonic-clock nanoseconds (comparable
    with coordinator timestamps — see {!Clock}). *)
type task_span = {
  span_task_id : int;
  recv_done_ns : int;
  span_unpack_ns : int;
  exec_start_ns : int;
  exec_end_ns : int;
  span_pack_ns : int;
}

type worker_stats = {
  stats_pe : int;
  tasks_executed : int;
  fishes_sent : int;
  msgs_sent : int;
  msgs_recv : int;
  bytes_sent : int;
  bytes_recv : int;
  packets_sent : int;
  packets_recv : int;
  pack_ns : int;
  unpack_ns : int;
  exec_ns : int;  (** time inside [W.execute], summed *)
  gc_minor_collections : int;  (** deltas over the PE's own private heap *)
  gc_major_collections : int;
  gc_minor_words : float;
  gc_promoted_words : float;
  spans : task_span list;
  spans_dropped : int;
}

type to_coordinator =
  | Fish
  | Result of { task_id : int; round : int; payload : string }
  | Stats of worker_stats

(* ---------------- wire glue ---------------- *)

(* Marshal + send, with the serialisation time accounted to the
   connection (the real-world analogue of the simulator's
   [pack_ns_per_byte] charge on the sending thread). *)
let send_value conn v =
  let t0 = Clock.now_ns () in
  let s = Marshal.to_string v [] in
  let c = Wire.counters conn in
  c.Wire.pack_ns <- c.Wire.pack_ns + (Clock.now_ns () - t0);
  Wire.send conn s

let recv_value : type a. Wire.conn -> a =
 fun conn ->
  let s = Wire.recv conn in
  let t0 = Clock.now_ns () in
  let v : a = Marshal.from_string s 0 in
  let c = Wire.counters conn in
  c.Wire.unpack_ns <- c.Wire.unpack_ns + (Clock.now_ns () - t0);
  v

let send_hello conn (h : hello) = send_value conn h
let recv_hello conn : hello = recv_value conn
let send_to_worker conn (m : to_worker) = send_value conn m
let recv_to_worker conn : to_worker = recv_value conn
let send_to_coordinator conn (m : to_coordinator) = send_value conn m
let recv_to_coordinator conn : to_coordinator = recv_value conn
