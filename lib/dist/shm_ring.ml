(** Shared-memory ring transport: the second {!Wire.TRANSPORT}.

    Where {!Wire} moves packets through the kernel (two copies and a
    syscall per packet, each way), this transport moves frames through
    a pair of mmap'd single-producer/single-consumer ring buffers — one
    per direction — so the hot path is write/publish/consume with {e
    zero syscalls}.  This is the paper's "PVM mapped onto shared
    memory" point in the design space: same message-passing semantics
    as the socketpair transport (the [Message] layer cannot tell them
    apart), an order of magnitude less cost per message.

    {2 Segment layout}

    One segment file (preferably on [/dev/shm]) holds both rings:

    {v
      ring A->B header | ring A->B data | ring B->A header | ring B->A data
    v}

    A ring header is three cache-line-padded control words
    (64-byte-aligned 8-byte slots, so the producer's and consumer's
    cursors never share a line):

    - [tail] at offset 0 — free-running byte counter, {e producer-owned}
    - [head] at offset 64 — free-running byte counter, {e consumer-owned}
    - [sleeping] at offset 128 — consumer's doorbell-arm flag

    Cursors are free-running (never wrapped); [tail - head] is the
    bytes in flight and [cursor mod cap] the physical offset, so full
    vs empty needs no reserved slot and wrap-around arithmetic is
    exact at every capacity mod point.

    {2 Frames}

    Data is framed in 8-byte-aligned units that {e never straddle} the
    ring end (a [skip] frame burns the left-over tail of the ring so
    the next frame starts at offset 0 — float payloads thus always
    land 8-aligned and contiguous, readable through a [float64]
    Bigarray view with no staging copy):

    {v
      frame  := header word | payload (padded to 8 bytes)
      header := bits 0-1 kind (0 skip / 1 bytes / 2 floats)
                bit  2   last frame of the message
                bits 3+  payload length (bytes for kind 1, elements for kind 2)
    v}

    Long messages stream as multiple frames, like {!Wire}'s packets —
    a message larger than the ring flows through it, the consumer
    draining frames while the producer appends them.

    {2 The doorbell}

    A blocked consumer must not spin forever, but the producer must
    not pay a syscall per message either.  The compromise is a
    Dekker-style handshake on the [sleeping] word: the consumer spins
    briefly, then arms [sleeping], re-checks [tail] and only then
    blocks reading the doorbell descriptor (one end of the control
    socketpair); the producer, after publishing [tail], checks
    [sleeping] and writes a one-byte token only if the consumer armed
    it.  Both sides put a full fence ({!Repro_shim.Tatomic.Fence})
    between their store and the following load — the classic StoreLoad
    hazard; without it both can pass their checks and the consumer
    sleeps on a message it never saw.  Peer-to-peer links between
    workers run doorbell-less (short-lived waits, poll + microsleep).

    Control words go through {!Mapped_word}, an instance of the shim's
    {!Repro_shim.Tatomic.WORD} — the same signature [lib/check]'s
    traced cells implement, so the DPOR model checker explores the
    very publish/consume discipline in {!Spsc} below. *)

module A1 = Bigarray.Array1
module Tatomic = Repro_shim.Tatomic

let word = 8
let ring_header_bytes = 192 (* 3 control words, 64 bytes apart *)
let default_ring_bytes = 256 * 1024
let align8 n = (n + 7) land lnot 7

(* ---------------- shim-mediated control words ---------------- *)

(** An 8-byte-aligned slot of the mapped segment as a
    {!Repro_shim.Tatomic.WORD}: aligned word loads and stores are
    single instructions on every 64-bit target, and each word here has
    exactly one writer (SPSC), so load/store is all a correct ring
    needs — ordering comes from {!Tatomic.Fence} at the two StoreLoad
    edges. *)
module Mapped_word = struct
  type t = {
    words : (int64, Bigarray.int64_elt, Bigarray.c_layout) A1.t;
    idx : int;
  }

  let load t = Int64.to_int (A1.get t.words t.idx)
  let store t v = A1.set t.words t.idx (Int64.of_int v)
end

module _ : Tatomic.WORD = Mapped_word

(* ---------------- the distilled protocol ---------------- *)

(** The SPSC handshake, distilled to one word per slot and abstracted
    over the control-word implementation.  Instantiated with
    {!Mapped_word}-like storage it is the production discipline below;
    instantiated with [Repro_check.Sched.Atomic]-backed cells it is
    the model the DPOR checker exhausts (see [Repro_check.Protocols]'s
    spsc-ring configs, including the publish-before-write mutant this
    ordering exists to rule out).  QCheck drives the same functor
    against a queue reference across wrap-around at every capacity mod
    point. *)
module Spsc (W : Tatomic.WORD) = struct
  type t = {
    cap : int;
    tail : W.t;  (** producer-owned free-running slot counter *)
    head : W.t;  (** consumer-owned *)
    get : int -> int;  (** slot read, producer never calls it *)
    set : int -> int -> unit;  (** slot write, consumer never calls it *)
  }

  let create ~cap ~tail ~head ~get ~set =
    if cap < 1 then invalid_arg "Spsc.create: cap must be >= 1";
    { cap; tail; head; get; set }

  (* Producer: write the slot, THEN publish the bumped tail.  The
     order is the whole protocol — a consumer that observes the new
     tail must observe the slot contents it covers. *)
  let try_push t v =
    let tail = W.load t.tail in
    let head = W.load t.head in
    if tail - head >= t.cap then false
    else begin
      t.set (tail mod t.cap) v;
      W.store t.tail (tail + 1);
      true
    end

  (* Consumer: observe the tail, read the slot, THEN release it by
     bumping head — the mirror-image discipline. *)
  let try_pop t =
    let head = W.load t.head in
    let tail = W.load t.tail in
    if tail - head = 0 then None
    else begin
      let v = t.get (head mod t.cap) in
      W.store t.head (head + 1);
      Some v
    end

  let length t = W.load t.tail - W.load t.head
end

(* ---------------- production ring ---------------- *)

let kind_skip = 0
let kind_bytes = 1
let kind_floats = 2
let frame_header ~kind ~last ~len = kind lor (if last then 4 else 0) lor (len lsl 3)
let header_kind h = h land 3
let header_last h = h land 4 <> 0
let header_len h = h lsr 3

type ring = {
  cap : int;  (** data bytes; multiple of 8 *)
  tail_w : Mapped_word.t;
  head_w : Mapped_word.t;
  sleeping_w : Mapped_word.t;
  data_chars : (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) A1.t;
  data_words : (int64, Bigarray.int64_elt, Bigarray.c_layout) A1.t;
  data_floats : (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t;
  (* Role-specific cursor caches.  The owned cursor's cache is
     authoritative (only we advance it); the peer cursor's cache is a
     lower bound refreshed only when it blocks progress, so the common
     case touches no shared line but our own. *)
  mutable tail_local : int;  (** producer's tail (owned when producing) *)
  mutable head_local : int;  (** consumer's head (owned when consuming) *)
  mutable peer_head : int;  (** producer's stale view of head *)
  mutable peer_tail : int;  (** consumer's stale view of tail *)
}

type conn = {
  out_ring : ring;
  in_ring : ring;
  doorbell : Unix.file_descr option;
      (** full-duplex: we block reading it, we wake the peer writing it *)
  fence : Tatomic.Fence.t;
  counters : Wire.counters;
  frame_bytes : int;  (** max payload bytes per frame *)
  mutable on_wait : (unit -> unit) option;
      (** called while blocked on a full out-ring — the coordinator
          drains incoming results here, breaking the duplex deadlock
          (it blocked pushing a task, the worker blocked pushing a
          result) *)
  mutable peer_gone : bool;  (** doorbell EOF seen while draining *)
  scratch : Bytes.t;  (** doorbell token buffer *)
  mutable mtoken : Repro_metrics.Metrics.collector option;
      (** per-link metrics collector *)
}

let counters c = c.counters
let set_on_wait c f = c.on_wait <- f
let has_doorbell c = c.doorbell <> None

let wait_fd c =
  match c.doorbell with
  | Some fd -> fd
  | None -> invalid_arg "Shm_ring.wait_fd: doorbell-less (peer-to-peer) link"

(* ---------------- segment files ---------------- *)

let segment_dir =
  lazy
    (let shm = "/dev/shm" in
     if Sys.file_exists shm && Sys.is_directory shm then shm
     else Filename.get_temp_dir_name ())

let segment_size ~ring_bytes = 2 * (ring_header_bytes + ring_bytes)

let create_segment ?(ring_bytes = default_ring_bytes) () =
  let ring_bytes = max 4096 (align8 ring_bytes) in
  let path = Filename.temp_file ~temp_dir:(Lazy.force segment_dir) "repro-ring-" ".shm" in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      (* ftruncate zero-fills: tail = head = sleeping = 0, both rings
         empty *)
      Unix.ftruncate fd (segment_size ~ring_bytes));
  path

let unlink_segment path = try Sys.remove path with Sys_error _ -> ()

let attach ~path ~side ?doorbell () =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
  (* The mappings outlive the descriptor, so it closes on every path —
     including a raise out of fstat/map_file. *)
  let cap, chars, words, floats =
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let size = (Unix.fstat fd).Unix.st_size in
        let cap = (size / 2) - ring_header_bytes in
        if cap < 4096 || cap land 7 <> 0 then
          failwith
            (Printf.sprintf "Shm_ring.attach: %s has absurd size %d" path size);
        let map kind n =
          Bigarray.array1_of_genarray
            (Unix.map_file fd kind Bigarray.c_layout true [| n |])
        in
        let chars = map Bigarray.char size in
        let words = map Bigarray.int64 (size / 8) in
        let floats = map Bigarray.float64 (size / 8) in
        (cap, chars, words, floats))
  in
  let ring i =
    let hdr_off = i * (ring_header_bytes + cap) in
    let data_off = hdr_off + ring_header_bytes in
    let w byte = { Mapped_word.words; idx = (hdr_off + byte) / 8 } in
    {
      cap;
      tail_w = w 0;
      head_w = w 64;
      sleeping_w = w 128;
      data_chars = A1.sub chars data_off cap;
      data_words = A1.sub words (data_off / 8) (cap / 8);
      data_floats = A1.sub floats (data_off / 8) (cap / 8);
      tail_local = Int64.to_int (A1.get words ((hdr_off + 0) / 8));
      head_local = Int64.to_int (A1.get words ((hdr_off + 64) / 8));
      peer_head = 0;
      peer_tail = 0;
    }
  in
  let r0 = ring 0 and r1 = ring 1 in
  let out_ring, in_ring = match side with `A -> (r0, r1) | `B -> (r1, r0) in
  let counters = Wire.fresh_counters () in
  {
    out_ring;
    in_ring;
    doorbell;
    fence = Tatomic.Fence.create ();
    counters;
    frame_bytes = max 8 (align8 (min (32 * 1024) (cap / 4)));
    on_wait = None;
    peer_gone = false;
    scratch = Bytes.create 64;
    mtoken = Some (Wire.add_link_collector ~transport:"shm" counters);
  }

let peer_gone c = c.peer_gone

let close c =
  (match c.mtoken with
  | Some tok ->
      c.mtoken <- None;
      Repro_metrics.Metrics.remove_collector tok
  | None -> ());
  match c.doorbell with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ()

(* ---------------- producer side ---------------- *)

let micro_sleep () = ignore (Unix.select [] [] [] 50e-6)

(* Ring observability in the default metrics registry: how often a
   producer found its out-ring full (backpressure) and how often a
   doorbell syscall was actually paid.  Lazy so registration (which
   takes the registry mutex) happens once, off the hot loop. *)
module M = Repro_metrics.Metrics

let backpressure_waits =
  lazy
    (M.counter ~help:"Producer waits on a full shm ring"
       "repro_ring_backpressure_waits_total")

let doorbell_rings =
  lazy
    (M.counter ~help:"Doorbell wake syscalls paid by shm producers"
       "repro_ring_doorbell_rings_total")

let ring_doorbell c =
  match c.doorbell with
  | None -> ()
  | Some fd -> (
      M.incr (Lazy.force doorbell_rings);
      Bytes.set c.scratch 0 '!';
      try ignore (Unix.write fd c.scratch 0 1) with
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
          Wire.raise_dead_peer "peer closed the doorbell during send")

(* Claim [total] contiguous data bytes (spinning via [on_wait] /
   microsleep while the ring is full), write the frame, publish it,
   and wake a sleeping consumer.  [write] fills the payload at the
   byte offset it is given. *)
let write_frame c ~kind ~last ~len ~payload_bytes ~write =
  let r = c.out_ring in
  let total = word + align8 payload_bytes in
  assert (total <= r.cap);
  let tail = r.tail_local in
  let pos = tail mod r.cap in
  let to_end = r.cap - pos in
  (* a frame never straddles the end: wrapping costs a skip frame *)
  let need = if total <= to_end then total else to_end + total in
  while tail + need - r.peer_head > r.cap do
    r.peer_head <- Mapped_word.load r.head_w;
    if tail + need - r.peer_head > r.cap then begin
      M.incr (Lazy.force backpressure_waits);
      match c.on_wait with Some f -> f () | None -> micro_sleep ()
    end
  done;
  let off =
    if total <= to_end then pos
    else begin
      A1.set r.data_words (pos / 8)
        (Int64.of_int (frame_header ~kind:kind_skip ~last:false ~len:0));
      0
    end
  in
  A1.set r.data_words (off / 8) (Int64.of_int (frame_header ~kind ~last ~len));
  write (off + word);
  (* publish: payload and header must be visible before the new tail *)
  Tatomic.Fence.full c.fence;
  r.tail_local <- tail + need;
  Mapped_word.store r.tail_w r.tail_local;
  (* StoreLoad edge of the Dekker handshake: tail-store above vs
     sleeping-load below *)
  Tatomic.Fence.full c.fence;
  if Mapped_word.load r.sleeping_w <> 0 then ring_doorbell c

let frames_of_len ~frame_bytes len =
  if len = 0 then 1 else (len + frame_bytes - 1) / frame_bytes

let send c payload =
  let len = String.length payload in
  let nfr = frames_of_len ~frame_bytes:c.frame_bytes len in
  let r = c.out_ring in
  let src = ref 0 in
  for f = 0 to nfr - 1 do
    let n = min c.frame_bytes (len - !src) in
    let start = !src in
    write_frame c ~kind:kind_bytes ~last:(f = nfr - 1) ~len:n ~payload_bytes:n
      ~write:(fun off ->
        for i = 0 to n - 1 do
          A1.set r.data_chars (off + i) (String.unsafe_get payload (start + i))
        done);
    src := !src + n
  done;
  c.counters.Wire.msgs_sent <- c.counters.Wire.msgs_sent + 1;
  c.counters.Wire.packets_sent <- c.counters.Wire.packets_sent + nfr;
  c.counters.Wire.bytes_sent <- c.counters.Wire.bytes_sent + len + (nfr * word);
  c.counters.Wire.payload_bytes_sent <- c.counters.Wire.payload_bytes_sent + len

let send_floats c (arr : float array) =
  let total = Array.length arr in
  let per_frame = c.frame_bytes / 8 in
  let nfr = if total = 0 then 1 else (total + per_frame - 1) / per_frame in
  let r = c.out_ring in
  let src = ref 0 in
  for f = 0 to nfr - 1 do
    let n = min per_frame (total - !src) in
    let start = !src in
    write_frame c ~kind:kind_floats ~last:(f = nfr - 1) ~len:n
      ~payload_bytes:(n * 8) ~write:(fun off ->
        (* straight from the source array into the shared mapping —
           the one and only copy on this path (vs sock: array ->
           scratch -> kernel -> scratch -> array) *)
        let base = off / 8 in
        for i = 0 to n - 1 do
          A1.set r.data_floats (base + i) (Array.unsafe_get arr (start + i))
        done);
    src := !src + n
  done;
  let bytes = total * 8 in
  c.counters.Wire.msgs_sent <- c.counters.Wire.msgs_sent + 1;
  c.counters.Wire.packets_sent <- c.counters.Wire.packets_sent + nfr;
  c.counters.Wire.bytes_sent <- c.counters.Wire.bytes_sent + bytes + (nfr * word);
  c.counters.Wire.payload_bytes_sent <-
    c.counters.Wire.payload_bytes_sent + bytes;
  c.counters.Wire.zero_copy_bytes_sent <-
    c.counters.Wire.zero_copy_bytes_sent + bytes

(* ---------------- consumer side ---------------- *)

let available c =
  let r = c.in_ring in
  r.peer_tail - r.head_local > 0
  ||
  (r.peer_tail <- Mapped_word.load r.tail_w;
   r.peer_tail - r.head_local > 0)

let input_ready = available

let prepare_sleep c =
  Mapped_word.store c.in_ring.sleeping_w 1;
  (* StoreLoad edge: the caller's re-check of [tail] must not be
     satisfied by a load hoisted above the store — symmetric to the
     producer's fence after publishing *)
  Tatomic.Fence.full c.fence

let cancel_sleep c = Mapped_word.store c.in_ring.sleeping_w 0

(* Swallow pending wake tokens (non-blocking).  Tokens are hints —
   losing one is impossible while [sleeping] is clear, and a stale one
   only causes a spurious wake, so draining needs no precision. *)
let drain_doorbell c =
  match c.doorbell with
  | None -> ()
  | Some fd ->
      let rec go () =
        match Unix.select [ fd ] [] [] 0.0 with
        | [], _, _ -> ()
        | _ -> (
            match
              try Unix.read fd c.scratch 0 64 with Unix.Unix_error _ -> 0
            with
            | 0 -> c.peer_gone <- true
            | _ -> go ())
      in
      go ()

let spin_limit = 512

(* Block until at least one frame is available.  [mid] distinguishes a
   peer death at a message boundary (End_of_file, like Wire's recv)
   from one inside a message (Truncated). *)
let wait_input c ~mid =
  if not (available c) then begin
    let spins = ref 0 in
    while (not (available c)) && !spins < spin_limit do
      incr spins
    done;
    while not (available c) do
      if c.peer_gone then
        if mid then Wire.raise_truncated "peer closed mid-message (shm ring)"
        else raise End_of_file;
      match c.doorbell with
      | None -> micro_sleep ()
      | Some fd ->
          prepare_sleep c;
          if available c then cancel_sleep c
          else begin
            drain_doorbell c;
            if available c then cancel_sleep c
            else begin
              let n =
                try Unix.read fd c.scratch 0 1 with
                | Unix.Unix_error (Unix.ECONNRESET, _, _) -> 0
              in
              cancel_sleep c;
              if n = 0 then c.peer_gone <- true
            end
          end
    done
  end

(* Position of the next real frame's header, skipping wrap markers.
   Returns the header word; the payload starts [word] bytes after
   [head_local mod cap]. *)
let rec next_header c ~mid =
  wait_input c ~mid;
  let r = c.in_ring in
  (* the tail observation above must precede the data reads below
     (LoadLoad — free on x86, not on ARM, and the compiler knows
     neither) *)
  Tatomic.Fence.full c.fence;
  let pos = r.head_local mod r.cap in
  let h = Int64.to_int (A1.get r.data_words (pos / 8)) in
  if header_kind h = kind_skip then begin
    (* a skip frame releases the dead tail of the ring in one bump *)
    Tatomic.Fence.full c.fence;
    r.head_local <- r.head_local + (r.cap - pos);
    Mapped_word.store r.head_w r.head_local;
    next_header c ~mid
  end
  else h

(* Release the consumed frame.  The fence keeps payload reads before
   the head-store that lets the producer overwrite them. *)
let consume c ~payload_bytes =
  let r = c.in_ring in
  Tatomic.Fence.full c.fence;
  r.head_local <- r.head_local + word + align8 payload_bytes;
  Mapped_word.store r.head_w r.head_local

let recv c =
  let r = c.in_ring in
  let buf = Buffer.create 256 in
  let nfr = ref 0 in
  let rec go ~mid =
    let h = next_header c ~mid in
    if header_kind h <> kind_bytes then
      Wire.raise_protocol "floats frame where a byte message was expected";
    let len = header_len h in
    let off = (r.head_local mod r.cap) + word in
    for i = 0 to len - 1 do
      Buffer.add_char buf (A1.get r.data_chars (off + i))
    done;
    consume c ~payload_bytes:len;
    incr nfr;
    if not (header_last h) then go ~mid:true
  in
  go ~mid:false;
  let payload = Buffer.contents buf in
  c.counters.Wire.msgs_recv <- c.counters.Wire.msgs_recv + 1;
  c.counters.Wire.packets_recv <- c.counters.Wire.packets_recv + !nfr;
  c.counters.Wire.bytes_recv <-
    c.counters.Wire.bytes_recv + String.length payload + (!nfr * word);
  c.counters.Wire.payload_bytes_recv <-
    c.counters.Wire.payload_bytes_recv + String.length payload;
  payload

let recv_floats c ~len:total =
  if total < 0 then invalid_arg "Shm_ring.recv_floats: negative length";
  let r = c.in_ring in
  let arr = Array.make total 0.0 in
  let got = ref 0 in
  let nfr = ref 0 in
  let finished = ref false in
  while not !finished do
    let h = next_header c ~mid:(!nfr > 0) in
    if header_kind h <> kind_floats then
      Wire.raise_protocol "byte frame where a floats message was expected";
    let n = header_len h in
    if !got + n > total then
      Wire.raise_protocol
        (Printf.sprintf "floats message longer than announced (%d > %d)"
           (!got + n) total);
    let base = ((r.head_local mod r.cap) + word) / 8 in
    for i = 0 to n - 1 do
      Array.unsafe_set arr (!got + i) (A1.get r.data_floats (base + i))
    done;
    consume c ~payload_bytes:(n * 8);
    got := !got + n;
    incr nfr;
    if header_last h then finished := true
  done;
  if !got <> total then
    Wire.raise_protocol
      (Printf.sprintf "floats message shorter than announced (%d < %d)" !got
         total);
  let bytes = total * 8 in
  c.counters.Wire.msgs_recv <- c.counters.Wire.msgs_recv + 1;
  c.counters.Wire.packets_recv <- c.counters.Wire.packets_recv + !nfr;
  c.counters.Wire.bytes_recv <- c.counters.Wire.bytes_recv + bytes + (!nfr * word);
  c.counters.Wire.payload_bytes_recv <-
    c.counters.Wire.payload_bytes_recv + bytes;
  c.counters.Wire.zero_copy_bytes_recv <-
    c.counters.Wire.zero_copy_bytes_recv + bytes;
  arr

(* ---------------- TRANSPORT packaging ---------------- *)

module Transport : Wire.TRANSPORT with type t = conn = struct
  type t = conn

  let send = send
  let recv = recv
  let send_floats = send_floats
  let recv_floats = recv_floats
  let counters = counters
  let wait_fd = wait_fd
  let input_ready = input_ready
  let close = close
end
