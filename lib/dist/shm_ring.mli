(** Shared-memory ring transport: mmap'd SPSC ring pairs with a
    Dekker-gated doorbell — the zero-syscall {!Wire.TRANSPORT}.

    A {e segment} (a file, preferably on [/dev/shm]) holds two rings,
    one per direction; the two endpoints attach to opposite {e sides}.
    Byte messages and float messages stream through as 8-byte-aligned
    frames that never straddle the ring end, so float payloads are
    written straight into (and read straight out of) the shared
    mapping — the [zero_copy_bytes_*] counters.  See the [.ml] header
    for the layout, the frame format and the doorbell handshake. *)

type conn

val default_ring_bytes : int

(** Create and size a segment file (zero-filled: both rings empty).
    Nothing is mapped; both endpoints {!attach} by path — which is how
    the path crosses [create_process] (argv), no descriptor plumbing.
    The creator should {!unlink_segment} once both sides attached. *)
val create_segment : ?ring_bytes:int -> unit -> string

val unlink_segment : string -> unit

(** Map the segment.  The two endpoints must pass opposite [side]s.
    [doorbell] is a full-duplex descriptor (one end of a socketpair):
    blocking receives sleep on it and sends wake the peer through it.
    Without one, waits poll (fine for the short-lived peer-to-peer
    waits; the coordinator links always carry one).  Ring geometry is
    recovered from the file size.  The descriptor opened on [path] is
    closed again before returning (the mappings outlive it). *)
val attach :
  path:string -> side:[ `A | `B ] -> ?doorbell:Unix.file_descr -> unit -> conn

(** Called repeatedly while a send blocks on a full out-ring.  The
    coordinator drains incoming results here — the escape from the
    duplex deadlock where both ends block sending to each other. *)
val set_on_wait : conn -> (unit -> unit) option -> unit

val send : conn -> string -> unit

(** @raise End_of_file if the peer died at a message boundary,
    @raise Wire.Truncated mid-message — same contract as {!Wire.recv}. *)
val recv : conn -> string

val send_floats : conn -> float array -> unit
val recv_floats : conn -> len:int -> float array
val counters : conn -> Wire.counters

(** A message may be (partially) available — non-blocking. *)
val input_ready : conn -> bool

val has_doorbell : conn -> bool

(** The doorbell descriptor, for [Unix.select] multiplexing over many
    links.  Arm each link with {!prepare_sleep} first, re-check
    {!input_ready}, select, then {!drain_doorbell} + {!cancel_sleep} —
    the same handshake blocking {!recv} performs on one link.
    @raise Invalid_argument on a doorbell-less link. *)
val wait_fd : conn -> Unix.file_descr

(** Arm the doorbell ([sleeping] := 1) and fence.  The caller {e must}
    re-check {!input_ready} after this and before blocking. *)
val prepare_sleep : conn -> unit

val cancel_sleep : conn -> unit

(** Swallow pending wake tokens, non-blocking (they are hints; a stale
    one only causes a spurious wake). *)
val drain_doorbell : conn -> unit

(** The doorbell returned EOF: the peer is dead.  Blocking receives
    raise once the ring is drained; multiplexed waiters should check
    this after {!drain_doorbell}. *)
val peer_gone : conn -> bool

(** Closes the doorbell (the mappings are reclaimed by the GC /
    process exit; the segment file by {!unlink_segment}). *)
val close : conn -> unit

(** The shim control-word instance: an 8-byte-aligned slot of the
    mapped segment.  Exposed for tests. *)
module Mapped_word : sig
  type t = {
    words : (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t;
    idx : int;
  }

  include Repro_shim.Tatomic.WORD with type t := t
end

(** The distilled SPSC handshake (one word per slot), functorised over
    the control-word implementation so [lib/check] can exhaust it with
    traced cells and QCheck can race it against a queue reference.
    {!try_push} writes the slot {e then} publishes the tail;
    {!try_pop} observes the tail, reads, {e then} releases — the
    ordering the production frames above rely on. *)
module Spsc (W : Repro_shim.Tatomic.WORD) : sig
  type t = {
    cap : int;
    tail : W.t;
    head : W.t;
    get : int -> int;
    set : int -> int -> unit;
  }

  val create :
    cap:int ->
    tail:W.t ->
    head:W.t ->
    get:(int -> int) ->
    set:(int -> int -> unit) ->
    t

  val try_push : t -> int -> bool
  val try_pop : t -> int option
  val length : t -> int
end

module Transport : Wire.TRANSPORT with type t = conn
