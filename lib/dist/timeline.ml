(** Chrome trace-event timeline for distributed runs: one track per
    PE plus a coordinator track, with per-task [unpack]/[exec]/[pack]
    slices from the worker spans and [wire] slices bridging the
    coordinator's send-done timestamp to the worker's receive-done
    timestamp.  The bridge is sound because every process reads the
    same system-wide CLOCK_MONOTONIC (see {!Clock}).

    Mirrors the conventions of [lib/trace]'s exporter for the
    shared-memory backend: microsecond timestamps, ["X"] complete
    slices, [thread_name] metadata records. *)

module Json = Repro_util.Json_out

(** [track = -1] is the coordinator; [track >= 0] is that PE.
    [bytes] is the task payload size on [schedule] and [wire] spans
    (what crossed the link), [0] elsewhere. *)
type span = {
  track : int;
  name : string;
  cat : string;
  t0_ns : int;
  t1_ns : int;
  bytes : int;
}

let of_outcome (o : Farm.outcome) : span list =
  let spans = ref [] in
  let push ?(bytes = 0) track name cat t0_ns t1_ns =
    if t1_ns >= t0_ns then
      spans := { track; name; cat; t0_ns; t1_ns; bytes } :: !spans
  in
  (* coordinator send side, and an index for the wire bridges *)
  let send_done = Hashtbl.create 64 in
  List.iter
    (fun (s : Farm.sched_span) ->
      Hashtbl.replace send_done s.sp_task_id (s.send_done_ns, s.sp_bytes);
      push ~bytes:s.sp_bytes (-1) "schedule" "sched" s.send_start_ns
        s.send_done_ns)
    o.sched_spans;
  Array.iter
    (fun (r : Farm.pe_report) ->
      List.iter
        (fun (t : Message.task_span) ->
          (match Hashtbl.find_opt send_done t.span_task_id with
          | Some (sd, bytes) -> push ~bytes r.rep_pe "wire" "net" sd t.recv_done_ns
          | None -> ());
          push r.rep_pe "unpack" "pack" t.recv_done_ns t.exec_start_ns;
          push r.rep_pe "exec" "exec" t.exec_start_ns t.exec_end_ns;
          push r.rep_pe "pack" "pack" t.exec_end_ns
            (t.exec_end_ns + t.span_pack_ns))
        r.stats.Message.spans)
    o.reports;
  List.rev !spans

let pid = 0

(* tid 0 = coordinator, tid pe+1 = PE pe *)
let tid_of_track track = track + 1

let to_chrome ~procs (spans : span list) : Json.t =
  let t_min =
    List.fold_left (fun acc s -> min acc s.t0_ns) max_int spans
  in
  let t_min = if t_min = max_int then 0 else t_min in
  let us_of_ns ns = float_of_int (ns - t_min) /. 1e3 in
  let slice s =
    Json.Obj
      ([
         ("name", Json.Str s.name);
         ("cat", Json.Str s.cat);
         ("ph", Json.Str "X");
         ("ts", Json.Float (us_of_ns s.t0_ns));
         ("dur", Json.Float (float_of_int (s.t1_ns - s.t0_ns) /. 1e3));
         ("pid", Json.Int pid);
         ("tid", Json.Int (tid_of_track s.track));
       ]
      @
      if s.bytes > 0 then
        [ ("args", Json.Obj [ ("bytes", Json.Int s.bytes) ]) ]
      else [])
  in
  let thread_name tid name =
    Json.Obj
      [
        ("name", Json.Str "thread_name");
        ("ph", Json.Str "M");
        ("ts", Json.Float 0.0);
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.Str name) ]);
      ]
  in
  let meta =
    thread_name 0 "coordinator"
    :: List.init procs (fun pe ->
           thread_name (tid_of_track pe) (Printf.sprintf "PE %d" pe))
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ List.map slice spans));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write_chrome ~procs ~path (o : Farm.outcome) =
  Json.to_file path (to_chrome ~procs (of_outcome o))
