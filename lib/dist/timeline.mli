(** Chrome trace-event timeline for distributed runs: one track per
    PE plus a coordinator track; [wire] slices bridge the coordinator's
    send-done timestamp to the PE's receive-done timestamp (valid
    because all processes share CLOCK_MONOTONIC). *)

(** [track = -1] is the coordinator; [track >= 0] is that PE. *)
type span = {
  track : int;
  name : string;  (** [schedule], [wire], [unpack], [exec], [pack] *)
  cat : string;
  t0_ns : int;
  t1_ns : int;
  bytes : int;
      (** payload size on [schedule]/[wire] spans (rendered as a
          Chrome [args] entry), [0] elsewhere *)
}

(** Spans of a traced run ([Farm.run ~trace:true]); empty otherwise. *)
val of_outcome : Farm.outcome -> span list

(** Trace Event Format document (timestamps rebased to the earliest
    span, microseconds). *)
val to_chrome : procs:int -> span list -> Repro_util.Json_out.t

val write_chrome : procs:int -> path:string -> Farm.outcome -> unit
