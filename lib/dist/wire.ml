(** Framed byte-stream transport between PEs.

    This is the real counterpart of [Repro_mp.Transport]'s cost
    profiles: where the simulator {e charges} pack/latency/unpack
    nanoseconds, this module actually moves bytes between processes
    over a [socketpair] (or any pair of file descriptors) and counts
    what it moved.

    Messages are split into length-prefixed {e packets} (Eden/GUM
    split graph messages into packets the same way, paper Sec. III-B):

    {v
      packet := u32 chunk-length (big-endian) | u8 flags | chunk bytes
      flags  := bit 0 set on the last packet of a message
    v}

    A zero-length message is one empty packet with the last-flag set.
    The codec is exposed in a pure form ({!encode}/{!decode}) for
    property tests, and over file descriptors ({!send}/{!recv}) for
    the executor.  Reads are exact (header, then chunk): the
    connection never buffers ahead, so [Unix.select] readiness on the
    descriptor is equivalent to "a message header is in flight". *)

exception Truncated of string
exception Dead_peer of string
exception Protocol_error of string

module M = Repro_metrics.Metrics

(* Transport errors are counted in the default registry before they
   are raised, so a snapshot shows them even when the raise is caught
   and retried/absorbed upstream.  Lazy: registration takes the
   registry mutex, raise sites must not. *)
let error_counter kind =
  lazy
    (M.counter ~help:"Transport errors by kind"
       ~labels:[ ("kind", kind) ]
       "repro_wire_errors_total")

let truncated_errors = error_counter "truncated"
let dead_peer_errors = error_counter "dead_peer"
let protocol_errors = error_counter "protocol"

let raise_truncated msg =
  M.incr (Lazy.force truncated_errors);
  raise (Truncated msg)

let raise_dead_peer msg =
  M.incr (Lazy.force dead_peer_errors);
  raise (Dead_peer msg)

let raise_protocol msg =
  M.incr (Lazy.force protocol_errors);
  raise (Protocol_error msg)

let header_bytes = 5
let default_packet_bytes = 32 * 1024

(* Refuse absurd chunk lengths: a corrupted or misaligned stream would
   otherwise make us try to allocate gigabytes. *)
let max_chunk_bytes = 64 * 1024 * 1024

type counters = {
  mutable msgs_sent : int;
  mutable msgs_recv : int;
  mutable bytes_sent : int;  (** on-wire bytes, packet headers included *)
  mutable bytes_recv : int;
  mutable packets_sent : int;
  mutable packets_recv : int;
  mutable payload_bytes_sent : int;
      (** message payload bytes only — no packet/frame headers.  The
          [bytes_*] counters measure what the transport moved; these
          measure what the caller asked it to move, so framing overhead
          is the difference. *)
  mutable payload_bytes_recv : int;
  mutable zero_copy_bytes_sent : int;
      (** payload bytes that crossed without an intermediate buffer:
          float frames written element-by-element straight into shared
          ring memory.  Always 0 on the socketpair transport (its float
          frames still stage through the packet scratch buffer). *)
  mutable zero_copy_bytes_recv : int;
  mutable pack_ns : int;  (** serialisation time, filled by {!Message} *)
  mutable unpack_ns : int;
}

let fresh_counters () =
  {
    msgs_sent = 0;
    msgs_recv = 0;
    bytes_sent = 0;
    bytes_recv = 0;
    packets_sent = 0;
    packets_recv = 0;
    payload_bytes_sent = 0;
    payload_bytes_recv = 0;
    zero_copy_bytes_sent = 0;
    zero_copy_bytes_recv = 0;
    pack_ns = 0;
    unpack_ns = 0;
  }

(* Per-link counter samples ([Shm_ring] reuses this for its conns). *)
let samples_of_counters ~labels (k : counters) =
  let c name help v = M.c_sample ~help ~labels name (float_of_int v) in
  [
    c "repro_wire_msgs_sent_total" "Messages sent on this link" k.msgs_sent;
    c "repro_wire_msgs_recv_total" "Messages received on this link" k.msgs_recv;
    c "repro_wire_bytes_sent_total" "On-wire bytes sent, framing included"
      k.bytes_sent;
    c "repro_wire_bytes_recv_total" "On-wire bytes received, framing included"
      k.bytes_recv;
    c "repro_wire_packets_sent_total" "Packets sent" k.packets_sent;
    c "repro_wire_packets_recv_total" "Packets received" k.packets_recv;
    c "repro_wire_payload_bytes_sent_total" "Payload bytes sent (no framing)"
      k.payload_bytes_sent;
    c "repro_wire_payload_bytes_recv_total" "Payload bytes received (no framing)"
      k.payload_bytes_recv;
    c "repro_wire_zero_copy_bytes_sent_total"
      "Payload bytes sent without an intermediate copy" k.zero_copy_bytes_sent;
    c "repro_wire_zero_copy_bytes_recv_total"
      "Payload bytes received without an intermediate copy" k.zero_copy_bytes_recv;
    c "repro_wire_pack_ns_total" "Serialisation time" k.pack_ns;
    c "repro_wire_unpack_ns_total" "Deserialisation time" k.unpack_ns;
  ]

(* Register a link's counters as a default-registry collector; the
   returned token must be removed at close (which retires the final
   totals into the registry). *)
let add_link_collector ~transport k =
  let labels =
    [ ("link", string_of_int (M.next_id ())); ("transport", transport) ]
  in
  M.add_collector ~name:("wire-" ^ transport) (fun () ->
      samples_of_counters ~labels k)

(** What {!Message} and {!Farm} need from a point-to-point transport.
    Extracted from the socketpair code below (which implements it as
    {!Sock}); [Shm_ring] is the second implementation — a pair of
    mmap'd SPSC rings with the same message semantics and counters.

    [send]/[recv] move opaque byte strings (the [Marshal]-ed control
    plane).  [send_floats]/[recv_floats] are the bulk-data plane:
    float payloads framed without [Marshal], bit-exact ([recv_floats]
    needs the element count, which control messages carry).  [wait_fd]
    is a descriptor whose readability signals "input may be available"
    ([Unix.select]-able: the socket itself, or the ring's doorbell);
    [input_ready] is the non-blocking readiness test (a transport may
    have buffered input no descriptor shows). *)
module type TRANSPORT = sig
  type t

  val send : t -> string -> unit
  val recv : t -> string
  val send_floats : t -> float array -> unit
  val recv_floats : t -> len:int -> float array
  val counters : t -> counters
  val wait_fd : t -> Unix.file_descr
  val input_ready : t -> bool
  val close : t -> unit
end

type conn = {
  read_fd : Unix.file_descr;
  write_fd : Unix.file_descr;
  packet_bytes : int;
  counters : counters;
  header : Bytes.t;  (** scratch for one packet header *)
  out : Bytes.t;  (** scratch for one whole outgoing packet *)
  mutable mtoken : M.collector option;  (** per-link metrics collector *)
}

(* A worker whose coordinator died mid-send must see EPIPE as an
   exception, not a fatal signal. *)
let ignore_sigpipe =
  lazy
    (match Sys.os_type with
    | "Unix" -> ( try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())
    | _ -> ())

let create ?(packet_bytes = default_packet_bytes) ~read_fd ~write_fd () =
  if packet_bytes < 1 then
    invalid_arg "Wire.create: packet_bytes must be >= 1";
  Lazy.force ignore_sigpipe;
  let counters = fresh_counters () in
  {
    read_fd;
    write_fd;
    packet_bytes;
    counters;
    header = Bytes.create header_bytes;
    out = Bytes.create (header_bytes + packet_bytes);
    mtoken = Some (add_link_collector ~transport:"sock" counters);
  }

let counters c = c.counters
let packet_bytes c = c.packet_bytes
let read_fd c = c.read_fd

(* ---------------- pure codec ---------------- *)

(* Bit 1 marks a packet of a float-frame message (the zero-Marshal
   bulk-data plane, see {!send_floats}).  A floats packet arriving
   where bytes are expected — or vice versa — is a protocol error, so
   the two planes can never be silently confused. *)
let flag_last = 1

let flag_floats = 2

let put_header ?(floats = false) b ~pos ~len ~last =
  Bytes.set b pos (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b (pos + 1) (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b (pos + 2) (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b (pos + 3) (Char.chr (len land 0xff));
  Bytes.set b (pos + 4)
    (Char.chr
       ((if last then flag_last else 0) lor if floats then flag_floats else 0))

let get_header s ~pos =
  let b i = Char.code s.[pos + i] in
  let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  let flags = b 4 in
  if flags land lnot (flag_last lor flag_floats) <> 0 then
    raise_protocol (Printf.sprintf "unknown packet flags 0x%02x" flags);
  if len > max_chunk_bytes then
    raise_protocol (Printf.sprintf "oversized packet chunk (%d bytes)" len);
  (len, flags land flag_last <> 0, flags land flag_floats <> 0)

let packets_of_len ~packet_bytes len =
  if len = 0 then 1 else (len + packet_bytes - 1) / packet_bytes

let encode ~packet_bytes payload =
  if packet_bytes < 1 then invalid_arg "Wire.encode: packet_bytes must be >= 1";
  let len = String.length payload in
  let npk = packets_of_len ~packet_bytes len in
  let out = Bytes.create (len + (npk * header_bytes)) in
  let src = ref 0 and dst = ref 0 in
  for p = 0 to npk - 1 do
    let chunk = min packet_bytes (len - !src) in
    let last = p = npk - 1 in
    put_header out ~pos:!dst ~len:chunk ~last;
    Bytes.blit_string payload !src out (!dst + header_bytes) chunk;
    src := !src + chunk;
    dst := !dst + header_bytes + chunk
  done;
  Bytes.unsafe_to_string out

let decode s ~pos =
  let n = String.length s in
  let buf = Buffer.create 256 in
  let rec packet pos =
    if pos + header_bytes > n then
      raise_truncated "input ends inside a packet header";
    let len, last, floats = get_header s ~pos in
    if floats then
      raise_protocol "floats packet inside a byte-message stream";
    if pos + header_bytes + len > n then
      raise_truncated "input ends inside a packet chunk";
    Buffer.add_substring buf s (pos + header_bytes) len;
    let pos = pos + header_bytes + len in
    if last then (Buffer.contents buf, pos) else packet pos
  in
  packet pos

(* ---------------- descriptor IO ---------------- *)

let rec write_all fd b pos len =
  if len > 0 then begin
    let n =
      try Unix.write fd b pos len with
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
          raise_dead_peer "peer closed the connection during send"
    in
    write_all fd b (pos + n) (len - n)
  end

(* Read exactly [len] bytes; [what] names the piece for error
   messages.  EOF here is always mid-frame (the caller handles the
   clean-EOF case on the first header byte). *)
let read_exact fd b pos len ~what =
  let got = ref 0 in
  while !got < len do
    let n =
      try Unix.read fd b (pos + !got) (len - !got) with
      | Unix.Unix_error (Unix.ECONNRESET, _, _) -> 0
    in
    if n = 0 then
      raise_truncated (Printf.sprintf "peer closed mid-frame (reading %s)" what);
    got := !got + n
  done

let send c payload =
  let len = String.length payload in
  let npk = packets_of_len ~packet_bytes:c.packet_bytes len in
  let src = ref 0 in
  for p = 0 to npk - 1 do
    let chunk = min c.packet_bytes (len - !src) in
    (* one write per packet: header and chunk coalesced through the
       scratch buffer — the copy is far cheaper than a second syscall
       and halves the kernel's per-skb buffer accounting *)
    put_header c.out ~pos:0 ~len:chunk ~last:(p = npk - 1);
    Bytes.blit_string payload !src c.out header_bytes chunk;
    write_all c.write_fd c.out 0 (header_bytes + chunk);
    src := !src + chunk
  done;
  c.counters.msgs_sent <- c.counters.msgs_sent + 1;
  c.counters.packets_sent <- c.counters.packets_sent + npk;
  c.counters.bytes_sent <- c.counters.bytes_sent + len + (npk * header_bytes);
  c.counters.payload_bytes_sent <- c.counters.payload_bytes_sent + len

(* First header of a message: a clean EOF before any byte means the
   peer shut down at a frame boundary. *)
let read_first_header c =
  let got = ref 0 in
  while !got < header_bytes do
    let n =
      try Unix.read c.read_fd c.header !got (header_bytes - !got) with
      | Unix.Unix_error (Unix.ECONNRESET, _, _) -> 0
    in
    if n = 0 then
      if !got = 0 then raise End_of_file
      else raise_truncated "peer closed mid-frame (reading packet header)";
    got := !got + n
  done

let recv c =
  read_first_header c;
  let buf = Buffer.create 256 in
  let npk = ref 0 in
  let rec go ~first =
    if not first then
      read_exact c.read_fd c.header 0 header_bytes ~what:"packet header";
    incr npk;
    let len, last, floats = get_header (Bytes.unsafe_to_string c.header) ~pos:0 in
    if floats then
      raise_protocol "floats packet where a byte message was expected";
    let chunk = Bytes.create len in
    read_exact c.read_fd chunk 0 len ~what:"packet chunk";
    Buffer.add_bytes buf chunk;
    if not last then go ~first:false
  in
  go ~first:true;
  let payload = Buffer.contents buf in
  c.counters.msgs_recv <- c.counters.msgs_recv + 1;
  c.counters.packets_recv <- c.counters.packets_recv + !npk;
  c.counters.bytes_recv <-
    c.counters.bytes_recv + String.length payload + (!npk * header_bytes);
  c.counters.payload_bytes_recv <-
    c.counters.payload_bytes_recv + String.length payload;
  payload

(* ---------------- float frames (bulk-data plane) ---------------- *)

(* Float payloads as raw little-endian IEEE-754 bits, skipping
   [Marshal] entirely: bit-exact by construction (including NaN
   payloads and signed zeros) and with no graph-walk cost.  On this
   transport the floats still stage through the packet scratch buffer
   — the copy the shm ring avoids — so [zero_copy_bytes_*] stays 0;
   the point of having the same framing here is that {!Message} can
   run one code path over both transports and the calibration bench
   can measure exactly the copy the ring saves. *)

let send_floats c (arr : float array) =
  let total = Array.length arr in
  let per_packet = max 1 (c.packet_bytes / 8) in
  let npk = if total = 0 then 1 else (total + per_packet - 1) / per_packet in
  let src = ref 0 in
  for p = 0 to npk - 1 do
    let n = min per_packet (total - !src) in
    put_header c.out ~pos:0 ~len:(n * 8) ~last:(p = npk - 1) ~floats:true;
    for i = 0 to n - 1 do
      Bytes.set_int64_le c.out
        (header_bytes + (i * 8))
        (Int64.bits_of_float (Array.unsafe_get arr (!src + i)))
    done;
    write_all c.write_fd c.out 0 (header_bytes + (n * 8));
    src := !src + n
  done;
  c.counters.msgs_sent <- c.counters.msgs_sent + 1;
  c.counters.packets_sent <- c.counters.packets_sent + npk;
  c.counters.bytes_sent <-
    c.counters.bytes_sent + (total * 8) + (npk * header_bytes);
  c.counters.payload_bytes_sent <- c.counters.payload_bytes_sent + (total * 8)

let recv_floats c ~len:total =
  if total < 0 then invalid_arg "Wire.recv_floats: negative length";
  let arr = Array.make total 0.0 in
  let got = ref 0 in
  let npk = ref 0 in
  let finished = ref false in
  while not !finished do
    if !npk = 0 then read_first_header c
    else read_exact c.read_fd c.header 0 header_bytes ~what:"packet header";
    incr npk;
    let len, last, floats =
      get_header (Bytes.unsafe_to_string c.header) ~pos:0
    in
    if not floats then
      raise_protocol "byte packet where a floats message was expected";
    if len mod 8 <> 0 then
      raise
        (Protocol_error
           (Printf.sprintf "floats packet length %d not a multiple of 8" len));
    let n = len / 8 in
    if !got + n > total then
      raise
        (Protocol_error
           (Printf.sprintf "floats message longer than announced (%d > %d)"
              (!got + n) total));
    let chunk = Bytes.create len in
    read_exact c.read_fd chunk 0 len ~what:"floats chunk";
    for i = 0 to n - 1 do
      Array.unsafe_set arr (!got + i)
        (Int64.float_of_bits (Bytes.get_int64_le chunk (i * 8)))
    done;
    got := !got + n;
    if last then finished := true
  done;
  if !got <> total then
    raise
      (Protocol_error
         (Printf.sprintf "floats message shorter than announced (%d < %d)" !got
            total));
  c.counters.msgs_recv <- c.counters.msgs_recv + 1;
  c.counters.packets_recv <- c.counters.packets_recv + !npk;
  c.counters.bytes_recv <-
    c.counters.bytes_recv + (total * 8) + (!npk * header_bytes);
  c.counters.payload_bytes_recv <- c.counters.payload_bytes_recv + (total * 8);
  arr

let input_ready c =
  match Unix.select [ c.read_fd ] [] [] 0.0 with
  | [], _, _ -> false
  | _ -> true

let close c =
  (match c.mtoken with
  | Some tok ->
      c.mtoken <- None;
      M.remove_collector tok
  | None -> ());
  (try Unix.close c.read_fd with Unix.Unix_error _ -> ());
  if c.write_fd <> c.read_fd then
    try Unix.close c.write_fd with Unix.Unix_error _ -> ()

(** The socketpair transport, packaged as a {!TRANSPORT}.  [wait_fd]
    is the socket itself: this transport never buffers ahead, so
    select-readiness and [input_ready] coincide exactly. *)
module Sock : TRANSPORT with type t = conn = struct
  type t = conn

  let send = send
  let recv = recv
  let send_floats = send_floats
  let recv_floats = recv_floats
  let counters = counters
  let wait_fd = read_fd
  let input_ready = input_ready
  let close = close
end
