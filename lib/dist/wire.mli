(** Framed byte-stream transport between PEs: length-prefixed packets
    over a [socketpair] (or any fd pair), with per-connection
    message/byte/packet counters.  The real counterpart of
    [Repro_mp.Transport]'s simulated cost profiles.

    Packet format: [u32 chunk-length (big-endian) | u8 flags | chunk];
    flag bit 0 marks the last packet of a message, flag bit 1 a packet
    of a float-frame message (the zero-Marshal bulk-data plane).  A
    zero-length message is one empty last packet. *)

(** Peer closed mid-frame (EOF inside a header or chunk). *)
exception Truncated of string

(** Peer closed before a send completed (EPIPE/ECONNRESET). *)
exception Dead_peer of string

(** Malformed stream: unknown flags or an absurd chunk length. *)
exception Protocol_error of string

(** Raise the corresponding exception after bumping its
    [repro_wire_errors_total{kind=...}] counter in the default metrics
    registry — every transport raise site (here and in [Shm_ring])
    goes through these, so transport errors are visible in snapshots
    even when caught upstream. *)
val raise_truncated : string -> 'a

val raise_dead_peer : string -> 'a
val raise_protocol : string -> 'a

val header_bytes : int
val default_packet_bytes : int

type counters = {
  mutable msgs_sent : int;
  mutable msgs_recv : int;
  mutable bytes_sent : int;  (** on-wire bytes, packet headers included *)
  mutable bytes_recv : int;
  mutable packets_sent : int;
  mutable packets_recv : int;
  mutable payload_bytes_sent : int;
      (** payload bytes only, framing excluded — [bytes_* -
          payload_bytes_*] is the transport's framing overhead *)
  mutable payload_bytes_recv : int;
  mutable zero_copy_bytes_sent : int;
      (** payload bytes moved without an intermediate copy (shm ring
          float frames); always 0 on this socketpair transport *)
  mutable zero_copy_bytes_recv : int;
  mutable pack_ns : int;  (** Marshal time, accumulated by {!Message} *)
  mutable unpack_ns : int;
}

val fresh_counters : unit -> counters

(** One [repro_wire_*] counter sample per field, under [labels]. *)
val samples_of_counters :
  labels:(string * string) list -> counters -> Repro_metrics.Metrics.sample list

(** Register [counters] as a per-link collector in the default metrics
    registry (labels: a fresh [link] id plus [transport]).  Remove the
    token at close — removal retires the final totals, so closed links
    stay in cumulative snapshots. *)
val add_link_collector :
  transport:string -> counters -> Repro_metrics.Metrics.collector

(** The transport abstraction {!Message} and [Farm] are written
    against: byte messages (Marshal control plane), float messages
    (zero-Marshal bulk-data plane, element count carried by control
    messages), counters, and select-compatible readiness.  Implemented
    by {!Sock} below and by [Shm_ring]. *)
module type TRANSPORT = sig
  type t

  val send : t -> string -> unit
  val recv : t -> string
  val send_floats : t -> float array -> unit
  val recv_floats : t -> len:int -> float array
  val counters : t -> counters

  (** A descriptor whose readability means "input may be available" —
      the socket itself, or the ring's doorbell.  Spurious wake-ups
      allowed; missed messages are not.  Check [input_ready] after
      waking. *)
  val wait_fd : t -> Unix.file_descr

  (** Non-blocking: is a message (possibly partially) available?  May
      be true while [wait_fd] shows nothing (ring data published
      without a doorbell). *)
  val input_ready : t -> bool

  val close : t -> unit
end

type conn

(** [create ~read_fd ~write_fd ()] wraps a descriptor pair (they may
    be the same descriptor, e.g. one end of a socketpair).  Ignores
    SIGPIPE process-wide on first use so a dead peer surfaces as
    {!Dead_peer} rather than a fatal signal.
    @raise Invalid_argument if [packet_bytes < 1]. *)
val create :
  ?packet_bytes:int ->
  read_fd:Unix.file_descr ->
  write_fd:Unix.file_descr ->
  unit ->
  conn

val counters : conn -> counters
val packet_bytes : conn -> int

(** The receiving descriptor, for [Unix.select] multiplexing (safe
    because {!recv} never reads ahead of the current frame). *)
val read_fd : conn -> Unix.file_descr

(** Number of packets a [len]-byte message needs (at least 1). *)
val packets_of_len : packet_bytes:int -> int -> int

(** Pure codec (property tests): [encode] produces the exact byte
    stream [send] would write; [decode s ~pos] returns the payload and
    the position one past its last packet.
    @raise Truncated if [s] ends before the message completes
    (including an empty remainder). *)
val encode : packet_bytes:int -> string -> string

val decode : string -> pos:int -> string * int

(** Send one message (split into packets).
    @raise Dead_peer if the peer is gone. *)
val send : conn -> string -> unit

(** Receive one message.  Reads are exact — nothing is buffered ahead,
    so [Unix.select] readiness means a header is in flight.
    @raise End_of_file on a clean EOF at a frame boundary.
    @raise Truncated on EOF mid-frame. *)
val recv : conn -> string

(** Send a float payload as raw little-endian IEEE-754 bits (flag bit
    1 packets): bit-exact, no [Marshal].  Counted under
    [payload_bytes_*] like any payload; never zero-copy here. *)
val send_floats : conn -> float array -> unit

(** Receive a float message of exactly [len] elements (the count
    travels in the preceding control message).
    @raise Protocol_error on plane confusion or a length mismatch. *)
val recv_floats : conn -> len:int -> float array

(** Non-blocking readiness probe ([Unix.select] with a 0 timeout). *)
val input_ready : conn -> bool

val close : conn -> unit

(** The socketpair transport packaged as a {!TRANSPORT} ([wait_fd] =
    {!read_fd}). *)
module Sock : TRANSPORT with type t = conn
