(** The PE-side of the distributed executor.

    A worker is a {e fresh process} started with
    [Unix.create_process] — not a fork: OCaml 5 forbids forking once
    any domain has ever been created in the process, and the host
    binaries spawn domains for the shared-memory backend.  The
    coordinator re-executes its own binary with {!marker} as the first
    argument; host executables must call {!maybe_run} before their
    normal entry point.  One end of a socketpair becomes the child's
    stdin and carries {e both} directions (a socketpair is full
    duplex).  Stdout and stderr pass through untouched — anything the
    binary prints before {!maybe_run} runs (a test runner announcing a
    random seed, say) lands on the console instead of corrupting the
    wire.

    Over the socketpair transport that stdin descriptor {e is} the
    message channel.  Over the shm transport it is only the doorbell:
    messages flow through mmap'd ring segments whose paths arrive as
    argv tokens after {!marker} ([shm=PATH] for the coordinator link,
    [p2p=PE:SIDE:PATH] for each peer link) — paths cross
    [create_process] where descriptors cannot.

    The scheduling loops differ with the transport, mirroring the two
    topologies in the paper:

    - {e sock} (star): blocking receive from the coordinator; FISH
      goes to the coordinator after each result.
    - {e shm} (mesh): the coordinator pushes the whole round up front;
      tasks queue locally; an idle PE fishes {e peers} directly on the
      p2p links, and a victim's surplus tasks flow straight back —
      SCHEDULE replies never touch the coordinator.

    The PE owns a fully private OCaml heap with its own GC — the
    defining property of the Eden/GUM model this backend realises —
    and reports its GC counter deltas back in [Stats]. *)

let marker = "--dist-worker"
let default_argv () = [| Sys.executable_name; marker |]

let is_worker_invocation argv = Array.length argv >= 2 && argv.(1) = marker

(* One executed task: the result payload plus the phase
   timestamps/durations a trace span needs. *)
type executed = {
  out : Message.payload;
  unpack_ns : int;
  exec_start_ns : int;
  exec_end_ns : int;
  pack_ns : int;
}

(* Build the payload -> executed function once per session.  Workload
   mode looks the workload up in the registry and round-trips typed
   task/result values — through the blob codec when the workload
   declares one, so bulk float results skip [Marshal] on both
   transports; [Closures] mode expects a marshalled [unit -> string]
   whose output is already the result payload. *)
let executor (mode : Message.mode) : string -> executed =
  match mode with
  | Message.Workload { name; size } -> (
      match Workload.find name with
      | None -> failwith (Printf.sprintf "dist worker: unknown workload %S" name)
      | Some (module W) ->
          fun payload ->
            let t0 = Clock.now_ns () in
            let task : W.task = Marshal.from_string payload 0 in
            let t1 = Clock.now_ns () in
            let r = W.execute ~size task in
            let t2 = Clock.now_ns () in
            let out =
              match W.result_blob with
              | Some (enc, _) -> Message.Floats_p (enc r)
              | None -> Message.Bytes_p (Marshal.to_string r [])
            in
            let t3 = Clock.now_ns () in
            {
              out;
              unpack_ns = t1 - t0;
              exec_start_ns = t1;
              exec_end_ns = t2;
              pack_ns = t3 - t2;
            })
  | Message.Closures ->
      fun payload ->
        let t0 = Clock.now_ns () in
        let f : unit -> string = Marshal.from_string payload 0 in
        let t1 = Clock.now_ns () in
        let out = f () in
        let t2 = Clock.now_ns () in
        {
          out = Message.Bytes_p out;
          unpack_ns = t1 - t0;
          exec_start_ns = t1;
          exec_end_ns = t2;
          pack_ns = 0;
        }

let max_recorded_spans = 8192

(* ---------------- session state shared by both loops ---------------- *)

type session = {
  hello : Message.hello;
  execute : string -> executed;
  gc0 : Gc.stat;
  mw0 : float;
  mutable tasks_executed : int;
  mutable fishes_sent : int;
  mutable tasks_stolen : int;
  mutable grants_given : int;
  mutable exec_ns : int;
  mutable spans : Message.task_span list;
  mutable nspans : int;
  mutable spans_dropped : int;
}

let start_session hello =
  {
    hello;
    execute = executor hello.Message.mode;
    gc0 = Gc.quick_stat ();
    (* [quick_stat]'s [minor_words] only advances at collection
       boundaries; [Gc.minor_words] reads the live allocation pointer,
       which matters in a worker too short-lived to ever minor-collect. *)
    mw0 = Gc.minor_words ();
    tasks_executed = 0;
    fishes_sent = 0;
    tasks_stolen = 0;
    grants_given = 0;
    exec_ns = 0;
    spans = [];
    nspans = 0;
    spans_dropped = 0;
  }

(* Execute one task payload and push its result (blob-aware) to the
   coordinator. *)
let run_task s ~coord ~task_id ~round ~stolen payload =
  let recv_done_ns = Clock.now_ns () in
  let e = s.execute payload in
  let c = Link.counters coord in
  c.Wire.unpack_ns <- c.Wire.unpack_ns + e.unpack_ns;
  c.Wire.pack_ns <- c.Wire.pack_ns + e.pack_ns;
  s.exec_ns <- s.exec_ns + (e.exec_end_ns - e.exec_start_ns);
  s.tasks_executed <- s.tasks_executed + 1;
  if stolen then s.tasks_stolen <- s.tasks_stolen + 1;
  if s.hello.Message.trace then
    if s.nspans < max_recorded_spans then begin
      s.nspans <- s.nspans + 1;
      s.spans <-
        {
          Message.span_task_id = task_id;
          recv_done_ns;
          span_unpack_ns = e.unpack_ns;
          exec_start_ns = e.exec_start_ns;
          exec_end_ns = e.exec_end_ns;
          span_pack_ns = e.pack_ns;
        }
        :: s.spans
    end
    else s.spans_dropped <- s.spans_dropped + 1;
  Message.send_result coord ~task_id ~round e.out

let stats_of_session s ~(links : Link.t list) : Message.worker_stats =
  let gc1 = Gc.quick_stat () in
  (* traffic summed over every link the PE holds: the coordinator link
     plus (shm) all peer links *)
  let agg = Wire.fresh_counters () in
  List.iter
    (fun l ->
      let c = Link.counters l in
      agg.Wire.msgs_sent <- agg.Wire.msgs_sent + c.Wire.msgs_sent;
      agg.Wire.msgs_recv <- agg.Wire.msgs_recv + c.Wire.msgs_recv;
      agg.Wire.bytes_sent <- agg.Wire.bytes_sent + c.Wire.bytes_sent;
      agg.Wire.bytes_recv <- agg.Wire.bytes_recv + c.Wire.bytes_recv;
      agg.Wire.packets_sent <- agg.Wire.packets_sent + c.Wire.packets_sent;
      agg.Wire.packets_recv <- agg.Wire.packets_recv + c.Wire.packets_recv;
      agg.Wire.payload_bytes_sent <-
        agg.Wire.payload_bytes_sent + c.Wire.payload_bytes_sent;
      agg.Wire.payload_bytes_recv <-
        agg.Wire.payload_bytes_recv + c.Wire.payload_bytes_recv;
      agg.Wire.zero_copy_bytes_sent <-
        agg.Wire.zero_copy_bytes_sent + c.Wire.zero_copy_bytes_sent;
      agg.Wire.zero_copy_bytes_recv <-
        agg.Wire.zero_copy_bytes_recv + c.Wire.zero_copy_bytes_recv;
      agg.Wire.pack_ns <- agg.Wire.pack_ns + c.Wire.pack_ns;
      agg.Wire.unpack_ns <- agg.Wire.unpack_ns + c.Wire.unpack_ns)
    links;
  {
    Message.stats_pe = s.hello.Message.pe;
    tasks_executed = s.tasks_executed;
    fishes_sent = s.fishes_sent;
    tasks_stolen = s.tasks_stolen;
    grants_given = s.grants_given;
    msgs_sent = agg.Wire.msgs_sent;
    msgs_recv = agg.Wire.msgs_recv;
    bytes_sent = agg.Wire.bytes_sent;
    bytes_recv = agg.Wire.bytes_recv;
    packets_sent = agg.Wire.packets_sent;
    packets_recv = agg.Wire.packets_recv;
    payload_bytes_sent = agg.Wire.payload_bytes_sent;
    payload_bytes_recv = agg.Wire.payload_bytes_recv;
    zero_copy_bytes_sent = agg.Wire.zero_copy_bytes_sent;
    zero_copy_bytes_recv = agg.Wire.zero_copy_bytes_recv;
    pack_ns = agg.Wire.pack_ns;
    unpack_ns = agg.Wire.unpack_ns;
    exec_ns = s.exec_ns;
    gc_minor_collections =
      (Gc.quick_stat ()).minor_collections - s.gc0.minor_collections;
    gc_major_collections = gc1.major_collections - s.gc0.major_collections;
    gc_minor_words = Gc.minor_words () -. s.mw0;
    gc_promoted_words = gc1.promoted_words -. s.gc0.promoted_words;
    spans = List.rev s.spans;
    spans_dropped = s.spans_dropped;
    (* the whole default registry, not a hand-picked subset: whatever
       collectors the PE process registered (link counters, wire
       errors, GC) travel to the coordinator in one snapshot *)
    metrics = Repro_metrics.Metrics.snapshot ();
  }

(* ---------------- sock loop (star topology) ---------------- *)

let serve_sock () =
  let conn =
    Link.Sock (Wire.create ~read_fd:Unix.stdin ~write_fd:Unix.stdin ())
  in
  let hello = Message.recv_hello conn in
  let s = start_session hello in
  let running = ref true in
  while !running do
    match Message.recv_to_worker conn with
    | Schedule { task_id; round; stealable = _; payload } ->
        run_task s ~coord:conn ~task_id ~round ~stolen:false payload;
        (* GUM-style demand: ask for more as soon as the result is off. *)
        Message.send_to_coordinator conn Message.Fish;
        s.fishes_sent <- s.fishes_sent + 1
    | No_work ->
        (* Nothing runnable at the coordinator; the blocking recv at
           the top of the loop is the wait. *)
        ()
    | Harvest ->
        Message.send_to_coordinator conn
          (Stats (stats_of_session s ~links:[ conn ]))
    | Shutdown -> running := false
  done

(* ---------------- shm loop (mesh topology) ---------------- *)

type queued = {
  q_task_id : int;
  q_round : int;
  q_stealable : bool;
  q_payload : string;
  q_stolen : bool;
}

let serve_shm ~path ~(p2p : (int * [ `A | `B ] * string) list) =
  let ring = Shm_ring.attach ~path ~side:`B ~doorbell:Unix.stdin () in
  let conn = Link.Shm ring in
  let hello = Message.recv_hello conn in
  let peers =
    Array.of_list
      (List.map
         (fun (pe, side, p) -> (pe, Link.Shm (Shm_ring.attach ~path:p ~side ())))
         p2p)
  in
  (* every segment is mapped: the coordinator may unlink the files *)
  Message.send_to_coordinator conn Message.Ready;
  let s = start_session hello in
  let q : queued Queue.t = Queue.create () in
  let all_links = Array.append [| conn |] (Array.map snd peers) in
  (* Fishing generation: which peers already said "no work" for the
     current round.  Reset whenever fresh work arrives. *)
  let no_work_from = Array.make (Array.length peers) false in
  let fish_outstanding = ref None in
  let next_victim = ref (hello.Message.pe + 1) in
  let cur_round = ref (-1) in
  let cur_stealable = ref false in
  let running = ref true in
  let fresh_work round stealable =
    if round <> !cur_round then Array.fill no_work_from 0 (Array.length no_work_from) false;
    cur_round := round;
    cur_stealable := stealable
  in
  let handle_coord () =
    match Message.recv_to_worker conn with
    | Schedule { task_id; round; stealable; payload } ->
        fresh_work round stealable;
        Queue.add
          {
            q_task_id = task_id;
            q_round = round;
            q_stealable = stealable;
            q_payload = payload;
            q_stolen = false;
          }
          q
    | No_work -> ()
    | Harvest ->
        Message.send_to_coordinator conn
          (Stats (stats_of_session s ~links:(Array.to_list all_links)))
    | Shutdown -> running := false
  in
  let handle_peer i plink =
    match Message.recv_to_peer plink with
    | Peer_fish { thief_pe = _; round } ->
        (* Grant only surplus from the round being fished: at least
           one task stays here (we are obviously still busy), pinned
           tasks never move. *)
        let surplus = Queue.length q - 1 in
        if
          surplus >= 1
          && (not (Queue.is_empty q))
          && (Queue.peek q).q_round = round
          && (Queue.peek q).q_stealable
        then begin
          let give = (surplus + 1) / 2 in
          let tasks =
            Array.init give (fun _ ->
                let t = Queue.pop q in
                (t.q_task_id, t.q_payload))
          in
          s.grants_given <- s.grants_given + give;
          Message.send_to_peer plink (Peer_grant { round; tasks })
        end
        else Message.send_to_peer plink (Peer_no_work { round })
    | Peer_grant { round; tasks } ->
        if !fish_outstanding = Some i then fish_outstanding := None;
        Array.iter
          (fun (task_id, payload) ->
            Queue.add
              {
                q_task_id = task_id;
                q_round = round;
                q_stealable = true;
                q_payload = payload;
                q_stolen = true;
              }
              q)
          tasks
    | Peer_no_work { round } ->
        if !fish_outstanding = Some i then fish_outstanding := None;
        if round = !cur_round then no_work_from.(i) <- true
  in
  while !running do
    let progress = ref false in
    while !running && Link.input_ready conn do
      progress := true;
      handle_coord ()
    done;
    if !running then
      Array.iteri
        (fun i (_, plink) ->
          while Link.input_ready plink do
            progress := true;
            handle_peer i plink
          done)
        peers;
    if !running then
      if not (Queue.is_empty q) then begin
        progress := true;
        let t = Queue.pop q in
        cur_round := t.q_round;
        cur_stealable := t.q_stealable;
        run_task s ~coord:conn ~task_id:t.q_task_id ~round:t.q_round
          ~stolen:t.q_stolen t.q_payload
      end
      else if
        (* idle in a stealable round: fish one rotating victim at a
           time, until every peer has said no for this round *)
        !cur_stealable
        && !fish_outstanding = None
        && Array.length peers > 0
        && Array.exists not no_work_from
      then begin
        let n = Array.length peers in
        let tries = ref 0 in
        while !fish_outstanding = None && !tries < n do
          let i = !next_victim mod n in
          next_victim := !next_victim + 1;
          incr tries;
          if not no_work_from.(i) then begin
            Message.send_to_peer (snd peers.(i))
              (Peer_fish { thief_pe = hello.Message.pe; round = !cur_round });
            s.fishes_sent <- s.fishes_sent + 1;
            fish_outstanding := Some i
          end
        done
      end;
    if !running && not !progress then Link.wait_any ~timeout:0.002 all_links
  done

(* ---------------- entry points ---------------- *)

(* argv after the marker: [shm=PATH] selects the shm transport;
   [p2p=PE:SIDE:PATH] adds one peer link per token. *)
let parse_tokens argv =
  let shm = ref None and p2p = ref [] in
  for i = 2 to Array.length argv - 1 do
    let tok = argv.(i) in
    match String.index_opt tok '=' with
    | Some eq -> (
        let key = String.sub tok 0 eq in
        let v = String.sub tok (eq + 1) (String.length tok - eq - 1) in
        match key with
        | "shm" -> shm := Some v
        | "p2p" -> (
            match String.split_on_char ':' v with
            | [ pe; side; path ] ->
                let side =
                  match side with
                  | "a" -> `A
                  | "b" -> `B
                  | _ -> failwith ("dist worker: bad p2p side in " ^ tok)
                in
                p2p := (int_of_string pe, side, path) :: !p2p
            | _ -> failwith ("dist worker: bad p2p token " ^ tok))
        | _ -> failwith ("dist worker: unknown argv token " ^ tok))
    | None -> failwith ("dist worker: unknown argv token " ^ tok)
  done;
  (!shm, List.rev !p2p)

let serve argv =
  match parse_tokens argv with
  | None, [] -> serve_sock ()
  | Some path, p2p -> serve_shm ~path ~p2p
  | None, _ :: _ -> failwith "dist worker: p2p links without an shm coordinator link"

let main argv =
  match serve argv with
  | () -> exit 0
  | exception End_of_file ->
      (* coordinator vanished without Shutdown *)
      exit 1
  | exception e ->
      prerr_endline ("dist worker: " ^ Printexc.to_string e);
      exit 2

let maybe_run argv = if is_worker_invocation argv then main argv
