(** The PE-side of the distributed executor.

    A worker is a {e fresh process} started with
    [Unix.create_process] — not a fork: OCaml 5 forbids forking once
    any domain has ever been created in the process, and the host
    binaries spawn domains for the shared-memory backend.  The
    coordinator re-executes its own binary with {!marker} as the first
    argument; host executables must call {!maybe_run} before their
    normal entry point.  One end of a socketpair becomes the child's
    stdin and carries {e both} directions (a socketpair is full
    duplex), so the message channel needs no fd plumbing beyond
    [create_process]'s standard slots.  Stdout and stderr pass
    through untouched — anything the binary prints before
    {!maybe_run} runs (a test runner announcing a random seed, say)
    lands on the console instead of corrupting the wire.

    The PE owns a fully private OCaml heap with its own GC — the
    defining property of the Eden/GUM model this backend realises —
    and reports its GC counter deltas back in [Stats]. *)

let marker = "--dist-worker"
let default_argv () = [| Sys.executable_name; marker |]

let is_worker_invocation argv = Array.length argv >= 2 && argv.(1) = marker

(* One executed task: the marshalled result plus the phase
   timestamps/durations a trace span needs. *)
type executed = {
  out : string;
  unpack_ns : int;
  exec_start_ns : int;
  exec_end_ns : int;
  pack_ns : int;
}

(* Build the payload -> executed function once per session.  Workload
   mode looks the workload up in the registry and round-trips typed
   task/result values; [Closures] mode expects a marshalled
   [unit -> string] whose output is already the result payload. *)
let executor (mode : Message.mode) : string -> executed =
  match mode with
  | Message.Workload { name; size } -> (
      match Workload.find name with
      | None -> failwith (Printf.sprintf "dist worker: unknown workload %S" name)
      | Some (module W) ->
          fun payload ->
            let t0 = Clock.now_ns () in
            let task : W.task = Marshal.from_string payload 0 in
            let t1 = Clock.now_ns () in
            let r = W.execute ~size task in
            let t2 = Clock.now_ns () in
            let out = Marshal.to_string r [] in
            let t3 = Clock.now_ns () in
            {
              out;
              unpack_ns = t1 - t0;
              exec_start_ns = t1;
              exec_end_ns = t2;
              pack_ns = t3 - t2;
            })
  | Message.Closures ->
      fun payload ->
        let t0 = Clock.now_ns () in
        let f : unit -> string = Marshal.from_string payload 0 in
        let t1 = Clock.now_ns () in
        let out = f () in
        let t2 = Clock.now_ns () in
        { out; unpack_ns = t1 - t0; exec_start_ns = t1; exec_end_ns = t2; pack_ns = 0 }

let max_recorded_spans = 8192

let serve () =
  let conn = Wire.create ~read_fd:Unix.stdin ~write_fd:Unix.stdin () in
  let hello = Message.recv_hello conn in
  let execute = executor hello.mode in
  let gc0 = Gc.quick_stat () in
  (* [quick_stat]'s [minor_words] only advances at collection
     boundaries; [Gc.minor_words] reads the live allocation pointer,
     which matters in a worker too short-lived to ever minor-collect. *)
  let mw0 = Gc.minor_words () in
  let tasks_executed = ref 0 in
  let fishes_sent = ref 0 in
  let exec_ns = ref 0 in
  let spans = ref [] in
  let nspans = ref 0 in
  let spans_dropped = ref 0 in
  let running = ref true in
  while !running do
    match Message.recv_to_worker conn with
    | Schedule { task_id; round; payload } ->
        let recv_done_ns = Clock.now_ns () in
        let e = execute payload in
        let c = Wire.counters conn in
        c.Wire.unpack_ns <- c.Wire.unpack_ns + e.unpack_ns;
        c.Wire.pack_ns <- c.Wire.pack_ns + e.pack_ns;
        exec_ns := !exec_ns + (e.exec_end_ns - e.exec_start_ns);
        incr tasks_executed;
        if hello.trace then
          if !nspans < max_recorded_spans then begin
            incr nspans;
            spans :=
              {
                Message.span_task_id = task_id;
                recv_done_ns;
                span_unpack_ns = e.unpack_ns;
                exec_start_ns = e.exec_start_ns;
                exec_end_ns = e.exec_end_ns;
                span_pack_ns = e.pack_ns;
              }
              :: !spans
          end
          else incr spans_dropped;
        Message.send_to_coordinator conn
          (Result { task_id; round; payload = e.out });
        (* GUM-style demand: ask for more as soon as the result is off. *)
        Message.send_to_coordinator conn Fish;
        incr fishes_sent
    | No_work ->
        (* Nothing runnable at the coordinator; the blocking recv at
           the top of the loop is the wait. *)
        ()
    | Harvest ->
        let gc1 = Gc.quick_stat () in
        let c = Wire.counters conn in
        let stats =
          {
            Message.stats_pe = hello.pe;
            tasks_executed = !tasks_executed;
            fishes_sent = !fishes_sent;
            msgs_sent = c.Wire.msgs_sent;
            msgs_recv = c.Wire.msgs_recv;
            bytes_sent = c.Wire.bytes_sent;
            bytes_recv = c.Wire.bytes_recv;
            packets_sent = c.Wire.packets_sent;
            packets_recv = c.Wire.packets_recv;
            pack_ns = c.Wire.pack_ns;
            unpack_ns = c.Wire.unpack_ns;
            exec_ns = !exec_ns;
            gc_minor_collections = gc1.minor_collections - gc0.minor_collections;
            gc_major_collections = gc1.major_collections - gc0.major_collections;
            gc_minor_words = Gc.minor_words () -. mw0;
            gc_promoted_words = gc1.promoted_words -. gc0.promoted_words;
            spans = List.rev !spans;
            spans_dropped = !spans_dropped;
          }
        in
        Message.send_to_coordinator conn (Stats stats)
    | Shutdown -> running := false
  done

let main () =
  match serve () with
  | () -> exit 0
  | exception End_of_file ->
      (* coordinator vanished without Shutdown *)
      exit 1
  | exception e ->
      prerr_endline ("dist worker: " ^ Printexc.to_string e);
      exit 2

let maybe_run argv = if is_worker_invocation argv then main ()
