(** PE-side entry point of the distributed executor.  Workers are
    fresh [create_process] spawns of the host binary (OCaml 5 forbids
    [Unix.fork] once any domain has been created), recognised by
    {!marker} in [argv]; host executables call {!maybe_run} before
    their normal main. *)

(** First argv argument marking a worker invocation
    (["--dist-worker"]). *)
val marker : string

(** [[| Sys.executable_name; marker |]] — re-execute this binary as a
    worker. *)
val default_argv : unit -> string array

val is_worker_invocation : string array -> bool

(** Serve one coordinator session, then [exit]; never returns.  Over
    the socketpair transport stdin carries the messages (both
    directions); over shm (selected by an [shm=PATH] argv token, with
    [p2p=PE:SIDE:PATH] tokens for the peer mesh) stdin is only the
    doorbell and messages flow through the mapped rings. *)
val main : string array -> 'a

(** [maybe_run argv] runs {!main} (never returning) iff [argv] marks a
    worker invocation; otherwise returns immediately. *)
val maybe_run : string array -> unit
