(** PE-side entry point of the distributed executor.  Workers are
    fresh [create_process] spawns of the host binary (OCaml 5 forbids
    [Unix.fork] once any domain has been created), recognised by
    {!marker} in [argv]; host executables call {!maybe_run} before
    their normal main. *)

(** First argv argument marking a worker invocation
    (["--dist-worker"]). *)
val marker : string

(** [[| Sys.executable_name; marker |]] — re-execute this binary as a
    worker. *)
val default_argv : unit -> string array

val is_worker_invocation : string array -> bool

(** Serve one coordinator session on stdin (the socketpair end, used
    in both directions), then [exit].  Never returns. *)
val main : unit -> 'a

(** [maybe_run argv] runs {!main} (never returning) iff [argv] marks a
    worker invocation; otherwise returns immediately. *)
val maybe_run : string array -> unit
