(** Workloads decomposed for distribution: pure-data tasks executed on
    remote PEs with private heaps.

    Where [Repro_exec.Workload] expresses each benchmark as sparked
    closures over a shared heap, the distributed form must obey Eden's
    heap-boundary rule: a task is {e data} (a chunk descriptor, a
    pivot row), never a closure over shared state, and a result is a
    fully-evaluated value marshalled back whole.  Each workload is a
    sequence of {e rounds} (barriers): most need one round of
    independent tasks; APSP needs one round per pivot with the next
    pivot row flowing back through the coordinator, and {e pins} its
    block tasks so each PE keeps its rows across rounds (PE-resident
    state, as in Eden's ring skeleton).

    Results are combined in task order on the coordinator, so every
    checksum is bit-identical to the sequential reference — the same
    guarantee the shared-heap executor gives, now across process
    boundaries. *)

module Euler = Repro_workloads.Euler
module Matrix = Repro_workloads.Matrix
module Mandelbrot = Repro_workloads.Mandelbrot
module Apsp = Repro_workloads.Apsp

module type S = sig
  val name : string
  val size_doc : string
  val default_size : int
  val quick_size : int

  type task
  (** Pure data shipped to a PE ([Marshal] without closures). *)

  type result
  (** Fully-evaluated value shipped back. *)

  type state
  (** Coordinator state threaded between rounds. *)

  (** First round: tasks plus whether they are {e pinned} (task [i]
      must run on PE [i mod procs]; required when PEs keep
      round-to-round resident state). *)
  val start : size:int -> procs:int -> state * task array * bool

  (** Barrier: all of a round's results, in task order.  Either the
      final checksum or the next round. *)
  val step :
    state -> result array -> [ `Done of int | `Round of state * task array * bool ]

  (** Runs on the PE.  May keep process-local caches (e.g. regenerated
      input matrices); must not depend on coordinator state. *)
  val execute : size:int -> task -> result

  (** Bulk-result codec for the zero-[Marshal] data plane (see
      {!Message.payload}): [Some (enc, dec)] when results are
      float-dominated; [dec (enc r) = r] bit-for-bit.  The executor
      uses it on {e both} transports — over shm the floats cross
      without any intermediate copy. *)
  val result_blob : ((result -> float array) * (float array -> result)) option

  (** Sequential reference checksum (same value as
      [Repro_exec.Workload]'s for the same name and size). *)
  val reference : size:int -> int
end

let float_bits f = Int64.to_int (Int64.bits_of_float f)

(* Contiguous block [c] of [0..size-1] split into [chunks] pieces. *)
let block ~size ~chunks c =
  let lo = c * size / chunks and hi = ((c + 1) * size / chunks) - 1 in
  (lo, hi)

(* ---------------- sumEuler ---------------- *)

module Sumeuler : S = struct
  let name = "sumeuler"
  let size_doc = "sum of Euler's totient over [1..size]"
  let default_size = 300_000
  let quick_size = 2_000

  type task = int * int  (** inclusive [k] range *)

  type result = int
  type state = unit

  let chunk_count size = max 1 (min 512 (size / 50))

  let start ~size ~procs:_ =
    let chunks = chunk_count size in
    let tasks =
      Array.init chunks (fun c ->
          let lo, hi = block ~size ~chunks c in
          (lo + 1, hi + 1))
    in
    ((), tasks, false)

  let step () results = `Done (Array.fold_left ( + ) 0 results)

  let execute ~size:_ (lo, hi) =
    let s = ref 0 in
    for k = lo to hi do
      s := !s + Euler.phi_fast k
    done;
    !s

  (* one int per task: the marshalled form is already minimal *)
  let result_blob = None
  let reference ~size = Euler.sum_euler_ref size
end

(* ---------------- parfib ---------------- *)

module Parfib : S = struct
  let name = "parfib"
  let size_doc = "nfib size (naive call count), call tree farmed at a threshold"
  let default_size = 34
  let quick_size = 24

  type task = int  (** one sub-tree: compute nfib of this argument *)

  type result = int

  type state = int  (** internal-node contribution of the unfolded prefix *)

  let threshold size = max 2 (size - 10)

  (* Unfold the call tree down to the threshold, exactly as the
     shared-heap version sparks it: every internal node contributes
     [+1], the leaves become remote tasks. *)
  let start ~size ~procs:_ =
    let t = threshold size in
    let leaves = ref [] and internal = ref 0 in
    let rec split n =
      if n < t || n < 2 then leaves := n :: !leaves
      else begin
        incr internal;
        split (n - 1);
        split (n - 2)
      end
    in
    split size;
    (!internal, Array.of_list (List.rev !leaves), false)

  let step internal results =
    `Done (internal + Array.fold_left ( + ) 0 results)

  (* Real work: the naive exponential recursion, not the memoised
     [Repro_workloads.Parfib.nfib]. *)
  let rec nfib n = if n < 2 then 1 else nfib (n - 1) + nfib (n - 2) + 1
  let execute ~size:_ n = nfib n
  let result_blob = None
  let reference ~size = Repro_workloads.Parfib.reference size
end

(* ---------------- matmul ---------------- *)

module Matmul : S = struct
  let name = "matmul"
  let size_doc = "size x size dense float multiply"
  let default_size = 384
  let quick_size = 64

  type task = int * int  (** inclusive row range of the product *)

  type result = float array array  (** the computed rows *)

  type state = float array array  (** the product, assembled row by row *)

  let inputs_seed_a = 11
  let inputs_seed_b = 23

  (* PEs regenerate the (deterministic) inputs locally instead of
     receiving them — Eden replicates closed inputs the same way; only
     the computed rows travel back. Cached per size so multi-task PEs
     pay the generation once per process. *)
  let inputs_cache : (int, Matrix.mat * Matrix.mat) Hashtbl.t =
    Hashtbl.create 4

  let inputs size =
    match Hashtbl.find_opt inputs_cache size with
    | Some ab -> ab
    | None ->
        let ab =
          (Matrix.random ~seed:inputs_seed_a size, Matrix.random ~seed:inputs_seed_b size)
        in
        Hashtbl.replace inputs_cache size ab;
        ab

  (* Same kernel and accumulation order as the shared-heap executor
     and the sequential reference: ascending-k dot products, so the
     assembled checksum matches bit-for-bit. *)
  let rows_kernel a b lo hi =
    let n = Array.length a in
    Array.init (hi - lo + 1) (fun r ->
        let i = lo + r in
        let ai = a.(i) in
        let ci = Array.make n 0.0 in
        for j = 0 to n - 1 do
          let s = ref 0.0 in
          for k = 0 to n - 1 do
            s := !s +. (ai.(k) *. b.(k).(j))
          done;
          ci.(j) <- !s
        done;
        ci)

  let chunk_count ~size ~procs = max 1 (min size (4 * procs))

  let start ~size ~procs =
    let chunks = chunk_count ~size ~procs in
    let tasks = Array.init chunks (block ~size ~chunks) in
    (Matrix.zero size, tasks, false)

  let step c results =
    let row = ref 0 in
    Array.iter
      (Array.iter (fun r ->
           c.(!row) <- r;
           incr row))
      results;
    `Done (float_bits (Matrix.checksum c))

  let execute ~size (lo, hi) =
    if hi < lo then [||]
    else
      let a, b = inputs size in
      rows_kernel a b lo hi

  (* The bulk payload of the whole suite: a block of product rows.
     Flattened with a [rows; cols] shape prefix — both are far below
     2^53, so the float round-trip is exact, as is the row data
     itself (raw IEEE bits either way). *)
  let result_blob =
    let enc (rows : result) =
      let nr = Array.length rows in
      let nc = if nr = 0 then 0 else Array.length rows.(0) in
      let out = Array.make (2 + (nr * nc)) 0.0 in
      out.(0) <- float_of_int nr;
      out.(1) <- float_of_int nc;
      Array.iteri
        (fun i row -> Array.blit row 0 out (2 + (i * nc)) nc)
        rows;
      out
    in
    let dec (flat : float array) : result =
      let nr = int_of_float flat.(0) and nc = int_of_float flat.(1) in
      Array.init nr (fun i -> Array.sub flat (2 + (i * nc)) nc)
    in
    Some (enc, dec)

  let reference ~size =
    let a, b =
      (Matrix.random ~seed:inputs_seed_a size, Matrix.random ~seed:inputs_seed_b size)
    in
    let c = rows_kernel a b 0 (size - 1) in
    float_bits (Matrix.checksum c)
end

(* ---------------- mandelbrot ---------------- *)

module Mandelbrot_w : S = struct
  let name = "mandelbrot"
  let size_doc = "size x size rendering of the default view"
  let default_size = 500
  let quick_size = 64

  type task = int * int  (** inclusive row range *)

  type result = int array  (** per-row iteration totals for the range *)

  type state = unit

  let chunk_count size = max 1 (min 128 size)

  let start ~size ~procs:_ =
    let chunks = chunk_count size in
    ((), Array.init chunks (block ~size ~chunks), false)

  let step () results =
    `Done
      (Array.fold_left
         (fun acc rows -> Array.fold_left ( + ) acc rows)
         0 results)

  let execute ~size (lo, hi) =
    Array.init
      (max 0 (hi - lo + 1))
      (fun i ->
        let _, total =
          Mandelbrot.compute_row ~view:Mandelbrot.default_view ~width:size
            ~height:size (lo + i)
        in
        total)

  (* Row totals are iteration counts (far below 2^53): exact as
     floats, so the rendered rows ride the zero-copy plane. *)
  let result_blob =
    let enc (rows : result) = Array.map float_of_int rows in
    let dec (flat : float array) : result = Array.map int_of_float flat in
    Some (enc, dec)

  let reference ~size = Mandelbrot.reference ~width:size ~height:size ()
end

(* ---------------- apsp ---------------- *)

module Apsp_w : S = struct
  let name = "apsp"
  let size_doc = "all-pairs shortest paths on a size-node digraph"
  let default_size = 256
  let quick_size = 48

  (* One barrier round per pivot, Eden-ring style: each PE owns a
     block of rows for the whole run (pinned tasks + a process-local
     cache); only the pivot row circulates, via the coordinator.  The
     PE owning row [k+1] returns it (updated through pivot [k]) as the
     next round's pivot; the last round returns the blocks. *)

  type task = {
    k : int;
    lo : int;  (** this PE's resident block, rows [lo..hi] *)
    hi : int;
    pivot : float array;  (** row [k] at entry of step [k] *)
    last : bool;
  }

  type result = {
    next_pivot : float array option;  (** row [k+1] if this block owns it *)
    final : float array array option;  (** the block, on the last round *)
  }

  type state = { n : int; k : int; pivot : float array; blocks : (int * int) array }

  (* (size, lo) identifies a resident block within a worker process;
     the stored [k] asserts rounds arrive in pivot order. *)
  let resident : (int * int, int ref * float array array) Hashtbl.t =
    Hashtbl.create 8

  let graph_rows size lo hi =
    let g = Apsp.graph size in
    Array.init (max 0 (hi - lo + 1)) (fun i -> Array.copy g.(lo + i))

  (* Identical arithmetic to the shared-heap executor's [pivot_step]
     (and so to [Apsp.floyd_warshall]): min-plus update of each
     resident row against the pivot, skipping unreachable rows. *)
  let update_block d ~lo pivot k =
    let n = Array.length pivot in
    Array.iteri
      (fun r di ->
        ignore r;
        let dik = di.(k) in
        if dik < infinity then
          for j = 0 to n - 1 do
            let via = dik +. pivot.(j) in
            if via < di.(j) then di.(j) <- via
          done)
      d;
    ignore lo

  let execute ~size { k; lo; hi; pivot; last } =
    if hi < lo then { next_pivot = None; final = (if last then Some [||] else None) }
    else begin
      let key = (size, lo) in
      let expected_k, d =
        match Hashtbl.find_opt resident key with
        | Some (ek, d) when !ek = k -> (ek, d)
        | Some (ek, _) when !ek <> k && k = 0 ->
            (* fresh run reusing this process: rebuild the block *)
            let d = graph_rows size lo hi in
            Hashtbl.replace resident key (ek, d);
            ek := 0;
            (ek, d)
        | Some (ek, _) ->
            failwith
              (Printf.sprintf "apsp: pivot %d arrived at block %d, expected %d" k
                 lo !ek)
        | None ->
            if k <> 0 then
              failwith
                (Printf.sprintf
                   "apsp: block %d first saw pivot %d (blocks are pinned)" lo k);
            let ek = ref 0 and d = graph_rows size lo hi in
            Hashtbl.replace resident key (ek, d);
            (ek, d)
      in
      update_block d ~lo pivot k;
      expected_k := k + 1;
      let next_pivot =
        if (not last) && k + 1 >= lo && k + 1 <= hi then
          Some (Array.copy d.(k + 1 - lo))
        else None
      in
      let final =
        if last then begin
          Hashtbl.remove resident key;
          Some (Array.map Array.copy d)
        end
        else None
      in
      { next_pivot; final }
    end

  (* Option-heavy record; rounds ship one pivot row each — not worth
     a flat encoding. *)
  let result_blob = None

  let round_tasks st =
    Array.map
      (fun (lo, hi) ->
        { k = st.k; lo; hi; pivot = st.pivot; last = st.k = st.n - 1 })
      st.blocks

  let start ~size ~procs =
    let n = size in
    if n = 0 then
      (* degenerate: one empty pinned round, [step] finishes immediately *)
      ({ n; k = 0; pivot = [||]; blocks = [||] }, [||], true)
    else begin
      let blocks = Array.init procs (block ~size:n ~chunks:procs) in
      let pivot = Array.copy (Apsp.graph n).(0) in
      let st = { n; k = 0; pivot; blocks } in
      (st, round_tasks st, true)
    end

  let step st results =
    if st.n = 0 then `Done (float_bits (Apsp.checksum [||]))
    else if st.k = st.n - 1 then begin
      let d = Array.make st.n [||] in
      let row = ref 0 in
      Array.iter
        (fun r ->
          match r.final with
          | Some rows ->
              Array.iter
                (fun fr ->
                  d.(!row) <- fr;
                  incr row)
                rows
          | None -> failwith "apsp: last round returned no block")
        results;
      `Done (float_bits (Apsp.checksum d))
    end
    else begin
      let next =
        Array.fold_left
          (fun acc r ->
            match (acc, r.next_pivot) with
            | None, Some p -> Some p
            | acc, None -> acc
            | Some _, Some _ -> failwith "apsp: two PEs claim the next pivot")
          None results
      in
      match next with
      | None -> failwith "apsp: no PE returned the next pivot"
      | Some pivot ->
          let st = { st with k = st.k + 1; pivot } in
          `Round (st, round_tasks st, true)
    end

  let reference ~size =
    float_bits (Apsp.checksum (Apsp.floyd_warshall (Apsp.graph size)))
end

(* ---------------- registry ---------------- *)

let all : (module S) list =
  [
    (module Sumeuler);
    (module Parfib);
    (module Matmul);
    (module Mandelbrot_w);
    (module Apsp_w);
  ]

let names = List.map (fun (module W : S) -> W.name) all
let find name = List.find_opt (fun (module W : S) -> W.name = name) all
