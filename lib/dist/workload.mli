(** Workloads decomposed for distribution: pure-data tasks, barrier
    rounds, bit-identical checksums against the sequential references
    (and against [Repro_exec.Workload]'s shared-heap results). *)

module type S = sig
  val name : string
  val size_doc : string
  val default_size : int
  val quick_size : int

  type task
  (** Pure data shipped to a PE ([Marshal] without closures). *)

  type result
  (** Fully-evaluated value shipped back. *)

  type state
  (** Coordinator state threaded between rounds. *)

  (** First round: [(state, tasks, pinned)].  When [pinned], task [i]
      must run on PE [i mod procs] (PE-resident state across rounds,
      as in Eden's ring skeleton); otherwise tasks may go anywhere. *)
  val start : size:int -> procs:int -> state * task array * bool

  (** Barrier: all of a round's results, in task order.  Either the
      final checksum or the next round. *)
  val step :
    state ->
    result array ->
    [ `Done of int | `Round of state * task array * bool ]

  (** Runs on the PE; may keep process-local caches, must not depend
      on coordinator state. *)
  val execute : size:int -> task -> result

  (** Bulk-result codec for the zero-[Marshal] data plane: [Some
      (enc, dec)] when results are float-dominated and worth shipping
      as raw frames (matmul row blocks, mandelbrot row totals).
      [dec (enc r)] must reproduce [r] bit-for-bit — integers encoded
      as floats must stay below 2{^53}.  [None] keeps the result on
      the marshalled control plane. *)
  val result_blob : ((result -> float array) * (float array -> result)) option

  (** Sequential reference checksum. *)
  val reference : size:int -> int
end

module Sumeuler : S
module Parfib : S
module Matmul : S
module Mandelbrot_w : S
module Apsp_w : S

val all : (module S) list
val names : string list
val find : string -> (module S) option

(** Bit pattern of a float as an [int] (distinguishes checksums that
    printing would round together). *)
val float_bits : float -> int
