(** Futures with eager-black-hole semantics on real domains.

    A future is an [Atomic] state cell.  Whoever wants its value —
    the worker that pops the spark, a thief that stole it, or the
    parent thread forcing it — first CASes [Todo _ -> Running].  The
    CAS is the hardware analogue of the paper's {e eager black-holing}
    (Sec. IV-A.3): claiming is atomic with starting evaluation, so a
    stolen spark is never evaluated twice and no duplicate work can
    exist even transiently (the simulator's lazy-black-holing window
    does not exist here at all).

    A forcer that finds the cell [Running] does not block the OS
    thread: it {e helps} — runs other pending sparks from the pool —
    and falls back to [Domain.cpu_relax]/micro-sleep backoff when the
    pool is dry, which keeps oversubscribed runs (more domains than
    hardware threads) live. *)

type 'a state =
  | Todo of (unit -> 'a)
  | Running
  | Done of 'a
  | Failed of exn

type 'a t = 'a state Atomic.t

let make f = Atomic.make (Todo f)
let of_value v = Atomic.make (Done v)

let is_done fut =
  match Atomic.get fut with Done _ | Failed _ -> true | _ -> false

(* Claim and evaluate if still unclaimed; no-op otherwise. *)
let try_run fut =
  match Atomic.get fut with
  | Todo f as prev ->
      if Atomic.compare_and_set fut prev Running then begin
        match f () with
        | v -> Atomic.set fut (Done v)
        | exception e -> Atomic.set fut (Failed e)
      end
  | Running | Done _ | Failed _ -> ()

(** Create a future and, when running inside a {!Pool}, push a runner
    for it onto the current worker's deque.  Outside a pool the future
    is simply deferred until forced (sequential semantics — exactly
    GpH's "sparks may fizzle"). *)
let spark f =
  let fut = make f in
  (match Pool.current () with
  | Some ctx -> Pool.push ctx (fun () -> try_run fut)
  | None -> ());
  fut

let rec wait_loop fut ctx idle =
  match Atomic.get fut with
  | Done v -> v
  | Failed e -> raise e
  | Todo _ ->
      try_run fut;
      wait_loop fut ctx idle
  | Running ->
      let idle =
        match ctx with
        | Some c when Pool.help c -> 0
        | _ ->
            Domain.cpu_relax ();
            if idle > 512 then begin
              (* Nothing to help with and the producer still runs:
                 yield the OS timeslice so it can (matters when domains
                 outnumber hardware threads). *)
              Unix.sleepf 1e-4;
              idle
            end
            else idle + 1
      in
      wait_loop fut ctx idle

let force fut =
  match Atomic.get fut with
  | Done v -> v
  | Failed e -> raise e
  | _ -> wait_loop fut (Pool.current ()) 0

let peek fut =
  match Atomic.get fut with Done v -> Some v | _ -> None
