(** Futures with eager-black-hole semantics on real domains.

    A future is an atomic state cell.  Whoever wants its value —
    the worker that pops the spark, a thief that stole it, or the
    parent thread forcing it — first CASes [Todo _ -> Running].  The
    CAS is the hardware analogue of the paper's {e eager black-holing}
    (Sec. IV-A.3): claiming is atomic with starting evaluation, so a
    stolen spark is never evaluated twice and no duplicate work can
    exist even transiently (the simulator's lazy-black-holing window
    does not exist here at all).

    A forcer that finds the cell [Running] does not block the OS
    thread: it {e helps} — runs other pending sparks from the pool —
    and falls back to [Domain.cpu_relax]/micro-sleep backoff when the
    pool is dry, which keeps oversubscribed runs (more domains than
    hardware threads) live.

    The module is a functor over the {!Repro_shim.Tatomic.S} atomics
    shim and a {!POOL_BACKEND} (the executor the futures advertise
    their sparks to).  The toplevel instance pairs the zero-cost [Real]
    shim with {!Pool}; [lib/check] pairs the tracing shim with a
    deterministic model pool and model-checks the claim protocol —
    including the lazy-black-holing mutant this CAS exists to rule
    out. *)

(** What the future layer needs from an executor.  [idle_wait done_ n]
    is called when a forcer found nothing to help with; it must pause
    until [done_ ()] may have changed (real pools spin/sleep; the
    model checker blocks the simulated thread on [done_]). *)
module type POOL_BACKEND = sig
  type ctx

  val current : unit -> ctx option
  val push : ctx -> (unit -> unit) -> unit
  val help : ctx -> bool
  val note_run : ctx -> unit
  val note_fizzle : ctx -> unit

  (** Trace hooks (no-ops on untraced backends): a successful claim's
      evaluation span, and a forcer demanding an unfinished future. *)
  val note_eval_begin : ctx -> unit

  val note_eval_end : ctx -> unit
  val note_force : ctx -> unit
  val idle_wait : (unit -> bool) -> int -> int
end

module type S = sig
  type 'a t

  val make : (unit -> 'a) -> 'a t
  val of_value : 'a -> 'a t
  val spark : (unit -> 'a) -> 'a t
  val force : 'a t -> 'a
  val is_done : 'a t -> bool
  val peek : 'a t -> 'a option
end

module Make (A : Repro_shim.Tatomic.S) (P : POOL_BACKEND) = struct
  type 'a state =
    | Todo of (unit -> 'a)
    | Running
    | Done of 'a
    | Failed of exn

  type 'a t = 'a state A.t

  let make f = A.make (Todo f)
  let of_value v = A.make (Done v)

  let is_done fut =
    match A.get fut with Done _ | Failed _ -> true | _ -> false

  (* Claim and evaluate if still unclaimed; [true] iff this call
     performed the evaluation.  The eval span (claim-to-completion)
     is the tracer's spark-granularity instrument; outside a pool the
     hooks are skipped entirely. *)
  let try_claim fut =
    match A.get fut with
    | Todo f as prev ->
        if A.compare_and_set fut prev Running then begin
          let ctx = P.current () in
          (match ctx with Some c -> P.note_eval_begin c | None -> ());
          (match f () with
          | v -> A.set fut (Done v)
          | exception e -> A.set fut (Failed e));
          (match ctx with Some c -> P.note_eval_end c | None -> ());
          true
        end
        else false
    | Running | Done _ | Failed _ -> false

  let try_run fut = ignore (try_claim fut)

  (** Create a future and, when running inside a pool, push a runner
      for it onto the current worker's deque.  Outside a pool the future
      is simply deferred until forced (sequential semantics — exactly
      GpH's "sparks may fizzle").  The runner reports run/fizzle to the
      pool's spark ledger. *)
  let spark f =
    let fut = make f in
    (match P.current () with
    | Some ctx ->
        P.push ctx (fun () ->
            let did_run = try_claim fut in
            match P.current () with
            | Some c -> if did_run then P.note_run c else P.note_fizzle c
            | None -> ())
    | None -> ());
    fut

  let rec wait_loop fut ctx idle =
    match A.get fut with
    | Done v -> v
    | Failed e -> raise e
    | Todo _ ->
        try_run fut;
        wait_loop fut ctx idle
    | Running ->
        let idle =
          match ctx with
          | Some c when P.help c -> 0
          | _ -> P.idle_wait (fun () -> is_done fut) idle
        in
        wait_loop fut ctx idle

  let force fut =
    match A.get fut with
    | Done v -> v
    | Failed e -> raise e
    | _ ->
        let ctx = P.current () in
        (match ctx with Some c -> P.note_force c | None -> ());
        wait_loop fut ctx 0

  let peek fut =
    match A.get fut with Done v -> Some v | _ -> None
end

include
  Make
    (Repro_shim.Tatomic.Real)
    (struct
      type ctx = Pool.ctx

      let current = Pool.current
      let push = Pool.push
      let help = Pool.help
      let note_run = Pool.note_run
      let note_fizzle = Pool.note_fizzle
      let note_eval_begin = Pool.note_eval_begin
      let note_eval_end = Pool.note_eval_end
      let note_force = Pool.note_force

      let idle_wait _is_done idle =
        (* Inside a fiber, yield the fiber instead of the domain: the
           forcer's segment goes to the back of its worker's FIFO lane
           and every other fiber multiplexed there keeps running. *)
        if !Pool.fiber_yield () then idle
        else begin
          Domain.cpu_relax ();
          if idle > 512 then begin
            (* Nothing to help with and the producer still runs: yield
               the OS timeslice so it can (matters when domains
               outnumber hardware threads).  blocking-in-worker
               (baselined): this is the designed bounded backoff —
               100µs, only after 512 dry spins, never while work is
               available. *)
            Unix.sleepf 1e-4;
            idle
          end
          else idle + 1
        end
    end)
