(** Futures with eager-black-hole claiming (an atomic
    [Todo -> Running] CAS, the hardware analogue of paper
    Sec. IV-A.3's eager black-holing): a spark is evaluated at most
    once no matter how many workers pop, steal or force it.  Forcers
    waiting on a [Running] future help run other sparks instead of
    blocking.

    Functorised over the {!Repro_shim.Tatomic.S} atomics shim and a
    {!POOL_BACKEND}; the toplevel instance pairs the zero-cost [Real]
    shim with {!Pool}.  [lib/check] instantiates {!Make} with a tracing
    shim and a deterministic model pool to model-check the claim
    protocol exhaustively. *)

(** What the future layer needs from an executor.  [idle_wait done_ n]
    pauses a forcer that found nothing to help with until [done_ ()]
    may have changed, returning the new idle count. *)
module type POOL_BACKEND = sig
  type ctx

  val current : unit -> ctx option
  val push : ctx -> (unit -> unit) -> unit
  val help : ctx -> bool
  val note_run : ctx -> unit
  val note_fizzle : ctx -> unit

  (** Trace hooks (no-ops on untraced backends): a successful claim's
      evaluation span, and a forcer demanding an unfinished future. *)
  val note_eval_begin : ctx -> unit

  val note_eval_end : ctx -> unit
  val note_force : ctx -> unit
  val idle_wait : (unit -> bool) -> int -> int
end

module type S = sig
  type 'a t

  (** A deferred computation; not yet visible to any pool. *)
  val make : (unit -> 'a) -> 'a t

  val of_value : 'a -> 'a t

  (** Create a future and advertise it on the current worker's deque
      (when inside the pool); outside a pool it simply defers until
      forced. *)
  val spark : (unit -> 'a) -> 'a t

  (** Demand the value: evaluate it here if unclaimed, help the pool
      while someone else computes it, re-raise if it failed. *)
  val force : 'a t -> 'a

  val is_done : 'a t -> bool
  val peek : 'a t -> 'a option
end

module Make (A : Repro_shim.Tatomic.S) (P : POOL_BACKEND) : S

include S
