(** Futures with eager-black-hole claiming (an atomic
    [Todo -> Running] CAS, the hardware analogue of paper
    Sec. IV-A.3's eager black-holing): a spark is evaluated at most
    once no matter how many workers pop, steal or force it.  Forcers
    waiting on a [Running] future help run other sparks instead of
    blocking. *)

type 'a t

(** A deferred computation; not yet visible to any pool. *)
val make : (unit -> 'a) -> 'a t

val of_value : 'a -> 'a t

(** Create a future and advertise it on the current worker's deque
    (when inside {!Pool.run}); outside a pool it simply defers until
    forced. *)
val spark : (unit -> 'a) -> 'a t

(** Demand the value: evaluate it here if unclaimed, help the pool
    while someone else computes it, re-raise if it failed. *)
val force : 'a t -> 'a

val is_done : 'a t -> bool
val peek : 'a t -> 'a option
