(** Wall-clock measurement harness for the real executor.

    Where [lib/experiments] reports {e virtual} nanoseconds from the
    simulator, this reports {e measured} nanoseconds from actual runs
    on 1..N domains, in a shape ([measurement] rows, speedup curves,
    JSON dumps) that can be placed directly next to the simulator's
    Fig. 1 / Fig. 3 / Fig. 5 predictions. *)

module Stats = Repro_util.Stats
module Tablefmt = Repro_util.Tablefmt
module Json = Repro_util.Json_out

type measurement = {
  workload : string;
  size : int;
  cores : int;
  repeats : int;
  mean_ns : float;
  stddev_ns : float;
  min_ns : float;
  speedup : float;  (** vs the 1-core entry of the same sweep; 1.0 alone *)
  result : int;  (** checksum; equal across core counts by construction *)
  minor_collections : int;
      (** GC counter deltas across the timed repeats, from
          [Gc.quick_stat] on the calling domain.  Under OCaml 5 each
          domain has its own minor heap, so these undercount work done
          on worker domains; they still expose allocation-rate
          differences between runtime versions (the paper's §4.2
          big-allocation-area observation). *)
  major_collections : int;
  promoted_words : float;
  minor_words : float;
}

(* CLOCK_MONOTONIC via bechamel's noalloc stub — immune to NTP steps,
   same timebase as the {!Tracer}. *)
let now_ns () = Int64.to_float (Monotonic_clock.now ())

let git_commit () =
  (* Best-effort: a bench run outside a work tree (or without git)
     just records "unknown". *)
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> "unknown"
  | ic -> (
      let line = try input_line ic with End_of_file -> "" in
      match (Unix.close_process_in ic, line) with
      | Unix.WEXITED 0, l when l <> "" -> l
      | _ -> "unknown"
      | exception _ -> "unknown")

(** Environment header shared by every benchmark document
    ([BENCH_exec.json], [BENCH_repro.json], minor-heap sweeps): enough
    to reproduce the run — hardware width, the runtime knobs in effect
    and the exact code revision. *)
let env_header ?(backend = "domains") ?transport () : (string * Json.t) list =
  [
    ("hardware_cores", Json.Int (Domain.recommended_domain_count ()));
    ("backend", Json.Str backend);
    ( "transport",
      match transport with Some t -> Json.Str t | None -> Json.Null );
    ("ocaml", Json.Str Sys.ocaml_version);
    ( "ocamlrunparam",
      Json.Str (Option.value ~default:"" (Sys.getenv_opt "OCAMLRUNPARAM")) );
    ("git_commit", Json.Str (git_commit ()));
  ]

(** Run [W] at [cores] domains, [repeats] timed runs (after one
    untimed warm-up), on a fresh pool.  Raises [Failure] if two
    repeats disagree on the result checksum. *)
let measure ?(repeats = 3) ~cores ~size (module W : Workload.S) =
  let repeats = max 1 repeats in
  (* Per-repeat run durations also land in the default metrics
     registry, so live snapshots ([--metrics], [top]) can report
     latency quantiles without waiting for the measurement row. *)
  let duration_hist =
    Repro_metrics.Metrics.histogram
      ~help:"Timed workload repeat duration"
      ~labels:[ ("workload", W.name); ("cores", string_of_int cores) ]
      "repro_run_duration_ns"
  in
  Pool.with_pool ~cores (fun () ->
      ignore (W.run ~size ());
      (* warm-up *)
      let stats = Stats.create () in
      let result = ref 0 in
      let gc0 = Gc.quick_stat () in
      for i = 1 to repeats do
        let t0 = now_ns () in
        let r = W.run ~size () in
        let dt = now_ns () -. t0 in
        Repro_metrics.Metrics.observe duration_hist (int_of_float dt);
        Stats.add stats dt;
        if i = 1 then result := r
        else if r <> !result then
          failwith
            (Printf.sprintf "%s: nondeterministic result at %d cores: %d <> %d"
               W.name cores r !result)
      done;
      let gc1 = Gc.quick_stat () in
      {
        workload = W.name;
        size;
        cores;
        repeats;
        mean_ns = Stats.mean stats;
        stddev_ns = Stats.stddev stats;
        min_ns = Stats.min_value stats;
        speedup = 1.0;
        result = !result;
        minor_collections = gc1.Gc.minor_collections - gc0.Gc.minor_collections;
        major_collections = gc1.Gc.major_collections - gc0.Gc.major_collections;
        promoted_words = gc1.Gc.promoted_words -. gc0.Gc.promoted_words;
        minor_words = gc1.Gc.minor_words -. gc0.Gc.minor_words;
      })

(** Measure at every core count in [cores_list]; speedups are relative
    to the first entry (conventionally 1). *)
let sweep ?repeats ~cores_list ~size (module W : Workload.S) =
  let ms = List.map (fun c -> measure ?repeats ~cores:c ~size (module W : Workload.S)) cores_list in
  match ms with
  | [] -> []
  | base :: _ ->
      List.map (fun m -> { m with speedup = base.mean_ns /. m.mean_ns }) ms

(** 1, 2, 4, ..., up to and always including [n]. *)
let core_counts_up_to n =
  let n = max 1 n in
  let rec go c acc = if c >= n then List.rev (n :: acc) else go (2 * c) (c :: acc) in
  go 1 []

let to_table (ms : measurement list) =
  let t =
    Tablefmt.create
      ~aligns:
        [
          Tablefmt.Left;
          Tablefmt.Right;
          Tablefmt.Right;
          Tablefmt.Right;
          Tablefmt.Right;
          Tablefmt.Right;
          Tablefmt.Right;
          Tablefmt.Right;
        ]
      [
        "workload"; "cores"; "mean"; "stddev"; "speedup"; "efficiency";
        "minor GCs"; "major GCs";
      ]
  in
  List.iter
    (fun m ->
      Tablefmt.add_row t
        [
          m.workload;
          string_of_int m.cores;
          Printf.sprintf "%.2f ms" (m.mean_ns /. 1e6);
          Printf.sprintf "%.2f ms" (m.stddev_ns /. 1e6);
          Printf.sprintf "%.2fx" m.speedup;
          Printf.sprintf "%.0f%%" (100.0 *. m.speedup /. float_of_int m.cores);
          string_of_int m.minor_collections;
          string_of_int m.major_collections;
        ])
    ms;
  t

let json_of_measurement (m : measurement) : Json.t =
  Json.Obj
    [
      ("workload", Json.Str m.workload);
      ("size", Json.Int m.size);
      ("cores", Json.Int m.cores);
      ("repeats", Json.Int m.repeats);
      ("mean_ns", Json.Float m.mean_ns);
      ("stddev_ns", Json.Float m.stddev_ns);
      ("min_ns", Json.Float m.min_ns);
      ("speedup", Json.Float m.speedup);
      ("result", Json.Int m.result);
      ("gc_minor_collections", Json.Int m.minor_collections);
      ("gc_major_collections", Json.Int m.major_collections);
      ("gc_promoted_words", Json.Float m.promoted_words);
      ("gc_minor_words", Json.Float m.minor_words);
    ]

(** The [BENCH_exec.json] document: environment header + one row per
    (workload, core count). *)
let json_document (ms : measurement list) : Json.t =
  Json.Obj
    (("schema", Json.Str "repro/bench-exec/v1")
     :: env_header ()
    @ [ ("measurements", Json.List (List.map json_of_measurement ms)) ])
