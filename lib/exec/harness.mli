(** Wall-clock measurement of executor workloads: per-core-count
    timings, speedup sweeps, ASCII tables and the [BENCH_exec.json]
    dump — the measured counterpart of the simulator's figure
    harnesses. *)

type measurement = {
  workload : string;
  size : int;
  cores : int;
  repeats : int;
  mean_ns : float;
  stddev_ns : float;
  min_ns : float;
  speedup : float;  (** vs the 1-core entry of the same sweep; 1.0 alone *)
  result : int;
  minor_collections : int;
      (** GC counter deltas across the timed repeats ([Gc.quick_stat]
          on the calling domain — worker-domain minor heaps are not
          included, so treat these as allocation-rate indicators, not
          absolute totals). *)
  major_collections : int;
  promoted_words : float;
  minor_words : float;
}

(** CLOCK_MONOTONIC in nanoseconds (same timebase as {!Tracer}). *)
val now_ns : unit -> float

(** Environment header for benchmark documents: hardware core count,
    execution backend ([backend] defaults to ["domains"]; the
    multi-process executor passes ["processes"]), transport name when
    one applies (e.g. ["socketpair"]; [null] otherwise), OCaml
    version, effective [OCAMLRUNPARAM] and git commit (or ["unknown"]
    outside a work tree). *)
val env_header :
  ?backend:string ->
  ?transport:string ->
  unit ->
  (string * Repro_util.Json_out.t) list

(** Run the workload on a fresh [cores]-domain pool: one warm-up run
    plus [repeats] (default 3) timed runs.
    @raise Failure if two repeats disagree on the result checksum. *)
val measure :
  ?repeats:int -> cores:int -> size:int -> (module Workload.S) -> measurement

(** Measure at each core count; speedups relative to the first
    entry. *)
val sweep :
  ?repeats:int ->
  cores_list:int list ->
  size:int ->
  (module Workload.S) ->
  measurement list

(** [1; 2; 4; ...; n] (n always included). *)
val core_counts_up_to : int -> int list

val to_table : measurement list -> Repro_util.Tablefmt.t
val json_of_measurement : measurement -> Repro_util.Json_out.t

(** Full [BENCH_exec.json] document (schema + environment + rows). *)
val json_document : measurement list -> Repro_util.Json_out.t
