(** Real-hardware executor substrate: a pool of [Domain]s, one per
    capability, each owning a Chase–Lev {!Repro_deque.Ws_deque} spark
    pool.

    This is the hardware counterpart of the simulated runtime in
    [lib/parrts]: where the simulator *models* GHC capabilities on a
    virtual clock, this pool *is* the paper's optimised shared-heap
    configuration on OCaml 5 domains (domains ≈ capabilities; see
    "Retrofitting Parallelism onto OCaml", PAPERS.md):

    - each worker runs a dedicated spark-thread-style loop (the paper's
      Sec. IV-C optimisation: drain sparks from a queue instead of
      forking a thread per spark);
    - work distribution is lock-free work stealing (Sec. IV-A.2): the
      owner pushes/pops at its deque's bottom, idle workers steal from
      a random victim's top with a single CAS;
    - idle workers back off (bounded steal sweeps, [Domain.cpu_relax])
      and finally park on a condition variable, so an idle pool burns
      no CPU; any push wakes them.

    Tasks are [unit -> unit] closures.  The layer above ({!Future},
    {!Strategies}) puts only idempotent "run this future if still
    unclaimed" closures in the deques, which is what makes stolen
    sparks safe to run twice — the CAS on the future's state cell (an
    eager black-hole) guarantees at most one evaluation.

    The whole module is a functor over the {!Repro_shim.Tatomic.S}
    atomics shim (default instance: the zero-cost [Real] alias), so
    that [lib/check] can trace and model-check the same protocols the
    production pool runs. *)

module Rng = Repro_util.Rng

(** Aggregated per-pool scheduler counters (paper-style spark
    accounting plus steal/park observability).  Exact once the pool is
    quiescent — in particular after {!shutdown}; snapshots taken while
    workers run may be mid-update.  The invariant the executor
    maintains (asserted by the test suite) is
    [sparks_created = sparks_run + sparks_fizzled] at shutdown. *)
type events = {
  sparks_created : int;  (** runner tasks pushed onto a deque *)
  sparks_run : int;  (** runners that performed their future's evaluation *)
  sparks_fizzled : int;
      (** runners that found their future already claimed, plus runners
          discarded undone when a deque was drained at shutdown *)
  steal_attempts : int;  (** individual [Ws_deque.steal] calls *)
  steals : int;  (** successful steals *)
  parks : int;  (** times a worker gave up stealing and parked *)
  wakeups : int;  (** broadcasts issued because a sleeper was present *)
}

let pp_events ppf (e : events) =
  Format.fprintf ppf
    "sparks: created %d, run %d, fizzled %d (run+fizzled=created: %b)@\n\
     steals: %d of %d attempts@\n\
     parking: %d parks, %d wakeups"
    e.sparks_created e.sparks_run e.sparks_fizzled
    (e.sparks_run + e.sparks_fizzled = e.sparks_created)
    e.steals e.steal_attempts e.parks e.wakeups

module type S = sig
  type t
  type task = unit -> unit
  type ctx

  val create : ?cores:int -> ?tracer:Tracer.t -> unit -> t
  val cores : t -> int
  val run : t -> (unit -> 'a) -> 'a
  val shutdown : t -> unit
  val with_pool : ?cores:int -> ?tracer:Tracer.t -> (unit -> 'a) -> 'a
  val current : unit -> ctx option
  val ctx_pool : ctx -> t
  val ctx_id : ctx -> int
  val push : ctx -> task -> unit
  val push_plain : ctx -> task -> unit
  val inject : t -> task -> unit
  val inject_on : t -> int -> task -> unit
  val help : ctx -> bool
  val note_run : ctx -> unit
  val note_fizzle : ctx -> unit
  val note_eval_begin : ctx -> unit
  val note_eval_end : ctx -> unit
  val note_force : ctx -> unit
  val events : t -> events
  val worker_events : t -> events array
end

module Make (A : Repro_shim.Tatomic.S) = struct
  module Ws_deque = Repro_deque.Ws_deque.Make (A)
  module M = Repro_metrics.Metrics

  type task = unit -> unit

  (* Per-worker FIFO inbox: a lock-free multi-producer queue (the
     classic two-list functional queue in one CAS cell).  It is the
     pool's second lane, beside the Chase–Lev deque:

     - external callers ({!inject}) have no deque of their own;
     - the fiber layer's yields and pinned resumes must go to the BACK
       of a specific worker's line — re-pushing a yield onto the
       owner's LIFO deque would pop it straight back and starve every
       task below it (the classic yield livelock);
     - inboxes are not stealable, which is what makes {!inject_on}
       pinning actually stick.

     Pops are owner-only in the steady state, so the CAS loops are
     uncontended except against producers. *)
  module Fq = struct
    type 'a t = ('a list * 'a list) A.t

    let create () = A.make ([], [])

    let rec push q x =
      let (front, back) as cur = A.get q in
      if not (A.compare_and_set q cur (front, x :: back)) then push q x

    let rec pop q =
      match A.get q with
      | [], [] -> None
      | (x :: front, back) as cur ->
          if A.compare_and_set q cur (front, back) then Some x else pop q
      | ([], back) as cur -> (
          match List.rev back with
          | x :: front ->
              if A.compare_and_set q cur (front, []) then Some x else pop q
          | [] -> assert false)

    let is_empty q = match A.get q with [], [] -> true | _ -> false

    let size q =
      let front, back = A.get q in
      List.length front + List.length back
  end

  (* Per-worker counters: each cell is written by exactly one domain in
     the steady state (the owner for pushes/steals/parks, the running
     worker for run/fizzle notes), so the atomic increments are
     uncontended; [events] sums them.  A metrics collector registered
     at {!create} exposes them (plus live queue depth) per worker in
     registry snapshots, so they cost nothing extra on the hot path. *)
  type counters = {
    created : int A.t;
    run : int A.t;
    fizzled : int A.t;
    steal_attempts : int A.t;
    steals : int A.t;
    parks : int A.t;
    wakeups : int A.t;
    forces : int A.t;  (** force demands seen by this worker *)
    busy_ns : int A.t;  (** wall time spent inside tasks (metrics-gated) *)
  }

  let counters_create () =
    {
      created = A.make 0;
      run = A.make 0;
      fizzled = A.make 0;
      steal_attempts = A.make 0;
      steals = A.make 0;
      parks = A.make 0;
      wakeups = A.make 0;
      forces = A.make 0;
      busy_ns = A.make 0;
    }

  type worker = {
    id : int;
    deque : task Ws_deque.t;
    inbox : task Fq.t;  (** FIFO lane: injected tasks, fiber yields/pins *)
    rng : Rng.t;  (** victim selection; deterministically seeded per worker *)
    counters : counters;
    tbuf : Tracer.buffer;
        (** this worker's trace ring; {!Tracer.null_buffer} when the
            pool is untraced, so every record call is one load + one
            branch *)
  }

  type t = {
    workers : worker array;
    mutable mtoken : M.collector option;  (* default-registry collector *)
    mutable domains : unit Domain.t list;  (* helper domains, workers 1.. *)
    stop : bool A.t;
    next_inject : int A.t;  (* round-robin cursor for {!inject} *)
    sleepers : int A.t;
    wake_gen : int A.t;
        (* Generation counter bumped (under no lock) before every
           broadcast.  A parking worker snapshots it before its final
           deque re-check; the wait predicate re-reads it, so a wakeup
           issued between the re-check and [Condition.wait] can never be
           lost even if the broadcast itself lands in that window. *)
    lock : Mutex.t;
    wake : Condition.t;
  }

  type ctx = t * worker

  (* The current domain's (pool, worker) binding.  Set for helper domains
     at spawn, and for the caller's domain for the duration of [run]. *)
  let context_key : ctx option Domain.DLS.key =
    Domain.DLS.new_key (fun () -> None)

  let current () = Domain.DLS.get context_key
  let cores t = Array.length t.workers
  let ctx_pool ((t, _) : ctx) = t
  let ctx_id ((_, w) : ctx) = w.id

  let note_run ((_, w) : ctx) =
    A.incr w.counters.run;
    Tracer.record w.tbuf Tracer.Spark_run ~arg:0

  let note_fizzle ((_, w) : ctx) =
    A.incr w.counters.fizzled;
    Tracer.record w.tbuf Tracer.Spark_fizzle ~arg:0

  (* Trace hooks for the {!Future} layer: claim-to-completion spans
     (the spark-granularity instrument) and force demands. *)
  let note_eval_begin ((_, w) : ctx) =
    Tracer.record w.tbuf Tracer.Eval_begin ~arg:0

  let note_eval_end ((_, w) : ctx) =
    Tracer.record w.tbuf Tracer.Eval_end ~arg:0

  let note_force ((_, w) : ctx) =
    A.incr w.counters.forces;
    Tracer.record w.tbuf Tracer.Force ~arg:0

  let events_of_counters c : events =
    {
      sparks_created = A.get c.created;
      sparks_run = A.get c.run;
      sparks_fizzled = A.get c.fizzled;
      steal_attempts = A.get c.steal_attempts;
      steals = A.get c.steals;
      parks = A.get c.parks;
      wakeups = A.get c.wakeups;
    }

  let worker_events t =
    Array.map (fun w -> events_of_counters w.counters) t.workers

  let events t : events =
    let sum f =
      Array.fold_left (fun acc w -> acc + A.get (f w.counters)) 0 t.workers
    in
    {
      sparks_created = sum (fun c -> c.created);
      sparks_run = sum (fun c -> c.run);
      sparks_fizzled = sum (fun c -> c.fizzled);
      steal_attempts = sum (fun c -> c.steal_attempts);
      steals = sum (fun c -> c.steals);
      parks = sum (fun c -> c.parks);
      wakeups = sum (fun c -> c.wakeups);
    }

  (* Collector callback: per-worker counter samples for the default
     metrics registry.  Reads are racy-but-atomic snapshots, same
     guarantee as {!events}. *)
  let metrics_samples t =
    Array.fold_left
      (fun acc w ->
        let labels = [ ("worker", string_of_int w.id) ] in
        let c name help cell =
          M.c_sample ~help ~labels name (float_of_int (A.get cell))
        in
        c "repro_pool_sparks_created_total" "Runner tasks pushed onto a deque"
          w.counters.created
        :: c "repro_pool_sparks_run_total"
             "Runners that performed their future's evaluation" w.counters.run
        :: c "repro_pool_sparks_fizzled_total"
             "Runners that found their future already claimed" w.counters.fizzled
        :: c "repro_steal_attempts_total" "Individual Ws_deque.steal calls"
             w.counters.steal_attempts
        :: c "repro_steals_total" "Successful steals" w.counters.steals
        :: c "repro_pool_parks_total" "Times this worker parked" w.counters.parks
        :: c "repro_pool_wakeups_total" "Broadcasts issued for a sleeper"
             w.counters.wakeups
        :: c "repro_future_forces_total" "Force demands seen by this worker"
             w.counters.forces
        :: c "repro_pool_busy_ns_total" "Wall time spent inside tasks"
             w.counters.busy_ns
        :: M.g_sample ~labels ~help:"Tasks currently queued in this worker's deque"
             "repro_pool_queue_depth"
             (float_of_int (Ws_deque.size w.deque))
        :: M.g_sample ~labels
             ~help:"Tasks queued in this worker's FIFO inbox lane"
             "repro_pool_inbox_depth"
             (float_of_int (Fq.size w.inbox))
        :: acc)
      [] t.workers

  let has_work t =
    let n = Array.length t.workers in
    let rec go i =
      i < n
      && ((not (Ws_deque.is_empty t.workers.(i).deque))
         || (not (Fq.is_empty t.workers.(i).inbox))
         || go (i + 1))
    in
    go 0

  (* Wake parked workers after making work available (or on shutdown).
     Reading [sleepers] after the push is safe against lost wakeups: the
     parking worker increments [sleepers] *before* re-checking the
     deques, so under OCaml's sequentially-consistent atomics either the
     pusher sees the sleeper (and bumps [wake_gen] + broadcasts), or the
     sleeper sees the pushed task on its re-check.  The [wake_gen] bump
     additionally covers the window between the sleeper's re-check and
     its [Condition.wait]: the wait predicate re-reads the generation,
     so a broadcast delivered before the sleeper reaches [wait] still
     terminates the wait.  [lib/check] model-checks this handshake
     exhaustively (and shows the check-then-park variant without the
     generation counter deadlocks). *)
  let signal_work caller_counters t =
    if A.get t.sleepers > 0 then begin
      A.incr t.wake_gen;
      A.incr caller_counters.wakeups;
      Mutex.lock t.lock;
      Condition.broadcast t.wake;
      Mutex.unlock t.lock
    end

  (* Owner-side push onto this worker's own deque. *)
  let push ((t, w) : ctx) task =
    Ws_deque.push w.deque task;
    A.incr w.counters.created;
    Tracer.record w.tbuf Tracer.Spark_create ~arg:0;
    signal_work w.counters t

  (* Owner-side push WITHOUT spark accounting: the task is not a spark
     runner (the fiber layer's starts and resumes use this), so it must
     stay out of the created/run/fizzled ledger.  Such tasks should be
     drained (run) before {!shutdown} — the fiber scheduler guarantees
     it by driving until every fiber is done. *)
  let push_plain ((t, w) : ctx) task =
    Ws_deque.push w.deque task;
    signal_work w.counters t

  (* Injection into a specific worker's FIFO inbox lane: callable from
     any domain (no ctx needed) — external wakeups, pinned fiber
     segments, yields.  Inboxes are never stolen from, so the target
     worker really is where the task runs. *)
  let inject_on t i task =
    let n = Array.length t.workers in
    if i < 0 || i >= n then invalid_arg "Pool.inject_on: worker id out of range";
    let w = t.workers.(i) in
    Fq.push w.inbox task;
    signal_work w.counters t

  (* Round-robin injection for callers with no placement opinion. *)
  let inject t task =
    let n = Array.length t.workers in
    let i = A.fetch_and_add t.next_inject 1 in
    inject_on t (((i mod n) + n) mod n) task

  (* One randomised steal sweep: start at a random victim, visit every
     other worker once. *)
  let steal_once t (w : worker) =
    let n = Array.length t.workers in
    if n <= 1 then None
    else begin
      let start = Rng.int w.rng n in
      let rec go k =
        if k >= n then None
        else
          let v = t.workers.((start + k) mod n) in
          if v.id = w.id then go (k + 1)
          else begin
            A.incr w.counters.steal_attempts;
            Tracer.record w.tbuf Tracer.Steal_attempt ~arg:v.id;
            match Ws_deque.steal v.deque with
            | Some _ as r ->
                A.incr w.counters.steals;
                Tracer.record w.tbuf Tracer.Steal_success ~arg:v.id;
                r
            | None -> go (k + 1)
          end
      in
      go 0
    end

  let find_task t (w : worker) =
    match Ws_deque.pop w.deque with
    | Some _ as r -> r
    | None -> (
        (* own FIFO lane next: yields and injected tasks run in arrival
           order once the (hotter, LIFO) deque is dry *)
        match Fq.pop w.inbox with
        | Some _ as r -> r
        | None ->
            (* a few sweeps with a pause between them before reporting
               famine *)
            let rec attempt i =
              if i >= 4 then None
              else
                match steal_once t w with
                | Some _ as r -> r
                | None ->
                    Domain.cpu_relax ();
                    attempt (i + 1)
            in
            attempt 0)

  (* Tasks from the future layer never raise (they capture exceptions in
     the result cell), but keep helper domains alive no matter what goes
     into a deque.  The task span brackets every execution — worker
     loop and helping forcers alike — so per-worker busy time is
     visible in traces. *)
  let run_task (w : worker) task =
    Tracer.record w.tbuf Tracer.Task_begin ~arg:0;
    (* Busy-time accounting pays its two clock reads per *task* (not
       per record), and only while the default registry is enabled. *)
    if M.enabled M.default then begin
      let t0 = M.now_ns () in
      (try task () with _ -> ());
      ignore (A.fetch_and_add w.counters.busy_ns (M.now_ns () - t0))
    end
    else (try task () with _ -> ());
    Tracer.record w.tbuf Tracer.Task_end ~arg:0

  (* Run one pending task if any is available.  Used both by the worker
     loop and by forcers that help while waiting on a future. *)
  let help ((t, w) : ctx) =
    match find_task t w with
    | Some task ->
        run_task w task;
        true
    | None -> false

  let park t (w : worker) =
    A.incr w.counters.parks;
    Tracer.record w.tbuf Tracer.Park ~arg:0;
    A.incr t.sleepers;
    let gen = A.get t.wake_gen in
    (* Final re-check *after* announcing ourselves as a sleeper: either
       the pusher saw [sleepers > 0] and will bump [wake_gen], or this
       check sees its task.  blocking-in-worker (baselined): parking IS
       the designed blocking point — a worker only reaches it with
       every deque empty, and any push broadcasts [wake]. *)
    if not (A.get t.stop) && not (has_work t) then begin
      Mutex.lock t.lock;
      while
        (not (A.get t.stop))
        && (not (has_work t))
        && A.get t.wake_gen = gen
      do
        Condition.wait t.wake t.lock
      done;
      Mutex.unlock t.lock
    end;
    A.decr t.sleepers;
    Tracer.record w.tbuf Tracer.Unpark ~arg:0

  let rec worker_loop t (w : worker) =
    if not (A.get t.stop) then begin
      (match find_task t w with
      | Some task -> run_task w task
      | None -> park t w);
      worker_loop t w
    end

  (* Helper-domain entry: the worker span brackets the whole loop so
     every domain owns at least one slice in exported traces. *)
  let worker_main t (w : worker) =
    Domain.DLS.set context_key (Some (t, w));
    Tracer.record w.tbuf Tracer.Worker_begin ~arg:0;
    worker_loop t w;
    Tracer.record w.tbuf Tracer.Worker_end ~arg:0

  let create ?cores:requested ?tracer () =
    let ncores =
      match requested with
      | Some c ->
          if c < 1 then invalid_arg "Pool.create: cores must be >= 1";
          c
      | None -> Domain.recommended_domain_count ()
    in
    (match tracer with
    | Some tr when Tracer.ncaps tr < ncores ->
        invalid_arg
          (Printf.sprintf
             "Pool.create: tracer has %d buffer(s) but the pool wants %d"
             (Tracer.ncaps tr) ncores)
    | _ -> ());
    let tbuf_of id =
      match tracer with
      | Some tr -> Tracer.buffer tr id
      | None -> Tracer.null_buffer
    in
    let master = Rng.create 0x9e3779b9 in
    let workers =
      Array.init ncores (fun id ->
          {
            id;
            deque = Ws_deque.create ();
            inbox = Fq.create ();
            rng = Rng.split master;
            counters = counters_create ();
            tbuf = tbuf_of id;
          })
    in
    let t =
      {
        workers;
        mtoken = None;
        domains = [];
        stop = A.make false;
        next_inject = A.make 0;
        sleepers = A.make 0;
        wake_gen = A.make 0;
        lock = Mutex.create ();
        wake = Condition.create ();
      }
    in
    t.mtoken <- Some (M.add_collector ~name:"pool" (fun () -> metrics_samples t));
    t.domains <-
      List.init (ncores - 1) (fun i ->
          Domain.spawn (fun () -> worker_main t t.workers.(i + 1)));
    t

  (* Discard a worker's leftover deque entries, accounting for them:
     an unexecuted runner is a spark that fizzled (its future was, or
     will be, evaluated in place by whoever forces it). *)
  let discard_leftovers (w : worker) =
    let leftover = List.length (Ws_deque.drain w.deque) in
    if leftover > 0 then
      ignore (A.fetch_and_add w.counters.fizzled leftover);
    (* inbox tasks are not sparks: drop without touching the ledger *)
    let rec drain_inbox () =
      match Fq.pop w.inbox with Some _ -> drain_inbox () | None -> ()
    in
    drain_inbox ()

  let run t f =
    let w0 = t.workers.(0) in
    let saved = Domain.DLS.get context_key in
    Domain.DLS.set context_key (Some (t, w0));
    Tracer.record w0.tbuf Tracer.Worker_begin ~arg:0;
    Fun.protect
      ~finally:(fun () ->
        (* Leftover deque entries are runners for futures that were
           already forced (and hence claimed): discard them. *)
        Tracer.record w0.tbuf Tracer.Worker_end ~arg:0;
        discard_leftovers w0;
        Domain.DLS.set context_key saved)
      f

  let shutdown t =
    A.set t.stop true;
    A.incr t.wake_gen;
    Mutex.lock t.lock;
    Condition.broadcast t.wake;
    Mutex.unlock t.lock;
    List.iter Domain.join t.domains;
    t.domains <- [];
    (* Helpers are joined: any runner still sitting in a deque will
       never execute — account it as fizzled so the spark ledger
       balances ([sparks_created = sparks_run + sparks_fizzled]). *)
    Array.iter discard_leftovers t.workers;
    (* Retire the metrics collector last so the flushed totals include
       the leftover-fizzle accounting above; cumulative per-worker
       counters survive this pool in the default registry. *)
    match t.mtoken with
    | Some tok ->
        t.mtoken <- None;
        M.remove_collector tok
    | None -> ()

  let with_pool ?cores ?tracer f =
    let t = create ?cores ?tracer () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> run t f)
end

include Make (Repro_shim.Tatomic.Real)

(* Scheduler hook installed by the fiber layer (repro.fiber): inside a
   fiber, [Future.force]'s idle path calls this to yield the *fiber*
   (true = yielded, re-check the future on resume) instead of
   spinning/sleeping the domain.  A function ref rather than a functor
   parameter so lib/exec carries no dependency on the fiber layer; the
   default never fires. *)
let fiber_yield : (unit -> bool) ref = ref (fun () -> false)
