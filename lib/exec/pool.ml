(** Real-hardware executor substrate: a pool of [Domain]s, one per
    capability, each owning a Chase–Lev {!Repro_deque.Ws_deque} spark
    pool.

    This is the hardware counterpart of the simulated runtime in
    [lib/parrts]: where the simulator *models* GHC capabilities on a
    virtual clock, this pool *is* the paper's optimised shared-heap
    configuration on OCaml 5 domains (domains ≈ capabilities; see
    "Retrofitting Parallelism onto OCaml", PAPERS.md):

    - each worker runs a dedicated spark-thread-style loop (the paper's
      Sec. IV-C optimisation: drain sparks from a queue instead of
      forking a thread per spark);
    - work distribution is lock-free work stealing (Sec. IV-A.2): the
      owner pushes/pops at its deque's bottom, idle workers steal from
      a random victim's top with a single CAS;
    - idle workers back off (bounded steal sweeps, [Domain.cpu_relax])
      and finally park on a condition variable, so an idle pool burns
      no CPU; any push wakes them.

    Tasks are [unit -> unit] closures.  The layer above ({!Future},
    {!Strategies}) puts only idempotent "run this future if still
    unclaimed" closures in the deques, which is what makes stolen
    sparks safe to run twice — the CAS on the future's state cell (an
    eager black-hole) guarantees at most one evaluation. *)

module Ws_deque = Repro_deque.Ws_deque
module Rng = Repro_util.Rng

type task = unit -> unit

type worker = {
  id : int;
  deque : task Ws_deque.t;
  rng : Rng.t;  (** victim selection; deterministically seeded per worker *)
}

type t = {
  workers : worker array;
  mutable domains : unit Domain.t list;  (* helper domains, workers 1.. *)
  stop : bool Atomic.t;
  sleepers : int Atomic.t;
  lock : Mutex.t;
  wake : Condition.t;
}

type ctx = t * worker

(* The current domain's (pool, worker) binding.  Set for helper domains
   at spawn, and for the caller's domain for the duration of [run]. *)
let context_key : ctx option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get context_key
let cores t = Array.length t.workers
let ctx_pool ((t, _) : ctx) = t
let ctx_id ((_, w) : ctx) = w.id

let has_work t =
  let n = Array.length t.workers in
  let rec go i = i < n && (not (Ws_deque.is_empty t.workers.(i).deque) || go (i + 1)) in
  go 0

(* Wake parked workers after making work available (or on shutdown).
   Reading [sleepers] after the push is safe against lost wakeups: the
   parking worker increments [sleepers] *before* re-checking the deques,
   and the final re-check happens under [lock] — the same lock this
   broadcast takes — so either the pusher sees the sleeper, or the
   sleeper sees the pushed task. *)
let signal_work t =
  if Atomic.get t.sleepers > 0 then begin
    Mutex.lock t.lock;
    Condition.broadcast t.wake;
    Mutex.unlock t.lock
  end

(* Owner-side push onto this worker's own deque. *)
let push ((t, w) : ctx) task =
  Ws_deque.push w.deque task;
  signal_work t

(* One randomised steal sweep: start at a random victim, visit every
   other worker once. *)
let steal_once t (w : worker) =
  let n = Array.length t.workers in
  if n <= 1 then None
  else begin
    let start = Rng.int w.rng n in
    let rec go k =
      if k >= n then None
      else
        let v = t.workers.((start + k) mod n) in
        if v.id = w.id then go (k + 1)
        else
          match Ws_deque.steal v.deque with
          | Some _ as r -> r
          | None -> go (k + 1)
    in
    go 0
  end

let find_task t (w : worker) =
  match Ws_deque.pop w.deque with
  | Some _ as r -> r
  | None ->
      (* a few sweeps with a pause between them before reporting famine *)
      let rec attempt i =
        if i >= 4 then None
        else
          match steal_once t w with
          | Some _ as r -> r
          | None ->
              Domain.cpu_relax ();
              attempt (i + 1)
      in
      attempt 0

(* Tasks from the future layer never raise (they capture exceptions in
   the result cell), but keep helper domains alive no matter what goes
   into a deque. *)
let run_task task = try task () with _ -> ()

(* Run one pending task if any is available.  Used both by the worker
   loop and by forcers that help while waiting on a future. *)
let help ((t, w) : ctx) =
  match find_task t w with
  | Some task ->
      run_task task;
      true
  | None -> false

let park t =
  Atomic.incr t.sleepers;
  Mutex.lock t.lock;
  while not (Atomic.get t.stop) && not (has_work t) do
    Condition.wait t.wake t.lock
  done;
  Mutex.unlock t.lock;
  Atomic.decr t.sleepers

let rec worker_loop t (w : worker) =
  if not (Atomic.get t.stop) then begin
    (match find_task t w with
    | Some task -> run_task task
    | None -> park t);
    worker_loop t w
  end

let create ?cores:requested () =
  let ncores =
    match requested with
    | Some c ->
        if c < 1 then invalid_arg "Pool.create: cores must be >= 1";
        c
    | None -> Domain.recommended_domain_count ()
  in
  let master = Rng.create 0x9e3779b9 in
  let workers =
    Array.init ncores (fun id ->
        { id; deque = Ws_deque.create (); rng = Rng.split master })
  in
  let t =
    {
      workers;
      domains = [];
      stop = Atomic.make false;
      sleepers = Atomic.make 0;
      lock = Mutex.create ();
      wake = Condition.create ();
    }
  in
  t.domains <-
    List.init (ncores - 1) (fun i ->
        Domain.spawn (fun () ->
            let w = t.workers.(i + 1) in
            Domain.DLS.set context_key (Some (t, w));
            worker_loop t w));
  t

let run t f =
  let w0 = t.workers.(0) in
  let saved = Domain.DLS.get context_key in
  Domain.DLS.set context_key (Some (t, w0));
  Fun.protect
    ~finally:(fun () ->
      (* Leftover deque entries are runners for futures that were
         already forced (and hence claimed): discard them. *)
      ignore (Ws_deque.drain w0.deque);
      Domain.DLS.set context_key saved)
    f

let shutdown t =
  Atomic.set t.stop true;
  Mutex.lock t.lock;
  Condition.broadcast t.wake;
  Mutex.unlock t.lock;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ?cores f =
  let t = create ?cores () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> run t f)
