(** Pool of OCaml 5 [Domain]s with per-worker Chase–Lev spark deques
    and lock-free work stealing — the real-hardware counterpart of the
    simulated capabilities in [lib/parrts] (paper Sec. IV-A.2 spark
    pools + Sec. IV-C spark threads).

    The calling domain becomes worker 0 for the duration of {!run};
    [cores - 1] helper domains each run a spark-thread-style drain loop
    with randomised stealing, exponential backoff and condition-variable
    parking when the pool is idle.  The park/unpark handshake uses a
    generation counter so wakeups cannot be lost; [lib/check]
    model-checks it exhaustively.

    The module is a functor over the {!Repro_shim.Tatomic.S} atomics
    shim; the toplevel instance is [Make (Tatomic.Real)] (zero-cost
    [Stdlib.Atomic] alias). *)

(** Aggregated scheduler counters, mirroring the simulator's eventlog
    summary: spark accounting (GpH "created / converted / fizzled")
    plus steal and park observability.  Exact when the pool is
    quiescent; after {!shutdown},
    [sparks_created = sparks_run + sparks_fizzled]. *)
type events = {
  sparks_created : int;
  sparks_run : int;
  sparks_fizzled : int;
  steal_attempts : int;
  steals : int;
  parks : int;
  wakeups : int;
}

val pp_events : Format.formatter -> events -> unit

module type S = sig
  type t

  type task = unit -> unit

  (** A worker binding: the pool plus the deque owned by the current
      domain.  Obtained via {!current} from inside {!run} or from a
      helper domain. *)
  type ctx

  (** [create ?cores ()] spawns [cores - 1] helper domains (default
      [Domain.recommended_domain_count ()]).  When [tracer] is given,
      each worker records scheduler events into its {!Tracer} ring
      buffer (enable the tracer {e before} creating the pool so the
      runtime's GC rings are captured from the helpers' birth); without
      it every trace point is a one-load-one-branch no-op.
      @raise Invalid_argument if [cores < 1], or if [tracer] has fewer
      buffers than [cores]. *)
  val create : ?cores:int -> ?tracer:Tracer.t -> unit -> t

  (** Number of workers (including the caller's worker 0). *)
  val cores : t -> int

  (** [run t f] registers the calling domain as worker 0 and evaluates
      [f ()].  Sparks created inside [f] are pushed to worker 0's deque
      and stolen by the helpers.  Reentrant calls and concurrent [run]s
      on the same pool are not supported. *)
  val run : t -> (unit -> 'a) -> 'a

  (** Stop and join the helper domains; accounts still-queued runners
      as fizzled sparks.  Idempotent. *)
  val shutdown : t -> unit

  (** [with_pool ?cores f]: {!create}, {!run}, always {!shutdown}. *)
  val with_pool : ?cores:int -> ?tracer:Tracer.t -> (unit -> 'a) -> 'a

  (** The current domain's binding, when inside a pool. *)
  val current : unit -> ctx option

  val ctx_pool : ctx -> t

  (** Worker id of the current binding (0 = caller). *)
  val ctx_id : ctx -> int

  (** Owner-side push of a task onto the current worker's deque; wakes
      parked workers. *)
  val push : ctx -> task -> unit

  (** Like {!push} but without spark accounting: for tasks that are not
      spark runners (the fiber layer's starts and resumes), which must
      stay out of the created/run/fizzled ledger.  Stealable like any
      deque entry; drain such tasks before {!shutdown}. *)
  val push_plain : ctx -> task -> unit

  (** Round-robin injection into a worker's FIFO inbox lane, callable
      from any domain — no [ctx] required.  Inbox tasks run in arrival
      order after the owner's deque is dry and are never stolen. *)
  val inject : t -> task -> unit

  (** Targeted injection into worker [i]'s inbox (fiber pinning,
      yields).  @raise Invalid_argument if [i] is out of range. *)
  val inject_on : t -> int -> task -> unit

  (** Run one pending task (own deque first, then steal); [false] when
      no work was found.  Forcers call this to help while waiting. *)
  val help : ctx -> bool

  (** Spark accounting hooks for the {!Future} layer: the runner that
      performed (resp. skipped) its future's evaluation reports here. *)
  val note_run : ctx -> unit

  val note_fizzle : ctx -> unit

  (** Trace hooks for the {!Future} layer (no-ops when untraced):
      claim-to-completion spans and force demands. *)
  val note_eval_begin : ctx -> unit

  val note_eval_end : ctx -> unit
  val note_force : ctx -> unit

  (** Counter snapshot (sum over workers).  Exact once quiescent. *)
  val events : t -> events

  (** Per-worker counter snapshots, indexed by worker id — makes load
      imbalance visible without a full trace. *)
  val worker_events : t -> events array
end

module Make (A : Repro_shim.Tatomic.S) : S

include S

(** Fiber-scheduler hook (installed by [repro.fiber], default returns
    [false]): called by {!Future.force}'s idle path; when the caller is
    inside a fiber it yields the fiber and returns [true], so a forcer
    waiting on another domain's evaluation never starves the fibers
    multiplexed on its worker. *)
val fiber_yield : (unit -> bool) ref
