(** Post-hoc profile analysis of hardware traces — the numbers the
    paper reads off its per-CPU activity profiles (Sec. V): per-worker
    utilization, idle-gap distribution (the GC-barrier / famine gaps),
    spark granularity, and steal latency.

    Input is the Chrome trace-event document {!Repro_trace.Chrome}
    emits (either freshly built or parsed back from disk with
    {!Repro_util.Json_in}), reduced to slices and instants.  Busy time
    is the interval {e union} of [task] and [eval] slices, so nested
    helping is not double-counted. *)

module Json = Repro_util.Json_out
module Json_in = Repro_util.Json_in
module Stats = Repro_util.Stats
module Tablefmt = Repro_util.Tablefmt

type slice = { tid : int; name : string; ts_us : float; dur_us : float }
type instant = { itid : int; iname : string; its_us : float }
type input = { slices : slice list; instants : instant list }

let of_chrome_json json =
  let events =
    match Json_in.member "traceEvents" json with
    | Some evs -> Option.value ~default:[] (Json_in.to_list evs)
    | None -> failwith "profile: no traceEvents key (not a Chrome trace?)"
  in
  let slices = ref [] and instants = ref [] in
  List.iter
    (fun ev ->
      let str key = Option.bind (Json_in.member key ev) Json_in.to_string in
      let num key = Option.bind (Json_in.member key ev) Json_in.to_float in
      let int key = Option.bind (Json_in.member key ev) Json_in.to_int in
      match (str "ph", str "name", int "tid", num "ts") with
      | Some "X", Some name, Some tid, Some ts_us ->
          let dur_us = Option.value ~default:0.0 (num "dur") in
          slices := { tid; name; ts_us; dur_us } :: !slices
      | Some ("i" | "I"), Some name, Some tid, Some ts_us ->
          instants := { itid = tid; iname = name; its_us = ts_us } :: !instants
      | _ -> ()  (* metadata and anything we did not emit *))
    events;
  { slices = List.rev !slices; instants = List.rev !instants }

let of_eventlog ~ncaps log =
  of_chrome_json (Repro_trace.Chrome.of_eventlog ~ncaps log)

(* ---------------- interval arithmetic ---------------- *)

(* Merge possibly-overlapping [(start, stop)] intervals into a sorted
   disjoint union. *)
let union intervals =
  let sorted =
    List.sort (fun (a, _) (b, _) -> compare a b)
      (List.filter (fun (a, b) -> b > a) intervals)
  in
  let rec go acc = function
    | [] -> List.rev acc
    | iv :: rest -> (
        match acc with
        | (s, e) :: acc' when fst iv <= e ->
            go ((s, Float.max e (snd iv)) :: acc') rest
        | _ -> go (iv :: acc) rest)
  in
  go [] sorted

let total intervals = List.fold_left (fun acc (a, b) -> acc +. (b -. a)) 0.0 intervals

(* Gaps between consecutive intervals of a disjoint union, clipped to
   [(lo, hi)]. *)
let gaps ~lo ~hi intervals =
  let rec go prev acc = function
    | [] -> if hi > prev then (hi -. prev) :: acc else acc
    | (s, e) :: rest ->
        let acc = if s > prev then (s -. prev) :: acc else acc in
        go (Float.max prev e) acc rest
  in
  List.rev (go lo [] intervals)

(* ---------------- report ---------------- *)

type dist = {
  count : int;
  p50_us : float;
  p90_us : float;
  p99_us : float;
  max_us : float;
}

let dist_of = function
  | [] -> { count = 0; p50_us = 0.0; p90_us = 0.0; p99_us = 0.0; max_us = 0.0 }
  | xs ->
      {
        count = List.length xs;
        p50_us = Stats.percentile xs 50.0;
        p90_us = Stats.percentile xs 90.0;
        p99_us = Stats.percentile xs 99.0;
        max_us = List.fold_left Float.max neg_infinity xs;
      }

type worker_row = {
  wtid : int;
  busy_us : float;
  gc_us : float;
  parked_us : float;
  tasks : int;
  steals : int;
  util_pct : float;  (** busy / trace wall span *)
}

(** Idle-gap histogram buckets (gap duration, µs). *)
let gap_buckets =
  [ ("<10us", 10.0); ("10-100us", 100.0); ("100us-1ms", 1e3); ("1-10ms", 1e4) ]

let bucket_label_of gap =
  let rec go = function
    | [] -> ">=10ms"
    | (label, hi) :: rest -> if gap < hi then label else go rest
  in
  go gap_buckets

type report = {
  wall_us : float;  (** min event start to max slice end *)
  workers : worker_row list;  (** sorted by tid *)
  idle_gap_hist : (string * int) list;  (** bucket label -> count *)
  spark_granularity : dist;  (** [eval] slice durations *)
  steal_latency : dist;
      (** per successful steal: time since the thief last finished
          busy work (how long it hunted) *)
  idle_gaps_us : float list;  (** raw gaps, for further analysis *)
}

let is_busy_name n = n = "task" || n = "eval"
let is_gc_name n = String.length n >= 3 && String.sub n 0 3 = "gc:"

let analyze input =
  let all_ts =
    List.map (fun s -> s.ts_us) input.slices
    @ List.map (fun i -> i.its_us) input.instants
  and all_ends =
    List.map (fun s -> s.ts_us +. s.dur_us) input.slices
    @ List.map (fun i -> i.its_us) input.instants
  in
  match all_ts with
  | [] ->
      {
        wall_us = 0.0;
        workers = [];
        idle_gap_hist = [];
        spark_granularity = dist_of [];
        steal_latency = dist_of [];
        idle_gaps_us = [];
      }
  | _ ->
      let lo = List.fold_left Float.min infinity all_ts in
      let hi = List.fold_left Float.max neg_infinity all_ends in
      let wall_us = Float.max 0.0 (hi -. lo) in
      let tids =
        List.sort_uniq compare
          (List.map (fun s -> s.tid) input.slices
          @ List.map (fun i -> i.itid) input.instants)
      in
      let all_gaps = ref [] and spark_durs = ref [] and latencies = ref [] in
      let workers =
        List.map
          (fun tid ->
            let mine = List.filter (fun s -> s.tid = tid) input.slices in
            let busy =
              union
                (List.filter_map
                   (fun s ->
                     if is_busy_name s.name then
                       Some (s.ts_us, s.ts_us +. s.dur_us)
                     else None)
                   mine)
            in
            let sum_named p =
              total
                (union
                   (List.filter_map
                      (fun s ->
                        if p s.name then Some (s.ts_us, s.ts_us +. s.dur_us)
                        else None)
                      mine))
            in
            let tasks =
              List.length (List.filter (fun s -> s.name = "task") mine)
            in
            List.iter
              (fun s -> if s.name = "eval" then spark_durs := s.dur_us :: !spark_durs)
              mine;
            (* idle gaps within this worker's live span *)
            let live =
              match
                List.filter_map
                  (fun s ->
                    if s.name = "worker" then Some (s.ts_us, s.ts_us +. s.dur_us)
                    else None)
                  mine
              with
              | [] -> (lo, hi)
              | ws ->
                  ( List.fold_left (fun a (s, _) -> Float.min a s) infinity ws,
                    List.fold_left (fun a (_, e) -> Float.max a e) neg_infinity ws )
            in
            let g =
              gaps ~lo:(fst live) ~hi:(snd live)
                (List.filter (fun (_, e) -> e >= fst live) busy)
            in
            all_gaps := g @ !all_gaps;
            (* steal latency: steal instants vs last busy end before them *)
            let steals =
              List.filter (fun i -> i.itid = tid && i.iname = "steal")
                input.instants
            in
            List.iter
              (fun i ->
                let before =
                  List.fold_left
                    (fun acc (_, e) -> if e <= i.its_us then Float.max acc e else acc)
                    (fst live) busy
                in
                latencies := Float.max 0.0 (i.its_us -. before) :: !latencies)
              steals;
            {
              wtid = tid;
              busy_us = total busy;
              gc_us = sum_named is_gc_name;
              parked_us = sum_named (fun n -> n = "parked");
              tasks;
              steals = List.length steals;
              util_pct =
                (if wall_us > 0.0 then 100.0 *. total busy /. wall_us else 0.0);
            })
          tids
      in
      let hist =
        let tbl = Hashtbl.create 8 in
        List.iter
          (fun g ->
            let l = bucket_label_of g in
            Hashtbl.replace tbl l (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l)))
          !all_gaps;
        List.filter_map
          (fun label ->
            Option.map (fun c -> (label, c)) (Hashtbl.find_opt tbl label))
          (List.map fst gap_buckets @ [ ">=10ms" ])
      in
      {
        wall_us;
        workers;
        idle_gap_hist = hist;
        spark_granularity = dist_of !spark_durs;
        steal_latency = dist_of !latencies;
        idle_gaps_us = !all_gaps;
      }

(* ---------------- rendering ---------------- *)

let worker_table (r : report) =
  let t =
    Tablefmt.create
      ~aligns:
        [
          Tablefmt.Right; Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
          Tablefmt.Right; Tablefmt.Right; Tablefmt.Right;
        ]
      [ "worker"; "busy"; "gc"; "parked"; "tasks"; "steals"; "util" ]
  in
  List.iter
    (fun w ->
      Tablefmt.add_row t
        [
          string_of_int w.wtid;
          Printf.sprintf "%.2f ms" (w.busy_us /. 1e3);
          Printf.sprintf "%.2f ms" (w.gc_us /. 1e3);
          Printf.sprintf "%.2f ms" (w.parked_us /. 1e3);
          string_of_int w.tasks;
          string_of_int w.steals;
          Printf.sprintf "%.1f%%" w.util_pct;
        ])
    r.workers;
  t

let pp_dist ppf (d : dist) =
  if d.count = 0 then Format.fprintf ppf "none"
  else
    Format.fprintf ppf
      "%d samples: p50 %.1f us, p90 %.1f us, p99 %.1f us, max %.1f us" d.count
      d.p50_us d.p90_us d.p99_us d.max_us

let pp ppf (r : report) =
  Format.fprintf ppf "wall span: %.2f ms, %d worker track(s)@\n"
    (r.wall_us /. 1e3)
    (List.length r.workers);
  Format.pp_print_string ppf (Tablefmt.to_string (worker_table r));
  Format.fprintf ppf "spark granularity (eval spans):  %a@\n" pp_dist
    r.spark_granularity;
  Format.fprintf ppf "steal latency (hunt time):       %a@\n" pp_dist
    r.steal_latency;
  Format.fprintf ppf "idle gaps:";
  if r.idle_gap_hist = [] then Format.fprintf ppf " none@\n"
  else begin
    Format.fprintf ppf "@\n";
    List.iter
      (fun (label, n) -> Format.fprintf ppf "  %-10s %d@\n" label n)
      r.idle_gap_hist
  end

let to_string r = Format.asprintf "%a" pp r
