(** Post-hoc profile report over a hardware trace: per-worker
    utilization, idle-gap histogram, spark granularity and steal
    latency — the per-CPU activity analysis of paper Sec. V, computed
    from the Chrome trace-event document {!Repro_trace.Chrome} emits.
    Backs [repro_cli profile FILE.json] and the summary printed by
    [repro_cli exec --trace]. *)

type input

(** Reduce a parsed Chrome trace-event document ({!Repro_util.Json_in}
    output or the {!Repro_util.Json_out} value built by
    {!Repro_trace.Chrome.of_eventlog}) to its slices and instants.
    @raise Failure if the document has no [traceEvents] array. *)
val of_chrome_json : Repro_util.Json_out.t -> input

(** Convenience: eventlog -> Chrome document -> {!input}, exercising
    the same path a file round-trip would. *)
val of_eventlog : ncaps:int -> Repro_trace.Eventlog.t -> input

(** Percentile summary of a duration sample (µs). *)
type dist = {
  count : int;
  p50_us : float;
  p90_us : float;
  p99_us : float;
  max_us : float;
}

type worker_row = {
  wtid : int;  (** worker id (Chrome [tid]) *)
  busy_us : float;  (** union of task+eval slices (helping not double-counted) *)
  gc_us : float;
  parked_us : float;
  tasks : int;
  steals : int;  (** successful steals by this worker *)
  util_pct : float;  (** busy / trace wall span *)
}

type report = {
  wall_us : float;
  workers : worker_row list;  (** sorted by worker id *)
  idle_gap_hist : (string * int) list;
      (** non-busy gaps inside each worker's live span, bucketed
          ["<10us"] .. [">=10ms"]; empty buckets omitted *)
  spark_granularity : dist;  (** [eval] (claim-to-completion) spans *)
  steal_latency : dist;
      (** per successful steal: time since the thief last finished busy
          work (how long it hunted before landing work) *)
  idle_gaps_us : float list;  (** raw gap samples *)
}

val analyze : input -> report
val worker_table : report -> Repro_util.Tablefmt.t
val pp : Format.formatter -> report -> unit
val to_string : report -> string
