(** GpH-style evaluation strategies over real domains.

    The user-facing combinators mirror [Repro_core.Gph]'s simulated
    ones ([par]/[pseq]/[parList]/chunking), but here [par] really does
    put a spark where another core can steal it.  All combinators are
    no-ops degrading to left-to-right sequential evaluation when run
    outside a {!Pool} (sparks fizzle), so workload code is oblivious
    to the core count. *)

module Listx = Repro_util.Listx

(** [par f g]: spark [f], evaluate [g] here, then demand [f]'s value
    (evaluating it in place if no worker picked it up). *)
let par f g =
  let fa = Future.spark f in
  let b = g () in
  let a = Future.force fa in
  (a, b)

(** Sequential composition: evaluate [f], then [g] on its result. *)
let pseq f g =
  let a = f () in
  g a

(** [par_list fs]: spark every element, then collect in order.  The
    list is sparked in reverse so thieves (stealing FIFO from the top
    of the deque) start from the far end while the owner forces from
    the front — the two fronts meet once, the same tuning the
    simulated sumEuler applies. *)
let par_list fs =
  let futs = List.rev (List.map Future.spark (List.rev fs)) in
  List.map Future.force futs

(** [par_map f xs]: [par_list] over [List.map]. *)
let par_map f xs = par_list (List.map (fun x () -> f x) xs)

(** [par_chunked ?split ~chunks f xs]: split [xs] into [chunks] pieces
    ([`Contiguous] splitting or [`Round_robin] dealing — round-robin
    balances workloads whose per-element cost grows along the list,
    cf. sumEuler) and apply [f] to each piece in parallel. *)
let par_chunked ?(split = `Contiguous) ~chunks f xs =
  let chunks = max 1 chunks in
  let pieces =
    match split with
    | `Contiguous -> Listx.split_into_n chunks xs
    | `Round_robin -> Listx.unshuffle chunks xs
  in
  par_map f (List.filter (fun p -> p <> []) pieces)

(** [par_range ~chunks lo hi f ~combine ~init]: fold [combine] over
    [f lo'..hi'] evaluated on contiguous index sub-ranges in parallel.
    Handy for array-shaped work (rows of a matrix or an image). *)
let par_range ~chunks lo hi f ~combine ~init =
  if hi < lo then init
  else begin
    let count = hi - lo + 1 in
    let chunks = max 1 (min chunks count) in
    let per = count / chunks and rem = count mod chunks in
    let ranges =
      List.init chunks (fun i ->
          let extra = min i rem in
          let start = lo + (i * per) + extra in
          let len = per + if i < rem then 1 else 0 in
          (start, start + len - 1))
    in
    par_map (fun (a, b) -> f a b) ranges |> List.fold_left combine init
  end

(** Number of workers available to the current computation (1 when
    outside a pool) — for granularity decisions. *)
let available_cores () =
  match Pool.current () with
  | Some ctx -> Pool.cores (Pool.ctx_pool ctx)
  | None -> 1

(** Default spark count for a list of [n] independent pieces: enough
    chunks to balance (4 per core), capped by [n]. *)
let default_chunks n = max 1 (min n (4 * available_cores ()))
