(** GpH-style strategies on real domains: the hardware analogues of
    [Repro_core.Gph]'s simulated combinators.  Outside a {!Pool} every
    combinator degrades to plain sequential evaluation. *)

(** [par f g]: spark [f], run [g] here, join. *)
val par : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b

(** [pseq f g]: evaluate [f], then [g] on its result. *)
val pseq : (unit -> 'a) -> ('a -> 'b) -> 'b

(** Spark every thunk, collect results in list order. *)
val par_list : (unit -> 'a) list -> 'a list

val par_map : ('a -> 'b) -> 'a list -> 'b list

(** Split into [chunks] pieces and process the pieces in parallel.
    Empty pieces are dropped. *)
val par_chunked :
  ?split:[ `Contiguous | `Round_robin ] ->
  chunks:int ->
  ('a list -> 'b) ->
  'a list ->
  'b list

(** [par_range ~chunks lo hi f ~combine ~init]: evaluate
    [f start stop] on contiguous sub-ranges of [lo..hi] in parallel
    and fold the per-range results. *)
val par_range :
  chunks:int ->
  int ->
  int ->
  (int -> int -> 'a) ->
  combine:('b -> 'a -> 'b) ->
  init:'b ->
  'b

(** Workers available here (1 outside a pool). *)
val available_cores : unit -> int

(** 4 sparks per available core, capped by the piece count. *)
val default_chunks : int -> int
