(** Hardware eventlog: per-domain, preallocated ring buffers of
    timestamped scheduler events for the real executor — the
    ThreadScope/EdenTV instrument the paper's Sec. V optimisation
    story is told with, pointed at OCaml 5 domains instead of GHC
    capabilities.

    Design constraints, in order:

    - {b Zero cost when off.}  Every hot-path call sites does exactly
      one atomic load and one branch ([record] on a disabled buffer);
      the timestamp is only taken after the branch.  The instrumented
      scheduler stays within noise of the uninstrumented one.
    - {b No cross-domain synchronisation when on.}  Each worker writes
      its own preallocated ring buffer ([int] arrays — timestamps from
      the monotonic clock, no [Unix.gettimeofday], no allocation in
      steady state); nothing is shared but the read-only enabled flag.
    - {b One event vocabulary for sim and hardware.}  On merge the
      per-domain buffers become a {!Repro_trace.Eventlog} — the same
      representation the simulator emits — so the SVG renderer, the
      summary statistics, and the Chrome-trace exporter work on both.
    - {b GC on the same timeline.}  The merge subscribes to OCaml 5
      [Runtime_events], so each domain's minor/major collections land
      as spans between the scheduler events they actually interrupted
      (the runtime's timestamps come from the same monotonic clock).

    Ring semantics: when a buffer wraps, the {e oldest} events are
    overwritten — the tail of a run is what profiling wants.  Dropped
    counts are reported per worker. *)

module A = Repro_shim.Tatomic.Real
module Eventlog = Repro_trace.Eventlog

let now_ns () = Int64.to_int (Monotonic_clock.now ())

type kind =
  | Spark_create
  | Spark_run
  | Spark_fizzle
  | Steal_attempt  (** arg = victim worker id *)
  | Steal_success  (** arg = victim worker id *)
  | Park
  | Unpark
  | Eval_begin
  | Eval_end
  | Force
  | Task_begin
  | Task_end
  | Worker_begin
  | Worker_end

let kind_code = function
  | Spark_create -> 0
  | Spark_run -> 1
  | Spark_fizzle -> 2
  | Steal_attempt -> 3
  | Steal_success -> 4
  | Park -> 5
  | Unpark -> 6
  | Eval_begin -> 7
  | Eval_end -> 8
  | Force -> 9
  | Task_begin -> 10
  | Task_end -> 11
  | Worker_begin -> 12
  | Worker_end -> 13

type buffer = {
  flag : bool A.t;
      (* shared with the owning tracer; the only cross-domain state a
         recording worker ever reads *)
  worker : int;
  ts : int array;
  code : int array;
  arg : int array;
  mutable head : int;  (* total events ever written; index = head mod cap *)
  mask : int;  (* capacity - 1; capacity is a power of two *)
}

(* Permanently-disabled buffer handed to untraced pools: keeps the hot
   path monomorphic (no option check, just the flag branch). *)
let null_buffer =
  {
    flag = A.make false;
    worker = -1;
    ts = [| 0 |];
    code = [| 0 |];
    arg = [| 0 |];
    head = 0;
    mask = 0;
  }

let[@inline] record b kind ~arg =
  if A.get b.flag then begin
    let i = b.head land b.mask in
    b.ts.(i) <- now_ns ();
    b.code.(i) <- kind_code kind;
    b.arg.(i) <- arg;
    b.head <- b.head + 1
  end

(* Raw GC span event polled from Runtime_events. *)
type gc_event = { ring : int; at_ns : int; major : bool; is_begin : bool }

type t = {
  flag : bool A.t;
  buffers : buffer array;
  t0 : int;  (* monotonic ns at creation; merged timestamps are relative *)
  gc_events : bool;
  mutable cursor : Runtime_events.cursor option;
  mutable gc : gc_event list;  (* reversed *)
  mutable gc_lost : int;
}

let round_up_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(capacity = 1 lsl 16) ?(gc_events = true) ~ncaps () =
  if ncaps < 1 then invalid_arg "Tracer.create: ncaps must be >= 1";
  if capacity < 1 then invalid_arg "Tracer.create: capacity must be >= 1";
  let cap = round_up_pow2 capacity in
  let flag = A.make false in
  {
    flag;
    buffers =
      Array.init ncaps (fun worker ->
          {
            flag;
            worker;
            ts = Array.make cap 0;
            code = Array.make cap 0;
            arg = Array.make cap 0;
            head = 0;
            mask = cap - 1;
          });
    t0 = now_ns ();
    gc_events;
    cursor = None;
    gc = [];
    gc_lost = 0;
  }

let ncaps t = Array.length t.buffers

let buffer t i =
  if i < 0 || i >= Array.length t.buffers then
    invalid_arg "Tracer.buffer: worker id out of range";
  t.buffers.(i)

let enabled t = A.get t.flag

let enable t =
  (* Start the runtime's own event stream before any helper domain is
     spawned, so every domain's ring is captured from birth. *)
  if t.gc_events && t.cursor = None then begin
    Runtime_events.start ();
    t.cursor <- Some (Runtime_events.create_cursor None)
  end;
  A.set t.flag true

let disable t = A.set t.flag false

(* Poll pending Runtime_events into [t.gc].  Only top-level minor and
   major phases are kept: they are the paper's GC story; sub-phases
   would swamp the timeline.  The ring id is the runtime's domain
   slot, which for a single pool created after [enable] coincides with
   the worker id (the main domain owns ring 0, helpers take the next
   free slots). *)
let poll_gc t =
  match t.cursor with
  | None -> ()
  | Some cursor ->
      let add ring raw_ts major is_begin =
        let at_ns = Int64.to_int (Runtime_events.Timestamp.to_int64 raw_ts) in
        t.gc <- { ring; at_ns; major; is_begin } :: t.gc
      in
      let on_phase is_begin ring ts (phase : Runtime_events.runtime_phase) =
        match phase with
        | EV_MINOR -> add ring ts false is_begin
        | EV_MAJOR -> add ring ts true is_begin
        | _ -> ()
      in
      let callbacks =
        Runtime_events.Callbacks.create ~runtime_begin:(on_phase true)
          ~runtime_end:(on_phase false)
          ~lost_events:(fun _ring n -> t.gc_lost <- t.gc_lost + n)
          ()
      in
      (* drain: read_poll consumes up to a bounded batch per call *)
      let rec drain () =
        if Runtime_events.read_poll cursor callbacks None > 0 then drain ()
      in
      drain ()

let dropped t =
  Array.map (fun b -> max 0 (b.head - (b.mask + 1))) t.buffers

let recorded t =
  Array.fold_left (fun acc b -> acc + min b.head (b.mask + 1)) 0 t.buffers

let t0_ns t = t.t0

(* Ring-drop accounting as registry samples, so trace-buffer overruns
   are visible in metric snapshots (not only in exported eventlogs).
   Pull-based: a tracer has no destroy lifecycle, so the CLI registers
   this as a collector for the duration of a traced run. *)
let metrics_samples t =
  let module M = Repro_metrics.Metrics in
  M.c_sample ~help:"Runtime events lost by the Runtime_events ring"
    "repro_tracer_lost_runtime_events_total"
    (float_of_int t.gc_lost)
  :: Array.to_list
       (Array.mapi
          (fun worker b ->
            M.c_sample
              ~labels:[ ("worker", string_of_int worker) ]
              ~help:"Trace events overwritten by ring wrap-around"
              "repro_tracer_dropped_events_total"
              (float_of_int (max 0 (b.head - (b.mask + 1)))))
          t.buffers)

(* Decode one ring slot into the shared event vocabulary. *)
let decode worker code arg : Eventlog.event =
  match code with
  | 0 -> Spark_created { cap = worker }
  | 1 -> Spark_converted { cap = worker }
  | 2 -> Spark_fizzled { cap = worker }
  | 3 -> Steal_attempt { thief = worker; victim = arg }
  | 4 -> Steal_success { thief = worker; victim = arg }
  | 5 -> Cap_parked { cap = worker }
  | 6 -> Cap_unparked { cap = worker }
  | 7 -> Eval_begin { cap = worker }
  | 8 -> Eval_end { cap = worker }
  | 9 -> Future_forced { cap = worker }
  | 10 -> Task_begin { cap = worker }
  | 11 -> Task_end { cap = worker }
  | 12 -> Worker_begin { cap = worker }
  | 13 -> Worker_end { cap = worker }
  | c -> Custom (Printf.sprintf "unknown-kind-%d" c)

(** Merge the per-domain ring buffers (plus pending GC spans) into one
    chronologically sorted {!Repro_trace.Eventlog} with timestamps in
    nanoseconds since the tracer's creation.  Call only while the
    traced pool is quiescent (after [Pool.shutdown], or between
    runs). *)
let to_eventlog t =
  poll_gc t;
  let acc = ref [] in
  Array.iter
    (fun b ->
      let cap = b.mask + 1 in
      let count = min b.head cap in
      let oldest = b.head - count in
      for k = oldest to b.head - 1 do
        let i = k land b.mask in
        acc :=
          (max 0 (b.ts.(i) - t.t0), decode b.worker b.code.(i) b.arg.(i))
          :: !acc
      done;
      let d = max 0 (b.head - cap) in
      if d > 0 then
        acc :=
          ( 0,
            Eventlog.Custom
              (Printf.sprintf "worker %d dropped %d oldest events (ring wrap)"
                 b.worker d) )
          :: !acc)
    t.buffers;
  List.iter
    (fun { ring; at_ns; major; is_begin } ->
      let time = at_ns - t.t0 in
      (* events from before the tracer existed belong to someone else *)
      if time >= 0 then
        let ev : Eventlog.event =
          if is_begin then Gc_begin { cap = ring; major }
          else Gc_end { cap = ring; major }
        in
        acc := (time, ev) :: !acc)
    t.gc;
  if t.gc_lost > 0 then
    acc :=
      (0, Eventlog.Custom (Printf.sprintf "%d runtime events lost" t.gc_lost))
      :: !acc;
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.rev !acc)
  in
  let log = Eventlog.create () in
  List.iter (fun (time, ev) -> Eventlog.emit log ~time ev) sorted;
  log
