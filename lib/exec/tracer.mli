(** Hardware eventlog for the real executor: per-domain preallocated
    ring buffers of timestamped scheduler events (sparks, steals with
    victim ids, park/unpark, future claim/force, task spans), recorded
    with monotonic-clock timestamps and no cross-domain
    synchronisation on the hot path.  When tracing is off, {!record}
    costs one atomic load and one branch.

    On merge ({!to_eventlog}) the buffers become a
    {!Repro_trace.Eventlog} — the same representation the simulator
    emits — with each domain's minor/major GC spans (from OCaml 5
    [Runtime_events], same clock) on the same timeline.  Feed the
    result to {!Repro_trace.Chrome} for Perfetto, to
    {!Repro_trace.Eventlog.to_trace} + {!Repro_trace.Render_svg} for
    SVG, or to {!Profile} for the utilization report. *)

type t

(** One worker's ring buffer.  Write-owned by a single domain. *)
type buffer

type kind =
  | Spark_create
  | Spark_run
  | Spark_fizzle
  | Steal_attempt  (** arg = victim worker id *)
  | Steal_success  (** arg = victim worker id *)
  | Park
  | Unpark
  | Eval_begin  (** future claimed (eager black-hole CAS won) *)
  | Eval_end
  | Force  (** forcer demanded a future that was not yet done *)
  | Task_begin
  | Task_end
  | Worker_begin  (** worker loop / [Pool.run] lifetime *)
  | Worker_end

(** Monotonic clock, nanoseconds (no [Unix.gettimeofday]). *)
val now_ns : unit -> int

(** [create ~ncaps ()] preallocates one ring of [capacity] slots
    (rounded up to a power of two, default 65536) per worker.  When
    [gc_events] (default [true]), {!enable} also starts the OCaml
    runtime's event stream so GC spans are merged in.  Tracing starts
    {e disabled}.
    @raise Invalid_argument if [ncaps < 1] or [capacity < 1]. *)
val create : ?capacity:int -> ?gc_events:bool -> ncaps:int -> unit -> t

val ncaps : t -> int

(** @raise Invalid_argument if the worker id is out of range. *)
val buffer : t -> int -> buffer

(** A permanently-disabled buffer for untraced pools: recording into
    it is the one-load-one-branch no-op. *)
val null_buffer : buffer

(** Flip the shared enabled flag.  [enable] is called before the pool
    spawns its domains (so the runtime's rings are captured from
    birth); it is not safe to toggle concurrently with recording
    merges. *)
val enable : t -> unit

val disable : t -> unit
val enabled : t -> bool

(** Hot path.  On a disabled buffer: one atomic load, one branch. *)
val record : buffer -> kind -> arg:int -> unit

(** Events overwritten by ring wrap-around, per worker (oldest events
    are dropped first). *)
val dropped : t -> int array

(** Events currently held across all rings. *)
val recorded : t -> int

(** Monotonic-clock origin of this tracer's timeline (the instant
    [create] ran); lets metric snapshots be placed on the same time
    axis as exported trace events. *)
val t0_ns : t -> int

(** Ring-drop accounting ([repro_tracer_dropped_events_total] per
    worker, [repro_tracer_lost_runtime_events_total]) as registry
    samples — register as a {!Repro_metrics.Metrics.add_collector}
    callback for the duration of a traced run. *)
val metrics_samples : t -> Repro_metrics.Metrics.sample list

(** Merge the per-domain buffers and pending GC spans into one
    chronologically sorted eventlog; timestamps are nanoseconds since
    the tracer's creation.  Call while the traced pool is quiescent
    (after shutdown, or between runs). *)
val to_eventlog : t -> Repro_trace.Eventlog.t
