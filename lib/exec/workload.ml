(** Pure workloads wired to the real executor.

    Each workload is the same computation the simulator runs
    ([lib/workloads]) but with {e real} work on {e real} domains: no
    virtual cost charging, values computed by the actual kernels and
    checked against the sequential references.  Results are
    represented as a deterministic [int] checksum so a single
    signature covers integer- and float-valued benchmarks; float
    checksums are compared bit-for-bit (the parallel kernels perform
    their floating-point reductions in exactly the reference order, so
    equality is exact, not approximate). *)

module Euler = Repro_workloads.Euler
module Parfib = Repro_workloads.Parfib
module Matrix = Repro_workloads.Matrix
module Mandelbrot = Repro_workloads.Mandelbrot
module Apsp = Repro_workloads.Apsp
module S = Strategies

module type S = sig
  val name : string

  (** What [size] means for this workload. *)
  val size_doc : string

  val default_size : int

  (** Small size for tests and CI smoke runs. *)
  val quick_size : int

  (** Parallel run (uses {!Strategies}; degrades to sequential outside
      a {!Pool}).  Returns the checksum. *)
  val run : size:int -> unit -> int

  (** Sequential reference checksum (never sparks). *)
  val reference : size:int -> int
end

let float_bits f = Int64.to_int (Int64.bits_of_float f)

(* ---------------- sumEuler ---------------- *)

module Sumeuler : S = struct
  let name = "sumeuler"
  let size_doc = "sum of Euler's totient over [1..size]"
  let default_size = 300_000
  let quick_size = 2_000

  let chunk_sum ks = List.fold_left (fun a k -> a + Euler.phi_fast k) 0 ks

  let run ~size () =
    let chunks = max (S.default_chunks size) (min 512 (size / 50)) in
    let input = List.init size (fun i -> i + 1) in
    (* round-robin dealing balances: phi's cost grows with k *)
    S.par_chunked ~split:`Round_robin ~chunks chunk_sum input
    |> List.fold_left ( + ) 0

  let reference ~size = Euler.sum_euler_ref size
end

(* ---------------- parfib ---------------- *)

module Parfib_w : S = struct
  let name = "parfib"
  let size_doc = "nfib size (naive call count), left branch sparked"
  let default_size = 34
  let quick_size = 24

  let rec nfib n = if n < 2 then 1 else nfib (n - 1) + nfib (n - 2) + 1

  (* The classic GpH stress shape: spark the left branch of every call
     above the threshold.  Threshold [size - 10] yields a few hundred
     sparks regardless of [size]. *)
  let rec pfib n threshold =
    if n < threshold || n < 2 then nfib n
    else
      let a, b =
        S.par (fun () -> pfib (n - 1) threshold) (fun () -> pfib (n - 2) threshold)
      in
      a + b + 1

  let run ~size () = pfib size (max 2 (size - 10))
  let reference ~size = Parfib.reference size
end

(* ---------------- matmul ---------------- *)

module Matmul : S = struct
  let name = "matmul"
  let size_doc = "size x size dense float multiply"
  let default_size = 384
  let quick_size = 64

  (* Row kernel: per-element dot product with ascending-k accumulation
     — the same summation order as [Matrix.mul_ref], so the parallel
     checksum matches the reference bit-for-bit. *)
  let rows_kernel a b c lo hi =
    let n = Array.length a in
    for i = lo to hi do
      let ai = a.(i) and ci = c.(i) in
      for j = 0 to n - 1 do
        let s = ref 0.0 in
        for k = 0 to n - 1 do
          s := !s +. (ai.(k) *. b.(k).(j))
        done;
        ci.(j) <- !s
      done
    done

  let inputs size = (Matrix.random ~seed:11 size, Matrix.random ~seed:23 size)

  let run ~size () =
    let a, b = inputs size in
    let c = Matrix.zero size in
    (* spark-purity (baselined): rows_kernel writes [c] in place, but
       ranges are disjoint and every write is a pure function of [a],
       [b] and the indices — duplicate evaluation rewrites identical
       values, so the mutation is idempotent. *)
    S.par_range ~chunks:(S.default_chunks size) 0 (size - 1)
      (fun lo hi -> rows_kernel a b c lo hi)
      ~combine:(fun () () -> ())
      ~init:();
    float_bits (Matrix.checksum c)

  let reference ~size =
    let a, b = inputs size in
    let c = Matrix.zero size in
    rows_kernel a b c 0 (size - 1);
    float_bits (Matrix.checksum c)
end

(* ---------------- mandelbrot ---------------- *)

module Mandelbrot_w : S = struct
  let name = "mandelbrot"
  let size_doc = "size x size rendering of the default view"
  let default_size = 500
  let quick_size = 64

  let row_total ~size y =
    let _, total =
      Mandelbrot.compute_row ~view:Mandelbrot.default_view ~width:size
        ~height:size y
    in
    total

  let run ~size () =
    (* Irregular row costs: many fine chunks + round-robin-ish
       contiguous striping keeps the load balanced dynamically via
       stealing. *)
    let chunks = max (S.default_chunks size) (min 128 size) in
    S.par_range ~chunks 0 (size - 1)
      (fun lo hi ->
        let s = ref 0 in
        for y = lo to hi do
          s := !s + row_total ~size y
        done;
        !s)
      ~combine:( + ) ~init:0

  let reference ~size = Mandelbrot.reference ~width:size ~height:size ()
end

(* ---------------- apsp ---------------- *)

module Apsp_w : S = struct
  let name = "apsp"
  let size_doc = "all-pairs shortest paths on a size-node digraph"
  let default_size = 256
  let quick_size = 48

  (* One pivot step on rows [lo..hi], in place.  Row [k] is read-only
     during step [k] (its own update is the identity), so concurrent
     row ranges only share read access; arithmetic is exactly
     [Apsp.floyd_warshall]'s. *)
  let pivot_step d k lo hi =
    let n = Array.length d in
    let dk = d.(k) in
    for i = lo to hi do
      let di = d.(i) in
      let dik = di.(k) in
      if dik < infinity then
        for j = 0 to n - 1 do
          let via = dik +. dk.(j) in
          if via < di.(j) then di.(j) <- via
        done
    done

  let run ~size () =
    let d = Array.map Array.copy (Apsp.graph size) in
    let chunks = S.default_chunks size in
    for k = 0 to size - 1 do
      (* per-pivot barrier: par_range forces every range before
         returning, matching the simulator's pivot-chain dependency.
         spark-purity (baselined): pivot_step min-updates disjoint row
         ranges of [d]; within one pivot step the update is a pure
         function of step-entry state, so re-evaluation is idempotent. *)
      S.par_range ~chunks 0 (size - 1)
        (fun lo hi -> pivot_step d k lo hi)
        ~combine:(fun () () -> ())
        ~init:()
    done;
    float_bits (Apsp.checksum d)

  let reference ~size =
    float_bits (Apsp.checksum (Apsp.floyd_warshall (Apsp.graph size)))
end

(* ---------------- registry ---------------- *)

let all : (module S) list =
  [
    (module Sumeuler);
    (module Parfib_w);
    (module Matmul);
    (module Mandelbrot_w);
    (module Apsp_w);
  ]

let names = List.map (fun (module W : S) -> W.name) all

let find name =
  List.find_opt (fun (module W : S) -> W.name = name) all
